package socialmatch

import (
	"context"
	"fmt"

	"repro/internal/capacity"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/simjoin"
	"repro/internal/vector"
)

// Re-exported building blocks, so that callers outside this module's
// internals can assemble inputs.
type (
	// Graph is the weighted bipartite item-consumer graph with node
	// capacities.
	Graph = graph.Bipartite
	// NodeID identifies a node of the Graph.
	NodeID = graph.NodeID
	// Vector is a sparse term vector describing an item or a consumer.
	Vector = vector.Sparse
	// VectorEntry is one (term, weight) component of a Vector.
	VectorEntry = vector.Entry
	// TermID identifies a term in a Vector.
	TermID = vector.TermID
	// Matching is a computed b-matching.
	Matching = core.Matching
	// Result couples a Matching with its computation cost.
	Result = core.Result
)

// NewGraph creates an empty bipartite graph with the given part sizes.
func NewGraph(numItems, numConsumers int) *Graph {
	return graph.NewBipartite(numItems, numConsumers)
}

// NewVector builds a sparse vector from entries.
func NewVector(entries []VectorEntry) Vector { return vector.FromEntries(entries) }

// Algorithm selects a matching algorithm.
type Algorithm string

const (
	// GreedyMRAlgorithm is the MapReduce greedy (Algorithm 3):
	// 1/2-approximation, feasible at every round, any-time stoppable.
	GreedyMRAlgorithm Algorithm = "greedymr"
	// StackMRAlgorithm is the primal-dual stack algorithm (Algorithm
	// 2): 1/(6+ε)-approximation, ≤(1+ε) capacity violations,
	// poly-logarithmic rounds.
	StackMRAlgorithm Algorithm = "stackmr"
	// StackGreedyMRAlgorithm is StackMR with greedy marking.
	StackGreedyMRAlgorithm Algorithm = "stackgreedymr"
	// StackMRStrictAlgorithm is Algorithm 1: the stack algorithm that
	// never violates capacities, at the cost of extra rounds for the
	// overflow-resolution phase.
	StackMRStrictAlgorithm Algorithm = "stackmrstrict"
	// GreedyAlgorithm is the centralized greedy reference.
	GreedyAlgorithm Algorithm = "greedy"
	// StackSequentialAlgorithm is the centralized stack reference.
	StackSequentialAlgorithm Algorithm = "stackseq"
)

// Algorithms lists every supported algorithm name.
func Algorithms() []Algorithm {
	return []Algorithm{GreedyMRAlgorithm, StackMRAlgorithm, StackGreedyMRAlgorithm,
		StackMRStrictAlgorithm, GreedyAlgorithm, StackSequentialAlgorithm}
}

// ShuffleKind selects the MapReduce shuffle backend of every job.
type ShuffleKind = mapreduce.ShuffleKind

const (
	// ShuffleMemory groups all intermediate pairs in memory (default;
	// fastest while the job fits in RAM).
	ShuffleMemory = mapreduce.ShuffleMemory
	// ShuffleSpill bounds shuffle memory: past the budget, sorted runs
	// spill to disk and key groups are merge-streamed to reducers, so
	// matchings over graphs far larger than RAM still complete.
	ShuffleSpill = mapreduce.ShuffleSpill
	// ShuffleDist shards reduce partitions across the worker processes
	// of Options.Dist (see StartDistCluster): buckets stream to each
	// partition's owner over TCP and workers group-sort and reduce
	// locally. The matching output is byte-identical to the local
	// backends for the same seed and partition count.
	ShuffleDist = mapreduce.ShuffleDist
)

// DistCluster is a connected set of distributed worker processes (see
// mapreduce.StartDistCluster); pass one in Options.Dist together with
// Algorithm-independent ShuffleDist. Worker processes serve via
// ServeDistWorker after registering the jobs with core.RegisterDistJobs.
type DistCluster = mapreduce.DistCluster

// DistClusterOptions configures StartDistCluster.
type DistClusterOptions = mapreduce.DistClusterOptions

// StartDistCluster listens for n workers (optionally spawning them) and
// returns the connected cluster. The caller owns it and must Close it.
func StartDistCluster(n int, opts DistClusterOptions) (*DistCluster, error) {
	return mapreduce.StartDistCluster(n, opts)
}

// Options configures Match.
type Options struct {
	// Algorithm defaults to GreedyMRAlgorithm.
	Algorithm Algorithm
	// Eps is the stack slackness parameter ε (default 1).
	Eps float64
	// Seed drives the randomized algorithms (default 1).
	Seed int64
	// Mappers/Reducers bound the parallelism of each MapReduce job
	// (default GOMAXPROCS).
	Mappers  int
	Reducers int
	// Shuffle selects the shuffle backend (default ShuffleMemory). The
	// matching output is identical on either backend.
	Shuffle ShuffleKind
	// ShuffleMemoryBudget caps the intermediate records the spilling
	// backend buffers in memory per job (default 1<<20). Ignored by
	// the memory backend.
	ShuffleMemoryBudget int
	// ShuffleTempDir is the directory for spill files (default
	// os.TempDir()).
	ShuffleTempDir string
	// WireCompression flate-compresses bulk pair frames on the dist
	// backend's wire paths. Ignored by the local backends.
	WireCompression bool
	// SpillCompression flate-compresses the spill backend's run blocks.
	// Ignored by the memory backend.
	SpillCompression bool
	// FlatDataflow disables partition-resident chaining between the
	// rounds of the iterative algorithms: every round re-partitions its
	// input from a flat, globally sorted slice — the pre-Dataset engine
	// behavior. The matching output is identical either way (the
	// equivalence tests pin this); the flat mode exists for comparison
	// and costs a re-hash of every record every round.
	FlatDataflow bool
	// Dist is the worker cluster jobs shard across when Shuffle is
	// ShuffleDist. Required for (and only meaningful with) that backend.
	Dist *DistCluster
	// CheckpointEvery throttles dist checkpointing of worker-resident
	// round state: 0 checkpoints every retained round output (the
	// default — every round is recoverable), k > 0 every k-th, negative
	// disables checkpointing. Checkpoints are what let a matching run
	// survive worker death: the coordinator re-assigns a dead worker's
	// partitions, restores them from mirrored checkpoint frames, and
	// replays from the round boundary. Ignored by the local backends.
	CheckpointEvery int
	// SpeculationFactor arms straggler speculation on the dist backend:
	// a worker silent past the heartbeat window, or still running past
	// SpeculationFactor x the round's median completion time, has its
	// partitions speculatively re-executed on the healthy workers and
	// the first completion wins. Zero disables (the default); 2-4 is
	// typical. Ignored by the local backends.
	SpeculationFactor float64
}

func (o Options) mr() mapreduce.Config {
	return mapreduce.Config{
		Mappers:  o.Mappers,
		Reducers: o.Reducers,
		Shuffle: mapreduce.ShuffleConfig{
			Backend:      o.Shuffle,
			MemoryBudget: o.ShuffleMemoryBudget,
			TempDir:      o.ShuffleTempDir,
		},
		FlatChaining:      o.FlatDataflow,
		Dist:              o.Dist,
		CheckpointEvery:   o.CheckpointEvery,
		SpeculationFactor: o.SpeculationFactor,
		WireCompression:   o.WireCompression,
		SpillCompression:  o.SpillCompression,
	}
}

// Match computes a b-matching of g with the selected algorithm. The
// graph's capacities must have been set; fractional capacities are
// rounded up.
func Match(ctx context.Context, g *Graph, opts Options) (*Result, error) {
	if opts.Algorithm == "" {
		opts.Algorithm = GreedyMRAlgorithm
	}
	if opts.Eps == 0 {
		opts.Eps = 1
	}
	switch opts.Algorithm {
	case GreedyMRAlgorithm:
		return core.GreedyMR(ctx, g, core.GreedyMROptions{MR: opts.mr()})
	case StackMRAlgorithm:
		return core.StackMR(ctx, g, core.StackOptions{
			MR: opts.mr(), Eps: opts.Eps, Seed: opts.Seed,
		})
	case StackGreedyMRAlgorithm:
		return core.StackGreedyMR(ctx, g, core.StackOptions{
			MR: opts.mr(), Eps: opts.Eps, Seed: opts.Seed,
		})
	case StackMRStrictAlgorithm:
		return core.StackMRStrict(ctx, g, core.StackOptions{
			MR: opts.mr(), Eps: opts.Eps, Seed: opts.Seed,
		})
	case GreedyAlgorithm:
		return core.Greedy(g), nil
	case StackSequentialAlgorithm:
		return core.StackSequential(g, opts.Eps), nil
	default:
		return nil, fmt.Errorf("socialmatch: unknown algorithm %q", opts.Algorithm)
	}
}

// Assignment is one delivered item in a Report.
type Assignment struct {
	// Item and Consumer are indexes into the pipeline inputs.
	Item     int
	Consumer int
	// Similarity is the edge weight.
	Similarity float64
}

// Report is the outcome of a full Pipeline run.
type Report struct {
	// Assignments lists the matched item-consumer pairs.
	Assignments []Assignment
	// Value is the total matched similarity.
	Value float64
	// CandidateEdges is the number of edges the similarity join kept.
	CandidateEdges int
	// JoinRounds and MatchRounds count MapReduce jobs per phase.
	JoinRounds  int
	MatchRounds int
	// Violation is the average relative capacity violation ε′ (zero
	// for the feasible algorithms).
	Violation float64
}

// Pipeline is the end-to-end system of the paper: similarity join to
// build candidate edges (Section 5.1), capacity assignment (Section 4),
// and b-matching (Section 5.2-5.4).
type Pipeline struct {
	// Sigma is the similarity threshold for candidate edges (must be
	// positive).
	Sigma float64
	// Alpha scales consumer capacities b(u) = α·activity(u)
	// (default 1).
	Alpha float64
	// Quality holds optional per-item quality scores; when nil, items
	// share the bandwidth uniformly, otherwise proportionally
	// (Section 4).
	Quality []float64
	// Match configures the matching phase.
	Match Options
}

// Run executes the pipeline on item and consumer term vectors, with
// activity the per-consumer activity proxy n(u).
func (p Pipeline) Run(ctx context.Context, items, consumers []Vector, activity []float64) (*Report, error) {
	if p.Alpha == 0 {
		p.Alpha = 1
	}
	jr, err := simjoin.Join(ctx, items, consumers, p.Sigma, simjoin.Options{MR: p.Match.mr()})
	if err != nil {
		return nil, fmt.Errorf("socialmatch: join: %w", err)
	}
	g := simjoin.ToGraph(jr.Edges, len(items), len(consumers))
	bandwidth, err := capacity.ConsumerActivity(g, activity, p.Alpha)
	if err != nil {
		return nil, fmt.Errorf("socialmatch: capacities: %w", err)
	}
	if p.Quality != nil {
		err = capacity.QualityProportional(g, p.Quality, bandwidth)
	} else {
		err = capacity.UniformItems(g, bandwidth)
	}
	if err != nil {
		return nil, fmt.Errorf("socialmatch: capacities: %w", err)
	}
	mres, err := Match(ctx, g, p.Match)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Value:          mres.Matching.Value(),
		CandidateEdges: g.NumEdges(),
		JoinRounds:     jr.Rounds,
		MatchRounds:    mres.Rounds,
		Violation:      mres.Matching.Violation(),
	}
	for _, e := range mres.Matching.Edges() {
		rep.Assignments = append(rep.Assignments, Assignment{
			Item:       int(e.Item),
			Consumer:   int(e.Consumer) - g.NumItems(),
			Similarity: e.Weight,
		})
	}
	return rep, nil
}
