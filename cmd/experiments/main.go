// Command experiments regenerates every table and figure of the paper's
// evaluation section and prints them as text tables (optionally teeing
// to a file). A full run at -scale 1 takes several minutes on one core;
// -quick runs a reduced version in seconds.
//
// Usage:
//
//	experiments               # everything, full scale
//	experiments -quick        # everything, reduced corpora
//	experiments -only fig4    # one experiment (table1, fig1..fig7)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cliio"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/mapreduce"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		quick   = flag.Bool("quick", false, "run with reduced corpora")
		scale   = flag.Float64("scale", 0, "explicit corpus scale in (0,1] (overrides -quick)")
		only    = flag.String("only", "", "run a single experiment: table1, fig1..fig7")
		out     = flag.String("o", "", "also write the report to this file")
		seed    = flag.Int64("seed", 42, "random seed")
		shuffle = flag.String("shuffle", "memory", "MapReduce shuffle backend: memory | spill")
		budget  = flag.Int("spill-budget", 0, "max in-memory intermediate records per job for -shuffle spill (0 = default 1M)")
		tempdir = flag.String("spill-dir", "", "directory for spill files (default: system temp dir)")
		flat    = flag.Bool("flat", false, "disable partition-resident round chaining (re-partition every round from a flat slice)")
	)
	flag.Parse()

	cfg := experiments.Defaults()
	if *quick {
		cfg = experiments.Quick()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	cfg.Seed = *seed
	cfg.MR.Shuffle = mapreduce.ShuffleConfig{
		Backend:      mapreduce.ShuffleKind(*shuffle),
		MemoryBudget: *budget,
		TempDir:      *tempdir,
	}
	cfg.MR.FlatChaining = *flat

	// Every report line flows through checked outputs: the terminal copy
	// and the optional -o file both flush-and-close via cliio, so a full
	// disk under the tee exits nonzero instead of truncating the report.
	stdout := cliio.Stdout()
	defer cliio.CloseInto(stdout, &err)
	var w io.Writer = stdout
	if *out != "" {
		f, ferr := cliio.Create(*out)
		if ferr != nil {
			return ferr
		}
		defer cliio.CloseInto(f, &err)
		w = io.MultiWriter(stdout, f)
	}

	ctx := context.Background()
	var runErr error
	run := func(name string, fn func() error) {
		if runErr != nil || (*only != "" && *only != name) {
			return
		}
		t0 := time.Now()
		fmt.Fprintf(w, "=== %s ===\n", name)
		if err := fn(); err != nil {
			runErr = fmt.Errorf("%s: %w", name, err)
			return
		}
		fmt.Fprintf(w, "(%s in %s)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
	// printMR reports the experiment's aggregate MapReduce engine cost in
	// the same format bmatch and simjoin use: per-phase wall clocks
	// summed over every job, plus the shuffle routing split.
	printMR := func(s mapreduce.Stats) {
		fmt.Fprintf(w, "phase walls: map=%s shuffle=%s reduce=%s (summed over rounds)\n",
			s.MapWall.Round(time.Microsecond),
			s.ShuffleWall.Round(time.Microsecond),
			s.ReduceWall.Round(time.Microsecond))
		if s.LocalRouted > 0 || s.CrossRouted > 0 {
			fmt.Fprintf(w, "routing:     local=%d cross=%d (identity-routed vs hashed records)\n",
				s.LocalRouted, s.CrossRouted)
		}
		if s.SpilledRecords > 0 {
			fmt.Fprintf(w, "spilled:     %d records in %d runs\n", s.SpilledRecords, s.SpillRuns)
		}
		if s.PooledBytes > 0 || s.PoolMisses > 0 {
			fmt.Fprintf(w, "buffer pool: %d bytes reused, %d misses\n", s.PooledBytes, s.PoolMisses)
		}
		if s.RemoteBytesOut > 0 || s.RemoteBytesIn > 0 {
			// Measured distributed footprint (dist backend), the
			// counterpart of the ClusterModel estimates in the
			// scalability tables.
			fmt.Fprintf(w, "dist:        %d bytes out, %d bytes in, worker wall %s\n",
				s.RemoteBytesOut, s.RemoteBytesIn, s.WorkerWall.Round(time.Microsecond))
		}
		if s.WireBytesSaved > 0 || s.SpillBytesSaved > 0 {
			fmt.Fprintf(w, "codec:       saved %d bytes wire, %d bytes spill (block compression)\n",
				s.WireBytesSaved, s.SpillBytesSaved)
		}
	}

	run("table1", func() error {
		fmt.Fprint(w, experiments.RenderTable1(experiments.Table1(cfg)))
		return nil
	})
	for i, ds := range []string{"flickr-small", "flickr-large", "yahoo-answers"} {
		name := fmt.Sprintf("fig%d", i+1)
		ds := ds
		run(name, func() error {
			res, err := experiments.Quality(ctx, cfg, ds)
			if err != nil {
				return err
			}
			fmt.Fprint(w, res.Render())
			printMR(res.MR)
			return nil
		})
	}
	run("fig4", func() error {
		for _, ds := range []string{"flickr-large", "yahoo-answers"} {
			res, err := experiments.Violations(ctx, cfg, ds,
				[]float64{0.25, 1}, []float64{1, 2})
			if err != nil {
				return err
			}
			fmt.Fprint(w, res.Render())
			printMR(res.MR)
		}
		return nil
	})
	run("fig5", func() error {
		for _, ds := range []string{"flickr-small", "flickr-large", "yahoo-answers"} {
			res, err := experiments.Convergence(ctx, cfg, ds)
			if err != nil {
				return err
			}
			fmt.Fprint(w, res.Render())
			printMR(res.MR)
		}
		return nil
	})
	run("scalability", func() error {
		res, err := experiments.Scalability(ctx, cfg, 500, 4)
		if err != nil {
			return err
		}
		fmt.Fprint(w, res.Render())
		printMR(res.MR)
		return nil
	})
	run("fig6", func() error {
		for _, c := range cfg.Datasets() {
			fmt.Fprint(w, experiments.SimilarityDistribution(c).Render())
		}
		return nil
	})
	run("fig7", func() error {
		for _, c := range cfg.Datasets() {
			for _, side := range []graph.Side{graph.ItemSide, graph.ConsumerSide} {
				res, err := experiments.CapacityDistribution(c, cfg.Alpha, side)
				if err != nil {
					return err
				}
				fmt.Fprint(w, res.Render())
			}
		}
		return nil
	})
	return runErr
}
