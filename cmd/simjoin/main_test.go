package main

import "testing"

func TestCorpusNames(t *testing.T) {
	for _, name := range []string{"flickr-small", "flickr-large", "yahoo-answers"} {
		c, err := corpus(name, 0.03, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.NumItems() == 0 || c.NumConsumers() == 0 {
			t.Errorf("%s: empty corpus", name)
		}
	}
	if _, err := corpus("bogus", 1, 1); err == nil {
		t.Error("unknown corpus accepted")
	}
}

func TestCorpusScaling(t *testing.T) {
	full, err := corpus("flickr-small", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	small, err := corpus("flickr-small", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumItems() >= full.NumItems() {
		t.Errorf("scaling did not shrink: %d >= %d", small.NumItems(), full.NumItems())
	}
}

func TestMax64(t *testing.T) {
	if max64(3, 5) != 5 || max64(5, 3) != 5 || max64(-1, -2) != -1 {
		t.Error("max64 wrong")
	}
}
