// Command simjoin runs the MapReduce prefix-filtered similarity join on
// a generated corpus, reporting the candidate-edge statistics of the
// paper's Section 5.1 (pruning power, join size, shuffle volume) and
// optionally writing the resulting candidate graph.
//
// Usage:
//
//	simjoin -dataset flickr-small -sigma 4
//	simjoin -dataset yahoo-answers -sigma 0.2 -scale 0.2 -o graph.txt
//	simjoin -dataset flickr-small -sigma 4 -dist-workers 2
//
// Distributed mode mirrors cmd/bmatch: -dist-workers N re-executes this
// binary N times in worker mode (each regenerates the same deterministic
// corpus from the flags and serves the verification reduces);
// -dist-connect host:port runs one worker against a separately launched
// coordinator.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliio"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/profiling"
	"repro/internal/simjoin"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "simjoin:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		name    = flag.String("dataset", "flickr-small", "flickr-small | flickr-large | yahoo-answers")
		sigma   = flag.Float64("sigma", 4, "similarity threshold (must be > 0)")
		alpha   = flag.Float64("alpha", 1, "capacity multiplier applied when writing the graph")
		scale   = flag.Float64("scale", 1, "corpus size scale factor in (0,1]")
		seed    = flag.Int64("seed", 1, "random seed")
		shuffle = flag.String("shuffle", "memory", "MapReduce shuffle backend: memory | spill (-dist-workers selects dist)")
		budget  = flag.Int("spill-budget", 0, "max in-memory intermediate records per job for -shuffle spill (0 = default 1M)")
		tempdir = flag.String("spill-dir", "", "directory for spill files (default: system temp dir)")
		wcomp   = flag.Bool("wire-compress", false, "flate-compress bulk pair frames on the dist wire (shuffle buckets, reduce outputs, checkpoints)")
		scomp   = flag.Bool("spill-compress", false, "flate-compress spill run blocks for -shuffle spill")
		flat    = flag.Bool("flat", false, "disable Dataset-chained jobs (re-partition each job from a flat slice)")
		out     = flag.String("o", "", "write the candidate graph (with capacities) to this file")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprof = flag.String("memprofile", "", "write a heap profile to this file on exit")

		distWorkers = flag.Int("dist-workers", 0, "shard reduce partitions across this many worker processes (0 = single process)")
		distConnect = flag.String("dist-connect", "", "worker mode: connect to a coordinator at host:port, serve its jobs, and exit")
		distListen  = flag.String("dist-listen", "", "coordinator listen address for -dist-workers (default 127.0.0.1:0)")
		distSpawn   = flag.Bool("dist-spawn", true, "self-exec the -dist-workers worker processes (false: wait for -dist-connect workers)")
		distLate    = flag.Bool("dist-accept-late", false, "keep accepting replacement -dist-connect workers after startup; they adopt a dead worker's partitions at the next recovery")
		ckptEvery   = flag.Int("ckpt-every", 0, "dist checkpoint throttle: 0 checkpoints every round's resident state, k>0 every k-th round, negative disables")
		ckptDir     = flag.String("dist-ckpt-dir", "", "worker mode: additionally persist checkpoints as local run files in this directory (default: coordinator mirror only)")
		distHB      = flag.Duration("dist-heartbeat", 500*time.Millisecond, "dist worker heartbeat interval; a worker silent for 3 intervals is suspected (0 disables health monitoring)")
		distSpec    = flag.Float64("dist-speculation", 0, "speculatively re-execute a straggler's partitions once it runs past this factor of the round's median worker time (0 disables)")

		distReconnect = flag.Int("dist-reconnect", 8, "worker redial budget per outage: a severed worker redials and resumes its session instead of dying (0 disables reconnection)")
		distGrace     = flag.Duration("dist-reconnect-grace", 10*time.Second, "how long the coordinator holds a severed worker's partitions before declaring it dead and reseeding (0 disables session resume)")
		distJournal   = flag.String("dist-journal-dir", "", "coordinator run journal directory: job outputs and round commits persist here, enabling -dist-resume after a coordinator crash")
		distResume    = flag.Bool("dist-resume", false, "resume a crashed run from -dist-journal-dir: committed jobs replay from the journal instead of re-running")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprof, *memprof)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	c, err := corpus(*name, *scale, *seed)
	if err != nil {
		return err
	}

	if *distConnect != "" {
		// Worker mode: the corpus regenerated above is deterministic
		// given the flags, so the verification reduces close over the
		// exact vectors the coordinator probes with.
		simjoin.RegisterDistJobs(c.Items, c.Consumers, *sigma)
		reconnect := mapreduce.ReconnectPolicy{Attempts: *distReconnect}
		if *distReconnect <= 0 {
			reconnect.Attempts = -1 // flag 0 means off; the policy zero value means default
		}
		return mapreduce.ServeDistWorkerOpts(context.Background(), *distConnect,
			mapreduce.DistWorkerOptions{CheckpointDir: *ckptDir, Reconnect: reconnect})
	}

	mr := mapreduce.Config{
		Shuffle: mapreduce.ShuffleConfig{
			Backend:      mapreduce.ShuffleKind(*shuffle),
			MemoryBudget: *budget,
			TempDir:      *tempdir,
		},
		FlatChaining:      *flat,
		CheckpointEvery:   *ckptEvery,
		SpeculationFactor: *distSpec,
		WireCompression:   *wcomp,
		SpillCompression:  *scomp,
	}
	if *distWorkers > 0 {
		opts := mapreduce.DistClusterOptions{
			Listen:         *distListen,
			AcceptLate:     *distLate,
			HeartbeatEvery: *distHB,
			ReconnectGrace: *distGrace,
			JournalDir:     *distJournal,
			Resume:         *distResume,
		}
		if *distHB == 0 {
			opts.HeartbeatEvery = -1 // flag 0 means off; the options zero value means default
		}
		if *distSpawn {
			opts.Spawn, err = mapreduce.DistSelfExec(
				"-dataset", *name,
				"-sigma", fmt.Sprint(*sigma),
				"-scale", fmt.Sprint(*scale),
				"-seed", fmt.Sprint(*seed),
				"-dist-reconnect", fmt.Sprint(*distReconnect),
			)
			if err != nil {
				return err
			}
		}
		cluster, err := mapreduce.StartDistCluster(*distWorkers, opts)
		if err != nil {
			return err
		}
		defer func() {
			// Only when something happened, so healthy smoke output stays
			// byte-stable.
			rs := cluster.RecoveryStats()
			if rs.WorkersLost > 0 {
				fmt.Fprintf(os.Stderr, "dist recovery:  %d workers lost, %d jobs retried, %d partitions reseeded\n",
					rs.WorkersLost, rs.Recoveries, rs.Reseeded)
			}
			if rs.HeartbeatTimeouts > 0 || rs.SpeculativeLaunches > 0 || rs.PartitionsMigrated > 0 {
				fmt.Fprintf(os.Stderr, "dist scheduling: %d heartbeat timeouts, %d speculative launches (%d won), %d partitions migrated\n",
					rs.HeartbeatTimeouts, rs.SpeculativeLaunches, rs.SpeculativeWins, rs.PartitionsMigrated)
			}
			if rs.WorkerReconnects > 0 || rs.JobsReplayed > 0 {
				fmt.Fprintf(os.Stderr, "dist durability: %d worker reconnects (%d frames replayed), %d jobs replayed from journal, %d journal bytes\n",
					rs.WorkerReconnects, rs.FramesReplayed, rs.JobsReplayed, rs.JournalBytes)
			}
		}()
		// Checked close: reaps spawned workers; a nonzero worker exit
		// fails the run.
		defer func() {
			if cerr := cluster.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		mr.Shuffle.Backend = mapreduce.ShuffleDist
		mr.Dist = cluster
	}

	res, err := simjoin.Join(context.Background(), c.Items, c.Consumers, *sigma, simjoin.Options{MR: mr})
	if err != nil {
		return err
	}

	w := cliio.Stdout()
	defer cliio.CloseInto(w, &err)

	pairs := int64(c.NumItems()) * int64(c.NumConsumers())
	fmt.Fprintf(w, "dataset:        %s (|T|=%d |C|=%d, %d possible pairs)\n",
		c.Name, c.NumItems(), c.NumConsumers(), pairs)
	fmt.Fprintf(w, "sigma:          %g\n", *sigma)
	fmt.Fprintf(w, "MR rounds:      %d\n", res.Rounds)
	fmt.Fprintf(w, "index postings: %d\n", res.PostingEntries)
	fmt.Fprintf(w, "candidates:     %d (%.4f%% of all pairs)\n",
		res.Candidates, 100*float64(res.Candidates)/float64(pairs))
	fmt.Fprintf(w, "edges >= sigma: %d (%.1f%% of candidates survive verification)\n",
		len(res.Edges), 100*float64(len(res.Edges))/float64(max64(res.Candidates, 1)))
	fmt.Fprintf(w, "shuffle:        %d records\n", res.Shuffle.ShuffleRecords)
	if res.Shuffle.SpilledRecords > 0 {
		fmt.Fprintf(w, "spilled:        %d records in %d runs\n",
			res.Shuffle.SpilledRecords, res.Shuffle.SpillRuns)
	}
	fmt.Fprintf(w, "phase walls:    map=%s shuffle=%s reduce=%s (summed over rounds)\n",
		res.Shuffle.MapWall.Round(time.Microsecond),
		res.Shuffle.ShuffleWall.Round(time.Microsecond),
		res.Shuffle.ReduceWall.Round(time.Microsecond))
	if res.Shuffle.LocalRouted > 0 || res.Shuffle.CrossRouted > 0 {
		fmt.Fprintf(w, "routing:        local=%d cross=%d (identity-routed vs hashed records)\n",
			res.Shuffle.LocalRouted, res.Shuffle.CrossRouted)
	}
	if res.Shuffle.PooledBytes > 0 || res.Shuffle.PoolMisses > 0 {
		fmt.Fprintf(w, "buffer pool:    %d bytes reused, %d misses\n",
			res.Shuffle.PooledBytes, res.Shuffle.PoolMisses)
	}
	if res.Shuffle.RemoteBytesOut > 0 || res.Shuffle.RemoteBytesIn > 0 {
		fmt.Fprintf(w, "dist transport: %d bytes out, %d bytes in, worker wall %s\n",
			res.Shuffle.RemoteBytesOut, res.Shuffle.RemoteBytesIn,
			res.Shuffle.WorkerWall.Round(time.Microsecond))
	}
	if res.Shuffle.WireBytesSaved > 0 || res.Shuffle.SpillBytesSaved > 0 {
		fmt.Fprintf(w, "codec savings:  %d bytes wire, %d bytes spill (block compression)\n",
			res.Shuffle.WireBytesSaved, res.Shuffle.SpillBytesSaved)
	}

	if *out != "" {
		g := simjoin.ToGraph(res.Edges, c.NumItems(), c.NumConsumers())
		if err := c.ApplyCapacities(g, *alpha); err != nil {
			return err
		}
		f, err := cliio.Create(*out)
		if err != nil {
			return err
		}
		if err := graph.Write(f, g); err != nil {
			//lint:allow errdrop — the write error being returned dominates; Close here only releases the fd on the failure path
			f.Close()
			return err
		}
		// The checked close is the write barrier: only a clean close
		// proves the graph reached the file (a full disk exits nonzero
		// here instead of reporting "wrote" below).
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote:          %s\n", *out)
	}
	return nil
}

func corpus(name string, scale float64, seed int64) (*dataset.Corpus, error) {
	apply := func(items, consumers *int) {
		if scale > 0 && scale < 1 {
			*items = int(float64(*items) * scale)
			*consumers = int(float64(*consumers) * scale)
		}
	}
	switch name {
	case "flickr-small":
		cfg := dataset.FlickrSmallConfig()
		cfg.Seed = seed
		apply(&cfg.NumItems, &cfg.NumConsumers)
		return dataset.Flickr(name, cfg), nil
	case "flickr-large":
		cfg := dataset.FlickrLargeConfig()
		cfg.Seed = seed
		apply(&cfg.NumItems, &cfg.NumConsumers)
		return dataset.Flickr(name, cfg), nil
	case "yahoo-answers":
		cfg := dataset.AnswersScaledConfig()
		cfg.Seed = seed
		apply(&cfg.NumItems, &cfg.NumConsumers)
		return dataset.Answers(name, cfg), nil
	}
	return nil, fmt.Errorf("unknown dataset %q", name)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
