// Command simjoin runs the MapReduce prefix-filtered similarity join on
// a generated corpus, reporting the candidate-edge statistics of the
// paper's Section 5.1 (pruning power, join size, shuffle volume) and
// optionally writing the resulting candidate graph.
//
// Usage:
//
//	simjoin -dataset flickr-small -sigma 4
//	simjoin -dataset yahoo-answers -sigma 0.2 -scale 0.2 -o graph.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/profiling"
	"repro/internal/simjoin"
)

func main() {
	var (
		name    = flag.String("dataset", "flickr-small", "flickr-small | flickr-large | yahoo-answers")
		sigma   = flag.Float64("sigma", 4, "similarity threshold (must be > 0)")
		alpha   = flag.Float64("alpha", 1, "capacity multiplier applied when writing the graph")
		scale   = flag.Float64("scale", 1, "corpus size scale factor in (0,1]")
		seed    = flag.Int64("seed", 1, "random seed")
		shuffle = flag.String("shuffle", "memory", "MapReduce shuffle backend: memory | spill")
		budget  = flag.Int("spill-budget", 0, "max in-memory intermediate records per job for -shuffle spill (0 = default 1M)")
		tempdir = flag.String("spill-dir", "", "directory for spill files (default: system temp dir)")
		flat    = flag.Bool("flat", false, "disable Dataset-chained jobs (re-partition each job from a flat slice)")
		out     = flag.String("o", "", "write the candidate graph (with capacities) to this file")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprof = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprof, *memprof, "simjoin")
	if err != nil {
		fail(err)
	}
	defer stopProfiles()

	c, err := corpus(*name, *scale, *seed)
	if err != nil {
		fail(err)
	}
	mr := mapreduce.Config{
		Shuffle: mapreduce.ShuffleConfig{
			Backend:      mapreduce.ShuffleKind(*shuffle),
			MemoryBudget: *budget,
			TempDir:      *tempdir,
		},
		FlatChaining: *flat,
	}
	res, err := simjoin.Join(context.Background(), c.Items, c.Consumers, *sigma, simjoin.Options{MR: mr})
	if err != nil {
		fail(err)
	}

	pairs := int64(c.NumItems()) * int64(c.NumConsumers())
	fmt.Printf("dataset:        %s (|T|=%d |C|=%d, %d possible pairs)\n",
		c.Name, c.NumItems(), c.NumConsumers(), pairs)
	fmt.Printf("sigma:          %g\n", *sigma)
	fmt.Printf("MR rounds:      %d\n", res.Rounds)
	fmt.Printf("index postings: %d\n", res.PostingEntries)
	fmt.Printf("candidates:     %d (%.4f%% of all pairs)\n",
		res.Candidates, 100*float64(res.Candidates)/float64(pairs))
	fmt.Printf("edges >= sigma: %d (%.1f%% of candidates survive verification)\n",
		len(res.Edges), 100*float64(len(res.Edges))/float64(max64(res.Candidates, 1)))
	fmt.Printf("shuffle:        %d records\n", res.Shuffle.ShuffleRecords)
	if res.Shuffle.SpilledRecords > 0 {
		fmt.Printf("spilled:        %d records in %d runs\n",
			res.Shuffle.SpilledRecords, res.Shuffle.SpillRuns)
	}
	fmt.Printf("phase walls:    map=%s shuffle=%s reduce=%s (summed over rounds)\n",
		res.Shuffle.MapWall.Round(time.Microsecond),
		res.Shuffle.ShuffleWall.Round(time.Microsecond),
		res.Shuffle.ReduceWall.Round(time.Microsecond))
	if res.Shuffle.LocalRouted > 0 || res.Shuffle.CrossRouted > 0 {
		fmt.Printf("routing:        local=%d cross=%d (identity-routed vs hashed records)\n",
			res.Shuffle.LocalRouted, res.Shuffle.CrossRouted)
	}
	if res.Shuffle.PooledBytes > 0 || res.Shuffle.PoolMisses > 0 {
		fmt.Printf("buffer pool:    %d bytes reused, %d misses\n",
			res.Shuffle.PooledBytes, res.Shuffle.PoolMisses)
	}

	if *out != "" {
		g := simjoin.ToGraph(res.Edges, c.NumItems(), c.NumConsumers())
		if err := c.ApplyCapacities(g, *alpha); err != nil {
			fail(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := graph.Write(f, g); err != nil {
			fail(err)
		}
		fmt.Printf("wrote:          %s\n", *out)
	}
}

func corpus(name string, scale float64, seed int64) (*dataset.Corpus, error) {
	apply := func(items, consumers *int) {
		if scale > 0 && scale < 1 {
			*items = int(float64(*items) * scale)
			*consumers = int(float64(*consumers) * scale)
		}
	}
	switch name {
	case "flickr-small":
		cfg := dataset.FlickrSmallConfig()
		cfg.Seed = seed
		apply(&cfg.NumItems, &cfg.NumConsumers)
		return dataset.Flickr(name, cfg), nil
	case "flickr-large":
		cfg := dataset.FlickrLargeConfig()
		cfg.Seed = seed
		apply(&cfg.NumItems, &cfg.NumConsumers)
		return dataset.Flickr(name, cfg), nil
	case "yahoo-answers":
		cfg := dataset.AnswersScaledConfig()
		cfg.Seed = seed
		apply(&cfg.NumItems, &cfg.NumConsumers)
		return dataset.Answers(name, cfg), nil
	}
	return nil, fmt.Errorf("unknown dataset %q", name)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simjoin:", err)
	os.Exit(1)
}
