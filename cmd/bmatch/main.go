// Command bmatch runs a b-matching algorithm over an edge-list graph
// file (as produced by cmd/datagen) and reports the solution quality and
// the MapReduce cost.
//
// Usage:
//
//	bmatch -in graph.txt -algo greedymr
//	bmatch -in graph.txt -algo stackmr -eps 0.5 -seed 7 -v
//	bmatch -in graph.txt -algo greedymr -dist-workers 2
//
// Algorithms: greedymr, stackmr, stackgreedymr, stackmrstrict, greedy,
// stackseq.
//
// Distributed mode: -dist-workers N shards the reduce partitions of
// every MapReduce job across N worker processes. By default the
// coordinator re-executes its own binary N times in worker mode
// (self-exec); with -dist-spawn=false it instead listens on -dist-listen
// and waits for externally launched workers, each started as
// `bmatch -dist-connect host:port -in graph.txt [-sigma σ]` with the
// same graph file. The matching output is byte-identical to the
// single-process backends for the same seed and partition count.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	socialmatch "repro"
	"repro/internal/cliio"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/profiling"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bmatch:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		in      = flag.String("in", "", "input graph file (edge-list format); - or empty reads stdin")
		algo    = flag.String("algo", "greedymr", "greedymr | stackmr | stackgreedymr | stackmrstrict | greedy | stackseq")
		eps     = flag.Float64("eps", 1, "stack slackness parameter")
		seed    = flag.Int64("seed", 1, "random seed")
		sigma   = flag.Float64("sigma", 0, "drop edges below this weight before matching")
		shuffle = flag.String("shuffle", "memory", "MapReduce shuffle backend: memory | spill (-dist-workers selects dist)")
		budget  = flag.Int("spill-budget", 0, "max in-memory intermediate records per job for -shuffle spill (0 = default 1M)")
		tempdir = flag.String("spill-dir", "", "directory for spill files (default: system temp dir)")
		wcomp   = flag.Bool("wire-compress", false, "flate-compress bulk pair frames on the dist wire (shuffle buckets, reduce outputs, checkpoints)")
		scomp   = flag.Bool("spill-compress", false, "flate-compress spill run blocks for -shuffle spill")
		flat    = flag.Bool("flat", false, "disable partition-resident round chaining (re-partition every round from a flat slice)")
		verbose = flag.Bool("v", false, "print every matched edge")
		compare = flag.Bool("compare", false, "run every algorithm and print a comparison table")
		exact   = flag.Bool("exact", false, "with -compare: also solve exactly via min-cost flow (small graphs only)")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprof = flag.String("memprofile", "", "write a heap profile to this file on exit")

		distWorkers = flag.Int("dist-workers", 0, "shard reduce partitions across this many worker processes (0 = single process)")
		distConnect = flag.String("dist-connect", "", "worker mode: connect to a coordinator at host:port, serve its jobs, and exit")
		distListen  = flag.String("dist-listen", "", "coordinator listen address for -dist-workers (default 127.0.0.1:0)")
		distSpawn   = flag.Bool("dist-spawn", true, "self-exec the -dist-workers worker processes (false: wait for -dist-connect workers)")
		distLate    = flag.Bool("dist-accept-late", false, "keep accepting replacement -dist-connect workers after startup; they adopt a dead worker's partitions at the next recovery")
		ckptEvery   = flag.Int("ckpt-every", 0, "dist checkpoint throttle: 0 checkpoints every round's resident state, k>0 every k-th round, negative disables (a lost worker then kills the run)")
		ckptDir     = flag.String("dist-ckpt-dir", "", "worker mode: additionally persist checkpoints as local run files in this directory (default: coordinator mirror only)")
		distHB      = flag.Duration("dist-heartbeat", 500*time.Millisecond, "dist worker heartbeat interval; a worker silent for 3 intervals is suspected (0 disables health monitoring)")
		distSpec    = flag.Float64("dist-speculation", 0, "speculatively re-execute a straggler's partitions once it runs past this factor of the round's median worker time (0 disables)")

		distReconnect = flag.Int("dist-reconnect", 8, "worker redial budget per outage: a severed worker redials and resumes its session instead of dying (0 disables reconnection)")
		distGrace     = flag.Duration("dist-reconnect-grace", 10*time.Second, "how long the coordinator holds a severed worker's partitions before declaring it dead and reseeding (0 disables session resume)")
		distJournal   = flag.String("dist-journal-dir", "", "coordinator run journal directory: job outputs and round commits persist here, enabling -dist-resume after a coordinator crash")
		distResume    = flag.Bool("dist-resume", false, "resume a crashed run from -dist-journal-dir: committed jobs replay from the journal instead of re-running")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprof, *memprof)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	g, err := loadGraph(*in, *sigma)
	if err != nil {
		return err
	}

	if *distConnect != "" {
		// Worker mode: same graph, same registered jobs, serve until the
		// coordinator hangs up.
		core.RegisterDistJobs(g)
		reconnect := mapreduce.ReconnectPolicy{Attempts: *distReconnect}
		if *distReconnect <= 0 {
			reconnect.Attempts = -1 // flag 0 means off; the policy zero value means default
		}
		return mapreduce.ServeDistWorkerOpts(context.Background(), *distConnect,
			mapreduce.DistWorkerOptions{CheckpointDir: *ckptDir, Reconnect: reconnect})
	}

	shuffleOpts := socialmatch.Options{
		Shuffle:             socialmatch.ShuffleKind(*shuffle),
		ShuffleMemoryBudget: *budget,
		ShuffleTempDir:      *tempdir,
		WireCompression:     *wcomp,
		SpillCompression:    *scomp,
		FlatDataflow:        *flat,
		CheckpointEvery:     *ckptEvery,
		SpeculationFactor:   *distSpec,
	}
	if *distWorkers > 0 {
		if *in == "" || *in == "-" {
			return fmt.Errorf("-dist-workers needs -in to name a file (workers load the same graph)")
		}
		clusterOpts := mapreduce.DistClusterOptions{
			Listen:         *distListen,
			AcceptLate:     *distLate,
			HeartbeatEvery: *distHB,
			ReconnectGrace: *distGrace,
			JournalDir:     *distJournal,
			Resume:         *distResume,
		}
		if *distHB == 0 {
			clusterOpts.HeartbeatEvery = -1 // flag 0 means off; the options zero value means default
		}
		if *distSpawn {
			workerArgs := []string{"-in", *in, "-dist-reconnect", fmt.Sprint(*distReconnect)}
			if *sigma > 0 {
				workerArgs = append(workerArgs, "-sigma", fmt.Sprint(*sigma))
			}
			clusterOpts.Spawn, err = mapreduce.DistSelfExec(workerArgs...)
			if err != nil {
				return err
			}
		}
		cluster, err := mapreduce.StartDistCluster(*distWorkers, clusterOpts)
		if err != nil {
			return err
		}
		defer func() {
			// Printed only when something actually happened, so a healthy
			// run's output stays byte-stable for the CI smoke diffs.
			rs := cluster.RecoveryStats()
			if rs.WorkersLost > 0 {
				fmt.Fprintf(os.Stderr, "dist recovery:    %d workers lost, %d jobs retried, %d partitions reseeded\n",
					rs.WorkersLost, rs.Recoveries, rs.Reseeded)
			}
			if rs.HeartbeatTimeouts > 0 || rs.SpeculativeLaunches > 0 || rs.PartitionsMigrated > 0 {
				fmt.Fprintf(os.Stderr, "dist scheduling:  %d heartbeat timeouts, %d speculative launches (%d won), %d partitions migrated\n",
					rs.HeartbeatTimeouts, rs.SpeculativeLaunches, rs.SpeculativeWins, rs.PartitionsMigrated)
			}
			if rs.WorkerReconnects > 0 || rs.JobsReplayed > 0 {
				fmt.Fprintf(os.Stderr, "dist durability:  %d worker reconnects (%d frames replayed), %d jobs replayed from journal, %d journal bytes\n",
					rs.WorkerReconnects, rs.FramesReplayed, rs.JobsReplayed, rs.JournalBytes)
			}
		}()
		// The checked close matters here too: it reaps the spawned
		// workers, and a worker that died with a nonzero status is a
		// failed run.
		defer func() {
			if cerr := cluster.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		shuffleOpts.Shuffle = socialmatch.ShuffleDist
		shuffleOpts.Dist = cluster
	}

	out := cliio.Stdout()
	defer cliio.CloseInto(out, &err)

	if *compare {
		return compareAll(out, g, *eps, *seed, *exact, shuffleOpts)
	}

	opts := shuffleOpts
	opts.Algorithm = socialmatch.Algorithm(*algo)
	opts.Eps = *eps
	opts.Seed = *seed
	res, err := socialmatch.Match(context.Background(), g, opts)
	if err != nil {
		return err
	}

	m := res.Matching
	fmt.Fprintf(out, "algorithm:        %s\n", *algo)
	fmt.Fprintf(out, "graph:            |T|=%d |C|=%d |E|=%d\n", g.NumItems(), g.NumConsumers(), g.NumEdges())
	fmt.Fprintf(out, "matching value:   %.4f\n", m.Value())
	fmt.Fprintf(out, "matched edges:    %d\n", m.Size())
	fmt.Fprintf(out, "MapReduce rounds: %d\n", res.Rounds)
	fmt.Fprintf(out, "violation eps':   %.6f (max stretch %.3f)\n", m.Violation(), m.MaxViolationFactor())
	if res.Shuffle.SpilledRecords > 0 {
		fmt.Fprintf(out, "shuffle spill:    %d records in %d runs\n",
			res.Shuffle.SpilledRecords, res.Shuffle.SpillRuns)
	}
	fmt.Fprintf(out, "phase walls:      map=%s shuffle=%s reduce=%s (summed over rounds)\n",
		res.Shuffle.MapWall.Round(time.Microsecond),
		res.Shuffle.ShuffleWall.Round(time.Microsecond),
		res.Shuffle.ReduceWall.Round(time.Microsecond))
	if res.Shuffle.LocalRouted > 0 || res.Shuffle.CrossRouted > 0 {
		fmt.Fprintf(out, "shuffle routing:  local=%d cross=%d (identity-routed vs hashed records)\n",
			res.Shuffle.LocalRouted, res.Shuffle.CrossRouted)
	}
	if res.Shuffle.PooledBytes > 0 || res.Shuffle.PoolMisses > 0 {
		fmt.Fprintf(out, "buffer pool:      %d bytes reused, %d misses (summed over rounds)\n",
			res.Shuffle.PooledBytes, res.Shuffle.PoolMisses)
	}
	if res.Shuffle.RemoteBytesOut > 0 || res.Shuffle.RemoteBytesIn > 0 {
		fmt.Fprintf(out, "dist transport:   %d bytes out, %d bytes in, worker wall %s (summed over rounds)\n",
			res.Shuffle.RemoteBytesOut, res.Shuffle.RemoteBytesIn,
			res.Shuffle.WorkerWall.Round(time.Microsecond))
	}
	if res.Shuffle.WireBytesSaved > 0 || res.Shuffle.SpillBytesSaved > 0 {
		fmt.Fprintf(out, "codec savings:    %d bytes wire, %d bytes spill (block compression)\n",
			res.Shuffle.WireBytesSaved, res.Shuffle.SpillBytesSaved)
	}
	if *verbose {
		for _, e := range m.Edges() {
			fmt.Fprintf(out, "match item=%d consumer=%d w=%.4f\n",
				int(e.Item), int(e.Consumer)-g.NumItems(), e.Weight)
		}
	}
	return nil
}

// loadGraph reads the graph (file or stdin) and applies the -sigma
// pre-filter — the shared preprocessing of coordinator and workers, so
// both sides hold identical graphs.
func loadGraph(in string, sigma float64) (*graph.Bipartite, error) {
	r := io.Reader(os.Stdin)
	if in != "" && in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	g, err := graph.Read(r)
	if err != nil {
		return nil, err
	}
	if sigma > 0 {
		g = g.FilterEdges(sigma)
	}
	return g, nil
}

// compareAll runs every algorithm on the same graph and prints one row
// per algorithm; with exact it appends the flow-based optimum and a
// value/OPT column.
func compareAll(out io.Writer, g *graph.Bipartite, eps float64, seed int64, exact bool, shuffleOpts socialmatch.Options) error {
	ctx := context.Background()
	opt := 0.0
	if exact {
		_, v, err := flow.MaxWeightBMatching(g)
		if err != nil {
			return err
		}
		opt = v
	}
	fmt.Fprintf(out, "graph: |T|=%d |C|=%d |E|=%d\n", g.NumItems(), g.NumConsumers(), g.NumEdges())
	fmt.Fprintf(out, "%-14s %12s %8s %8s %10s", "algorithm", "value", "edges", "rounds", "eps'")
	if exact {
		fmt.Fprintf(out, " %10s", "value/OPT")
	}
	fmt.Fprintln(out)
	for _, alg := range socialmatch.Algorithms() {
		opts := shuffleOpts
		opts.Algorithm = alg
		opts.Eps = eps
		opts.Seed = seed
		res, err := socialmatch.Match(ctx, g.Clone(), opts)
		if err != nil {
			return err
		}
		m := res.Matching
		fmt.Fprintf(out, "%-14s %12.2f %8d %8d %10.5f", alg, m.Value(), m.Size(), res.Rounds, m.Violation())
		if exact && opt > 0 {
			fmt.Fprintf(out, " %10.3f", m.Value()/opt)
		}
		fmt.Fprintln(out)
	}
	if exact {
		fmt.Fprintf(out, "%-14s %12.2f\n", "exact(flow)", opt)
	}
	return nil
}
