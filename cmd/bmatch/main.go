// Command bmatch runs a b-matching algorithm over an edge-list graph
// file (as produced by cmd/datagen) and reports the solution quality and
// the MapReduce cost.
//
// Usage:
//
//	bmatch -in graph.txt -algo greedymr
//	bmatch -in graph.txt -algo stackmr -eps 0.5 -seed 7 -v
//
// Algorithms: greedymr, stackmr, stackgreedymr, stackmrstrict, greedy,
// stackseq.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	socialmatch "repro"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/profiling"
)

func main() {
	var (
		in      = flag.String("in", "", "input graph file (edge-list format); - or empty reads stdin")
		algo    = flag.String("algo", "greedymr", "greedymr | stackmr | stackgreedymr | stackmrstrict | greedy | stackseq")
		eps     = flag.Float64("eps", 1, "stack slackness parameter")
		seed    = flag.Int64("seed", 1, "random seed")
		sigma   = flag.Float64("sigma", 0, "drop edges below this weight before matching")
		shuffle = flag.String("shuffle", "memory", "MapReduce shuffle backend: memory | spill")
		budget  = flag.Int("spill-budget", 0, "max in-memory intermediate records per job for -shuffle spill (0 = default 1M)")
		tempdir = flag.String("spill-dir", "", "directory for spill files (default: system temp dir)")
		flat    = flag.Bool("flat", false, "disable partition-resident round chaining (re-partition every round from a flat slice)")
		verbose = flag.Bool("v", false, "print every matched edge")
		compare = flag.Bool("compare", false, "run every algorithm and print a comparison table")
		exact   = flag.Bool("exact", false, "with -compare: also solve exactly via min-cost flow (small graphs only)")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprof = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuprof, *memprof, "bmatch")
	if err != nil {
		fail(err)
	}
	defer stopProfiles()

	shuffleOpts := socialmatch.Options{
		Shuffle:             socialmatch.ShuffleKind(*shuffle),
		ShuffleMemoryBudget: *budget,
		ShuffleTempDir:      *tempdir,
		FlatDataflow:        *flat,
	}

	r := os.Stdin
	if *in != "" && *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	g, err := graph.Read(r)
	if err != nil {
		fail(err)
	}
	if *sigma > 0 {
		g = g.FilterEdges(*sigma)
	}

	if *compare {
		compareAll(g, *eps, *seed, *exact, shuffleOpts)
		return
	}

	opts := shuffleOpts
	opts.Algorithm = socialmatch.Algorithm(*algo)
	opts.Eps = *eps
	opts.Seed = *seed
	res, err := socialmatch.Match(context.Background(), g, opts)
	if err != nil {
		fail(err)
	}

	m := res.Matching
	fmt.Printf("algorithm:        %s\n", *algo)
	fmt.Printf("graph:            |T|=%d |C|=%d |E|=%d\n", g.NumItems(), g.NumConsumers(), g.NumEdges())
	fmt.Printf("matching value:   %.4f\n", m.Value())
	fmt.Printf("matched edges:    %d\n", m.Size())
	fmt.Printf("MapReduce rounds: %d\n", res.Rounds)
	fmt.Printf("violation eps':   %.6f (max stretch %.3f)\n", m.Violation(), m.MaxViolationFactor())
	if res.Shuffle.SpilledRecords > 0 {
		fmt.Printf("shuffle spill:    %d records in %d runs\n",
			res.Shuffle.SpilledRecords, res.Shuffle.SpillRuns)
	}
	fmt.Printf("phase walls:      map=%s shuffle=%s reduce=%s (summed over rounds)\n",
		res.Shuffle.MapWall.Round(time.Microsecond),
		res.Shuffle.ShuffleWall.Round(time.Microsecond),
		res.Shuffle.ReduceWall.Round(time.Microsecond))
	if res.Shuffle.LocalRouted > 0 || res.Shuffle.CrossRouted > 0 {
		fmt.Printf("shuffle routing:  local=%d cross=%d (identity-routed vs hashed records)\n",
			res.Shuffle.LocalRouted, res.Shuffle.CrossRouted)
	}
	if res.Shuffle.PooledBytes > 0 || res.Shuffle.PoolMisses > 0 {
		fmt.Printf("buffer pool:      %d bytes reused, %d misses (summed over rounds)\n",
			res.Shuffle.PooledBytes, res.Shuffle.PoolMisses)
	}
	if *verbose {
		for _, e := range m.Edges() {
			fmt.Printf("match item=%d consumer=%d w=%.4f\n",
				int(e.Item), int(e.Consumer)-g.NumItems(), e.Weight)
		}
	}
}

// compareAll runs every algorithm on the same graph and prints one row
// per algorithm; with exact it appends the flow-based optimum and a
// value/OPT column.
func compareAll(g *graph.Bipartite, eps float64, seed int64, exact bool, shuffleOpts socialmatch.Options) {
	ctx := context.Background()
	opt := 0.0
	if exact {
		_, v, err := flow.MaxWeightBMatching(g)
		if err != nil {
			fail(err)
		}
		opt = v
	}
	fmt.Printf("graph: |T|=%d |C|=%d |E|=%d\n", g.NumItems(), g.NumConsumers(), g.NumEdges())
	fmt.Printf("%-14s %12s %8s %8s %10s", "algorithm", "value", "edges", "rounds", "eps'")
	if exact {
		fmt.Printf(" %10s", "value/OPT")
	}
	fmt.Println()
	for _, alg := range socialmatch.Algorithms() {
		opts := shuffleOpts
		opts.Algorithm = alg
		opts.Eps = eps
		opts.Seed = seed
		res, err := socialmatch.Match(ctx, g.Clone(), opts)
		if err != nil {
			fail(err)
		}
		m := res.Matching
		fmt.Printf("%-14s %12.2f %8d %8d %10.5f", alg, m.Value(), m.Size(), res.Rounds, m.Violation())
		if exact && opt > 0 {
			fmt.Printf(" %10.3f", m.Value()/opt)
		}
		fmt.Println()
	}
	if exact {
		fmt.Printf("%-14s %12.2f\n", "exact(flow)", opt)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bmatch:", err)
	os.Exit(1)
}
