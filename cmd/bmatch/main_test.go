package main

import (
	"io"
	"testing"

	socialmatch "repro"
	"repro/internal/graph"
)

func testGraph() *graph.Bipartite {
	g := graph.NewBipartite(3, 2)
	g.SetCapacity(g.ItemID(0), 1)
	g.SetCapacity(g.ItemID(1), 1)
	g.SetCapacity(g.ItemID(2), 1)
	g.SetCapacity(g.ConsumerID(0), 2)
	g.SetCapacity(g.ConsumerID(1), 1)
	g.AddEdge(g.ItemID(0), g.ConsumerID(0), 1.5)
	g.AddEdge(g.ItemID(1), g.ConsumerID(0), 0.5)
	g.AddEdge(g.ItemID(2), g.ConsumerID(1), 2.0)
	return g
}

func TestCompareAllRunsEveryAlgorithm(t *testing.T) {
	// compareAll must complete without error on a well-formed graph,
	// both with and without the exact oracle.
	if err := compareAll(io.Discard, testGraph(), 1, 1, false, socialmatch.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := compareAll(io.Discard, testGraph(), 1, 1, true, socialmatch.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareAllOnSpillBackend(t *testing.T) {
	err := compareAll(io.Discard, testGraph(), 1, 1, false, socialmatch.Options{
		Shuffle:             socialmatch.ShuffleSpill,
		ShuffleMemoryBudget: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
}
