package main

import (
	"testing"

	socialmatch "repro"
	"repro/internal/graph"
)

func testGraph() *graph.Bipartite {
	g := graph.NewBipartite(3, 2)
	g.SetCapacity(g.ItemID(0), 1)
	g.SetCapacity(g.ItemID(1), 1)
	g.SetCapacity(g.ItemID(2), 1)
	g.SetCapacity(g.ConsumerID(0), 2)
	g.SetCapacity(g.ConsumerID(1), 1)
	g.AddEdge(g.ItemID(0), g.ConsumerID(0), 1.5)
	g.AddEdge(g.ItemID(1), g.ConsumerID(0), 0.5)
	g.AddEdge(g.ItemID(2), g.ConsumerID(1), 2.0)
	return g
}

func TestCompareAllRunsEveryAlgorithm(t *testing.T) {
	// compareAll must complete without error on a well-formed graph,
	// both with and without the exact oracle.
	compareAll(testGraph(), 1, 1, false, socialmatch.Options{})
	compareAll(testGraph(), 1, 1, true, socialmatch.Options{})
}

func TestCompareAllOnSpillBackend(t *testing.T) {
	compareAll(testGraph(), 1, 1, false, socialmatch.Options{
		Shuffle:             socialmatch.ShuffleSpill,
		ShuffleMemoryBudget: 8,
	})
}
