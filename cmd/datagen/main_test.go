package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// TestRunWritesGraphFile pins the happy path of the checked output
// helper: run writes a loadable graph and exits clean.
func TestRunWritesGraphFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	err := run([]string{"-dataset", "synthetic", "-items", "50", "-consumers", "10", "-o", path})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumItems() != 50 || g.NumEdges() == 0 {
		t.Fatalf("round trip lost the graph: |T|=%d |E|=%d", g.NumItems(), g.NumEdges())
	}
}

// TestRunFailingOutputExitsNonzero pins the satellite bugfix end to
// end: writing the graph to a full device must surface as an error (a
// nonzero exit from main), never a silent success with a truncated
// file. Before the cliio rework this very invocation exited 0.
func TestRunFailingOutputExitsNonzero(t *testing.T) {
	if _, err := os.OpenFile("/dev/full", os.O_WRONLY, 0); err != nil {
		t.Skip("/dev/full not available")
	}
	err := run([]string{"-dataset", "synthetic", "-items", "50", "-consumers", "10", "-o", "/dev/full"})
	if err == nil {
		t.Fatal("writing to a full device reported success")
	}
}

func TestBuildKnownDatasets(t *testing.T) {
	for _, name := range []string{"flickr-small", "flickr-large", "yahoo-answers"} {
		g, err := build(name, 0.5, 1, 0.03, 0, 0, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumEdges() == 0 {
			t.Errorf("%s: no edges", name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Capacities applied.
		anyCap := false
		for v := 0; v < g.NumNodes(); v++ {
			if g.Capacity(graph.NodeID(v)) > 0 {
				anyCap = true
				break
			}
		}
		if !anyCap {
			t.Errorf("%s: no capacities set", name)
		}
	}
}

func TestBuildSynthetic(t *testing.T) {
	g, err := build("synthetic", 0, 1, 1, 500, 100, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumItems() != 500 || g.NumConsumers() != 100 {
		t.Errorf("sizes %d %d", g.NumItems(), g.NumConsumers())
	}
}

func TestBuildUnknownDataset(t *testing.T) {
	if _, err := build("nope", 0, 1, 1, 0, 0, 0, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestSortEdges(t *testing.T) {
	g, err := build("synthetic", 0, 1, 1, 200, 40, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := sortEdges(g)
	if err != nil {
		t.Fatal(err)
	}
	if sorted.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d -> %d", g.NumEdges(), sorted.NumEdges())
	}
	for i := 1; i < sorted.NumEdges(); i++ {
		if sorted.Edge(i).Weight > sorted.Edge(i-1).Weight {
			t.Fatal("edges not in descending weight order")
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		if sorted.Capacity(graph.NodeID(v)) != g.Capacity(graph.NodeID(v)) {
			t.Fatal("capacities lost in sort")
		}
	}
}

func TestScaleCfg(t *testing.T) {
	items, consumers := 1000, 500
	scaleCfg(&items, &consumers, 0.1)
	if items != 100 || consumers != 50 {
		t.Errorf("scaled to %d %d", items, consumers)
	}
	items, consumers = 1000, 500
	scaleCfg(&items, &consumers, 1)
	if items != 1000 {
		t.Error("scale 1 must not change sizes")
	}
	items, consumers = 20, 20
	scaleCfg(&items, &consumers, 0.01)
	if items < 10 || consumers < 10 {
		t.Error("floor not applied")
	}
}
