// Command datagen generates the synthetic datasets of the reproduction
// and writes them as edge-list graph files consumable by cmd/bmatch.
//
// Usage:
//
//	datagen -dataset flickr-small -sigma 4 -alpha 1 -o graph.txt
//	datagen -dataset synthetic -items 100000 -consumers 10000 -o big.txt
//
// Datasets: flickr-small, flickr-large, yahoo-answers (vector corpora
// with Section-4 capacities), synthetic (direct edge-level generator for
// scale runs).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliio"
	"repro/internal/dataset"
	"repro/internal/extsort"
	"repro/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		name      = fs.String("dataset", "flickr-small", "flickr-small | flickr-large | yahoo-answers | synthetic")
		sigma     = fs.Float64("sigma", 0, "similarity threshold for candidate edges (0 keeps all positive pairs)")
		alpha     = fs.Float64("alpha", 1, "consumer capacity multiplier b(u) = alpha * n(u)")
		scale     = fs.Float64("scale", 1, "corpus size scale factor in (0,1]")
		out       = fs.String("o", "", "output file (default stdout)")
		items     = fs.Int("items", 20000, "synthetic: number of items")
		consumers = fs.Int("consumers", 2000, "synthetic: number of consumers")
		degree    = fs.Int("degree", 10, "synthetic: mean item degree")
		seed      = fs.Int64("seed", 1, "random seed")
		sorted    = fs.Bool("sort", false, "write edges in descending weight order (bounded-memory external sort)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			// -h printed usage; that is a clean exit, not a failure.
			return nil
		}
		return err
	}

	g, err := build(*name, *sigma, *alpha, *scale, *items, *consumers, *degree, *seed)
	if err != nil {
		return err
	}
	if *sorted {
		if g, err = sortEdges(g); err != nil {
			return err
		}
	}

	// The checked close is what makes a full disk a nonzero exit: the
	// write may land entirely in the buffer, and only a clean
	// flush-and-close proves the graph reached the file.
	w, err := cliio.Create(*out)
	if err != nil {
		return err
	}
	defer cliio.CloseInto(w, &err)
	if err := graph.Write(w, g); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "datagen: %s |T|=%d |C|=%d |E|=%d\n",
		*name, g.NumItems(), g.NumConsumers(), g.NumEdges())
	return nil
}

func build(name string, sigma, alpha, scale float64, items, consumers, degree int, seed int64) (*graph.Bipartite, error) {
	if name == "synthetic" {
		return dataset.Synthetic(dataset.SyntheticConfig{
			NumItems: items, NumConsumers: consumers, MeanDegree: degree,
			DegreeAlpha: 1.4, WeightScale: 1, CapacityAlpha: 1.2,
			CapacityMax: 200, Seed: seed,
		}), nil
	}
	var c *dataset.Corpus
	switch name {
	case "flickr-small":
		cfg := dataset.FlickrSmallConfig()
		cfg.Seed = seed
		scaleCfg(&cfg.NumItems, &cfg.NumConsumers, scale)
		c = dataset.Flickr(name, cfg)
	case "flickr-large":
		cfg := dataset.FlickrLargeConfig()
		cfg.Seed = seed
		scaleCfg(&cfg.NumItems, &cfg.NumConsumers, scale)
		c = dataset.Flickr(name, cfg)
	case "yahoo-answers":
		cfg := dataset.AnswersScaledConfig()
		cfg.Seed = seed
		scaleCfg(&cfg.NumItems, &cfg.NumConsumers, scale)
		c = dataset.Answers(name, cfg)
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
	g := c.BuildGraph(sigma)
	if err := c.ApplyCapacities(g, alpha); err != nil {
		return nil, err
	}
	return g, nil
}

// sortEdges rebuilds the graph with edges in descending weight order,
// using the external sorter so the tool stays within a bounded memory
// buffer even for graphs far larger than RAM would comfortably hold.
func sortEdges(g *graph.Bipartite) (*graph.Bipartite, error) {
	s := extsort.New(extsort.ByWeightDesc, extsort.EdgeCodec{},
		extsort.Config{MaxInMemory: 1 << 20})
	for _, e := range g.Edges() {
		rec := extsort.WeightedEdgeRec{
			Item:     int32(e.Item),
			Consumer: int32(int(e.Consumer) - g.NumItems()),
			Weight:   e.Weight,
		}
		if err := s.Add(rec); err != nil {
			return nil, err
		}
	}
	it, err := s.Sort()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	out := graph.NewBipartite(g.NumItems(), g.NumConsumers())
	for v := 0; v < g.NumNodes(); v++ {
		out.SetCapacity(graph.NodeID(v), g.Capacity(graph.NodeID(v)))
	}
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.AddEdge(out.ItemID(int(rec.Item)), out.ConsumerID(int(rec.Consumer)), rec.Weight)
	}
}

func scaleCfg(items, consumers *int, scale float64) {
	if scale <= 0 || scale >= 1 {
		return
	}
	*items = int(float64(*items) * scale)
	*consumers = int(float64(*consumers) * scale)
	if *items < 10 {
		*items = 10
	}
	if *consumers < 10 {
		*consumers = 10
	}
}
