// Command datagen generates the synthetic datasets of the reproduction
// and writes them as edge-list graph files consumable by cmd/bmatch.
//
// Usage:
//
//	datagen -dataset flickr-small -sigma 4 -alpha 1 -o graph.txt
//	datagen -dataset synthetic -items 100000 -consumers 10000 -o big.txt
//
// Datasets: flickr-small, flickr-large, yahoo-answers (vector corpora
// with Section-4 capacities), synthetic (direct edge-level generator for
// scale runs).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/extsort"
	"repro/internal/graph"
)

func main() {
	var (
		name      = flag.String("dataset", "flickr-small", "flickr-small | flickr-large | yahoo-answers | synthetic")
		sigma     = flag.Float64("sigma", 0, "similarity threshold for candidate edges (0 keeps all positive pairs)")
		alpha     = flag.Float64("alpha", 1, "consumer capacity multiplier b(u) = alpha * n(u)")
		scale     = flag.Float64("scale", 1, "corpus size scale factor in (0,1]")
		out       = flag.String("o", "", "output file (default stdout)")
		items     = flag.Int("items", 20000, "synthetic: number of items")
		consumers = flag.Int("consumers", 2000, "synthetic: number of consumers")
		degree    = flag.Int("degree", 10, "synthetic: mean item degree")
		seed      = flag.Int64("seed", 1, "random seed")
		sorted    = flag.Bool("sort", false, "write edges in descending weight order (bounded-memory external sort)")
	)
	flag.Parse()

	g, err := build(*name, *sigma, *alpha, *scale, *items, *consumers, *degree, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if *sorted {
		if g, err = sortEdges(g); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := graph.Write(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datagen: %s |T|=%d |C|=%d |E|=%d\n",
		*name, g.NumItems(), g.NumConsumers(), g.NumEdges())
}

func build(name string, sigma, alpha, scale float64, items, consumers, degree int, seed int64) (*graph.Bipartite, error) {
	if name == "synthetic" {
		return dataset.Synthetic(dataset.SyntheticConfig{
			NumItems: items, NumConsumers: consumers, MeanDegree: degree,
			DegreeAlpha: 1.4, WeightScale: 1, CapacityAlpha: 1.2,
			CapacityMax: 200, Seed: seed,
		}), nil
	}
	var c *dataset.Corpus
	switch name {
	case "flickr-small":
		cfg := dataset.FlickrSmallConfig()
		cfg.Seed = seed
		scaleCfg(&cfg.NumItems, &cfg.NumConsumers, scale)
		c = dataset.Flickr(name, cfg)
	case "flickr-large":
		cfg := dataset.FlickrLargeConfig()
		cfg.Seed = seed
		scaleCfg(&cfg.NumItems, &cfg.NumConsumers, scale)
		c = dataset.Flickr(name, cfg)
	case "yahoo-answers":
		cfg := dataset.AnswersScaledConfig()
		cfg.Seed = seed
		scaleCfg(&cfg.NumItems, &cfg.NumConsumers, scale)
		c = dataset.Answers(name, cfg)
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
	g := c.BuildGraph(sigma)
	if err := c.ApplyCapacities(g, alpha); err != nil {
		return nil, err
	}
	return g, nil
}

// sortEdges rebuilds the graph with edges in descending weight order,
// using the external sorter so the tool stays within a bounded memory
// buffer even for graphs far larger than RAM would comfortably hold.
func sortEdges(g *graph.Bipartite) (*graph.Bipartite, error) {
	s := extsort.New(extsort.ByWeightDesc, extsort.EdgeCodec{},
		extsort.Config{MaxInMemory: 1 << 20})
	for _, e := range g.Edges() {
		rec := extsort.WeightedEdgeRec{
			Item:     int32(e.Item),
			Consumer: int32(int(e.Consumer) - g.NumItems()),
			Weight:   e.Weight,
		}
		if err := s.Add(rec); err != nil {
			return nil, err
		}
	}
	it, err := s.Sort()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	out := graph.NewBipartite(g.NumItems(), g.NumConsumers())
	for v := 0; v < g.NumNodes(); v++ {
		out.SetCapacity(graph.NodeID(v), g.Capacity(graph.NodeID(v)))
	}
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.AddEdge(out.ItemID(int(rec.Item)), out.ConsumerID(int(rec.Consumer)), rec.Weight)
	}
}

func scaleCfg(items, consumers *int, scale float64) {
	if scale <= 0 || scale >= 1 {
		return
	}
	*items = int(float64(*items) * scale)
	*consumers = int(float64(*consumers) * scale)
	if *items < 10 {
		*items = 10
	}
	if *consumers < 10 {
		*consumers = 10
	}
}
