// Package clean has nothing for any analyzer to object to; the driver
// tests assert repolint exits successfully over it.
package clean

import "sort"

// Keys returns the map's keys in sorted order.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
