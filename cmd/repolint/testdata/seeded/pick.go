// Package seeded is a deliberately broken module: it draws from the
// global math/rand source, which the determinism rule bans. The driver
// tests run repolint over it and assert the run FAILS — proof that the
// CI lint step catches a seeded violation rather than rubber-stamping.
package seeded

import "math/rand"

// Pick violates the determinism rule on purpose. Do not fix.
func Pick() int { return rand.Intn(6) }
