// Command repolint runs the repository's invariant analyzers (package
// internal/lint) over the module and prints findings as
//
//	file:line: [rule] message
//
// exiting nonzero when any unsuppressed finding remains. It is the
// machine-checked form of the invariants ARCHITECTURE.md states in
// prose: bit-identical backend outputs (determinism), the ReduceFunc
// values contract (noretain), sync.Pool check-in discipline (poolpair),
// protocol switch coverage (msgexhaustive), and checked durability
// errors (errdrop). CI runs it on every push; scripts/lint.sh runs the
// same thing locally.
//
// Usage:
//
//	repolint [-root dir] [-list] [packages]
//
// With no package arguments (or "./..."), the whole module is analyzed.
// Other arguments select packages by import-path suffix or ./-relative
// prefix: `repolint ./internal/mapreduce` or `repolint internal/core`.
//
// Findings are suppressed one line at a time with a justified
// directive, checked by the tool itself (missing reasons and stale
// suppressions are findings):
//
//	//lint:allow <rule> — <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cliio"
	"repro/internal/lint"
)

func main() {
	switch err := run(os.Args[1:], os.Stdout); err.(type) {
	case nil:
	case findings:
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
}

// findings is the sentinel for "ran fine, found problems" — exit 1,
// distinct from exit 2 for "could not run".
type findings int

func (f findings) Error() string { return fmt.Sprintf("%d finding(s)", int(f)) }

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("repolint", flag.ExitOnError)
	root := fs.String("root", "", "module root (default: walk up from cwd to go.mod)")
	list := fs.Bool("list", false, "list every rule with its documentation and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	out := cliio.Wrap(stdout)

	analyzers := lint.All()
	if *list {
		for i, a := range analyzers {
			if i > 0 {
				fmt.Fprintln(out)
			}
			fmt.Fprintf(out, "%s\n", a.Name)
			for _, line := range strings.Split(a.Doc, "\n") {
				fmt.Fprintf(out, "    %s\n", line)
			}
		}
		fmt.Fprintln(out)
		fmt.Fprintln(out, "Suppress one finding with a justified directive on its line (or the line above):")
		fmt.Fprintln(out, "    //lint:allow <rule> — <reason>")
		fmt.Fprintln(out, "Missing reasons and stale suppressions are reported as [directive] findings.")
		return out.Close()
	}

	dir := *root
	if dir == "" {
		var err error
		if dir, err = findModuleRoot(); err != nil {
			return err
		}
	}
	modPath, err := lint.ModulePath(dir)
	if err != nil {
		return err
	}
	loader := lint.NewLoader()
	loader.AddRoot(modPath, dir)
	pkgs, err := loader.LoadModule(modPath)
	if err != nil {
		return err
	}
	if sel := fs.Args(); len(sel) > 0 && !(len(sel) == 1 && sel[0] == "./...") {
		pkgs = filterPackages(pkgs, modPath, sel)
		if len(pkgs) == 0 {
			return fmt.Errorf("no packages match %v", sel)
		}
	}

	diags := lint.Run(loader.Fset, pkgs, analyzers)
	for _, d := range diags {
		rel := d.Pos.Filename
		if r, err := filepath.Rel(dir, rel); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		fmt.Fprintf(out, "%s:%d: [%s] %s\n", rel, d.Pos.Line, d.Rule, d.Message)
	}
	if err := out.Close(); err != nil {
		return err
	}
	if n := len(diags); n > 0 {
		return findings(n)
	}
	return nil
}

// filterPackages keeps packages matching any selector: "./x/..." and
// "./x" are module-relative, bare paths match by suffix or exact
// import path.
func filterPackages(pkgs []*lint.Package, modPath string, sel []string) []*lint.Package {
	match := func(p *lint.Package) bool {
		for _, s := range sel {
			s = strings.TrimSuffix(s, "/...")
			s = strings.TrimPrefix(s, "./")
			if s == "" || s == "." {
				return true
			}
			full := modPath + "/" + s
			if p.Path == full || strings.HasPrefix(p.Path, full+"/") ||
				p.Path == s || strings.HasSuffix(p.Path, "/"+s) {
				return true
			}
		}
		return false
	}
	var out []*lint.Package
	for _, p := range pkgs {
		if match(p) {
			out = append(out, p)
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
