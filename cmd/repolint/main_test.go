package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// runCapture invokes run with stdout redirected to a temp file and
// returns the error plus everything written.
func runCapture(t *testing.T, args []string) (error, string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "repolint-out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return runErr, string(data)
}

// TestRunFailsOnSeededViolation is the negative test the CI step rests
// on: a module with a known violation must make the driver report
// findings (exit 1 in main), not pass silently.
func TestRunFailsOnSeededViolation(t *testing.T) {
	err, out := runCapture(t, []string{"-root", filepath.Join("testdata", "seeded")})
	n, ok := err.(findings)
	if !ok {
		t.Fatalf("want findings error, got %v (output: %q)", err, out)
	}
	if n < 1 {
		t.Fatalf("findings error with count %d", int(n))
	}
	if !strings.Contains(out, "[determinism]") || !strings.Contains(out, "pick.go") {
		t.Errorf("output missing the seeded determinism finding:\n%s", out)
	}
}

func TestRunCleanModule(t *testing.T) {
	err, out := runCapture(t, []string{"-root", filepath.Join("testdata", "clean")})
	if err != nil {
		t.Fatalf("clean module reported: %v\n%s", err, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("clean module produced output:\n%s", out)
	}
}

// TestListMode pins the -list contract: every registered rule appears
// with its doc summary plus the directive syntax footer.
func TestListMode(t *testing.T) {
	err, out := runCapture(t, []string{"-list"})
	if err != nil {
		t.Fatalf("-list: %v", err)
	}
	for _, a := range lint.All() {
		if !strings.Contains(out, a.Name+"\n") {
			t.Errorf("-list output missing rule %s", a.Name)
		}
		summary := strings.SplitN(a.Doc, "\n", 2)[0]
		if !strings.Contains(out, summary) {
			t.Errorf("-list output missing doc summary for %s", a.Name)
		}
	}
	if !strings.Contains(out, "//lint:allow <rule>") {
		t.Error("-list output missing the directive syntax footer")
	}
}

// TestFilterSelectsPackage pins the package-selector forms the README
// documents: ./-relative prefix and bare suffix.
func TestFilterSelectsPackage(t *testing.T) {
	err, out := runCapture(t, []string{"-root", filepath.Join("testdata", "seeded"), "./..."})
	if _, ok := err.(findings); !ok {
		t.Fatalf("./... selector: want findings, got %v (output: %q)", err, out)
	}
	err, _ = runCapture(t, []string{"-root", filepath.Join("testdata", "seeded"), "./nosuchpkg"})
	if err == nil || !strings.Contains(err.Error(), "no packages match") {
		t.Fatalf("bad selector: want 'no packages match' error, got %v", err)
	}
}
