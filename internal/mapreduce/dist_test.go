package mapreduce

import (
	"context"
	"net"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/mapreduce/remote"
)

// startTestCluster starts n in-process workers serving the dist
// protocol over loopback TCP — real sockets, real frames, same process,
// so registered test closures are available on "both" sides.
func startTestCluster(t *testing.T, n int) *DistCluster {
	t.Helper()
	leakCheck(t) // registered first so it runs after the teardown below
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	cl, err := StartDistCluster(n, DistClusterOptions{
		Timeout: 30 * time.Second,
		OnListen: func(addr string) {
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := ServeDistWorker(ctx, addr); err != nil {
						t.Logf("in-process worker: %v", err)
					}
				}()
			}
		},
	})
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		cancel()
		wg.Wait()
	})
	return cl
}

// distCfg is the dist-backend analogue of spillCfg.
func distCfg(cl *DistCluster, name string) Config {
	return Config{
		Mappers: 4, Reducers: 3, Name: name,
		Shuffle: ShuffleConfig{Backend: ShuffleDist},
		Dist:    cl,
	}
}

func distCfg4(cl *DistCluster, name string) Config {
	cfg := distCfg(cl, name)
	cfg.Reducers = 4
	return cfg
}

// TestDistChainedStaysResident pins the partition-residency contract:
// once a Dataset lives on the workers, a chained job's self-addressed
// pairs never cross the wire. The first RunDS ships the whole input
// (local Dataset, every bucket travels); the second consumes the
// worker-resident output with a purely self-addressed map, so its
// RemoteBytesOut may carry only control frames — orders of magnitude
// below the first job's.
func TestDistChainedStaysResident(t *testing.T) {
	cl := startTestCluster(t, 2)
	cfg := distCfg4(cl, "self-step")
	ctx := context.Background()

	ds1, st1, err := RunDS(ctx, cfg, PartitionDataset(ringInput(), cfg.reducers()), selfMap, ringReduce)
	if err != nil {
		t.Fatal(err)
	}
	ds2, st2, err := RunDS(ctx, cfg, ds1, selfMap, ringReduce)
	if err != nil {
		t.Fatal(err)
	}
	if st2.LocalRouted != ringN || st2.CrossRouted != 0 {
		t.Fatalf("chained self-job routed local=%d cross=%d, want %d/0", st2.LocalRouted, st2.CrossRouted, ringN)
	}
	if st2.RemoteBytesOut >= st1.RemoteBytesOut/4 {
		t.Fatalf("resident chaining still ships data: job1 sent %dB, job2 sent %dB", st1.RemoteBytesOut, st2.RemoteBytesOut)
	}

	// Bit-identity against the memory backend's chained dataflow.
	memCfg := Config{Mappers: 4, Reducers: 4, Name: "self-step"}
	m1, _, err := RunDS(ctx, memCfg, PartitionDataset(ringInput(), 4), selfMap, ringReduce)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := RunDS(ctx, memCfg, m1, selfMap, ringReduce)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds2.Materialize(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds2.Collect(), m2.Collect()) {
		t.Fatal("chained dist output diverges from memory")
	}
	ds1.Recycle()
	ds2.Recycle()
}

// TestDistChainedCrossTraffic runs a chained job that mixes identity
// routes with ring messages: output must stay bit-identical to the
// memory backend and the routing split must match.
func TestDistChainedCrossTraffic(t *testing.T) {
	cl := startTestCluster(t, 2)
	cfg := distCfg4(cl, "ring-step")
	ctx := context.Background()

	run := func(cfg Config) ([]Pair[int32, int64], *Stats) {
		t.Helper()
		ds1, _, err := RunDS(ctx, cfg, PartitionDataset(ringInput(), cfg.reducers()), ringMap, ringReduce)
		if err != nil {
			t.Fatal(err)
		}
		ds2, st2, err := RunDS(ctx, cfg, ds1, ringMap, ringReduce)
		if err != nil {
			t.Fatal(err)
		}
		out := ds2.Collect()
		ds1.Recycle()
		ds2.Recycle()
		return out, st2
	}
	dist, dstats := run(cfg)
	mem, mstats := run(Config{Mappers: 4, Reducers: 4, Name: "ring-step"})
	if !reflect.DeepEqual(dist, mem) {
		t.Fatal("chained ring job diverges between dist and memory")
	}
	if dstats.LocalRouted != mstats.LocalRouted || dstats.LocalRouted == 0 {
		t.Fatalf("identity-routing split differs: dist local=%d, memory local=%d",
			dstats.LocalRouted, mstats.LocalRouted)
	}
	if dstats.CrossRouted != mstats.CrossRouted {
		t.Fatalf("cross-routing split differs: dist cross=%d, memory cross=%d",
			dstats.CrossRouted, mstats.CrossRouted)
	}
}

// TestDistParamsReachWorkers pins the DistParams channel: the worker
// factory rebuilds the reduce from the per-job blob.
func TestDistParamsReachWorkers(t *testing.T) {
	cl := startTestCluster(t, 2)
	cfg := distCfg(cl, "param-add")
	cfg.DistParams = []byte{42}
	out, _, err := Run(context.Background(), cfg, ringInput(),
		Identity[int32, int64](),
		func(k int32, vs []int64, out Emitter[int32, int64]) error { return nil }, // ignored: workers run the registered reduce
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range out {
		if want := int64(p.Key) + 3 + 42; p.Value != want {
			t.Fatalf("key %d: got %d, want %d (offset not applied)", p.Key, p.Value, want)
		}
	}
}

// TestDistCountersMergeBack pins the worker-counter report: increments
// made inside worker reduces surface in Config.DistCounters.
func TestDistCountersMergeBack(t *testing.T) {
	cl := startTestCluster(t, 2)
	cfg := distCfg(cl, "counted")
	cfg.DistCounters = NewCounters()
	out, _, err := Run(context.Background(), cfg, ringInput(),
		Identity[int32, int64](), ringReduce)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.DistCounters.Get("groups-seen"); got != int64(len(out)) {
		t.Fatalf("worker counters report %d groups, output has %d", got, len(out))
	}
}

// TestDistUnregisteredJobFails pins the failure mode of a missing
// registration: a clear error, not a hang or a decode mess.
func TestDistUnregisteredJobFails(t *testing.T) {
	cl := startTestCluster(t, 1)
	cfg := distCfg(cl, "never-registered")
	_, _, err := Run(context.Background(), cfg, ringInput(),
		Identity[int32, int64](), ringReduce)
	if err == nil || !strings.Contains(err.Error(), "no dist job registered") {
		t.Fatalf("unregistered job: got %v", err)
	}
}

// TestDistReduceErrorSurfaces pins user-function error propagation from
// a worker.
func TestDistReduceErrorSurfaces(t *testing.T) {
	cl := startTestCluster(t, 2)
	cfg := distCfg(cl, "boom-reduce")
	_, _, err := Run(context.Background(), cfg, ringInput(),
		Identity[int32, int64](), ringReduce)
	if err == nil || !strings.Contains(err.Error(), "boom on key 7") {
		t.Fatalf("worker reduce error lost: %v", err)
	}
	if cl.Err() == nil {
		t.Fatal("failed job left the cluster marked healthy")
	}
}

// TestDistChainedMapErrorSurfaces pins the failure path of a
// worker-side map: the coordinator's flush barrier waits on every
// worker's map-done, so a silently dropped map failure would hang the
// job forever. The error must surface from the chained RunDS promptly.
func TestDistChainedMapErrorSurfaces(t *testing.T) {
	cl := startTestCluster(t, 2)
	cfg := distCfg4(cl, "map-boom")
	ctx := context.Background()
	ds1, _, err := RunDS(ctx, cfg, PartitionDataset(ringInput(), cfg.reducers()),
		selfMap, ringReduce)
	if err == nil {
		// The first job ships a local input (coordinator-side map with
		// the closure above never runs worker-side), so it succeeds;
		// the chained second job runs the registered map on the workers.
		done := make(chan error, 1)
		go func() {
			_, _, err := RunDS(ctx, cfg, ds1, selfMap, ringReduce)
			done <- err
		}()
		select {
		case err = <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("worker-side map failure hung the chained job")
		}
	}
	if err == nil || !strings.Contains(err.Error(), "map boom on key 11") {
		t.Fatalf("worker map error lost: %v", err)
	}
}

// TestDistWorkerDisconnectMidShuffle simulates a worker vanishing while
// buckets stream: a rogue peer completes the handshake, reads the job
// start, then hangs up. The coordinator must recover — abort the round,
// reassign the rogue's partitions to the survivor, and replay — so the
// job completes bit-identical to the memory backend, with nothing left
// waiting on the flush barrier.
func TestDistWorkerDisconnectMidShuffle(t *testing.T) {
	var wg sync.WaitGroup
	cl, err := StartDistCluster(2, DistClusterOptions{
		Timeout: 30 * time.Second,
		OnListen: func(addr string) {
			wg.Add(2)
			go func() {
				defer wg.Done()
				ServeDistWorker(context.Background(), addr)
			}()
			go func() { // rogue worker
				defer wg.Done()
				nc, err := net.Dial("tcp", addr)
				if err != nil {
					t.Error(err)
					return
				}
				conn := remote.NewConn(nc)
				if err := remote.Hello(conn, false); err != nil {
					return
				}
				if _, err := remote.AwaitWelcome(conn); err != nil {
					return
				}
				conn.ReadFrame() // the job start
				conn.Close()     // die mid-shuffle
			}()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { cl.Close(); wg.Wait() }()

	cfg := distCfg(cl, "eq-int32")
	cfg.Reducers = 4
	type result struct {
		out []Pair[int32, int64]
		err error
	}
	done := make(chan result, 1)
	go func() {
		out, _, err := Run(context.Background(), cfg, int32Input(), int32Map, int32Reduce)
		done <- result{out, err}
	}()
	var got []Pair[int32, int64]
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("worker disconnect not recovered: %v", r.err)
		}
		got = r.out
	case <-time.After(30 * time.Second):
		t.Fatal("worker disconnect hung the job")
	}

	want, _, err := Run(context.Background(),
		Config{Mappers: 4, Reducers: 4, Name: "eq-int32"},
		int32Input(), int32Map, int32Reduce)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recovered run diverges from memory backend")
	}
	if rs := cl.RecoveryStats(); rs.WorkersLost < 1 || rs.Recoveries < 1 {
		t.Fatalf("recovery stats report lost=%d retried=%d, want >= 1 each", rs.WorkersLost, rs.Recoveries)
	}
}

// TestDistKilledWorkerProcess is the end-to-end kill test: two real
// worker processes (this test binary re-executed via MR_DIST_TEST_WORKER),
// one SIGKILLed mid-job. The run must complete on the survivor with
// output bit-identical to the memory backend, and the cluster must keep
// accepting jobs afterwards.
func TestDistKilledWorkerProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := StartDistCluster(2, DistClusterOptions{
		Timeout: 30 * time.Second,
		Spawn: func(addr string) *exec.Cmd {
			cmd := exec.Command(exe, "-test.run", "^$")
			cmd.Env = append(os.Environ(), distWorkerEnv+"="+addr)
			cmd.Stderr = os.Stderr
			return cmd
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	go func() {
		time.Sleep(300 * time.Millisecond)
		cl.procs[0].Process.Kill()
	}()
	cfg := distCfg(cl, "slow-reduce")
	type result struct {
		out []Pair[int32, int64]
		err error
	}
	done := make(chan result, 1)
	slowJob := func() ([]Pair[int32, int64], error) {
		out, _, err := Run(context.Background(), cfg, ringInput(),
			Identity[int32, int64](), ringReduce)
		return out, err
	}
	go func() {
		out, err := slowJob()
		done <- result{out, err}
	}()
	var got []Pair[int32, int64]
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("killed worker not recovered: %v", r.err)
		}
		got = r.out
	case <-time.After(60 * time.Second):
		t.Fatal("killed worker hung the job")
	}

	// The registered "slow-reduce" emits (key, group size); mirror it on
	// the memory backend for the bit-identity check.
	want, _, err := Run(context.Background(),
		Config{Mappers: 4, Reducers: 3, Name: "slow-reduce"},
		ringInput(), Identity[int32, int64](),
		func(k int32, vs []int64, out Emitter[int32, int64]) error {
			out.Emit(k, int64(len(vs)))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recovered run diverges from memory backend")
	}
	if rs := cl.RecoveryStats(); rs.WorkersLost < 1 || rs.Recoveries < 1 {
		t.Fatalf("recovery stats report lost=%d retried=%d, want >= 1 each", rs.WorkersLost, rs.Recoveries)
	}

	// The cluster latched the round, not itself: it must still run jobs
	// on the survivor.
	if _, err := slowJob(); err != nil {
		t.Fatalf("recovered cluster rejected a follow-up job: %v", err)
	}
}

// TestDistCloseReapsWedgedWorker pins the shutdown bound: a worker
// process frozen with SIGSTOP keeps its socket open and its exit
// pending forever, so an unbounded Wait in Close would hang the
// coordinator after an otherwise successful run. Close must escalate to
// a kill within its grace and return.
func TestDistCloseReapsWedgedWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := StartDistCluster(2, DistClusterOptions{
		Timeout: 30 * time.Second,
		Spawn: func(addr string) *exec.Cmd {
			cmd := exec.Command(exe, "-test.run", "^$")
			cmd.Env = append(os.Environ(), distWorkerEnv+"="+addr)
			cmd.Stderr = os.Stderr
			return cmd
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(context.Background(), distCfg(cl, "eq-int32"),
		int32Input(), int32Map, int32Reduce); err != nil {
		cl.Close()
		t.Fatal(err)
	}
	if err := cl.procs[0].Process.Signal(syscall.SIGSTOP); err != nil {
		cl.Close()
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() { closed <- cl.Close() }()
	select {
	case err := <-closed:
		// The frozen worker was killed at the grace boundary; Close
		// reports that instead of pretending the shutdown was clean.
		if err == nil {
			t.Fatal("Close reported a clean shutdown despite killing a wedged worker")
		}
		t.Logf("wedged worker surfaced: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung on a wedged worker process")
	}
}

// TestDistStartupStalledHandshake pins the handshake deadline: a spawn
// that connects and then wedges before sending its hello must fail
// StartDistCluster at Timeout, not hang it forever.
func TestDistStartupStalledHandshake(t *testing.T) {
	quit := make(chan struct{})
	t.Cleanup(func() { close(quit) })
	done := make(chan error, 1)
	go func() {
		cl, err := StartDistCluster(1, DistClusterOptions{
			Timeout: 1 * time.Second,
			OnListen: func(addr string) {
				go func() { // wedged worker: dials, then goes silent
					nc, err := net.Dial("tcp", addr)
					if err != nil {
						return
					}
					defer nc.Close()
					<-quit
				}()
			},
		})
		if err == nil {
			cl.Close()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stalled handshake produced a cluster")
		}
		t.Logf("stalled handshake surfaced: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("stalled handshake hung StartDistCluster")
	}
}

// BenchmarkDistShuffle measures a full flat job on two loopback
// workers: the cost of encode + TCP + decode + remote group-sort-reduce
// + result streaming, comparable with BenchmarkShuffleHeavy on the
// local backends. The sched case arms the elastic-scheduling machinery
// (heartbeats, progress tracking, the monitor, speculation ready to
// fire) on an entirely healthy cluster; nosched turns it all off. The
// delta is the idle overhead of scheduling, pinned to <= 5% by
// bench_compare.sh.
func BenchmarkDistShuffle(b *testing.B) {
	for _, bench := range []struct {
		name string
		hb   time.Duration
		spec float64
		comp bool
	}{
		{"sched", 50 * time.Millisecond, 4, false},
		{"nosched", -1, 0, false},
		{"compressed", -1, 0, true},
	} {
		b.Run(bench.name, func(b *testing.B) {
			cl := startSchedCluster(b, 2, DistClusterOptions{
				Timeout:        30 * time.Second,
				HeartbeatEvery: bench.hb,
			}, nil)
			cfg := distCfg4(cl, "eq-int32")
			cfg.SpeculationFactor = bench.spec
			cfg.WireCompression = bench.comp
			input := int32Input()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Run(context.Background(), cfg, input, int32Map, int32Reduce); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
