package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"slices"
)

// Driver coordinates an iterative MapReduce computation: a chain of jobs
// executed until a fixed point. It owns the round counter that the
// paper's experimental section reports ("number of MapReduce iterations")
// and aggregates per-job statistics.
//
// Algorithms register each job execution through RunJob (or record an
// externally run job with Observe). MaxRounds guards against runaway
// iteration; the b-matching algorithms are proven to converge, so hitting
// the limit indicates a bug and surfaces as ErrRoundLimit.
type Driver struct {
	cfg Config
	// MaxRounds aborts the computation when exceeded. Zero means no
	// limit.
	MaxRounds int

	rounds int
	total  Stats
	trace  []Stats
}

// ErrRoundLimit is returned when a Driver exceeds its MaxRounds budget.
var ErrRoundLimit = errors.New("mapreduce: round limit exceeded")

// NewDriver returns a Driver that runs its jobs with the given base
// configuration. Unless the configuration already carries one, the
// driver attaches a fresh BufferPool, so the rounds of an iterative
// computation recycle their shuffle and group-sort buffers instead of
// re-allocating them (see BufferPool); Stats.PooledBytes/PoolMisses
// report the traffic per job and in the driver totals.
func NewDriver(cfg Config) *Driver {
	if cfg.Pool == nil {
		cfg.Pool = NewBufferPool()
	}
	return &Driver{cfg: cfg}
}

// Config returns the Driver's base job configuration with the given name
// applied; use it when invoking Run directly. Under failure injection
// the round index is mixed into the failure seed so that every round
// draws fresh (but still reproducible) failure coins — otherwise a task
// doomed in round one would be doomed in every round.
func (d *Driver) Config(name string) Config {
	c := d.cfg
	c.Name = name
	if c.FailureRate > 0 {
		c.FailureSeed = int64(mix64(uint64(c.FailureSeed) ^ uint64(d.rounds)<<32))
	}
	return c
}

// Rounds returns the number of jobs executed so far.
func (d *Driver) Rounds() int { return d.rounds }

// Partitions returns the reduce partition count of the Driver's jobs —
// the partition count an input Dataset must be built with (see
// PartitionDataset) for the jobs to chain partition-resident.
func (d *Driver) Partitions() int { return d.cfg.reducers() }

// Total returns aggregate statistics over all rounds.
func (d *Driver) Total() Stats { return d.total }

// Trace returns per-round statistics in execution order.
func (d *Driver) Trace() []Stats { return d.trace }

// Observe records one executed job against the round budget. When the
// driver's cluster journals the run, every observed job is also a
// commit point: the job's journal records become durable, and a
// coordinator restarted after this moment replays the job from the
// journal instead of re-running it.
func (d *Driver) Observe(s *Stats) error {
	d.rounds++
	if cl := d.cfg.Dist; cl != nil {
		cl.journalCommit(d.rounds)
	}
	if s != nil {
		d.total.Add(s)
		d.trace = append(d.trace, *s)
	} else {
		d.trace = append(d.trace, Stats{})
	}
	if d.MaxRounds > 0 && d.rounds > d.MaxRounds {
		return fmt.Errorf("%w (%d rounds)", ErrRoundLimit, d.rounds)
	}
	return nil
}

// RunJob executes one MapReduce job under this driver, counting it as a
// round. Type parameters are inferred from the map and reduce functions.
func RunJob[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	d *Driver,
	name string,
	input []Pair[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	reduceFn ReduceFunc[K2, V2, K3, V3],
) ([]Pair[K3, V3], error) {
	out, stats, err := Run(ctx, d.Config(name), input, mapFn, reduceFn)
	if err != nil {
		return nil, err
	}
	if err := d.Observe(stats); err != nil {
		return nil, err
	}
	return out, nil
}

// Identity returns a map function that forwards its input unchanged.
// Useful for jobs whose work happens entirely in the reducer.
func Identity[K comparable, V any]() MapFunc[K, V, K, V] {
	return func(key K, value V, out Emitter[K, V]) error {
		out.Emit(key, value)
		return nil
	}
}

// CollectValues is a reduce function that re-emits the key with a copy
// of its value slice, for jobs whose work happens entirely in the
// mapper. The copy is required, not defensive: the engine owns the
// values slice and reuses its backing array for later groups and
// rounds (see ReduceFunc), so the emitted slice must be the reducer's
// own.
func CollectValues[K comparable, V any]() ReduceFunc[K, V, K, []V] {
	return func(key K, values []V, out Emitter[K, []V]) error {
		out.Emit(key, slices.Clone(values))
		return nil
	}
}
