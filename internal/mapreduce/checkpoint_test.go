package mapreduce

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/mapreduce/remote"
)

// randomPartition draws a random pair slice and its canonical encoding
// — the exact bytes a MsgCkpt frame (and thus a run-file frame) carries.
func randomPartition(t *testing.T, rng *rand.Rand, part int) ([]Pair[string, int64], ckptPart) {
	t.Helper()
	kc, err := resolveSpillCodec[string]()
	if err != nil {
		t.Fatal(err)
	}
	vc, err := resolveSpillCodec[int64]()
	if err != nil {
		t.Fatal(err)
	}
	n := rng.Intn(40)
	pairs := make([]Pair[string, int64], n)
	for i := range pairs {
		key := make([]byte, rng.Intn(12))
		rng.Read(key)
		pairs[i] = P(string(key), rng.Int63()-rng.Int63())
	}
	blob, err := encodePairs(nil, pairs, kc, vc, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pairs, ckptPart{part: part, count: n, blob: blob}
}

// writeRandomRound persists one random round and returns the source
// pairs keyed by partition.
func writeRandomRound(t *testing.T, w *checkpointWriter, rng *rand.Rand, seq uint64, nparts int) map[int][]Pair[string, int64] {
	t.Helper()
	want := make(map[int][]Pair[string, int64], nparts)
	parts := make([]ckptPart, 0, nparts)
	for p := 0; p < nparts; p++ {
		pairs, cp := randomPartition(t, rng, p)
		want[p] = pairs
		parts = append(parts, cp)
	}
	// Shuffle the frame order: restore must not depend on it.
	rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
	if err := w.write(seq, parts); err != nil {
		t.Fatal(err)
	}
	return want
}

// decodeCkpt decodes a restored checkpoint back into per-partition
// pairs through the canonical codec.
func decodeCkpt(t *testing.T, ck *checkpointData) map[int][]Pair[string, int64] {
	t.Helper()
	kc, _ := resolveSpillCodec[string]()
	vc, _ := resolveSpillCodec[int64]()
	got := make(map[int][]Pair[string, int64], len(ck.parts))
	for _, p := range ck.parts {
		cur := remote.NewCursor(p.blob)
		pairs, err := decodePairs(cur, p.count, kc, vc, make([]Pair[string, int64], 0, p.count))
		if err != nil {
			t.Fatalf("partition %d: %v", p.part, err)
		}
		got[p.part] = pairs
	}
	return got
}

// TestCheckpointRoundTrip is the codec property test: random partition
// images over several rounds survive the run-file round trip exactly,
// the newest round wins, and the retention bound holds.
func TestCheckpointRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			w := newCheckpointWriter(dir)
			nparts := 1 + rng.Intn(6)
			var want map[int][]Pair[string, int64]
			rounds := 2 + rng.Intn(3)
			for r := 0; r < rounds; r++ {
				want = writeRandomRound(t, w, rng, uint64(10+r), nparts)
			}
			ck, err := loadLatestCheckpoint(dir)
			if err != nil {
				t.Fatal(err)
			}
			if ck == nil || ck.seq != uint64(10+rounds-1) {
				t.Fatalf("restored checkpoint %+v, want newest seq %d", ck, 10+rounds-1)
			}
			if !reflect.DeepEqual(decodeCkpt(t, ck), want) {
				t.Fatal("restored pairs diverge from the written round")
			}

			files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.run"))
			if err != nil {
				t.Fatal(err)
			}
			if len(files) > ckptKeepFiles {
				t.Fatalf("%d run files retained, want <= %d", len(files), ckptKeepFiles)
			}
		})
	}
}

// damage mutilates the newest run file in dir with fn.
func damageNewest(t *testing.T, dir string, fn func([]byte) []byte) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.run"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no run files to damage: %v", err)
	}
	newest := files[len(files)-1] // seq-encoded names sort chronologically
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointFallsBackPastDamage pins the crash-mid-write story:
// a truncated or bit-flipped trailing run file fails validation and the
// loader falls back to the previous round instead of surfacing garbage.
func TestCheckpointFallsBackPastDamage(t *testing.T) {
	damages := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)-1-len(b)/3] },
		"bitflip": func(b []byte) []byte {
			b[len(b)/2] ^= 0x40
			return b
		},
		"emptied": func([]byte) []byte { return nil },
	}
	for name, fn := range damages {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			dir := t.TempDir()
			w := newCheckpointWriter(dir)
			prev := writeRandomRound(t, w, rng, 7, 3)
			writeRandomRound(t, w, rng, 8, 3)
			damageNewest(t, dir, fn)

			ck, err := loadLatestCheckpoint(dir)
			if err != nil {
				t.Fatal(err)
			}
			if ck == nil || ck.seq != 7 {
				t.Fatalf("restored %+v, want fallback to seq 7", ck)
			}
			if !reflect.DeepEqual(decodeCkpt(t, ck), prev) {
				t.Fatal("fallback round diverges from what was written")
			}
		})
	}
}

// TestCheckpointAllDamagedErrors: when every manifest entry fails
// validation, the loader reports an error — it must not silently treat
// a wrecked directory as "no checkpoint".
func TestCheckpointAllDamagedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dir := t.TempDir()
	w := newCheckpointWriter(dir)
	writeRandomRound(t, w, rng, 1, 2)
	writeRandomRound(t, w, rng, 2, 2)
	files, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.run"))
	for _, f := range files {
		if err := os.WriteFile(f, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if ck, err := loadLatestCheckpoint(dir); err == nil {
		t.Fatalf("wrecked directory restored %+v without error", ck)
	}
}

// TestCheckpointEmptyDir: no manifest means no checkpoint, not an
// error — the fresh-worker case.
func TestCheckpointEmptyDir(t *testing.T) {
	ck, err := loadLatestCheckpoint(t.TempDir())
	if err != nil || ck != nil {
		t.Fatalf("empty dir: got (%+v, %v), want (nil, nil)", ck, err)
	}
}

// TestCheckpointMalformedManifest: a mangled manifest surfaces as an
// error naming the line.
func TestCheckpointMalformedManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ckptManifestName), []byte("what even\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := loadLatestCheckpoint(dir)
	if err == nil || !strings.Contains(err.Error(), "malformed checkpoint manifest") {
		t.Fatalf("malformed manifest: got %v", err)
	}
}

// TestCheckpointWriterSelfDisables: the first I/O failure disables the
// writer (best-effort contract) instead of failing every later round.
func TestCheckpointWriterSelfDisables(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "blocked")
	if err := os.WriteFile(dir, []byte("a file where the dir should go"), 0o644); err != nil {
		t.Fatal(err)
	}
	w := newCheckpointWriter(filepath.Join(dir, "sub"))
	if err := w.write(1, []ckptPart{{part: 0, count: 0}}); err == nil {
		t.Fatal("write into an impossible dir succeeded")
	}
	if w.disabled == nil {
		t.Fatal("failed writer did not disable itself")
	}
	if err := w.write(2, nil); err == nil {
		t.Fatal("disabled writer accepted another round")
	}
}
