//go:build !race

package mapreduce

import (
	"context"
	"testing"

	"repro/internal/mapreduce/remote"
)

// Allocation-regression guards for the round-recycled engine. These pin
// the steady-state allocation rate of the hot paths so a future change
// cannot silently reintroduce per-round heap churn; CI runs them by
// name (-run TestAllocGuard). Excluded under the race detector, which
// inflates allocation counts.

// TestAllocGuardChainedRound pins the engine-side allocations of one
// steady-state chained job round (warm BufferPool, output recycled).
// The budget covers fixed per-job overhead — stats, task goroutines,
// stream headers, the Dataset wrapper — NOT per-record or per-key work:
// with 600 records and 50 groups per round, a per-key leak of even one
// allocation would blow the limit several times over.
func TestAllocGuardChainedRound(t *testing.T) {
	const limit = 120
	cfg := Config{Mappers: 2, Reducers: 2, Pool: NewBufferPool()}
	pairs := make([]Pair[int32, int64], 600)
	for i := range pairs {
		pairs[i] = P(int32(i%50), int64(i))
	}
	state := PartitionDataset(pairs, 2)
	mapFn := func(k int32, v int64, out Emitter[int32, int64]) error {
		out.Emit(k, v)
		return nil
	}
	redFn := func(k int32, vs []int64, out Emitter[int32, int64]) error {
		var sum int64
		for _, v := range vs {
			sum += v
		}
		out.Emit(k, sum)
		return nil
	}
	round := func() {
		out, _, err := RunDS(context.Background(), cfg, state, mapFn, redFn)
		if err != nil {
			t.Fatal(err)
		}
		out.Recycle()
	}
	round() // warm the pool
	round()
	avg := testing.AllocsPerRun(10, round)
	t.Logf("steady-state chained round: %.1f allocs", avg)
	if avg > limit {
		t.Errorf("steady-state chained round allocates %.1f (> %d): buffer recycling regressed", avg, limit)
	}
}

// TestAllocGuardMemoryAddBucket pins the memory backend's ingest: an
// AddBucket is an ownership transfer — amortized segment-list growth
// only, nothing per record.
func TestAllocGuardMemoryAddBucket(t *testing.T) {
	m := newMemoryShuffle[int32, int32](2, 1, nil)
	bucket := make([]Pair[int32, int32], emitBucketCap)
	for i := range bucket {
		bucket[i] = P(int32(i), int32(i))
	}
	avg := testing.AllocsPerRun(2000, func() {
		if err := m.AddBucket(0, 1, bucket); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("AddBucket: %.3f allocs amortized", avg)
	if avg > 0.5 {
		t.Errorf("memory AddBucket allocates %.3f amortized (> 0.5): ownership transfer regressed", avg)
	}
}

// TestAllocGuardDecodePairsV2 pins the codec-v2 columnar decode on the
// dominant wire shape (int32 keys, int64 values): with the output slice
// reused, decoding a 4096-pair blob must stay O(1) allocations — the
// cursor and nothing per pair or per column.
func TestAllocGuardDecodePairsV2(t *testing.T) {
	kc, err := resolveSpillCodec[int32]()
	if err != nil {
		t.Fatal(err)
	}
	vc, err := resolveSpillCodec[int64]()
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]Pair[int32, int64], 4096)
	for i := range pairs {
		pairs[i] = P(int32(i%512), int64(i*7))
	}
	blob, err := encodePairs(nil, pairs, kc, vc, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Pair[int32, int64], 0, len(pairs))
	avg := testing.AllocsPerRun(200, func() {
		cur := remote.NewCursor(blob)
		var derr error
		out, derr = decodePairs(cur, len(pairs), kc, vc, out[:0])
		if derr != nil {
			t.Fatal(derr)
		}
	})
	t.Logf("decodePairs v2: %.3f allocs per 4096-pair blob", avg)
	if avg > 2 {
		t.Errorf("v2 decode allocates %.3f per blob (> 2): per-pair or per-column churn crept in", avg)
	}
}
