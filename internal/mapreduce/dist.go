package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mapreduce/remote"
)

// This file is the coordinator half of the distributed execution mode
// (ShuffleDist): reduce partitions are sharded across worker processes
// connected over the length-prefixed TCP transport of
// internal/mapreduce/remote. The coordinator runs the map phase (or, for
// chained jobs whose input already resides on the workers, only
// orchestrates it), streams pre-partitioned buckets to the partitions'
// owners, and the workers group-sort and reduce their partitions locally
// with the same radix path and buffer pool the in-memory backend uses —
// which is what makes the output bit-identical to ShuffleMemory for the
// same seed and partition count. Reduce output either streams back
// (Run) or stays worker-resident (RunDS), so the next chained job's
// self-addressed pairs never cross the wire. The worker half lives in
// distworker.go; workers run the reduce (and, when chained, map)
// functions registered under the job's name via RegisterDistJob — the
// function values themselves never travel.

// DistCluster is a set of connected worker processes, shared by every
// job of a computation (Config.Dist). Workers own reduce partitions
// round-robin (partition p belongs to worker p mod N). A cluster is
// single-computation: jobs run one at a time, and the first transport
// or job error breaks the cluster — later jobs fail fast rather than
// running on a cluster in an unknown state.
type DistCluster struct {
	conns []*remote.Conn
	procs []*exec.Cmd

	mu     sync.Mutex
	seq    uint64
	broken error
	closed bool
	// lastIn/lastOut checkpoint the transport counters at the previous
	// job's end, so a job's RemoteBytes* delta also covers the
	// inter-job traffic that belongs to it in spirit — most importantly
	// the Materialize fetch of the previous job's resident output.
	lastIn  int64
	lastOut int64
}

// DistClusterOptions configures StartDistCluster.
type DistClusterOptions struct {
	// Listen is the coordinator's listen address (default "127.0.0.1:0",
	// an ephemeral loopback port). Use a routable address to accept
	// workers from other machines.
	Listen string
	// Spawn, when non-nil, is invoked once per worker with the
	// coordinator's listen address and must return a ready-to-start
	// command for a worker that will connect there (the self-exec
	// pattern: a CLI re-executes its own binary in worker mode). When
	// nil the coordinator only waits for externally launched workers.
	Spawn func(addr string) *exec.Cmd
	// Timeout bounds the wait for all workers to connect (default 60s).
	Timeout time.Duration
	// OnListen, when non-nil, is called with the coordinator's listen
	// address once it is accepting, before any worker connects — the
	// hook in-process workers (tests, embedded deployments) use to dial
	// in from goroutines of the same process.
	OnListen func(addr string)
}

// StartDistCluster listens for n workers, optionally spawning them via
// opts.Spawn, completes the handshake with each, and returns the
// connected cluster. The caller owns the cluster and must Close it.
func StartDistCluster(n int, opts DistClusterOptions) (*DistCluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("mapreduce: dist cluster needs >= 1 worker, got %d", n)
	}
	addr := opts.Listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: dist listen: %w", err)
	}
	defer ln.Close()

	cl := &DistCluster{}
	if opts.OnListen != nil {
		opts.OnListen(ln.Addr().String())
	}
	if opts.Spawn != nil {
		for i := 0; i < n; i++ {
			cmd := opts.Spawn(ln.Addr().String())
			if err := cmd.Start(); err != nil {
				cl.abort()
				return nil, fmt.Errorf("mapreduce: spawning dist worker %d: %w", i, err)
			}
			cl.procs = append(cl.procs, cmd)
		}
	}
	deadline := time.Now().Add(timeout)
	for i := 0; i < n; i++ {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		nc, err := ln.Accept()
		if err != nil {
			cl.abort()
			return nil, fmt.Errorf("mapreduce: waiting for dist worker %d of %d: %w", i+1, n, err)
		}
		conn := remote.NewConn(nc)
		if err := remote.AwaitHello(conn); err != nil {
			conn.Close()
			cl.abort()
			return nil, fmt.Errorf("mapreduce: dist worker handshake: %w", err)
		}
		if err := remote.Welcome(conn, i, n); err != nil {
			conn.Close()
			cl.abort()
			return nil, fmt.Errorf("mapreduce: dist worker handshake: %w", err)
		}
		cl.conns = append(cl.conns, conn)
	}
	return cl, nil
}

// abort is the startup-failure teardown: spawned workers may still be
// mid-handshake (their connections are not in conns, so Close's Bye
// never reaches them and its Wait would block on them forever) — kill
// them before reaping.
func (cl *DistCluster) abort() {
	for _, c := range cl.conns {
		c.Close()
	}
	for _, cmd := range cl.procs {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	for _, cmd := range cl.procs {
		cmd.Wait()
	}
	cl.mu.Lock()
	cl.closed = true
	cl.mu.Unlock()
}

// DistSelfExec returns a Spawn function that re-executes the current
// binary with "-dist-connect <addr>" followed by workerArgs, stderr
// inherited — the one self-exec recipe shared by every CLI's
// -dist-workers mode.
func DistSelfExec(workerArgs ...string) (func(addr string) *exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	return func(addr string) *exec.Cmd {
		cmd := exec.Command(exe, append([]string{"-dist-connect", addr}, workerArgs...)...)
		cmd.Stderr = os.Stderr
		return cmd
	}, nil
}

// Workers returns the number of connected workers.
func (cl *DistCluster) Workers() int { return len(cl.conns) }

// Err returns the error that broke the cluster, or nil while it is
// healthy.
func (cl *DistCluster) Err() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.broken
}

// fail latches the first fatal error and closes every connection, which
// unblocks any goroutine blocked on the transport.
func (cl *DistCluster) fail(err error) {
	cl.mu.Lock()
	already := cl.broken != nil
	if !already {
		cl.broken = err
	}
	cl.mu.Unlock()
	if !already {
		for _, c := range cl.conns {
			c.Close()
		}
	}
}

// nextSeq allocates a job sequence number (never zero, so zero can mean
// "no job" in message fields).
func (cl *DistCluster) nextSeq() uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.seq++
	return cl.seq
}

// bytesInOut sums the transport byte counters over all connections.
func (cl *DistCluster) bytesInOut() (in, out int64) {
	for _, c := range cl.conns {
		in += c.BytesIn()
		out += c.BytesOut()
	}
	return in, out
}

// Close dismisses the workers (best effort), closes the connections,
// and reaps any spawned worker processes.
func (cl *DistCluster) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	healthy := cl.broken == nil
	cl.mu.Unlock()
	for _, c := range cl.conns {
		if healthy {
			c.WriteFrame([]byte{byte(remote.MsgBye)})
		}
		c.Close()
	}
	var err error
	for _, cmd := range cl.procs {
		if werr := cmd.Wait(); werr != nil && healthy && err == nil {
			err = fmt.Errorf("mapreduce: dist worker exited: %w", werr)
		}
	}
	return err
}

// distTypeID names a concrete Go type for the job handshake: the
// coordinator and worker compare ids for all four job types before any
// record travels, so a registration mismatch fails loudly instead of
// corrupting a decode.
func distTypeID[T any]() string {
	return reflect.TypeOf((*T)(nil)).Elem().String()
}

// distJobHeader is the decoded MsgJobStart, shared by both sides.
type distJobHeader struct {
	seq        uint64
	name       string
	mode       remote.JobMode
	splits     int
	reducers   int
	wantOutput bool
	inputSeq   uint64
	k2id, v2id string
	k3id, v3id string
	params     []byte
}

func (h *distJobHeader) encode() []byte {
	buf := []byte{byte(remote.MsgJobStart)}
	buf = remote.AppendUvarint(buf, h.seq)
	buf = remote.AppendString(buf, h.name)
	buf = append(buf, byte(h.mode))
	buf = remote.AppendUvarint(buf, uint64(h.splits))
	buf = remote.AppendUvarint(buf, uint64(h.reducers))
	if h.wantOutput {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = remote.AppendUvarint(buf, h.inputSeq)
	buf = remote.AppendString(buf, h.k2id)
	buf = remote.AppendString(buf, h.v2id)
	buf = remote.AppendString(buf, h.k3id)
	buf = remote.AppendString(buf, h.v3id)
	buf = remote.AppendBytes(buf, h.params)
	return buf
}

// parseJobHeader decodes a MsgJobStart payload (the type byte already
// consumed).
func parseJobHeader(cur *remote.Cursor) (*distJobHeader, error) {
	h := &distJobHeader{}
	h.seq = cur.Uvarint()
	h.name = cur.String()
	h.mode = remote.JobMode(cur.Byte())
	h.splits = int(cur.Uvarint())
	h.reducers = int(cur.Uvarint())
	h.wantOutput = cur.Byte() != 0
	h.inputSeq = cur.Uvarint()
	h.k2id = cur.String()
	h.v2id = cur.String()
	h.k3id = cur.String()
	h.v3id = cur.String()
	h.params = append([]byte(nil), cur.Bytes()...)
	if err := cur.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: malformed job-start: %w", err)
	}
	return h, nil
}

// encodePairs appends count length-prefixed (key, value) encodings.
func encodePairs[K comparable, V any](buf []byte, pairs []Pair[K, V], kc spillCodec[K], vc spillCodec[V]) ([]byte, error) {
	var scratch []byte
	for i := range pairs {
		var err error
		if scratch, err = kc.enc(scratch[:0], pairs[i].Key); err != nil {
			return nil, err
		}
		buf = remote.AppendBytes(buf, scratch)
		if scratch, err = vc.enc(scratch[:0], pairs[i].Value); err != nil {
			return nil, err
		}
		buf = remote.AppendBytes(buf, scratch)
	}
	return buf, nil
}

// pairCap bounds a wire-declared pair count by the remaining payload —
// every pair carries at least two 1-byte length prefixes — so a
// corrupted count cannot drive a pre-allocation past the bytes that
// could possibly back it.
func pairCap(cur *remote.Cursor, count int) int {
	if max := len(cur.Rest()) / 2; count > max || count < 0 {
		return max
	}
	return count
}

// decodePairs appends count decoded pairs to out.
func decodePairs[K comparable, V any](cur *remote.Cursor, count int, kc spillCodec[K], vc spillCodec[V], out []Pair[K, V]) ([]Pair[K, V], error) {
	if count > len(cur.Rest())/2 || count < 0 {
		return out, fmt.Errorf("pair count %d exceeds the %d-byte payload", count, len(cur.Rest()))
	}
	for i := 0; i < count; i++ {
		kb := cur.Bytes()
		vb := cur.Bytes()
		if err := cur.Err(); err != nil {
			return out, err
		}
		k, err := kc.dec(kb)
		if err != nil {
			return out, err
		}
		v, err := vc.dec(vb)
		if err != nil {
			return out, err
		}
		out = append(out, Pair[K, V]{Key: k, Value: v})
	}
	return out, nil
}

// encodeBucketFrame builds one MsgBucket frame.
func encodeBucketFrame[K comparable, V any](seq uint64, split, part int, pairs []Pair[K, V], kc spillCodec[K], vc spillCodec[V]) ([]byte, error) {
	buf := []byte{byte(remote.MsgBucket)}
	buf = remote.AppendUvarint(buf, seq)
	buf = remote.AppendUvarint(buf, uint64(split))
	buf = remote.AppendUvarint(buf, uint64(part))
	buf = remote.AppendUvarint(buf, uint64(len(pairs)))
	return encodePairs(buf, pairs, kc, vc)
}

// distWorkerReport aggregates what one worker told the coordinator
// about a job.
type distWorkerReport struct {
	groups     int64
	outRecords int64
	reduceWall time.Duration
	mapWall    time.Duration
	emitted    int64
	local      int64
	cross      int64
	counts     map[int]int64
	counters   map[string]int64
}

// distJobRun is the coordinator's state for one in-flight job.
type distJobRun[K2 comparable, V2 any, K3 comparable, V3 any] struct {
	cl       *DistCluster
	hdr      *distJobHeader
	k2c      spillCodec[K2]
	v2c      spillCodec[V2]
	k3c      spillCodec[K3]
	v3c      spillCodec[V3]
	bytesIn0 int64
	bytesOut0 int64

	mu      sync.Mutex
	outs    [][]Pair[K3, V3]
	reports []distWorkerReport

	mapDones  atomic.Int64
	flushOnce sync.Once
	flushErr  error
	records   atomic.Int64
}

// startDistJob resolves the four codecs, announces the job to every
// worker, and starts one reader goroutine per connection. done receives
// the readers' first error (nil on success) exactly once.
func startDistJob[K2 comparable, V2 any, K3 comparable, V3 any](
	cfg Config, mode remote.JobMode, splits int, inputSeq uint64, wantOutput bool,
) (*distJobRun[K2, V2, K3, V3], error) {
	cl := cfg.Dist
	if cl == nil {
		return nil, errors.New("mapreduce: shuffle backend \"dist\" requires Config.Dist (a started DistCluster)")
	}
	if err := cl.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: dist cluster is broken: %w", err)
	}
	k2c, err := resolveSpillCodec[K2]()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: dist key codec: %w", err)
	}
	v2c, err := resolveSpillCodec[V2]()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: dist value codec: %w", err)
	}
	k3c, err := resolveSpillCodec[K3]()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: dist output key codec: %w", err)
	}
	v3c, err := resolveSpillCodec[V3]()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: dist output value codec: %w", err)
	}
	j := &distJobRun[K2, V2, K3, V3]{
		cl: cl,
		hdr: &distJobHeader{
			seq:        cl.nextSeq(),
			name:       cfg.Name,
			mode:       mode,
			splits:     splits,
			reducers:   cfg.reducers(),
			wantOutput: wantOutput,
			inputSeq:   inputSeq,
			k2id:       distTypeID[K2](),
			v2id:       distTypeID[V2](),
			k3id:       distTypeID[K3](),
			v3id:       distTypeID[V3](),
			params:     cfg.DistParams,
		},
		k2c: k2c, v2c: v2c, k3c: k3c, v3c: v3c,
		outs:    make([][]Pair[K3, V3], cfg.reducers()),
		reports: make([]distWorkerReport, cl.Workers()),
	}
	cl.mu.Lock()
	j.bytesIn0, j.bytesOut0 = cl.lastIn, cl.lastOut
	cl.mu.Unlock()
	frame := j.hdr.encode()
	for _, c := range cl.conns {
		if err := c.WriteFrame(frame); err != nil {
			err = fmt.Errorf("mapreduce: dist job %q: announcing to worker: %w", cfg.Name, err)
			cl.fail(err)
			return nil, err
		}
	}
	return j, nil
}

// sendBucket encodes one bucket and streams it to the partition's
// owner.
func (j *distJobRun[K2, V2, K3, V3]) sendBucket(split, part int, pairs []Pair[K2, V2]) error {
	frame, err := encodeBucketFrame(j.hdr.seq, split, part, pairs, j.k2c, j.v2c)
	if err != nil {
		return fmt.Errorf("mapreduce: dist job %q: encoding bucket: %w", j.hdr.name, err)
	}
	owner := remote.Owner(part, j.cl.Workers())
	if err := j.cl.conns[owner].WriteFrame(frame); err != nil {
		err = fmt.Errorf("mapreduce: dist job %q: streaming bucket to worker %d: %w", j.hdr.name, owner, err)
		j.cl.fail(err)
		return err
	}
	j.records.Add(int64(len(pairs)))
	return nil
}

// flushAll tells every worker that ingestion is sealed.
func (j *distJobRun[K2, V2, K3, V3]) flushAll() error {
	j.flushOnce.Do(func() {
		frame := remote.AppendUvarint([]byte{byte(remote.MsgFlush)}, j.hdr.seq)
		for w, c := range j.cl.conns {
			if err := c.WriteFrame(frame); err != nil {
				j.flushErr = fmt.Errorf("mapreduce: dist job %q: flushing worker %d: %w", j.hdr.name, w, err)
				j.cl.fail(j.flushErr)
				return
			}
		}
	})
	return j.flushErr
}

// reader consumes one worker's frames for this job until its MsgJobDone
// (or an error). Chained-mode cross-partition buckets are relayed
// verbatim to their owner's connection: the frame format is identical in
// both directions, so the relay is a single WriteFrame with no
// re-encoding. Because a worker sends all its buckets before its
// MsgMapDone and the reader processes frames in order, once every
// worker's MsgMapDone has been processed every relay has been delivered
// — that is the barrier after which the flush is safe.
func (j *distJobRun[K2, V2, K3, V3]) reader(w int) error {
	conn := j.cl.conns[w]
	numWorkers := j.cl.Workers()
	for {
		payload, err := conn.ReadFrame()
		if err != nil {
			return fmt.Errorf("mapreduce: dist job %q: transport error from worker %d: %w", j.hdr.name, w, err)
		}
		cur := remote.NewCursor(payload)
		switch t := remote.MsgType(cur.Byte()); t {
		case remote.MsgBucket:
			seq := cur.Uvarint()
			cur.Uvarint() // split
			part := int(cur.Uvarint())
			if err := cur.Err(); err != nil || seq != j.hdr.seq ||
				part < 0 || part >= j.hdr.reducers {
				return fmt.Errorf("mapreduce: dist job %q: malformed bucket relay from worker %d", j.hdr.name, w)
			}
			owner := remote.Owner(part, numWorkers)
			if err := j.cl.conns[owner].WriteFrame(payload); err != nil {
				return fmt.Errorf("mapreduce: dist job %q: relaying bucket to worker %d: %w", j.hdr.name, owner, err)
			}
		case remote.MsgMapDone:
			cur.Uvarint() // seq
			rep := &j.reports[w]
			rep.emitted = int64(cur.Uvarint())
			rep.local = int64(cur.Uvarint())
			rep.cross = int64(cur.Uvarint())
			rep.mapWall = time.Duration(cur.Uvarint())
			if err := cur.Err(); err != nil {
				return fmt.Errorf("mapreduce: dist job %q: malformed map-done from worker %d", j.hdr.name, w)
			}
			if j.mapDones.Add(1) == int64(numWorkers) {
				if err := j.flushAll(); err != nil {
					return err
				}
			}
		case remote.MsgReduced:
			cur.Uvarint() // seq
			part := int(cur.Uvarint())
			count := int(cur.Uvarint())
			if err := cur.Err(); err != nil || part < 0 || part >= len(j.outs) {
				return fmt.Errorf("mapreduce: dist job %q: malformed reduce output from worker %d", j.hdr.name, w)
			}
			pairs, err := decodePairs(cur, count, j.k3c, j.v3c, make([]Pair[K3, V3], 0, pairCap(cur, count)))
			if err != nil {
				return fmt.Errorf("mapreduce: dist job %q: decoding partition %d: %w", j.hdr.name, part, err)
			}
			j.mu.Lock()
			j.outs[part] = pairs
			j.mu.Unlock()
		case remote.MsgJobDone:
			cur.Uvarint() // seq
			rep := &j.reports[w]
			rep.groups = int64(cur.Uvarint())
			rep.outRecords = int64(cur.Uvarint())
			rep.reduceWall = time.Duration(cur.Uvarint())
			nParts := int(cur.Uvarint())
			rep.counts = make(map[int]int64, min(nParts, j.hdr.reducers))
			for i := 0; i < nParts; i++ {
				part := int(cur.Uvarint())
				if part < 0 || part >= j.hdr.reducers {
					return fmt.Errorf("mapreduce: dist job %q: job-done names partition %d of %d", j.hdr.name, part, j.hdr.reducers)
				}
				rep.counts[part] = int64(cur.Uvarint())
			}
			nCounters := int(cur.Uvarint())
			if nCounters > 0 {
				rep.counters = make(map[string]int64, nCounters)
				for i := 0; i < nCounters; i++ {
					name := cur.String()
					rep.counters[name] = int64(cur.Uvarint())
				}
			}
			if err := cur.Err(); err != nil {
				return fmt.Errorf("mapreduce: dist job %q: malformed job-done from worker %d", j.hdr.name, w)
			}
			return nil
		case remote.MsgError:
			cur.Uvarint() // seq
			return fmt.Errorf("mapreduce: dist job %q: worker %d: %s", j.hdr.name, w, cur.String())
		default:
			return fmt.Errorf("mapreduce: dist job %q: unexpected %v from worker %d", j.hdr.name, t, w)
		}
	}
}

// finish drives the job to completion after the coordinator's own
// sending is done (mapErr carries a local map-phase failure): runs the
// per-connection readers, observes the flush barrier, aggregates the
// worker reports into stats, and burns the coordinator-side failure
// coins so injected-failure statistics match the local backends.
func (j *distJobRun[K2, V2, K3, V3]) finish(ctx context.Context, cfg Config, stats *Stats, mapErr error) ([][]Pair[K3, V3], []int64, error) {
	readErrs := make([]error, j.cl.Workers())
	var wg sync.WaitGroup
	for w := range j.cl.conns {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := j.reader(w); err != nil {
				readErrs[w] = err
				// Break the cluster immediately: closing the
				// connections unblocks the sibling readers, whose
				// workers may be waiting on a flush that can no longer
				// come. fail latches the first error, so the root cause
				// wins over the cascade it triggers.
				j.cl.fail(err)
			}
		}()
	}
	// A cancelled context must unblock the readers: break the cluster,
	// which closes the connections under them.
	watchDone := make(chan struct{})
	var watchWG sync.WaitGroup
	if ctx != nil {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			select {
			case <-ctx.Done():
				j.cl.fail(fmt.Errorf("mapreduce: dist job %q: %w", j.hdr.name, ctx.Err()))
			case <-watchDone:
			}
		}()
	}

	if mapErr != nil {
		// The coordinator's map phase failed: the workers are still
		// waiting for buckets, so the cluster cannot be reused.
		j.cl.fail(fmt.Errorf("mapreduce: dist job %q failed during map: %w", j.hdr.name, mapErr))
	} else if j.hdr.mode == remote.ModeFlat {
		// Flat jobs have no worker map phase: the coordinator sealed
		// ingestion the moment its own map tasks finished.
		if err := j.flushAll(); err != nil {
			mapErr = err
		}
	}
	wg.Wait()
	close(watchDone)
	watchWG.Wait()
	if mapErr != nil {
		return nil, nil, mapErr
	}
	for _, err := range readErrs {
		if err != nil {
			// Return the first-latched error (the root cause), not
			// whichever cascade error this slot happens to hold.
			if first := j.cl.Err(); first != nil {
				return nil, nil, first
			}
			return nil, nil, err
		}
	}

	// Aggregate the worker reports.
	counts := make([]int64, j.hdr.reducers)
	var workerWall time.Duration
	for w := range j.reports {
		rep := &j.reports[w]
		stats.ReduceGroups += rep.groups
		stats.ReduceOutputRecords += rep.outRecords
		if wall := rep.mapWall + rep.reduceWall; wall > workerWall {
			workerWall = wall
		}
		for part, n := range rep.counts {
			counts[part] = n
		}
		if cfg.DistCounters != nil {
			for name, v := range rep.counters {
				cfg.DistCounters.Inc(name, v)
			}
		}
		if j.hdr.mode == remote.ModeChained {
			stats.addMapOutput(rep.emitted)
			stats.addRouted(rep.local, rep.cross)
			j.records.Add(rep.local + rep.cross)
		}
	}
	stats.WorkerWall = workerWall
	in, out := j.cl.bytesInOut()
	stats.RemoteBytesIn = in - j.bytesIn0
	stats.RemoteBytesOut = out - j.bytesOut0
	j.cl.mu.Lock()
	j.cl.lastIn, j.cl.lastOut = in, out
	j.cl.mu.Unlock()
	stats.ShuffleRecords = j.records.Load()

	// Burn the failure coins the local backends would have drawn for
	// the reduce tasks (and, for chained jobs, the worker-side map
	// tasks): user functions are pure, so a re-executed attempt changes
	// nothing but the retry counters — keeping Stats comparable across
	// backends under injected failures.
	if cfg.FailureRate > 0 {
		if j.hdr.mode == remote.ModeChained {
			for p := 0; p < j.hdr.splits; p++ {
				if err := cfg.burnAttempts(0, p, stats.addMapRetry); err != nil {
					return nil, nil, err
				}
			}
		}
		for p := 0; p < j.hdr.reducers; p++ {
			if err := cfg.burnAttempts(1, p, stats.addReduceRetry); err != nil {
				return nil, nil, err
			}
		}
	}
	return j.outs, counts, nil
}

// distSender is the ShuffleBackend the coordinator's map phase emits
// into under ShuffleDist: buckets stream straight to the owning worker.
// Finalize is never reached — reduce happens on the workers — so the
// dist path never builds a GroupStream.
type distSender[K2 comparable, V2 any, K3 comparable, V3 any] struct {
	j  *distJobRun[K2, V2, K3, V3]
	ar *roundArena[K2, V2]
}

func (s *distSender[K2, V2, K3, V3]) Partitions() int { return s.j.hdr.reducers }
func (s *distSender[K2, V2, K3, V3]) BucketCap() int  { return 0 }

func (s *distSender[K2, V2, K3, V3]) AddBucket(split, part int, pairs []Pair[K2, V2]) error {
	err := s.j.sendBucket(split, part, pairs)
	// The bucket is on the wire: its storage feeds the next emitter fill.
	s.ar.putBucket(part, pairs)
	return err
}

func (s *distSender[K2, V2, K3, V3]) Finalize() ([]GroupStream[K2, V2], error) {
	return nil, errors.New("mapreduce: dist backend has no local group streams")
}

func (s *distSender[K2, V2, K3, V3]) Close() error { return nil }

// runDistFlat executes one flat job on the dist backend: local map
// phase, buckets streamed to the workers, reduce output streamed back
// and normalized exactly like Run.
func runDistFlat[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	cfg Config,
	input []Pair[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	stats *Stats,
) ([]Pair[K3, V3], error) {
	splits := splitRange(len(input), cfg.mappers())
	job, err := startDistJob[K2, V2, K3, V3](cfg, remote.ModeFlat, len(splits), 0, true)
	if err != nil {
		return nil, err
	}
	ar := arenaFor[K2, V2](cfg.Pool, cfg.reducers())
	sender := &distSender[K2, V2, K3, V3]{j: job, ar: ar}
	phase := time.Now()
	mapErr := runMapPhase(ctx, cfg, splits, input, mapFn, sender, ar, stats)
	stats.MapWall = time.Since(phase)
	phase = time.Now()
	outs, _, err := job.finish(ctx, cfg, stats, mapErr)
	stats.ReduceWall = time.Since(phase)
	if err != nil {
		return nil, err
	}
	var total int
	for _, o := range outs {
		total += len(o)
	}
	all := make([]Pair[K3, V3], 0, total)
	for _, o := range outs {
		all = append(all, o...)
	}
	sortPairs(all)
	return all, nil
}

// runDistDS executes one Dataset job on the dist backend. Output stays
// worker-resident (the returned Dataset holds a residency handle, not
// records); a chained input that is itself worker-resident is mapped on
// the workers, so self-addressed pairs never touch the wire.
func runDistDS[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	cfg Config,
	input *Dataset[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	stats *Stats,
) (*Dataset[K3, V3], error) {
	cl := cfg.Dist
	if cl == nil {
		return nil, errors.New("mapreduce: shuffle backend \"dist\" requires Config.Dist (a started DistCluster)")
	}
	remoteChained := input.rem != nil && input.rem.cl == cl && input.aligned &&
		input.Partitions() == cfg.reducers() && !cfg.FlatChaining
	if input.rem != nil && !remoteChained {
		// Resident on the cluster but not consumable in place (partition
		// mismatch, forced flat, alignment lost): move it here first.
		if err := input.Materialize(); err != nil {
			return nil, err
		}
	}

	var job *distJobRun[K2, V2, K3, V3]
	var err error
	phase := time.Now()
	if remoteChained {
		job, err = startDistJob[K2, V2, K3, V3](cfg, remote.ModeChained, input.Partitions(), input.rem.seq, false)
		if err != nil {
			return nil, err
		}
		// The map phase runs on the workers; the readers in finish
		// observe it through MsgMapDone and the flush barrier.
	} else {
		chained := input.aligned && input.Partitions() == cfg.reducers() && !cfg.FlatChaining
		ar := arenaFor[K2, V2](cfg.Pool, cfg.reducers())
		var mapErr error
		if chained {
			job, err = startDistJob[K2, V2, K3, V3](cfg, remote.ModeFlat, input.Partitions(), 0, false)
			if err != nil {
				return nil, err
			}
			sender := &distSender[K2, V2, K3, V3]{j: job, ar: ar}
			mapErr = runMapPhaseDS(ctx, cfg, input, mapFn, sender, ar, stats)
		} else {
			flat := input.Collect()
			splits := splitRange(len(flat), cfg.mappers())
			job, err = startDistJob[K2, V2, K3, V3](cfg, remote.ModeFlat, len(splits), 0, false)
			if err != nil {
				return nil, err
			}
			sender := &distSender[K2, V2, K3, V3]{j: job, ar: ar}
			mapErr = runMapPhase(ctx, cfg, splits, flat, mapFn, sender, ar, stats)
		}
		stats.MapWall = time.Since(phase)
		phase = time.Now()
		_, counts, err := job.finish(ctx, cfg, stats, mapErr)
		stats.ReduceWall = time.Since(phase)
		if err != nil {
			return nil, err
		}
		return newRemoteDataset[K3, V3](cl, job.hdr.seq, counts, keyCast[K2, K3]() != nil, cfg.Pool), nil
	}
	_, counts, err := job.finish(ctx, cfg, stats, nil)
	stats.MapWall = 0
	stats.ReduceWall = time.Since(phase)
	if err != nil {
		return nil, err
	}
	return newRemoteDataset[K3, V3](cl, job.hdr.seq, counts, keyCast[K2, K3]() != nil, cfg.Pool), nil
}

// distResident is a Dataset's residency handle: which cluster and job
// own the records, and how many live in each partition (Len without a
// fetch).
type distResident struct {
	cl     *DistCluster
	seq    uint64
	counts []int64
}

// newRemoteDataset wraps a worker-resident job output in a Dataset.
func newRemoteDataset[K comparable, V any](cl *DistCluster, seq uint64, counts []int64, aligned bool, pool *BufferPool) *Dataset[K, V] {
	return &Dataset[K, V]{
		parts:   make([][]Pair[K, V], len(counts)),
		aligned: aligned,
		pool:    pool,
		rem:     &distResident{cl: cl, seq: seq, counts: counts},
	}
}

// Materialize moves a worker-resident Dataset's records to the caller:
// every partition is fetched from its owning worker and the residency is
// released (the workers drop their copies). A no-op for local Datasets.
// Record access (Collect, Each, Part, MapValues, Repartition) requires a
// materialized Dataset; in-repo algorithms call Materialize explicitly
// after every job whose output they read driver-side, so fetch errors
// surface as errors rather than panics.
func (d *Dataset[K, V]) Materialize() error {
	if d.rem == nil {
		return nil
	}
	rem := d.rem
	if err := rem.cl.Err(); err != nil {
		return fmt.Errorf("mapreduce: materializing dataset: dist cluster is broken: %w", err)
	}
	kc, err := resolveSpillCodec[K]()
	if err != nil {
		return fmt.Errorf("mapreduce: materializing dataset: %w", err)
	}
	vc, err := resolveSpillCodec[V]()
	if err != nil {
		return fmt.Errorf("mapreduce: materializing dataset: %w", err)
	}
	fetch := remote.AppendUvarint([]byte{byte(remote.MsgFetch)}, rem.seq)
	// One fetch per connection, concurrently: the workers own disjoint
	// partitions and each connection has its own reader, so the
	// materialization wall is the slowest worker's transfer, not the
	// sum — this sits on the per-round critical path of every algorithm
	// that folds job output driver-side.
	errs := make([]error, len(rem.cl.conns))
	var wg sync.WaitGroup
	for w, conn := range rem.cl.conns {
		w, conn := w, conn
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := d.fetchFrom(conn, fetch, kc, vc); err != nil {
				errs[w] = fmt.Errorf("mapreduce: fetching resident partitions from worker %d: %w", w, err)
				rem.cl.fail(errs[w])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	d.rem = nil
	return nil
}

// fetchFrom drains one worker's resident partitions for this dataset.
func (d *Dataset[K, V]) fetchFrom(conn *remote.Conn, fetch []byte, kc spillCodec[K], vc spillCodec[V]) error {
	if err := conn.WriteFrame(fetch); err != nil {
		return err
	}
	for {
		payload, err := conn.ReadFrame()
		if err != nil {
			return err
		}
		cur := remote.NewCursor(payload)
		switch t := remote.MsgType(cur.Byte()); t {
		case remote.MsgPart:
			cur.Uvarint() // seq
			part := int(cur.Uvarint())
			count := int(cur.Uvarint())
			if err := cur.Err(); err != nil || part < 0 || part >= len(d.parts) {
				return fmt.Errorf("malformed resident partition frame")
			}
			pairs, err := decodePairs(cur, count, kc, vc, make([]Pair[K, V], 0, pairCap(cur, count)))
			if err != nil {
				return err
			}
			d.parts[part] = pairs
		case remote.MsgFetchDone:
			return nil
		case remote.MsgError:
			cur.Uvarint()
			return errors.New(cur.String())
		default:
			return fmt.Errorf("unexpected %v during fetch", t)
		}
	}
}

// mustMaterialize backs the record accessors of Dataset. Reaching a
// fetch failure here means a remote Dataset was accessed without a
// prior Materialize check — a programming error — so it fails loudly.
func (d *Dataset[K, V]) mustMaterialize() {
	if err := d.Materialize(); err != nil {
		panic(fmt.Sprintf("mapreduce: unchecked access to a worker-resident Dataset: %v (call Materialize and handle the error first)", err))
	}
}

// dropResident releases a worker-resident Dataset's partitions on the
// workers (Recycle's remote half). Best effort: a transport failure here
// breaks the cluster, and the next job reports it.
func (d *Dataset[K, V]) dropResident() {
	rem := d.rem
	d.rem = nil
	if rem == nil || rem.cl.Err() != nil {
		return
	}
	frame := remote.AppendUvarint([]byte{byte(remote.MsgDrop)}, rem.seq)
	for w, conn := range rem.cl.conns {
		if err := conn.WriteFrame(frame); err != nil {
			rem.cl.fail(fmt.Errorf("mapreduce: dropping resident dataset on worker %d: %w", w, err))
			return
		}
	}
}
