package mapreduce

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mapreduce/remote"
)

// This file is the coordinator half of the distributed execution mode
// (ShuffleDist): reduce partitions are sharded across worker processes
// connected over the length-prefixed TCP transport of
// internal/mapreduce/remote. The coordinator runs the map phase (or, for
// chained jobs whose input already resides on the workers, only
// orchestrates it), streams pre-partitioned buckets to the partitions'
// owners, and the workers group-sort and reduce their partitions locally
// with the same radix path and buffer pool the in-memory backend uses —
// which is what makes the output bit-identical to ShuffleMemory for the
// same seed and partition count. Reduce output either streams back
// (Run) or stays worker-resident (RunDS), so the next chained job's
// self-addressed pairs never cross the wire. The worker half lives in
// distworker.go; workers run the reduce (and, when chained, map)
// functions registered under the job's name via RegisterDistJob — the
// function values themselves never travel.

// DistCluster is a set of connected worker processes, shared by every
// job of a computation (Config.Dist). Reduce partitions start out owned
// round-robin (partition p belongs to worker p mod N); each job carries
// its own partition→worker assignment in the job header, so when a
// worker dies its partitions are re-assigned to the survivors (or to a
// late-joining replacement) while every surviving partition stays put.
// A cluster is single-computation: jobs run one at a time. Worker death
// latches the *round*, not the cluster — the in-flight job is aborted
// on the survivors and retried with restored input (see the recovery
// protocol on distJobRun). Only non-transport failures (a user function
// erroring, a malformed frame, context cancellation) break the cluster,
// and later jobs then fail fast rather than running on a cluster in an
// unknown state.
type DistCluster struct {
	conns []*remote.Conn
	procs []*exec.Cmd

	mu     sync.Mutex
	seq    uint64
	broken error
	closed bool
	// lastIn/lastOut checkpoint the transport counters at the previous
	// job's end, so a job's RemoteBytes* delta also covers the
	// inter-job traffic that belongs to it in spirit — most importantly
	// the Materialize fetch of the previous job's resident output.
	lastIn  int64
	lastOut int64
	// dead marks connections whose workers were lost (transport error
	// or kill). A dead slot keeps its index — partition assignments name
	// workers by index — but is skipped by every frame loop.
	dead     []bool
	sawDeath bool
	// owners maps a partition count to the sticky assignment array for
	// that geometry. Only a dead worker's partitions ever move (to the
	// live workers, round-robin in partition order), so data resident on
	// survivors is never reassigned away from them.
	owners map[int][]int
	// residency tracks every worker-resident job output: where each
	// partition currently lives and, when the job was checkpointed, the
	// coordinator's mirror of its partition images (fed by MsgCkpt
	// frames at the flush barrier). The mirror is what recovery re-seeds
	// lost partitions from.
	residency map[uint64]*distMirror
	// retained counts jobs whose output stayed worker-resident, for the
	// Config.CheckpointEvery throttle.
	retained uint64
	// late holds replacement workers accepted after startup
	// (DistClusterOptions.AcceptLate); recovery adopts them into conns.
	late []*remote.Conn
	ln   net.Listener
	// acceptFresh gates fresh late joins on the shared accept loop; the
	// loop also runs with AcceptLate off when ReconnectGrace keeps the
	// listener open for session re-attachment only.
	acceptFresh bool
	// reconnectGrace > 0 enables session resume on every worker
	// connection: a worker whose transport dies may redial and re-attach
	// within the grace window, replaying un-acked frames, instead of
	// being declared dead and reseeded around.
	reconnectGrace time.Duration
	// journal, when non-nil, persists the coordinator's run state for
	// crash-resume (see journal.go).
	journal  *distJournal
	closeErr error

	// Elastic-scheduling configuration (resolved from
	// DistClusterOptions at startup) and state. health parallels conns;
	// activeJob/hbFloor are what the monitor goroutine watches.
	hbEvery      time.Duration
	hbMisses     int
	drainTimeout time.Duration
	abortTimeout time.Duration
	health       []*workerHealth
	activeJob    distActiveJob
	hbFloor      time.Time
	monitorStop  chan struct{}
	monitorWG    sync.WaitGroup

	recoveries   atomic.Int64
	reseeded     atomic.Int64
	hbTimeouts   atomic.Int64
	specLaunch   atomic.Int64
	specWins     atomic.Int64
	migratedCnt  atomic.Int64
	jobsReplayed atomic.Int64
}

// workerHealth is the monitor's per-worker scheduling state. suspect is
// the demoted-but-not-dead verdict (silent past the heartbeat window,
// or speculated around as a straggler); tainted marks workers a
// speculative re-execution was ever launched against — they stay
// benched from future schedules, because re-admitting a known straggler
// invites abort/retry oscillation, while a genuinely recovered machine
// can always rejoin as a fresh late worker. pongParts/pongRecords
// mirror the last heartbeat's progress counters, for observability.
type workerHealth struct {
	suspect     atomic.Bool
	suspectedAt atomic.Int64 // unixnano of the demotion
	probes      atomic.Int32
	tainted     atomic.Bool
	pongParts   atomic.Int64
	pongRecords atomic.Int64
}

// distActiveJob is the monitor's view of the job in flight — the
// untyped face of distJobRun, registered by startDistJob and cleared
// when finish returns.
type distActiveJob interface {
	liveSet() []int
	specFactor() float64
	canSpeculate(w int) bool
	speculateLost(w int, cause error)
	lost(w int, cause error)
	doneWith(w int) bool
	tailLaggard(now time.Time, factor float64, floor time.Duration) (int, time.Duration, bool)
}

// distMirror is the residency record of one retained job output.
type distMirror struct {
	loc    []int   // current owner of each partition
	counts []int64 // pairs per partition (from the job reports)
	// blobs are the checkpointed partition images (canonical encodePairs
	// bytes); nil when the job ran with checkpointing throttled off, in
	// which case a lost partition is unrecoverable.
	blobs [][]byte
}

// WorkerLostError reports that a dist worker died. The engine retries
// the in-flight job internally after a loss, so this error escapes a
// Run/RunDS call only when recovery is impossible: no live workers
// remain, the retry budget is exhausted, or a job's worker-resident
// input was lost without a checkpoint to restore it from.
// mapreduce.Loop treats an escaped WorkerLostError as replayable when
// the loop state itself is restorable (see Loop).
type WorkerLostError struct {
	// Worker is the index of the lost worker (-1 when the loss is
	// positional, e.g. "no live workers").
	Worker int
	// Job names the job that was in flight, if any.
	Job string
	// Err is the underlying transport or recovery failure.
	Err error
	// Speculative marks an abort the scheduler initiated to re-execute
	// a straggler's partitions elsewhere: the worker was demoted, not
	// declared dead, and the retry that follows is a backup execution
	// rather than a recovery.
	Speculative bool
}

func (e *WorkerLostError) Error() string {
	who := "dist worker"
	if e.Worker >= 0 {
		who = fmt.Sprintf("dist worker %d", e.Worker)
	}
	if e.Job != "" {
		return fmt.Sprintf("mapreduce: job %q: %s lost: %v", e.Job, who, e.Err)
	}
	return fmt.Sprintf("mapreduce: %s lost: %v", who, e.Err)
}

func (e *WorkerLostError) Unwrap() error { return e.Err }

func isWorkerLost(err error) bool {
	var wl *WorkerLostError
	return errors.As(err, &wl)
}

// DistClusterOptions configures StartDistCluster.
type DistClusterOptions struct {
	// Listen is the coordinator's listen address (default "127.0.0.1:0",
	// an ephemeral loopback port). Use a routable address to accept
	// workers from other machines.
	Listen string
	// Spawn, when non-nil, is invoked once per worker with the
	// coordinator's listen address and must return a ready-to-start
	// command for a worker that will connect there (the self-exec
	// pattern: a CLI re-executes its own binary in worker mode). When
	// nil the coordinator only waits for externally launched workers.
	Spawn func(addr string) *exec.Cmd
	// Timeout bounds the wait for all workers to connect (default 60s).
	Timeout time.Duration
	// OnListen, when non-nil, is called with the coordinator's listen
	// address once it is accepting, before any worker connects — the
	// hook in-process workers (tests, embedded deployments) use to dial
	// in from goroutines of the same process.
	OnListen func(addr string)
	// AcceptLate keeps the coordinator's listener open after the initial
	// n workers connect, so replacement workers can join a running
	// cluster with -dist-connect. Rebalancing adopts them at the next
	// job boundary — they pick up partitions from dead workers, and
	// (when checkpoint mirrors exist) a fair share of resident
	// partitions from loaded survivors, without waiting for a failure.
	// Off by default (the listener closes once startup completes).
	AcceptLate bool
	// HeartbeatEvery is the health cadence: workers send a progress
	// heartbeat every interval and the coordinator's monitor ticks at
	// the same rate. Zero means the 500ms default; negative disables
	// health monitoring entirely (no pongs, no monitor, no
	// speculation).
	HeartbeatEvery time.Duration
	// HeartbeatMisses is how many consecutive silent intervals demote a
	// worker to suspect (default 3). A suspect is benched from new
	// schedules but not killed; it is declared dead only after further
	// exponentially backed-off probes go unanswered.
	HeartbeatMisses int
	// DrainTimeout bounds the read for a parting MsgError after a write
	// to a worker fails (default 500ms).
	DrainTimeout time.Duration
	// AbortTimeout bounds recovery waits — abort acknowledgements,
	// resident-partition fetches from a possibly-hung worker, late-join
	// handshakes (default 30s).
	AbortTimeout time.Duration
	// ReconnectGrace, when positive, enables session resume on every
	// worker connection: frames are sequence-numbered and ringed, and a
	// worker whose transport errors may redial and re-attach by worker
	// id + session token within the grace window — both sides replay
	// un-acked frames and the run continues, with no abort, no reseed.
	// Only past the grace does the loss escalate to the usual
	// death/recovery path. Keeps the listener open for re-attachment
	// even without AcceptLate. Zero disables (the default).
	ReconnectGrace time.Duration
	// JournalDir, when set, persists the coordinator's run state — every
	// job result and round-boundary commit records — to an append-only
	// journal in that directory, so a crashed coordinator can be
	// restarted with Resume and replay the run from the last committed
	// round (see journal.go).
	JournalDir string
	// Resume makes StartDistCluster load JournalDir's committed history
	// before running: the restarted pipeline re-executes
	// deterministically, satisfying already-journaled jobs from the
	// journal (resident outputs are re-seeded onto the new workers from
	// the journaled mirror) and running live from the first uncommitted
	// job on.
	Resume bool
	// JournalCrashAfter, when positive, SIGKILLs the coordinator process
	// after that many journal records have been appended — the
	// deterministic crash hook the resume chaos suite drives. Test
	// instrumentation only.
	JournalCrashAfter int
}

// StartDistCluster listens for n workers, optionally spawning them via
// opts.Spawn, completes the handshake with each, and returns the
// connected cluster. The caller owns the cluster and must Close it.
func StartDistCluster(n int, opts DistClusterOptions) (*DistCluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("mapreduce: dist cluster needs >= 1 worker, got %d", n)
	}
	addr := opts.Listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: dist listen: %w", err)
	}

	cl := &DistCluster{
		hbEvery:        opts.HeartbeatEvery,
		hbMisses:       opts.HeartbeatMisses,
		drainTimeout:   opts.DrainTimeout,
		abortTimeout:   opts.AbortTimeout,
		reconnectGrace: opts.ReconnectGrace,
		acceptFresh:    opts.AcceptLate,
	}
	if opts.JournalDir != "" {
		j, err := openDistJournal(opts.JournalDir, opts.Resume, opts.JournalCrashAfter)
		if err != nil {
			ln.Close()
			return nil, err
		}
		cl.journal = j
	}
	if cl.hbEvery == 0 {
		cl.hbEvery = 500 * time.Millisecond
	}
	if cl.hbMisses <= 0 {
		cl.hbMisses = 3
	}
	if cl.drainTimeout <= 0 {
		cl.drainTimeout = 500 * time.Millisecond
	}
	if cl.abortTimeout <= 0 {
		cl.abortTimeout = distAbortTimeout
	}
	if opts.OnListen != nil {
		opts.OnListen(ln.Addr().String())
	}
	if opts.Spawn != nil {
		for i := 0; i < n; i++ {
			cmd := opts.Spawn(ln.Addr().String())
			if err := cmd.Start(); err != nil {
				ln.Close()
				cl.abort()
				return nil, fmt.Errorf("mapreduce: spawning dist worker %d: %w", i, err)
			}
			cl.procs = append(cl.procs, cmd)
		}
	}
	deadline := time.Now().Add(timeout)
	for i := 0; i < n; i++ {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		nc, err := ln.Accept()
		if err != nil {
			ln.Close()
			cl.abort()
			return nil, fmt.Errorf("mapreduce: waiting for dist worker %d of %d: %w", i+1, n, err)
		}
		// The accept deadline does not cover the handshake: a spawned
		// worker that connects and then dies (or hangs) before sending
		// its hello would otherwise block this read forever. The same
		// overall deadline bounds it; cleared once the worker is in.
		nc.SetReadDeadline(deadline)
		conn := remote.NewConn(nc)
		hi, err := remote.AwaitHello(conn)
		if err != nil {
			conn.Close()
			ln.Close()
			cl.abort()
			return nil, fmt.Errorf("mapreduce: dist worker handshake: %w", err)
		}
		if hi.Resume {
			// A leftover worker from a previous coordinator incarnation
			// redialing into a fresh cluster: its session does not exist
			// here. Refuse it and keep waiting for worker i.
			remote.RefuseResume(nc, "unknown session")
			i--
			continue
		}
		resumeOn := cl.reconnectGrace > 0 && hi.ResumeCapable
		token := mintSessionToken()
		if err := remote.Welcome(conn, i, n, cl.hbEvery, token, resumeOn); err != nil {
			conn.Close()
			ln.Close()
			cl.abort()
			return nil, fmt.Errorf("mapreduce: dist worker handshake: %w", err)
		}
		if resumeOn {
			conn.EnableResume(remote.ResumeConfig{Token: token, WorkerID: i, Grace: cl.reconnectGrace})
		}
		nc.SetReadDeadline(time.Time{})
		cl.conns = append(cl.conns, conn)
	}
	cl.health = make([]*workerHealth, len(cl.conns))
	for i := range cl.health {
		cl.health[i] = &workerHealth{}
	}
	if cl.hbEvery > 0 {
		cl.monitorStop = make(chan struct{})
		cl.monitorWG.Add(1)
		go cl.monitor()
	}
	if opts.AcceptLate || cl.reconnectGrace > 0 {
		// The listener stays open for late joiners and/or session
		// re-attachment; the shared accept loop routes by hello type.
		cl.ln = ln
		go cl.acceptLate(ln)
	} else {
		ln.Close()
	}
	return cl, nil
}

// mintSessionToken draws the random session token a resume hello must
// present to re-attach — what stops a stale worker from a previous run
// (or a same-id worker of another cluster on a recycled port) from
// splicing itself into a session it does not own.
func mintSessionToken() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Degraded randomness beats refusing to run: fall back to a
		// time-derived token.
		return uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}

// acceptLate is the post-startup accept loop, serving two kinds of
// hello: fresh joins (replacement workers, admitted when AcceptLate is
// on — each gets the next worker index and recovery adopts it between
// job attempts) and resume hellos (a severed worker's redial,
// re-attached to its existing session in place). Exits when the
// listener closes.
func (cl *DistCluster) acceptLate(ln net.Listener) {
	for {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(time.Time{})
		}
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		nc.SetReadDeadline(time.Now().Add(cl.abortTimeout))
		conn := remote.NewConn(nc)
		hi, err := remote.AwaitHello(conn)
		if err != nil {
			conn.Close()
			continue
		}
		if hi.Resume {
			nc.SetReadDeadline(time.Time{})
			cl.reattachWorker(nc, hi)
			continue
		}
		if !cl.acceptFresh {
			conn.Close()
			continue
		}
		cl.mu.Lock()
		id := len(cl.conns) + len(cl.late)
		cl.mu.Unlock()
		resumeOn := cl.reconnectGrace > 0 && hi.ResumeCapable
		token := mintSessionToken()
		if err := remote.Welcome(conn, id, id+1, cl.hbEvery, token, resumeOn); err != nil {
			conn.Close()
			continue
		}
		if resumeOn {
			conn.EnableResume(remote.ResumeConfig{Token: token, WorkerID: id, Grace: cl.reconnectGrace})
		}
		nc.SetReadDeadline(time.Time{})
		cl.mu.Lock()
		if cl.closed || cl.broken != nil {
			cl.mu.Unlock()
			conn.Close()
			return
		}
		cl.late = append(cl.late, conn)
		cl.mu.Unlock()
	}
}

// reattachWorker routes a resume hello to the session it names: find
// the connection by worker id (adopted or still in the late set), and
// let its resume layer verify the token, swap the transport, and
// replay. A session that does not exist, is dead, or refuses the
// re-attach gets a refusal frame, which stops the worker's redialing.
func (cl *DistCluster) reattachWorker(nc net.Conn, hi remote.HelloInfo) {
	cl.mu.Lock()
	var target *remote.Conn
	switch {
	case hi.WorkerID < 0:
	case hi.WorkerID < len(cl.conns):
		if !cl.deadLocked(hi.WorkerID) {
			target = cl.conns[hi.WorkerID]
		}
	case hi.WorkerID-len(cl.conns) < len(cl.late):
		target = cl.late[hi.WorkerID-len(cl.conns)]
	}
	cl.mu.Unlock()
	if target == nil {
		remote.RefuseResume(nc, "unknown or retired session")
		return
	}
	if _, err := target.Reattach(nc, hi.Token, hi.Received); err != nil {
		remote.RefuseResume(nc, err.Error())
	}
}

// abort is the startup-failure teardown: spawned workers may still be
// mid-handshake (their connections are not in conns, so Close's Bye
// never reaches them and its Wait would block on them forever) — kill
// them before reaping.
func (cl *DistCluster) abort() {
	for _, c := range cl.conns {
		c.Close()
	}
	for _, cmd := range cl.procs {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	for _, cmd := range cl.procs {
		cmd.Wait()
	}
	cl.mu.Lock()
	cl.closed = true
	cl.mu.Unlock()
}

// DistSelfExec returns a Spawn function that re-executes the current
// binary with "-dist-connect <addr>" followed by workerArgs, stderr
// inherited — the one self-exec recipe shared by every CLI's
// -dist-workers mode.
func DistSelfExec(workerArgs ...string) (func(addr string) *exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	return func(addr string) *exec.Cmd {
		cmd := exec.Command(exe, append([]string{"-dist-connect", addr}, workerArgs...)...)
		cmd.Stderr = os.Stderr
		return cmd
	}, nil
}

// Workers returns the number of connected workers.
func (cl *DistCluster) Workers() int { return len(cl.conns) }

// Err returns the error that broke the cluster, or nil while it is
// healthy.
func (cl *DistCluster) Err() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.broken
}

// fail latches the first fatal error and closes every connection, which
// unblocks any goroutine blocked on the transport.
func (cl *DistCluster) fail(err error) {
	cl.mu.Lock()
	already := cl.broken != nil
	if !already {
		cl.broken = err
	}
	cl.mu.Unlock()
	if !already {
		for _, c := range cl.conns {
			c.Close()
		}
	}
}

// nextSeq allocates a job sequence number (never zero, so zero can mean
// "no job" in message fields).
func (cl *DistCluster) nextSeq() uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.seq++
	return cl.seq
}

// distAbortTimeout bounds how long recovery waits for a survivor to
// acknowledge an abort before declaring it dead too. It doubles as the
// read-deadline backstop on the survivors' connections while an abort
// is in flight, so a wedged worker cannot block recovery forever.
const distAbortTimeout = 30 * time.Second

// isDead reports whether worker w has been lost.
func (cl *DistCluster) isDead(w int) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.deadLocked(w)
}

func (cl *DistCluster) deadLocked(w int) bool {
	// Negative indexes name no worker at all (journal-restored residency
	// uses -1 for "lives nowhere yet"); they are not dead, just absent.
	return w >= 0 && w < len(cl.dead) && cl.dead[w]
}

// liveCount returns the number of workers still alive.
func (cl *DistCluster) liveCount() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	n := 0
	for w := range cl.conns {
		if !cl.deadLocked(w) {
			n++
		}
	}
	return n
}

// markDead records worker w as lost and closes its connection, which
// unblocks any goroutine reading or writing it. Idempotent. It does not
// break the cluster — worker death is the recoverable failure mode.
func (cl *DistCluster) markDead(w int, cause error) {
	if cl.noteDead(w) {
		cl.conns[w].Close()
	}
}

// noteDead marks worker w dead without closing its connection, and
// reports whether this call made the transition. Write-failure paths
// use the window between marking and closing to drain a parting
// MsgError off the socket (drainFatal); everyone else goes through
// markDead.
func (cl *DistCluster) noteDead(w int) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if w < 0 || w >= len(cl.conns) || cl.deadLocked(w) {
		return false
	}
	if cl.dead == nil || len(cl.dead) < len(cl.conns) {
		dead := make([]bool, len(cl.conns))
		copy(dead, cl.dead)
		cl.dead = dead
	}
	cl.dead[w] = true
	cl.sawDeath = true
	return true
}

// liveWorkers snapshots the indexes of the workers currently alive.
func (cl *DistCluster) liveWorkers() []int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var live []int
	for w := range cl.conns {
		if !cl.deadLocked(w) {
			live = append(live, w)
		}
	}
	return live
}

// drainFatal reads briefly from a worker whose connection just failed a
// write, looking for the MsgError it may have sent before going away: a
// deterministic user-function or registration failure must surface as
// itself, not as the transport error it caused. Only called from paths
// where no reader goroutine owns the connection (job announce, flat
// bucket streaming, re-seeding). Returns "" when the worker died
// silently — the recoverable case.
func (cl *DistCluster) drainFatal(w int) string {
	c := cl.conns[w]
	c.SetReadDeadline(time.Now().Add(cl.drainTimeout))
	defer c.SetReadDeadline(time.Time{})
	for i := 0; i < 16; {
		payload, err := c.ReadFrame()
		if err != nil {
			return ""
		}
		cur := remote.NewCursor(payload)
		switch remote.MsgType(cur.Byte()) {
		case remote.MsgPong:
			continue // heartbeats don't spend the frame budget
		case remote.MsgError:
			cur.Uvarint() // seq
			return cur.String()
		default:
			// Every other frame type is in-flight job traffic from a
			// connection we are about to drop: discard it, spending
			// the drain budget so a chatty worker cannot stall the
			// fatal path.
		}
		i++
	}
	return ""
}

// reassignLocked rewrites an assignment array so no partition names a
// dead or benched (suspect/tainted) worker: their partitions go
// round-robin, in partition order, over the healthy workers.
// Deterministic in the dead and benched sets, and a no-op for
// partitions whose owner is healthy — surviving partitions never move,
// which is what lets recovery re-seed only what was actually lost. When
// demotions would leave no healthy worker, benched workers stay
// schedulable (the cluster must limp on) and only dead-owned
// partitions move.
func (cl *DistCluster) reassignLocked(owners []int) {
	var targets []int
	for w := range cl.conns {
		if !cl.deadLocked(w) && !cl.benchedLocked(w) {
			targets = append(targets, w)
		}
	}
	moveBenched := len(targets) > 0
	if !moveBenched {
		for w := range cl.conns {
			if !cl.deadLocked(w) {
				targets = append(targets, w)
			}
		}
	}
	if len(targets) == 0 {
		return
	}
	k := 0
	for p, w := range owners {
		if cl.deadLocked(w) || (moveBenched && cl.benchedLocked(w)) {
			owners[p] = targets[k%len(targets)]
			k++
		}
	}
}

// benchedLocked reports whether worker w is demoted from scheduling:
// currently suspect (silent past the heartbeat window) or tainted (a
// speculative re-execution was launched against it).
func (cl *DistCluster) benchedLocked(w int) bool {
	if w < 0 || w >= len(cl.health) {
		return false
	}
	h := cl.health[w]
	return h.suspect.Load() || h.tainted.Load()
}

// isSuspect reports whether worker w is currently demoted to suspect.
func (cl *DistCluster) isSuspect(w int) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return w >= 0 && w < len(cl.health) && cl.health[w].suspect.Load()
}

// ownersFor returns a snapshot of the sticky partition assignment for
// the given partition count, creating it (p mod N, with any already-dead
// workers substituted) on first use. The returned slice is the caller's
// own copy: a concurrent death re-assigns the stored array, never a
// running job's view.
func (cl *DistCluster) ownersFor(parts int) []int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return append([]int(nil), cl.ownersForLocked(parts)...)
}

// ownersForLocked returns the stored (mutable) assignment array for the
// geometry, creating it on first use. Callers hold cl.mu.
func (cl *DistCluster) ownersForLocked(parts int) []int {
	if cl.owners == nil {
		cl.owners = make(map[int][]int)
	}
	o := cl.owners[parts]
	if o == nil {
		o = make([]int, parts)
		for p := range o {
			o[p] = remote.Owner(p, len(cl.conns))
		}
		cl.reassignLocked(o)
		cl.owners[parts] = o
	}
	return o
}

// recoverAssignments runs between a lost job attempt and its retry:
// adopt any late-joined replacement workers, then rewrite every stored
// assignment so dead and benched workers own nothing.
func (cl *DistCluster) recoverAssignments() {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.adoptLateLocked()
	for _, o := range cl.owners {
		cl.reassignLocked(o)
	}
}

// adoptLateLocked folds late-joined replacement workers into the
// cluster: each gets the next connection slot and a fresh health
// record.
func (cl *DistCluster) adoptLateLocked() {
	for _, c := range cl.late {
		cl.conns = append(cl.conns, c)
		cl.health = append(cl.health, &workerHealth{})
		if cl.dead != nil {
			cl.dead = append(cl.dead, false)
		}
	}
	cl.late = nil
}

// reviveLocked lifts suspicion from workers that have spoken since
// their demotion — but never from tainted (speculated-around) workers,
// which stay benched: re-admitting a straggler that already cost one
// speculative abort invites abort/retry oscillation, and a genuinely
// recovered machine can always rejoin as a fresh late worker. Called
// only at job-success boundaries, so a retry that excluded a suspect
// cannot re-admit it mid-recovery.
func (cl *DistCluster) reviveLocked() {
	for w, h := range cl.health {
		if h == nil || !h.suspect.Load() || h.tainted.Load() || cl.deadLocked(w) {
			continue
		}
		if cl.conns[w].LastRead().After(time.Unix(0, h.suspectedAt.Load())) {
			h.suspect.Store(false)
			h.probes.Store(0)
		}
	}
}

// rebalance is the job-boundary scheduling step: adopt healthy late
// joiners, optionally revive recovered suspects, rewrite the geometry's
// assignment so dead and benched workers own nothing, and grant idle
// healthy workers a fair share of partitions from loaded ones — hottest
// (by resident pair count) first when the upcoming input has a
// checkpoint mirror to move them with. The assignment is the plan; the
// data itself moves when ensureResident reconciles the input dataset's
// partition locations against it.
func (cl *DistCluster) rebalance(parts int, inputSeq uint64, revive bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.adoptLateLocked()
	if revive {
		cl.reviveLocked()
	}
	owners := cl.ownersForLocked(parts)
	cl.reassignLocked(owners)
	var m *distMirror
	if inputSeq != 0 {
		m = cl.residency[inputSeq]
	}
	cl.balanceLocked(owners, m, inputSeq != 0)
}

// balanceLocked moves partitions from loaded workers to idle healthy
// ones. For a chained input the move is real data (seeded from the
// mirror by ensureResident), so it requires the mirror's blobs; for a
// flat job the assignment is the only state, and moving it is free.
func (cl *DistCluster) balanceLocked(owners []int, m *distMirror, chained bool) {
	if chained && (m == nil || m.blobs == nil) {
		return // nothing migratable without a mirror
	}
	var sched []int
	for w := range cl.conns {
		if !cl.deadLocked(w) && !cl.benchedLocked(w) {
			sched = append(sched, w)
		}
	}
	if len(sched) < 2 {
		return
	}
	load := make(map[int]int, len(sched))
	for _, w := range owners {
		load[w]++
	}
	var idle []int
	for _, w := range sched {
		if load[w] == 0 {
			idle = append(idle, w)
		}
	}
	if len(idle) == 0 {
		return
	}
	share := len(owners) / len(sched)
	if share < 1 {
		share = 1
	}
	// Candidate partitions come from owners above their fair share,
	// hottest first (falling back to partition order), so a migration
	// moves the work that matters most.
	type cand struct {
		p    int
		heat int64
	}
	var cands []cand
	for p, w := range owners {
		if load[w] > share {
			var heat int64
			if m != nil && p < len(m.counts) {
				heat = m.counts[p]
			}
			cands = append(cands, cand{p: p, heat: heat})
		}
	}
	sort.SliceStable(cands, func(i, k int) bool { return cands[i].heat > cands[k].heat })
	i := 0
	for _, w := range idle {
		for granted := 0; granted < share && i < len(cands); {
			p := cands[i].p
			old := owners[p]
			i++
			if load[old] <= share {
				continue // donor already drained by an earlier grant
			}
			owners[p] = w
			load[old]--
			load[w]++
			granted++
		}
	}
}

// retryAfterLoss reports whether a job lost to worker death should be
// retried: the cluster is otherwise healthy, at least one worker
// survives, and the retry budget (one per worker slot — each worker can
// die at most once) is not exhausted.
func (cl *DistCluster) retryAfterLoss(attempt int) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.broken != nil || cl.closed {
		return false
	}
	live := 0
	for w := range cl.conns {
		if !cl.deadLocked(w) {
			live++
		}
	}
	return live > 0 && attempt < len(cl.conns)
}

// registerResident records a retained job output's partition locations
// and, when the job was checkpointed, the mirrored partition images.
func (cl *DistCluster) registerResident(seq uint64, owners []int, counts []int64, blobs [][]byte) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.residency == nil {
		cl.residency = make(map[uint64]*distMirror)
	}
	cl.residency[seq] = &distMirror{
		loc:    append([]int(nil), owners...),
		counts: counts,
		blobs:  blobs,
	}
}

// forgetResident drops the residency record (and mirror) of a consumed
// or recycled dataset.
func (cl *DistCluster) forgetResident(seq uint64) {
	cl.mu.Lock()
	delete(cl.residency, seq)
	cl.mu.Unlock()
}

// mirrorPart returns partition p's checkpointed image for job seq, if
// the coordinator holds one.
func (cl *DistCluster) mirrorPart(seq uint64, p int) ([]byte, bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	m := cl.residency[seq]
	if m == nil || m.blobs == nil || p < 0 || p >= len(m.blobs) {
		return nil, false
	}
	return m.blobs[p], true
}

// ensureResident reconciles job seq's resident output against the
// current assignment before the job that consumes it is announced: any
// partition whose recorded owner is dead is re-seeded from the
// checkpoint mirror onto the worker the assignment names (recovery),
// and any partition the assignment moved off a live owner — a
// rebalancing migration — is seeded onto the new owner and shed from
// the old one. A partition pinned to a live owner by a missing mirror
// blob stays put, and the assignment is repaired to match reality. A
// no-op while the cluster is healthy and balanced. Returns the counts
// of recovered and migrated partitions, or a WorkerLostError when a
// lost partition has no mirror to restore it from.
func (cl *DistCluster) ensureResident(seq uint64, name string) (int, int, error) {
	cl.mu.Lock()
	m := cl.residency[seq]
	if m == nil {
		cl.mu.Unlock()
		return 0, 0, fmt.Errorf("mapreduce: dist job %q: input dataset %d is not resident on this cluster", name, seq)
	}
	owners := cl.ownersForLocked(len(m.loc))
	type move struct {
		w     int
		frame []byte
	}
	var seeds, sheds []move
	migrated := 0
	reseeded := 0
	for p, w := range m.loc {
		target := owners[p]
		// A negative location means the partition lives on no worker at
		// all — journal-restored residency on a resumed coordinator. It is
		// seeded like a lost partition: from the mirror, no shed.
		dead := w < 0 || cl.deadLocked(w)
		if target == w && !dead {
			continue
		}
		if m.blobs == nil || (m.blobs[p] == nil && m.counts[p] > 0) {
			if !dead {
				// Unmovable without a mirror, but the copy is intact:
				// pin the assignment back to the live owner.
				owners[p] = w
				continue
			}
			cl.mu.Unlock()
			return 0, 0, &WorkerLostError{Worker: w, Job: name,
				Err: fmt.Errorf("resident input partition %d was lost and the producing job was not checkpointed (Config.CheckpointEvery)", p)}
		}
		if target == w {
			// Owner is dead and the assignment still names it — no live
			// worker existed to reassign to; the announce will fail with
			// "no live workers" before this matters.
			continue
		}
		frame := []byte{byte(remote.MsgSeed)}
		frame = remote.AppendUvarint(frame, seq)
		frame = remote.AppendUvarint(frame, uint64(p))
		frame = remote.AppendUvarint(frame, uint64(m.counts[p]))
		frame = append(frame, m.blobs[p]...)
		seeds = append(seeds, move{w: target, frame: frame})
		if dead {
			reseeded++
		} else {
			// The old copy survives on a live worker: shed it so a later
			// fetch or re-seed cannot resurrect a stale image.
			migrated++
			shed := []byte{byte(remote.MsgShed)}
			shed = remote.AppendUvarint(shed, seq)
			shed = remote.AppendUvarint(shed, uint64(p))
			sheds = append(sheds, move{w: w, frame: shed})
		}
		m.loc[p] = target
	}
	cl.mu.Unlock()
	for _, s := range seeds {
		if err := cl.conns[s.w].WriteFrame(s.frame); err != nil {
			cl.markDead(s.w, err)
			return 0, 0, &WorkerLostError{Worker: s.w, Job: name,
				Err: fmt.Errorf("re-seeding recovered partition: %w", err)}
		}
	}
	for _, s := range sheds {
		// Best effort: a worker that cannot be told sheds its stale copy
		// when it dies or the dataset is dropped.
		if err := cl.conns[s.w].WriteFrame(s.frame); err != nil {
			cl.markDead(s.w, err)
		}
	}
	if reseeded > 0 {
		cl.reseeded.Add(int64(reseeded))
	}
	if migrated > 0 {
		cl.migratedCnt.Add(int64(migrated))
	}
	return reseeded, migrated, nil
}

// residencySnapshot copies job seq's partition locations, for a fetch
// that must know which worker should stream each partition (a stale
// seed on a worker that lost the partition again must not shadow the
// current owner's copy). nil when the job has no residency record.
func (cl *DistCluster) residencySnapshot(seq uint64) []int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	m := cl.residency[seq]
	if m == nil {
		return nil
	}
	return append([]int(nil), m.loc...)
}

// canRestore reports whether job seq's resident output could still be
// reconstructed in full: the cluster is healthy with at least one live
// worker, and every partition either lives on a live worker or has a
// checkpoint mirror. This is Loop's replay test — it decides whether
// re-running a round from its entry state can possibly succeed.
func (cl *DistCluster) canRestore(seq uint64) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.broken != nil || cl.closed {
		return false
	}
	live := 0
	for w := range cl.conns {
		if !cl.deadLocked(w) {
			live++
		}
	}
	if live == 0 {
		return false
	}
	m := cl.residency[seq]
	if m == nil {
		return false
	}
	for p, w := range m.loc {
		if (w < 0 || cl.deadLocked(w)) && (m.blobs == nil || (m.blobs[p] == nil && m.counts[p] > 0)) {
			return false
		}
	}
	return true
}

// checkpointNext applies the Config.CheckpointEvery throttle: whether
// the next retained job output should be checkpointed.
func (cl *DistCluster) checkpointNext(every int) bool {
	if every < 0 {
		return false
	}
	if every == 0 {
		every = 1
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.retained%uint64(every) == 0
}

// noteRetained counts one successfully retained job output.
func (cl *DistCluster) noteRetained() {
	cl.mu.Lock()
	cl.retained++
	cl.mu.Unlock()
}

// RecoveryStats is the cluster's cumulative fault-tolerance and elastic
// scheduling activity, as reported by DistCluster.RecoveryStats.
type RecoveryStats struct {
	// WorkersLost counts worker slots currently marked dead.
	WorkersLost int
	// Recoveries counts job attempts retried after a loss (real or
	// speculative).
	Recoveries int64
	// Reseeded counts partitions restored from the checkpoint mirror
	// onto a new owner because their previous owner died.
	Reseeded int64
	// HeartbeatTimeouts counts silence-window expirations that demoted
	// a worker to suspect.
	HeartbeatTimeouts int64
	// SpeculativeLaunches counts straggler aborts launched to
	// re-execute a laggard's partitions elsewhere; SpeculativeWins
	// counts the ones whose backup attempt completed the job.
	SpeculativeLaunches int64
	SpeculativeWins     int64
	// PartitionsMigrated counts resident partitions moved between live
	// workers by rebalancing (not loss recovery).
	PartitionsMigrated int64
	// WorkerReconnects counts transport losses absorbed by session
	// resume: a severed worker redialed and re-attached within the grace
	// window instead of being declared dead.
	WorkerReconnects int64
	// FramesReplayed counts ring frames the coordinator re-sent to
	// re-attached workers across those reconnects.
	FramesReplayed int64
	// JournalBytes is the cumulative size of the coordinator run
	// journal's records, when journaling is enabled.
	JournalBytes int64
	// JobsReplayed counts jobs a resumed coordinator satisfied from the
	// journal instead of re-running.
	JobsReplayed int64
}

// RecoveryStats reports the cluster's cumulative recovery and elastic
// scheduling activity.
func (cl *DistCluster) RecoveryStats() RecoveryStats {
	var rs RecoveryStats
	cl.mu.Lock()
	for w := range cl.conns {
		if cl.deadLocked(w) {
			rs.WorkersLost++
		}
	}
	cl.mu.Unlock()
	rs.Recoveries = cl.recoveries.Load()
	rs.Reseeded = cl.reseeded.Load()
	rs.HeartbeatTimeouts = cl.hbTimeouts.Load()
	rs.SpeculativeLaunches = cl.specLaunch.Load()
	rs.SpeculativeWins = cl.specWins.Load()
	rs.PartitionsMigrated = cl.migratedCnt.Load()
	rs.WorkerReconnects, rs.FramesReplayed = cl.resumeTotals()
	if cl.journal != nil {
		rs.JournalBytes = cl.journal.bytes.Load()
	}
	rs.JobsReplayed = cl.jobsReplayed.Load()
	return rs
}

// resumeTotals sums the session-resume counters over every connection.
func (cl *DistCluster) resumeTotals() (reconnects, replayed int64) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, c := range cl.conns {
		reconnects += c.Reconnects()
		replayed += c.FramesReplayed()
	}
	for _, c := range cl.late {
		reconnects += c.Reconnects()
		replayed += c.FramesReplayed()
	}
	return reconnects, replayed
}

// journalBytes reports the journal's cumulative record bytes (zero
// when journaling is off).
func (cl *DistCluster) journalBytes() int64 {
	if cl.journal == nil {
		return 0
	}
	return cl.journal.bytes.Load()
}

// journalCommit records a round boundary: every journaled job record
// before it is durable, anything after a crash point is discarded by
// the resume loader. Driver.Observe calls it after every observed job
// and Loop after every completed round; a redundant commit is a cheap
// no-op frame. Journal write failures surface on the next journaled
// job — a durability feature that silently stopped journaling would be
// worse than a failed run.
func (cl *DistCluster) journalCommit(round int) {
	if cl.journal == nil {
		return
	}
	//lint:allow errdrop — commit failure latches distJournal.err, which the next appendJob returns into the job error path; a redundant commit has nothing to report it through
	cl.journal.commit(round)
}

// bumpSeq advances the cluster's job sequence counter past a
// journal-replayed job's number, so live jobs resumed mid-pipeline
// never reuse a journaled sequence.
func (cl *DistCluster) bumpSeq(seq uint64) {
	cl.mu.Lock()
	if seq > cl.seq {
		cl.seq = seq
	}
	cl.mu.Unlock()
}

// journalTake pops the next replay-queue record if it matches the job
// about to run. Implemented on the cluster so job runners can call it
// without nil-checking the journal.
func (cl *DistCluster) journalTake(name string, kind byte) (*journalRecord, error) {
	if cl == nil || cl.journal == nil {
		return nil, nil
	}
	rec, err := cl.journal.takeJob(name, kind)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		cl.jobsReplayed.Add(1)
		cl.bumpSeq(rec.seq)
	}
	return rec, err
}

// journalAppendFlat journals one flat job's sorted output as a single
// encodePairs blob.
func (cl *DistCluster) journalAppendFlat(seq uint64, name string, count int64, blob []byte) error {
	if cl == nil || cl.journal == nil {
		return nil
	}
	return cl.journal.appendJob(&journalRecord{
		seq:    seq,
		kind:   journalKindFlat,
		name:   name,
		counts: []int64{count},
		blobs:  [][]byte{blob},
	})
}

// journalAppendResident journals one retained job's residency mirror —
// the same per-partition blobs recovery re-seeds from.
func (cl *DistCluster) journalAppendResident(seq uint64, name string) error {
	if cl == nil || cl.journal == nil {
		return nil
	}
	cl.mu.Lock()
	m := cl.residency[seq]
	var counts []int64
	var blobs [][]byte
	if m != nil {
		counts = append([]int64(nil), m.counts...)
		blobs = append([][]byte(nil), m.blobs...)
	}
	cl.mu.Unlock()
	if m == nil || blobs == nil {
		// A resident output with no mirror is not journal-restorable;
		// runDistDS forces checkpointing on whenever the journal is open,
		// so reaching here means that invariant broke.
		return fmt.Errorf("mapreduce: dist journal: job %q (seq %d) retained output without a checkpoint mirror", name, seq)
	}
	return cl.journal.appendJob(&journalRecord{
		seq:    seq,
		kind:   journalKindResident,
		name:   name,
		counts: counts,
		blobs:  blobs,
	})
}

// scheduleWorkers picks the workers a job announce includes: every
// live worker that is not benched, plus any benched worker the
// assignment still names (a chained input pinned to it by a missing
// mirror blob). Falls back to all live workers when demotions would
// otherwise leave the job empty.
func (cl *DistCluster) scheduleWorkers(owners []int) []int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	needed := make(map[int]bool, len(owners))
	for _, w := range owners {
		needed[w] = true
	}
	var live []int
	for w := range cl.conns {
		if cl.deadLocked(w) {
			continue
		}
		if cl.benchedLocked(w) && !needed[w] {
			continue
		}
		live = append(live, w)
	}
	if len(live) == 0 {
		for w := range cl.conns {
			if !cl.deadLocked(w) {
				live = append(live, w)
			}
		}
	}
	return live
}

// restorableFrom reports whether every partition the assignment gives
// worker w could be re-seeded elsewhere from resident input seq's
// mirror — the precondition for speculating around w on a chained job.
func (cl *DistCluster) restorableFrom(seq uint64, owners []int, w int) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	m := cl.residency[seq]
	if m == nil || m.blobs == nil {
		return false
	}
	for p, o := range owners {
		if o != w {
			continue
		}
		if p >= len(m.blobs) || (m.blobs[p] == nil && m.counts[p] > 0) {
			return false
		}
	}
	return true
}

// setActiveJob hands the monitor the job in flight. The heartbeat floor
// resets with it: silence is measured from the announce, not from
// whenever the worker last happened to speak before the job existed.
func (cl *DistCluster) setActiveJob(j distActiveJob) {
	cl.mu.Lock()
	cl.activeJob = j
	cl.hbFloor = time.Now()
	cl.mu.Unlock()
}

func (cl *DistCluster) clearActiveJob() {
	cl.mu.Lock()
	cl.activeJob = nil
	cl.mu.Unlock()
}

// hbMaxProbes is how many exponentially backed-off probes a suspect
// gets before continued silence becomes a death verdict. With the
// defaults (500ms interval, 3 misses) a worker is suspect after 1.5s of
// silence, probed at 3s and 6s, and declared dead past 12s.
const hbMaxProbes = 2

// monitor is the cluster's health loop: at every heartbeat interval it
// measures each worker's silence against the window, demotes the quiet
// ones to suspect (launching a speculative re-execution when the job
// allows it), escalates unanswered probes to a death verdict, and
// checks the live progress distribution for stragglers worth
// speculating around. Detection only — all state changes route through
// the active job's own abort machinery, so the monitor can never race a
// job into an inconsistent state.
func (cl *DistCluster) monitor() {
	defer cl.monitorWG.Done()
	ticker := time.NewTicker(cl.hbEvery)
	defer ticker.Stop()
	for {
		select {
		case <-cl.monitorStop:
			return
		case <-ticker.C:
		}
		cl.checkHealth(time.Now())
	}
}

func (cl *DistCluster) checkHealth(now time.Time) {
	cl.mu.Lock()
	j := cl.activeJob
	floor := cl.hbFloor
	conns := cl.conns
	health := cl.health
	broken := cl.broken != nil || cl.closed
	cl.mu.Unlock()
	if j == nil || broken {
		return
	}
	window := cl.hbEvery * time.Duration(cl.hbMisses)
	inLive := make(map[int]bool)
	for _, w := range j.liveSet() {
		inLive[w] = true
	}
	for w := 0; w < len(conns) && w < len(health); w++ {
		if cl.isDead(w) {
			continue
		}
		// Only workers the active attempt is still waiting on are judged.
		// A non-participant (benched, adopted-but-idle) and a participant
		// that already delivered its MsgDone have per-job readers no
		// longer draining their frames, so their LastRead legitimately
		// goes stale — silence there is not evidence of a hang, and
		// condemning the finished survivor of a round that is waiting out
		// a genuinely hung worker would leave no one to retry on.
		if !inLive[w] || j.doneWith(w) {
			continue
		}
		// A worker whose transport died but whose session is inside the
		// reconnect grace window is neither suspect nor dead: the blip is
		// the resume layer's to absorb, and escalating here would turn a
		// 2-second reconnect into a full abort/reseed. If the grace
		// expires, the parked read surfaces its transport error and the
		// ordinary loss path takes over.
		if conns[w].Recovering() {
			continue
		}
		h := health[w]
		last := conns[w].LastRead()
		if last.Before(floor) {
			last = floor
		}
		silent := now.Sub(last)
		if silent <= window {
			continue
		}
		if !h.suspect.Load() {
			// Demote: the worker is suspect, not dead. Probe it, and if
			// the job can be completed without it, speculatively
			// re-execute its partitions elsewhere right away — a hung
			// worker holds the whole round hostage otherwise.
			h.suspect.Store(true)
			h.suspectedAt.Store(now.UnixNano())
			h.probes.Store(0)
			cl.hbTimeouts.Add(1)
			cl.ping(w)
			if j.specFactor() > 0 && j.canSpeculate(w) {
				h.tainted.Store(true)
				cl.specLaunch.Add(1)
				j.speculateLost(w, fmt.Errorf("mapreduce: dist worker %d silent for %v (heartbeat window %v)", w, silent.Round(time.Millisecond), window))
			}
			continue
		}
		// Escalate: probes at 2x and 4x the window, death past 8x.
		p := h.probes.Load()
		if int(p) < hbMaxProbes {
			if silent > window<<(uint(p)+1) {
				h.probes.Add(1)
				cl.ping(w)
			}
			continue
		}
		if silent > window<<(hbMaxProbes+1) {
			j.lost(w, fmt.Errorf("mapreduce: dist worker %d heartbeat timeout (silent %v)", w, silent.Round(time.Millisecond)))
		}
	}
	// Tail-lag speculation: a responsive worker can still straggle. When
	// most of the round is done and the laggard is far past the median,
	// re-execute its share elsewhere.
	if f := j.specFactor(); f > 0 {
		if w, lag, ok := j.tailLaggard(now, f, window); ok && !cl.isSuspect(w) && j.canSpeculate(w) {
			if w < len(health) {
				h := health[w]
				h.suspect.Store(true)
				h.suspectedAt.Store(now.UnixNano())
				h.tainted.Store(true)
			}
			cl.specLaunch.Add(1)
			j.speculateLost(w, fmt.Errorf("mapreduce: dist worker %d straggling %v behind the round median", w, lag.Round(time.Millisecond)))
		}
	}
}

// ping nudges a suspect worker: any frame it sends back (the pong)
// refreshes its LastRead and clears the suspicion at the next job
// boundary. Sent via the pulse path so probes never shift injected
// fault points.
func (cl *DistCluster) ping(w int) {
	if w < 0 || w >= len(cl.conns) || cl.isDead(w) {
		return
	}
	cl.conns[w].WritePulse([]byte{byte(remote.MsgPing)})
}

// KillWorker SIGKILLs the i-th spawned worker process — demo and test
// instrumentation for the recovery path. Only meaningful for clusters
// started with Spawn.
func (cl *DistCluster) KillWorker(i int) error {
	if i < 0 || i >= len(cl.procs) {
		return fmt.Errorf("mapreduce: no spawned worker %d", i)
	}
	return cl.procs[i].Process.Kill()
}

// InjectFault arms a deterministic transport fault on the coordinator's
// connection to worker w (see remote.Fault). Severing that connection
// is indistinguishable from the worker dying mid-stream, which makes
// every recovery path reproducible in-process by seed.
func (cl *DistCluster) InjectFault(w int, f *remote.Fault) error {
	if w < 0 || w >= len(cl.conns) {
		return fmt.Errorf("mapreduce: no dist worker %d", w)
	}
	cl.conns[w].Arm(f)
	return nil
}

// bytesInOut sums the transport byte counters over all connections.
func (cl *DistCluster) bytesInOut() (in, out int64) {
	for _, c := range cl.conns {
		in += c.BytesIn()
		out += c.BytesOut()
	}
	return in, out
}

// Close dismisses the workers (best effort), closes the connections,
// and reaps any spawned worker processes. Workers that died and were
// recovered from do not surface exit errors here — their loss was
// already part of the computation's story.
func (cl *DistCluster) Close() error {
	cl.mu.Lock()
	if cl.closed {
		// Idempotent: a second Close (the deferred one after an explicit
		// close) reports the first close's verdict without re-running
		// teardown.
		err := cl.closeErr
		cl.mu.Unlock()
		return err
	}
	cl.closed = true
	healthy := cl.broken == nil
	reportExits := healthy && !cl.sawDeath
	dead := append([]bool(nil), cl.dead...)
	late := cl.late
	cl.late = nil
	cl.mu.Unlock()
	if cl.monitorStop != nil {
		close(cl.monitorStop)
		cl.monitorWG.Wait()
	}
	if cl.ln != nil {
		cl.ln.Close()
	}
	for w, c := range cl.conns {
		// Retire the resume session first: a worker that is gone for good
		// must make the goodbye write fail fast, not hold the reconnect
		// grace window open during shutdown.
		c.ShutdownResume()
		if healthy && (w >= len(dead) || !dead[w]) {
			c.WriteFrame([]byte{byte(remote.MsgBye)})
		}
		c.Close()
	}
	for _, c := range late {
		c.ShutdownResume()
		c.WriteFrame([]byte{byte(remote.MsgBye)})
		c.Close()
	}
	if cl.journal != nil {
		cl.journal.close()
	}
	var err error
	for _, cmd := range cl.procs {
		if werr := cl.reapProc(cmd); werr != nil && reportExits && err == nil {
			err = fmt.Errorf("mapreduce: dist worker exited: %w", werr)
		}
	}
	cl.mu.Lock()
	cl.closeErr = err
	cl.mu.Unlock()
	return err
}

// reapProc waits for a spawned worker process with a bounded grace. A
// healthy worker exits within milliseconds of its bye/connection close,
// but a wedged one — stopped, hung, swapped out — never will, and an
// unbounded Wait here would hold coordinator shutdown hostage to the
// exact gray failures the scheduling layer exists to survive. Past the
// grace the worker is killed and the (now prompt) Wait reaps it.
func (cl *DistCluster) reapProc(cmd *exec.Cmd) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	grace := 4 * cl.drainTimeout
	select {
	case err := <-done:
		return err
	case <-time.After(grace):
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		<-done
		return fmt.Errorf("mapreduce: dist worker did not exit within %v of shutdown, killed", grace)
	}
}

// distTypeID names a concrete Go type for the job handshake: the
// coordinator and worker compare ids for all four job types before any
// record travels, so a registration mismatch fails loudly instead of
// corrupting a decode.
func distTypeID[T any]() string {
	return reflect.TypeOf((*T)(nil)).Elem().String()
}

// distJobHeader is the decoded MsgJobStart, shared by both sides.
type distJobHeader struct {
	seq        uint64
	name       string
	mode       remote.JobMode
	splits     int
	reducers   int
	wantOutput bool
	// ckpt asks the workers to checkpoint their retained output at the
	// flush barrier: persist it to a local run file and stream a mirror
	// copy (MsgCkpt) to the coordinator before MsgJobDone.
	ckpt bool
	// wireComp asks both sides to flate-compress the pair payload of
	// every bulk frame they encode for this job (MsgBucket, MsgReduced,
	// MsgCkpt, MsgPart). Carried in the header so every worker applies
	// the coordinator's Config.WireCompression choice.
	wireComp bool
	inputSeq uint64
	// owners is the job's partition→worker assignment, one entry per
	// reduce partition. Carried in the header (rather than derived from
	// the worker count) so a recovered cluster can hand a dead worker's
	// partitions to survivors without moving anyone else's.
	owners     []int
	k2id, v2id string
	k3id, v3id string
	params     []byte
}

// owner returns the worker index that owns partition p under this job's
// assignment.
func (h *distJobHeader) owner(p int) int { return h.owners[p] }

func (h *distJobHeader) encode() []byte {
	buf := []byte{byte(remote.MsgJobStart)}
	buf = remote.AppendUvarint(buf, h.seq)
	buf = remote.AppendString(buf, h.name)
	buf = append(buf, byte(h.mode))
	buf = remote.AppendUvarint(buf, uint64(h.splits))
	buf = remote.AppendUvarint(buf, uint64(h.reducers))
	if h.wantOutput {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	if h.ckpt {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	if h.wireComp {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = remote.AppendUvarint(buf, h.inputSeq)
	buf = remote.AppendUvarint(buf, uint64(len(h.owners)))
	for _, w := range h.owners {
		buf = remote.AppendUvarint(buf, uint64(w))
	}
	buf = remote.AppendString(buf, h.k2id)
	buf = remote.AppendString(buf, h.v2id)
	buf = remote.AppendString(buf, h.k3id)
	buf = remote.AppendString(buf, h.v3id)
	buf = remote.AppendBytes(buf, h.params)
	return buf
}

// parseJobHeader decodes a MsgJobStart payload (the type byte already
// consumed).
func parseJobHeader(cur *remote.Cursor) (*distJobHeader, error) {
	h := &distJobHeader{}
	h.seq = cur.Uvarint()
	h.name = cur.String()
	h.mode = remote.JobMode(cur.Byte())
	h.splits = int(cur.Uvarint())
	h.reducers = int(cur.Uvarint())
	h.wantOutput = cur.Byte() != 0
	h.ckpt = cur.Byte() != 0
	h.wireComp = cur.Byte() != 0
	h.inputSeq = cur.Uvarint()
	nOwners := int(cur.Uvarint())
	if nOwners != h.reducers || nOwners > len(cur.Rest()) {
		return nil, fmt.Errorf("mapreduce: malformed job-start: %d owners for %d partitions", nOwners, h.reducers)
	}
	h.owners = make([]int, nOwners)
	for i := range h.owners {
		h.owners[i] = int(cur.Uvarint())
	}
	h.k2id = cur.String()
	h.v2id = cur.String()
	h.k3id = cur.String()
	h.v3id = cur.String()
	h.params = append([]byte(nil), cur.Bytes()...)
	if err := cur.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: malformed job-start: %w", err)
	}
	return h, nil
}

// encodeBucketFrame builds one MsgBucket frame, appending to buf (pass
// a recycled frameScratch buffer; WriteFrame copies, so the buffer is
// free again as soon as the send returns). The pair payload is a
// self-contained codec-v2 blob (see codecv2.go), so the coordinator can
// relay, mirror, and re-seed the frame body without re-encoding.
func encodeBucketFrame[K comparable, V any](buf []byte, seq uint64, split, part int, pairs []Pair[K, V], kc spillCodec[K], vc spillCodec[V], compress bool, saved *atomic.Int64) ([]byte, error) {
	buf = append(buf, byte(remote.MsgBucket))
	buf = remote.AppendUvarint(buf, seq)
	buf = remote.AppendUvarint(buf, uint64(split))
	buf = remote.AppendUvarint(buf, uint64(part))
	buf = remote.AppendUvarint(buf, uint64(len(pairs)))
	return encodePairs(buf, pairs, kc, vc, compress, saved)
}

// distWorkerReport aggregates what one worker told the coordinator
// about a job.
type distWorkerReport struct {
	groups     int64
	outRecords int64
	reduceWall time.Duration
	mapWall    time.Duration
	emitted    int64
	local      int64
	cross      int64
	counts     map[int]int64
	counters   map[string]int64
	wireSaved  int64
}

// distJobRun is the coordinator's state for one job attempt.
//
// Recovery protocol: a worker death during the attempt (a transport
// error on its connection, observed by a reader or a writer) marks the
// worker dead and initiates an abort — MsgAbort to every survivor, each
// of which abandons the job, drops anything retained under its sequence
// number, and acknowledges with MsgAborted, the last frame it sends for
// that sequence. Readers discard everything up to the ack, so the wire
// is quiet when finish returns the latched WorkerLostError and the
// retry loop (runDistFlat/runDistDS) re-announces the job with a
// reassigned partition map. Only worker death aborts; a user-function
// error or malformed frame still breaks the cluster (fail-fast), since
// retrying a deterministic failure cannot help.
type distJobRun[K2 comparable, V2 any, K3 comparable, V3 any] struct {
	cl        *DistCluster
	hdr       *distJobHeader
	k2c       spillCodec[K2]
	v2c       spillCodec[V2]
	k3c       spillCodec[K3]
	v3c       spillCodec[V3]
	bytesIn0  int64
	bytesOut0 int64
	// live is the set of workers the announce included — the workers
	// that received MsgJobStart and owe a MsgJobDone (or MsgAborted).
	// Benched (suspect/tainted) workers are excluded unless the
	// assignment still needs them.
	live []int
	// spec is the job's straggler threshold (Config.SpeculationFactor);
	// zero disables speculative re-execution.
	spec float64
	// startedAt anchors the progress distribution tailLaggard measures.
	startedAt time.Time

	// readWG tracks the per-connection reader goroutines, started right
	// after the announce so heartbeats and early worker traffic are
	// consumed (and health refreshed) while the coordinator's own map
	// phase runs.
	readWG   sync.WaitGroup
	readErrs []error
	outcomes []readerOutcome
	finished atomic.Bool

	mu        sync.Mutex
	outs      [][]Pair[K3, V3]
	reports   []distWorkerReport
	loss      *WorkerLostError
	ckptBlobs [][]byte
	doneAt    map[int]time.Time
	mapDoneAt map[int]time.Time

	mapDones  atomic.Int64
	aborting  atomic.Bool
	flushOnce sync.Once
	flushErr  error
	records   atomic.Int64
	// wireSaved counts the bytes wire compression shaved off the
	// coordinator's own encodes; workers report theirs in MsgJobDone.
	wireSaved atomic.Int64
}

// The distActiveJob face the cluster monitor sees.

func (j *distJobRun[K2, V2, K3, V3]) liveSet() []int      { return j.live }
func (j *distJobRun[K2, V2, K3, V3]) specFactor() float64 { return j.spec }

// canSpeculate reports whether the job could complete without worker w:
// the attempt is still running, another healthy worker exists to take
// over, and — for a chained job — w's share of the resident input can
// be re-seeded from the checkpoint mirror.
func (j *distJobRun[K2, V2, K3, V3]) canSpeculate(w int) bool {
	if j.aborting.Load() || j.finished.Load() {
		return false
	}
	cl := j.cl
	cl.mu.Lock()
	others := 0
	for v := range cl.conns {
		if v != w && !cl.deadLocked(v) && !cl.benchedLocked(v) {
			others++
		}
	}
	cl.mu.Unlock()
	if others == 0 {
		return false
	}
	if j.hdr.mode != remote.ModeChained {
		return true
	}
	return cl.restorableFrom(j.hdr.inputSeq, j.hdr.owners, w)
}

// speculateLost launches the backup execution: abort this attempt
// without declaring w dead, so the retry re-runs w's partitions on the
// healthy workers while w — demoted, not killed — gets the chance to
// acknowledge and stay in the cluster. First completion wins the race
// inherent in the abort CAS: if w's MsgJobDone arrives before the abort
// latches, the attempt simply succeeds and the launch was a no-op.
func (j *distJobRun[K2, V2, K3, V3]) speculateLost(w int, cause error) {
	if j.finished.Load() {
		return
	}
	j.abortAttempt(w, cause, true)
}

func (j *distJobRun[K2, V2, K3, V3]) lost(w int, cause error) {
	j.initiateAbort(w, cause)
}

// doneWith reports whether worker w has delivered its full share of this
// attempt (its MsgDone arrived). A done worker writes nothing more for
// the job, so monitor-side silence is expected, not evidence of a hang.
func (j *distJobRun[K2, V2, K3, V3]) doneWith(w int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.doneAt[w]
	return ok
}

// noteMapDone/noteDone record when each worker's phase report arrived,
// feeding the progress distribution tailLaggard judges stragglers by.
func (j *distJobRun[K2, V2, K3, V3]) noteMapDone(w int) {
	j.mu.Lock()
	if _, ok := j.mapDoneAt[w]; !ok {
		j.mapDoneAt[w] = time.Now()
	}
	j.mu.Unlock()
}

func (j *distJobRun[K2, V2, K3, V3]) noteDone(w int) {
	j.mu.Lock()
	if _, ok := j.doneAt[w]; !ok {
		j.doneAt[w] = time.Now()
	}
	j.mu.Unlock()
}

// tailLaggard finds a worker worth speculating around in the live
// progress distribution: a majority of the round is done, someone is
// still pending, and the round has run past factor x the median
// completion time and at least floor beyond it (the floor keeps tiny
// medians from declaring microsecond "stragglers"). For a chained job
// still short of its flush barrier the map-done times are the
// distribution; otherwise the job-done times are.
func (j *distJobRun[K2, V2, K3, V3]) tailLaggard(now time.Time, factor float64, floor time.Duration) (int, time.Duration, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	times := j.doneAt
	if j.hdr.mode == remote.ModeChained && len(j.mapDoneAt) < len(j.live) {
		times = j.mapDoneAt
	}
	n := len(j.live)
	done := len(times)
	if done >= n || done*2 < n {
		return 0, 0, false
	}
	durs := make([]time.Duration, 0, done)
	for _, t := range times {
		durs = append(durs, t.Sub(j.startedAt))
	}
	sort.Slice(durs, func(i, k int) bool { return durs[i] < durs[k] })
	med := durs[len(durs)/2]
	elapsed := now.Sub(j.startedAt)
	lag := elapsed - med
	if lag < floor || float64(elapsed) <= factor*float64(med) {
		return 0, 0, false
	}
	for _, w := range j.live {
		if _, ok := times[w]; ok {
			continue
		}
		if j.cl.isDead(w) {
			continue
		}
		return w, lag, true
	}
	return 0, 0, false
}

// startDistJob resolves the four codecs, snapshots the live worker set
// and the partition assignment into the job header, and announces the
// job to every live worker.
func startDistJob[K2 comparable, V2 any, K3 comparable, V3 any](
	cfg Config, mode remote.JobMode, splits int, inputSeq uint64, wantOutput, ckpt bool,
) (*distJobRun[K2, V2, K3, V3], error) {
	cl := cfg.Dist
	if cl == nil {
		return nil, errors.New("mapreduce: shuffle backend \"dist\" requires Config.Dist (a started DistCluster)")
	}
	if err := cl.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: dist cluster is broken: %w", err)
	}
	k2c, err := resolveSpillCodec[K2]()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: dist key codec: %w", err)
	}
	v2c, err := resolveSpillCodec[V2]()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: dist value codec: %w", err)
	}
	k3c, err := resolveSpillCodec[K3]()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: dist output key codec: %w", err)
	}
	v3c, err := resolveSpillCodec[V3]()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: dist output value codec: %w", err)
	}
	owners := cl.ownersFor(cfg.reducers())
	live := cl.scheduleWorkers(owners)
	if len(live) == 0 {
		return nil, &WorkerLostError{Worker: -1, Job: cfg.Name, Err: errors.New("no live workers")}
	}
	j := &distJobRun[K2, V2, K3, V3]{
		cl: cl,
		hdr: &distJobHeader{
			seq:        cl.nextSeq(),
			name:       cfg.Name,
			mode:       mode,
			splits:     splits,
			reducers:   cfg.reducers(),
			wantOutput: wantOutput,
			ckpt:       ckpt,
			wireComp:   cfg.WireCompression,
			inputSeq:   inputSeq,
			owners:     owners,
			k2id:       distTypeID[K2](),
			v2id:       distTypeID[V2](),
			k3id:       distTypeID[K3](),
			v3id:       distTypeID[V3](),
			params:     cfg.DistParams,
		},
		k2c: k2c, v2c: v2c, k3c: k3c, v3c: v3c,
		live:      live,
		spec:      cfg.SpeculationFactor,
		outs:      make([][]Pair[K3, V3], cfg.reducers()),
		reports:   make([]distWorkerReport, cl.Workers()),
		doneAt:    make(map[int]time.Time, len(live)),
		mapDoneAt: make(map[int]time.Time, len(live)),
	}
	cl.mu.Lock()
	j.bytesIn0, j.bytesOut0 = cl.lastIn, cl.lastOut
	cl.mu.Unlock()
	frame := j.hdr.encode()
	var started []int
	for _, w := range live {
		if err := cl.conns[w].WriteFrame(frame); err != nil {
			return nil, j.announceFailed(started, w, err)
		}
		started = append(started, w)
	}
	// Readers start at the announce, one per included worker: worker
	// traffic (heartbeats above all) is consumed — and worker health
	// refreshed — for the whole life of the attempt, including the
	// coordinator-side map phase. The monitor watches the attempt from
	// here until finish clears it.
	j.startedAt = time.Now()
	j.readErrs = make([]error, cl.Workers())
	j.outcomes = make([]readerOutcome, cl.Workers())
	for _, w := range live {
		w := w
		j.readWG.Add(1)
		go func() {
			defer j.readWG.Done()
			out, err := j.reader(w)
			j.outcomes[w] = out
			if err != nil {
				j.readErrs[w] = err
				// A deterministic failure breaks the cluster
				// immediately: closing the connections unblocks the
				// sibling readers, whose workers may be waiting on a
				// flush that can no longer come. fail latches the first
				// error, so the root cause wins over the cascade it
				// triggers.
				j.cl.fail(err)
			}
		}()
	}
	cl.setActiveJob(j)
	return j, nil
}

// announceFailed handles a worker death during the job announce, before
// any reader goroutine exists: classify the death (a parting MsgError is
// a deterministic failure and breaks the cluster), then synchronously
// abort the workers that already received the announce so the retry
// starts from a quiet wire.
func (j *distJobRun[K2, V2, K3, V3]) announceFailed(started []int, w int, cause error) error {
	if j.cl.noteDead(w) {
		if msg := j.cl.drainFatal(w); msg != "" {
			err := fmt.Errorf("mapreduce: dist job %q: worker %d: %s", j.hdr.name, w, msg)
			j.cl.conns[w].Close()
			j.cl.fail(err)
			return err
		}
		j.cl.conns[w].Close()
	}
	j.setLoss(w, cause, false)
	frame := remote.AppendUvarint([]byte{byte(remote.MsgAbort)}, j.hdr.seq)
	for _, sw := range started {
		if j.cl.isDead(sw) {
			continue
		}
		c := j.cl.conns[sw]
		c.SetReadDeadline(time.Now().Add(j.cl.abortTimeout))
		if err := c.WriteFrame(frame); err != nil {
			j.cl.markDead(sw, err)
			continue
		}
		j.drainAborted(sw)
		c.SetReadDeadline(time.Time{})
	}
	return j.lossErr()
}

// setLoss latches the first worker loss of the attempt.
func (j *distJobRun[K2, V2, K3, V3]) setLoss(w int, cause error, speculative bool) {
	j.mu.Lock()
	if j.loss == nil {
		j.loss = &WorkerLostError{Worker: w, Job: j.hdr.name, Err: cause, Speculative: speculative}
	}
	j.mu.Unlock()
}

// lossWorkerIs reports whether the latched loss names worker w.
func (j *distJobRun[K2, V2, K3, V3]) lossWorkerIs(w int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.loss != nil && j.loss.Worker == w
}

// lossErr returns the latched loss (never nil once a loss was set).
func (j *distJobRun[K2, V2, K3, V3]) lossErr() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.loss == nil {
		return &WorkerLostError{Worker: -1, Job: j.hdr.name, Err: errors.New("worker lost")}
	}
	return j.loss
}

// initiateAbort marks worker w dead, latches the loss, and aborts the
// attempt.
func (j *distJobRun[K2, V2, K3, V3]) initiateAbort(w int, cause error) {
	j.cl.markDead(w, cause)
	j.abortAttempt(w, cause, false)
}

// abortAttempt latches the loss and — once per attempt — tells every
// worker of the attempt to abandon the job. Every reachable worker's
// connection gets read and write deadlines first: a worker that neither
// acknowledges the abort nor dies within AbortTimeout is declared dead
// by timeout, so recovery cannot wedge on a stuck worker. A speculative
// abort (straggler, not corpse) marks no one dead up front: the laggard
// keeps its session, acknowledges like any survivor, and is merely
// benched from future schedules — while a truly hung straggler fails to
// ack and the deadline converts the demotion into a real death.
func (j *distJobRun[K2, V2, K3, V3]) abortAttempt(w int, cause error, speculative bool) {
	j.setLoss(w, cause, speculative)
	if !j.aborting.CompareAndSwap(false, true) {
		return
	}
	frame := remote.AppendUvarint([]byte{byte(remote.MsgAbort)}, j.hdr.seq)
	for _, lw := range j.live {
		if j.cl.isDead(lw) {
			continue
		}
		c := j.cl.conns[lw]
		c.SetReadDeadline(time.Now().Add(j.cl.abortTimeout))
		c.SetWriteDeadline(time.Now().Add(j.cl.abortTimeout))
		if err := c.WriteFrame(frame); err != nil {
			j.cl.markDead(lw, err)
		}
		c.SetWriteDeadline(time.Time{})
	}
}

// senderLost handles a write failure to worker w from the flat-mode
// bucket streaming path. The worker is marked dead but its connection
// stays open: the reader goroutine owns it and must get the chance to
// consume a parting MsgError off the socket before it dies — a
// deterministic user-function or registration failure surfaces as
// itself, not as the transport error it caused. The deadline bounds the
// reader's wait; its error path closes the connection.
func (j *distJobRun[K2, V2, K3, V3]) senderLost(w int, cause error) error {
	if j.cl.noteDead(w) {
		j.cl.conns[w].SetReadDeadline(time.Now().Add(j.cl.drainTimeout))
	}
	j.abortAttempt(w, cause, false)
	return j.lossErr()
}

// drainAborted reads worker w's frames until its MsgAborted ack (the
// read deadline armed at abort time bounds the wait). Used for workers
// whose reader already returned before the abort began.
func (j *distJobRun[K2, V2, K3, V3]) drainAborted(w int) {
	conn := j.cl.conns[w]
	for {
		payload, err := conn.ReadFrame()
		if err != nil {
			j.cl.markDead(w, err)
			return
		}
		cur := remote.NewCursor(payload)
		if remote.MsgType(cur.Byte()) == remote.MsgAborted {
			return
		}
	}
}

// sendBucket encodes one bucket and streams it to the partition's
// owner under the job's assignment.
func (j *distJobRun[K2, V2, K3, V3]) sendBucket(split, part int, pairs []Pair[K2, V2]) error {
	fs := getFrameScratch()
	frame, err := encodeBucketFrame(fs.b[:0], j.hdr.seq, split, part, pairs, j.k2c, j.v2c, j.hdr.wireComp, &j.wireSaved)
	if err != nil {
		putFrameScratch(fs)
		return fmt.Errorf("mapreduce: dist job %q: encoding bucket: %w", j.hdr.name, err)
	}
	fs.b = frame
	owner := j.hdr.owner(part)
	err = j.cl.conns[owner].WriteFrame(frame)
	putFrameScratch(fs)
	if err != nil {
		return j.senderLost(owner, fmt.Errorf("streaming bucket: %w", err))
	}
	j.records.Add(int64(len(pairs)))
	return nil
}

// flushAll tells every live worker that ingestion is sealed. An abort
// supersedes the flush: aborting workers are unblocked by MsgAbort
// instead.
func (j *distJobRun[K2, V2, K3, V3]) flushAll() error {
	j.flushOnce.Do(func() {
		if j.aborting.Load() {
			j.flushErr = j.lossErr()
			return
		}
		frame := remote.AppendUvarint([]byte{byte(remote.MsgFlush)}, j.hdr.seq)
		for _, w := range j.live {
			if j.cl.isDead(w) {
				continue
			}
			if err := j.cl.conns[w].WriteFrame(frame); err != nil {
				// The flush phase always has readers running; the dying
				// worker's own reader surfaces any parting MsgError.
				j.initiateAbort(w, fmt.Errorf("flushing: %w", err))
				j.flushErr = j.lossErr()
				return
			}
		}
	})
	return j.flushErr
}

// reader consumes one worker's frames for this job until its MsgJobDone
// (or an error). Chained-mode cross-partition buckets are relayed
// verbatim to their owner's connection: the frame format is identical in
// both directions, so the relay is a single WriteFrame with no
// re-encoding. Because a worker sends all its buckets before its
// MsgMapDone and the reader processes frames in order, once every
// worker's MsgMapDone has been processed every relay has been delivered
// — that is the barrier after which the flush is safe.
// readerOutcome is how one worker's reader goroutine ended. A non-nil
// error from reader supersedes the outcome: it is a deterministic
// failure (malformed frame, user error) that breaks the cluster.
type readerOutcome int

const (
	// outcomeLost: the connection died (or the worker died during an
	// abort) — the attempt is being aborted and may be retried.
	outcomeLost readerOutcome = iota
	// outcomeDone: the worker completed the job (MsgJobDone).
	outcomeDone
	// outcomeAborted: the worker acknowledged the abort.
	outcomeAborted
)

func (j *distJobRun[K2, V2, K3, V3]) reader(w int) (readerOutcome, error) {
	conn := j.cl.conns[w]
	for {
		payload, err := conn.ReadFrame()
		if err != nil {
			// Close explicitly: when the worker was noted dead without a
			// close (senderLost's parting-error window), nobody else
			// will.
			conn.Close()
			j.initiateAbort(w, fmt.Errorf("transport error: %w", err))
			return outcomeLost, nil
		}
		cur := remote.NewCursor(payload)
		switch t := remote.MsgType(cur.Byte()); t {
		case remote.MsgBucket:
			seq := cur.Uvarint()
			cur.Uvarint() // split
			part := int(cur.Uvarint())
			if err := cur.Err(); err != nil || seq != j.hdr.seq ||
				part < 0 || part >= j.hdr.reducers {
				return 0, fmt.Errorf("mapreduce: dist job %q: malformed bucket relay from worker %d", j.hdr.name, w)
			}
			if j.aborting.Load() {
				continue // attempt is being torn down; drop the relay
			}
			owner := j.hdr.owner(part)
			if err := j.cl.conns[owner].WriteFrame(payload); err != nil {
				// The relay target died, not this worker: abort the
				// attempt but keep draining our own connection until the
				// MsgAborted ack.
				j.initiateAbort(owner, fmt.Errorf("relaying bucket: %w", err))
			}
		case remote.MsgPong:
			// Heartbeat: the frame's arrival already refreshed the
			// connection's LastRead; stash the progress counters for
			// observability. Never counted against any protocol state.
			cur.Uvarint() // running job seq
			cur.Byte()    // phase
			nParts := int(cur.Uvarint())
			for i := 0; i < nParts && cur.Err() == nil; i++ {
				cur.Uvarint()
			}
			recs := cur.Uvarint()
			if cur.Err() == nil && w < len(j.cl.health) {
				h := j.cl.health[w]
				h.pongParts.Store(int64(nParts))
				h.pongRecords.Store(int64(recs))
			}
		case remote.MsgMapDone:
			cur.Uvarint() // seq
			rep := &j.reports[w]
			rep.emitted = int64(cur.Uvarint())
			rep.local = int64(cur.Uvarint())
			rep.cross = int64(cur.Uvarint())
			rep.mapWall = time.Duration(cur.Uvarint())
			if err := cur.Err(); err != nil {
				return 0, fmt.Errorf("mapreduce: dist job %q: malformed map-done from worker %d", j.hdr.name, w)
			}
			j.noteMapDone(w)
			if j.aborting.Load() {
				continue
			}
			if j.mapDones.Add(1) == int64(len(j.live)) {
				// flushAll's only failure mode here is a worker loss that
				// already initiated the abort; nothing more to do.
				j.flushAll()
			}
		case remote.MsgReduced:
			cur.Uvarint() // seq
			part := int(cur.Uvarint())
			count := int(cur.Uvarint())
			if err := cur.Err(); err != nil || part < 0 || part >= len(j.outs) {
				return 0, fmt.Errorf("mapreduce: dist job %q: malformed reduce output from worker %d", j.hdr.name, w)
			}
			if j.aborting.Load() {
				continue
			}
			pairs, err := decodePairs(cur, count, j.k3c, j.v3c, make([]Pair[K3, V3], 0, pairCap(cur, count, j.k3c, j.v3c)))
			if err != nil {
				return 0, fmt.Errorf("mapreduce: dist job %q: decoding partition %d: %w", j.hdr.name, part, err)
			}
			j.mu.Lock()
			j.outs[part] = pairs
			j.mu.Unlock()
		case remote.MsgCkpt:
			seq := cur.Uvarint()
			part := int(cur.Uvarint())
			cur.Uvarint() // count
			if err := cur.Err(); err != nil || seq != j.hdr.seq ||
				part < 0 || part >= j.hdr.reducers {
				return 0, fmt.Errorf("mapreduce: dist job %q: malformed checkpoint frame from worker %d", j.hdr.name, w)
			}
			if j.aborting.Load() {
				continue
			}
			blob := cur.Rest()
			if blob == nil {
				blob = []byte{}
			}
			j.mu.Lock()
			if j.ckptBlobs == nil {
				j.ckptBlobs = make([][]byte, j.hdr.reducers)
			}
			j.ckptBlobs[part] = blob
			j.mu.Unlock()
		case remote.MsgJobDone:
			cur.Uvarint() // seq
			rep := &j.reports[w]
			rep.groups = int64(cur.Uvarint())
			rep.outRecords = int64(cur.Uvarint())
			rep.reduceWall = time.Duration(cur.Uvarint())
			nParts := int(cur.Uvarint())
			rep.counts = make(map[int]int64, min(nParts, j.hdr.reducers))
			for i := 0; i < nParts; i++ {
				part := int(cur.Uvarint())
				if part < 0 || part >= j.hdr.reducers {
					return 0, fmt.Errorf("mapreduce: dist job %q: job-done names partition %d of %d", j.hdr.name, part, j.hdr.reducers)
				}
				rep.counts[part] = int64(cur.Uvarint())
			}
			nCounters := int(cur.Uvarint())
			if nCounters > 0 {
				rep.counters = make(map[string]int64, nCounters)
				for i := 0; i < nCounters; i++ {
					name := cur.String()
					rep.counters[name] = int64(cur.Uvarint())
				}
			}
			rep.wireSaved = int64(cur.Uvarint())
			if err := cur.Err(); err != nil {
				return 0, fmt.Errorf("mapreduce: dist job %q: malformed job-done from worker %d", j.hdr.name, w)
			}
			j.noteDone(w)
			if j.aborting.Load() {
				// The worker finished before seeing the abort; its
				// MsgAborted ack is still coming. Keep reading so finish
				// doesn't have to.
				continue
			}
			return outcomeDone, nil
		case remote.MsgAborted:
			return outcomeAborted, nil
		case remote.MsgError:
			cur.Uvarint() // seq
			msg := cur.String()
			if j.aborting.Load() && !j.lossWorkerIs(w) {
				// A survivor that errors while tearing down is as good
				// as dead; the retry will surface any deterministic
				// failure on a healthy attempt. But when the error comes
				// from the worker whose loss started the abort, it IS
				// the root cause — a user function or registration
				// failure that must surface as itself.
				j.cl.markDead(w, fmt.Errorf("worker error during abort: %s", msg))
				return outcomeLost, nil
			}
			return 0, fmt.Errorf("mapreduce: dist job %q: worker %d: %s", j.hdr.name, w, msg)
		default:
			return 0, fmt.Errorf("mapreduce: dist job %q: unexpected %v from worker %d", j.hdr.name, t, w)
		}
	}
}

// finish drives the job to completion after the coordinator's own
// sending is done (mapErr carries a local map-phase failure): waits for
// the per-connection readers startDistJob launched at the announce,
// observes the flush barrier, aggregates the worker reports into stats,
// and burns the coordinator-side failure coins so injected-failure
// statistics match the local backends.
func (j *distJobRun[K2, V2, K3, V3]) finish(ctx context.Context, cfg Config, stats *Stats, mapErr error) ([][]Pair[K3, V3], []int64, error) {
	defer j.cl.clearActiveJob()
	readErrs := j.readErrs
	outcomes := j.outcomes
	// A cancelled context must unblock the readers: break the cluster,
	// which closes the connections under them.
	watchDone := make(chan struct{})
	var watchWG sync.WaitGroup
	if ctx != nil {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			select {
			case <-ctx.Done():
				j.cl.fail(fmt.Errorf("mapreduce: dist job %q: %w", j.hdr.name, ctx.Err()))
			case <-watchDone:
			}
		}()
	}

	if mapErr != nil {
		if !isWorkerLost(mapErr) {
			// The coordinator's map phase failed deterministically: the
			// workers are still waiting for buckets, so the cluster
			// cannot be reused.
			j.cl.fail(fmt.Errorf("mapreduce: dist job %q failed during map: %w", j.hdr.name, mapErr))
		}
		// A worker loss during the map phase already initiated the
		// abort; the readers drain to their MsgAborted acks.
	} else if j.hdr.mode == remote.ModeFlat {
		// Flat jobs have no worker map phase: the coordinator sealed
		// ingestion the moment its own map tasks finished.
		if err := j.flushAll(); err != nil {
			mapErr = err
		}
	}
	j.readWG.Wait()
	j.finished.Store(true)
	close(watchDone)
	watchWG.Wait()

	if j.aborting.Load() {
		// Workers whose reader returned on MsgJobDone before the abort
		// began still owe a MsgAborted ack; collect it so the next
		// attempt starts from a quiet wire (the abort-time read deadline
		// bounds the wait), then clear the deadlines the abort armed.
		for _, w := range j.live {
			if outcomes[w] == outcomeDone && readErrs[w] == nil && !j.cl.isDead(w) {
				j.drainAborted(w)
			}
		}
		for _, w := range j.live {
			if !j.cl.isDead(w) {
				j.cl.conns[w].SetReadDeadline(time.Time{})
			}
		}
	}

	for _, err := range readErrs {
		if err != nil {
			// Return the first-latched error (the root cause), not
			// whichever cascade error this slot happens to hold.
			if first := j.cl.Err(); first != nil {
				return nil, nil, first
			}
			return nil, nil, err
		}
	}
	if err := j.cl.Err(); err != nil {
		return nil, nil, err
	}
	if j.aborting.Load() {
		return nil, nil, j.lossErr()
	}
	if mapErr != nil {
		return nil, nil, mapErr
	}

	// Aggregate the worker reports.
	counts := make([]int64, j.hdr.reducers)
	var workerWall time.Duration
	for w := range j.reports {
		rep := &j.reports[w]
		stats.ReduceGroups += rep.groups
		stats.ReduceOutputRecords += rep.outRecords
		if wall := rep.mapWall + rep.reduceWall; wall > workerWall {
			workerWall = wall
		}
		for part, n := range rep.counts {
			counts[part] = n
		}
		if cfg.DistCounters != nil {
			for name, v := range rep.counters {
				cfg.DistCounters.Inc(name, v)
			}
		}
		if j.hdr.mode == remote.ModeChained {
			stats.addMapOutput(rep.emitted)
			stats.addRouted(rep.local, rep.cross)
			j.records.Add(rep.local + rep.cross)
		}
		stats.WireBytesSaved += rep.wireSaved
	}
	stats.WireBytesSaved += j.wireSaved.Load()
	stats.WorkerWall = workerWall
	in, out := j.cl.bytesInOut()
	stats.RemoteBytesIn = in - j.bytesIn0
	stats.RemoteBytesOut = out - j.bytesOut0
	j.cl.mu.Lock()
	j.cl.lastIn, j.cl.lastOut = in, out
	j.cl.mu.Unlock()
	stats.ShuffleRecords = j.records.Load()

	// Burn the failure coins the local backends would have drawn for
	// the reduce tasks (and, for chained jobs, the worker-side map
	// tasks): user functions are pure, so a re-executed attempt changes
	// nothing but the retry counters — keeping Stats comparable across
	// backends under injected failures.
	if cfg.FailureRate > 0 {
		if j.hdr.mode == remote.ModeChained {
			for p := 0; p < j.hdr.splits; p++ {
				if err := cfg.burnAttempts(0, p, stats.addMapRetry); err != nil {
					return nil, nil, err
				}
			}
		}
		for p := 0; p < j.hdr.reducers; p++ {
			if err := cfg.burnAttempts(1, p, stats.addReduceRetry); err != nil {
				return nil, nil, err
			}
		}
	}
	return j.outs, counts, nil
}

// distSender is the ShuffleBackend the coordinator's map phase emits
// into under ShuffleDist: buckets stream straight to the owning worker.
// Finalize is never reached — reduce happens on the workers — so the
// dist path never builds a GroupStream.
type distSender[K2 comparable, V2 any, K3 comparable, V3 any] struct {
	j  *distJobRun[K2, V2, K3, V3]
	ar *roundArena[K2, V2]
}

func (s *distSender[K2, V2, K3, V3]) Partitions() int { return s.j.hdr.reducers }
func (s *distSender[K2, V2, K3, V3]) BucketCap() int  { return 0 }

func (s *distSender[K2, V2, K3, V3]) AddBucket(split, part int, pairs []Pair[K2, V2]) error {
	err := s.j.sendBucket(split, part, pairs)
	// The bucket is on the wire: its storage feeds the next emitter fill.
	s.ar.putBucket(part, pairs)
	return err
}

func (s *distSender[K2, V2, K3, V3]) Finalize() ([]GroupStream[K2, V2], error) {
	return nil, errors.New("mapreduce: dist backend has no local group streams")
}

func (s *distSender[K2, V2, K3, V3]) Close() error { return nil }

// runDistFlat executes one flat job on the dist backend, retrying the
// whole job (a flat job's input lives on the coordinator, so a retry
// needs no restoration) when an attempt dies to worker loss and
// survivors remain. Each attempt runs against scratch stats; only the
// successful attempt's numbers merge into the caller's, so retried work
// is invisible everywhere except Stats.WorkerRecoveries.
func runDistFlat[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	cfg Config,
	input []Pair[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	stats *Stats,
) ([]Pair[K3, V3], error) {
	cl := cfg.Dist
	// A resumed coordinator satisfies already-journaled jobs from the
	// journal instead of re-running them (no-op on a live run).
	if rec, err := cl.journalTake(cfg.Name, journalKindFlat); err != nil {
		return nil, err
	} else if rec != nil {
		return decodeJournalFlat[K3, V3](rec)
	}
	var sched schedSnapshot
	sched.start(cl)
	for attempt := 0; ; attempt++ {
		if cl != nil {
			// The job-boundary scheduling step: adopt late joiners,
			// revive recovered suspects (first attempt only — a retry
			// must not re-admit the worker it is retrying around), and
			// balance the assignment onto idle workers.
			cl.rebalance(cfg.reducers(), 0, attempt == 0)
		}
		as := newStats(cfg.Name)
		out, seq, err := tryDistFlat[K1, V1, K2, V2, K3, V3](ctx, cfg, input, mapFn, as)
		if err == nil {
			if cl != nil && cl.journal != nil {
				blob, jerr := encodeJournalFlat(out, cfg.WireCompression)
				if jerr == nil {
					jerr = cl.journalAppendFlat(seq, cfg.Name, int64(len(out)), blob)
				}
				if jerr != nil {
					return nil, jerr
				}
			}
			as.WorkerRecoveries = int64(attempt)
			sched.settle(cl, as)
			stats.Add(as)
			return out, nil
		}
		if cl == nil || !isWorkerLost(err) || !cl.retryAfterLoss(attempt) {
			return nil, err
		}
		sched.noteLoss(err)
		cl.recoveries.Add(1)
		cl.recoverAssignments()
	}
}

// schedSnapshot brackets one logical job's elastic-scheduling activity:
// deltas of the cluster counters across all its attempts, plus the
// speculative launches whose backup attempt won (counted when the job
// ultimately succeeds after a speculative loss).
type schedSnapshot struct {
	hb0, sl0, mg0, sw0 int64
	rc0, fr0, jb0      int64
	specPending        int64
}

func (s *schedSnapshot) start(cl *DistCluster) {
	if cl == nil {
		return
	}
	s.hb0 = cl.hbTimeouts.Load()
	s.sl0 = cl.specLaunch.Load()
	s.mg0 = cl.migratedCnt.Load()
	s.sw0 = cl.specWins.Load()
	s.rc0, s.fr0 = cl.resumeTotals()
	s.jb0 = cl.journalBytes()
}

func (s *schedSnapshot) noteLoss(err error) {
	var wl *WorkerLostError
	if errors.As(err, &wl) && wl.Speculative {
		s.specPending++
	}
}

func (s *schedSnapshot) settle(cl *DistCluster, as *Stats) {
	if cl == nil {
		return
	}
	if s.specPending > 0 {
		cl.specWins.Add(s.specPending)
	}
	as.HeartbeatTimeouts = cl.hbTimeouts.Load() - s.hb0
	as.SpeculativeLaunches = cl.specLaunch.Load() - s.sl0
	as.SpeculativeWins = cl.specWins.Load() - s.sw0
	as.PartitionsMigrated = cl.migratedCnt.Load() - s.mg0
	rc, fr := cl.resumeTotals()
	as.WorkerReconnects = rc - s.rc0
	as.FramesReplayed = fr - s.fr0
	as.JournalBytes = cl.journalBytes() - s.jb0
}

// tryDistFlat is one flat-job attempt: local map phase, buckets
// streamed to the workers, reduce output streamed back and normalized
// exactly like Run.
func tryDistFlat[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	cfg Config,
	input []Pair[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	stats *Stats,
) ([]Pair[K3, V3], uint64, error) {
	splits := splitRange(len(input), cfg.mappers())
	job, err := startDistJob[K2, V2, K3, V3](cfg, remote.ModeFlat, len(splits), 0, true, false)
	if err != nil {
		return nil, 0, err
	}
	ar := arenaFor[K2, V2](cfg.Pool, cfg.reducers())
	sender := &distSender[K2, V2, K3, V3]{j: job, ar: ar}
	phase := time.Now()
	mapErr := runMapPhase(ctx, cfg, splits, input, mapFn, sender, ar, stats)
	stats.MapWall = time.Since(phase)
	phase = time.Now()
	outs, _, err := job.finish(ctx, cfg, stats, mapErr)
	stats.ReduceWall = time.Since(phase)
	if err != nil {
		return nil, 0, err
	}
	var total int
	for _, o := range outs {
		total += len(o)
	}
	all := make([]Pair[K3, V3], 0, total)
	for _, o := range outs {
		all = append(all, o...)
	}
	sortPairs(all)
	return all, job.hdr.seq, nil
}

// encodeJournalFlat serializes a flat job's sorted output as one
// codec-v2 pair blob for the run journal.
func encodeJournalFlat[K3 comparable, V3 any](pairs []Pair[K3, V3], compress bool) ([]byte, error) {
	kc, err := resolveSpillCodec[K3]()
	if err != nil {
		return nil, err
	}
	vc, err := resolveSpillCodec[V3]()
	if err != nil {
		return nil, err
	}
	return encodePairs(nil, pairs, kc, vc, compress, nil)
}

// decodeJournalFlat rebuilds a flat job's sorted output from its
// journal record.
func decodeJournalFlat[K3 comparable, V3 any](rec *journalRecord) ([]Pair[K3, V3], error) {
	kc, err := resolveSpillCodec[K3]()
	if err != nil {
		return nil, err
	}
	vc, err := resolveSpillCodec[V3]()
	if err != nil {
		return nil, err
	}
	if len(rec.counts) != 1 || len(rec.blobs) != 1 {
		return nil, fmt.Errorf("mapreduce: dist journal: flat job %q record has %d blobs", rec.name, len(rec.blobs))
	}
	count := int(rec.counts[0])
	cur := remote.NewCursor(rec.blobs[0])
	out, err := decodePairs(cur, count, kc, vc, make([]Pair[K3, V3], 0, pairCap(cur, count, kc, vc)))
	if err != nil {
		return nil, fmt.Errorf("mapreduce: dist journal: replaying job %q: %w", rec.name, err)
	}
	return out, nil
}

// runDistDS executes one Dataset job on the dist backend, retrying the
// whole job when an attempt dies to worker loss. A worker-resident
// input is restorable across attempts as long as every lost partition
// has a coordinator-mirrored checkpoint blob (ensureResident re-seeds
// it to the new owner); an input held on the coordinator needs no
// restoration at all.
func runDistDS[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	cfg Config,
	input *Dataset[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	stats *Stats,
) (*Dataset[K3, V3], error) {
	cl := cfg.Dist
	if cl == nil {
		return nil, errors.New("mapreduce: shuffle backend \"dist\" requires Config.Dist (a started DistCluster)")
	}
	// A resumed coordinator satisfies already-journaled jobs straight from
	// the journal: the mirror blobs become a residency record whose
	// partitions live nowhere yet (loc -1) — ensureResident seeds them to
	// workers the first time a job consumes the dataset.
	if rec, err := cl.journalTake(cfg.Name, journalKindResident); err != nil {
		return nil, err
	} else if rec != nil {
		owners := make([]int, len(rec.counts))
		for p := range owners {
			owners[p] = -1
		}
		cl.registerResident(rec.seq, owners, rec.counts, rec.blobs)
		cl.noteRetained()
		return newRemoteDataset[K3, V3](cl, rec.seq, rec.counts, keyCast[K2, K3]() != nil, cfg.Pool), nil
	}
	remoteChained := input.rem != nil && input.rem.cl == cl && input.aligned &&
		input.Partitions() == cfg.reducers() && !cfg.FlatChaining
	if input.rem != nil && !remoteChained {
		// Resident on the cluster but not consumable in place (partition
		// mismatch, forced flat, alignment lost): move it here first.
		if err := input.Materialize(); err != nil {
			return nil, err
		}
	}
	// One checkpoint decision per job, not per attempt: a retried job
	// checkpoints iff the original would have. An open journal forces the
	// mirror on for every retained output — a journaled run must be able
	// to re-seed any resident dataset after a coordinator restart.
	ckpt := cl.checkpointNext(cfg.CheckpointEvery) || cl.journal != nil
	var inputSeq uint64
	if remoteChained {
		inputSeq = input.rem.seq
	}
	var sched schedSnapshot
	sched.start(cl)
	for attempt := 0; ; attempt++ {
		// The job-boundary scheduling step: adopt late joiners, revive
		// recovered suspects (first attempt only — a retry must not
		// re-admit the worker it is retrying around), and plan
		// migrations of resident partitions onto idle workers;
		// ensureResident moves the data the plan calls for.
		cl.rebalance(cfg.reducers(), inputSeq, attempt == 0)
		as := newStats(cfg.Name)
		out, err := tryDistDS[K1, V1, K2, V2, K3, V3](ctx, cfg, input, mapFn, as, remoteChained, ckpt)
		if err == nil {
			if jerr := cl.journalAppendResident(out.rem.seq, cfg.Name); jerr != nil {
				return nil, jerr
			}
			as.WorkerRecoveries = int64(attempt)
			sched.settle(cl, as)
			stats.Add(as)
			cl.noteRetained()
			return out, nil
		}
		if !isWorkerLost(err) || !cl.retryAfterLoss(attempt) {
			return nil, err
		}
		if remoteChained && !cl.canRestore(input.rem.seq) {
			// The input itself lost partitions that were never
			// checkpointed; engine-level retry cannot reconstruct them.
			// Loop-level replay (Dataset.Loop) may still recover from the
			// round boundary.
			return nil, err
		}
		sched.noteLoss(err)
		cl.recoveries.Add(1)
		cl.recoverAssignments()
	}
}

// tryDistDS is one Dataset-job attempt. Output stays worker-resident
// (the returned Dataset holds a residency handle, not records); a
// chained input that is itself worker-resident is mapped on the
// workers, so self-addressed pairs never touch the wire.
func tryDistDS[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	cfg Config,
	input *Dataset[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	stats *Stats,
	remoteChained, ckpt bool,
) (*Dataset[K3, V3], error) {
	cl := cfg.Dist
	var job *distJobRun[K2, V2, K3, V3]
	var err error
	phase := time.Now()
	if remoteChained {
		// Reconcile the input's partition locations against the current
		// assignment: re-seed what a dead owner lost, migrate what the
		// rebalance moved, before announcing the job that consumes it.
		reseeded, _, err := cl.ensureResident(input.rem.seq, cfg.Name)
		if err != nil {
			return nil, err
		}
		stats.ReseededPartitions = int64(reseeded)
		job, err = startDistJob[K2, V2, K3, V3](cfg, remote.ModeChained, input.Partitions(), input.rem.seq, false, ckpt)
		if err != nil {
			return nil, err
		}
		// The map phase runs on the workers; the readers in finish
		// observe it through MsgMapDone and the flush barrier.
	} else {
		chained := input.aligned && input.Partitions() == cfg.reducers() && !cfg.FlatChaining
		ar := arenaFor[K2, V2](cfg.Pool, cfg.reducers())
		var mapErr error
		if chained {
			job, err = startDistJob[K2, V2, K3, V3](cfg, remote.ModeFlat, input.Partitions(), 0, false, ckpt)
			if err != nil {
				return nil, err
			}
			sender := &distSender[K2, V2, K3, V3]{j: job, ar: ar}
			mapErr = runMapPhaseDS(ctx, cfg, input, mapFn, sender, ar, stats)
		} else {
			flat := input.Collect()
			splits := splitRange(len(flat), cfg.mappers())
			job, err = startDistJob[K2, V2, K3, V3](cfg, remote.ModeFlat, len(splits), 0, false, ckpt)
			if err != nil {
				return nil, err
			}
			sender := &distSender[K2, V2, K3, V3]{j: job, ar: ar}
			mapErr = runMapPhase(ctx, cfg, splits, flat, mapFn, sender, ar, stats)
		}
		stats.MapWall = time.Since(phase)
		phase = time.Now()
		_, counts, err := job.finish(ctx, cfg, stats, mapErr)
		stats.ReduceWall = time.Since(phase)
		if err != nil {
			return nil, err
		}
		cl.registerResident(job.hdr.seq, job.hdr.owners, counts, job.takeCkptBlobs())
		return newRemoteDataset[K3, V3](cl, job.hdr.seq, counts, keyCast[K2, K3]() != nil, cfg.Pool), nil
	}
	_, counts, err := job.finish(ctx, cfg, stats, nil)
	stats.MapWall = 0
	stats.ReduceWall = time.Since(phase)
	if err != nil {
		return nil, err
	}
	cl.registerResident(job.hdr.seq, job.hdr.owners, counts, job.takeCkptBlobs())
	return newRemoteDataset[K3, V3](cl, job.hdr.seq, counts, keyCast[K2, K3]() != nil, cfg.Pool), nil
}

// takeCkptBlobs hands the attempt's mirrored checkpoint frames to the
// residency registry (nil when the job didn't checkpoint).
func (j *distJobRun[K2, V2, K3, V3]) takeCkptBlobs() [][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	blobs := j.ckptBlobs
	j.ckptBlobs = nil
	return blobs
}

// distResident is a Dataset's residency handle: which cluster and job
// own the records, and how many live in each partition (Len without a
// fetch).
type distResident struct {
	cl     *DistCluster
	seq    uint64
	counts []int64
}

// newRemoteDataset wraps a worker-resident job output in a Dataset.
func newRemoteDataset[K comparable, V any](cl *DistCluster, seq uint64, counts []int64, aligned bool, pool *BufferPool) *Dataset[K, V] {
	return &Dataset[K, V]{
		parts:   make([][]Pair[K, V], len(counts)),
		aligned: aligned,
		pool:    pool,
		rem:     &distResident{cl: cl, seq: seq, counts: counts},
	}
}

// Materialize moves a worker-resident Dataset's records to the caller:
// every partition is fetched from its owning worker and the residency is
// released (the workers drop their copies). A no-op for local Datasets.
// Record access (Collect, Each, Part, MapValues, Repartition) requires a
// materialized Dataset; in-repo algorithms call Materialize explicitly
// after every job whose output they read driver-side, so fetch errors
// surface as errors rather than panics.
func (d *Dataset[K, V]) Materialize() error {
	if d.rem == nil {
		return nil
	}
	rem := d.rem
	if err := rem.cl.Err(); err != nil {
		return fmt.Errorf("mapreduce: materializing dataset: dist cluster is broken: %w", err)
	}
	kc, err := resolveSpillCodec[K]()
	if err != nil {
		return fmt.Errorf("mapreduce: materializing dataset: %w", err)
	}
	vc, err := resolveSpillCodec[V]()
	if err != nil {
		return fmt.Errorf("mapreduce: materializing dataset: %w", err)
	}
	fetch := remote.AppendUvarint([]byte{byte(remote.MsgFetch)}, rem.seq)
	// One fetch per live connection, concurrently: the workers own
	// disjoint partitions and each connection has its own reader, so the
	// materialization wall is the slowest worker's transfer, not the
	// sum — this sits on the per-round critical path of every algorithm
	// that folds job output driver-side. loc filters stale copies: after
	// a recovery a partition may exist on both its old owner (a seed
	// that was reassigned again) and its current one; only the current
	// owner's copy is accepted.
	loc := rem.cl.residencySnapshot(rem.seq)
	live := rem.cl.liveWorkers()
	// A live worker that owns nothing under the residency map has nothing
	// to contribute — skip its round-trip. This keeps a benched straggler
	// (slow, not dead, rebalanced down to zero partitions) off the
	// materialization critical path.
	if loc != nil {
		owned := make(map[int]bool, len(live))
		for _, w := range loc {
			owned[w] = true
		}
		kept := live[:0]
		for _, w := range live {
			if owned[w] {
				kept = append(kept, w)
			}
		}
		live = kept
	}
	errs := make([]error, len(rem.cl.conns))
	var wg sync.WaitGroup
	for _, w := range live {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := d.fetchFrom(rem.cl.conns[w], w, loc, fetch, kc, vc); err != nil {
				errs[w] = fmt.Errorf("mapreduce: fetching resident partitions from worker %d: %w", w, err)
				rem.cl.markDead(w, errs[w])
			}
		}()
	}
	wg.Wait()
	var lost error
	for _, err := range errs {
		if err != nil {
			lost = &WorkerLostError{Worker: -1, Job: "materialize", Err: err}
			break
		}
	}
	// Fill the holes — partitions owned by a worker that died before or
	// during the fetch — from the coordinator's checkpoint mirror. The
	// mirror blob is the canonical encodePairs image, so the decoded
	// partition is bit-identical to the lost copy.
	for p := range d.parts {
		if d.parts[p] != nil || p >= len(rem.counts) || rem.counts[p] == 0 {
			continue
		}
		blob, ok := rem.cl.mirrorPart(rem.seq, p)
		if !ok || blob == nil {
			if lost != nil {
				return lost
			}
			return fmt.Errorf("mapreduce: materializing dataset: partition %d lost without a checkpoint", p)
		}
		n := int(rem.counts[p])
		cur := remote.NewCursor(blob)
		pairs, err := decodePairs(cur, n, kc, vc, make([]Pair[K, V], 0, n))
		if err != nil {
			return fmt.Errorf("mapreduce: materializing dataset: restoring partition %d from checkpoint: %w", p, err)
		}
		d.parts[p] = pairs
	}
	rem.cl.forgetResident(rem.seq)
	d.rem = nil
	return nil
}

// fetchFrom drains one worker's resident partitions for this dataset.
// loc (the cluster's residency map, nil when unknown) gates acceptance:
// only the current owner's copy of a partition is installed.
func (d *Dataset[K, V]) fetchFrom(conn *remote.Conn, w int, loc []int, fetch []byte, kc spillCodec[K], vc spillCodec[V]) error {
	if err := conn.WriteFrame(fetch); err != nil {
		return err
	}
	// Rolling read deadline: a gray-failed worker (socket open, no
	// frames) must not hang materialization forever — on timeout the
	// caller marks it dead and its partitions restore from the mirror.
	timeout := distAbortTimeout
	if d.rem != nil && d.rem.cl != nil {
		timeout = d.rem.cl.abortTimeout
	}
	defer conn.SetReadDeadline(time.Time{})
	for {
		conn.SetReadDeadline(time.Now().Add(timeout))
		payload, err := conn.ReadFrame()
		if err != nil {
			return err
		}
		cur := remote.NewCursor(payload)
		switch t := remote.MsgType(cur.Byte()); t {
		case remote.MsgPong:
			// heartbeat interleaved with the fetch stream
		case remote.MsgPart:
			cur.Uvarint() // seq
			part := int(cur.Uvarint())
			count := int(cur.Uvarint())
			if err := cur.Err(); err != nil || part < 0 || part >= len(d.parts) {
				return fmt.Errorf("malformed resident partition frame")
			}
			if loc != nil && part < len(loc) && loc[part] != w {
				continue // stale copy from a previous assignment
			}
			pairs, err := decodePairs(cur, count, kc, vc, make([]Pair[K, V], 0, pairCap(cur, count, kc, vc)))
			if err != nil {
				return err
			}
			d.parts[part] = pairs
		case remote.MsgFetchDone:
			return nil
		case remote.MsgError:
			cur.Uvarint()
			return errors.New(cur.String())
		default:
			return fmt.Errorf("unexpected %v during fetch", t)
		}
	}
}

// mustMaterialize backs the record accessors of Dataset. Reaching a
// fetch failure here means a remote Dataset was accessed without a
// prior Materialize check — a programming error — so it fails loudly.
func (d *Dataset[K, V]) mustMaterialize() {
	if err := d.Materialize(); err != nil {
		panic(fmt.Sprintf("mapreduce: unchecked access to a worker-resident Dataset: %v (call Materialize and handle the error first)", err))
	}
}

// dropResident releases a worker-resident Dataset's partitions on the
// workers (Recycle's remote half). Best effort: a worker that cannot be
// told is marked dead (its copy dies with it), and the coordinator's
// mirror is forgotten unconditionally.
func (d *Dataset[K, V]) dropResident() {
	rem := d.rem
	d.rem = nil
	if rem == nil {
		return
	}
	rem.cl.forgetResident(rem.seq)
	if rem.cl.Err() != nil {
		return
	}
	frame := remote.AppendUvarint([]byte{byte(remote.MsgDrop)}, rem.seq)
	for _, w := range rem.cl.liveWorkers() {
		if err := rem.cl.conns[w].WriteFrame(frame); err != nil {
			rem.cl.markDead(w, fmt.Errorf("mapreduce: dropping resident dataset on worker %d: %w", w, err))
		}
	}
}
