package mapreduce

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkWordCount measures raw engine throughput on the canonical
// workload: 10k lines fanned out to term counts.
func BenchmarkWordCount(b *testing.B) {
	input := make([]Pair[int, string], 10000)
	for i := range input {
		input[i] = P(i, fmt.Sprintf("w%d w%d w%d w%d", i%100, i%37, i%11, i%3))
	}
	mapFn := func(_ int, line string, out Emitter[string, int]) error {
		start := 0
		for j := 0; j <= len(line); j++ {
			if j == len(line) || line[j] == ' ' {
				if j > start {
					out.Emit(line[start:j], 1)
				}
				start = j + 1
			}
		}
		return nil
	}
	redFn := func(w string, vs []int, out Emitter[string, int]) error {
		out.Emit(w, len(vs))
		return nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(context.Background(), Config{Mappers: 4, Reducers: 4},
			input, mapFn, redFn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShuffleHeavy measures a job dominated by the shuffle: every
// record fans out to 16 keys (the communication pattern of the matching
// algorithms, where every edge sends to both endpoints).
func BenchmarkShuffleHeavy(b *testing.B) {
	input := make([]Pair[int32, int32], 20000)
	for i := range input {
		input[i] = P(int32(i), int32(i))
	}
	mapFn := func(k, v int32, out Emitter[int32, int32]) error {
		for f := int32(0); f < 16; f++ {
			out.Emit((k*31+f)%4096, v)
		}
		return nil
	}
	redFn := func(k int32, vs []int32, out Emitter[int32, int]) error {
		out.Emit(k, len(vs))
		return nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(context.Background(), Config{Mappers: 4, Reducers: 4},
			input, mapFn, redFn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionIndex(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		sink += partitionIndex(int32(i), 16)
	}
	_ = sink
}
