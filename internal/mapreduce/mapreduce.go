// Package mapreduce implements an in-memory MapReduce engine that mirrors
// the programming model of Dean & Ghemawat (CACM 2008): a user-defined map
// function is applied in parallel to input key-value pairs, the emitted
// intermediate pairs are shuffled (partitioned by key and grouped), and a
// user-defined reduce function is applied to every group, again in
// parallel.
//
// The engine stands in for the Hadoop cluster used in the paper "Social
// Content Matching in MapReduce" (De Francisci Morales, Gionis, Sozio;
// VLDB 2011). The paper's efficiency results are stated in terms of the
// number of MapReduce iterations and the communication cost per job, both
// of which this engine measures exactly: every Run records counters and
// shuffle statistics, and the Driver type counts rounds for iterative
// algorithms.
//
// Unlike a toy fork-join loop, the engine keeps the essential contract of
// the model that the paper's algorithms depend on:
//
//   - mappers see a single pair at a time and communicate only by emitting
//     intermediate pairs;
//   - all pairs sharing a key meet in exactly one reduce call;
//   - reducers for different keys run concurrently, so a reduce function
//     must not rely on cross-key ordering;
//   - jobs are deterministic given deterministic user functions (groups
//     are processed in sorted key order within every partition, and output
//     order is normalized).
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Pair is a key-value pair, the unit of data flowing through a job.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// P is a convenience constructor for Pair.
func P[K comparable, V any](k K, v V) Pair[K, V] {
	return Pair[K, V]{Key: k, Value: v}
}

// Emitter collects the pairs produced by a map or reduce function.
// Implementations are safe for use by a single task; tasks never share an
// Emitter.
type Emitter[K comparable, V any] interface {
	// Emit adds one pair to the task output.
	Emit(key K, value V)
}

// MapFunc transforms one input pair into any number of intermediate pairs.
// It must be safe to call concurrently from multiple goroutines.
type MapFunc[K1 comparable, V1 any, K2 comparable, V2 any] func(key K1, value V1, out Emitter[K2, V2]) error

// ReduceFunc folds all intermediate values that share a key into any
// number of output pairs. Values arrive in deterministic order (the order
// mappers emitted them, with ties between mappers broken by input split
// index). It must be safe to call concurrently for distinct keys.
type ReduceFunc[K2 comparable, V2 any, K3 comparable, V3 any] func(key K2, values []V2, out Emitter[K3, V3]) error

// Config controls the parallelism, partitioning, and fault injection of
// a job.
type Config struct {
	// Mappers is the number of parallel map workers. Zero means
	// GOMAXPROCS.
	Mappers int
	// Reducers is the number of partitions (and parallel reduce
	// workers). Zero means GOMAXPROCS.
	Reducers int
	// Name is an optional label recorded in the job Stats.
	Name string

	// FailureRate injects simulated task failures: each map or reduce
	// task attempt fails independently with this probability and is
	// re-executed, exactly as a MapReduce framework re-runs the tasks
	// of lost workers. User functions must therefore be pure
	// (re-runnable), which all algorithms in this repository satisfy.
	// Failures are deterministic given FailureSeed.
	FailureRate float64
	// MaxAttempts bounds the retries per task (default 4, Hadoop's
	// mapreduce.map.maxattempts). A task failing MaxAttempts times
	// fails the job.
	MaxAttempts int
	// FailureSeed seeds the injected-failure randomness.
	FailureSeed int64
}

func (c Config) mappers() int {
	if c.Mappers > 0 {
		return c.Mappers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) reducers() int {
	if c.Reducers > 0 {
		return c.Reducers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 4
}

// taskFails reports whether the injected-failure coin lands on failure
// for the given task attempt. The decision is a pure function of the
// configuration and the (phase, task, attempt) coordinates, so a job is
// reproducible regardless of scheduling.
func (c Config) taskFails(phase, task, attempt int) bool {
	if c.FailureRate <= 0 {
		return false
	}
	h := mix64(uint64(c.FailureSeed) ^
		uint64(phase)<<40 ^ uint64(task)<<16 ^ uint64(attempt))
	return float64(h>>11)/(1<<53) < c.FailureRate
}

// emitBuf is the concrete Emitter used by both phases.
type emitBuf[K comparable, V any] struct {
	pairs []Pair[K, V]
}

func (e *emitBuf[K, V]) Emit(key K, value V) {
	e.pairs = append(e.pairs, Pair[K, V]{Key: key, Value: value})
}

// Run executes one MapReduce job over the input pairs and returns the
// reduce output together with the job statistics. The output is sorted by
// the string form of its keys so that identical jobs produce identical
// slices, which keeps the randomized matching algorithms reproducible
// under a fixed seed.
//
// Run returns the first error produced by any map or reduce invocation;
// the remaining tasks are cancelled.
func Run[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	cfg Config,
	input []Pair[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	reduceFn ReduceFunc[K2, V2, K3, V3],
) ([]Pair[K3, V3], *Stats, error) {
	if mapFn == nil {
		return nil, nil, errors.New("mapreduce: nil map function")
	}
	if reduceFn == nil {
		return nil, nil, errors.New("mapreduce: nil reduce function")
	}
	stats := newStats(cfg.Name)
	stats.MapInputRecords = int64(len(input))

	intermediate, err := runMapPhase(ctx, cfg, input, mapFn, stats)
	if err != nil {
		return nil, stats, err
	}
	partitions := shuffle(cfg, intermediate, stats)
	output, err := runReducePhase(ctx, cfg, partitions, reduceFn, stats)
	if err != nil {
		return nil, stats, err
	}
	stats.ReduceOutputRecords = int64(len(output))
	sortPairs(output)
	return output, stats, nil
}

// runMapPhase splits the input among workers and applies mapFn.
// The per-split outputs are concatenated in split order so that the
// intermediate sequence is independent of goroutine scheduling.
func runMapPhase[K1 comparable, V1 any, K2 comparable, V2 any](
	ctx context.Context,
	cfg Config,
	input []Pair[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	stats *Stats,
) ([]Pair[K2, V2], error) {
	workers := cfg.mappers()
	splits := splitRange(len(input), workers)
	outs := make([][]Pair[K2, V2], len(splits))

	grp := newErrGroup(ctx)
	for i, sp := range splits {
		i, sp := i, sp
		grp.Go(func(ctx context.Context) error {
			for attempt := 1; ; attempt++ {
				if attempt > cfg.maxAttempts() {
					return fmt.Errorf("mapreduce: map task %d exceeded %d attempts", i, cfg.maxAttempts())
				}
				buf := &emitBuf[K2, V2]{}
				for j := sp.lo; j < sp.hi; j++ {
					if err := ctx.Err(); err != nil {
						return err
					}
					if err := mapFn(input[j].Key, input[j].Value, buf); err != nil {
						return fmt.Errorf("mapreduce: map record %d: %w", j, err)
					}
				}
				if cfg.taskFails(0, i, attempt) {
					// Simulated worker loss: discard the attempt's
					// output and re-execute, as the framework would.
					stats.addMapRetry()
					continue
				}
				outs[i] = buf.pairs
				return nil
			}
		})
	}
	if err := grp.Wait(); err != nil {
		return nil, err
	}
	var total int
	for _, o := range outs {
		total += len(o)
	}
	all := make([]Pair[K2, V2], 0, total)
	for _, o := range outs {
		all = append(all, o...)
	}
	stats.MapOutputRecords = int64(total)
	return all, nil
}

// shuffle partitions the intermediate pairs by key hash and groups each
// partition by key. Grouping preserves emission order within a key.
func shuffle[K2 comparable, V2 any](
	cfg Config,
	intermediate []Pair[K2, V2],
	stats *Stats,
) []map[K2][]V2 {
	r := cfg.reducers()
	partitions := make([]map[K2][]V2, r)
	for i := range partitions {
		partitions[i] = make(map[K2][]V2)
	}
	for _, p := range intermediate {
		idx := partitionIndex(p.Key, r)
		partitions[idx][p.Key] = append(partitions[idx][p.Key], p.Value)
	}
	stats.ShuffleRecords = int64(len(intermediate))
	var groups int64
	for _, m := range partitions {
		groups += int64(len(m))
	}
	stats.ReduceGroups = groups
	return partitions
}

// runReducePhase applies reduceFn to every key group. Within a partition
// keys are processed in sorted order for determinism; partitions run in
// parallel.
func runReducePhase[K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	cfg Config,
	partitions []map[K2][]V2,
	reduceFn ReduceFunc[K2, V2, K3, V3],
	stats *Stats,
) ([]Pair[K3, V3], error) {
	outs := make([][]Pair[K3, V3], len(partitions))
	grp := newErrGroup(ctx)
	for i, part := range partitions {
		i, part := i, part
		grp.Go(func(ctx context.Context) error {
			keys := make([]K2, 0, len(part))
			for k := range part {
				keys = append(keys, k)
			}
			sortKeys(keys)
			for attempt := 1; ; attempt++ {
				if attempt > cfg.maxAttempts() {
					return fmt.Errorf("mapreduce: reduce task %d exceeded %d attempts", i, cfg.maxAttempts())
				}
				buf := &emitBuf[K3, V3]{}
				for _, k := range keys {
					if err := ctx.Err(); err != nil {
						return err
					}
					if err := reduceFn(k, part[k], buf); err != nil {
						return fmt.Errorf("mapreduce: reduce key %v: %w", k, err)
					}
				}
				if cfg.taskFails(1, i, attempt) {
					stats.addReduceRetry()
					continue
				}
				outs[i] = buf.pairs
				return nil
			}
		})
	}
	if err := grp.Wait(); err != nil {
		return nil, err
	}
	var total int
	for _, o := range outs {
		total += len(o)
	}
	all := make([]Pair[K3, V3], 0, total)
	for _, o := range outs {
		all = append(all, o...)
	}
	return all, nil
}

// span is a half-open index range [lo, hi).
type span struct{ lo, hi int }

// splitRange cuts n records into at most w near-equal contiguous spans.
func splitRange(n, w int) []span {
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	if n == 0 {
		return nil
	}
	spans := make([]span, 0, w)
	base, rem := n/w, n%w
	lo := 0
	for i := 0; i < w; i++ {
		size := base
		if i < rem {
			size++
		}
		spans = append(spans, span{lo, lo + size})
		lo += size
	}
	return spans
}

// errGroup is a minimal errgroup built on the stdlib: first error wins and
// cancels the derived context.
type errGroup struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once
	err    error
}

func newErrGroup(ctx context.Context) *errGroup {
	if ctx == nil {
		ctx = context.Background()
	}
	cctx, cancel := context.WithCancel(ctx)
	return &errGroup{ctx: cctx, cancel: cancel}
}

func (g *errGroup) Go(fn func(ctx context.Context) error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(g.ctx); err != nil {
			g.once.Do(func() {
				g.err = err
				g.cancel()
			})
		}
	}()
}

func (g *errGroup) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}

// sortPairs orders output pairs by key for reproducible results.
func sortPairs[K comparable, V any](pairs []Pair[K, V]) {
	sort.SliceStable(pairs, func(i, j int) bool {
		return lessKey(pairs[i].Key, pairs[j].Key)
	})
}

// sortKeys orders a key slice deterministically.
func sortKeys[K comparable](keys []K) {
	sort.Slice(keys, func(i, j int) bool { return lessKey(keys[i], keys[j]) })
}
