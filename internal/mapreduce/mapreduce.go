// Package mapreduce implements an in-memory MapReduce engine that mirrors
// the programming model of Dean & Ghemawat (CACM 2008): a user-defined map
// function is applied in parallel to input key-value pairs, the emitted
// intermediate pairs are shuffled (partitioned by key and grouped), and a
// user-defined reduce function is applied to every group, again in
// parallel.
//
// The engine stands in for the Hadoop cluster used in the paper "Social
// Content Matching in MapReduce" (De Francisci Morales, Gionis, Sozio;
// VLDB 2011). The paper's efficiency results are stated in terms of the
// number of MapReduce iterations and the communication cost per job, both
// of which this engine measures exactly: every Run records counters and
// shuffle statistics, and the Driver type counts rounds for iterative
// algorithms.
//
// Unlike a toy fork-join loop, the engine keeps the essential contract of
// the model that the paper's algorithms depend on:
//
//   - mappers see a single pair at a time and communicate only by emitting
//     intermediate pairs;
//   - all pairs sharing a key meet in exactly one reduce call;
//   - reducers for different keys run concurrently, so a reduce function
//     must not rely on cross-key ordering;
//   - jobs are deterministic given deterministic user functions (groups
//     are processed in sorted key order within every partition, and output
//     order is normalized).
//
// The shuffle between the two phases is pluggable (Config.Shuffle) and
// fully parallel: map tasks partition their output into per-reducer
// buckets as pairs are emitted (map-side partitioning), and each reduce
// task groups its own partition with a stable sort by key (sort-based
// grouping), so no phase of the data path runs on a single goroutine.
// The default backend keeps everything in memory, while the spilling
// backend bounds memory by writing sorted runs to disk through
// internal/extsort and merge-streaming the key groups to the reducers,
// so jobs whose intermediate data far exceeds RAM still complete. See
// shuffle.go for the ShuffleBackend contract. Per-phase wall times are
// recorded in Stats (MapWall, ShuffleWall, ReduceWall).
//
// The third mode is distributed execution (ShuffleDist, dist.go): the
// reduce partitions shard across worker processes connected over the
// framed TCP transport of internal/mapreduce/remote, each worker
// group-sorting and reducing its partitions locally with the functions
// registered under the job's name (RegisterDistJob) — output
// bit-identical to the memory backend for the same seed and partition
// count, with chained Dataset output staying worker-resident between
// rounds.
//
// Iterative computations chain jobs through Dataset (dataset.go), the
// engine's partition-resident currency between jobs: reduce output
// stays per-partition, the next job consumes it partition-by-partition,
// and self-addressed pairs skip hashing via the identity route. Loop
// drives such a computation to its fixed point under a Driver.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Pair is a key-value pair, the unit of data flowing through a job.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// P is a convenience constructor for Pair.
func P[K comparable, V any](k K, v V) Pair[K, V] {
	return Pair[K, V]{Key: k, Value: v}
}

// Emitter collects the pairs produced by a map or reduce function.
// Implementations are safe for use by a single task; tasks never share an
// Emitter.
type Emitter[K comparable, V any] interface {
	// Emit adds one pair to the task output.
	Emit(key K, value V)
}

// MapFunc transforms one input pair into any number of intermediate pairs.
// It must be safe to call concurrently from multiple goroutines.
type MapFunc[K1 comparable, V1 any, K2 comparable, V2 any] func(key K1, value V1, out Emitter[K2, V2]) error

// ReduceFunc folds all intermediate values that share a key into any
// number of output pairs. Values arrive in deterministic order (the order
// mappers emitted them, with ties between mappers broken by input split
// index). It must be safe to call concurrently for distinct keys.
//
// The values slice is only valid for the duration of the call: the
// engine owns its backing array and reuses it for later groups and
// later rounds (exactly as Hadoop reuses its value objects). A reduce
// that wants to keep the values must copy them — CollectValues does.
type ReduceFunc[K2 comparable, V2 any, K3 comparable, V3 any] func(key K2, values []V2, out Emitter[K3, V3]) error

// Config controls the parallelism, partitioning, and fault injection of
// a job.
type Config struct {
	// Mappers is the number of parallel map workers. Zero means
	// GOMAXPROCS.
	Mappers int
	// Reducers is the number of partitions (and parallel reduce
	// workers). Zero means GOMAXPROCS.
	Reducers int
	// Name is an optional label recorded in the job Stats.
	Name string

	// FailureRate injects simulated task failures: each map or reduce
	// task attempt fails independently with this probability and is
	// re-executed, exactly as a MapReduce framework re-runs the tasks
	// of lost workers. User functions must therefore be pure
	// (re-runnable), which all algorithms in this repository satisfy.
	// Failures are deterministic given FailureSeed.
	FailureRate float64
	// MaxAttempts bounds the retries per task (default 4, Hadoop's
	// mapreduce.map.maxattempts). A task failing MaxAttempts times
	// fails the job.
	MaxAttempts int
	// FailureSeed seeds the injected-failure randomness.
	FailureSeed int64

	// Shuffle selects and bounds the shuffle backend (see ShuffleKind).
	// The zero value is the in-memory backend.
	Shuffle ShuffleConfig

	// WireCompression flate-compresses the pair payload of every bulk
	// dist frame (intermediate buckets, reduce output, checkpoint
	// mirrors, partition fetches) on top of the columnar v2 encoding.
	// Worth it when frames are large and the network is the bottleneck;
	// pure overhead for tiny frames or already-dense payloads. The
	// bytes avoided are reported in Stats.WireBytesSaved. Ignored by
	// the local backends.
	WireCompression bool
	// SpillCompression flate-compresses the record blocks the spilling
	// shuffle writes to its extsort run files, trading encode/decode
	// CPU for disk bandwidth and footprint. The bytes avoided are
	// reported in Stats.SpillBytesSaved. Ignored by the other backends.
	SpillCompression bool

	// Dist is the worker cluster jobs run on when Shuffle.Backend is
	// ShuffleDist (see StartDistCluster). Ignored by the local backends.
	Dist *DistCluster
	// DistParams is an opaque per-job parameter blob delivered to the
	// workers' registered job factory (RegisterDistJob): how a reduce
	// that closes over driver-side round state (dual variables, layer
	// sets) ships that state to the processes that run it. Ignored by
	// the local backends.
	DistParams []byte
	// DistCounters, when set, receives the worker-side counter
	// snapshots of a dist job (the registered job's Counters), merged
	// after the job completes. Ignored by the local backends.
	DistCounters *Counters
	// CheckpointEvery throttles dist checkpointing of worker-resident
	// job outputs: 0 (the default) checkpoints every retained output,
	// k > 0 every k-th, and a negative value disables checkpointing
	// entirely (a lost worker then loses its partitions for good).
	// Checkpointed outputs are mirrored on the coordinator and persisted
	// to worker-local run files; they are what recovery restores from
	// after a worker death. Ignored by the local backends and by plain
	// Run (whose output returns to the coordinator anyway).
	CheckpointEvery int
	// SpeculationFactor arms straggler speculation on the dist backend:
	// when a worker falls behind the round's progress distribution —
	// silent past the heartbeat window, or still running past
	// SpeculationFactor x the median completion time once a majority of
	// workers have finished — its partitions are speculatively
	// re-executed on the healthy workers, and the first completion
	// wins. The laggard is demoted (benched from future schedules), not
	// killed. Zero or negative disables speculation (the default).
	// Values below ~1.5 speculate aggressively; 2-4 is typical.
	// Requires heartbeats (DistClusterOptions.HeartbeatEvery >= 0) and,
	// for chained jobs, a checkpoint mirror to re-seed from. Ignored by
	// the local backends.
	SpeculationFactor float64

	// Pool recycles round-lifetime buffers (shuffle buckets, group-sort
	// arrays, radix scratch) across the jobs that share it, making the
	// steady state of an iterative computation nearly allocation-free.
	// NewDriver attaches a pool automatically, so driver-run jobs
	// recycle out of the box; nil disables recycling. See BufferPool
	// for the ownership discipline.
	Pool *BufferPool

	// FlatChaining disables partition-resident chaining: RunDS ignores
	// Dataset alignment and re-partitions every job's input from the
	// flat, globally sorted view — the pre-Dataset engine behavior.
	// Kept selectable so equivalence tests and benchmarks can compare
	// the two dataflows; plain Run is unaffected.
	FlatChaining bool
}

func (c Config) mappers() int {
	if c.Mappers > 0 {
		return c.Mappers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) reducers() int {
	if c.Reducers > 0 {
		return c.Reducers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 4
}

// taskFails reports whether the injected-failure coin lands on failure
// for the given task attempt. The decision is a pure function of the
// configuration and the (phase, task, attempt) coordinates, so a job is
// reproducible regardless of scheduling.
func (c Config) taskFails(phase, task, attempt int) bool {
	if c.FailureRate <= 0 {
		return false
	}
	h := mix64(uint64(c.FailureSeed) ^
		uint64(phase)<<40 ^ uint64(task)<<16 ^ uint64(attempt))
	return float64(h>>11)/(1<<53) < c.FailureRate
}

// burnAttempts draws the failure coin for successive attempts of one
// task and returns the attempt number that succeeds, recording each
// failed attempt through retry. Because the coin is a pure function of
// the task coordinates (not of the work), failures can be decided before
// the work runs — user functions are pure by the engine's contract, and
// a failed attempt's output is discarded anyway. Deciding up front lets
// reduce tasks stream their groups exactly once, which the spilling
// shuffle backend requires. Returns an error when every allowed attempt
// fails, exactly as a real framework gives up on a task.
func (c Config) burnAttempts(phase, task int, retry func()) error {
	attempt := 1
	for attempt <= c.maxAttempts() && c.taskFails(phase, task, attempt) {
		retry()
		attempt++
	}
	if attempt > c.maxAttempts() {
		kind := "map"
		if phase == 1 {
			kind = "reduce"
		}
		return fmt.Errorf("mapreduce: %s task %d exceeded %d attempts", kind, task, c.maxAttempts())
	}
	return nil
}

// emitBuf is the concrete Emitter used by reduce tasks (and by map
// splits feeding a whole-split shuffle backend).
type emitBuf[K comparable, V any] struct {
	pairs []Pair[K, V]
}

func (e *emitBuf[K, V]) Emit(key K, value V) {
	e.pairs = append(e.pairs, Pair[K, V]{Key: key, Value: value})
}

// emitBucketCap is the default size at which the emitter hands a full
// partition bucket to the backend. A bucket's first fill grows
// naturally (small jobs never over-allocate); once a partition has
// flushed, its next bucket is allocated at full capacity, so a busy
// partition's steady state is alloc-once-fill-hand-over — no growth
// copying on the emit hot path.
const emitBucketCap = 1024

// shuffleEmitter is the Emitter handed to map tasks: it routes every
// emitted pair into a per-reducer bucket as it is produced — map-side
// partitioning, so the one hashKey per pair runs in parallel across the
// map tasks instead of serially during shuffle finalization — and hands
// each bucket to the job's shuffle backend when it fills (ownership
// transfer; the backend keeps the slice, so shuffle finalization only
// collects slice headers). Bounded buckets also let a spilling backend
// start writing runs long before the split finishes.
type shuffleEmitter[K comparable, V any] struct {
	backend ShuffleBackend[K, V]
	ar      *roundArena[K, V]
	split   int
	cap     int
	parts   int
	buckets [][]Pair[K, V]
	count   int64
	// Identity routing (partition-resident map tasks only): when selfOK
	// is set, the task updates self to each input record's key before
	// invoking the map function, and pairs emitted back to that key are
	// routed to the task's own partition (== split) without hashing.
	// local and cross count the pairs taking each route.
	selfOK bool
	self   K
	local  int64
	cross  int64
	err    error
}

func newShuffleEmitter[K comparable, V any](backend ShuffleBackend[K, V], split int, ar *roundArena[K, V]) *shuffleEmitter[K, V] {
	bcap := backend.BucketCap()
	if bcap <= 0 {
		bcap = emitBucketCap
	}
	return &shuffleEmitter[K, V]{
		backend: backend,
		ar:      ar,
		split:   split,
		cap:     bcap,
		parts:   backend.Partitions(),
		buckets: make([][]Pair[K, V], backend.Partitions()),
	}
}

func (e *shuffleEmitter[K, V]) Emit(key K, value V) {
	if e.err != nil {
		return
	}
	var idx int
	if e.selfOK && key == e.self {
		// Identity route: a pair addressed to the task's own input key
		// necessarily belongs to the task's own partition (the input is
		// aligned), so the hash is skipped.
		idx = e.split
		e.local++
	} else {
		idx = partitionIndex(key, e.parts)
		e.cross++
	}
	b := append(e.buckets[idx], Pair[K, V]{Key: key, Value: value})
	e.count++
	if len(b) >= e.cap {
		e.err = e.backend.AddBucket(e.split, idx, b)
		// The replacement bucket comes from the recycler when the job
		// has one: a backend checks consumed buckets back in, so a
		// steady-state round fills the same bucket storage it filled
		// last round.
		b = e.ar.getBucket(idx, e.cap)
	}
	e.buckets[idx] = b
}

// finish hands over the remaining partial buckets; they must not be
// touched afterwards (the backend owns them).
func (e *shuffleEmitter[K, V]) finish() error {
	for p, b := range e.buckets {
		if e.err != nil {
			break
		}
		if len(b) > 0 {
			e.err = e.backend.AddBucket(e.split, p, b)
		}
	}
	e.buckets = nil
	return e.err
}

// Run executes one MapReduce job over the input pairs and returns the
// reduce output together with the job statistics. The output is sorted by
// the string form of its keys so that identical jobs produce identical
// slices, which keeps the randomized matching algorithms reproducible
// under a fixed seed.
//
// Run returns the first error produced by any map or reduce invocation;
// the remaining tasks are cancelled.
func Run[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	cfg Config,
	input []Pair[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	reduceFn ReduceFunc[K2, V2, K3, V3],
) ([]Pair[K3, V3], *Stats, error) {
	if mapFn == nil {
		return nil, nil, errors.New("mapreduce: nil map function")
	}
	if reduceFn == nil {
		return nil, nil, errors.New("mapreduce: nil reduce function")
	}
	stats := newStats(cfg.Name)
	stats.MapInputRecords = int64(len(input))
	defer stats.snapPool(cfg.Pool)()

	if cfg.Shuffle.kind() == ShuffleDist {
		out, err := runDistFlat[K1, V1, K2, V2, K3, V3](ctx, cfg, input, mapFn, stats)
		return out, stats, err
	}

	splits := splitRange(len(input), cfg.mappers())
	ar := arenaFor[K2, V2](cfg.Pool, cfg.reducers())
	backend, err := newShuffleBackend(cfg, len(splits), ar)
	if err != nil {
		return nil, stats, err
	}
	defer backend.Close()

	phase := time.Now()
	if err := runMapPhase(ctx, cfg, splits, input, mapFn, backend, ar, stats); err != nil {
		stats.MapWall = time.Since(phase)
		return nil, stats, err
	}
	stats.MapWall = time.Since(phase)
	phase = time.Now()
	streams, err := backend.Finalize()
	stats.ShuffleWall = time.Since(phase)
	if err != nil {
		return nil, stats, err
	}
	phase = time.Now()
	output, err := runReducePhase(ctx, cfg, streams, reduceFn, stats)
	stats.ReduceWall = time.Since(phase)
	stats.recordShuffle(backend)
	if err != nil {
		return nil, stats, err
	}
	stats.ReduceOutputRecords = int64(len(output))
	sortPairs(output)
	return output, stats, nil
}

// runMapPhase applies mapFn to the input splits in parallel, feeding the
// emitted pairs to the shuffle backend. Pairs reach the backend tagged
// with their split index, so the intermediate order is independent of
// goroutine scheduling. Injected task failures are drawn before the
// split runs (see burnAttempts).
func runMapPhase[K1 comparable, V1 any, K2 comparable, V2 any](
	ctx context.Context,
	cfg Config,
	splits []span,
	input []Pair[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	backend ShuffleBackend[K2, V2],
	ar *roundArena[K2, V2],
	stats *Stats,
) error {
	grp := newErrGroup(ctx)
	for i, sp := range splits {
		i, sp := i, sp
		grp.Go(func(ctx context.Context) error {
			if err := cfg.burnAttempts(0, i, stats.addMapRetry); err != nil {
				return err
			}
			em := newShuffleEmitter(backend, i, ar)
			for j := sp.lo; j < sp.hi; j++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				if err := mapFn(input[j].Key, input[j].Value, em); err != nil {
					return fmt.Errorf("mapreduce: map record %d: %w", j, err)
				}
				if em.err != nil {
					return em.err
				}
			}
			if err := em.finish(); err != nil {
				return err
			}
			stats.addMapOutput(em.count)
			stats.addRouted(em.local, em.cross)
			return nil
		})
	}
	return grp.Wait()
}

// runReducePhase streams every partition's key groups through reduceFn
// and concatenates the per-partition outputs (the flat-slice view Run
// returns). The per-partition buffers never escape this function, so
// they go straight back to the recycler after the concat.
func runReducePhase[K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	cfg Config,
	streams []GroupStream[K2, V2],
	reduceFn ReduceFunc[K2, V2, K3, V3],
	stats *Stats,
) ([]Pair[K3, V3], error) {
	outs, err := runReduceParts(ctx, cfg, streams, reduceFn, stats)
	if err != nil {
		return nil, err
	}
	var total int
	for _, o := range outs {
		total += len(o)
	}
	all := make([]Pair[K3, V3], 0, total)
	arOut := arenaFor[K3, V3](cfg.Pool, len(streams))
	for i, o := range outs {
		all = append(all, o...)
		arOut.putPairs(i, o)
	}
	return all, nil
}

// runReduceParts streams every partition's key groups through reduceFn,
// keeping each partition's output separate (the Dataset view RunDS
// returns). Within a partition groups arrive in sorted key order for
// determinism; partitions run in parallel. Output buffers check out of
// the recycler (a partition's output size is stable across rounds, so
// round N+1 refills round N's buffer); they return only through an
// explicit Dataset.Recycle or Loop's superseded-state recycling.
func runReduceParts[K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	cfg Config,
	streams []GroupStream[K2, V2],
	reduceFn ReduceFunc[K2, V2, K3, V3],
	stats *Stats,
) ([][]Pair[K3, V3], error) {
	outs := make([][]Pair[K3, V3], len(streams))
	arOut := arenaFor[K3, V3](cfg.Pool, len(streams))
	grp := newErrGroup(ctx)
	for i, st := range streams {
		i, st := i, st
		grp.Go(func(ctx context.Context) error {
			defer st.Close()
			if err := cfg.burnAttempts(1, i, stats.addReduceRetry); err != nil {
				return err
			}
			buf := &emitBuf[K3, V3]{pairs: arOut.getPairs(i, 0)}
			for {
				if err := ctx.Err(); err != nil {
					return err
				}
				k, values, ok, err := st.Next()
				if err != nil {
					return fmt.Errorf("mapreduce: shuffle partition %d: %w", i, err)
				}
				if !ok {
					break
				}
				stats.addReduceGroup()
				if err := reduceFn(k, values, buf); err != nil {
					return fmt.Errorf("mapreduce: reduce key %v: %w", k, err)
				}
			}
			outs[i] = buf.pairs
			return nil
		})
	}
	if err := grp.Wait(); err != nil {
		return nil, err
	}
	return outs, nil
}

// span is a half-open index range [lo, hi).
type span struct{ lo, hi int }

// splitRange cuts n records into at most w near-equal contiguous spans.
func splitRange(n, w int) []span {
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	if n == 0 {
		return nil
	}
	spans := make([]span, 0, w)
	base, rem := n/w, n%w
	lo := 0
	for i := 0; i < w; i++ {
		size := base
		if i < rem {
			size++
		}
		spans = append(spans, span{lo, lo + size})
		lo += size
	}
	return spans
}

// errGroup is a minimal errgroup built on the stdlib: first error wins and
// cancels the derived context.
type errGroup struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once
	err    error
}

func newErrGroup(ctx context.Context) *errGroup {
	if ctx == nil {
		ctx = context.Background()
	}
	cctx, cancel := context.WithCancel(ctx)
	return &errGroup{ctx: cctx, cancel: cancel}
}

func (g *errGroup) Go(fn func(ctx context.Context) error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(g.ctx); err != nil {
			g.once.Do(func() {
				g.err = err
				g.cancel()
			})
		}
	}()
}

func (g *errGroup) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}
