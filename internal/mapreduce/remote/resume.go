package remote

// Session resume: surviving transport loss without losing the session.
//
// A Conn is an endpoint identity — worker id, session token, frame
// accounting — that can outlive the byte stream carrying it. When
// EnableResume is called (by both sides, immediately after the
// handshake, before any other frame moves), every subsequent frame is
// counted in both directions and every written frame is copied into a
// bounded retransmit ring. On a transport error:
//
//   - the worker redials the coordinator with jittered exponential
//     backoff and sends a resume hello carrying its worker id, session
//     token, and received-frame count;
//   - the coordinator's accept loop routes the hello to the existing
//     Conn, which verifies the token, answers with its own
//     received-frame count, and swaps in the new transport;
//   - each side prunes its ring to the frames the peer confirms and
//     replays the rest, in order, before any new frame may be written.
//
// The engine above never observes the blip: ReadFrame and WriteFrame
// simply complete on the replacement transport. Recovery refuses two
// things by design: timeouts (deadline-based aborts must keep their
// fail-fast meaning) and frames that have fallen out of the bounded
// ring (the peer was gone longer than the ring could cover — the
// caller escalates to the checkpoint/reseed path, which needs no
// transport-level help).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// resumeRingFrames / resumeRingBytes bound the retransmit ring. A
	// peer that reconnects needing frames already pruned is refused and
	// falls back to the reseed path, so the ring trades memory for how
	// much un-acknowledged traffic a blip may span.
	resumeRingFrames = 1024
	resumeRingBytes  = 8 << 20

	// resumeHandshakeTimeout bounds each resume hello/welcome exchange
	// so a half-dead replacement socket cannot wedge recovery.
	resumeHandshakeTimeout = 5 * time.Second
)

// errResumeRefused marks a permanent refusal from the peer (bad token,
// pruned ring, retired session): redialing again cannot help.
var errResumeRefused = errors.New("remote: resume refused by peer")

// ResumeConfig enables session resume on one endpoint.
type ResumeConfig struct {
	// Token is the session token minted by the coordinator at handshake;
	// a resume hello must present it.
	Token uint64
	// WorkerID names the session in resume hellos.
	WorkerID int
	// Dial, when non-nil, makes this the redialing side (the worker): on
	// transport loss the endpoint dials a replacement connection and
	// re-attaches. When nil, the endpoint waits — up to Grace — for the
	// peer to re-attach through Reattach.
	Dial func() (net.Conn, error)
	// Attempts / BaseDelay / MaxDelay shape the redial backoff
	// (defaults: 8 attempts, 50ms doubling to 1s, ±25% jitter).
	Attempts  int
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed feeds the deterministic jitter so chaos tests replay exactly.
	Seed uint64
	// Grace bounds how long the waiting side holds a broken session open
	// for re-attachment before surfacing the original transport error
	// (default 10s).
	Grace time.Duration
}

// resumeState is the per-Conn resume machinery. The ring fields (sent,
// ring, ringLo, ringBytes) are guarded by the Conn's write lock, since
// every mutation happens on the write path or under it during replay;
// rcvd is read-path-only but loaded from handshakes, so it is atomic.
type resumeState struct {
	cfg ResumeConfig

	// off retires the session: no more recovery, re-attachment refused.
	off atomic.Bool

	// sent counts frames appended to the ring since the session began;
	// ring[i] is frame number ringLo+i+1. Guarded by Conn.wmu.
	sent      uint64
	ring      [][]byte
	ringLo    uint64
	ringBytes int

	// rcvd counts frames this endpoint has fully delivered to its
	// caller; the peer replays everything after it.
	rcvd atomic.Uint64

	// mu single-flights recovery: reader and writers can fail on the
	// same dead transport concurrently, but only one runs the redial or
	// re-attach wait; the rest observe the swapped transport and retry.
	// Lock order: mu before Conn.wmu, never the reverse.
	mu sync.Mutex

	// waiting counts goroutines parked in recovery; the coordinator's
	// health monitor reads it (via Conn.Recovering) to hold the grace
	// window before escalating to reseed.
	waiting atomic.Int32

	reconnects atomic.Int64
	replayed   atomic.Int64
}

// EnableResume turns on session resume for this endpoint. Both sides
// must call it at the same protocol point — immediately after the
// handshake — so their frame counts align. Calling it at most once,
// before any concurrent frame traffic, is the caller's contract.
func (c *Conn) EnableResume(cfg ResumeConfig) {
	if cfg.Attempts <= 0 {
		cfg.Attempts = 8
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 50 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = time.Second
	}
	if cfg.Grace <= 0 {
		cfg.Grace = 10 * time.Second
	}
	c.res.Store(&resumeState{cfg: cfg})
}

// ShutdownResume retires the session without closing the transport:
// later transport errors surface immediately instead of triggering
// recovery, and re-attachment is refused. The coordinator calls it on
// every connection at cluster close, so the shutdown byes are
// fail-fast rather than grace-window waits.
func (c *Conn) ShutdownResume() {
	if rs := c.res.Load(); rs != nil {
		rs.off.Store(true)
	}
}

// Reconnects returns how many times this endpoint's session has
// re-attached to a replacement transport.
func (c *Conn) Reconnects() int64 {
	if rs := c.res.Load(); rs != nil {
		return rs.reconnects.Load()
	}
	return 0
}

// FramesReplayed returns how many ring frames this endpoint has
// re-sent across reconnects.
func (c *Conn) FramesReplayed() int64 {
	if rs := c.res.Load(); rs != nil {
		return rs.replayed.Load()
	}
	return 0
}

// Recovering reports whether a goroutine is currently parked in this
// endpoint's recovery (redialing, or holding the grace window for the
// peer to re-attach). The health monitor treats a recovering worker
// like a suspected-but-probed one: no dead escalation while the grace
// window runs.
func (c *Conn) Recovering() bool {
	rs := c.res.Load()
	return rs != nil && rs.waiting.Load() > 0
}

// appendLocked copies one outgoing frame into the retransmit ring,
// pruning the oldest frames past the ring bounds (always keeping the
// newest). Called with Conn.wmu held, before the frame is written, so
// a frame that dies mid-write is already replayable.
func (rs *resumeState) appendLocked(payload []byte) {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	rs.ring = append(rs.ring, cp)
	rs.sent++
	rs.ringBytes += len(cp)
	for len(rs.ring) > 1 && (len(rs.ring) > resumeRingFrames || rs.ringBytes > resumeRingBytes) {
		rs.ringBytes -= len(rs.ring[0])
		rs.ring[0] = nil
		rs.ring = rs.ring[1:]
		rs.ringLo++
	}
}

// pruneLocked drops ring frames the peer has confirmed received.
// Called with Conn.wmu held.
func (rs *resumeState) pruneLocked(peerRcvd uint64) {
	for rs.ringLo < peerRcvd && len(rs.ring) > 0 {
		rs.ringBytes -= len(rs.ring[0])
		rs.ring[0] = nil
		rs.ring = rs.ring[1:]
		rs.ringLo++
	}
}

// replayLocked re-sends every ring frame after peerRcvd on tr, raw (no
// fault hooks — replay is the recovery mechanism itself, not new
// traffic). Called with Conn.wmu held so no fresh frame can interleave
// ahead of the replayed ones.
func (rs *resumeState) replayLocked(c *Conn, tr *transport, peerRcvd uint64) (int, error) {
	rs.pruneLocked(peerRcvd)
	n := 0
	for _, payload := range rs.ring {
		if err := c.writeFrameTo(tr, payload, false); err != nil {
			return n, err
		}
		n++
	}
	if err := tr.bw.Flush(); err != nil {
		return n, err
	}
	rs.replayed.Add(int64(n))
	return n, nil
}

// recoverable reports whether err on a frame read/write should trigger
// recovery instead of surfacing. Timeouts keep their fail-fast meaning
// (poll timeouts, abort-deadline expiries), a closed or retired
// session never recovers, and the coordinator side never blocks a
// heartbeat pulse on the grace window — the ring replays the ping
// after re-attachment anyway.
func (c *Conn) recoverable(err error, pulse bool) bool {
	rs := c.res.Load()
	if rs == nil || rs.off.Load() || c.closed.Load() {
		return false
	}
	if err == ErrPollTimeout || err == errStalled {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false
	}
	if pulse && rs.cfg.Dial == nil {
		return false
	}
	return true
}

// recover replaces the failed transport: the dialing side redials with
// backoff, the waiting side holds the grace window for the peer to
// re-attach. Single-flighted; a second goroutine failing on the same
// transport waits and then observes the swap.
func (c *Conn) recover(failed *transport) error {
	rs := c.res.Load()
	rs.waiting.Add(1)
	defer rs.waiting.Add(-1)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if c.tr.Load() != failed {
		return nil // another goroutine already recovered
	}
	failed.c.Close()
	if rs.cfg.Dial != nil {
		return c.redialLocked(rs)
	}
	return c.awaitReattachLocked(rs, failed)
}

// redialLocked is the worker side of recovery: dial, resume-handshake,
// install, replay — with jittered exponential backoff between
// attempts. Called with rs.mu held.
func (c *Conn) redialLocked(rs *resumeState) error {
	var lastErr error = fmt.Errorf("remote: no reconnect attempts configured")
	for a := 0; a < rs.cfg.Attempts; a++ {
		if a > 0 {
			time.Sleep(Backoff(a-1, rs.cfg.BaseDelay, rs.cfg.MaxDelay, rs.cfg.Seed))
		}
		if c.closed.Load() || rs.off.Load() {
			return fmt.Errorf("remote: session closed during reconnect")
		}
		nc, err := rs.cfg.Dial()
		if err != nil {
			lastErr = err
			continue
		}
		tr := newTransport(nc)
		peerRcvd, err := c.resumeHandshake(rs, tr)
		if err != nil {
			nc.Close()
			if errors.Is(err, errResumeRefused) {
				return err
			}
			lastErr = err
			continue
		}
		c.wmu.Lock()
		if peerRcvd < rs.ringLo || peerRcvd > rs.sent {
			c.wmu.Unlock()
			nc.Close()
			return fmt.Errorf("remote: resume window exceeded: peer received %d, ring covers [%d,%d]", peerRcvd, rs.ringLo, rs.sent)
		}
		c.tr.Load().c.Close()
		c.tr.Store(tr)
		_, rerr := rs.replayLocked(c, tr, peerRcvd)
		c.wmu.Unlock()
		if rerr != nil {
			nc.Close()
			lastErr = rerr
			continue
		}
		rs.reconnects.Add(1)
		return nil
	}
	return fmt.Errorf("remote: reconnect failed after %d attempts: %w", rs.cfg.Attempts, lastErr)
}

// resumeHandshake runs the worker's side of the re-attach exchange on
// a fresh transport: send the resume hello, await the coordinator's
// resume welcome carrying its received-frame count.
func (c *Conn) resumeHandshake(rs *resumeState, tr *transport) (uint64, error) {
	tr.c.SetDeadline(time.Now().Add(resumeHandshakeTimeout))
	defer tr.c.SetDeadline(time.Time{})
	hello := []byte{byte(MsgHello)}
	hello = AppendUvarint(hello, Proto)
	hello = append(hello, helloFlagResumeCapable|helloFlagResume)
	hello = AppendUvarint(hello, uint64(rs.cfg.WorkerID))
	hello = AppendUvarint(hello, rs.cfg.Token)
	hello = AppendUvarint(hello, rs.rcvd.Load())
	if err := writeRawFrame(tr, hello); err != nil {
		return 0, err
	}
	payload, err := readRawFrame(tr)
	if err != nil {
		return 0, err
	}
	cur := NewCursor(payload)
	switch t := MsgType(cur.Byte()); t {
	case MsgWelcome:
	case MsgError:
		cur.Uvarint() // sequence field, zero in handshake refusals
		return 0, fmt.Errorf("%w: %s", errResumeRefused, cur.String())
	default:
		return 0, fmt.Errorf("remote: expected resume welcome, got %v", t)
	}
	if v := cur.Uvarint(); v != Proto {
		return 0, fmt.Errorf("remote: protocol version mismatch on resume: %d vs %d", v, Proto)
	}
	peerRcvd := cur.Uvarint()
	if err := cur.Err(); err != nil {
		return 0, fmt.Errorf("remote: malformed resume welcome: %w", err)
	}
	return peerRcvd, nil
}

// awaitReattachLocked is the waiting (coordinator) side of recovery:
// hold the session open for up to Grace while the accept loop feeds a
// replacement transport through Reattach. Called with rs.mu held;
// Reattach takes only Conn.wmu, so the wait and the re-attach cannot
// deadlock.
func (c *Conn) awaitReattachLocked(rs *resumeState, failed *transport) error {
	deadline := time.Now().Add(rs.cfg.Grace)
	for {
		if c.closed.Load() || rs.off.Load() {
			return fmt.Errorf("remote: session closed")
		}
		if c.tr.Load() != failed {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("remote: reconnect grace window (%v) expired", rs.cfg.Grace)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Reattach is the coordinator's half of session resume: verify the
// token, answer with our received-frame count, install nc as the
// session's transport, and replay every un-confirmed ring frame. It
// returns the number of frames replayed. On error the caller should
// refuse the peer (RefuseResume) — the session itself stays in
// whatever state it was.
func (c *Conn) Reattach(nc net.Conn, token, peerRcvd uint64) (int, error) {
	rs := c.res.Load()
	if rs == nil || rs.off.Load() || c.closed.Load() {
		return 0, errors.New("session retired")
	}
	if token != rs.cfg.Token {
		return 0, errors.New("session token mismatch")
	}
	tr := newTransport(nc)
	// Unblock any writer wedged mid-write on the dead transport before
	// taking the write lock it holds.
	c.tr.Load().c.Close()
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if peerRcvd < rs.ringLo || peerRcvd > rs.sent {
		return 0, fmt.Errorf("resume window exceeded: peer received %d, ring covers [%d,%d]", peerRcvd, rs.ringLo, rs.sent)
	}
	welcome := []byte{byte(MsgWelcome)}
	welcome = AppendUvarint(welcome, Proto)
	welcome = AppendUvarint(welcome, rs.rcvd.Load())
	nc.SetWriteDeadline(time.Now().Add(resumeHandshakeTimeout))
	if err := writeRawFrame(tr, welcome); err != nil {
		return 0, err
	}
	nc.SetWriteDeadline(time.Time{})
	c.tr.Store(tr)
	n, err := rs.replayLocked(c, tr, peerRcvd)
	if err != nil {
		return n, err
	}
	rs.reconnects.Add(1)
	return n, nil
}

// RefuseResume answers a resume hello that cannot be honored: a raw
// MsgError frame with the reason, then close. The worker treats it as
// permanent and stops redialing.
func RefuseResume(nc net.Conn, reason string) {
	tr := newTransport(nc)
	buf := []byte{byte(MsgError)}
	buf = AppendUvarint(buf, 0)
	buf = AppendString(buf, reason)
	nc.SetWriteDeadline(time.Now().Add(resumeHandshakeTimeout))
	writeRawFrame(tr, buf)
	nc.Close()
}

// writeRawFrame writes one frame on tr outside the Conn's counting and
// fault machinery — handshake traffic only.
func writeRawFrame(tr *transport, payload []byte) error {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := tr.bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := tr.bw.Write(payload); err != nil {
		return err
	}
	return tr.bw.Flush()
}

// readRawFrame reads one frame from tr outside the Conn's counting and
// fault machinery — handshake traffic only.
func readRawFrame(tr *transport) ([]byte, error) {
	n, err := binary.ReadUvarint(tr.br)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("remote: frame of %d bytes exceeds the %d byte limit", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(tr.br, payload); err != nil {
		return nil, fmt.Errorf("remote: truncated frame: %w", err)
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("remote: empty frame")
	}
	return payload, nil
}

// Backoff returns the delay before retry number attempt (0-based):
// base doubling per attempt, capped at max, with deterministic ±25%
// jitter derived from seed so seeded chaos runs replay exactly.
func Backoff(attempt int, base, max time.Duration, seed uint64) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	quarter := int64(d / 4)
	if quarter > 0 {
		h := mix64(seed + uint64(attempt)*0x9e3779b97f4a7c15)
		d += time.Duration(int64(h%uint64(2*quarter)) - quarter)
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
