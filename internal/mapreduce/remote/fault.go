// Deterministic fault injection for the framed transport. A Fault is
// armed on one Conn endpoint and counts the frames that endpoint moves
// in a single direction; when the count reaches the trigger it severs
// the connection (simulating a worker death observed mid-stream),
// stalls the frame (simulating a network hiccup or a hung process), or
// delays it. Counting one direction only keeps the trigger
// deterministic: reads and writes interleave differently run to run,
// but the k-th frame written to a given peer is always the same frame
// for a fixed job and seed. Heartbeat pongs are exempt in both
// directions (they travel via WritePulse and are skipped by ReadFrame's
// post-read charge), so arming heartbeats does not shift fault points.
package remote

import (
	"fmt"
	"sync/atomic"
	"time"
)

// FaultOp selects what an armed Fault does when it triggers.
type FaultOp int

const (
	// FaultSever closes the connection, so both the blocked reader and
	// every later writer observe a transport error — exactly what a
	// SIGKILLed worker process produces, without the process.
	FaultSever FaultOp = iota
	// FaultDelay stalls the triggering frame for Delay and then lets
	// traffic continue; it exercises the slow-worker paths (abort
	// backstop deadlines, straggler speculation) without killing
	// anyone. With Repeat set it fires on the triggering frame and
	// every later one — a worker that is uniformly slow rather than
	// hiccuping once.
	FaultDelay
	// FaultStall is the gray failure: from the triggering frame on, the
	// endpoint stops moving frames in *both* directions without closing
	// the connection — the peer sees an open, silent socket, which no
	// transport error will ever report. Blocked goroutines release with
	// an error when the local endpoint is closed, or silently resume
	// after Delay if Delay is nonzero (a stall that heals).
	FaultStall
	// FaultCut severs the connection *mid-frame*: the triggering write
	// ships the frame's real length prefix and the first CutBytes
	// payload bytes, then cuts — the peer reads a frame that dies
	// partway through its payload, the torn-segment shape a network cut
	// between two TCP segments produces. Write-direction only.
	FaultCut
)

// Fault is one armed failure. AfterWrites and AfterReads are 1-based
// frame triggers for their direction: AfterWrites = k fires in place of
// the k-th WriteFrame on the armed endpoint, AfterReads = k in place of
// the k-th ReadFrame. Zero leaves a direction unarmed. A Fault fires at
// most once (a severed connection keeps failing on its own afterwards;
// a stalled one keeps holding frames), except FaultDelay with Repeat,
// which delays every frame from the trigger on.
type Fault struct {
	Op          FaultOp
	AfterWrites int
	AfterReads  int
	Delay       time.Duration
	Repeat      bool
	// CutBytes is how many payload bytes a FaultCut ships before
	// severing (clamped to the triggering frame's length).
	CutBytes int

	writes  atomic.Int64
	reads   atomic.Int64
	fired   atomic.Bool
	stalled atomic.Bool
}

// errSevered is what the armed endpoint reports once a FaultSever has
// triggered; later frames on the closed connection fail with ordinary
// transport errors from the socket.
var errSevered = fmt.Errorf("remote: injected fault severed the connection")

// errStalled is what a goroutine blocked on an injected stall reports
// once the local endpoint is closed out from under it.
var errStalled = fmt.Errorf("remote: injected stall released by close")

// errCutFrame is fire's signal back to the write path that a FaultCut
// triggered: the writer ships the partial frame and severs itself.
var errCutFrame = fmt.Errorf("remote: injected fault cut the frame")

func (f *Fault) beforeWrite(c *Conn) error {
	if f.stalled.Load() {
		return f.hold(c)
	}
	if f.AfterWrites <= 0 {
		return nil
	}
	if f.writes.Add(1) < int64(f.AfterWrites) {
		return nil
	}
	return f.fire(c)
}

func (f *Fault) beforeRead(c *Conn) error {
	if f.stalled.Load() {
		return f.hold(c)
	}
	if f.AfterReads <= 0 {
		return nil
	}
	if f.reads.Add(1) < int64(f.AfterReads) {
		return nil
	}
	return f.fire(c)
}

// holdIfStalled is the pulse-path check: heartbeat writes are exempt
// from frame counting but must still freeze once a stall has fired —
// a hung worker that kept heartbeating would never look hung.
func (f *Fault) holdIfStalled(c *Conn) error {
	if f.stalled.Load() {
		return f.hold(c)
	}
	return nil
}

func (f *Fault) fire(c *Conn) error {
	if f.Op == FaultDelay {
		if f.Repeat || f.fired.CompareAndSwap(false, true) {
			time.Sleep(f.Delay)
		}
		return nil
	}
	if !f.fired.CompareAndSwap(false, true) {
		if f.Op == FaultStall {
			return f.hold(c)
		}
		// Already fired. A plain severed socket keeps failing on its own,
		// so there is nothing to add — and a resume-enabled session that
		// re-attached a fresh transport must see it flow freely, not be
		// re-poisoned by a stale verdict.
		return nil
	}
	switch f.Op {
	case FaultStall:
		f.stalled.Store(true)
		return f.hold(c)
	case FaultCut:
		return errCutFrame
	default:
		// Sever the transport the way a network cut would: a
		// resume-enabled session keeps its identity and may re-attach, a
		// plain connection dies for good.
		c.sever()
		return errSevered
	}
}

// hold blocks the calling goroutine for as long as the stall is in
// effect: until the local Conn is closed (error) or, when Delay is
// nonzero, until Delay has elapsed since the hold began (the stall
// heals and the frame proceeds).
func (f *Fault) hold(c *Conn) error {
	var deadline time.Time
	if f.Delay > 0 {
		deadline = time.Now().Add(f.Delay)
	}
	for {
		if c.Closed() {
			return errStalled
		}
		if !f.stalled.Load() {
			return nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			f.stalled.Store(false)
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Arm installs a fault on this endpoint. Passing nil disarms. Test
// instrumentation only — nothing in the production paths arms faults.
func (c *Conn) Arm(f *Fault) { c.fault.Store(f) }

// FaultPoint derives a deterministic frame index in [lo, hi) from a
// seed (SplitMix64 finalizer), so a fault matrix keyed by seed
// reproduces the exact same failure point on every run and every
// machine.
func FaultPoint(seed int64, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	x := mix64(uint64(seed))
	return lo + int(x%uint64(hi-lo))
}

// mix64 is the SplitMix64 finalizer: the deterministic hash behind
// both fault points and reconnect-backoff jitter.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
