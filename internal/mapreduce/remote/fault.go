// Deterministic fault injection for the framed transport. A Fault is
// armed on one Conn endpoint and counts the frames that endpoint moves
// in a single direction; when the count reaches the trigger it severs
// the connection (simulating a worker death observed mid-stream) or
// stalls it once (simulating a network hiccup). Counting one direction
// only keeps the trigger deterministic: reads and writes interleave
// differently run to run, but the k-th frame written to a given peer is
// always the same frame for a fixed job and seed.
package remote

import (
	"fmt"
	"sync/atomic"
	"time"
)

// FaultOp selects what an armed Fault does when it triggers.
type FaultOp int

const (
	// FaultSever closes the connection, so both the blocked reader and
	// every later writer observe a transport error — exactly what a
	// SIGKILLed worker process produces, without the process.
	FaultSever FaultOp = iota
	// FaultDelay stalls the triggering frame once for Delay and then
	// lets traffic continue; it exercises the slow-worker paths (abort
	// backstop deadlines) without killing anyone.
	FaultDelay
)

// Fault is one armed failure. AfterWrites and AfterReads are 1-based
// frame triggers for their direction: AfterWrites = k fires in place of
// the k-th WriteFrame on the armed endpoint, AfterReads = k in place of
// the k-th ReadFrame. Zero leaves a direction unarmed. A Fault fires at
// most once (a severed connection keeps failing on its own afterwards).
type Fault struct {
	Op          FaultOp
	AfterWrites int
	AfterReads  int
	Delay       time.Duration

	writes atomic.Int64
	reads  atomic.Int64
	fired  atomic.Bool
}

// errSevered is what the armed endpoint reports once a FaultSever has
// triggered; later frames on the closed connection fail with ordinary
// transport errors from the socket.
var errSevered = fmt.Errorf("remote: injected fault severed the connection")

func (f *Fault) beforeWrite(c *Conn) error {
	if f.AfterWrites <= 0 {
		return nil
	}
	if f.writes.Add(1) < int64(f.AfterWrites) {
		return nil
	}
	return f.fire(c)
}

func (f *Fault) beforeRead(c *Conn) error {
	if f.AfterReads <= 0 {
		return nil
	}
	if f.reads.Add(1) < int64(f.AfterReads) {
		return nil
	}
	return f.fire(c)
}

func (f *Fault) fire(c *Conn) error {
	if !f.fired.CompareAndSwap(false, true) {
		if f.Op == FaultSever {
			return errSevered
		}
		return nil
	}
	switch f.Op {
	case FaultDelay:
		time.Sleep(f.Delay)
		return nil
	default:
		c.Close()
		return errSevered
	}
}

// Arm installs a fault on this endpoint. Passing nil disarms. Test
// instrumentation only — nothing in the production paths arms faults.
func (c *Conn) Arm(f *Fault) { c.fault.Store(f) }

// FaultPoint derives a deterministic frame index in [lo, hi) from a
// seed (SplitMix64 finalizer), so a fault matrix keyed by seed
// reproduces the exact same failure point on every run and every
// machine.
func FaultPoint(seed int64, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	x := uint64(seed) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return lo + int(x%uint64(hi-lo))
}
