package remote

import (
	"io"
	"net"
	"sync"
	"testing"
)

// pipePair returns two framed endpoints of an in-memory connection.
func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := pipePair(t)
	payloads := [][]byte{
		{byte(MsgFlush)},
		append([]byte{byte(MsgBucket)}, make([]byte, 100_000)...),
		AppendString([]byte{byte(MsgError)}, "boom"),
	}
	go func() {
		for _, p := range payloads {
			if err := a.WriteFrame(p); err != nil {
				t.Error(err)
				return
			}
		}
		a.Close()
	}()
	for i, want := range payloads {
		got, err := b.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(got) != len(want) || got[0] != want[0] {
			t.Fatalf("frame %d: got %d bytes type %v, want %d bytes type %v",
				i, len(got), MsgType(got[0]), len(want), MsgType(want[0]))
		}
	}
	if _, err := b.ReadFrame(); err != io.EOF {
		t.Fatalf("after close: got %v, want io.EOF", err)
	}
	if a.BytesOut() == 0 || a.BytesOut() != b.BytesIn() {
		t.Fatalf("byte counters disagree: out=%d in=%d", a.BytesOut(), b.BytesIn())
	}
}

func TestConcurrentWritersDoNotInterleave(t *testing.T) {
	a, b := pipePair(t)
	const writers, frames = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each writer sends frames filled with its own id; any
			// interleaving inside a frame corrupts the fill.
			body := make([]byte, 1+337)
			body[0] = byte(MsgBucket)
			for i := range body[1:] {
				body[1+i] = byte(w)
			}
			for i := 0; i < frames; i++ {
				if err := a.WriteFrame(body); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		a.Close()
		close(done)
	}()
	n := 0
	for {
		p, err := b.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		w := p[1]
		for _, by := range p[1:] {
			if by != w {
				t.Fatalf("interleaved frame: fill %d contains %d", w, by)
			}
		}
		n++
	}
	<-done
	if n != writers*frames {
		t.Fatalf("read %d frames, want %d", n, writers*frames)
	}
}

func TestHandshake(t *testing.T) {
	a, b := pipePair(t) // a: worker side, b: coordinator side
	errc := make(chan error, 1)
	go func() {
		if err := AwaitHello(b); err != nil {
			errc <- err
			return
		}
		errc <- Welcome(b, 2, 5)
	}()
	if err := Hello(a); err != nil {
		t.Fatal(err)
	}
	id, n, err := AwaitWelcome(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if id != 2 || n != 5 {
		t.Fatalf("welcome decoded as worker %d of %d, want 2 of 5", id, n)
	}
}

func TestCursorLatchesErrors(t *testing.T) {
	cur := NewCursor([]byte{0x05}) // claims a 5-byte field with no bytes
	if b := cur.Bytes(); b != nil {
		t.Fatalf("truncated field returned %v", b)
	}
	if cur.Err() == nil {
		t.Fatal("cursor did not latch the truncation")
	}
	if v := cur.Uvarint(); v != 0 {
		t.Fatalf("post-error read returned %d", v)
	}
}

func TestOwnerCoversAllWorkers(t *testing.T) {
	seen := map[int]bool{}
	for p := 0; p < 12; p++ {
		w := Owner(p, 3)
		if w < 0 || w >= 3 {
			t.Fatalf("partition %d assigned to worker %d of 3", p, w)
		}
		seen[w] = true
	}
	if len(seen) != 3 {
		t.Fatalf("round-robin left workers idle: %v", seen)
	}
}
