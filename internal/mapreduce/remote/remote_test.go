package remote

import (
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipePair returns two framed endpoints of an in-memory connection.
func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := pipePair(t)
	payloads := [][]byte{
		{byte(MsgFlush)},
		append([]byte{byte(MsgBucket)}, make([]byte, 100_000)...),
		AppendString([]byte{byte(MsgError)}, "boom"),
	}
	go func() {
		for _, p := range payloads {
			if err := a.WriteFrame(p); err != nil {
				t.Error(err)
				return
			}
		}
		a.Close()
	}()
	for i, want := range payloads {
		got, err := b.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(got) != len(want) || got[0] != want[0] {
			t.Fatalf("frame %d: got %d bytes type %v, want %d bytes type %v",
				i, len(got), MsgType(got[0]), len(want), MsgType(want[0]))
		}
	}
	if _, err := b.ReadFrame(); err != io.EOF {
		t.Fatalf("after close: got %v, want io.EOF", err)
	}
	if a.BytesOut() == 0 || a.BytesOut() != b.BytesIn() {
		t.Fatalf("byte counters disagree: out=%d in=%d", a.BytesOut(), b.BytesIn())
	}
}

func TestConcurrentWritersDoNotInterleave(t *testing.T) {
	a, b := pipePair(t)
	const writers, frames = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each writer sends frames filled with its own id; any
			// interleaving inside a frame corrupts the fill.
			body := make([]byte, 1+337)
			body[0] = byte(MsgBucket)
			for i := range body[1:] {
				body[1+i] = byte(w)
			}
			for i := 0; i < frames; i++ {
				if err := a.WriteFrame(body); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		a.Close()
		close(done)
	}()
	n := 0
	for {
		p, err := b.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		w := p[1]
		for _, by := range p[1:] {
			if by != w {
				t.Fatalf("interleaved frame: fill %d contains %d", w, by)
			}
		}
		n++
	}
	<-done
	if n != writers*frames {
		t.Fatalf("read %d frames, want %d", n, writers*frames)
	}
}

func TestHandshake(t *testing.T) {
	a, b := pipePair(t) // a: worker side, b: coordinator side
	errc := make(chan error, 1)
	go func() {
		hi, err := AwaitHello(b)
		if err != nil {
			errc <- err
			return
		}
		if !hi.ResumeCapable || hi.Resume {
			errc <- fmt.Errorf("hello decoded as capable=%v resume=%v, want capable, not resuming", hi.ResumeCapable, hi.Resume)
			return
		}
		errc <- Welcome(b, 2, 5, 250*time.Millisecond, 42, false)
	}()
	if err := Hello(a, true); err != nil {
		t.Fatal(err)
	}
	info, err := AwaitWelcome(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if info.WorkerID != 2 || info.NumWorkers != 5 {
		t.Fatalf("welcome decoded as worker %d of %d, want 2 of 5", info.WorkerID, info.NumWorkers)
	}
	if info.HeartbeatEvery != 250*time.Millisecond {
		t.Fatalf("welcome decoded heartbeat %v, want 250ms", info.HeartbeatEvery)
	}
}

func TestPollFrameTimesOutWithoutConsuming(t *testing.T) {
	a, b := pipePair(t)
	if _, err := b.PollFrame(20 * time.Millisecond); err != ErrPollTimeout {
		t.Fatalf("idle poll: got %v, want ErrPollTimeout", err)
	}
	go a.WriteFrame([]byte{byte(MsgFlush)})
	var got []byte
	var err error
	for i := 0; i < 100; i++ {
		got, err = b.PollFrame(50 * time.Millisecond)
		if err != ErrPollTimeout {
			break
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	if MsgType(got[0]) != MsgFlush {
		t.Fatalf("poll consumed the wrong frame: %v", MsgType(got[0]))
	}
	// The timed-out polls must not have corrupted the stream: a normal
	// read still works.
	go a.WriteFrame([]byte{byte(MsgBye)})
	got, err = b.ReadFrame()
	if err != nil || MsgType(got[0]) != MsgBye {
		t.Fatalf("post-poll read: %v %v", got, err)
	}
}

func TestFaultStallBlocksBothDirectionsUntilClose(t *testing.T) {
	a, b := pipePair(t)
	f := &Fault{Op: FaultStall, AfterWrites: 2}
	a.Arm(f)
	go b.ReadFrame() // drain so the synchronous pipe write completes
	if err := a.WriteFrame([]byte{byte(MsgFlush)}); err != nil {
		t.Fatal(err)
	}
	// The second write trips the stall: it must block, not error, and
	// the read direction plus the pulse path must freeze too.
	results := make(chan error, 3)
	go func() { results <- a.WriteFrame([]byte{byte(MsgFlush)}) }()
	go func() { _, err := a.ReadFrame(); results <- err }()
	go func() { results <- a.WritePulse([]byte{byte(MsgPong)}) }()
	select {
	case err := <-results:
		t.Fatalf("stalled frame completed: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	a.Close()
	for i := 0; i < 3; i++ {
		select {
		case err := <-results:
			if err == nil {
				t.Fatal("stalled frame reported success after close")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("stalled goroutine did not release on close")
		}
	}
}

func TestFaultDelayRepeatFiresEveryFrame(t *testing.T) {
	a, b := pipePair(t)
	f := &Fault{Op: FaultDelay, AfterWrites: 1, Delay: 20 * time.Millisecond, Repeat: true}
	a.Arm(f)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 3; i++ {
			b.ReadFrame()
		}
		close(done)
	}()
	start := time.Now()
	for i := 0; i < 3; i++ {
		if err := a.WriteFrame([]byte{byte(MsgFlush)}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Fatalf("3 delayed frames took %v, want >= 60ms", d)
	}
}

func TestCursorLatchesErrors(t *testing.T) {
	cur := NewCursor([]byte{0x05}) // claims a 5-byte field with no bytes
	if b := cur.Bytes(); b != nil {
		t.Fatalf("truncated field returned %v", b)
	}
	if cur.Err() == nil {
		t.Fatal("cursor did not latch the truncation")
	}
	if v := cur.Uvarint(); v != 0 {
		t.Fatalf("post-error read returned %d", v)
	}
}

func TestOwnerCoversAllWorkers(t *testing.T) {
	seen := map[int]bool{}
	for p := 0; p < 12; p++ {
		w := Owner(p, 3)
		if w < 0 || w >= 3 {
			t.Fatalf("partition %d assigned to worker %d of 3", p, w)
		}
		seen[w] = true
	}
	if len(seen) != 3 {
		t.Fatalf("round-robin left workers idle: %v", seen)
	}
}
