package remote

import (
	"net"
	"testing"
	"time"
)

// TestBackoffDeterministicBounds pins the redial schedule: same
// (attempt, seed) always draws the same delay, every delay stays within
// +-25% of the capped doubling curve, and the floor is 1ms even for
// degenerate inputs.
func TestBackoffDeterministicBounds(t *testing.T) {
	const base, max = 50 * time.Millisecond, time.Second
	for seed := uint64(1); seed <= 5; seed++ {
		for a := 0; a < 12; a++ {
			d := Backoff(a, base, max, seed)
			if d2 := Backoff(a, base, max, seed); d2 != d {
				t.Fatalf("attempt %d seed %d: nondeterministic backoff %v vs %v", a, seed, d, d2)
			}
			ideal := base
			for i := 0; i < a && ideal < max; i++ {
				ideal *= 2
			}
			if ideal > max {
				ideal = max
			}
			if lo, hi := ideal-ideal/4, ideal+ideal/4; d < lo || d > hi {
				t.Fatalf("attempt %d seed %d: backoff %v outside [%v, %v]", a, seed, d, lo, hi)
			}
		}
	}
	if d := Backoff(0, -1, -1, 9); d < time.Millisecond {
		t.Fatalf("degenerate inputs broke the 1ms floor: %v", d)
	}
	if d := Backoff(40, base, max, 3); d > max+max/4 {
		t.Fatalf("deep attempt escaped the cap: %v", d)
	}
}

// TestResumeSeverRedialReattach is the protocol-level round trip over
// real loopback TCP: a resume-enabled pair loses its transport
// mid-stream, the client side redials, the server side reattaches the
// new socket by token, and both directions deliver every frame exactly
// once, in order, with the un-acked suffix replayed from the ring.
func TestResumeSeverRedialReattach(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	const token, workerID = uint64(0xfeedbeef), 3

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	client := NewConn(nc)
	defer client.Close()
	sc, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	server := NewConn(sc)
	defer server.Close()

	client.EnableResume(ResumeConfig{
		Token: token, WorkerID: workerID,
		Dial:     func() (net.Conn, error) { return net.DialTimeout("tcp", addr, 2*time.Second) },
		Attempts: 8, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: 1,
	})
	server.EnableResume(ResumeConfig{Token: token, WorkerID: workerID, Grace: 5 * time.Second})

	// The server side accepts the redial and routes it back into the
	// session via Reattach, exactly as the coordinator's accept loop does.
	reattached := make(chan int, 1)
	go func() {
		nc2, err := ln.Accept()
		if err != nil {
			return
		}
		c2 := NewConn(nc2)
		hi, err := AwaitHello(c2)
		if err != nil || !hi.Resume || hi.Token != token || hi.WorkerID != workerID {
			t.Errorf("redial hello: %+v err=%v", hi, err)
			nc2.Close()
			return
		}
		n, err := server.Reattach(nc2, hi.Token, hi.Received)
		if err != nil {
			t.Errorf("reattach: %v", err)
			nc2.Close()
			return
		}
		reattached <- n
	}()

	const frames = 40
	recv := make(chan byte, frames)
	go func() {
		for {
			p, err := client.ReadFrame()
			if err != nil {
				close(recv)
				return
			}
			recv <- p[1]
		}
	}()

	for i := 0; i < frames; i++ {
		if i == frames/2 {
			// Tear the transport out from under the session, directly —
			// both sides must recover without surfacing an error.
			server.sever()
		}
		if err := server.WriteFrame([]byte{byte(MsgBucket), byte(i)}); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}

	for i := 0; i < frames; i++ {
		select {
		case b, ok := <-recv:
			if !ok {
				t.Fatalf("client stream ended after %d frames", i)
			}
			if b != byte(i) {
				t.Fatalf("frame %d arrived as %d: reorder or loss across reattach", i, b)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("frame %d never arrived", i)
		}
	}
	select {
	case n := <-reattached:
		t.Logf("reattach replayed %d frames", n)
	case <-time.After(10 * time.Second):
		t.Fatal("reattach never completed")
	}
	if client.Reconnects() < 1 {
		t.Fatal("client absorbed the sever without recording a reconnect")
	}
}
