// Package remote is the wire layer of the distributed MapReduce
// runtime: length-prefixed frames over a byte stream (TCP in
// production, loopback or pipes in tests), the coordinator/worker
// handshake, and the message vocabulary the two sides exchange. It
// knows nothing about keys, values, or jobs — payload encoding beyond
// the fixed header fields belongs to the engine (internal/mapreduce),
// which owns the typed codecs. Keeping the package this small means the
// protocol can be unit-tested without an engine and the engine can be
// tested without sockets.
//
// Framing: every message is one frame — a uvarint payload length
// followed by the payload, whose first byte is the message type. A
// frame is the atomic unit of interleaving: writers serialize whole
// frames under the connection's lock, so a bucket from one map task
// never interleaves with another's, and readers need no resynchronization.
//
// Session resume (resume.go): a Conn is an endpoint identity that can
// outlive its transport. When resume is enabled after the handshake,
// both sides number the frames they exchange and keep a bounded
// retransmit ring of sent frames; a transport error makes the worker
// redial and re-attach by worker id + session token, and each side
// replays the frames the other had not yet received. The engine above
// never sees the blip — its ReadFrame/WriteFrame simply succeed on the
// replacement transport.
package remote

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proto is the protocol version exchanged in the handshake. A
// coordinator and worker built from different engine revisions refuse
// to pair rather than diverge silently. Version 2 added the heartbeat
// interval to the welcome and the ping/pong/shed messages. Version 3
// switched bulk pair payloads to versioned codec-v2 blobs and added the
// wire-compression byte to the job header. Version 4 added the
// capability flags to the hello, the session token to the welcome, and
// the resume hello/welcome forms that re-attach a redialed transport.
const Proto = 4

// MsgType identifies one protocol message. The direction annotations
// are the only ones that occur; receiving a type from the wrong
// direction is a protocol error.
type MsgType byte

const (
	// MsgHello (worker → coordinator) opens a connection: proto version
	// and capability flags. The resume form carries the worker id,
	// session token, and received-frame count of the session it
	// re-attaches to.
	MsgHello MsgType = 1 + iota
	// MsgWelcome (coordinator → worker) completes the handshake: proto
	// version, worker id, worker count, heartbeat interval, session
	// token. The resume form carries only the coordinator's
	// received-frame count.
	MsgWelcome
	// MsgJobStart (coordinator → worker) announces one job: sequence
	// number, job name, mode, split/partition geometry, codec ids, and
	// the job parameter blob.
	MsgJobStart
	// MsgBucket carries one pre-partitioned bucket of intermediate
	// pairs: coordinator → worker for buckets the coordinator's map
	// phase produced (or relays), worker → coordinator for chained-mode
	// buckets addressed to a partition another worker owns.
	MsgBucket
	// MsgMapDone (worker → coordinator, chained mode) reports that the
	// worker finished mapping its resident partitions (all its MsgBucket
	// frames precede it on the connection).
	MsgMapDone
	// MsgFlush (coordinator → worker) seals ingestion for the job: every
	// bucket addressed to the worker has been delivered; group, reduce,
	// and report.
	MsgFlush
	// MsgReduced (worker → coordinator) streams one partition's reduce
	// output when the coordinator asked for the output back.
	MsgReduced
	// MsgJobDone (worker → coordinator) closes the worker's side of a
	// job: reduce statistics, per-partition resident record counts, and
	// the worker's counter snapshot.
	MsgJobDone
	// MsgFetch (coordinator → worker) asks for the resident output
	// partitions of an earlier job.
	MsgFetch
	// MsgPart (worker → coordinator) streams one resident partition in
	// response to MsgFetch; MsgFetchDone follows the last one.
	MsgPart
	// MsgFetchDone (worker → coordinator) ends a fetch reply.
	MsgFetchDone
	// MsgDrop (coordinator → worker) frees the resident output of an
	// earlier job (Dataset.Recycle's remote half). No reply.
	MsgDrop
	// MsgError (worker → coordinator) reports a fatal job error; the
	// worker closes the connection after sending it. The coordinator
	// also sends it raw to refuse a resume attempt.
	MsgError
	// MsgBye (coordinator → worker) ends the session; the worker exits
	// its serve loop cleanly.
	MsgBye
	// MsgAbort (coordinator → worker) cancels the named in-flight job
	// after a sibling worker died: discard the job's partial shuffle
	// state and any output retained under its sequence number, then
	// acknowledge. The round is latched — the session and every resident
	// dataset of earlier jobs survive.
	MsgAbort
	// MsgAborted (worker → coordinator) acknowledges MsgAbort. It is the
	// last frame the worker sends for the aborted sequence number, so
	// the coordinator can discard everything it reads up to it.
	MsgAborted
	// MsgCkpt (worker → coordinator) mirrors one retained partition at
	// the round's flush barrier: sequence number, partition, pair count,
	// and the encoded pair blob. The coordinator's mirror is what
	// recovery re-seeds lost partitions from.
	MsgCkpt
	// MsgSeed (coordinator → worker) installs one recovered partition on
	// the worker that now owns it (same layout as MsgCkpt). Ordered
	// before the retried job's MsgJobStart on the same connection, so no
	// acknowledgement is needed.
	MsgSeed
	// MsgPing (coordinator → worker) probes a worker that has gone
	// quiet: answer with MsgPong from whatever loop currently owns the
	// connection's read side.
	MsgPing
	// MsgPong (worker → coordinator) is the heartbeat: the current job
	// sequence number, phase, completed-partition count, completed
	// partition ids, and records emitted so far. Workers send it
	// unsolicited on the interval the welcome announced, and immediately
	// in response to MsgPing. Pongs travel outside the fault-injection
	// frame count so seeded fault points stay stable.
	MsgPong
	// MsgShed (coordinator → worker) tells the previous owner of a
	// migrated resident partition to drop its now-superseded copy:
	// sequence number, partition. No reply.
	MsgShed
)

// String names the message type for error text.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgWelcome:
		return "welcome"
	case MsgJobStart:
		return "job-start"
	case MsgBucket:
		return "bucket"
	case MsgMapDone:
		return "map-done"
	case MsgFlush:
		return "flush"
	case MsgReduced:
		return "reduced"
	case MsgJobDone:
		return "job-done"
	case MsgFetch:
		return "fetch"
	case MsgPart:
		return "part"
	case MsgFetchDone:
		return "fetch-done"
	case MsgDrop:
		return "drop"
	case MsgError:
		return "error"
	case MsgBye:
		return "bye"
	case MsgAbort:
		return "abort"
	case MsgAborted:
		return "aborted"
	case MsgCkpt:
		return "checkpoint"
	case MsgSeed:
		return "seed"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgShed:
		return "shed"
	}
	return fmt.Sprintf("msg(%d)", byte(t))
}

// maxFrame bounds a single frame so a corrupted length prefix cannot
// drive an allocation of arbitrary size. 1 GiB comfortably holds the
// largest realistic partition frame.
const maxFrame = 1 << 30

// JobMode selects how a worker sources a job's intermediate pairs.
type JobMode byte

const (
	// ModeFlat: the coordinator's map phase streams every bucket over
	// the connection.
	ModeFlat JobMode = iota
	// ModeChained: the worker maps its resident input partitions from an
	// earlier job's output; only cross-partition pairs travel (relayed
	// through the coordinator).
	ModeChained
)

// transport is one byte stream carrying the connection: the socket and
// its buffered reader/writer. A Conn holds exactly one live transport
// at a time; session resume replaces it wholesale, so no transport
// state survives a reconnect except the Conn-level frame accounting.
type transport struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func newTransport(c net.Conn) *transport {
	return &transport{
		c:  c,
		br: bufio.NewReaderSize(c, 1<<16),
		bw: bufio.NewWriterSize(c, 1<<16),
	}
}

// Conn is one framed connection endpoint. Reads and writes are
// independently safe: any number of goroutines may WriteFrame (whole
// frames serialize under the write lock), while a single reader owns
// ReadFrame. BytesIn/BytesOut count frame bytes in both directions —
// the engine's RemoteBytesIn/RemoteBytesOut stats snapshot them.
type Conn struct {
	// tr is the current transport. It is replaced (never mutated) by
	// session resume; readers load it once per frame and writers once
	// per frame under wmu.
	tr atomic.Pointer[transport]

	wmu      sync.Mutex
	lenBuf   [binary.MaxVarintLen64]byte
	bytesIn  atomic.Int64
	bytesOut atomic.Int64

	// fault, when armed, injects a deterministic failure into this
	// endpoint's frame stream (see fault.go). Nil in production.
	fault atomic.Pointer[Fault]

	// lastRead is the unixnano timestamp of the last successfully read
	// frame — the raw signal the coordinator's health monitor works
	// from: any frame a worker sends (pong or payload) proves liveness.
	lastRead atomic.Int64

	// pollMu serializes BreakPoll against PollFrame's peek phase, so a
	// break can only ever expire the non-consuming Peek — never a frame
	// that has already started arriving.
	pollMu sync.Mutex
	inPoll bool

	// res, when non-nil, makes this endpoint survive transport loss by
	// session resume (see resume.go). Enabled once, right after the
	// handshake, before any counted frame moves.
	res atomic.Pointer[resumeState]

	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// NewConn wraps a network connection in the framed protocol.
func NewConn(c net.Conn) *Conn {
	conn := &Conn{}
	conn.tr.Store(newTransport(c))
	return conn
}

// RemoteAddr names the peer, for error messages.
func (c *Conn) RemoteAddr() string { return c.tr.Load().c.RemoteAddr().String() }

// BytesIn returns the cumulative payload bytes read from the peer.
func (c *Conn) BytesIn() int64 { return c.bytesIn.Load() }

// BytesOut returns the cumulative payload bytes written to the peer.
func (c *Conn) BytesOut() int64 { return c.bytesOut.Load() }

// LastRead returns the time the last complete frame was read from the
// peer, or the zero time if none has been. Any frame counts: a silent
// peer is one whose connection has moved nothing toward us.
func (c *Conn) LastRead() time.Time {
	ns := c.lastRead.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Closed reports whether Close has been called on this endpoint. An
// armed stall fault polls it so an injected hang releases its blocked
// goroutines when the local endpoint is torn down.
func (c *Conn) Closed() bool { return c.closed.Load() }

// sever kills the endpoint's byte stream the way a real network cut
// would: a resume-enabled endpoint loses only its current transport
// (the session survives and may re-attach), a plain one is closed for
// good — the pre-resume behavior every legacy fault test pins.
func (c *Conn) sever() {
	if c.res.Load() != nil {
		c.tr.Load().c.Close()
		return
	}
	c.Close()
}

// writeFrameTo appends one length-prefixed frame to tr's write buffer,
// optionally flushing. Callers hold wmu.
func (c *Conn) writeFrameTo(tr *transport, payload []byte, flush bool) error {
	n := binary.PutUvarint(c.lenBuf[:], uint64(len(payload)))
	if _, err := tr.bw.Write(c.lenBuf[:n]); err != nil {
		return err
	}
	if _, err := tr.bw.Write(payload); err != nil {
		return err
	}
	if flush {
		if err := tr.bw.Flush(); err != nil {
			return err
		}
	}
	c.bytesOut.Add(int64(n + len(payload)))
	return nil
}

// cutFrameTo is FaultCut's trigger action: ship the frame's length
// prefix and the first CutBytes payload bytes, flush, and sever — the
// peer reads a frame that dies mid-payload, exactly what a connection
// cut between two TCP segments produces. Callers hold wmu.
func (c *Conn) cutFrameTo(tr *transport, f *Fault, payload []byte) error {
	k := f.CutBytes
	if k < 0 {
		k = 0
	}
	if k > len(payload) {
		k = len(payload)
	}
	n := binary.PutUvarint(c.lenBuf[:], uint64(len(payload)))
	tr.bw.Write(c.lenBuf[:n])
	tr.bw.Write(payload[:k])
	tr.bw.Flush()
	c.sever()
	return errSevered
}

// writeFrame is the shared body of the three write entry points. pulse
// frames skip the armed fault's frame count (holdIfStalled only).
func (c *Conn) writeFrame(payload []byte, flush, pulse bool) error {
	c.wmu.Lock()
	tr := c.tr.Load()
	if rs := c.res.Load(); rs != nil {
		rs.appendLocked(payload)
	}
	var err error
	if f := c.fault.Load(); f != nil {
		if pulse {
			err = f.holdIfStalled(c)
		} else {
			err = f.beforeWrite(c)
		}
		if err == errCutFrame {
			err = c.cutFrameTo(tr, f, payload)
		}
	}
	if err == nil {
		err = c.writeFrameTo(tr, payload, flush)
	}
	c.wmu.Unlock()
	if err == nil || !c.recoverable(err, pulse) {
		return err
	}
	// Resume-enabled and the transport failed: the frame is already in
	// the retransmit ring, so a successful recovery has delivered it (or
	// queued it on the replacement transport) — report success.
	if rerr := c.recover(tr); rerr != nil {
		return err
	}
	return nil
}

// WriteFrame sends one whole frame (the payload's first byte must be
// the message type) and flushes it, so a frame is visible to the peer
// as soon as the call returns — the protocol's barriers (flush, done)
// rely on that.
func (c *Conn) WriteFrame(payload []byte) error {
	return c.writeFrame(payload, true, false)
}

// WriteFrameBuffered appends one frame to the connection's write buffer
// without forcing a flush; the frame reaches the wire with the next
// WriteFrame on this connection (or earlier, if the buffer fills). For
// frames that are always followed by a flushed one — the checkpoint
// stream ahead of its job-done — this makes a round's checkpoint cost
// one syscall instead of one per partition. Armed faults count a
// buffered frame exactly like a flushed one, so FaultPoint indices
// stay stable across both write paths.
func (c *Conn) WriteFrameBuffered(payload []byte) error {
	return c.writeFrame(payload, false, false)
}

// WritePulse sends one whole frame like WriteFrame but outside the
// armed fault's frame count: heartbeat pongs ride this path so arming a
// seeded fault does not shift its trigger index by however many pongs
// the ticker happened to emit. A fault that has already fired as a
// stall still blocks the pulse — a stalled endpoint must fall silent in
// both directions, heartbeats included, or it would never look hung.
func (c *Conn) WritePulse(payload []byte) error {
	return c.writeFrame(payload, true, true)
}

// readFrameFrom reads one frame from tr. Only the connection's single
// reader calls it.
func (c *Conn) readFrameFrom(tr *transport) ([]byte, error) {
	f := c.fault.Load()
	if f != nil {
		if err := f.holdIfStalled(c); err != nil {
			return nil, err
		}
	}
	n, err := binary.ReadUvarint(tr.br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("remote: reading frame length: %w", err)
	}
	if n > maxFrame {
		return nil, fmt.Errorf("remote: frame of %d bytes exceeds the %d byte limit", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(tr.br, payload); err != nil {
		return nil, fmt.Errorf("remote: truncated frame: %w", err)
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("remote: empty frame")
	}
	c.bytesIn.Add(uvarintLen(n) + int64(n))
	c.lastRead.Store(time.Now().UnixNano())
	// The fault count is charged after the frame type is known, so
	// heartbeat pongs stay outside it — the read-direction mirror of
	// WritePulse. A seeded AfterReads index thus means "the k-th protocol
	// frame" no matter how many pongs interleave. A fault that fires here
	// withholds the frame it triggered on, exactly as if it had fired
	// before the read.
	if f != nil && MsgType(payload[0]) != MsgPong {
		if err := f.beforeRead(c); err != nil {
			return nil, err
		}
	}
	// Received-frame accounting happens only after the frame is truly
	// delivered to the caller: a frame withheld by the fault charge above
	// must be replayed by the peer after a resume, so it must not count.
	if rs := c.res.Load(); rs != nil {
		rs.rcvd.Add(1)
	}
	return payload, nil
}

// ReadFrame reads the next frame payload. The returned slice is owned
// by the caller. io.EOF surfaces only on a clean frame boundary; a
// partial frame reports a truncation error. On a resume-enabled
// endpoint a transport error triggers recovery (worker: redial,
// coordinator: await re-attach) and the read transparently continues on
// the replacement transport.
func (c *Conn) ReadFrame() ([]byte, error) {
	for {
		tr := c.tr.Load()
		payload, err := c.readFrameFrom(tr)
		if err == nil {
			return payload, nil
		}
		if !c.recoverable(err, false) {
			return nil, err
		}
		if rerr := c.recover(tr); rerr != nil {
			return nil, err
		}
	}
}

// ErrPollTimeout is PollFrame's no-frame-yet result.
var ErrPollTimeout = fmt.Errorf("remote: poll timeout")

// PollFrame reads the next frame if one arrives within d, returning
// ErrPollTimeout otherwise without consuming anything. It lets a worker
// goroutine that is mostly busy (reducing) service pings and aborts
// between units of work: a timed-out poll leaves the stream exactly as
// it was, because only the non-consuming Peek runs under the deadline —
// once a frame has started arriving the deadline is cleared and the
// frame is read to completion.
func (c *Conn) PollFrame(d time.Duration) ([]byte, error) {
	tr := c.tr.Load()
	if tr.br.Buffered() == 0 {
		c.pollMu.Lock()
		c.inPoll = true
		tr.c.SetReadDeadline(time.Now().Add(d))
		c.pollMu.Unlock()
		_, err := tr.br.Peek(1)
		c.pollMu.Lock()
		c.inPoll = false
		tr.c.SetReadDeadline(time.Time{})
		c.pollMu.Unlock()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil, ErrPollTimeout
			}
			return nil, err
		}
	}
	return c.ReadFrame()
}

// BreakPoll wakes a concurrent PollFrame out of its peek phase
// immediately, so a poll loop that has been told to stop does not hold
// its caller for the rest of the poll interval. The woken PollFrame
// returns ErrPollTimeout. Racing a frame that has already started
// arriving is safe: once PollFrame leaves the peek phase it clears the
// deadline under pollMu, so the break is a no-op and the frame is read
// to completion.
func (c *Conn) BreakPoll() {
	c.pollMu.Lock()
	if c.inPoll {
		c.tr.Load().c.SetReadDeadline(time.Now())
	}
	c.pollMu.Unlock()
}

// Close tears the connection down. Safe to call from any goroutine and
// idempotent; a blocked ReadFrame or WriteFrame on another goroutine
// returns with an error once the underlying connection closes. Closing
// also retires the session: a resume-enabled endpoint stops recovering
// and refuses re-attachment.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		c.closeErr = c.tr.Load().c.Close()
	})
	return c.closeErr
}

// SetReadDeadline bounds blocked reads on the underlying connection;
// the zero time clears the bound. The coordinator arms it as the
// recovery backstop: a worker that neither acknowledges an abort nor
// dies within the window is declared dead by timeout instead of
// wedging the cluster. Deadline expiries are timeouts, which session
// resume deliberately does not treat as transport loss.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.tr.Load().c.SetReadDeadline(t) }

// SetWriteDeadline bounds blocked writes on the underlying connection;
// the zero time clears the bound. Armed around abort frames so a hung
// peer whose receive window filled up cannot wedge recovery from the
// write side.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.tr.Load().c.SetWriteDeadline(t) }

func uvarintLen(v uint64) int64 {
	n := int64(1)
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// --- payload encoding helpers -----------------------------------------
//
// Payloads are built with append-style helpers mirroring encoding/binary
// and consumed with a cursor that latches its first error, so message
// builders and parsers read as straight-line field lists.

// AppendUvarint appends v to buf.
func AppendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

// AppendString appends a uvarint length and the string bytes.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendBytes appends a uvarint length and the raw bytes.
func AppendBytes(buf []byte, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// Cursor decodes a payload field by field. The zero value over a
// payload is ready to use; Err reports the first malformed field and
// every later read returns zero values.
type Cursor struct {
	data []byte
	err  error
}

// NewCursor returns a cursor over payload.
func NewCursor(payload []byte) *Cursor { return &Cursor{data: payload} }

// Err returns the first decode error.
func (c *Cursor) Err() error { return c.err }

// Rest returns the undecoded remainder of the payload.
func (c *Cursor) Rest() []byte { return c.data }

func (c *Cursor) fail() {
	if c.err == nil {
		c.err = fmt.Errorf("remote: truncated message payload")
	}
}

// Byte reads one raw byte.
func (c *Cursor) Byte() byte {
	if c.err != nil || len(c.data) < 1 {
		c.fail()
		return 0
	}
	b := c.data[0]
	c.data = c.data[1:]
	return b
}

// Uvarint reads one unsigned varint.
func (c *Cursor) Uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.data)
	if n <= 0 {
		c.fail()
		return 0
	}
	c.data = c.data[n:]
	return v
}

// String reads a length-prefixed string.
func (c *Cursor) String() string { return string(c.Bytes()) }

// Bytes reads a length-prefixed byte field. The returned slice aliases
// the payload.
func (c *Cursor) Bytes() []byte {
	n := c.Uvarint()
	if c.err != nil || uint64(len(c.data)) < n {
		c.fail()
		return nil
	}
	b := c.data[:n]
	c.data = c.data[n:]
	return b
}

// --- handshake --------------------------------------------------------

// Hello capability flags (the byte after the proto version).
const (
	// helloFlagResumeCapable: the worker can redial and resume its
	// session if the coordinator enables it in the welcome.
	helloFlagResumeCapable = 1 << 0
	// helloFlagResume: this hello re-attaches an existing session; the
	// worker id, session token, and received-frame count follow.
	helloFlagResume = 1 << 1
)

// Hello sends the worker's opening message. resumeCapable announces
// that the worker is willing to redial and resume its session; the
// coordinator decides in the welcome whether resume is actually on.
func Hello(c *Conn, resumeCapable bool) error {
	buf := AppendUvarint([]byte{byte(MsgHello)}, Proto)
	var flags byte
	if resumeCapable {
		flags |= helloFlagResumeCapable
	}
	return c.WriteFrame(append(buf, flags))
}

// HelloInfo is the parsed form of a worker's hello: either a fresh join
// or a resume of an existing session.
type HelloInfo struct {
	// ResumeCapable reports whether the worker is willing to redial and
	// resume (fresh hellos only).
	ResumeCapable bool
	// Resume marks a re-attach hello; the remaining fields identify the
	// session.
	Resume   bool
	WorkerID int
	Token    uint64
	// Received is how many counted frames the worker had read from the
	// coordinator before the transport died — the coordinator replays
	// everything after it.
	Received uint64
}

// AwaitHello reads and validates a worker's hello.
func AwaitHello(c *Conn) (HelloInfo, error) {
	payload, err := c.ReadFrame()
	if err != nil {
		return HelloInfo{}, err
	}
	cur := NewCursor(payload)
	if t := MsgType(cur.Byte()); t != MsgHello {
		return HelloInfo{}, fmt.Errorf("remote: expected hello, got %v", t)
	}
	if v := cur.Uvarint(); v != Proto || cur.Err() != nil {
		return HelloInfo{}, fmt.Errorf("remote: protocol version mismatch: worker speaks %d, coordinator %d", v, Proto)
	}
	flags := cur.Byte()
	info := HelloInfo{
		ResumeCapable: flags&helloFlagResumeCapable != 0,
		Resume:        flags&helloFlagResume != 0,
	}
	if info.Resume {
		info.WorkerID = int(cur.Uvarint())
		info.Token = cur.Uvarint()
		info.Received = cur.Uvarint()
	}
	if err := cur.Err(); err != nil {
		return HelloInfo{}, fmt.Errorf("remote: malformed hello: %w", err)
	}
	return info, nil
}

// Welcome sends the coordinator's handshake reply. heartbeatEvery is
// the unsolicited-pong interval the worker should keep (zero or
// negative disables heartbeats on this connection). token is the
// session token a resume hello must present; resume tells the worker
// whether session resume is enabled on this connection.
func Welcome(c *Conn, workerID, numWorkers int, heartbeatEvery time.Duration, token uint64, resume bool) error {
	if heartbeatEvery < 0 {
		heartbeatEvery = 0
	}
	buf := []byte{byte(MsgWelcome)}
	buf = AppendUvarint(buf, Proto)
	buf = AppendUvarint(buf, uint64(workerID))
	buf = AppendUvarint(buf, uint64(numWorkers))
	buf = AppendUvarint(buf, uint64(heartbeatEvery))
	buf = AppendUvarint(buf, token)
	if resume {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return c.WriteFrame(buf)
}

// WelcomeInfo is what the coordinator's welcome tells a worker about
// its place in the cluster.
type WelcomeInfo struct {
	WorkerID   int
	NumWorkers int
	// HeartbeatEvery is the interval at which the worker should send
	// unsolicited MsgPong frames; zero disables them.
	HeartbeatEvery time.Duration
	// Token is the session token minted for this connection; a resume
	// hello presents it to prove it re-attaches this session.
	Token uint64
	// Resume reports whether the coordinator enabled session resume on
	// this connection (the worker announced capability and the cluster
	// has a reconnect grace window).
	Resume bool
}

// AwaitWelcome reads and validates the coordinator's welcome.
func AwaitWelcome(c *Conn) (WelcomeInfo, error) {
	payload, err := c.ReadFrame()
	if err != nil {
		return WelcomeInfo{}, err
	}
	cur := NewCursor(payload)
	if t := MsgType(cur.Byte()); t != MsgWelcome {
		return WelcomeInfo{}, fmt.Errorf("remote: expected welcome, got %v", t)
	}
	if v := cur.Uvarint(); v != Proto {
		return WelcomeInfo{}, fmt.Errorf("remote: protocol version mismatch: coordinator speaks %d, worker %d", v, Proto)
	}
	var info WelcomeInfo
	info.WorkerID = int(cur.Uvarint())
	info.NumWorkers = int(cur.Uvarint())
	info.HeartbeatEvery = time.Duration(cur.Uvarint())
	info.Token = cur.Uvarint()
	info.Resume = cur.Byte() != 0
	if err := cur.Err(); err != nil {
		return WelcomeInfo{}, err
	}
	if info.NumWorkers < 1 || info.WorkerID < 0 || info.WorkerID >= info.NumWorkers {
		return WelcomeInfo{}, fmt.Errorf("remote: malformed welcome: worker %d of %d", info.WorkerID, info.NumWorkers)
	}
	return info, nil
}

// Owner maps a reduce partition to the worker that owns it: the fixed
// round-robin rule both sides apply, so partition assignment never
// travels beyond the worker count in the handshake.
func Owner(part, numWorkers int) int { return part % numWorkers }
