package mapreduce

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/extsort"
	"repro/internal/mapreduce/remote"
)

// Codec v2 property tests: every supported key/value lane must survive
// the encode/decode round trip bit-exactly, uncompressed and behind
// block compression, and the v1 row format must keep decoding through
// the same entry points (old checkpoint files depend on it).

// binPoint exercises the BinaryMarshaler bypass: its kind (a struct
// with fields) would be rejected by the column lanes, and a named
// integer with these methods must keep them rather than being
// reinterpreted by kind.
type binPoint struct{ X, Y int32 }

func (p binPoint) MarshalBinary() ([]byte, error) {
	return fmt.Appendf(nil, "%d,%d", p.X, p.Y), nil
}

func (p *binPoint) UnmarshalBinary(data []byte) error {
	_, err := fmt.Sscanf(string(data), "%d,%d", &p.X, &p.Y)
	return err
}

// gobRec falls through every fast lane to the gob codec, which since
// codec v2 runs one persistent en/decoder per column stream.
type gobRec struct {
	Name string
	N    int64
}

// roundTripPairs encodes pairs uncompressed, compressed, and as v1
// rows, and requires the exact input back each way.
func roundTripPairs[K comparable, V any](t *testing.T, pairs []Pair[K, V]) {
	t.Helper()
	kc, err := resolveSpillCodec[K]()
	if err != nil {
		t.Fatal(err)
	}
	vc, err := resolveSpillCodec[V]()
	if err != nil {
		t.Fatal(err)
	}
	check := func(blob []byte, mode string) {
		t.Helper()
		cur := remote.NewCursor(blob)
		out, err := decodePairs(cur, len(pairs), kc, vc,
			make([]Pair[K, V], 0, pairCap(cur, len(pairs), kc, vc)))
		if err != nil {
			t.Fatalf("%s decode: %v", mode, err)
		}
		if len(out) != len(pairs) {
			t.Fatalf("%s decode: %d pairs, want %d", mode, len(out), len(pairs))
		}
		for i := range out {
			if !reflect.DeepEqual(out[i], pairs[i]) {
				t.Fatalf("%s decode: pair %d = %+v, want %+v", mode, i, out[i], pairs[i])
			}
		}
	}
	blob, err := encodePairs(nil, pairs, kc, vc, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	check(blob, "v2")

	var saved atomic.Int64
	cblob, err := encodePairs(nil, pairs, kc, vc, true, &saved)
	if err != nil {
		t.Fatal(err)
	}
	check(cblob, "v2-compressed")

	v1, err := encodePairsV1(nil, pairs, kc, vc)
	if err != nil {
		t.Fatal(err)
	}
	check(append([]byte{pairBlobV1}, v1...), "v1-fallback")
}

func TestCodecV2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))

	t.Run("int32-int64-sorted", func(t *testing.T) {
		pairs := make([]Pair[int32, int64], 500)
		for i := range pairs {
			pairs[i] = P(int32(i/4), rng.Int63()-rng.Int63())
		}
		roundTripPairs(t, pairs)
	})
	t.Run("int32-int32-random", func(t *testing.T) {
		pairs := make([]Pair[int32, int32], 300)
		for i := range pairs {
			pairs[i] = P(int32(rng.Uint32()), int32(rng.Uint32()))
		}
		roundTripPairs(t, pairs)
	})
	t.Run("named-int32-key", func(t *testing.T) {
		type nid int32
		pairs := make([]Pair[nid, int64], 200)
		for i := range pairs {
			pairs[i] = P(nid(rng.Int31()-rng.Int31()), int64(i))
		}
		roundTripPairs(t, pairs)
	})
	t.Run("uint64-uint32", func(t *testing.T) {
		pairs := make([]Pair[uint64, uint32], 200)
		for i := range pairs {
			pairs[i] = P(rng.Uint64(), rng.Uint32())
		}
		roundTripPairs(t, pairs)
	})
	t.Run("int-int", func(t *testing.T) {
		pairs := make([]Pair[int, int], 200)
		for i := range pairs {
			pairs[i] = P(rng.Int()-rng.Int(), rng.Int()-rng.Int())
		}
		roundTripPairs(t, pairs)
	})
	t.Run("float64-float64", func(t *testing.T) {
		pairs := make([]Pair[float64, float64], 200)
		for i := range pairs {
			pairs[i] = P(rng.NormFloat64(), rng.NormFloat64())
		}
		roundTripPairs(t, pairs)
	})
	t.Run("float32-generic-lane", func(t *testing.T) {
		pairs := make([]Pair[float32, float32], 200)
		for i := range pairs {
			pairs[i] = P(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
		}
		roundTripPairs(t, pairs)
	})
	t.Run("bool-key-and-value", func(t *testing.T) {
		pairs := make([]Pair[bool, bool], 77) // odd count: tail bits in the packed column
		for i := range pairs {
			pairs[i] = P(rng.Intn(2) == 0, rng.Intn(2) == 1)
		}
		roundTripPairs(t, pairs)
	})
	t.Run("string-keys-fmt-collisions", func(t *testing.T) {
		// Keys whose naive textual joins collide ("1 2"+"3" vs
		// "1"+"2 3"), plus empties, NULs, and heavy duplication to
		// drive the dictionary.
		base := []string{"1 2", "1", "2", "2 3", "1 2 3", "", "a\x00b", "a", "\x00b", "κλειδί"}
		pairs := make([]Pair[string, int64], 400)
		for i := range pairs {
			pairs[i] = P(base[rng.Intn(len(base))], int64(i))
		}
		roundTripPairs(t, pairs)
	})
	t.Run("string-values", func(t *testing.T) {
		pairs := make([]Pair[int32, string], 300)
		for i := range pairs {
			b := make([]byte, rng.Intn(20))
			rng.Read(b)
			pairs[i] = P(int32(i), string(b))
		}
		roundTripPairs(t, pairs)
	})
	t.Run("edge-keys-and-values", func(t *testing.T) {
		pairs := make([]Pair[[2]int32, [2]int32], 200)
		for i := range pairs {
			pairs[i] = P([2]int32{int32(i), rng.Int31()}, [2]int32{rng.Int31() - rng.Int31(), int32(i)})
		}
		roundTripPairs(t, pairs)
	})
	t.Run("empty-struct-values", func(t *testing.T) {
		pairs := make([]Pair[int32, struct{}], 150)
		for i := range pairs {
			pairs[i] = P(int32(rng.Uint32()), struct{}{})
		}
		roundTripPairs(t, pairs)
	})
	t.Run("marshaler-key", func(t *testing.T) {
		pairs := make([]Pair[binPoint, int32], 120)
		for i := range pairs {
			pairs[i] = P(binPoint{rng.Int31(), -rng.Int31()}, int32(i))
		}
		roundTripPairs(t, pairs)
	})
	t.Run("gob-values", func(t *testing.T) {
		pairs := make([]Pair[int32, gobRec], 120)
		for i := range pairs {
			pairs[i] = P(int32(i), gobRec{Name: fmt.Sprintf("rec-%d", rng.Intn(30)), N: rng.Int63()})
		}
		roundTripPairs(t, pairs)
	})
	t.Run("slice-values", func(t *testing.T) {
		pairs := make([]Pair[int32, []int32], 100)
		for i := range pairs {
			vs := make([]int32, 1+rng.Intn(6))
			for j := range vs {
				vs[j] = rng.Int31() - rng.Int31()
			}
			pairs[i] = P(int32(i), vs)
		}
		roundTripPairs(t, pairs)
	})
	t.Run("empty-batch", func(t *testing.T) {
		roundTripPairs(t, []Pair[int32, int64]{})
	})
	t.Run("single-pair", func(t *testing.T) {
		roundTripPairs(t, []Pair[string, float64]{P("only", 3.25)})
	})
}

// TestCodecV2DictOverflow drives a string key column past the 64k
// dictionary cap: entries beyond it must be inlined, losslessly.
func TestCodecV2DictOverflow(t *testing.T) {
	n := dictMaxEntries + 5000
	pairs := make([]Pair[string, int32], 0, n+200)
	for i := 0; i < n; i++ {
		pairs = append(pairs, P(fmt.Sprintf("key-%07d", i), int32(i)))
	}
	// Repeats after the overflow point: early keys must still resolve
	// through the dictionary, late ones through the inline escape.
	for i := 0; i < 100; i++ {
		pairs = append(pairs, P(fmt.Sprintf("key-%07d", i*3), int32(i)))
		pairs = append(pairs, P(fmt.Sprintf("key-%07d", n-1-i), int32(i)))
	}
	roundTripPairs(t, pairs)
}

// TestCodecV2CompressionMarkers pins the compression dispatch: a
// compressible batch ships deflated with the savings counted, an
// incompressible one falls back to plain columns, and a tiny one never
// pays for a flate header.
func TestCodecV2CompressionMarkers(t *testing.T) {
	kc, _ := resolveSpillCodec[int32]()
	vc, err := resolveSpillCodec[string]()
	if err != nil {
		t.Fatal(err)
	}

	compressible := make([]Pair[int32, string], 500)
	for i := range compressible {
		compressible[i] = P(int32(i), "the same highly repetitive value text")
	}
	var saved atomic.Int64
	blob, err := encodePairs(nil, compressible, kc, vc, true, &saved)
	if err != nil {
		t.Fatal(err)
	}
	if blob[0] != pairBlobV2Flate {
		t.Fatalf("compressible batch shipped with marker 0x%02x, want flate", blob[0])
	}
	plain, _ := encodePairs(nil, compressible, kc, vc, false, nil)
	if len(blob) >= len(plain) {
		t.Fatalf("compressed blob (%dB) not smaller than plain (%dB)", len(blob), len(plain))
	}
	if saved.Load() <= 0 {
		t.Fatal("compression saved no bytes by its own accounting")
	}

	rng := rand.New(rand.NewSource(99))
	incompressible := make([]Pair[int32, string], 300)
	for i := range incompressible {
		b := make([]byte, 24)
		rng.Read(b)
		incompressible[i] = P(int32(rng.Uint32()), string(b))
	}
	saved.Store(0)
	blob, err = encodePairs(nil, incompressible, kc, vc, true, &saved)
	if err != nil {
		t.Fatal(err)
	}
	if blob[0] != pairBlobV2 {
		t.Fatalf("incompressible batch shipped with marker 0x%02x, want plain v2", blob[0])
	}
	if saved.Load() != 0 {
		t.Fatalf("incompressible batch claims %d saved bytes", saved.Load())
	}

	tiny := []Pair[int32, string]{P(int32(1), "x")}
	blob, err = encodePairs(nil, tiny, kc, vc, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if blob[0] != pairBlobV2 {
		t.Fatalf("tiny batch shipped with marker 0x%02x, want plain v2", blob[0])
	}
}

// TestCheckpointV1FileRestore restores a checkpoint laid out exactly as
// the pre-codec-v2 engine wrote it: a three-field manifest line and run
// frames whose blobs are raw v1 rows with no marker byte. The loader
// must tag and decode them transparently.
func TestCheckpointV1FileRestore(t *testing.T) {
	dir := t.TempDir()
	kc, err := resolveSpillCodec[string]()
	if err != nil {
		t.Fatal(err)
	}
	vc, err := resolveSpillCodec[int64]()
	if err != nil {
		t.Fatal(err)
	}
	const seq = 7
	want := map[int][]Pair[string, int64]{
		0: {P("alpha", int64(1)), P("beta", int64(-2)), P("", int64(40))},
		1: {P("gamma delta", int64(1<<50))},
	}
	var file []byte
	for part := 0; part < 2; part++ {
		blob, err := encodePairsV1(nil, want[part], kc, vc)
		if err != nil {
			t.Fatal(err)
		}
		file = appendCkptFrame(file, seq, ckptPart{part: part, count: len(want[part]), blob: blob})
	}
	name := fmt.Sprintf("ckpt-%016x.run", seq)
	if err := os.WriteFile(filepath.Join(dir, name), file, 0o644); err != nil {
		t.Fatal(err)
	}
	manifest := fmt.Sprintf("%d %s %d\n", seq, name, 2) // legacy three-field line
	if err := os.WriteFile(filepath.Join(dir, ckptManifestName), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}

	ck, err := loadLatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.seq != seq || len(ck.parts) != 2 {
		t.Fatalf("restored %+v, want seq %d with 2 parts", ck, seq)
	}
	for _, p := range ck.parts {
		cur := remote.NewCursor(p.blob)
		got, err := decodePairs(cur, p.count, kc, vc, nil)
		if err != nil {
			t.Fatalf("partition %d: %v", p.part, err)
		}
		if !reflect.DeepEqual(got, want[p.part]) {
			t.Fatalf("partition %d restored %+v, want %+v", p.part, got, want[p.part])
		}
	}
}

// TestSpillRunBytesShrink prices the v2 block format against the v1
// per-record framing on the benchmark shuffle shape: same records, same
// sorter, at least 2x fewer bytes on disk — and fewer still with block
// compression, with the savings counter agreeing.
func TestSpillRunBytesShrink(t *testing.T) {
	kc, _ := resolveSpillCodec[int32]()
	vc, _ := resolveSpillCodec[int64]()
	imgFn := keyImageFn[int32](keyOrderKind[int32]())
	recs := make([]spillRec[int32, int64], 20000)
	for i := range recs {
		key := int32((i * 31) % 4096)
		recs[i] = spillRec[int32, int64]{seq: uint64(i), img: imgFn(key), key: key, val: int64(i / 16)}
	}
	less := func(a, b spillRec[int32, int64]) bool {
		if a.img != b.img {
			return a.img < b.img
		}
		return a.seq < b.seq
	}
	runThrough := func(codec extsort.Codec[spillRec[int32, int64]]) int64 {
		t.Helper()
		s := extsort.New(less, codec, extsort.Config{MaxInMemory: 1024, TempDir: t.TempDir()})
		for _, r := range recs {
			if err := s.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			rec, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if rec.img != imgFn(rec.key) {
				t.Fatal("merge returned a record with a stale key image")
			}
			n++
		}
		it.Close()
		if n != len(recs) {
			t.Fatalf("merge returned %d records, want %d", n, len(recs))
		}
		if s.Runs() == 0 {
			t.Fatal("workload fit in memory; the byte comparison needs spilled runs")
		}
		return s.RunBytes()
	}

	v1 := runThrough(&spillRecCodec[int32, int64]{key: kc, val: vc, img: imgFn})
	v2 := runThrough(&spillBlockCodec[int32, int64]{key: kc, val: vc, img: imgFn})
	var saved atomic.Int64
	v2c := runThrough(&spillBlockCodec[int32, int64]{key: kc, val: vc, img: imgFn, compress: true, saved: &saved})
	t.Logf("run bytes: v1=%d v2=%d v2+flate=%d (saved counter %d)", v1, v2, v2c, saved.Load())
	if v2*2 > v1 {
		t.Fatalf("v2 runs use %d bytes, more than half the v1 %d", v2, v1)
	}
	if v2c >= v2 {
		t.Fatalf("compressed runs (%dB) not smaller than plain v2 (%dB)", v2c, v2)
	}
	// The counter tracks payload bytes; the on-disk shrink also moves
	// the frame-length varints, so the two agree only approximately.
	if shrink := v2 - v2c; saved.Load() <= 0 ||
		shrink-saved.Load() > shrink/100 || saved.Load()-shrink > shrink/100 {
		t.Fatalf("savings counter says %d bytes avoided; run bytes shrank by %d", saved.Load(), shrink)
	}
}

// TestGobStreamCodecRoundTrip pins the per-stream gob path: one
// persistent encoder's records decode in order through one persistent
// decoder (type descriptors are sent once), while the base per-record
// codec stays self-contained.
func TestGobStreamCodecRoundTrip(t *testing.T) {
	c, err := resolveSpillCodec[gobRec]()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]gobRec, 50)
	for i := range want {
		want[i] = gobRec{Name: fmt.Sprintf("n%d", i), N: int64(i * i)}
	}
	enc := c.forStream()
	var blobs [][]byte
	for _, r := range want {
		b, err := enc.enc(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, b)
	}
	// Records after the first must not repeat the type descriptor.
	if len(blobs[1]) >= len(blobs[0]) {
		t.Fatalf("stream record 1 (%dB) not smaller than record 0 (%dB); descriptor resent?", len(blobs[1]), len(blobs[0]))
	}
	dec := c.forStream()
	for i, b := range blobs {
		got, err := dec.dec(b)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got, want[i])
		}
	}
	// The base codec keeps every record self-contained (v1 blobs and
	// out-of-order decodes rely on it).
	b, err := c.enc(nil, want[3])
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.dec(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != want[3] {
		t.Fatalf("base round trip = %+v, want %+v", got, want[3])
	}
}

// TestDistWireCompressionEquivalence runs the reference job over the
// dist backend with wire compression on: output identical to the memory
// backend, measurably fewer bytes on the wire, and the savings counter
// lit.
func TestDistWireCompressionEquivalence(t *testing.T) {
	cl := startTestCluster(t, 2)
	input := int32Input()

	want, _, err := Run(context.Background(),
		Config{Mappers: 4, Reducers: 4, Name: "eq-int32"},
		input, int32Map, int32Reduce)
	if err != nil {
		t.Fatal(err)
	}

	plainCfg := distCfg4(cl, "eq-int32")
	_, plainStats, err := Run(context.Background(), plainCfg, input, int32Map, int32Reduce)
	if err != nil {
		t.Fatal(err)
	}
	if plainStats.WireBytesSaved != 0 {
		t.Fatalf("uncompressed run reports %d wire bytes saved", plainStats.WireBytesSaved)
	}

	compCfg := distCfg4(cl, "eq-int32")
	compCfg.WireCompression = true
	got, compStats, err := Run(context.Background(), compCfg, input, int32Map, int32Reduce)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("compressed dist output diverges from the memory backend")
	}
	if compStats.WireBytesSaved <= 0 {
		t.Fatal("compressed run saved no wire bytes")
	}
	if compStats.RemoteBytesOut >= plainStats.RemoteBytesOut {
		t.Fatalf("compressed run shipped %d bytes, uncompressed %d",
			compStats.RemoteBytesOut, plainStats.RemoteBytesOut)
	}
	t.Logf("wire bytes: plain=%d compressed=%d saved=%d",
		plainStats.RemoteBytesOut, compStats.RemoteBytesOut, compStats.WireBytesSaved)
}

// BenchmarkGobCodecPerRecord and BenchmarkGobCodecStream price the gob
// fallback before and after the per-stream hoist: the base codec builds
// a fresh en/decoder per record, the stream codec reuses one.
func BenchmarkGobCodecPerRecord(b *testing.B) {
	c, err := resolveSpillCodec[gobRec]()
	if err != nil {
		b.Fatal(err)
	}
	rec := gobRec{Name: "benchmark-record", N: 1 << 40}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = c.enc(buf[:0], rec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err = c.dec(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGobCodecStream(b *testing.B) {
	c, err := resolveSpillCodec[gobRec]()
	if err != nil {
		b.Fatal(err)
	}
	rec := gobRec{Name: "benchmark-record", N: 1 << 40}
	enc := c.forStream()
	dec := c.forStream()
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = enc.enc(buf[:0], rec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err = dec.dec(buf); err != nil {
			b.Fatal(err)
		}
	}
}
