package mapreduce

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestClusterModelValidate(t *testing.T) {
	if err := DefaultCluster().Validate(); err != nil {
		t.Errorf("default model invalid: %v", err)
	}
	bad := []ClusterModel{
		{Workers: 0, RoundOverhead: 1, MapThroughput: 1, ReduceThroughput: 1, ShuffleThroughput: 1},
		{Workers: 1, RoundOverhead: -1, MapThroughput: 1, ReduceThroughput: 1, ShuffleThroughput: 1},
		{Workers: 1, RoundOverhead: 1, MapThroughput: 0, ReduceThroughput: 1, ShuffleThroughput: 1},
		{Workers: 1, RoundOverhead: 1, MapThroughput: 1, ReduceThroughput: 1, ShuffleThroughput: 0},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("model %d accepted", i)
		}
	}
}

func TestEstimateJob(t *testing.T) {
	m := ClusterModel{Workers: 10, RoundOverhead: 5,
		MapThroughput: 100, ReduceThroughput: 100, ShuffleThroughput: 1000}
	s := &Stats{MapInputRecords: 2000, ShuffleRecords: 3000}
	// 5 + 2000/(10*100) + 3000/1000 + 3000/(10*100) = 5 + 2 + 3 + 3 = 13.
	if got := m.EstimateJob(s); math.Abs(got-13) > 1e-9 {
		t.Errorf("EstimateJob = %v, want 13", got)
	}
	if got := m.EstimateJob(nil); got != 5 {
		t.Errorf("EstimateJob(nil) = %v, want overhead", got)
	}
}

func TestEstimateTraceSumsRounds(t *testing.T) {
	m := DefaultCluster()
	trace := []Stats{
		{MapInputRecords: 1000, ShuffleRecords: 5000},
		{MapInputRecords: 500, ShuffleRecords: 2000},
	}
	want := m.EstimateJob(&trace[0]) + m.EstimateJob(&trace[1])
	if got := m.EstimateTrace(trace); math.Abs(got-want) > 1e-9 {
		t.Errorf("EstimateTrace = %v, want %v", got, want)
	}
	// Overhead dominates many-small-rounds workloads: 20 tiny rounds
	// must cost more than 2 rounds shuffling the same total volume.
	small := make([]Stats, 20)
	big := make([]Stats, 2)
	for i := range small {
		small[i] = Stats{ShuffleRecords: 10000}
	}
	for i := range big {
		big[i] = Stats{ShuffleRecords: 100000}
	}
	if m.EstimateTrace(small) <= m.EstimateTrace(big) {
		t.Error("per-round overhead not reflected")
	}
}

func TestDescribe(t *testing.T) {
	if d := DefaultCluster().Describe(); !strings.Contains(d, "workers") {
		t.Errorf("Describe = %q", d)
	}
}

func TestInjectedFailuresAreTransparent(t *testing.T) {
	// With failure injection the output must be identical to a clean
	// run — re-execution is invisible, like real MapReduce fault
	// tolerance.
	input := make([]Pair[int, int], 300)
	for i := range input {
		input[i] = P(i, i)
	}
	mapFn := func(k, v int, out Emitter[int, int]) error {
		out.Emit(k%17, v)
		return nil
	}
	redFn := func(k int, vs []int, out Emitter[int, int]) error {
		s := 0
		for _, v := range vs {
			s += v
		}
		out.Emit(k, s)
		return nil
	}
	clean, _, err := Run(context.Background(),
		Config{Mappers: 4, Reducers: 4}, input, mapFn, redFn)
	if err != nil {
		t.Fatal(err)
	}
	faulty, stats, err := Run(context.Background(),
		Config{Mappers: 4, Reducers: 4, FailureRate: 0.4, FailureSeed: 7, MaxAttempts: 16},
		input, mapFn, redFn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, faulty) {
		t.Error("output changed under failure injection")
	}
	if stats.MapTaskRetries+stats.ReduceTaskRetries == 0 {
		t.Error("no retries recorded at 40% failure rate")
	}
}

func TestInjectedFailuresDeterministic(t *testing.T) {
	input := []Pair[int, int]{P(1, 1), P(2, 2), P(3, 3), P(4, 4)}
	cfg := Config{Mappers: 2, Reducers: 2, FailureRate: 0.5, FailureSeed: 3}
	id := Identity[int, int]()
	cv := CollectValues[int, int]()
	_, a, err := Run(context.Background(), cfg, input, id, cv)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Run(context.Background(), cfg, input, id, cv)
	if err != nil {
		t.Fatal(err)
	}
	if a.MapTaskRetries != b.MapTaskRetries || a.ReduceTaskRetries != b.ReduceTaskRetries {
		t.Errorf("retry counts differ across identical runs: %d/%d vs %d/%d",
			a.MapTaskRetries, a.ReduceTaskRetries, b.MapTaskRetries, b.ReduceTaskRetries)
	}
}

func TestFailureRateOneExhaustsAttempts(t *testing.T) {
	input := []Pair[int, int]{P(1, 1)}
	_, _, err := Run(context.Background(),
		Config{Mappers: 1, Reducers: 1, FailureRate: 1, MaxAttempts: 3},
		input, Identity[int, int](), CollectValues[int, int]())
	if err == nil {
		t.Error("always-failing task succeeded")
	}
	if !strings.Contains(err.Error(), "attempts") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestTaskFailsPure(t *testing.T) {
	cfg := Config{FailureRate: 0.3, FailureSeed: 11}
	for phase := 0; phase < 2; phase++ {
		for task := 0; task < 20; task++ {
			for attempt := 1; attempt < 4; attempt++ {
				a := cfg.taskFails(phase, task, attempt)
				b := cfg.taskFails(phase, task, attempt)
				if a != b {
					t.Fatal("taskFails not deterministic")
				}
			}
		}
	}
	if (Config{}).taskFails(0, 0, 1) {
		t.Error("zero failure rate fails tasks")
	}
}

func TestGreedyAlgorithmSurvivesFailures(t *testing.T) {
	// End-to-end: an iterative algorithm built on the engine produces
	// identical results under injected failures. Uses the driver
	// directly with a trivial convergence loop.
	d := NewDriver(Config{Mappers: 3, Reducers: 3, FailureRate: 0.3, FailureSeed: 5, MaxAttempts: 16})
	input := []Pair[int, int]{P(1, 10), P(2, 20), P(3, 30)}
	for round := 0; round < 5; round++ {
		out, err := RunJob(context.Background(), d, "halve", input,
			func(k, v int, o Emitter[int, int]) error {
				o.Emit(k, v/2)
				return nil
			},
			func(k int, vs []int, o Emitter[int, int]) error {
				o.Emit(k, vs[0])
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		input = out
	}
	want := map[int]int{1: 0, 2: 0, 3: 0}
	for _, p := range input {
		if p.Value != want[p.Key] {
			t.Errorf("key %d = %d after halving, want 0", p.Key, p.Value)
		}
	}
	if d.Total().MapTaskRetries == 0 && d.Total().ReduceTaskRetries == 0 {
		t.Log("note: no retries occurred at this seed (acceptable but unusual)")
	}
}
