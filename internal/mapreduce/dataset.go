package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// This file makes the engine loop-aware. The paper's matching algorithms
// are iterative MapReduce: tens to hundreds of rounds over node-state
// records keyed by the same graph.NodeID with the same partitioner every
// round. Run collapses every job's output into one flat, globally sorted
// []Pair, so a round loop built on it re-hashes and re-routes every
// record between jobs — including the large majority that land straight
// back in the partition they came from. Dataset is the fix: reduce tasks
// emit into it per-partition (no global concat-and-sort barrier), and a
// subsequent job whose key type, partitioner, and partition count match
// consumes it partition-by-partition, with self-addressed pairs taking
// an identity route that skips hashing entirely.

// Dataset is a partitioned collection of pairs, the engine's currency
// between the jobs of an iterative computation. A Dataset is aligned
// when every record resides in the partition its key hashes to
// (partitionIndex(key, Partitions())); RunDS exploits alignment by
// running one map task per partition and identity-routing pairs a map
// task emits back to its own input key.
//
// Engine-produced Datasets are aligned by construction **provided the
// job's reduce function only emits keys that hash to the group key's
// partition** — trivially true for the dominant pattern of emitting the
// group key itself, which every iterative job in this repository
// follows. A reduce whose output key type differs from its group key
// type is automatically marked unaligned (it cannot satisfy the
// contract); a same-type reduce that re-keys its output must be
// followed by an explicit re-partition (see Repartition) before the
// next chained job.
type Dataset[K comparable, V any] struct {
	parts   [][]Pair[K, V]
	aligned bool
	// pool is the BufferPool the partition slices were checked out of
	// (engine-produced and MapValues-produced Datasets only; nil for
	// caller-built ones). It makes Recycle possible — it never causes
	// automatic reclamation by itself.
	pool *BufferPool
	// rem marks a worker-resident Dataset (dist backend): the records
	// live on the cluster's workers and parts holds only empty slots.
	// Len works from the per-partition counts in the handle; record
	// access requires Materialize (see dist.go).
	rem *distResident
}

// PartitionDataset hashes pairs into an aligned Dataset with the given
// partition count, preserving the input order within every partition.
// It is the entry point of an iterative computation: hash once here,
// then chain jobs with RunDS without ever re-hashing resident records.
func PartitionDataset[K comparable, V any](pairs []Pair[K, V], parts int) *Dataset[K, V] {
	if parts < 1 {
		parts = 1
	}
	return &Dataset[K, V]{parts: partitionPairs(pairs, parts), aligned: true}
}

// Partitions returns the partition count.
func (d *Dataset[K, V]) Partitions() int { return len(d.parts) }

// Aligned reports whether every record resides in the partition its key
// hashes to; only aligned Datasets chain partition-resident.
func (d *Dataset[K, V]) Aligned() bool { return d.aligned }

// Len returns the total record count. It sums the per-partition
// counters — O(partitions), never a record scan — which is what makes
// it the fixed-point test of Loop.
func (d *Dataset[K, V]) Len() int {
	if d.rem != nil {
		n := int64(0)
		for _, c := range d.rem.counts {
			n += c
		}
		return int(n)
	}
	n := 0
	for _, p := range d.parts {
		n += len(p)
	}
	return n
}

// Part returns one partition's records in resident order. Callers must
// not modify the slice.
func (d *Dataset[K, V]) Part(p int) []Pair[K, V] {
	d.mustMaterialize()
	return d.parts[p]
}

// Each calls fn for every record, partition by partition in resident
// order. The iteration order is deterministic (partitions ascending,
// records in reduce-emission order within each), but not globally
// key-sorted; order-sensitive consumers should use Collect.
func (d *Dataset[K, V]) Each(fn func(key K, value V)) {
	d.mustMaterialize()
	for _, part := range d.parts {
		for _, p := range part {
			fn(p.Key, p.Value)
		}
	}
}

// Collect flattens the Dataset into one slice sorted by key — exactly
// the normalized output Run returns, so a computation that ends in
// Collect is indistinguishable from one that never chained.
func (d *Dataset[K, V]) Collect() []Pair[K, V] {
	d.mustMaterialize()
	out := make([]Pair[K, V], 0, d.Len())
	for _, part := range d.parts {
		out = append(out, part...)
	}
	sortPairs(out)
	return out
}

// MapValues rebuilds a Dataset record by record with a key-preserving
// transform: fn returns the record's new value and whether to keep it.
// Because keys are untouched, the result keeps the input's partitioning
// and alignment — no hashing, no data movement. This is the chained
// replacement for the "rebuild the next round's input slice" loops the
// iterative algorithms used to run between jobs.
//
// fn is called sequentially (partitions ascending, resident order
// within each), so it may close over accumulator state without locking.
//
// When d carries a BufferPool (it was produced by a pooled job or a
// previous MapValues), the output partitions check out of that pool —
// in a round loop they are the very slices an earlier round's state
// returned via Recycle or Loop — and the pool travels to the output so
// the chain keeps recycling. The input d is not consumed; recycle it
// explicitly once it is dead.
func MapValues[K comparable, V1, V2 any](d *Dataset[K, V1], fn func(key K, value V1) (V2, bool)) *Dataset[K, V2] {
	d.mustMaterialize()
	out := &Dataset[K, V2]{parts: make([][]Pair[K, V2], len(d.parts)), aligned: d.aligned, pool: d.pool}
	ar := arenaFor[K, V2](d.pool, len(d.parts))
	for i, part := range d.parts {
		if len(part) == 0 {
			continue
		}
		next := ar.getPairs(i, len(part))
		for _, p := range part {
			if v2, keep := fn(p.Key, p.Value); keep {
				next = append(next, Pair[K, V2]{Key: p.Key, Value: v2})
			}
		}
		out.parts[i] = next
	}
	return out
}

// Recycle returns the Dataset's partition buffers to the BufferPool
// they were checked out of and empties the Dataset. It is the caller's
// assertion that the Dataset — and every slice into its partitions —
// is dead; the storage will back future rounds' buffers. Safe to call
// on any Dataset (a no-op without a pool) and idempotent. Only the
// Pair spines are reclaimed: values, and anything they point to, are
// untouched.
func (d *Dataset[K, V]) Recycle() {
	if d.rem != nil {
		// Worker-resident records never reached this process: release
		// them where they live.
		d.dropResident()
		d.parts = nil
		d.pool = nil
		return
	}
	if d.pool == nil {
		return
	}
	ar := arenaFor[K, V](d.pool, len(d.parts))
	for p, part := range d.parts {
		ar.putPairs(p, part)
	}
	d.parts = nil
	d.pool = nil
}

// Repartition re-hashes every record into a fresh aligned Dataset with
// the given partition count. Needed only when a job re-keyed its output
// away from the group keys, or when the next job runs with a different
// reducer count.
func (d *Dataset[K, V]) Repartition(parts int) *Dataset[K, V] {
	d.mustMaterialize()
	if parts < 1 {
		parts = 1
	}
	out := &Dataset[K, V]{parts: make([][]Pair[K, V], parts), aligned: true}
	for _, part := range d.parts {
		for _, p := range part {
			idx := partitionIndex(p.Key, parts)
			out.parts[idx] = append(out.parts[idx], p)
		}
	}
	return out
}

// keyCast returns a zero-cost converter from K1 to K2 when the two are
// the same concrete type, and nil otherwise. It is how RunDS decides at
// runtime whether the consuming job's intermediate key type matches the
// producing job's — the precondition for identity routing — without
// boxing a key per record.
func keyCast[K1, K2 comparable]() func(K1) K2 {
	f, _ := any(func(k K1) K1 { return k }).(func(K1) K2)
	return f
}

// RunDS executes one MapReduce job with a Dataset on both ends. It is
// Run with the two loop-hostile barriers removed:
//
//   - input side: when the input is aligned with the job's partitioning
//     (same key type, same partitioner, Partitions() == cfg.Reducers)
//     map tasks run one per partition, and every pair a task emits to
//     its own input key — a node's state forwarded to itself, the
//     backbone of the paper's iterative algorithms — takes an identity
//     route straight into the task's own partition bucket, skipping the
//     hash (counted in Stats.LocalRouted; hashed pairs are
//     CrossRouted). Misaligned input is collected and re-partitioned
//     exactly like Run (forced re-partition).
//   - output side: reduce tasks emit into the returned Dataset
//     per-partition; there is no global concat-and-sort barrier. The
//     output is aligned provided the reduce emits only keys hashing to
//     the group's partition (see Dataset).
//
// Config.FlatChaining forces the misaligned path for every job — the
// pre-Dataset engine behavior, kept selectable so equivalence tests and
// benchmarks can compare the two dataflows on identical semantics.
func RunDS[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	cfg Config,
	input *Dataset[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	reduceFn ReduceFunc[K2, V2, K3, V3],
) (*Dataset[K3, V3], *Stats, error) {
	if mapFn == nil {
		return nil, nil, errors.New("mapreduce: nil map function")
	}
	if reduceFn == nil {
		return nil, nil, errors.New("mapreduce: nil reduce function")
	}
	stats := newStats(cfg.Name)
	stats.MapInputRecords = int64(input.Len())
	defer stats.snapPool(cfg.Pool)()

	if cfg.Shuffle.kind() == ShuffleDist {
		out, err := runDistDS[K1, V1, K2, V2, K3, V3](ctx, cfg, input, mapFn, stats)
		return out, stats, err
	}
	if err := input.Materialize(); err != nil {
		return nil, stats, err
	}

	chained := input.aligned && input.Partitions() == cfg.reducers() && !cfg.FlatChaining

	ar := arenaFor[K2, V2](cfg.Pool, cfg.reducers())
	var backend ShuffleBackend[K2, V2]
	var err error
	phase := time.Now()
	if chained {
		backend, err = newShuffleBackend(cfg, input.Partitions(), ar)
		if err != nil {
			return nil, stats, err
		}
		defer backend.Close()
		err = runMapPhaseDS(ctx, cfg, input, mapFn, backend, ar, stats)
	} else {
		flat := input.Collect()
		splits := splitRange(len(flat), cfg.mappers())
		backend, err = newShuffleBackend(cfg, len(splits), ar)
		if err != nil {
			return nil, stats, err
		}
		defer backend.Close()
		err = runMapPhase(ctx, cfg, splits, flat, mapFn, backend, ar, stats)
	}
	stats.MapWall = time.Since(phase)
	if err != nil {
		return nil, stats, err
	}
	out, err := finishJobDS(ctx, cfg, backend, reduceFn, stats)
	return out, stats, err
}

// finishJobDS runs the shared tail of a Dataset job after its map phase:
// shuffle finalization, the per-partition reduce phase, and the output
// Dataset wrap, stamping the phase wall clocks and shuffle footprint.
//
// The output is marked aligned only when the reduce's output key type
// equals its group key type: a type-changing reduce cannot possibly
// satisfy the alignment contract (its keys hash under a different
// projection), so such Datasets are auto-demoted to unaligned and a
// chained consumer re-partitions them. Same-type reduces remain bound
// by the documented contract of emitting only keys that hash to the
// group's partition.
func finishJobDS[K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	cfg Config,
	backend ShuffleBackend[K2, V2],
	reduceFn ReduceFunc[K2, V2, K3, V3],
	stats *Stats,
) (*Dataset[K3, V3], error) {
	phase := time.Now()
	streams, err := backend.Finalize()
	stats.ShuffleWall = time.Since(phase)
	if err != nil {
		return nil, err
	}
	phase = time.Now()
	outs, err := runReduceParts(ctx, cfg, streams, reduceFn, stats)
	stats.ReduceWall = time.Since(phase)
	stats.recordShuffle(backend)
	if err != nil {
		return nil, err
	}
	out := &Dataset[K3, V3]{parts: outs, aligned: keyCast[K2, K3]() != nil, pool: cfg.Pool}
	stats.ReduceOutputRecords = int64(out.Len())
	return out, nil
}

// runMapPhaseDS is the partition-resident map phase: one task per input
// partition, identity routing for self-addressed pairs when the
// intermediate key type matches the input key type.
func runMapPhaseDS[K1 comparable, V1 any, K2 comparable, V2 any](
	ctx context.Context,
	cfg Config,
	input *Dataset[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	backend ShuffleBackend[K2, V2],
	ar *roundArena[K2, V2],
	stats *Stats,
) error {
	cast := keyCast[K1, K2]()
	grp := newErrGroup(ctx)
	for p, part := range input.parts {
		p, part := p, part
		grp.Go(func(ctx context.Context) error {
			if err := cfg.burnAttempts(0, p, stats.addMapRetry); err != nil {
				return err
			}
			em := newShuffleEmitter(backend, p, ar)
			em.selfOK = cast != nil
			for j := range part {
				if err := ctx.Err(); err != nil {
					return err
				}
				if em.selfOK {
					em.self = cast(part[j].Key)
				}
				if err := mapFn(part[j].Key, part[j].Value, em); err != nil {
					return fmt.Errorf("mapreduce: map partition %d record %d: %w", p, j, err)
				}
				if em.err != nil {
					return em.err
				}
			}
			if err := em.finish(); err != nil {
				return err
			}
			stats.addMapOutput(em.count)
			stats.addRouted(em.local, em.cross)
			return nil
		})
	}
	return grp.Wait()
}

// RunCombinedDS is RunDS with a combiner, mirroring RunCombined. With
// an aligned input the map-and-combine tasks still run one per
// partition, but combined output is always hash-routed: combining
// erases the per-record provenance the identity route keys on, so
// LocalRouted stays zero on this path.
func RunCombinedDS[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	cfg Config,
	input *Dataset[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	combineFn CombineFunc[K2, V2],
	reduceFn ReduceFunc[K2, V2, K3, V3],
) (*Dataset[K3, V3], *Stats, error) {
	if combineFn == nil {
		return RunDS(ctx, cfg, input, mapFn, reduceFn)
	}
	if mapFn == nil || reduceFn == nil {
		return nil, nil, errParams()
	}
	stats := newStats(cfg.Name)
	stats.MapInputRecords = int64(input.Len())
	defer stats.snapPool(cfg.Pool)()

	if cfg.Shuffle.kind() == ShuffleDist {
		// Combining erases the per-record provenance a worker-side
		// reduce would need to stay bit-identical, and no algorithm in
		// this repository combines; fail loudly instead of diverging.
		return nil, stats, errors.New("mapreduce: the dist shuffle backend does not support combiner jobs")
	}
	if err := input.Materialize(); err != nil {
		return nil, stats, err
	}

	chained := input.aligned && input.Partitions() == cfg.reducers() && !cfg.FlatChaining

	var backend ShuffleBackend[K2, V2]
	var err error
	var tasks [][]Pair[K1, V1]
	var offsets []int
	if chained {
		tasks = input.parts
		offsets = make([]int, len(tasks)) // partition-relative indexes
	} else {
		flat := input.Collect()
		for _, sp := range splitRange(len(flat), cfg.mappers()) {
			tasks = append(tasks, flat[sp.lo:sp.hi])
			offsets = append(offsets, sp.lo)
		}
	}
	backend, err = newShuffleBackend(cfg, len(tasks), arenaFor[K2, V2](cfg.Pool, cfg.reducers()))
	if err != nil {
		return nil, stats, err
	}
	defer backend.Close()

	phase := time.Now()
	grp := newErrGroup(ctx)
	for i, task := range tasks {
		i, task := i, task
		grp.Go(func(ctx context.Context) error {
			return combineMapTask(ctx, i, offsets[i], task, mapFn, combineFn, backend, stats)
		})
	}
	err = grp.Wait()
	stats.MapWall = time.Since(phase)
	if err != nil {
		return nil, stats, err
	}
	out, err := finishJobDS(ctx, cfg, backend, reduceFn, stats)
	return out, stats, err
}

// RunJobDS executes one Dataset-chained MapReduce job under a driver,
// counting it as a round (the Dataset analogue of RunJob).
func RunJobDS[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	d *Driver,
	name string,
	input *Dataset[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	reduceFn ReduceFunc[K2, V2, K3, V3],
) (*Dataset[K3, V3], error) {
	out, stats, err := RunDS(ctx, d.Config(name), input, mapFn, reduceFn)
	if err != nil {
		return nil, err
	}
	if err := d.Observe(stats); err != nil {
		return nil, err
	}
	return out, nil
}

// Loop drives an iterative dataflow to its fixed point: body maps each
// round's state Dataset to the next round's, and the loop stops when
// the state empties. The fixed-point test is Dataset.Len() — a sum of
// per-partition counters, not a record scan — which is sound for the
// paper's algorithms because their filter reduces emit only live
// records (a node record always carries at least one live edge).
//
// body receives the zero-based round index and may return (nil, nil)
// to stop early with the current state (any-time stopping). Jobs run
// inside body via RunJobDS count against the driver's MaxRounds, and
// Driver.Config mixes the round counter into the failure seed, so every
// round draws fresh — but reproducible — injected-failure coins. As a
// backstop for bodies that run no driver-observed job, Loop also caps
// its own round count at MaxRounds — a bound the driver budget always
// reaches first when every round runs at least one job. Loop returns
// the final state.
//
// Ownership: when body returns a fresh Dataset, the superseded state is
// consumed — Loop recycles its partition buffers into the driver's
// BufferPool, which is what lets round N+1 run in round N's memory.
// A body must therefore not retain the state Dataset (or slices into
// its partitions) across rounds; values, and anything they point to,
// remain untouched. The final state is never recycled.
//
// Fault tolerance: a round that fails to a dist worker death
// (WorkerLostError) is replayed from its entry state, as long as that
// state is still restorable — held locally, or reconstructible on the
// cluster from checkpoint mirrors (DistCluster.canRestore). This is the
// round-boundary replay hook: the engine's own job retry covers deaths
// whose inputs were checkpointed, and Loop covers the rest, because a
// round's entry state is by definition a complete cut of the
// computation. The replay budget is the cluster size (each replay
// implies at least one worker died); algorithms recover without
// changes.
func Loop[K comparable, V any](
	ctx context.Context,
	d *Driver,
	state *Dataset[K, V],
	body func(ctx context.Context, round int, state *Dataset[K, V]) (*Dataset[K, V], error),
) (*Dataset[K, V], error) {
	replays := 0
	for round := 0; state.Len() > 0; round++ {
		if err := ctx.Err(); err != nil {
			return state, err
		}
		if d.MaxRounds > 0 && round >= d.MaxRounds {
			return state, fmt.Errorf("%w (%d loop rounds without convergence)", ErrRoundLimit, round)
		}
		next, err := body(ctx, round, state)
		for err != nil && replays < state.replayBudget() && state.replayable(err) {
			replays++
			next, err = body(ctx, round, state)
		}
		if err != nil {
			return state, err
		}
		// Round boundary: commit the journal, so a coordinator restarted
		// after this point resumes from the next round rather than
		// re-running this one. Redundant with the commits Observe issued
		// for the round's jobs, and deliberately so — a body that runs
		// jobs without a driver still commits once per round.
		if cl := d.cfg.Dist; cl != nil {
			cl.journalCommit(round)
		}
		if next == nil {
			break
		}
		if next != state {
			state.Recycle()
		}
		state = next
	}
	return state, nil
}

// replayable reports whether re-running a round from this entry state
// can succeed after err: the error must be a worker loss, and a
// worker-resident state must still be reconstructible on the cluster.
func (d *Dataset[K, V]) replayable(err error) bool {
	if !isWorkerLost(err) {
		return false
	}
	if d.rem == nil {
		return true // the entry state lives on the coordinator
	}
	return d.rem.cl.canRestore(d.rem.seq)
}

// replayBudget bounds a Loop's round replays: one per worker the
// cluster could lose, with a small allowance when the state is local
// and the cluster unknown.
func (d *Dataset[K, V]) replayBudget() int {
	if d.rem != nil {
		return len(d.rem.cl.conns)
	}
	return 4
}
