package mapreduce

import (
	"context"
	"fmt"
	"time"
)

// CombineFunc locally folds the values of one intermediate key inside a
// map task, before the shuffle — Hadoop's combiner. It must be
// associative and commutative with respect to the reduce function, and
// is applied once per map split per key.
type CombineFunc[K comparable, V any] func(key K, values []V) []V

// RunCombined executes a MapReduce job like Run, but applies a combiner
// to each map split's output before the shuffle. The paper's Section 3.1
// notes that the shuffle "strongly affects the efficiency of any
// MapReduce-based implementation"; a combiner is the standard lever, and
// Stats.ShuffleRecords < Stats.MapOutputRecords measures what it saved
// (see BenchmarkAblationCombiner).
func RunCombined[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	ctx context.Context,
	cfg Config,
	input []Pair[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	combineFn CombineFunc[K2, V2],
	reduceFn ReduceFunc[K2, V2, K3, V3],
) ([]Pair[K3, V3], *Stats, error) {
	if combineFn == nil {
		return Run(ctx, cfg, input, mapFn, reduceFn)
	}
	if mapFn == nil || reduceFn == nil {
		return nil, nil, errParams()
	}
	stats := newStats(cfg.Name)
	stats.MapInputRecords = int64(len(input))
	defer stats.snapPool(cfg.Pool)()

	splits := splitRange(len(input), cfg.mappers())
	backend, err := newShuffleBackend(cfg, len(splits), arenaFor[K2, V2](cfg.Pool, cfg.reducers()))
	if err != nil {
		return nil, stats, err
	}
	defer backend.Close()

	phase := time.Now()
	grp := newErrGroup(ctx)
	for i, sp := range splits {
		i, sp := i, sp
		grp.Go(func(ctx context.Context) error {
			return combineMapTask(ctx, i, sp.lo, input[sp.lo:sp.hi], mapFn, combineFn, backend, stats)
		})
	}
	if err := grp.Wait(); err != nil {
		stats.MapWall = time.Since(phase)
		return nil, stats, err
	}
	stats.MapWall = time.Since(phase)
	phase = time.Now()
	streams, err := backend.Finalize()
	stats.ShuffleWall = time.Since(phase)
	if err != nil {
		return nil, stats, err
	}
	phase = time.Now()
	output, err := runReducePhase(ctx, cfg, streams, reduceFn, stats)
	stats.ReduceWall = time.Since(phase)
	stats.recordShuffle(backend)
	if err != nil {
		return nil, stats, err
	}
	stats.ReduceOutputRecords = int64(len(output))
	sortPairs(output)
	return output, stats, nil
}

// combineMapTask runs one map-and-combine task over a contiguous block
// of input records (a flat split, or one Dataset partition): the whole
// block buffers before combining — a combiner needs every value of a
// key that the task produced, so neither chunked feeding nor
// emission-time partitioning can apply before it runs — and only the
// combined (smaller) output is partitioned and reaches the shuffle
// backend. Combined pairs are always hash-routed (counted CrossRouted):
// combining erases the per-record provenance the identity route keys
// on. offset is the block's position in the caller's input (a flat
// split's lo bound; zero for a Dataset partition), so map errors
// report the index the caller knows.
func combineMapTask[K1 comparable, V1 any, K2 comparable, V2 any](
	ctx context.Context,
	task, offset int,
	records []Pair[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	combineFn CombineFunc[K2, V2],
	backend ShuffleBackend[K2, V2],
	stats *Stats,
) error {
	buf := &emitBuf[K2, V2]{}
	for j := range records {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := mapFn(records[j].Key, records[j].Value, buf); err != nil {
			return fmt.Errorf("mapreduce: map record %d: %w", offset+j, err)
		}
	}
	stats.addMapOutput(int64(len(buf.pairs)))
	combined := combineSplit(buf.pairs, combineFn)
	stats.addRouted(0, int64(len(combined)))
	for p, bucket := range partitionPairs(combined, backend.Partitions()) {
		if len(bucket) == 0 {
			continue
		}
		if err := backend.AddBucket(task, p, bucket); err != nil {
			return err
		}
	}
	return nil
}

// combineSplit groups one split's output by key (preserving first-seen
// key order and per-key emission order) and applies the combiner.
func combineSplit[K comparable, V any](pairs []Pair[K, V], combineFn CombineFunc[K, V]) []Pair[K, V] {
	groups := make(map[K][]V)
	var order []K
	for _, p := range pairs {
		if _, ok := groups[p.Key]; !ok {
			order = append(order, p.Key)
		}
		groups[p.Key] = append(groups[p.Key], p.Value)
	}
	var out []Pair[K, V]
	for _, k := range order {
		for _, v := range combineFn(k, groups[k]) {
			out = append(out, Pair[K, V]{Key: k, Value: v})
		}
	}
	return out
}

func errParams() error {
	return fmt.Errorf("mapreduce: nil map or reduce function")
}
