package mapreduce

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// The coordinator run journal makes the coordinator itself restartable.
// The checkpoint mirror (checkpoint.go, dist.go) lets the cluster
// survive *worker* death, but the mirror lives in coordinator memory:
// kill the coordinator and the whole multi-round run starts over. The
// journal persists the coordinator's run state — every job result the
// pipeline produced (flat outputs and resident-partition mirrors, as
// canonical encodePairs blobs) plus round-boundary commit records — to
// an append-only segment file, framed with the same uvarint-length +
// CRC-32 scheme as the checkpoint run files.
//
// Atomicity is the commit record: job records buffer in user space and
// are flushed to the OS only when a round commits, so a coordinator
// killed mid-round leaves a journal whose validated prefix ends at the
// last committed round. The loader CRC-walks the newest manifest
// segment, truncates strictly after the last commit record, and hands
// the surviving job records to the cluster as a replay queue: a
// restarted run (DistClusterOptions.Resume / -dist-resume) re-executes
// the same deterministic pipeline, and each journaled job is satisfied
// from the queue — its output decoded or its partitions re-registered
// for re-seeding onto the fresh workers — instead of being recomputed.
// The first job past the queue runs live, which is exactly "replay from
// the last committed round boundary".
//
// Segments: each coordinator incarnation appends to its own
// journal-<n>.log. A resumed incarnation replays segment A while
// re-appending every consumed record to its own segment B, so B grows
// into a self-contained copy of the run; the manifest flips to B only
// at the first commit after the replay queue drains (B never ends
// mid-history), and a crash before the flip simply resumes from A
// again. The manifest keeps the last two segments, mirroring the
// checkpoint writer's retention.

// journalManifestName is the manifest file within a journal directory.
const journalManifestName = "JOURNAL"

// journalKeepSegs bounds retained segment files: the current segment
// and the one it resumed from.
const journalKeepSegs = 2

// Journal record types (first body byte).
const (
	journalRecJob    = 1
	journalRecCommit = 2
)

// Job-record kinds: how the recorded result re-enters a resumed run.
const (
	// journalKindFlat: the job's sorted flat output, one encodePairs
	// blob, decoded straight back to the caller.
	journalKindFlat = 0
	// journalKindResident: the job's worker-resident output, one blob
	// per partition (the checkpoint-mirror image), re-registered as
	// residency with no live location so ensureResident re-seeds every
	// partition onto the resumed cluster's workers.
	journalKindResident = 1
)

// journalRecord is one journaled job result.
type journalRecord struct {
	seq    uint64
	kind   byte
	name   string
	counts []int64
	blobs  [][]byte
}

// distJournal is the coordinator's append-only run journal. Safe for
// concurrent use; jobs run one at a time but stats readers and the
// crash hook cross goroutines.
type distJournal struct {
	mu  sync.Mutex
	dir string
	f   *os.File
	bw  *bufio.Writer
	seg string
	err error // first write failure, latched: durability must fail loudly

	// pending is the replay queue loaded from the previous incarnation's
	// segment: job records up to its last commit, in execution order.
	pending []*journalRecord
	// prevSeg is the segment pending was loaded from; kept in the
	// manifest until this incarnation's segment is self-contained.
	prevSeg string
	// caughtUp flips when the replay queue drains; flipped when the
	// manifest names this incarnation's segment.
	caughtUp bool
	flipped  bool
	// round is the last committed round of the resumed run, for
	// observability.
	round int

	bytes atomic.Int64

	// crashAfter, when positive, SIGKILLs this process after that many
	// appended records — the deterministic coordinator-crash hook the
	// resume chaos suite drives. Test instrumentation only.
	crashAfter int
	appended   int
}

// openDistJournal opens dir for journaling. With resume set it first
// loads the previous incarnation's committed history as the replay
// queue; either way every new record goes to a fresh segment file.
func openDistJournal(dir string, resume bool, crashAfter int) (*distJournal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("mapreduce: dist journal: %w", err)
	}
	j := &distJournal{dir: dir, crashAfter: crashAfter}
	if resume {
		if err := j.loadLatest(); err != nil {
			return nil, err
		}
	}
	idx := 1
	if segs, err := filepath.Glob(filepath.Join(dir, "journal-*.log")); err == nil {
		for _, s := range segs {
			var n int
			if _, err := fmt.Sscanf(filepath.Base(s), "journal-%06d.log", &n); err == nil && n >= idx {
				idx = n + 1
			}
		}
	}
	j.seg = fmt.Sprintf("journal-%06d.log", idx)
	f, err := os.Create(filepath.Join(dir, j.seg))
	if err != nil {
		return nil, fmt.Errorf("mapreduce: dist journal: %w", err)
	}
	j.f = f
	j.bw = bufio.NewWriterSize(f, 1<<16)
	if len(j.pending) == 0 {
		// Nothing to replay: this segment is the history from record one,
		// so it can own the manifest immediately.
		j.caughtUp = true
		j.flipLocked()
	}
	return j, nil
}

// loadLatest restores the replay queue from the newest usable manifest
// segment: CRC-validate frames until the first damaged one, keep the
// job records up to the last commit record, discard the rest (the
// crashed round re-runs live). A directory with no usable committed
// history yields an empty queue — the run simply starts over.
func (j *distJournal) loadLatest() error {
	raw, err := os.ReadFile(filepath.Join(j.dir, journalManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("mapreduce: dist journal: %w", err)
	}
	var segs []string
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 1 && fields[0] != "" {
			segs = append(segs, fields[0])
		}
	}
	for i := len(segs) - 1; i >= 0; i-- {
		pending, round, ok := loadJournalSegment(filepath.Join(j.dir, segs[i]))
		if ok {
			j.pending = pending
			j.prevSeg = segs[i]
			j.round = round
			return nil
		}
	}
	return nil
}

// loadJournalSegment parses one segment, returning the job records up
// to its last commit and that commit's round. ok is false when the
// segment holds no committed history at all (unreadable, empty, or
// crashed before its first commit) — the caller falls back to an older
// segment.
func loadJournalSegment(path string) (pending []*journalRecord, round int, ok bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false
	}
	var recs []*journalRecord
	committed := -1 // index into recs just past the last committed job record
	for len(data) > 0 {
		n, m := binary.Uvarint(data)
		if m <= 0 || n < 4 || n > uint64(len(data)-m) {
			break // torn tail: the crash point
		}
		frame := data[m : m+int(n)]
		data = data[m+int(n):]
		body, sum := frame[:len(frame)-4], frame[len(frame)-4:]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(sum) {
			break
		}
		switch body[0] {
		case journalRecJob:
			rec, err := decodeJournalJob(body[1:])
			if err != nil {
				return nil, 0, false // structurally invalid past a valid CRC: refuse the segment
			}
			recs = append(recs, rec)
		case journalRecCommit:
			r, w := binary.Uvarint(body[1:])
			if w <= 0 {
				return nil, 0, false
			}
			committed = len(recs)
			round = int(r)
		default:
			return nil, 0, false
		}
	}
	if committed < 0 {
		return nil, 0, false
	}
	return recs[:committed], round, true
}

func decodeJournalJob(body []byte) (*journalRecord, error) {
	rec := &journalRecord{}
	bad := fmt.Errorf("malformed journal job record")
	next := func() (uint64, bool) {
		v, w := binary.Uvarint(body)
		if w <= 0 {
			return 0, false
		}
		body = body[w:]
		return v, true
	}
	seq, ok := next()
	if !ok || len(body) < 1 {
		return nil, bad
	}
	rec.seq = seq
	rec.kind = body[0]
	body = body[1:]
	nameLen, ok := next()
	if !ok || uint64(len(body)) < nameLen {
		return nil, bad
	}
	rec.name = string(body[:nameLen])
	body = body[nameLen:]
	nparts, ok := next()
	if !ok {
		return nil, bad
	}
	rec.counts = make([]int64, nparts)
	rec.blobs = make([][]byte, nparts)
	for p := uint64(0); p < nparts; p++ {
		count, ok1 := next()
		blobLen, ok2 := next()
		if !ok1 || !ok2 || uint64(len(body)) < blobLen {
			return nil, bad
		}
		rec.counts[p] = int64(count)
		rec.blobs[p] = body[:blobLen]
		body = body[blobLen:]
	}
	return rec, nil
}

// appendJob journals one completed job's result. Buffered: the record
// reaches the OS at the next commit, which is the atomicity unit.
func (j *distJournal) appendJob(rec *journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendJobLocked(rec)
}

func (j *distJournal) appendJobLocked(rec *journalRecord) error {
	body := []byte{journalRecJob}
	body = binary.AppendUvarint(body, rec.seq)
	body = append(body, rec.kind)
	body = binary.AppendUvarint(body, uint64(len(rec.name)))
	body = append(body, rec.name...)
	body = binary.AppendUvarint(body, uint64(len(rec.counts)))
	for p := range rec.counts {
		body = binary.AppendUvarint(body, uint64(rec.counts[p]))
		var blob []byte
		if p < len(rec.blobs) {
			blob = rec.blobs[p]
		}
		body = binary.AppendUvarint(body, uint64(len(blob)))
		body = append(body, blob...)
	}
	return j.appendFrameLocked(body)
}

// commit writes a round-boundary commit record and flushes everything
// buffered so far: records before a commit are durable (modulo the
// page cache — same stance as the checkpoint writer), records after it
// are discarded by the loader. The first commit past a drained replay
// queue also flips the manifest to this incarnation's segment.
func (j *distJournal) commit(round int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	body := []byte{journalRecCommit}
	body = binary.AppendUvarint(body, uint64(round))
	if err := j.appendFrameLocked(body); err != nil {
		return err
	}
	if err := j.bw.Flush(); err != nil {
		j.err = fmt.Errorf("mapreduce: dist journal: %w", err)
		return j.err
	}
	if !j.flipped && j.caughtUp {
		j.flipLocked()
	}
	return nil
}

func (j *distJournal) appendFrameLocked(body []byte) error {
	if j.err != nil {
		return j.err
	}
	var frame []byte
	frame = binary.AppendUvarint(frame, uint64(len(body)+4))
	frame = append(frame, body...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(body))
	if _, err := j.bw.Write(frame); err != nil {
		j.err = fmt.Errorf("mapreduce: dist journal: %w", err)
		return j.err
	}
	j.bytes.Add(int64(len(frame)))
	j.appended++
	if j.crashAfter > 0 && j.appended >= j.crashAfter {
		// The deterministic coordinator-crash hook: die the hard way, with
		// whatever the journal has actually committed. SIGKILL, not
		// os.Exit, so no deferred cleanup can soften the crash.
		if p, err := os.FindProcess(os.Getpid()); err == nil {
			p.Kill()
		}
		select {}
	}
	return nil
}

// takeJob pops the next record off the replay queue when it matches
// the job the pipeline is about to run, re-appending it to this
// incarnation's segment so the new segment stays self-contained. A
// name or kind mismatch means the pipeline diverged from the journaled
// run — resuming would silently compute garbage, so it fails loudly.
// (nil, nil) means the queue is drained: run the job live.
func (j *distJournal) takeJob(name string, kind byte) (*journalRecord, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.pending) == 0 {
		j.caughtUp = true
		return nil, nil
	}
	rec := j.pending[0]
	if rec.name != name || rec.kind != kind {
		return nil, fmt.Errorf("mapreduce: dist journal: resumed pipeline diverged: journal has job %q (kind %d), run asked for %q (kind %d)", rec.name, rec.kind, name, kind)
	}
	j.pending = j.pending[1:]
	if len(j.pending) == 0 {
		j.caughtUp = true
	}
	if err := j.appendJobLocked(rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// flipLocked points the manifest at this incarnation's segment
// (keeping the resumed-from segment as the fallback) and prunes older
// segment files. tmp + rename, like the checkpoint manifest.
func (j *distJournal) flipLocked() {
	var sb strings.Builder
	keep := map[string]bool{j.seg: true}
	if j.prevSeg != "" {
		fmt.Fprintf(&sb, "%s v1\n", j.prevSeg)
		keep[j.prevSeg] = true
	}
	fmt.Fprintf(&sb, "%s v1\n", j.seg)
	tmp := filepath.Join(j.dir, journalManifestName+".tmp")
	if err := os.WriteFile(tmp, []byte(sb.String()), 0o644); err != nil {
		j.err = fmt.Errorf("mapreduce: dist journal: %w", err)
		return
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, journalManifestName)); err != nil {
		j.err = fmt.Errorf("mapreduce: dist journal: %w", err)
		return
	}
	j.flipped = true
	if segs, err := filepath.Glob(filepath.Join(j.dir, "journal-*.log")); err == nil {
		for _, s := range segs {
			if !keep[filepath.Base(s)] {
				os.Remove(s)
			}
		}
	}
}

// close flushes and closes the segment file.
func (j *distJournal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.bw != nil {
		j.bw.Flush()
	}
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}
