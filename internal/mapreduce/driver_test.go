package mapreduce

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestDriverCountsRounds(t *testing.T) {
	d := NewDriver(Config{Mappers: 2, Reducers: 2})
	input := []Pair[int, int]{P(1, 10), P(2, 20)}
	for i := 0; i < 3; i++ {
		var err error
		input, err = RunJob(context.Background(), d, "inc", input,
			func(k, v int, out Emitter[int, int]) error {
				out.Emit(k, v+1)
				return nil
			},
			func(k int, vs []int, out Emitter[int, int]) error {
				out.Emit(k, vs[0])
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
	}
	if d.Rounds() != 3 {
		t.Errorf("Rounds = %d, want 3", d.Rounds())
	}
	if got := d.Total().MapInputRecords; got != 6 {
		t.Errorf("Total MapInputRecords = %d, want 6", got)
	}
	if len(d.Trace()) != 3 {
		t.Errorf("Trace length = %d, want 3", len(d.Trace()))
	}
	for _, p := range input {
		if p.Value != map[int]int{1: 13, 2: 23}[p.Key] {
			t.Errorf("after 3 rounds, %d = %d", p.Key, p.Value)
		}
	}
}

func TestDriverRoundLimit(t *testing.T) {
	d := NewDriver(Config{})
	d.MaxRounds = 2
	input := []Pair[int, int]{P(1, 1)}
	var err error
	for i := 0; i < 5 && err == nil; i++ {
		_, err = RunJob(context.Background(), d, "noop", input,
			Identity[int, int](), CollectValues[int, int]())
		if err == nil {
			// keep same input shape
			continue
		}
	}
	if !errors.Is(err, ErrRoundLimit) {
		t.Errorf("err = %v, want ErrRoundLimit", err)
	}
}

func TestDriverObserveNil(t *testing.T) {
	d := NewDriver(Config{})
	if err := d.Observe(nil); err != nil {
		t.Fatal(err)
	}
	if d.Rounds() != 1 {
		t.Errorf("Rounds = %d, want 1", d.Rounds())
	}
}

func TestDriverConfigName(t *testing.T) {
	d := NewDriver(Config{Mappers: 3})
	cfg := d.Config("phase-7")
	if cfg.Name != "phase-7" || cfg.Mappers != 3 {
		t.Errorf("Config = %+v", cfg)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc("edges", 1)
				c.Inc("nodes", 2)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("edges"); got != 8000 {
		t.Errorf("edges = %d, want 8000", got)
	}
	if got := c.Get("nodes"); got != 16000 {
		t.Errorf("nodes = %d, want 16000", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Errorf("missing = %d, want 0", got)
	}
}

func TestCountersNamesAndSnapshot(t *testing.T) {
	c := NewCounters()
	c.Inc("z", 1)
	c.Inc("a", 2)
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Errorf("Names = %v", names)
	}
	snap := c.Snapshot()
	if snap["a"] != 2 || snap["z"] != 1 {
		t.Errorf("Snapshot = %v", snap)
	}
	// Mutating the snapshot must not affect the counters.
	snap["a"] = 99
	if c.Get("a") != 2 {
		t.Error("snapshot aliases internal state")
	}
	if s := c.String(); s != "a=2 z=1" {
		t.Errorf("String = %q", s)
	}
}

func TestStatsAdd(t *testing.T) {
	a := &Stats{MapInputRecords: 1, MapOutputRecords: 2, ShuffleRecords: 2,
		ReduceGroups: 1, ReduceOutputRecords: 1}
	b := &Stats{MapInputRecords: 10, MapOutputRecords: 20, ShuffleRecords: 20,
		ReduceGroups: 10, ReduceOutputRecords: 10}
	a.Add(b)
	a.Add(nil)
	if a.MapInputRecords != 11 || a.MapOutputRecords != 22 ||
		a.ShuffleRecords != 22 || a.ReduceGroups != 11 ||
		a.ReduceOutputRecords != 11 {
		t.Errorf("after Add: %+v", a)
	}
}
