package mapreduce

import (
	"fmt"
	"sync"

	"repro/internal/extsort"
)

// This file defines the engine's pluggable shuffle. The shuffle is the
// phase between map and reduce: it partitions intermediate pairs by key
// hash, groups the pairs of each partition by key, and serves the groups
// to the reduce tasks in sorted key order. The paper (Section 3.1) calls
// the shuffle the dominant cost of any MapReduce implementation, and it
// is also the engine's memory ceiling: buffering every intermediate pair
// in RAM caps the input size far below the web-scale datasets of
// Section 6. The spilling backend removes that ceiling by writing sorted
// runs to disk through internal/extsort once a memory budget fills,
// exactly as Hadoop's map-side spill does.

// ShuffleKind names a shuffle backend in Config.
type ShuffleKind string

const (
	// ShuffleMemory buffers and groups every intermediate pair in
	// memory (the default; fastest while the job fits in RAM).
	ShuffleMemory ShuffleKind = "memory"
	// ShuffleSpill bounds memory: once the configured budget of
	// buffered records fills, sorted runs are spilled to disk and
	// merge-streamed back to the reducers.
	ShuffleSpill ShuffleKind = "spill"
)

// ShuffleConfig selects and bounds the shuffle backend of a job.
type ShuffleConfig struct {
	// Backend selects the implementation. Empty means ShuffleMemory.
	Backend ShuffleKind
	// MemoryBudget is the maximum number of intermediate records the
	// spilling backend buffers in memory across all partitions before
	// writing a sorted run to disk (default 1<<20). Ignored by the
	// memory backend.
	MemoryBudget int
	// TempDir is the directory for spill files (default os.TempDir()).
	TempDir string
}

func (c ShuffleConfig) kind() ShuffleKind {
	if c.Backend == "" {
		return ShuffleMemory
	}
	return c.Backend
}

func (c ShuffleConfig) memoryBudget() int {
	if c.MemoryBudget > 0 {
		return c.MemoryBudget
	}
	return 1 << 20
}

// ShuffleBackend is the engine's shuffle contract. A backend instance
// serves exactly one job: map tasks feed it intermediate pairs with Add,
// Finalize seals ingestion and exposes one group stream per reduce
// partition, and Close releases any remaining resources.
//
// Ordering contract: pairs of one split arrive through one goroutine in
// emission order, across any number of Add calls; distinct splits add
// concurrently. Backends must group values per key in global emission
// order — split index ascending, then emission order within the split —
// and must stream groups in ascending lessKey order within a partition,
// because job determinism rests on both properties.
type ShuffleBackend[K comparable, V any] interface {
	// Add ingests intermediate pairs emitted by map split `split`.
	// When ChunkSize is zero the backend takes ownership of the slice;
	// otherwise it must copy or consume the pairs before returning.
	Add(split int, pairs []Pair[K, V]) error
	// ChunkSize tells map tasks how to feed the backend: zero means
	// "deliver each split's full output in one Add" (lowest overhead
	// for in-memory grouping), a positive n means "flush every n pairs"
	// (bounds the per-task buffer so spilling can begin early).
	ChunkSize() int
	// Finalize seals ingestion, records shuffle statistics, and
	// returns one GroupStream per reduce partition.
	Finalize() ([]GroupStream[K, V], error)
	// Close releases backend resources. Safe after Finalize and on
	// error paths; streams already handed out remain independently
	// closable.
	Close() error
}

// GroupStream iterates the key groups of one reduce partition in sorted
// key order. It is used by a single reduce task.
type GroupStream[K comparable, V any] interface {
	// Next returns the next key group; ok is false at the end.
	Next() (key K, values []V, ok bool, err error)
	// Close releases the stream's resources (idempotent).
	Close() error
}

// newShuffleBackend constructs the backend selected by cfg for a job
// with the given number of map splits.
func newShuffleBackend[K comparable, V any](cfg Config, splits int) (ShuffleBackend[K, V], error) {
	switch cfg.Shuffle.kind() {
	case ShuffleMemory:
		return newMemoryShuffle[K, V](cfg.reducers(), splits), nil
	case ShuffleSpill:
		return newSpillShuffle[K, V](cfg.reducers(), splits, cfg.Shuffle)
	default:
		return nil, fmt.Errorf("mapreduce: unknown shuffle backend %q", cfg.Shuffle.Backend)
	}
}

// shuffleFootprint reports what a backend moved, for job Stats.
type shuffleFootprint interface {
	footprint() (records, spilled, runs int64)
}

// ---------------------------------------------------------------------
// In-memory backend: the seed engine's original shuffle, behind the
// interface. Each split's output is retained as-is (ownership transfer,
// zero copies), concatenated in split order at Finalize, and grouped
// into per-partition maps exactly as before.

type memoryShuffle[K comparable, V any] struct {
	reducers int
	splits   [][]Pair[K, V] // one entry per split, owned after Add
	records  int64
}

func newMemoryShuffle[K comparable, V any](reducers, splits int) *memoryShuffle[K, V] {
	return &memoryShuffle[K, V]{reducers: reducers, splits: make([][]Pair[K, V], splits)}
}

func (m *memoryShuffle[K, V]) ChunkSize() int { return 0 }

func (m *memoryShuffle[K, V]) Add(split int, pairs []Pair[K, V]) error {
	// Each split writes only its own index, so concurrent Adds from
	// distinct splits need no lock; a second Add for one split (not
	// produced by the engine's own map phase, but allowed by the
	// contract) extends the split's slice, which the backend owns.
	if m.splits[split] == nil {
		m.splits[split] = pairs
	} else {
		m.splits[split] = append(m.splits[split], pairs...)
	}
	return nil
}

func (m *memoryShuffle[K, V]) Finalize() ([]GroupStream[K, V], error) {
	parts := make([]map[K][]V, m.reducers)
	for i := range parts {
		parts[i] = make(map[K][]V)
	}
	for _, pairs := range m.splits {
		for _, p := range pairs {
			idx := partitionIndex(p.Key, m.reducers)
			parts[idx][p.Key] = append(parts[idx][p.Key], p.Value)
		}
		m.records += int64(len(pairs))
	}
	m.splits = nil
	streams := make([]GroupStream[K, V], len(parts))
	for i, part := range parts {
		streams[i] = &memGroupStream[K, V]{part: part}
	}
	return streams, nil
}

func (m *memoryShuffle[K, V]) Close() error { m.splits = nil; return nil }

func (m *memoryShuffle[K, V]) footprint() (records, spilled, runs int64) {
	return m.records, 0, 0
}

// memGroupStream walks one partition map in sorted key order. Key
// sorting is deferred to the first Next so it runs inside the reduce
// task's goroutine, keeping the partition sorts parallel as before.
type memGroupStream[K comparable, V any] struct {
	part map[K][]V
	keys []K
	pos  int
}

func (s *memGroupStream[K, V]) Next() (K, []V, bool, error) {
	if s.keys == nil && len(s.part) > 0 {
		s.keys = make([]K, 0, len(s.part))
		for k := range s.part {
			s.keys = append(s.keys, k)
		}
		sortKeys(s.keys)
	}
	if s.pos >= len(s.keys) {
		var zero K
		return zero, nil, false, nil
	}
	k := s.keys[s.pos]
	s.pos++
	return k, s.part[k], true, nil
}

func (s *memGroupStream[K, V]) Close() error { s.part = nil; s.keys = nil; return nil }

// ---------------------------------------------------------------------
// Spilling backend: external-memory shuffle over internal/extsort. Every
// partition owns a Sorter ordering records by (key, sequence); once the
// per-partition share of the memory budget fills, the sorter writes a
// sorted run to disk. Finalize turns each sorter into a k-way merge
// iterator and the group streams assemble key groups from the merged
// record stream, so a partition's peak memory is one run buffer plus its
// largest single key group — never the whole shuffle volume.

// spillRec is one intermediate pair with its global sequence number,
// which encodes (split, emission index) so that the merge reproduces the
// memory backend's deterministic value order within every key.
type spillRec[K comparable, V any] struct {
	seq uint64
	key K
	val V
}

// seqSplitShift packs the split index into the high bits of a sequence
// number; 2^40 emitted pairs per split is far beyond what fits a task.
const seqSplitShift = 40

type spillShuffle[K comparable, V any] struct {
	reducers int
	less     func(a, b K) bool
	mu       []sync.Mutex // one per partition
	sorters  []*extsort.Sorter[spillRec[K, V]]
	seq      []uint64 // per-split emission counters (split-goroutine owned)
	records  int64
	recMu    sync.Mutex
	streams  []GroupStream[K, V]
}

func newSpillShuffle[K comparable, V any](reducers, splits int, cfg ShuffleConfig) (*spillShuffle[K, V], error) {
	keyCodec, err := resolveSpillCodec[K]()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: spill shuffle key: %w", err)
	}
	valCodec, err := resolveSpillCodec[V]()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: spill shuffle value: %w", err)
	}
	less := resolveLess[K]()
	perPartition := cfg.memoryBudget() / reducers
	if perPartition < 64 {
		perPartition = 64
	}
	s := &spillShuffle[K, V]{
		reducers: reducers,
		less:     less,
		mu:       make([]sync.Mutex, reducers),
		sorters:  make([]*extsort.Sorter[spillRec[K, V]], reducers),
		seq:      make([]uint64, splits),
	}
	recLess := func(a, b spillRec[K, V]) bool {
		if less(a.key, b.key) {
			return true
		}
		if less(b.key, a.key) {
			return false
		}
		return a.seq < b.seq
	}
	for i := range s.sorters {
		codec := &spillRecCodec[K, V]{key: keyCodec, val: valCodec}
		s.sorters[i] = extsort.New(recLess, codec, extsort.Config{
			MaxInMemory: perPartition,
			TempDir:     cfg.TempDir,
		})
	}
	return s, nil
}

// spillChunk bounds the per-task emit buffer between flushes into the
// sorters; small enough to start spilling early, large enough to keep
// lock traffic negligible.
const spillChunk = 4096

func (s *spillShuffle[K, V]) ChunkSize() int { return spillChunk }

func (s *spillShuffle[K, V]) Add(split int, pairs []Pair[K, V]) error {
	// Bucket the chunk per partition locally, then take each partition
	// lock once; a spill triggered by Add runs under only that
	// partition's lock.
	buckets := make([][]spillRec[K, V], s.reducers)
	n := s.seq[split]
	base := uint64(split) << seqSplitShift
	for _, p := range pairs {
		idx := partitionIndex(p.Key, s.reducers)
		buckets[idx] = append(buckets[idx], spillRec[K, V]{seq: base | n, key: p.Key, val: p.Value})
		n++
	}
	s.seq[split] = n
	for idx, recs := range buckets {
		if len(recs) == 0 {
			continue
		}
		s.mu[idx].Lock()
		var err error
		for _, r := range recs {
			if err = s.sorters[idx].Add(r); err != nil {
				break
			}
		}
		s.mu[idx].Unlock()
		if err != nil {
			return err
		}
	}
	s.recMu.Lock()
	s.records += int64(len(pairs))
	s.recMu.Unlock()
	return nil
}

func (s *spillShuffle[K, V]) Finalize() ([]GroupStream[K, V], error) {
	streams := make([]GroupStream[K, V], s.reducers)
	for i, sorter := range s.sorters {
		it, err := sorter.Sort()
		if err != nil {
			for _, st := range streams {
				if st != nil {
					st.Close()
				}
			}
			return nil, fmt.Errorf("mapreduce: spill shuffle partition %d: %w", i, err)
		}
		streams[i] = &spillGroupStream[K, V]{it: it, less: s.less}
	}
	s.streams = streams
	return streams, nil
}

func (s *spillShuffle[K, V]) Close() error {
	for _, st := range s.streams {
		st.Close()
	}
	// Release run files of sorters that never reached Finalize (map
	// error, cancellation, or a Finalize failure part-way through);
	// Discard is a no-op for sorters whose runs an iterator took over.
	for _, sorter := range s.sorters {
		if sorter != nil {
			sorter.Discard()
		}
	}
	s.streams = nil
	s.sorters = nil
	return nil
}

func (s *spillShuffle[K, V]) footprint() (records, spilled, runs int64) {
	for _, sorter := range s.sorters {
		if sorter == nil {
			continue
		}
		spilled += sorter.Spilled()
		runs += int64(sorter.Runs())
	}
	return s.records, spilled, runs
}

// spillGroupStream assembles key groups from a merged (key, seq)-sorted
// record stream, with one record of lookahead.
type spillGroupStream[K comparable, V any] struct {
	it     *extsort.Iterator[spillRec[K, V]]
	less   func(a, b K) bool
	head   spillRec[K, V]
	primed bool
	done   bool
}

func (s *spillGroupStream[K, V]) Next() (K, []V, bool, error) {
	var zero K
	if s.done {
		return zero, nil, false, nil
	}
	if !s.primed {
		rec, ok, err := s.it.Next()
		if err != nil {
			return zero, nil, false, err
		}
		if !ok {
			s.done = true
			return zero, nil, false, nil
		}
		s.head, s.primed = rec, true
	}
	key := s.head.key
	values := []V{s.head.val}
	for {
		rec, ok, err := s.it.Next()
		if err != nil {
			return zero, nil, false, err
		}
		if !ok {
			s.done = true
			break
		}
		if s.less(key, rec.key) || s.less(rec.key, key) {
			s.head = rec // first record of the next group
			break
		}
		if rec.key != key {
			// The comparator ties but Go equality disagrees (a
			// composite key whose fmt fallback collides, or a NaN):
			// merging would silently diverge from the memory backend,
			// so fail loudly instead.
			s.done = true
			return zero, nil, false, fmt.Errorf(
				"mapreduce: spill shuffle: key comparator cannot distinguish %v from %v; "+
					"use a key type with a total order (scalar, string, or [2]int32)",
				key, rec.key)
		}
		values = append(values, rec.val)
	}
	return key, values, true, nil
}

func (s *spillGroupStream[K, V]) Close() error {
	if s.it != nil {
		s.it.Close()
		s.it = nil
	}
	s.done = true
	return nil
}
