package mapreduce

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/extsort"
)

// This file defines the engine's pluggable shuffle. The shuffle is the
// phase between map and reduce: it partitions intermediate pairs by key
// hash, groups the pairs of each partition by key, and serves the groups
// to the reduce tasks in sorted key order. The paper (Section 3.1) calls
// the shuffle the dominant cost of any MapReduce implementation, and the
// engine keeps every part of it parallel: partitioning happens map-side
// (each map task routes pairs into per-reducer buckets as it emits
// them), and grouping happens reduce-side (each reduce task sorts its
// own partition), so no phase funnels the whole intermediate dataset
// through one goroutine. The spilling backend additionally bounds memory
// by writing sorted runs to disk through internal/extsort, exactly as
// Hadoop's map-side spill does.

// ShuffleKind names a shuffle backend in Config.
type ShuffleKind string

const (
	// ShuffleMemory keeps every intermediate pair in memory and groups
	// each partition with a reduce-side sort (the default; fastest
	// while the job fits in RAM).
	ShuffleMemory ShuffleKind = "memory"
	// ShuffleSpill bounds memory: once the configured budget of
	// buffered records fills, sorted runs are spilled to disk and
	// merge-streamed back to the reducers.
	ShuffleSpill ShuffleKind = "spill"
	// ShuffleDist shards the reduce partitions across the worker
	// processes of Config.Dist: map-side buckets stream to each
	// partition's owner over TCP, the workers group-sort and reduce
	// locally, and the output either streams back (Run) or stays
	// worker-resident between chained jobs (RunDS). Output is
	// bit-identical to ShuffleMemory for the same seed and partition
	// count. See dist.go and distworker.go.
	ShuffleDist ShuffleKind = "dist"
)

// ShuffleConfig selects and bounds the shuffle backend of a job.
type ShuffleConfig struct {
	// Backend selects the implementation. Empty means ShuffleMemory.
	Backend ShuffleKind
	// MemoryBudget is the maximum number of intermediate records the
	// spilling backend buffers in memory across all partitions before
	// writing a sorted run to disk (default 1<<20). Ignored by the
	// memory backend. The pipelined run writer double-buffers, so a
	// partition's peak can transiently reach twice its budget share
	// while a run is being written (see extsort.Config.MaxInMemory).
	MemoryBudget int
	// TempDir is the directory for spill files (default os.TempDir()).
	TempDir string
}

func (c ShuffleConfig) kind() ShuffleKind {
	if c.Backend == "" {
		return ShuffleMemory
	}
	return c.Backend
}

func (c ShuffleConfig) memoryBudget() int {
	if c.MemoryBudget > 0 {
		return c.MemoryBudget
	}
	return 1 << 20
}

// ShuffleBackend is the engine's shuffle contract. A backend instance
// serves exactly one job: map tasks feed it pre-partitioned bucket
// segments with AddBucket, Finalize seals ingestion and exposes one
// group stream per reduce partition, and Close releases any remaining
// resources.
//
// Partitioning contract: the emitter routes every pair into the bucket
// partitionIndex(key, Partitions()) as it is produced (map-side
// partitioning, parallel across map tasks), so backends never hash a
// key. A delivered bucket is owned by the backend — the emitter never
// touches it again — so in-memory backends retain the slices as-is,
// with zero copies.
//
// Ordering contract: one split's buckets arrive through one goroutine,
// and the buckets of one (split, partition) pair arrive in emission
// order, each internally in emission order; distinct splits add
// concurrently. Backends must group values per key in global emission
// order — split index ascending, then emission order within the split —
// and must stream groups in ascending key order within a partition,
// because job determinism rests on both properties.
type ShuffleBackend[K comparable, V any] interface {
	// Partitions returns the number of reduce partitions; AddBucket
	// partition indexes run 0..Partitions()-1.
	Partitions() int
	// AddBucket ingests one bucket of intermediate pairs emitted by
	// map split `split` for partition `part`, taking ownership of the
	// slice.
	AddBucket(split, part int, pairs []Pair[K, V]) error
	// BucketCap is the number of pairs the emitter should collect in a
	// partition bucket before handing it over; zero lets the engine
	// pick. Bounded caps let a spilling backend start writing runs
	// long before a split finishes.
	BucketCap() int
	// Finalize seals ingestion and returns one GroupStream per reduce
	// partition. With pre-partitioned input this is cheap bookkeeping
	// (collecting bucket slice headers, or sealing sorters); the
	// per-partition grouping work runs inside the reduce tasks.
	Finalize() ([]GroupStream[K, V], error)
	// Close releases backend resources. Safe after Finalize and on
	// error paths; streams already handed out remain independently
	// closable.
	Close() error
}

// GroupStream iterates the key groups of one reduce partition in sorted
// key order. It is used by a single reduce task.
type GroupStream[K comparable, V any] interface {
	// Next returns the next key group; ok is false at the end.
	Next() (key K, values []V, ok bool, err error)
	// Close releases the stream's resources (idempotent).
	Close() error
}

// newShuffleBackend constructs the backend selected by cfg for a job
// with the given number of map splits. ar is the job's recycler arena
// for the intermediate pair type (nil disables recycling).
func newShuffleBackend[K comparable, V any](cfg Config, splits int, ar *roundArena[K, V]) (ShuffleBackend[K, V], error) {
	switch cfg.Shuffle.kind() {
	case ShuffleMemory:
		return newMemoryShuffle[K, V](cfg.reducers(), splits, ar), nil
	case ShuffleSpill:
		return newSpillShuffle[K, V](cfg.reducers(), splits, cfg.Shuffle, cfg.SpillCompression, ar)
	case ShuffleDist:
		// Run/RunDS intercept the dist mode before reaching the backend
		// constructor; only the combiner paths arrive here.
		return nil, fmt.Errorf("mapreduce: the dist shuffle backend does not support combiner jobs")
	default:
		return nil, fmt.Errorf("mapreduce: unknown shuffle backend %q", cfg.Shuffle.Backend)
	}
}

// shuffleFootprint reports what a backend moved, for job Stats.
type shuffleFootprint interface {
	footprint() (records, spilled, runs int64)
}

// ---------------------------------------------------------------------
// In-memory backend: pre-partitioned bucket segments are retained as-is
// (ownership transfer, zero copies). Finalize only collects each
// partition's segment slice headers in split order; the actual grouping —
// a stable sort by key that preserves (split, emission) value order — is
// deferred into the group stream, which runs inside the reduce task's
// goroutine, so partitions group in parallel on all cores.

type memoryShuffle[K comparable, V any] struct {
	reducers int
	kind     orderKind
	cmp      func(a, b K) int
	ar       *roundArena[K, V]
	// segs[split][partition] lists the split's delivered buckets for
	// that partition, in arrival (= emission) order.
	segs    [][][][]Pair[K, V]
	records int64
}

func newMemoryShuffle[K comparable, V any](reducers, splits int, ar *roundArena[K, V]) *memoryShuffle[K, V] {
	kind := keyOrderKind[K]()
	return &memoryShuffle[K, V]{
		reducers: reducers,
		kind:     kind,
		cmp:      keyCmpFor[K](kind),
		ar:       ar,
		segs:     make([][][][]Pair[K, V], splits),
	}
}

func (m *memoryShuffle[K, V]) Partitions() int { return m.reducers }

func (m *memoryShuffle[K, V]) BucketCap() int { return 0 }

func (m *memoryShuffle[K, V]) AddBucket(split, part int, pairs []Pair[K, V]) error {
	// Each split writes only its own index, so concurrent AddBuckets
	// from distinct splits need no lock.
	if m.segs[split] == nil {
		m.segs[split] = make([][][]Pair[K, V], m.reducers)
	}
	m.segs[split][part] = append(m.segs[split][part], pairs)
	return nil
}

func (m *memoryShuffle[K, V]) Finalize() ([]GroupStream[K, V], error) {
	streams := make([]GroupStream[K, V], m.reducers)
	for p := range streams {
		var segs [][]Pair[K, V]
		for _, bySplit := range m.segs {
			if bySplit == nil {
				continue
			}
			for _, seg := range bySplit[p] {
				segs = append(segs, seg)
				m.records += int64(len(seg))
			}
		}
		streams[p] = &memGroupStream[K, V]{segs: segs, kind: m.kind, cmp: m.cmp, ar: m.ar, part: p}
	}
	m.segs = nil
	return streams, nil
}

func (m *memoryShuffle[K, V]) Close() error { m.segs = nil; return nil }

func (m *memoryShuffle[K, V]) footprint() (records, spilled, runs int64) {
	return m.records, 0, 0
}

// memGroup is one grouped key, used only on the comparator-tie slow path.
type memGroup[K comparable, V any] struct {
	key  K
	vals []V
}

// memGroupStream serves one partition's key groups. The first Next call
// — inside the reduce task's goroutine, so partitions group in parallel
// — concatenates the pre-partitioned split segments (emission order
// within a split, splits ascending), computes the stable sort-by-key
// permutation (a comparator-free radix pass, see sortKeyVals), and
// gathers the keys and values once into two flat arrays. Every group is
// then a zero-copy sub-slice of the values array: no per-key map, no
// per-key grown slices.
//
// With a recycler arena attached, the stream is where round-lifetime
// buffers cycle: prime checks the gather arrays and radix scratch out
// of the arena and returns them (plus the consumed bucket segments) as
// soon as the sort is done, and Close — the moment the round's groups
// have been consumed — returns the sorted key, value, and key-image
// arrays, so the next round's stream for this partition reuses them.
type memGroupStream[K comparable, V any] struct {
	segs   [][]Pair[K, V]
	kind   orderKind
	cmp    func(a, b K) int
	ar     *roundArena[K, V]
	part   int
	keys   []K
	vals   []V
	run    sortedRun
	pos    int
	primed bool
	queue  []memGroup[K, V] // pending groups from a comparator-tie run
}

func (s *memGroupStream[K, V]) prime() {
	s.primed = true
	total := 0
	for _, seg := range s.segs {
		total += len(seg)
	}
	if total == 0 {
		s.segs = nil
		return
	}
	keys := s.ar.getKeys(s.part, total)
	vals := s.ar.getVals(s.part, total)
	i := 0
	for _, seg := range s.segs {
		for _, p := range seg {
			keys[i] = p.Key
			vals[i] = p.Value
			i++
		}
	}
	// The bucket segments are dead once copied out: hand them back for
	// the next round's emitters.
	for _, seg := range s.segs {
		s.ar.putBucket(s.part, seg)
	}
	s.segs = nil
	rs := s.ar.getRadix(s.part)
	s.keys, s.vals, s.run = sortKeyVals(keys, vals, s.kind, s.ar, s.part, rs)
	s.ar.putRadix(s.part, rs)
	if total >= 2 {
		// The gather arrays were consumed as sort scratch (length < 2
		// inputs pass through unchanged and are still live).
		s.ar.putKeys(s.part, keys)
		s.ar.putVals(s.part, vals)
	}
}

func (s *memGroupStream[K, V]) Next() (K, []V, bool, error) {
	if !s.primed {
		s.prime()
	}
	if len(s.queue) > 0 {
		g := s.queue[0]
		s.queue = s.queue[1:]
		return g.key, g.vals, true, nil
	}
	n := len(s.keys)
	if s.pos >= n {
		var zero K
		return zero, nil, false, nil
	}
	pos := s.pos
	key := s.keys[pos]
	end := pos + 1
	if ord := s.run.ord; ord != nil {
		// Boundary scan over the sorted key images: comparing machine
		// words instead of keys. With an exact projection an image
		// change IS a key change; otherwise equal images narrow the
		// test to a key-equality check, and distinct keys sharing an
		// image are contiguous (the sort's repair pass ordered them),
		// so a key change within equal images still ends the group —
		// unless the comparator cannot tell the keys apart (fmt
		// fallback collisions), which the tie path below regroups.
		sh := s.run.shift
		o := ord[pos] >> sh
		if s.run.exact {
			for end < n && ord[end]>>sh == o {
				end++
			}
			s.pos = end
			return key, s.vals[pos:end], true, nil
		}
		for end < n && ord[end]>>sh == o && s.keys[end] == key {
			end++
		}
		if end < n && ord[end]>>sh == o && s.cmp(key, s.keys[end]) == 0 {
			return s.tieRun(pos, end)
		}
		s.pos = end
		return key, s.vals[pos:end], true, nil
	}
	for end < n && s.keys[end] == key {
		end++
	}
	if end < n && s.cmp(key, s.keys[end]) == 0 {
		return s.tieRun(pos, end)
	}
	s.pos = end
	return key, s.vals[pos:end], true, nil
}

// tieRun handles the comparator-tie slow path: the comparator ties but
// Go equality disagrees (a composite key whose fmt fallback collides,
// or a NaN key), so pairs of distinct keys may interleave and the
// contiguous-slice fast path does not apply. The whole run is regrouped
// by Go equality, preserving first-seen key order and per-key value
// order.
func (s *memGroupStream[K, V]) tieRun(pos, end int) (K, []V, bool, error) {
	key := s.keys[pos]
	runEnd := end + 1
	for runEnd < len(s.keys) && s.cmp(key, s.keys[runEnd]) == 0 {
		runEnd++
	}
	s.queue = groupTieRun(s.keys[pos:runEnd], s.vals[pos:runEnd])
	s.pos = runEnd
	g := s.queue[0]
	s.queue = s.queue[1:]
	return g.key, g.vals, true, nil
}

// groupTieRun splits a run of comparator-equal pairs into per-key groups
// by Go equality, in first-occurrence order, copying the values (the run
// may interleave keys, so zero-copy slicing of the input does not
// apply). Instead of growing one slice per distinct key — a singleton
// allocation plus O(log) growth re-allocations per group in the worst
// case — the group boundaries are counted first and the values are
// carved as sub-slices of one flat array laid out group by group.
//
// The linear key scan deliberately avoids a map: NaN keys never compare
// equal, so each NaN pair forms its own group — the same behavior a Go
// map's insert semantics gave the seed engine. Tie runs exist only for
// keys without a distinguishing total order and are short in practice.
func groupTieRun[K comparable, V any](keys []K, vals []V) []memGroup[K, V] {
	// Pass 1: assign each pair to its group and count group sizes.
	var groups []memGroup[K, V]
	gidx := make([]int32, len(keys))
	counts := make([]int32, 0, 8)
outer:
	for i, k := range keys {
		for gi := range groups {
			if groups[gi].key == k {
				gidx[i] = int32(gi)
				counts[gi]++
				continue outer
			}
		}
		gidx[i] = int32(len(groups))
		groups = append(groups, memGroup[K, V]{key: k})
		counts = append(counts, 1)
	}
	// Pass 2: carve one region per group out of a single flat array and
	// scatter the values into their regions in input order.
	flat := make([]V, len(vals))
	off := int32(0)
	for gi := range groups {
		groups[gi].vals = flat[off : off : off+counts[gi]]
		off += counts[gi]
	}
	for i, v := range vals {
		gi := gidx[i]
		groups[gi].vals = append(groups[gi].vals, v)
	}
	return groups
}

func (s *memGroupStream[K, V]) Close() error {
	// The round's groups have been consumed: the sorted key, value, and
	// key-image arrays return to the arena for the next round.
	s.ar.putKeys(s.part, s.keys)
	s.ar.putVals(s.part, s.vals)
	s.ar.putU64(s.part, s.run.ord)
	s.segs, s.keys, s.vals, s.queue = nil, nil, nil, nil
	s.run = sortedRun{}
	s.pos = 0
	return nil
}

// ---------------------------------------------------------------------
// Spilling backend: external-memory shuffle over internal/extsort. Every
// partition owns a Sorter ordering records by (key, sequence); once the
// per-partition share of the memory budget fills, the sorter writes a
// sorted run to disk. Finalize turns each sorter into a k-way merge
// iterator and the group streams assemble key groups from the merged
// record stream, so a partition's peak memory is one run buffer plus its
// largest single key group — never the whole shuffle volume.

// spillRec is one intermediate pair with its global sequence number,
// which encodes (split, arrival index) so that the merge reproduces the
// memory backend's deterministic value order within every key. img
// caches the key's order-consistent uint64 image (see keyImageFn),
// computed once per record at ingest and at decode — never serialized —
// so both the run-buffer radix sort and the k-way merge compare machine
// words instead of repeatedly projecting (or boxing) the key.
type spillRec[K comparable, V any] struct {
	seq uint64
	img uint64
	key K
	val V
}

// seqSplitShift packs the split index into the high bits of a sequence
// number; 2^40 emitted pairs per split is far beyond what fits a task.
const seqSplitShift = 40

type spillShuffle[K comparable, V any] struct {
	reducers int
	cmp      func(a, b K) int
	numeric  bool // key images are exact (image tie == comparator tie)
	imgFn    func(K) uint64
	ar       *roundArena[K, V]
	mu       []sync.Mutex // one per partition
	sorters  []*extsort.Sorter[spillRec[K, V]]
	recBufs  [][]spillRec[K, V] // per-partition staging (guarded by mu[part])
	seq      []uint64           // per-split arrival counters (split-goroutine owned)
	records  int64
	recMu    sync.Mutex
	streams  []GroupStream[K, V]
	saved    atomic.Int64 // bytes block compression shaved off run files
}

func newSpillShuffle[K comparable, V any](reducers, splits int, cfg ShuffleConfig, compress bool, ar *roundArena[K, V]) (*spillShuffle[K, V], error) {
	keyCodec, err := resolveSpillCodec[K]()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: spill shuffle key: %w", err)
	}
	valCodec, err := resolveSpillCodec[V]()
	if err != nil {
		return nil, fmt.Errorf("mapreduce: spill shuffle value: %w", err)
	}
	kind := keyOrderKind[K]()
	cmpFn := keyCmpFor[K](kind)
	imgFn := keyImageFn[K](kind)
	numFn, _ := numericKeyFn[K](kind)
	perPartition := cfg.memoryBudget() / reducers
	if perPartition < 64 {
		perPartition = 64
	}
	s := &spillShuffle[K, V]{
		reducers: reducers,
		cmp:      cmpFn,
		numeric:  numFn != nil,
		imgFn:    imgFn,
		ar:       ar,
		mu:       make([]sync.Mutex, reducers),
		sorters:  make([]*extsort.Sorter[spillRec[K, V]], reducers),
		recBufs:  make([][]spillRec[K, V], reducers),
		seq:      make([]uint64, splits),
	}
	// The merge comparator works on the cached key image: images are
	// order-consistent (img(a) < img(b) implies a < b), so only equal
	// images need more work. For numeric kinds an image tie IS a
	// comparator tie (projections are injective, and the two float
	// zeros share one image and compare equal), so the comparison
	// drops straight to the sequence tiebreak — no key is ever boxed.
	// String-ordered kinds compare the full key on equal prefixes.
	var recLess func(a, b spillRec[K, V]) bool
	if s.numeric {
		recLess = func(a, b spillRec[K, V]) bool {
			if a.img != b.img {
				return a.img < b.img
			}
			return a.seq < b.seq
		}
	} else {
		recLess = func(a, b spillRec[K, V]) bool {
			if a.img != b.img {
				return a.img < b.img
			}
			if c := cmpFn(a.key, b.key); c != 0 {
				return c < 0
			}
			return a.seq < b.seq
		}
	}
	// Runs are written in the codec-v2 block format (columnar batches,
	// per-run dictionaries, optional flate): one stateless codec shared
	// by every sorter, per-run state living in the run en/decoders.
	codec := &spillBlockCodec[K, V]{
		key: keyCodec, val: valCodec, img: imgFn,
		compress: compress, saved: &s.saved,
	}
	for i := range s.sorters {
		s.sorters[i] = extsort.New(recLess, codec, extsort.Config{
			MaxInMemory: perPartition,
			TempDir:     cfg.TempDir,
		})
		// Run buffers sort with the order-preserving key-image radix
		// path instead of recLess (same (key, seq) order, no comparator
		// calls); the merge across runs still uses recLess. One scratch
		// per sorter: buffer sorts run on the ingest goroutine under
		// the partition lock (or during that partition's Finalize), so
		// each sorter's sort is single-threaded.
		s.sorters[i].SetBufferSort(spillBufSort[K, V](kind))
	}
	return s, nil
}

// spillBucketCap bounds the emitter's per-partition bucket between
// handoffs into the sorters; small enough to start spilling early,
// large enough to keep lock traffic negligible.
const spillBucketCap = 1024

func (s *spillShuffle[K, V]) Partitions() int { return s.reducers }

func (s *spillShuffle[K, V]) BucketCap() int { return spillBucketCap }

func (s *spillShuffle[K, V]) AddBucket(split, part int, pairs []Pair[K, V]) error {
	// Buckets arrive pre-partitioned from the emitter (map-side
	// partitioning), so no key is re-hashed here; the partition's lock
	// is taken once per bucket. Sequence numbers are assigned in bucket
	// arrival order, which preserves emission order within every
	// (split, partition) pair — all the merge needs, because a key's
	// records all live in one partition.
	n := s.seq[split]
	base := uint64(split) << seqSplitShift
	imgFn := s.imgFn
	s.mu[part].Lock()
	recs := s.recBufs[part]
	if cap(recs) < len(pairs) {
		recs = make([]spillRec[K, V], len(pairs))
	}
	recs = recs[:len(pairs)]
	for i, p := range pairs {
		recs[i] = spillRec[K, V]{seq: base | n, img: imgFn(p.Key), key: p.Key, val: p.Value}
		n++
	}
	err := s.sorters[part].AddBatch(recs)
	s.recBufs[part] = recs
	s.mu[part].Unlock()
	s.seq[split] = n
	s.recMu.Lock()
	s.records += int64(len(pairs))
	s.recMu.Unlock()
	// The bucket's pairs are copied into the sorter: the slice is dead
	// and goes back to the arena for the next emitter fill.
	s.ar.putBucket(part, pairs)
	return err
}

func (s *spillShuffle[K, V]) Finalize() ([]GroupStream[K, V], error) {
	// Each partition's Sort spills and sorts its final run buffer and
	// primes the run merge — independent per-sorter work, so the
	// partitions finalize concurrently instead of one after another.
	streams := make([]GroupStream[K, V], s.reducers)
	errs := make([]error, s.reducers)
	var wg sync.WaitGroup
	for i, sorter := range s.sorters {
		wg.Add(1)
		go func(i int, sorter *extsort.Sorter[spillRec[K, V]]) {
			defer wg.Done()
			it, err := sorter.Sort()
			if err != nil {
				errs[i] = fmt.Errorf("mapreduce: spill shuffle partition %d: %w", i, err)
				return
			}
			streams[i] = &spillGroupStream[K, V]{it: it, cmp: s.cmp, numeric: s.numeric}
		}(i, sorter)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, st := range streams {
				if st != nil {
					st.Close()
				}
			}
			return nil, err
		}
	}
	s.streams = streams
	return streams, nil
}

func (s *spillShuffle[K, V]) Close() error {
	for _, st := range s.streams {
		st.Close()
	}
	// Release run files of sorters that never reached Finalize (map
	// error, cancellation, or a Finalize failure part-way through);
	// Discard is a no-op for sorters whose runs an iterator took over.
	for _, sorter := range s.sorters {
		if sorter != nil {
			sorter.Discard()
		}
	}
	s.streams = nil
	s.sorters = nil
	return nil
}

func (s *spillShuffle[K, V]) footprint() (records, spilled, runs int64) {
	for _, sorter := range s.sorters {
		if sorter == nil {
			continue
		}
		spilled += sorter.Spilled()
		runs += int64(sorter.Runs())
	}
	return s.records, spilled, runs
}

// spillSaved reports the bytes block compression shaved off the run
// files (zero with SpillCompression off); picked up by recordShuffle.
func (s *spillShuffle[K, V]) spillSaved() int64 { return s.saved.Load() }

// runBytes sums the encoded bytes actually written to run files.
func (s *spillShuffle[K, V]) runBytes() (n int64) {
	for _, sorter := range s.sorters {
		if sorter != nil {
			n += sorter.RunBytes()
		}
	}
	return n
}

// spillGroupStream assembles key groups from a merged (key, seq)-sorted
// record stream, with one record of lookahead. The values buffer is
// owned by the stream and reused for every group (reduce functions must
// not retain the values slice beyond the call, see ReduceFunc) — one
// growing array per partition instead of one allocation per distinct
// key, which dominated the spill path's allocation profile. Group
// boundaries compare the cached key images: for numeric kinds an image
// change IS a key change and an image tie IS a comparator tie (the two
// float zeros share one image by construction), so no key is ever
// boxed; string-ordered kinds fall back to a full comparison only when
// the 8-byte prefixes collide.
type spillGroupStream[K comparable, V any] struct {
	it      *extsort.Iterator[spillRec[K, V]]
	cmp     func(a, b K) int
	numeric bool
	head    spillRec[K, V]
	vbuf    []V
	primed  bool
	done    bool
}

func (s *spillGroupStream[K, V]) Next() (K, []V, bool, error) {
	var zero K
	if s.done {
		return zero, nil, false, nil
	}
	if !s.primed {
		rec, ok, err := s.it.Next()
		if err != nil {
			return zero, nil, false, err
		}
		if !ok {
			s.done = true
			return zero, nil, false, nil
		}
		s.head, s.primed = rec, true
	}
	key := s.head.key
	img := s.head.img
	values := append(s.vbuf[:0], s.head.val)
	for {
		rec, ok, err := s.it.Next()
		if err != nil {
			return zero, nil, false, err
		}
		if !ok {
			s.done = true
			break
		}
		if rec.img != img || (!s.numeric && s.cmp(rec.key, key) != 0) {
			s.head = rec // first record of the next group
			break
		}
		if rec.key != key {
			// The comparator ties but Go equality disagrees (a
			// composite key whose fmt fallback collides, or a NaN):
			// merging would silently diverge from the memory backend,
			// so fail loudly instead.
			s.done = true
			return zero, nil, false, fmt.Errorf(
				"mapreduce: spill shuffle: key comparator cannot distinguish %v from %v; "+
					"use a key type with a total order (scalar, string, or [2]int32)",
				key, rec.key)
		}
		values = append(values, rec.val)
	}
	s.vbuf = values
	return key, values, true, nil
}

func (s *spillGroupStream[K, V]) Close() error {
	if s.it != nil {
		s.it.Close()
		s.it = nil
	}
	s.vbuf = nil
	s.done = true
	return nil
}
