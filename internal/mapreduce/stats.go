package mapreduce

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stats records the measurable footprint of one MapReduce job. The paper
// reports efficiency as the number of MapReduce iterations and reasons
// about the communication cost of each job (O(|E|) records per round for
// the matching algorithms); these fields make both quantities observable.
type Stats struct {
	// Name is the job label from Config.Name.
	Name string
	// MapInputRecords is the number of input pairs.
	MapInputRecords int64
	// MapOutputRecords is the number of intermediate pairs emitted by
	// all mappers.
	MapOutputRecords int64
	// ShuffleRecords is the number of intermediate pairs moved during
	// the shuffle (equal to MapOutputRecords in this engine; kept
	// separate because a combiner would make them differ).
	ShuffleRecords int64
	// ReduceGroups is the number of distinct intermediate keys.
	ReduceGroups int64
	// ReduceOutputRecords is the number of output pairs.
	ReduceOutputRecords int64
	// LocalRouted and CrossRouted split the emitted intermediate pairs
	// by shuffle route. LocalRouted pairs took the identity route of a
	// partition-resident map task (RunDS over an aligned Dataset): they
	// were addressed to the task's own input key, so they went straight
	// into the task's own partition bucket without being hashed.
	// CrossRouted pairs went through the full hash-partitioned route.
	// Flat jobs (Run, or RunDS forced to re-partition) hash everything,
	// so they report LocalRouted == 0.
	LocalRouted int64
	CrossRouted int64
	// MapTaskRetries and ReduceTaskRetries count re-executed task
	// attempts under injected failures (Config.FailureRate).
	MapTaskRetries    int64
	ReduceTaskRetries int64
	// SpilledRecords and SpillRuns describe the external-memory work of
	// the spilling shuffle backend: intermediate records written to
	// disk and sorted run files produced. Both are zero for the
	// in-memory backend, and for spill jobs whose shuffle fit the
	// memory budget.
	SpilledRecords int64
	SpillRuns      int64
	// PooledBytes and PoolMisses describe the job's use of its buffer
	// recycler (Config.Pool): bytes of buffer storage served from the
	// pool's free lists instead of the heap, and checkouts that missed
	// and had to allocate. Both are zero for jobs without a pool. A
	// chained iterative computation converges to all-hits after its
	// first round — rising misses across rounds mean the recycler is
	// being starved (buffers escaping without a matching Recycle).
	PooledBytes int64
	PoolMisses  int64
	// RemoteBytesOut and RemoteBytesIn are the transport bytes the
	// coordinator exchanged with the dist backend's workers during the
	// job (frames out: job control and intermediate buckets; frames in:
	// relayed buckets, reduce output, reports). Zero for the local
	// backends. Chained jobs whose self-addressed pairs stay
	// worker-resident show it here: RemoteBytesOut covers only the
	// cross-partition traffic.
	RemoteBytesOut int64
	RemoteBytesIn  int64
	// WireBytesSaved and SpillBytesSaved count the bytes block
	// compression shaved off the codec-v2 batch encodings: the
	// uncompressed column image minus the flate image actually shipped
	// (wire frames, dist backend) or written (spill run files). Zero
	// when the corresponding Config knob is off or nothing compressed
	// well enough to keep.
	WireBytesSaved  int64
	SpillBytesSaved int64
	// WorkerRecoveries counts the job attempts that were abandoned to a
	// worker death and retried on the survivors (dist backend only): a
	// job that succeeds first try reports zero. ReseededPartitions
	// counts resident input partitions restored from the coordinator's
	// checkpoint mirror onto a new owner before the successful attempt.
	WorkerRecoveries   int64
	ReseededPartitions int64
	// Elastic-scheduling activity during the job (dist backend only).
	// HeartbeatTimeouts counts workers demoted to suspect for silence;
	// SpeculativeLaunches counts straggler aborts launched to re-execute
	// a laggard's partitions elsewhere, SpeculativeWins the ones whose
	// backup attempt completed the job; PartitionsMigrated counts
	// resident partitions rebalanced between live workers (late-joiner
	// adoption, idle-worker feeding) rather than restored after a death.
	HeartbeatTimeouts   int64
	SpeculativeLaunches int64
	SpeculativeWins     int64
	PartitionsMigrated  int64
	// Durability activity during the job (dist backend only).
	// WorkerReconnects counts transport losses absorbed by session
	// resume — a severed worker redialed and re-attached without losing
	// its partitions; FramesReplayed counts the un-acked frames re-sent
	// from the retransmit rings across those reconnects; JournalBytes is
	// the run-journal growth the job caused (zero with journaling off).
	WorkerReconnects int64
	FramesReplayed   int64
	JournalBytes     int64
	// WorkerWall is the largest map+reduce wall clock any single dist
	// worker reported for the job — the distributed critical path, which
	// is what a measured scale-out comparison against ClusterModel's
	// estimate should use. Zero for the local backends.
	WorkerWall time.Duration
	// MapWall, ShuffleWall and ReduceWall are the wall-clock durations
	// of the job's phases: the parallel map tasks (including map-side
	// partitioning of the emitted pairs), shuffle finalization (sealing
	// the backend and handing a group stream to every reduce partition
	// — cheap by design, since partitioning already happened map-side
	// and grouping happens reduce-side), and the parallel reduce tasks
	// (including each partition's group sort). Driver totals accumulate
	// these across rounds.
	MapWall     time.Duration
	ShuffleWall time.Duration
	ReduceWall  time.Duration
}

// addMapRetry records one re-executed map attempt (called concurrently
// by task goroutines).
func (s *Stats) addMapRetry() { atomic.AddInt64(&s.MapTaskRetries, 1) }

// addReduceRetry records one re-executed reduce attempt.
func (s *Stats) addReduceRetry() { atomic.AddInt64(&s.ReduceTaskRetries, 1) }

// addMapOutput records one completed map split's emitted-pair count.
func (s *Stats) addMapOutput(n int64) { atomic.AddInt64(&s.MapOutputRecords, n) }

// addRouted records one completed map task's identity-routed and
// hash-routed pair counts.
func (s *Stats) addRouted(local, cross int64) {
	atomic.AddInt64(&s.LocalRouted, local)
	atomic.AddInt64(&s.CrossRouted, cross)
}

// addReduceGroup records one key group streamed to a reducer.
func (s *Stats) addReduceGroup() { atomic.AddInt64(&s.ReduceGroups, 1) }

// snapPool snapshots the pool's cumulative counters and returns a
// closure that records the delta accrued while the job ran. Jobs under
// one Driver run sequentially, so the delta is the job's own traffic.
func (s *Stats) snapPool(p *BufferPool) func() {
	if p == nil {
		return func() {}
	}
	b0, m0 := p.counters()
	return func() {
		b1, m1 := p.counters()
		s.PooledBytes = b1 - b0
		s.PoolMisses = m1 - m0
	}
}

// recordShuffle copies the shuffle backend's footprint into the stats
// once the job's tasks have finished with it.
func (s *Stats) recordShuffle(backend any) {
	if fp, ok := backend.(shuffleFootprint); ok {
		s.ShuffleRecords, s.SpilledRecords, s.SpillRuns = fp.footprint()
	}
	if sv, ok := backend.(interface{ spillSaved() int64 }); ok {
		s.SpillBytesSaved = sv.spillSaved()
	}
}

func newStats(name string) *Stats {
	return &Stats{Name: name}
}

// Add accumulates another job's footprint into s (used by Driver to total
// an iterative computation).
func (s *Stats) Add(o *Stats) {
	if o == nil {
		return
	}
	s.MapInputRecords += o.MapInputRecords
	s.MapOutputRecords += atomic.LoadInt64(&o.MapOutputRecords)
	s.LocalRouted += atomic.LoadInt64(&o.LocalRouted)
	s.CrossRouted += atomic.LoadInt64(&o.CrossRouted)
	s.ShuffleRecords += o.ShuffleRecords
	s.ReduceGroups += atomic.LoadInt64(&o.ReduceGroups)
	s.ReduceOutputRecords += o.ReduceOutputRecords
	s.MapTaskRetries += atomic.LoadInt64(&o.MapTaskRetries)
	s.ReduceTaskRetries += atomic.LoadInt64(&o.ReduceTaskRetries)
	s.SpilledRecords += o.SpilledRecords
	s.SpillRuns += o.SpillRuns
	s.PooledBytes += o.PooledBytes
	s.PoolMisses += o.PoolMisses
	s.RemoteBytesOut += o.RemoteBytesOut
	s.RemoteBytesIn += o.RemoteBytesIn
	s.WireBytesSaved += o.WireBytesSaved
	s.SpillBytesSaved += o.SpillBytesSaved
	s.WorkerRecoveries += o.WorkerRecoveries
	s.ReseededPartitions += o.ReseededPartitions
	s.HeartbeatTimeouts += o.HeartbeatTimeouts
	s.SpeculativeLaunches += o.SpeculativeLaunches
	s.SpeculativeWins += o.SpeculativeWins
	s.PartitionsMigrated += o.PartitionsMigrated
	s.WorkerReconnects += o.WorkerReconnects
	s.FramesReplayed += o.FramesReplayed
	s.JournalBytes += o.JournalBytes
	s.WorkerWall += o.WorkerWall
	s.MapWall += o.MapWall
	s.ShuffleWall += o.ShuffleWall
	s.ReduceWall += o.ReduceWall
}

// String renders the stats on one line.
func (s *Stats) String() string {
	name := s.Name
	if name == "" {
		name = "job"
	}
	line := fmt.Sprintf("%s: in=%d mapout=%d shuffle=%d groups=%d out=%d",
		name, s.MapInputRecords, s.MapOutputRecords, s.ShuffleRecords,
		s.ReduceGroups, s.ReduceOutputRecords)
	if s.LocalRouted > 0 {
		line += fmt.Sprintf(" local=%d cross=%d", s.LocalRouted, s.CrossRouted)
	}
	if s.SpilledRecords > 0 {
		line += fmt.Sprintf(" spilled=%d runs=%d", s.SpilledRecords, s.SpillRuns)
	}
	if s.PooledBytes > 0 || s.PoolMisses > 0 {
		line += fmt.Sprintf(" pooled=%dB poolmiss=%d", s.PooledBytes, s.PoolMisses)
	}
	if s.RemoteBytesOut > 0 || s.RemoteBytesIn > 0 {
		line += fmt.Sprintf(" remote=%dB out/%dB in workerwall=%s",
			s.RemoteBytesOut, s.RemoteBytesIn, s.WorkerWall.Round(time.Microsecond))
	}
	if s.WireBytesSaved > 0 || s.SpillBytesSaved > 0 {
		line += fmt.Sprintf(" saved=%dB wire/%dB spill", s.WireBytesSaved, s.SpillBytesSaved)
	}
	if s.WorkerRecoveries > 0 || s.ReseededPartitions > 0 {
		line += fmt.Sprintf(" recoveries=%d reseeded=%d", s.WorkerRecoveries, s.ReseededPartitions)
	}
	if s.HeartbeatTimeouts > 0 || s.SpeculativeLaunches > 0 || s.PartitionsMigrated > 0 {
		line += fmt.Sprintf(" hbtimeouts=%d spec=%d/%d migrated=%d",
			s.HeartbeatTimeouts, s.SpeculativeLaunches, s.SpeculativeWins, s.PartitionsMigrated)
	}
	if s.WorkerReconnects > 0 || s.FramesReplayed > 0 {
		line += fmt.Sprintf(" reconnects=%d replayed=%d", s.WorkerReconnects, s.FramesReplayed)
	}
	if s.JournalBytes > 0 {
		line += fmt.Sprintf(" journal=%dB", s.JournalBytes)
	}
	if s.MapWall > 0 || s.ShuffleWall > 0 || s.ReduceWall > 0 {
		line += fmt.Sprintf(" map=%s shuffle=%s reduce=%s",
			s.MapWall.Round(time.Microsecond),
			s.ShuffleWall.Round(time.Microsecond),
			s.ReduceWall.Round(time.Microsecond))
	}
	return line
}

// Counters is a set of named monotone counters shared by the tasks of a
// computation, mirroring Hadoop job counters. It is safe for concurrent
// use.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Inc adds delta to the named counter.
func (c *Counters) Inc(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the value of the named counter (zero if never incremented).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Names returns all counter names in sorted order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// String renders the counters as "name=value" pairs in sorted order.
func (c *Counters) String() string {
	names := c.Names()
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, c.Get(n)))
	}
	return strings.Join(parts, " ")
}
