package mapreduce

import (
	"cmp"
	"slices"
)

// This file gives the spilling shuffle backend the same comparator-free
// sorting the in-memory backend's group sort uses. The spill sorter
// orders records by (key, sequence); its generic comparator sort —
// O(n log n) indirect calls through a closure per comparison — was the
// bulk of the documented ~7x gap between the spill and memory backends.
// For every key type with an order-preserving projection (all scalar
// kinds, [2]int32, and string-ordered keys via their 8-byte prefix) the
// run buffers sort with linear radix passes instead.

// spillBufSort returns a radix-based sort for spill run buffers,
// ordering by (key, seq) exactly as the sorter's record comparator
// would; every key kind takes one of its two paths, so extsort's
// comparator sort never runs on the shuffle's run buffers (it remains
// the contract the merge relies on and the order both paths must
// reproduce). The numeric path is two stable LSD radix passes
// over the composite sort key — sequence first, key image second — so
// image ties resolve by sequence without any comparator involvement;
// this is sound even for non-injective images (the two float zeros),
// because the record comparator itself orders keys by the same image.
// All remaining kinds order as strings (string kinds and the fmt
// fallback, matching keyCmpFor): they radix-sort by their 8-byte
// prefix and repair every multi-element equal-prefix run with a
// (key, seq) comparison sort; prefixes disambiguate most keys, so the
// runs are short.
func spillBufSort[K comparable, V any](kind orderKind) func([]spillRec[K, V]) {
	if numFn, _ := numericKeyFn[K](kind); numFn != nil {
		return func(buf []spillRec[K, V]) {
			n := len(buf)
			if n < 2 {
				return
			}
			seqs := make([]uint64, n)
			perm := make([]int32, n)
			for i := range buf {
				seqs[i] = buf[i].seq
				perm[i] = int32(i)
			}
			radixSortU64(seqs, perm, 0)
			images := make([]uint64, n)
			for i, p := range perm {
				images[i] = numFn(buf[p].key)
			}
			radixSortU64(images, perm, 0)
			gatherRecs(buf, perm)
		}
	}
	strFn, _ := stringKeyFn[K](kind)
	cmpFn := keyCmpFor[K](kind)
	return func(buf []spillRec[K, V]) {
		n := len(buf)
		if n < 2 {
			return
		}
		prefixes := make([]uint64, n)
		perm := make([]int32, n)
		for i := range buf {
			p, _ := strPrefix64(strFn(buf[i].key))
			prefixes[i] = p
			perm[i] = int32(i)
		}
		radixSortU64(prefixes, perm, 0)
		for i := 0; i < n; {
			j := i + 1
			for j < n && prefixes[j] == prefixes[i] {
				j++
			}
			if j-i > 1 {
				// Equal prefixes: distinct keys may share the image
				// (long strings, embedded NULs, fmt collisions), and
				// equal keys still need their sequence order restored —
				// the prefix radix was stable on buffer order, not on
				// seq.
				run := perm[i:j]
				slices.SortFunc(run, func(a, b int32) int {
					if c := cmpFn(buf[a].key, buf[b].key); c != 0 {
						return c
					}
					return cmp.Compare(buf[a].seq, buf[b].seq)
				})
			}
			i = j
		}
		gatherRecs(buf, perm)
	}
}

// gatherRecs reorders buf in place so position i holds the record
// originally at perm[i].
func gatherRecs[K comparable, V any](buf []spillRec[K, V], perm []int32) {
	out := make([]spillRec[K, V], len(buf))
	for i, p := range perm {
		out[i] = buf[p]
	}
	copy(buf, out)
}
