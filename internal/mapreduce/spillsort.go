package mapreduce

import (
	"cmp"
	"slices"
)

// This file gives the spilling shuffle backend the same comparator-free
// sorting the in-memory backend's group sort uses. The spill sorter
// orders records by (key, sequence); its generic comparator sort —
// O(n log n) indirect calls through a closure per comparison — was the
// bulk of the documented ~7x gap between the spill and memory backends.
// For every key type with an order-preserving projection (all scalar
// kinds, [2]int32, and string-ordered keys via their 8-byte prefix) the
// run buffers sort with linear radix passes over the image each record
// already carries (spillRec.img, cached at ingest).

// spillBufSort returns a radix-based sort for spill run buffers,
// ordering by (key, seq) exactly as the sorter's record comparator
// would; every key kind takes one of its two paths, so extsort's
// comparator sort never runs on the shuffle's run buffers (it remains
// the contract the merge relies on and the order both paths must
// reproduce). The numeric path is one stable LSD radix pass over the
// key images followed by a sequence repair of every equal-image run,
// so image ties resolve by sequence without any comparator deciding
// between distinct keys; this is sound even for non-injective images
// (the two float zeros), because the record comparator itself orders
// keys by the same image. All remaining kinds order as strings (string
// kinds and the fmt fallback, matching keyCmpFor): they radix-sort by
// their 8-byte prefix image and repair every multi-element
// equal-prefix run with a (key, seq) comparison sort; prefixes
// disambiguate most keys, so the runs are short.
//
// The returned closure owns a private radix scratch: extsort runs a
// sorter's buffer sorts one at a time on the ingest goroutine, so
// every spill of a partition reuses the same scratch with no locking.
func spillBufSort[K comparable, V any](kind orderKind) func([]spillRec[K, V]) {
	var scr radixScratch
	var tmp []spillRec[K, V]
	if numFn, _ := numericKeyFn[K](kind); numFn != nil {
		return func(buf []spillRec[K, V]) {
			n := len(buf)
			if n < 2 {
				return
			}
			scr.keys = growU64(scr.keys, n)
			scr.perm = growI32(scr.perm, n)
			images, perm := scr.keys, scr.perm
			for i := range buf {
				images[i] = buf[i].img
				perm[i] = int32(i)
			}
			radixSortU64(images, perm, 0, &scr)
			// One radix pass over the images (stable on buffer order),
			// then restore sequence order inside every equal-image run.
			// Runs are short when keys repeat moderately — a handful of
			// records per key per buffer — so the repair is cheap; a
			// heavily skewed run falls back to a radix pass over its
			// sequence numbers rather than a comparison sort. This
			// replaces a full-buffer sequence pre-pass (several more
			// radix passes over 40 varying sequence bits) with work
			// proportional to the actual tie mass.
			for i := 0; i < n; {
				j := i + 1
				for j < n && images[j] == images[i] {
					j++
				}
				if run := perm[i:j]; len(run) > 1 {
					if len(run) > 64 {
						scr.keys2 = growU64(scr.keys2, len(run))
						seqs := scr.keys2
						for k, p := range run {
							seqs[k] = buf[p].seq
						}
						radixSortU64(seqs[:len(run)], run, 0, &scr)
					} else {
						slices.SortFunc(run, func(a, b int32) int {
							return cmp.Compare(buf[a].seq, buf[b].seq)
						})
					}
				}
				i = j
			}
			tmp = gatherRecs(buf, perm, tmp)
		}
	}
	cmpFn := keyCmpFor[K](kind)
	return func(buf []spillRec[K, V]) {
		n := len(buf)
		if n < 2 {
			return
		}
		scr.keys = growU64(scr.keys, n)
		scr.perm = growI32(scr.perm, n)
		prefixes, perm := scr.keys, scr.perm
		for i := range buf {
			prefixes[i] = buf[i].img
			perm[i] = int32(i)
		}
		radixSortU64(prefixes, perm, 0, &scr)
		for i := 0; i < n; {
			j := i + 1
			for j < n && prefixes[j] == prefixes[i] {
				j++
			}
			if j-i > 1 {
				// Equal prefixes: distinct keys may share the image
				// (long strings, embedded NULs, fmt collisions), and
				// equal keys still need their sequence order restored —
				// the prefix radix was stable on buffer order, not on
				// seq.
				run := perm[i:j]
				slices.SortFunc(run, func(a, b int32) int {
					if c := cmpFn(buf[a].key, buf[b].key); c != 0 {
						return c
					}
					return cmp.Compare(buf[a].seq, buf[b].seq)
				})
			}
			i = j
		}
		tmp = gatherRecs(buf, perm, tmp)
	}
}

// gatherRecs reorders buf in place so position i holds the record
// originally at perm[i], scattering through tmp (grown as needed and
// returned for reuse by the next spill).
func gatherRecs[K comparable, V any](buf []spillRec[K, V], perm []int32, tmp []spillRec[K, V]) []spillRec[K, V] {
	if cap(tmp) < len(buf) {
		tmp = make([]spillRec[K, V], len(buf))
	}
	tmp = tmp[:len(buf)]
	for i, p := range perm {
		tmp[i] = buf[p]
	}
	copy(buf, tmp)
	return tmp
}
