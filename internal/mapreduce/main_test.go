package mapreduce

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// leakCheck arms a goroutine-leak guard: at cleanup it polls until the
// goroutine count returns to (near) its entry level, and fails with a
// full stack dump if anything is still running after a grace period.
// Register it FIRST in a helper that also registers teardown cleanups —
// t.Cleanup runs LIFO, so the guard then observes the world after the
// cluster and its workers have been torn down. The small slack absorbs
// runtime/testing goroutines that come and go on their own schedule.
func leakCheck(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		if t.Failed() {
			return // a failed test may legitimately strand goroutines mid-teardown
		}
		deadline := time.Now().Add(5 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before+2 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d at entry, %d after teardown\n%s", before, after, buf[:n])
	})
}

// distWorkerEnv re-executes this test binary as a dist worker process:
// TestMain sees the address, registers the test jobs, and serves
// instead of running tests. The process-kill test (dist_test.go) spawns
// workers this way, so a real SIGKILL hits a real process.
const distWorkerEnv = "MR_DIST_TEST_WORKER"

func TestMain(m *testing.M) {
	registerDistTestJobs()
	if addr := os.Getenv(distWorkerEnv); addr != "" {
		if err := ServeDistWorker(context.Background(), addr); err != nil {
			fmt.Fprintln(os.Stderr, "test dist worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// registerDistTestJobs registers every job the dist tests run. The
// registrations happen in both the coordinating test process (for
// in-process loopback workers) and the re-executed worker processes.
func registerDistTestJobs() {
	// The three equivalence corpora (equivalence_test.go).
	RegisterDistReduce("eq-wordcount", wcReduce)
	RegisterDistReduce("eq-int32", int32Reduce)
	RegisterDistReduce("eq-collide", collideReduce)

	// Chained self-messaging job: state forwarded to the node itself
	// plus a ring message to a neighbor (dist_test.go residency tests).
	RegisterDistJob("ring-step", func([]byte) (DistJob[int32, int64, int32, int64, int32, int64], error) {
		return DistJob[int32, int64, int32, int64, int32, int64]{
			Map:    ringMap,
			Reduce: ringReduce,
		}, nil
	})
	// Purely self-addressed variant: nothing may cross the wire once
	// the state is worker-resident.
	RegisterDistJob("self-step", func([]byte) (DistJob[int32, int64, int32, int64, int32, int64], error) {
		return DistJob[int32, int64, int32, int64, int32, int64]{
			Map:    selfMap,
			Reduce: ringReduce,
		}, nil
	})
	// Parameterized job: the reduce adds an offset that only the
	// coordinator knows, shipped per job via Config.DistParams.
	RegisterDistJob("param-add", func(params []byte) (DistJob[int32, int64, int32, int64, int32, int64], error) {
		if len(params) != 1 {
			return DistJob[int32, int64, int32, int64, int32, int64]{},
				fmt.Errorf("param-add wants a 1-byte offset, got %d bytes", len(params))
		}
		off := int64(params[0])
		return DistJob[int32, int64, int32, int64, int32, int64]{
			Reduce: func(k int32, vs []int64, out Emitter[int32, int64]) error {
				var sum int64
				for _, v := range vs {
					sum += v
				}
				out.Emit(k, sum+off)
				return nil
			},
		}, nil
	})
	// Counter-bumping job (worker counters merge into DistCounters). The
	// factory builds a fresh Counters per job execution — the intended
	// pattern, and load-bearing for in-process test workers, which would
	// otherwise share (and double-report) one instance.
	RegisterDistJob("counted", func([]byte) (DistJob[int32, int64, int32, int64, int32, int64], error) {
		counted := NewCounters()
		return DistJob[int32, int64, int32, int64, int32, int64]{
			Reduce: func(k int32, vs []int64, out Emitter[int32, int64]) error {
				counted.Inc("groups-seen", 1)
				out.Emit(k, int64(len(vs)))
				return nil
			},
			Counters: counted,
		}, nil
	})
	// Chained job whose map fails on the workers: the error must
	// surface from RunDS, not hang the flush barrier.
	RegisterDistJob("map-boom", func([]byte) (DistJob[int32, int64, int32, int64, int32, int64], error) {
		return DistJob[int32, int64, int32, int64, int32, int64]{
			Map: func(k int32, v int64, out Emitter[int32, int64]) error {
				if k == 11 {
					return fmt.Errorf("map boom on key %d", k)
				}
				out.Emit(k, v)
				return nil
			},
			Reduce: ringReduce,
		}, nil
	})
	// Slow reduce for the kill test: leaves a wide window in which to
	// SIGKILL a worker mid-reduce.
	RegisterDistReduce("slow-reduce", func(k int32, vs []int64, out Emitter[int32, int64]) error {
		time.Sleep(20 * time.Millisecond)
		out.Emit(k, int64(len(vs)))
		return nil
	})
	// Chained ring job with a slowed reduce: same output as "ring-step"
	// (the sleep changes nothing), but each round is wide enough that the
	// chaos suite's SIGKILL reliably lands mid-computation.
	RegisterDistJob("slow-ring", func([]byte) (DistJob[int32, int64, int32, int64, int32, int64], error) {
		return DistJob[int32, int64, int32, int64, int32, int64]{
			Map: ringMap,
			Reduce: func(k int32, vs []int64, out Emitter[int32, int64]) error {
				time.Sleep(5 * time.Millisecond)
				return ringReduce(k, vs, out)
			},
		}, nil
	})
	// Failing reduce: a user-function error must surface from Run.
	RegisterDistReduce("boom-reduce", func(k int32, vs []int64, out Emitter[int32, int64]) error {
		if k == 7 {
			return fmt.Errorf("boom on key %d", k)
		}
		out.Emit(k, 0)
		return nil
	})
}

// ringMap forwards each node's state to itself (identity route when
// chained) and sends a message around the ring.
func ringMap(k int32, v int64, out Emitter[int32, int64]) error {
	out.Emit(k, v*2)
	out.Emit((k+1)%ringN, v)
	return nil
}

// selfMap emits only self-addressed state.
func selfMap(k int32, v int64, out Emitter[int32, int64]) error {
	out.Emit(k, v+1)
	return nil
}

// ringReduce folds deterministically (order-sensitive).
func ringReduce(k int32, vs []int64, out Emitter[int32, int64]) error {
	acc := int64(0)
	for i, v := range vs {
		acc = acc*7 + v + int64(i)
	}
	out.Emit(k, acc)
	return nil
}

const ringN = 211

func ringInput() []Pair[int32, int64] {
	input := make([]Pair[int32, int64], ringN)
	for i := range input {
		input[i] = P(int32(i), int64(i)+3)
	}
	return input
}
