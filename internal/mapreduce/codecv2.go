package mapreduce

import (
	"bytes"
	"compress/flate"
	"encoding"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/mapreduce/remote"
)

// This file implements codec v2, the batch encoding shared by every
// bulk byte path: dist bucket frames, checkpoint/seed mirror blobs, and
// (through spillBlockCodec in spillcodec.go) extsort run files. The
// paper's cost model is dominated by bytes moved per round, and the
// per-pair row framing of v1 — uvarint key length, key, uvarint value
// length, value — pays two length prefixes per pair and encodes every
// id at full varint width. v2 re-encodes a batch column-wise:
//
//	blob     := marker byte, payload
//	marker   := 0x01 (v1 rows) | 0x02 (v2 columns) | 0x03 (v2 + flate)
//	payload  := key column, value column          (marker 0x02)
//	         |  uvarint rawLen, flate(columns)    (marker 0x03)
//
// Column encodings are resolved per concrete type (named types
// included, via reflect.Kind plus a layout-preserving slice cast):
//
//   - integer kinds of 4 or 8 bytes: zigzag varint deltas between
//     consecutive elements. The ids that dominate GreedyMR/StackMR
//     traffic (graph.NodeID, vector.TermID) arrive sorted or clustered,
//     so deltas are near zero and encode in one byte.
//   - strings: a dictionary interning each distinct string once per
//     blob (wire) or once per run (spill), then 1–3 byte refs. Refs are
//     written as token+1; token 0 escapes to an inline string, so a
//     batch with more than dictMaxEntries distinct strings still
//     round-trips.
//   - float64/float32: raw little-endian words (8/4 bytes).
//   - bools: bit-packed, eight per byte.
//   - [2]int32 (edge endpoints): two delta sub-columns.
//   - empty structs: zero bytes.
//   - everything else (BinaryMarshaler, slices, gob fallback): v1-style
//     length-prefixed elements in a column, through the element codec's
//     per-stream instantiation (forStream) so the gob fallback reuses
//     one en/decoder per column instead of one per record.
//
// A blob is fully self-contained: the coordinator relays chained-mode
// bucket frames between worker connections verbatim, stores MsgCkpt
// mirror blobs raw, and re-streams them as MsgSeed frames to arbitrary
// workers — so no decoder state (dictionary included) may span frames
// on the wire. The per-connection dictionary the design sketch called
// for is therefore realized per-frame on the wire and per-run on the
// spill path, where one process writes and reads the stream in order.
//
// The marker byte is the version negotiation: v2 readers fall back to
// v1 rows (old on-disk checkpoint blobs are tagged pairBlobV1 by the
// manifest loader), and remote.Proto gates mixed-build clusters.

// Pair-blob codec markers (the first byte of every versioned blob).
const (
	pairBlobV1      byte = 0x01 // v1 row framing: per-pair length-prefixed key, value
	pairBlobV2      byte = 0x02 // v2 columnar: key column, then value column
	pairBlobV2Flate byte = 0x03 // v2 columnar behind per-blob flate compression
)

// dictMaxEntries caps a string dictionary; further distinct strings
// escape to inline tokens rather than growing the table without bound.
const dictMaxEntries = 1 << 16

// compressMinLen is the smallest payload worth deflating: below this,
// the flate header alone erases any win.
const compressMinLen = 64

// maxPairCount bounds any wire-declared pair count after the per-type
// minimum-width check; a count past this is corruption regardless.
const maxPairCount = 1 << 31

// pairDict is the string-interning state of one dictionary column.
// Encoder side: idx/entries assign dense ids in first-seen order and
// emitted marks how many entries earlier blocks of the same run already
// wrote (always 0 for self-contained wire blobs). Decoder side: entries
// mirrors the encoder table as refs resolve.
type pairDict struct {
	idx     map[string]uint32
	entries []string
	emitted int
	tokens  []uint32 // encoder scratch: one token per pair in the batch
}

func (d *pairDict) reset() {
	clear(d.idx)
	d.entries = d.entries[:0]
	d.emitted = 0
}

var pairDictPool = sync.Pool{New: func() any { return &pairDict{idx: make(map[string]uint32)} }}

func getPairDict() *pairDict  { return pairDictPool.Get().(*pairDict) }
func putPairDict(d *pairDict) { d.reset(); pairDictPool.Put(d) }

// newPairDict returns an unpooled dictionary for per-run spill state.
func newPairDict() *pairDict { return &pairDict{idx: make(map[string]uint32)} }

// pairColEnc appends one column (all keys or all values of ps) to buf.
// pairColDec fills the same column of ps from data and returns the
// remaining bytes. The dictionary argument is nil for columns that do
// not intern strings.
type pairColEnc[K comparable, V any] func(buf []byte, ps []Pair[K, V], d *pairDict) ([]byte, error)
type pairColDec[K comparable, V any] func(data []byte, ps []Pair[K, V], d *pairDict) ([]byte, error)

// pairColCodec is the resolved v2 column codec for one (K, V) pair
// type, cached process-wide (resolution is deterministic per type).
type pairColCodec[K comparable, V any] struct {
	encK, encV pairColEnc[K, V]
	decK, decV pairColDec[K, V]
	kDict      bool // key column interns strings
	vDict      bool // value column interns strings

	// encFree and decFree recycle spill run en/decoders. They live
	// here — not on the per-job spillBlockCodec — because jobs are
	// born and die with their shuffles while this codec is cached for
	// the process lifetime: a run en/decoder's grown buffers then
	// survive across jobs, not just across one job's runs. Bounded
	// free lists with strong references, not a sync.Pool: a spilling
	// job allocates tens of MB between runs, so the GC fires often
	// enough to wipe a sync.Pool before the next run could reuse
	// anything. Pooled en/decoders carry no job state; the per-job
	// codec handle is re-stamped on every get.
	mu      sync.Mutex
	encFree []*spillRunEnc[K, V]
	decFree []*spillRunDec[K, V]
}

// spillFreeCap bounds each of a pair type's en/decoder free lists. A
// k-way merge parks up to k decoders when it drains, so the cap is
// sized to a realistically wide merge; beyond it, extras fall to the
// GC. The retained memory per entry is the staging block (spillBlockRecs
// pairs and seqs, cleared of pointers) plus the grown byte buffers.
const spillFreeCap = 32

func (pc *pairColCodec[K, V]) getEnc() *spillRunEnc[K, V] {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if n := len(pc.encFree); n > 0 {
		e := pc.encFree[n-1]
		pc.encFree[n-1] = nil
		pc.encFree = pc.encFree[:n-1]
		return e
	}
	return nil
}

func (pc *pairColCodec[K, V]) putEnc(e *spillRunEnc[K, V]) {
	pc.mu.Lock()
	if len(pc.encFree) < spillFreeCap {
		pc.encFree = append(pc.encFree, e)
	}
	pc.mu.Unlock()
}

func (pc *pairColCodec[K, V]) getDec() *spillRunDec[K, V] {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if n := len(pc.decFree); n > 0 {
		d := pc.decFree[n-1]
		pc.decFree[n-1] = nil
		pc.decFree = pc.decFree[:n-1]
		return d
	}
	return nil
}

func (pc *pairColCodec[K, V]) putDec(d *spillRunDec[K, V]) {
	pc.mu.Lock()
	if len(pc.decFree) < spillFreeCap {
		pc.decFree = append(pc.decFree, d)
	}
	pc.mu.Unlock()
}

var pairColCache sync.Map // reflect.Type of *Pair[K, V] -> *pairColCodec[K, V]

// pairColsFor returns the cached column codec for Pair[K, V]; one map
// load per call, so the blob codecs can resolve at the call site
// without threading a codec handle through every frame path.
func pairColsFor[K comparable, V any](kc spillCodec[K], vc spillCodec[V]) *pairColCodec[K, V] {
	key := reflect.TypeOf((*Pair[K, V])(nil))
	if v, ok := pairColCache.Load(key); ok {
		return v.(*pairColCodec[K, V])
	}
	pc := &pairColCodec[K, V]{}
	pc.encK, pc.decK, pc.kDict = resolveKeyCol[K, V](kc)
	pc.encV, pc.decV, pc.vDict = resolveValCol[K, V](vc)
	v, _ := pairColCache.LoadOrStore(key, pc)
	return v.(*pairColCodec[K, V])
}

// colIntKind reports whether k is an integer kind the delta column
// handles (paired with a size check selecting the 4- or 8-byte lane).
func colIntKind(k reflect.Kind) bool {
	switch k {
	case reflect.Int, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return true
	}
	return false
}

// minEnc8 is a type's minimum encoded width in eighths of a byte, the
// lower bound either blob version can reach per element (bit-packed
// bools reach one bit; empty structs reach zero). Used to bound
// wire-declared pair counts before any allocation.
func minEnc8(t reflect.Type) int {
	if t == nil {
		return 8
	}
	switch t.Kind() {
	case reflect.Bool:
		return 1
	case reflect.Struct:
		if t.NumField() == 0 {
			return 0
		}
		return 8
	case reflect.Float64:
		return 64
	case reflect.Float32:
		return 32
	case reflect.Array:
		if colIntKind(t.Elem().Kind()) {
			return 8 * t.Len()
		}
		return 8
	default:
		return 8
	}
}

// resolveKeyCol picks the key-column codec for K. Types with their own
// BinaryMarshaler keep it (through the generic column) rather than
// being reinterpreted by kind.
func resolveKeyCol[K comparable, V any](kc spillCodec[K]) (pairColEnc[K, V], pairColDec[K, V], bool) {
	var zero K
	t := reflect.TypeOf(zero)
	if _, isM := any(zero).(encoding.BinaryMarshaler); !isM && t != nil {
		switch k := t.Kind(); {
		case colIntKind(k) && t.Size() == 4:
			return func(buf []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return encDeltaKey(buf, *(*[]Pair[int32, V])(unsafe.Pointer(&ps))), nil
				}, func(data []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return decDeltaKey(data, *(*[]Pair[int32, V])(unsafe.Pointer(&ps)))
				}, false
		case colIntKind(k) && t.Size() == 8:
			return func(buf []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return encDeltaKey(buf, *(*[]Pair[int64, V])(unsafe.Pointer(&ps))), nil
				}, func(data []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return decDeltaKey(data, *(*[]Pair[int64, V])(unsafe.Pointer(&ps)))
				}, false
		case k == reflect.Float64:
			return func(buf []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return encF64Key(buf, *(*[]Pair[float64, V])(unsafe.Pointer(&ps))), nil
				}, func(data []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return decF64Key(data, *(*[]Pair[float64, V])(unsafe.Pointer(&ps)))
				}, false
		case k == reflect.Bool:
			return func(buf []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return encBoolKey(buf, *(*[]Pair[bool, V])(unsafe.Pointer(&ps))), nil
				}, func(data []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return decBoolKey(data, *(*[]Pair[bool, V])(unsafe.Pointer(&ps)))
				}, false
		case k == reflect.String:
			return func(buf []byte, ps []Pair[K, V], d *pairDict) ([]byte, error) {
					return encStrKey(buf, *(*[]Pair[string, V])(unsafe.Pointer(&ps)), d), nil
				}, func(data []byte, ps []Pair[K, V], d *pairDict) ([]byte, error) {
					return decStrKey(data, *(*[]Pair[string, V])(unsafe.Pointer(&ps)), d)
				}, true
		case k == reflect.Array && t.Len() == 2 && t.Elem().Kind() == reflect.Int32 && t.Size() == 8:
			return func(buf []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return encEdgeKey(buf, *(*[]Pair[[2]int32, V])(unsafe.Pointer(&ps))), nil
				}, func(data []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return decEdgeKey(data, *(*[]Pair[[2]int32, V])(unsafe.Pointer(&ps)))
				}, false
		case k == reflect.Struct && t.NumField() == 0:
			return func(buf []byte, _ []Pair[K, V], _ *pairDict) ([]byte, error) {
					return buf, nil
				}, func(data []byte, _ []Pair[K, V], _ *pairDict) ([]byte, error) {
					return data, nil
				}, false
		}
	}
	return genericKeyCol[K, V](kc)
}

// resolveValCol mirrors resolveKeyCol for the value column.
func resolveValCol[K comparable, V any](vc spillCodec[V]) (pairColEnc[K, V], pairColDec[K, V], bool) {
	var zero V
	t := reflect.TypeOf(zero)
	if _, isM := any(zero).(encoding.BinaryMarshaler); !isM && t != nil {
		switch k := t.Kind(); {
		case colIntKind(k) && t.Size() == 4:
			return func(buf []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return encDeltaVal(buf, *(*[]Pair[K, int32])(unsafe.Pointer(&ps))), nil
				}, func(data []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return decDeltaVal(data, *(*[]Pair[K, int32])(unsafe.Pointer(&ps)))
				}, false
		case colIntKind(k) && t.Size() == 8:
			return func(buf []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return encDeltaVal(buf, *(*[]Pair[K, int64])(unsafe.Pointer(&ps))), nil
				}, func(data []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return decDeltaVal(data, *(*[]Pair[K, int64])(unsafe.Pointer(&ps)))
				}, false
		case k == reflect.Float64:
			return func(buf []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return encF64Val(buf, *(*[]Pair[K, float64])(unsafe.Pointer(&ps))), nil
				}, func(data []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return decF64Val(data, *(*[]Pair[K, float64])(unsafe.Pointer(&ps)))
				}, false
		case k == reflect.Bool:
			return func(buf []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return encBoolVal(buf, *(*[]Pair[K, bool])(unsafe.Pointer(&ps))), nil
				}, func(data []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return decBoolVal(data, *(*[]Pair[K, bool])(unsafe.Pointer(&ps)))
				}, false
		case k == reflect.String:
			return func(buf []byte, ps []Pair[K, V], d *pairDict) ([]byte, error) {
					return encStrVal(buf, *(*[]Pair[K, string])(unsafe.Pointer(&ps)), d), nil
				}, func(data []byte, ps []Pair[K, V], d *pairDict) ([]byte, error) {
					return decStrVal(data, *(*[]Pair[K, string])(unsafe.Pointer(&ps)), d)
				}, true
		case k == reflect.Array && t.Len() == 2 && t.Elem().Kind() == reflect.Int32 && t.Size() == 8:
			return func(buf []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return encEdgeVal(buf, *(*[]Pair[K, [2]int32])(unsafe.Pointer(&ps))), nil
				}, func(data []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
					return decEdgeVal(data, *(*[]Pair[K, [2]int32])(unsafe.Pointer(&ps)))
				}, false
		case k == reflect.Struct && t.NumField() == 0:
			return func(buf []byte, _ []Pair[K, V], _ *pairDict) ([]byte, error) {
					return buf, nil
				}, func(data []byte, _ []Pair[K, V], _ *pairDict) ([]byte, error) {
					return data, nil
				}, false
		}
	}
	return genericValCol[K, V](vc)
}

// The strided column bodies below run tight loops directly over the
// pair slice — no gather scratch, no per-element closure calls. Named
// types reach them through the unsafe slice casts above, which only
// reinterpret between identically laid out element types (same kind,
// same size, same field order in Pair).

// Integer deltas work in uint64 space with wraparound, so one body
// serves signed and unsigned interpretations of each width exactly.
func encDeltaKey[N int32 | int64, V any](buf []byte, ps []Pair[N, V]) []byte {
	var prev uint64
	for i := range ps {
		cur := uint64(int64(ps[i].Key))
		buf = binary.AppendVarint(buf, int64(cur-prev))
		prev = cur
	}
	return buf
}

func decDeltaKey[N int32 | int64, V any](data []byte, ps []Pair[N, V]) ([]byte, error) {
	var prev uint64
	for i := range ps {
		d, n := binary.Varint(data)
		if n <= 0 {
			return nil, errSpillShort
		}
		data = data[n:]
		prev += uint64(d)
		ps[i].Key = N(int64(prev))
	}
	return data, nil
}

func encDeltaVal[K comparable, N int32 | int64](buf []byte, ps []Pair[K, N]) []byte {
	var prev uint64
	for i := range ps {
		cur := uint64(int64(ps[i].Value))
		buf = binary.AppendVarint(buf, int64(cur-prev))
		prev = cur
	}
	return buf
}

func decDeltaVal[K comparable, N int32 | int64](data []byte, ps []Pair[K, N]) ([]byte, error) {
	var prev uint64
	for i := range ps {
		d, n := binary.Varint(data)
		if n <= 0 {
			return nil, errSpillShort
		}
		data = data[n:]
		prev += uint64(d)
		ps[i].Value = N(int64(prev))
	}
	return data, nil
}

func encF64Key[V any](buf []byte, ps []Pair[float64, V]) []byte {
	for i := range ps {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ps[i].Key))
	}
	return buf
}

func decF64Key[V any](data []byte, ps []Pair[float64, V]) ([]byte, error) {
	if len(data) < 8*len(ps) {
		return nil, errSpillShort
	}
	for i := range ps {
		ps[i].Key = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return data[8*len(ps):], nil
}

func encF64Val[K comparable](buf []byte, ps []Pair[K, float64]) []byte {
	for i := range ps {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ps[i].Value))
	}
	return buf
}

func decF64Val[K comparable](data []byte, ps []Pair[K, float64]) ([]byte, error) {
	if len(data) < 8*len(ps) {
		return nil, errSpillShort
	}
	for i := range ps {
		ps[i].Value = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return data[8*len(ps):], nil
}

func encBoolKey[V any](buf []byte, ps []Pair[bool, V]) []byte {
	var b byte
	var nb uint
	for i := range ps {
		if ps[i].Key {
			b |= 1 << nb
		}
		if nb++; nb == 8 {
			buf = append(buf, b)
			b, nb = 0, 0
		}
	}
	if nb > 0 {
		buf = append(buf, b)
	}
	return buf
}

func decBoolKey[V any](data []byte, ps []Pair[bool, V]) ([]byte, error) {
	nbytes := (len(ps) + 7) / 8
	if len(data) < nbytes {
		return nil, errSpillShort
	}
	for i := range ps {
		ps[i].Key = data[i/8]&(1<<(i%8)) != 0
	}
	return data[nbytes:], nil
}

func encBoolVal[K comparable](buf []byte, ps []Pair[K, bool]) []byte {
	var b byte
	var nb uint
	for i := range ps {
		if ps[i].Value {
			b |= 1 << nb
		}
		if nb++; nb == 8 {
			buf = append(buf, b)
			b, nb = 0, 0
		}
	}
	if nb > 0 {
		buf = append(buf, b)
	}
	return buf
}

func decBoolVal[K comparable](data []byte, ps []Pair[K, bool]) ([]byte, error) {
	nbytes := (len(ps) + 7) / 8
	if len(data) < nbytes {
		return nil, errSpillShort
	}
	for i := range ps {
		ps[i].Value = data[i/8]&(1<<(i%8)) != 0
	}
	return data[nbytes:], nil
}

func encEdgeKey[V any](buf []byte, ps []Pair[[2]int32, V]) []byte {
	var prev int64
	for i := range ps {
		cur := int64(ps[i].Key[0])
		buf = binary.AppendVarint(buf, cur-prev)
		prev = cur
	}
	prev = 0
	for i := range ps {
		cur := int64(ps[i].Key[1])
		buf = binary.AppendVarint(buf, cur-prev)
		prev = cur
	}
	return buf
}

func decEdgeKey[V any](data []byte, ps []Pair[[2]int32, V]) ([]byte, error) {
	var prev int64
	for i := range ps {
		d, n := binary.Varint(data)
		if n <= 0 {
			return nil, errSpillShort
		}
		data = data[n:]
		prev += d
		ps[i].Key[0] = int32(prev)
	}
	prev = 0
	for i := range ps {
		d, n := binary.Varint(data)
		if n <= 0 {
			return nil, errSpillShort
		}
		data = data[n:]
		prev += d
		ps[i].Key[1] = int32(prev)
	}
	return data, nil
}

func encEdgeVal[K comparable](buf []byte, ps []Pair[K, [2]int32]) []byte {
	var prev int64
	for i := range ps {
		cur := int64(ps[i].Value[0])
		buf = binary.AppendVarint(buf, cur-prev)
		prev = cur
	}
	prev = 0
	for i := range ps {
		cur := int64(ps[i].Value[1])
		buf = binary.AppendVarint(buf, cur-prev)
		prev = cur
	}
	return buf
}

func decEdgeVal[K comparable](data []byte, ps []Pair[K, [2]int32]) ([]byte, error) {
	var prev int64
	for i := range ps {
		d, n := binary.Varint(data)
		if n <= 0 {
			return nil, errSpillShort
		}
		data = data[n:]
		prev += d
		ps[i].Value[0] = int32(prev)
	}
	prev = 0
	for i := range ps {
		d, n := binary.Varint(data)
		if n <= 0 {
			return nil, errSpillShort
		}
		data = data[n:]
		prev += d
		ps[i].Value[1] = int32(prev)
	}
	return data, nil
}

// String columns: uvarint count of dictionary entries new to this
// batch, the new entries (uvarint length + bytes, in first-assigned
// order so the decoder mirror matches), then one token per pair —
// token 0 escapes to an inline string (uvarint length + bytes follow),
// token t>0 references dictionary entry t-1. On decode each distinct
// string is allocated once and shared by every pair referencing it.
func encStrKey[V any](buf []byte, ps []Pair[string, V], d *pairDict) []byte {
	toks := d.tokens[:0]
	base := d.emitted
	for i := range ps {
		s := ps[i].Key
		if id, ok := d.idx[s]; ok {
			toks = append(toks, id+1)
		} else if len(d.entries) < dictMaxEntries {
			id := uint32(len(d.entries))
			d.idx[s] = id
			d.entries = append(d.entries, s)
			toks = append(toks, id+1)
		} else {
			toks = append(toks, 0)
		}
	}
	d.tokens = toks
	buf = binary.AppendUvarint(buf, uint64(len(d.entries)-base))
	for _, s := range d.entries[base:] {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	d.emitted = len(d.entries)
	for i, tok := range toks {
		buf = binary.AppendUvarint(buf, uint64(tok))
		if tok == 0 {
			s := ps[i].Key
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
	}
	return buf
}

func decStrKey[V any](data []byte, ps []Pair[string, V], d *pairDict) ([]byte, error) {
	data, err := decDictEntries(data, d)
	if err != nil {
		return nil, err
	}
	for i := range ps {
		s, rest, err := decStrToken(data, d)
		if err != nil {
			return nil, err
		}
		ps[i].Key = s
		data = rest
	}
	return data, nil
}

func encStrVal[K comparable](buf []byte, ps []Pair[K, string], d *pairDict) []byte {
	toks := d.tokens[:0]
	base := d.emitted
	for i := range ps {
		s := ps[i].Value
		if id, ok := d.idx[s]; ok {
			toks = append(toks, id+1)
		} else if len(d.entries) < dictMaxEntries {
			id := uint32(len(d.entries))
			d.idx[s] = id
			d.entries = append(d.entries, s)
			toks = append(toks, id+1)
		} else {
			toks = append(toks, 0)
		}
	}
	d.tokens = toks
	buf = binary.AppendUvarint(buf, uint64(len(d.entries)-base))
	for _, s := range d.entries[base:] {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	d.emitted = len(d.entries)
	for i, tok := range toks {
		buf = binary.AppendUvarint(buf, uint64(tok))
		if tok == 0 {
			s := ps[i].Value
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
	}
	return buf
}

func decStrVal[K comparable](data []byte, ps []Pair[K, string], d *pairDict) ([]byte, error) {
	data, err := decDictEntries(data, d)
	if err != nil {
		return nil, err
	}
	for i := range ps {
		s, rest, err := decStrToken(data, d)
		if err != nil {
			return nil, err
		}
		ps[i].Value = s
		data = rest
	}
	return data, nil
}

// decDictEntries mirrors one batch's new dictionary entries into d.
func decDictEntries(data []byte, d *pairDict) ([]byte, error) {
	nNew, n := binary.Uvarint(data)
	if n <= 0 || nNew > uint64(len(data)-n) {
		return nil, errSpillShort
	}
	if uint64(len(d.entries))+nNew > dictMaxEntries {
		return nil, fmt.Errorf("mapreduce: pair decode: dictionary overflow (%d entries)", uint64(len(d.entries))+nNew)
	}
	data = data[n:]
	for j := uint64(0); j < nNew; j++ {
		l, m := binary.Uvarint(data)
		if m <= 0 || l > uint64(len(data)-m) {
			return nil, errSpillShort
		}
		d.entries = append(d.entries, string(data[m:m+int(l)]))
		data = data[m+int(l):]
	}
	return data, nil
}

// decStrToken resolves one token: a dictionary ref or an inline escape.
func decStrToken(data []byte, d *pairDict) (string, []byte, error) {
	tok, n := binary.Uvarint(data)
	if n <= 0 {
		return "", nil, errSpillShort
	}
	data = data[n:]
	if tok == 0 {
		l, m := binary.Uvarint(data)
		if m <= 0 || l > uint64(len(data)-m) {
			return "", nil, errSpillShort
		}
		return string(data[m : m+int(l)]), data[m+int(l):], nil
	}
	if tok-1 >= uint64(len(d.entries)) {
		return "", nil, fmt.Errorf("mapreduce: pair decode: dictionary ref %d of %d", tok-1, len(d.entries))
	}
	return d.entries[tok-1], data, nil
}

// genericKeyCol is the column fallback for every type without a
// kind-based lane: v1-style length-prefixed elements through the
// resolved element codec. forStream gives stateful codecs (the gob
// fallback) one en/decoder per column instead of one per record.
func genericKeyCol[K comparable, V any](kc spillCodec[K]) (pairColEnc[K, V], pairColDec[K, V], bool) {
	enc := func(buf []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
		ec := kc.forStream()
		var scratch []byte
		for i := range ps {
			var err error
			if scratch, err = ec.enc(scratch[:0], ps[i].Key); err != nil {
				return nil, err
			}
			buf = binary.AppendUvarint(buf, uint64(len(scratch)))
			buf = append(buf, scratch...)
		}
		return buf, nil
	}
	dec := func(data []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
		dc := kc.forStream()
		for i := range ps {
			l, n := binary.Uvarint(data)
			if n <= 0 || l > uint64(len(data)-n) {
				return nil, errSpillShort
			}
			k, err := dc.dec(data[n : n+int(l)])
			if err != nil {
				return nil, err
			}
			ps[i].Key = k
			data = data[n+int(l):]
		}
		return data, nil
	}
	return enc, dec, false
}

func genericValCol[K comparable, V any](vc spillCodec[V]) (pairColEnc[K, V], pairColDec[K, V], bool) {
	enc := func(buf []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
		ec := vc.forStream()
		var scratch []byte
		for i := range ps {
			var err error
			if scratch, err = ec.enc(scratch[:0], ps[i].Value); err != nil {
				return nil, err
			}
			buf = binary.AppendUvarint(buf, uint64(len(scratch)))
			buf = append(buf, scratch...)
		}
		return buf, nil
	}
	dec := func(data []byte, ps []Pair[K, V], _ *pairDict) ([]byte, error) {
		dc := vc.forStream()
		for i := range ps {
			l, n := binary.Uvarint(data)
			if n <= 0 || l > uint64(len(data)-n) {
				return nil, errSpillShort
			}
			v, err := dc.dec(data[n : n+int(l)])
			if err != nil {
				return nil, err
			}
			ps[i].Value = v
			data = data[n+int(l):]
		}
		return data, nil
	}
	return enc, dec, false
}

// --- blob-level API ---------------------------------------------------

// blobScratch pools the staging buffers the compressed paths need (the
// uncompressed column image on encode, the inflated image on decode).
type blobScratch struct{ b []byte }

var blobScratchPool = sync.Pool{New: func() any { return &blobScratch{} }}

func getBlobScratch() *blobScratch  { return blobScratchPool.Get().(*blobScratch) }
func putBlobScratch(s *blobScratch) { blobScratchPool.Put(s) }

// frameScratch pools the encode buffers for outbound bulk frames
// (MsgBucket on both sides of the wire, MsgReduced on the worker).
// remote.Conn.WriteFrame copies the payload into its buffered writer
// before returning, so a frame buffer can be recycled the moment
// WriteFrame comes back. Frames that are retained past the send —
// MsgCkpt, whose blob the worker keeps aliased as the mirrored
// checkpoint — must never come from this pool.
type frameScratch struct{ b []byte }

var frameScratchPool = sync.Pool{New: func() any { return &frameScratch{} }}

func getFrameScratch() *frameScratch  { return frameScratchPool.Get().(*frameScratch) }
func putFrameScratch(s *frameScratch) { frameScratchPool.Put(s) }

// sliceWriter adapts an append target to io.Writer for the pooled
// flate writers.
type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

var flateWriterPool = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

type flateReader struct {
	br bytes.Reader
	r  io.ReadCloser
}

var flateReaderPool = sync.Pool{New: func() any {
	fr := &flateReader{}
	fr.r = flate.NewReader(&fr.br)
	return fr
}}

// deflateBlock appends the flate image of src to dst.
func deflateBlock(dst []byte, src []byte) ([]byte, error) {
	sw := &sliceWriter{b: dst}
	w := flateWriterPool.Get().(*flate.Writer)
	w.Reset(sw)
	if _, err := w.Write(src); err != nil {
		flateWriterPool.Put(w)
		return nil, err
	}
	err := w.Close()
	flateWriterPool.Put(w)
	if err != nil {
		return nil, err
	}
	return sw.b, nil
}

// inflateBlock fills dst (already sized to the raw length) from the
// flate image in src.
func inflateBlock(dst []byte, src []byte) error {
	fr := flateReaderPool.Get().(*flateReader)
	fr.br.Reset(src)
	if err := fr.r.(flate.Resetter).Reset(&fr.br, nil); err != nil {
		flateReaderPool.Put(fr)
		return err
	}
	_, err := io.ReadFull(fr.r, dst)
	flateReaderPool.Put(fr)
	if err != nil {
		return fmt.Errorf("mapreduce: pair decode: inflate: %w", err)
	}
	return nil
}

// appendPairCols appends the key and value columns of pairs using the
// given dictionaries (nil for self-contained blobs; the wire path
// substitutes pooled per-frame dictionaries).
func appendPairCols[K comparable, V any](buf []byte, pairs []Pair[K, V], pc *pairColCodec[K, V], kd, vd *pairDict) ([]byte, error) {
	if pc.kDict && kd == nil {
		kd = getPairDict()
		defer putPairDict(kd)
	}
	if pc.vDict && vd == nil {
		vd = getPairDict()
		defer putPairDict(vd)
	}
	buf, err := pc.encK(buf, pairs, kd)
	if err != nil {
		return nil, err
	}
	return pc.encV(buf, pairs, vd)
}

// encodePairs appends the versioned pair blob for pairs: a codec marker
// byte, then the v2 columnar payload, deflated when compress is set and
// the payload is both large enough to matter and actually shrinks.
// saved, when non-nil, accrues the bytes compression avoided.
func encodePairs[K comparable, V any](buf []byte, pairs []Pair[K, V], kc spillCodec[K], vc spillCodec[V], compress bool, saved *atomic.Int64) ([]byte, error) {
	pc := pairColsFor[K, V](kc, vc)
	if !compress {
		buf = append(buf, pairBlobV2)
		return appendPairCols(buf, pairs, pc, nil, nil)
	}
	scratch := getBlobScratch()
	defer putBlobScratch(scratch)
	raw, err := appendPairCols(scratch.b[:0], pairs, pc, nil, nil)
	scratch.b = raw
	if err != nil {
		return nil, err
	}
	if len(raw) < compressMinLen {
		buf = append(buf, pairBlobV2)
		return append(buf, raw...), nil
	}
	mark := len(buf)
	buf = append(buf, pairBlobV2Flate)
	buf = binary.AppendUvarint(buf, uint64(len(raw)))
	buf, err = deflateBlock(buf, raw)
	if err != nil {
		return nil, err
	}
	if comp := len(buf) - mark - 1; comp >= len(raw) {
		// Incompressible batch: ship the plain columns instead.
		buf = append(buf[:mark], pairBlobV2)
		return append(buf, raw...), nil
	} else if saved != nil {
		saved.Add(int64(len(raw) - comp))
	}
	return buf, nil
}

// encodePairsV1 appends the v1 row payload (no marker byte): count
// length-prefixed (key, value) encodings. Kept for the checkpoint
// compatibility fixtures and the fallback tests; live paths encode v2.
func encodePairsV1[K comparable, V any](buf []byte, pairs []Pair[K, V], kc spillCodec[K], vc spillCodec[V]) ([]byte, error) {
	var scratch []byte
	for i := range pairs {
		var err error
		if scratch, err = kc.enc(scratch[:0], pairs[i].Key); err != nil {
			return nil, err
		}
		buf = remote.AppendBytes(buf, scratch)
		if scratch, err = vc.enc(scratch[:0], pairs[i].Value); err != nil {
			return nil, err
		}
		buf = remote.AppendBytes(buf, scratch)
	}
	return buf, nil
}

// pairCap bounds a wire-declared pair count by the remaining payload —
// v1 rows carry at least two 1-byte length prefixes per pair, and v2
// columns at least the per-type minimum widths — so a corrupted count
// cannot drive a pre-allocation past the bytes that could possibly
// back it. (For compressed blobs the bound undershoots the raw image;
// it is a sizing hint, decode grows the slice as needed.)
func pairCap[K comparable, V any](cur *remote.Cursor, count int, kc spillCodec[K], vc spillCodec[V]) int {
	if count < 0 {
		return 0
	}
	rest := cur.Rest()
	if len(rest) > 0 && rest[0] == pairBlobV1 {
		if max := (len(rest) - 1) / 2; count > max {
			return max
		}
		return count
	}
	min8 := kc.min8 + vc.min8
	if min8 <= 0 {
		min8 = 1 // zero-width pairs allocate nothing; still bound the hint
	}
	if bound := len(rest) * 8 / min8; count > bound {
		return bound
	}
	return count
}

// decodePairs appends count decoded pairs to out, dispatching on the
// blob's codec marker: v2 columns (plain or deflated) or v1 rows (old
// checkpoint files, tagged by the manifest loader).
func decodePairs[K comparable, V any](cur *remote.Cursor, count int, kc spillCodec[K], vc spillCodec[V], out []Pair[K, V]) ([]Pair[K, V], error) {
	if count == 0 && len(cur.Rest()) == 0 {
		return out, nil
	}
	marker := cur.Byte()
	if err := cur.Err(); err != nil {
		return out, err
	}
	switch marker {
	case pairBlobV1:
		return decodePairsV1(cur, count, kc, vc, out)
	case pairBlobV2:
		return decodePairCols(cur.Rest(), count, kc, vc, out)
	case pairBlobV2Flate:
		rawLen := cur.Uvarint()
		if err := cur.Err(); err != nil {
			return out, err
		}
		if rawLen > maxPairCount {
			return out, fmt.Errorf("mapreduce: pair decode: %d-byte raw image", rawLen)
		}
		scratch := getBlobScratch()
		defer putBlobScratch(scratch)
		if uint64(cap(scratch.b)) < rawLen {
			scratch.b = make([]byte, rawLen)
		}
		scratch.b = scratch.b[:rawLen]
		if err := inflateBlock(scratch.b, cur.Rest()); err != nil {
			return out, err
		}
		return decodePairCols(scratch.b, count, kc, vc, out)
	default:
		return out, fmt.Errorf("mapreduce: pair decode: unknown codec marker 0x%02x", marker)
	}
}

// decodePairsV1 decodes count v1 rows (the marker byte already
// consumed). The element decode stays per-record and stateless: v1
// blobs were encoded record-at-a-time, so a gob fallback record is a
// self-contained stream.
func decodePairsV1[K comparable, V any](cur *remote.Cursor, count int, kc spillCodec[K], vc spillCodec[V], out []Pair[K, V]) ([]Pair[K, V], error) {
	if count > len(cur.Rest())/2 || count < 0 {
		return out, fmt.Errorf("pair count %d exceeds the %d-byte payload", count, len(cur.Rest()))
	}
	for i := 0; i < count; i++ {
		kb := cur.Bytes()
		vb := cur.Bytes()
		if err := cur.Err(); err != nil {
			return out, err
		}
		k, err := kc.dec(kb)
		if err != nil {
			return out, err
		}
		v, err := vc.dec(vb)
		if err != nil {
			return out, err
		}
		out = append(out, Pair[K, V]{Key: k, Value: v})
	}
	return out, nil
}

// decodePairCols decodes the v2 column image in data, appending count
// pairs to out. The columns parse in place from data (which may alias
// a connection's frame buffer or the pooled inflate scratch) — element
// decoders copy anything they keep, so no per-pair allocation happens
// beyond the output slice itself.
func decodePairCols[K comparable, V any](data []byte, count int, kc spillCodec[K], vc spillCodec[V], out []Pair[K, V]) ([]Pair[K, V], error) {
	pc := pairColsFor[K, V](kc, vc)
	min8 := kc.min8 + vc.min8
	if count < 0 || count > maxPairCount ||
		(min8 > 0 && uint64(count) > uint64(len(data))*8/uint64(min8)) {
		return out, fmt.Errorf("pair count %d exceeds the %d-byte payload", count, len(data))
	}
	base := len(out)
	out = growPairs(out, count)
	ps := out[base:]
	var kd, vd *pairDict
	if pc.kDict {
		kd = getPairDict()
		defer putPairDict(kd)
	}
	if pc.vDict {
		vd = getPairDict()
		defer putPairDict(vd)
	}
	data, err := pc.decK(data, ps, kd)
	if err != nil {
		return out[:base], err
	}
	if _, err = pc.decV(data, ps, vd); err != nil {
		return out[:base], err
	}
	return out, nil
}

// growPairs extends out by n elements, reusing spare capacity (the
// arena's checked-out buckets) when it fits.
func growPairs[K comparable, V any](out []Pair[K, V], n int) []Pair[K, V] {
	if need := len(out) + n; need <= cap(out) {
		return out[:need]
	}
	grown := make([]Pair[K, V], len(out)+n)
	copy(grown, out)
	return grown
}
