package mapreduce

import (
	"context"
	"reflect"
	"testing"
)

// This file pins the safety contract of the round-lifetime buffer
// recycler (arena.go): recycling must be invisible — bit-identical
// results — and buffers that escaped to the caller must never be
// reclaimed behind its back.

// chainedSumLoop runs a small iterative computation under a pooled
// driver: every round each key forwards its value to itself and sends a
// ping to a neighbor key, and the reduce folds the group. The body
// retains every round's output Dataset and, when sabotage is set,
// overwrites the PREVIOUS round's retained output with garbage before
// running the next round — if any round-N output buffer were recycled
// into round N+1's machinery, the garbage would corrupt the results.
// Returns the final collected state plus a trace of per-round sums.
func chainedSumLoop(t *testing.T, sabotage, recycle bool) ([]Pair[int32, int64], []int64) {
	t.Helper()
	const n = 160
	driver := NewDriver(Config{Mappers: 3, Reducers: 3})
	driver.MaxRounds = 64
	pairs := make([]Pair[int32, int64], n)
	for i := range pairs {
		pairs[i] = P(int32(i), int64(i+1))
	}
	state := PartitionDataset(pairs, driver.Partitions())

	var retained *Dataset[int32, int64]
	var trace []int64
	final, err := Loop(context.Background(), driver, state, func(
		ctx context.Context, round int, st *Dataset[int32, int64],
	) (*Dataset[int32, int64], error) {
		if round >= 4 {
			return nil, nil
		}
		if sabotage && retained != nil {
			for p := 0; p < retained.Partitions(); p++ {
				part := retained.parts[p]
				for i := range part {
					part[i] = Pair[int32, int64]{Key: -1, Value: -1 << 40}
				}
			}
		}
		out, err := RunJobDS(ctx, driver, "round", st,
			func(k int32, v int64, out Emitter[int32, int64]) error {
				out.Emit(k, v)
				out.Emit((k*7+1)%n, 1)
				return nil
			},
			func(k int32, vs []int64, out Emitter[int32, int64]) error {
				var sum int64
				for _, v := range vs {
					sum += v
				}
				out.Emit(k, sum)
				return nil
			})
		if err != nil {
			return nil, err
		}
		var roundSum int64
		next := MapValues(out, func(_ int32, v int64) (int64, bool) {
			roundSum += v
			return v, true
		})
		trace = append(trace, roundSum)
		if recycle {
			out.Recycle()
		} else {
			retained = out
		}
		return next, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return final.Collect(), trace
}

// TestRecycledRoundsImmuneToRetainedOutputMutation is the cross-round
// aliasing property test: two chained Loop workloads run back-to-back
// on the same engine configuration, one of which mutates every round's
// retained output Dataset before the next round runs. Round N+1's
// groups (and therefore every downstream result) must be unaffected,
// because output buffers are never reclaimed without an explicit
// Recycle.
func TestRecycledRoundsImmuneToRetainedOutputMutation(t *testing.T) {
	cleanState, cleanTrace := chainedSumLoop(t, false, false)
	dirtyState, dirtyTrace := chainedSumLoop(t, true, false)
	if !reflect.DeepEqual(cleanTrace, dirtyTrace) {
		t.Fatalf("mutating retained round outputs changed later rounds:\nclean: %v\ndirty: %v",
			cleanTrace, dirtyTrace)
	}
	if !reflect.DeepEqual(cleanState, dirtyState) {
		t.Fatal("mutating retained round outputs changed the final state")
	}
}

// TestExplicitRecycleIsTransparent pins the other direction: a body
// that recycles its consumed outputs (the GreedyMR pattern) produces
// results identical to one that never recycles.
func TestExplicitRecycleIsTransparent(t *testing.T) {
	plainState, plainTrace := chainedSumLoop(t, false, false)
	recState, recTrace := chainedSumLoop(t, false, true)
	if !reflect.DeepEqual(plainTrace, recTrace) {
		t.Fatalf("recycling changed round traces:\nplain: %v\nrecycled: %v", plainTrace, recTrace)
	}
	if !reflect.DeepEqual(plainState, recState) {
		t.Fatal("recycling changed the final state")
	}
}

// TestBackToBackLoopsShareOnePool runs two chained Loop workloads back
// to back on one driver (one BufferPool): the second workload runs
// entirely in the first one's recycled buffers, while the test still
// holds — and then mutates — every Dataset the first workload produced.
// The second workload's results must match a fresh engine's exactly.
func TestBackToBackLoopsShareOnePool(t *testing.T) {
	const n = 120
	pairs := make([]Pair[int32, int64], n)
	for i := range pairs {
		pairs[i] = P(int32(i), int64(2*i+1))
	}
	runLoop := func(driver *Driver, keepOutputs *[]*Dataset[int32, int64]) []Pair[int32, int64] {
		state := PartitionDataset(pairs, driver.Partitions())
		final, err := Loop(context.Background(), driver, state, func(
			ctx context.Context, round int, st *Dataset[int32, int64],
		) (*Dataset[int32, int64], error) {
			if round >= 3 {
				return nil, nil
			}
			out, err := RunJobDS(ctx, driver, "round", st,
				func(k int32, v int64, out Emitter[int32, int64]) error {
					out.Emit(k, v+1)
					out.Emit((k+13)%n, 2)
					return nil
				},
				func(k int32, vs []int64, out Emitter[int32, int64]) error {
					var sum int64
					for _, v := range vs {
						sum += v
					}
					out.Emit(k, sum)
					return nil
				})
			if err != nil {
				return nil, err
			}
			next := MapValues(out, func(_ int32, v int64) (int64, bool) { return v, true })
			if keepOutputs != nil {
				*keepOutputs = append(*keepOutputs, out)
			} else {
				out.Recycle()
			}
			return next, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return final.Collect()
	}

	shared := NewDriver(Config{Mappers: 2, Reducers: 2})
	shared.MaxRounds = 64
	var firstOutputs []*Dataset[int32, int64]
	first := runLoop(shared, &firstOutputs)
	// Poison everything the first workload handed out before the second
	// workload runs on the same pool.
	for _, d := range firstOutputs {
		for p := 0; p < d.Partitions(); p++ {
			part := d.parts[p]
			for i := range part {
				part[i] = Pair[int32, int64]{Key: -7, Value: -7}
			}
		}
	}
	second := runLoop(shared, nil)

	fresh := NewDriver(Config{Mappers: 2, Reducers: 2})
	fresh.MaxRounds = 64
	want := runLoop(fresh, nil)
	if !reflect.DeepEqual(first, want) {
		t.Fatal("first workload diverged from the fresh-engine reference")
	}
	if !reflect.DeepEqual(second, want) {
		t.Fatal("second workload on the shared pool diverged (cross-workload buffer aliasing)")
	}
}

// TestPoolStatsReportReuse checks that a chained computation actually
// recycles: after the first round the pool serves the round loop from
// its free lists, so later jobs report pooled bytes and an (eventually)
// stable miss count.
func TestPoolStatsReportReuse(t *testing.T) {
	driver := NewDriver(Config{Mappers: 2, Reducers: 2})
	driver.MaxRounds = 64
	pairs := make([]Pair[int32, int64], 300)
	for i := range pairs {
		pairs[i] = P(int32(i%50), int64(i))
	}
	state := PartitionDataset(pairs, driver.Partitions())
	_, err := Loop(context.Background(), driver, state, func(
		ctx context.Context, round int, st *Dataset[int32, int64],
	) (*Dataset[int32, int64], error) {
		if round >= 5 {
			return nil, nil
		}
		out, err := RunJobDS(ctx, driver, "round", st, Identity[int32, int64](),
			func(k int32, vs []int64, out Emitter[int32, int64]) error {
				out.Emit(k, vs[0])
				return nil
			})
		if err != nil {
			return nil, err
		}
		next := MapValues(out, func(_ int32, v int64) (int64, bool) { return v, true })
		out.Recycle()
		return next, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := driver.Trace()
	if len(trace) != 5 {
		t.Fatalf("expected 5 rounds, got %d", len(trace))
	}
	first, last := trace[0], trace[len(trace)-1]
	if last.PooledBytes == 0 {
		t.Error("steady-state round served no pooled bytes")
	}
	if last.PoolMisses > first.PoolMisses {
		t.Errorf("pool misses grew across rounds: first=%d last=%d", first.PoolMisses, last.PoolMisses)
	}
	if driver.Total().PooledBytes == 0 {
		t.Error("driver totals lost the pool stats")
	}
}
