package mapreduce

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/mapreduce/remote"
)

// fastHB is the elastic-scheduling test tempo: a 20ms heartbeat with a
// 2-miss window makes a hung worker suspect in 40ms and dead within
// ~320ms (the 8x escalation ceiling), and the short abort deadline keeps
// a never-acking stalled worker from holding a retry for the production
// default of 30s.
func fastHB() DistClusterOptions {
	return DistClusterOptions{
		Timeout:         30 * time.Second,
		HeartbeatEvery:  20 * time.Millisecond,
		HeartbeatMisses: 2,
		AbortTimeout:    500 * time.Millisecond,
	}
}

// startSchedCluster is startTestCluster with per-session worker options:
// worker goroutine i serves with wopts(i). Worker IDs are assigned in
// accept order, so i does not name the cluster-side index — the
// scheduling tests only care that exactly one session carries the fault,
// and they are symmetric in which one it is.
func startSchedCluster(tb testing.TB, n int, opts DistClusterOptions, wopts func(i int) DistWorkerOptions) *DistCluster {
	tb.Helper()
	leakCheck(tb)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	prev := opts.OnListen
	opts.OnListen = func(addr string) {
		if prev != nil {
			prev(addr)
		}
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				var o DistWorkerOptions
				if wopts != nil {
					o = wopts(i)
				}
				if err := ServeDistWorkerOpts(ctx, addr, o); err != nil {
					tb.Logf("in-process worker %d: %v", i, err)
				}
			}()
		}
	}
	cl, err := StartDistCluster(n, opts)
	if err != nil {
		cancel()
		tb.Fatal(err)
	}
	tb.Cleanup(func() {
		cl.Close()
		cancel()
		wg.Wait()
	})
	return cl
}

// stallFault arms the gray failure on one worker session: from the k-th
// job frame it writes, the session stops moving frames in both
// directions while its socket stays open — the coordinator never sees a
// transport error, only silence.
func stallFault(k int) func(i int) DistWorkerOptions {
	return func(i int) DistWorkerOptions {
		if i != 0 {
			return DistWorkerOptions{}
		}
		return DistWorkerOptions{Fault: &remote.Fault{Op: remote.FaultStall, AfterWrites: k}}
	}
}

// TestDistHeartbeatDetectsStalledWorker pins the health-detection path
// on its own, with speculation disabled: a worker that goes silent
// mid-run (stall, not disconnect — no transport error ever surfaces) is
// demoted to suspect when its heartbeat window expires, probed, and
// finally declared dead by escalation, after which the round retries on
// the survivor and the run ends bit-identical to the memory backend.
func TestDistHeartbeatDetectsStalledWorker(t *testing.T) {
	const rounds = 3
	want := memoryRingReference(t, rounds)
	cl := startSchedCluster(t, 2, fastHB(), stallFault(3))
	got := ringRounds(t, distCfg4(cl, "ring-step"), rounds)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("stalled run diverges from memory backend")
	}
	rs := cl.RecoveryStats()
	if rs.HeartbeatTimeouts < 1 {
		t.Fatalf("heartbeat monitor reported %d timeouts, want >= 1", rs.HeartbeatTimeouts)
	}
	if rs.WorkersLost < 1 || rs.Recoveries < 1 {
		t.Fatalf("stall ended with lost=%d retried=%d, want >= 1 each", rs.WorkersLost, rs.Recoveries)
	}
	t.Logf("hb timeouts=%d lost=%d retried=%d", rs.HeartbeatTimeouts, rs.WorkersLost, rs.Recoveries)
}

// TestDistStallSpeculatedChained is the seeded gray-failure matrix with
// speculation armed: a worker stalls at a seed-derived frame, the
// monitor suspects it within the heartbeat window and immediately
// launches a backup execution of its share on the healthy worker —
// without waiting for the much longer declared-dead escalation. The
// stalled worker can never win the completion race (it never acks), so
// every launch converts to a win, and the output must stay
// bit-identical through the speculative abort and re-execution.
func TestDistStallSpeculatedChained(t *testing.T) {
	const rounds = 3
	want := memoryRingReference(t, rounds)
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cl := startSchedCluster(t, 2, fastHB(), stallFault(remote.FaultPoint(seed, 2, 8)))
			cfg := distCfg4(cl, "ring-step")
			cfg.SpeculationFactor = 3
			got := ringRounds(t, cfg, rounds)
			if !reflect.DeepEqual(got, want) {
				t.Fatal("speculated run diverges from memory backend")
			}
			rs := cl.RecoveryStats()
			if rs.SpeculativeLaunches < 1 || rs.SpeculativeWins < 1 {
				t.Fatalf("speculation reported launches=%d wins=%d, want >= 1 each",
					rs.SpeculativeLaunches, rs.SpeculativeWins)
			}
			t.Logf("seed %d: launches=%d wins=%d hb timeouts=%d lost=%d",
				seed, rs.SpeculativeLaunches, rs.SpeculativeWins, rs.HeartbeatTimeouts, rs.WorkersLost)
		})
	}
}

// TestDistSlowWorkerSpeculatedNotKilled pins the straggler half of
// speculation: a worker that is uniformly slow (every job frame delayed)
// but perfectly responsive — heartbeats flow on schedule — must never be
// declared dead. The tail-lag detector spots it running far past the
// round median, re-executes its share on the fast worker, and the
// laggard acknowledges the abort and stays in the cluster, merely
// benched from future schedules.
func TestDistSlowWorkerSpeculatedNotKilled(t *testing.T) {
	const rounds = 3
	want := memoryRingReference(t, rounds)
	slow := func(i int) DistWorkerOptions {
		if i != 0 {
			return DistWorkerOptions{}
		}
		return DistWorkerOptions{Fault: &remote.Fault{
			Op: remote.FaultDelay, AfterWrites: 1, Delay: 40 * time.Millisecond, Repeat: true,
		}}
	}
	cl := startSchedCluster(t, 2, fastHB(), slow)
	cfg := distCfg4(cl, "ring-step")
	cfg.SpeculationFactor = 2
	got := ringRounds(t, cfg, rounds)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("straggler run diverges from memory backend")
	}
	rs := cl.RecoveryStats()
	if rs.SpeculativeLaunches < 1 {
		t.Fatalf("tail-lag speculation never launched (launches=%d)", rs.SpeculativeLaunches)
	}
	if rs.WorkersLost != 0 {
		t.Fatalf("a responsive straggler was declared dead (lost=%d)", rs.WorkersLost)
	}
	t.Logf("launches=%d wins=%d lost=%d", rs.SpeculativeLaunches, rs.SpeculativeWins, rs.WorkersLost)
}

// TestDistRebalanceAdoptsLateWorkerWithoutFailure pins live rebalancing:
// a worker that joins a healthy running cluster (no death, no retry) is
// adopted at the next job boundary, and the coordinator migrates part of
// the resident state onto it — seeding from the checkpoint mirror and
// shedding the superseded copies — while the chained run stays
// bit-identical. Nothing may be counted as lost or retried.
func TestDistRebalanceAdoptsLateWorkerWithoutFailure(t *testing.T) {
	const rounds = 3
	want := memoryRingReference(t, rounds)

	var mu sync.Mutex
	var clusterAddr string
	opts := fastHB()
	opts.AcceptLate = true
	opts.OnListen = func(addr string) {
		mu.Lock()
		clusterAddr = addr
		mu.Unlock()
	}
	cl := startSchedCluster(t, 2, opts, nil)

	ctx := context.Background()
	cfg := distCfg4(cl, "ring-step")
	ds := PartitionDataset(ringInput(), cfg.reducers())
	ds, _, err := RunDS(ctx, cfg, ds, ringMap, ringReduce)
	if err != nil {
		t.Fatal(err)
	}

	// A third worker dials in while everyone is healthy.
	mu.Lock()
	addr := clusterAddr
	mu.Unlock()
	lateCtx, lateCancel := context.WithCancel(context.Background())
	var lateWG sync.WaitGroup
	lateWG.Add(1)
	go func() {
		defer lateWG.Done()
		if err := ServeDistWorker(lateCtx, addr); err != nil {
			t.Logf("late worker: %v", err)
		}
	}()
	t.Cleanup(func() { lateCancel(); lateWG.Wait() })
	for i := 0; ; i++ {
		cl.mu.Lock()
		n := len(cl.late)
		cl.mu.Unlock()
		if n > 0 {
			break
		}
		if i > 500 {
			t.Fatal("late worker never completed the handshake")
		}
		time.Sleep(10 * time.Millisecond)
	}

	for i := 1; i < rounds; i++ {
		ds, _, err = RunDS(ctx, cfg, ds, ringMap, ringReduce)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if err := ds.Materialize(); err != nil {
		t.Fatal(err)
	}
	if got := ds.Collect(); !reflect.DeepEqual(got, want) {
		t.Fatal("rebalanced run diverges from memory backend")
	}
	if cl.Workers() != 3 {
		t.Fatalf("cluster holds %d workers after adoption, want 3", cl.Workers())
	}
	rs := cl.RecoveryStats()
	if rs.PartitionsMigrated < 1 {
		t.Fatalf("no partitions migrated to the adopted worker (migrated=%d)", rs.PartitionsMigrated)
	}
	if rs.WorkersLost != 0 || rs.Recoveries != 0 {
		t.Fatalf("failure-free rebalancing reported lost=%d retried=%d, want 0/0",
			rs.WorkersLost, rs.Recoveries)
	}
	t.Logf("migrated=%d reseeded=%d", rs.PartitionsMigrated, rs.Reseeded)
}

// BenchmarkDistStraggler prices what speculation buys: one of the two
// workers delays every job frame by 30ms — roughly 10x the healthy
// per-round wall, and past the tail-lag floor (the 40ms heartbeat
// window) so the detector can fire. With speculation the first
// laggard-hit round launches a backup and benches the slow worker, and
// every later round runs at the healthy worker's pace; without it
// every round waits out the laggard.
func BenchmarkDistStraggler(b *testing.B) {
	slow := func(i int) DistWorkerOptions {
		if i != 0 {
			return DistWorkerOptions{}
		}
		return DistWorkerOptions{Fault: &remote.Fault{
			Op: remote.FaultDelay, AfterWrites: 1, Delay: 30 * time.Millisecond, Repeat: true,
		}}
	}
	for _, bench := range []struct {
		name string
		spec float64
	}{{"spec-on", 2}, {"spec-off", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			cl := startSchedCluster(b, 2, fastHB(), slow)
			cfg := distCfg4(cl, "ring-step")
			cfg.SpeculationFactor = bench.spec
			ctx := context.Background()
			input := ringInput()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Run(ctx, cfg, input, ringMap, ringReduce); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
