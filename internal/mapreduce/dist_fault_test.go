package mapreduce

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/mapreduce/remote"
)

// ringRounds chains `rounds` ring jobs over cfg and returns the final
// materialized output — the shared workload of the fault suite. The
// registered job name in cfg decides what the dist workers actually run
// ("ring-step" or its slowed twin "slow-ring"); both fold exactly like
// ringReduce, so one memory reference serves every backend.
func ringRounds(t *testing.T, cfg Config, rounds int) []Pair[int32, int64] {
	t.Helper()
	ctx := context.Background()
	ds := PartitionDataset(ringInput(), cfg.reducers())
	for i := 0; i < rounds; i++ {
		next, _, err := RunDS(ctx, cfg, ds, ringMap, ringReduce)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		ds = next
	}
	if err := ds.Materialize(); err != nil {
		t.Fatal(err)
	}
	return ds.Collect()
}

// memoryRingReference is the fault-free ground truth the chaos tests
// diff against.
func memoryRingReference(t *testing.T, rounds int) []Pair[int32, int64] {
	t.Helper()
	return ringRounds(t, Config{Mappers: 4, Reducers: 4, Name: "ring-step"}, rounds)
}

// TestDistFaultMatrix is the deterministic in-process chaos matrix:
// for each seed, a transport fault severs one worker's connection at a
// seed-derived frame index (remote.FaultPoint) — alternating between
// the write and read direction, so both the bucket-streaming and the
// reader/relay failure paths trigger. A severed connection is
// indistinguishable from a SIGKILLed worker. Every run must recover at
// the round boundary and finish bit-identical to the memory backend.
func TestDistFaultMatrix(t *testing.T) {
	const rounds = 3
	want := memoryRingReference(t, rounds)
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cl := startTestCluster(t, 2)
			f := &remote.Fault{Op: remote.FaultSever}
			if seed%2 == 0 {
				f.AfterWrites = remote.FaultPoint(seed, 1, 12)
			} else {
				f.AfterReads = remote.FaultPoint(seed, 1, 8)
			}
			if err := cl.InjectFault(int(seed)%2, f); err != nil {
				t.Fatal(err)
			}
			got := ringRounds(t, distCfg4(cl, "ring-step"), rounds)
			if !reflect.DeepEqual(got, want) {
				t.Fatal("faulted run diverges from memory backend")
			}
			rs := cl.RecoveryStats()
			if rs.WorkersLost < 1 || rs.Recoveries < 1 {
				t.Fatalf("recovery stats report lost=%d retried=%d, want >= 1 each", rs.WorkersLost, rs.Recoveries)
			}
			t.Logf("seed %d: lost=%d retried=%d", seed, rs.WorkersLost, rs.Recoveries)
		})
	}
}

// TestDistFaultDelayHarmless pins the other fault flavor: a one-shot
// transport stall must not kill anyone — the run completes with zero
// recoveries and identical output.
func TestDistFaultDelayHarmless(t *testing.T) {
	const rounds = 3
	want := memoryRingReference(t, rounds)
	cl := startTestCluster(t, 2)
	if err := cl.InjectFault(1, &remote.Fault{
		Op: remote.FaultDelay, AfterWrites: remote.FaultPoint(7, 1, 12), Delay: 100 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	got := ringRounds(t, distCfg4(cl, "ring-step"), rounds)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("delayed run diverges from memory backend")
	}
	if rs := cl.RecoveryStats(); rs.WorkersLost != 0 || rs.Recoveries != 0 {
		t.Fatalf("a delay fault triggered recovery: lost=%d retried=%d", rs.WorkersLost, rs.Recoveries)
	}
}

// TestDistChaosKilledWorkers is the real-process chaos suite: three
// re-executed worker processes run the slowed chained ring job, and one
// of them — chosen by seed — takes a SIGKILL at a seed-derived delay,
// landing in a different round and phase per seed. Every run must
// complete bit-identical to the memory backend.
func TestDistChaosKilledWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	want := memoryRingReference(t, rounds)
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cl, err := StartDistCluster(3, DistClusterOptions{
				Timeout: 60 * time.Second,
				Spawn: func(addr string) *exec.Cmd {
					cmd := exec.Command(exe, "-test.run", "^$")
					cmd.Env = append(os.Environ(), distWorkerEnv+"="+addr)
					cmd.Stderr = os.Stderr
					return cmd
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			// The upper bound stays under the run's sleep-enforced minimum
			// (3 rounds x 53 keys x 5ms per worker), so the kill always
			// lands mid-computation.
			victim := int(seed) % 3
			delay := time.Duration(remote.FaultPoint(seed, 150, 700)) * time.Millisecond
			timer := time.AfterFunc(delay, func() {
				if err := cl.KillWorker(victim); err != nil {
					t.Errorf("kill worker %d: %v", victim, err)
				}
			})
			defer timer.Stop()

			cfg := distCfg4(cl, "slow-ring")
			got := ringRounds(t, cfg, rounds)
			if !reflect.DeepEqual(got, want) {
				t.Fatal("post-SIGKILL run diverges from memory backend")
			}
			rs := cl.RecoveryStats()
			if rs.WorkersLost < 1 || rs.Recoveries < 1 {
				t.Fatalf("recovery stats report lost=%d retried=%d, want >= 1 each", rs.WorkersLost, rs.Recoveries)
			}
			t.Logf("seed %d: killed worker %d after %v; lost=%d retried=%d reseeded=%d",
				seed, victim, delay, rs.WorkersLost, rs.Recoveries, rs.Reseeded)
		})
	}
}

// BenchmarkDistChainedCheckpoint prices the fault-tolerance machinery:
// identical chained ring rounds with checkpointing at the default
// (every retained round: MsgCkpt mirror frames plus worker run files)
// and disabled. The /on vs /off delta is the checkpoint overhead the
// CI bench comparison pins to <= 10%. The /on-sched case additionally
// arms the elastic-scheduling machinery (a 50ms heartbeat and
// speculation ready to fire) on the healthy cluster; its delta over /on
// is the chained-round idle overhead of scheduling, pinned to <= 5%.
// The /journal case adds the coordinator run journal on top of /on —
// every job's result journaled, every round committed — and its delta
// over /on is the durability overhead, pinned to <= 10%.
func BenchmarkDistChainedCheckpoint(b *testing.B) {
	for _, bench := range []struct {
		name    string
		every   int
		hb      time.Duration
		spec    float64
		journal bool
	}{
		{"on", 0, 0, 0, false},
		{"off", -1, 0, 0, false},
		{"on-sched", 0, 50 * time.Millisecond, 4, false},
		{"journal", 0, 0, 0, true},
	} {
		b.Run(bench.name, func(b *testing.B) {
			opts := DistClusterOptions{
				Timeout:        30 * time.Second,
				HeartbeatEvery: bench.hb,
			}
			if bench.journal {
				opts.JournalDir = b.TempDir()
			}
			cl := startSchedCluster(b, 2, opts, nil)
			cfg := distCfg4(cl, "ring-step")
			cfg.CheckpointEvery = bench.every
			cfg.SpeculationFactor = bench.spec
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ds := PartitionDataset(ringInput(), cfg.reducers())
				for r := 0; r < 3; r++ {
					next, _, err := RunDS(ctx, cfg, ds, ringMap, ringReduce)
					if err != nil {
						b.Fatal(err)
					}
					ds = next
					// Round boundary, as a driver would commit it; no-op
					// without a journal.
					cl.journalCommit(r)
				}
				if err := ds.Materialize(); err != nil {
					b.Fatal(err)
				}
				ds.Recycle()
			}
		})
	}
}

// TestDistWorkerWritesLocalCheckpoints pins the opt-in durable copy:
// a worker session given a CheckpointDir persists each round's retained
// partitions as run files that load back as the newest round.
func TestDistWorkerWritesLocalCheckpoints(t *testing.T) {
	dir := t.TempDir()
	var wg sync.WaitGroup
	cl, err := StartDistCluster(1, DistClusterOptions{
		Timeout: 30 * time.Second,
		OnListen: func(addr string) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := ServeDistWorkerOpts(context.Background(), addr,
					DistWorkerOptions{CheckpointDir: dir}); err != nil {
					t.Logf("in-process worker: %v", err)
				}
			}()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { cl.Close(); wg.Wait() }()

	ctx := context.Background()
	cfg := distCfg4(cl, "ring-step")
	ds := PartitionDataset(ringInput(), cfg.reducers())
	var lastSeq uint64
	for i := 0; i < 3; i++ {
		next, _, err := RunDS(ctx, cfg, ds, ringMap, ringReduce)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		ds = next
		lastSeq = ds.rem.seq
	}
	ck, err := loadLatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.seq != lastSeq {
		t.Fatalf("local checkpoint restored %+v, want newest round seq %d", ck, lastSeq)
	}
	if len(ck.parts) != cfg.reducers() {
		t.Fatalf("checkpoint holds %d partitions, want %d", len(ck.parts), cfg.reducers())
	}
	var n int
	for _, p := range ck.parts {
		n += p.count
	}
	if n != ringN {
		t.Fatalf("checkpoint holds %d records, want %d", n, ringN)
	}
	if err := ds.Materialize(); err != nil {
		t.Fatal(err)
	}
}

// TestDistLateJoinAdoptsPartitions pins the replacement-worker path:
// with AcceptLate a fresh worker dials into a running cluster, and the
// next recovery adopts it — the dead worker's partitions are re-seeded
// from checkpoint mirrors onto the adopted pool and the run completes
// bit-identical.
func TestDistLateJoinAdoptsPartitions(t *testing.T) {
	const rounds = 3
	want := memoryRingReference(t, rounds)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var clusterAddr string
	cl, err := StartDistCluster(2, DistClusterOptions{
		Timeout:    30 * time.Second,
		AcceptLate: true,
		OnListen: func(addr string) {
			mu.Lock()
			clusterAddr = addr
			mu.Unlock()
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := ServeDistWorker(context.Background(), addr); err != nil {
						t.Logf("in-process worker: %v", err)
					}
				}()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { cl.Close(); wg.Wait() }()

	ctx := context.Background()
	cfg := distCfg4(cl, "ring-step")
	ds := PartitionDataset(ringInput(), cfg.reducers())
	ds, _, err = RunDS(ctx, cfg, ds, ringMap, ringReduce)
	if err != nil {
		t.Fatal(err)
	}

	// The replacement dials in while the cluster is healthy; it waits in
	// the late pool until a recovery adopts it.
	mu.Lock()
	addr := clusterAddr
	mu.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ServeDistWorker(context.Background(), addr); err != nil {
			t.Logf("late worker: %v", err)
		}
	}()
	for i := 0; ; i++ {
		cl.mu.Lock()
		n := len(cl.late)
		cl.mu.Unlock()
		if n > 0 {
			break
		}
		if i > 500 {
			t.Fatal("late worker never completed the handshake")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill worker 0 at its very next frame; the remaining rounds must
	// recover onto the survivor plus the adopted replacement.
	if err := cl.InjectFault(0, &remote.Fault{Op: remote.FaultSever, AfterWrites: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < rounds; i++ {
		ds, _, err = RunDS(ctx, cfg, ds, ringMap, ringReduce)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if err := ds.Materialize(); err != nil {
		t.Fatal(err)
	}
	if got := ds.Collect(); !reflect.DeepEqual(got, want) {
		t.Fatal("late-join run diverges from memory backend")
	}
	if cl.Workers() != 3 {
		t.Fatalf("cluster holds %d workers after adoption, want 3 (2 initial + 1 late)", cl.Workers())
	}
	rs := cl.RecoveryStats()
	if rs.WorkersLost != 1 || rs.Recoveries < 1 || rs.Reseeded < 1 {
		t.Fatalf("recovery stats report lost=%d retried=%d reseeded=%d, want 1/>=1/>=1",
			rs.WorkersLost, rs.Recoveries, rs.Reseeded)
	}
}
