package mapreduce

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// sumCombiner folds int values into their sum.
func sumCombiner(_ string, values []int) []int {
	total := 0
	for _, v := range values {
		total += v
	}
	return []int{total}
}

func TestRunCombinedMatchesRun(t *testing.T) {
	text := "a b a c\nb a b c c\na a"
	input := []Pair[int, string]{}
	for i, line := range strings.Split(text, "\n") {
		input = append(input, P(i, line))
	}
	mapFn := func(_ int, line string, out Emitter[string, int]) error {
		for _, w := range strings.Fields(line) {
			out.Emit(w, 1)
		}
		return nil
	}
	redFn := func(w string, vs []int, out Emitter[string, int]) error {
		total := 0
		for _, v := range vs {
			total += v
		}
		out.Emit(w, total)
		return nil
	}
	plain, _, err := Run(context.Background(), Config{Mappers: 2, Reducers: 2},
		input, mapFn, redFn)
	if err != nil {
		t.Fatal(err)
	}
	combined, stats, err := RunCombined(context.Background(), Config{Mappers: 2, Reducers: 2},
		input, mapFn, sumCombiner, redFn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, combined) {
		t.Errorf("combined output differs:\nplain:    %v\ncombined: %v", plain, combined)
	}
	// The combiner must actually shrink the shuffle.
	if stats.ShuffleRecords >= stats.MapOutputRecords {
		t.Errorf("no shuffle reduction: shuffle=%d mapout=%d",
			stats.ShuffleRecords, stats.MapOutputRecords)
	}
}

func TestRunCombinedNilCombinerFallsBack(t *testing.T) {
	input := []Pair[int, int]{P(1, 2)}
	out, _, err := RunCombined[int, int, int, int, int, int](context.Background(), Config{},
		input, Identity[int, int](), nil,
		func(k int, vs []int, o Emitter[int, int]) error {
			o.Emit(k, vs[0])
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Value != 2 {
		t.Errorf("fallback output %v", out)
	}
}

func TestRunCombinedMapError(t *testing.T) {
	sentinel := errors.New("map fail")
	_, _, err := RunCombined(context.Background(), Config{Mappers: 2},
		[]Pair[int, int]{P(1, 1), P(2, 2)},
		func(k, v int, out Emitter[string, int]) error { return sentinel },
		sumCombiner,
		func(k string, vs []int, out Emitter[string, int]) error { return nil })
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestRunCombinedNilFunctions(t *testing.T) {
	_, _, err := RunCombined[int, int, string, int, string, int](
		context.Background(), Config{}, nil, nil, sumCombiner, nil)
	if err == nil {
		t.Error("nil map/reduce accepted")
	}
}

func TestRunCombinedPreservesPerKeyOrderWithinSplit(t *testing.T) {
	// A pass-through combiner must keep per-key emission order.
	passthrough := func(_ string, vs []int) []int { return vs }
	input := []Pair[int, int]{P(0, 0)}
	out, _, err := RunCombined(context.Background(), Config{Mappers: 1, Reducers: 1},
		input,
		func(_, _ int, out Emitter[string, int]) error {
			for i := 0; i < 5; i++ {
				out.Emit("k", i)
			}
			return nil
		},
		passthrough,
		func(k string, vs []int, out Emitter[string, []int]) error {
			out.Emit(k, vs)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out[0].Value, []int{0, 1, 2, 3, 4}) {
		t.Errorf("order broken: %v", out[0].Value)
	}
}

func TestCombineSplitGroups(t *testing.T) {
	pairs := []Pair[string, int]{
		{"x", 1}, {"y", 2}, {"x", 3}, {"y", 4}, {"z", 5},
	}
	out := combineSplit(pairs, sumCombiner)
	want := []Pair[string, int]{{"x", 4}, {"y", 6}, {"z", 5}}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("combineSplit = %v, want %v", out, want)
	}
}
