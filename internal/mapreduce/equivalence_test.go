package mapreduce

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// This file pins the partitioned, sort-grouped shuffle to the seed
// engine's semantics. referenceRun is a deliberately naive
// reimplementation of the original data path — buffer everything, walk
// it serially, group each partition with a map[K][]V, stream groups in
// sorted key order — and every backend must reproduce its output
// byte-for-byte on order-sensitive jobs.

// referenceRun executes a job the way the seed engine did.
func referenceRun[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	t *testing.T,
	mappers, reducers int,
	input []Pair[K1, V1],
	mapFn MapFunc[K1, V1, K2, V2],
	reduceFn ReduceFunc[K2, V2, K3, V3],
) []Pair[K3, V3] {
	t.Helper()
	// Map splits in order; concatenating split outputs in split order
	// reproduces the engine's deterministic intermediate order.
	var mid []Pair[K2, V2]
	for _, sp := range splitRange(len(input), mappers) {
		buf := &emitBuf[K2, V2]{}
		for j := sp.lo; j < sp.hi; j++ {
			if err := mapFn(input[j].Key, input[j].Value, buf); err != nil {
				t.Fatalf("reference map: %v", err)
			}
		}
		mid = append(mid, buf.pairs...)
	}
	// Partition and group exactly like the seed: per-partition
	// map[K][]V in arrival order.
	parts := make([]map[K2][]V2, reducers)
	for i := range parts {
		parts[i] = make(map[K2][]V2)
	}
	for _, p := range mid {
		idx := partitionIndex(p.Key, reducers)
		parts[idx][p.Key] = append(parts[idx][p.Key], p.Value)
	}
	// Reduce each partition's groups in sorted key order.
	var out []Pair[K3, V3]
	for _, part := range parts {
		keys := make([]K2, 0, len(part))
		for k := range part {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return lessKey(keys[i], keys[j]) })
		buf := &emitBuf[K3, V3]{}
		for _, k := range keys {
			if err := reduceFn(k, part[k], buf); err != nil {
				t.Fatalf("reference reduce: %v", err)
			}
		}
		out = append(out, buf.pairs...)
	}
	sortPairs(out)
	return out
}

// The three equivalence corpora below are shared with the distributed
// backend's tests (dist_test.go), which run the same functions on
// in-test worker processes — so the map/reduce functions live at file
// scope and the reduces register under the eq* job names in
// registerDistTestJobs (main_test.go).

// wcMap and wcReduce form the canonical string-keyed workload with an
// order-insensitive reduce made order-sensitive: it concatenates value
// positions so any value-order deviation shows.
func wcMap(k int, line string, out Emitter[string, string]) error {
	start := 0
	for j := 0; j <= len(line); j++ {
		if j == len(line) || line[j] == ' ' {
			if j > start {
				out.Emit(line[start:j], fmt.Sprintf("%d.%d", k, start))
			}
			start = j + 1
		}
	}
	return nil
}

func wcReduce(w string, vs []string, out Emitter[string, string]) error {
	s := ""
	for _, v := range vs {
		s += v + ","
	}
	out.Emit(w, s)
	return nil
}

func wordCountJob(t *testing.T, cfg Config) []Pair[string, string] {
	t.Helper()
	input := make([]Pair[int, string], 400)
	for i := range input {
		input[i] = P(i, fmt.Sprintf("w%d w%d w%d", i%31, i%7, i%3))
	}
	out, _, err := Run(context.Background(), cfg, input, wcMap, wcReduce)
	if err != nil {
		t.Fatal(err)
	}
	// The reference comparison re-runs the same functions outside Run.
	ref := referenceRun(t, cfg.mappers(), cfg.reducers(), input, wcMap, wcReduce)
	if !reflect.DeepEqual(out, ref) {
		t.Fatalf("%s backend diverges from the reference shuffle", cfg.Shuffle.kind())
	}
	return out
}

// TestShuffleMatchesReferenceWordCount pins both backends to the seed
// semantics on the canonical string-keyed job.
func TestShuffleMatchesReferenceWordCount(t *testing.T) {
	mem := wordCountJob(t, Config{Mappers: 4, Reducers: 3})
	spill := wordCountJob(t, spillCfg(64))
	if !reflect.DeepEqual(mem, spill) {
		t.Fatal("memory and spill outputs differ on word count")
	}
}

// TestShuffleMatchesReferenceIntKeys exercises the packed 32-bit radix
// path against the reference on an order-sensitive int32-keyed job.
func int32Map(k, v int32, out Emitter[int32, int32]) error {
	for f := int32(0); f < 5; f++ {
		out.Emit((k*17+f)%257-128, v+f) // negative keys included
	}
	return nil
}

func int32Reduce(k int32, vs []int32, out Emitter[int32, int64]) error {
	acc := int64(0)
	for i, v := range vs {
		acc = acc*31 + int64(v)*int64(i+1) // order-sensitive fold
	}
	out.Emit(k, acc)
	return nil
}

func int32Input() []Pair[int32, int32] {
	input := make([]Pair[int32, int32], 3000)
	for i := range input {
		input[i] = P(int32(i), int32(i))
	}
	return input
}

func TestShuffleMatchesReferenceIntKeys(t *testing.T) {
	input := int32Input()
	run := func(cfg Config) []Pair[int32, int64] {
		out, _, err := Run(context.Background(), cfg, input, int32Map, int32Reduce)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	mem := run(Config{Mappers: 4, Reducers: 4})
	ref := referenceRun(t, 4, 4, input, int32Map, int32Reduce)
	if !reflect.DeepEqual(mem, ref) {
		t.Fatal("memory backend diverges from reference on int32 keys")
	}
	if spill := run(spillCfg(128)); !reflect.DeepEqual(mem, spill) {
		t.Fatal("spill diverges from memory on int32 keys")
	}
}

// TestShuffleMatchesReferenceCompositeKeys covers the [2]int32 packed
// image and the fmt-fallback tie handling of the memory backend.
func TestShuffleMatchesReferenceCompositeKeys(t *testing.T) {
	input := make([]Pair[int, int], 500)
	for i := range input {
		input[i] = P(i, i)
	}
	mapFn := func(k, v int, out Emitter[[2]int32, int]) error {
		out.Emit([2]int32{int32(k % 13), int32(k % 5)}, v)
		return nil
	}
	redFn := func(k [2]int32, vs []int, out Emitter[[2]int32, string]) error {
		s := ""
		for _, v := range vs {
			s += fmt.Sprintf("%d,", v)
		}
		out.Emit(k, s)
		return nil
	}
	out, _, err := Run(context.Background(), Config{Mappers: 3, Reducers: 2}, input, mapFn, redFn)
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceRun(t, 3, 2, input, mapFn, redFn)
	if !reflect.DeepEqual(out, ref) {
		t.Fatal("memory backend diverges from reference on [2]int32 keys")
	}
}

// TestMemoryBackendGroupsCollidingFmtKeys checks the comparator-tie
// slow path: distinct composite keys whose fmt representations collide
// must still meet Go-map grouping semantics (each distinct key is one
// group, value order preserved) — the case the spill backend rejects.
func collideMap(k, v int, out Emitter[badKey, int]) error {
	// Alternate between two distinct keys that both print "{a  b}".
	if k%2 == 0 {
		out.Emit(badKey{"a ", "b"}, v)
	} else {
		out.Emit(badKey{"a", " b"}, v)
	}
	return nil
}

func collideReduce(k badKey, vs []int, out Emitter[int, []int]) error {
	out.Emit(len(vs), append([]int(nil), vs...))
	return nil
}

func collideInput() []Pair[int, int] {
	return []Pair[int, int]{P(0, 0), P(1, 1), P(2, 2), P(3, 3)}
}

// checkCollideOutput verifies the Go-map grouping semantics of the
// colliding-key corpus: two groups of two values, value order intact.
func checkCollideOutput(t *testing.T, out []Pair[int, []int]) {
	t.Helper()
	if len(out) != 2 {
		t.Fatalf("colliding keys produced %d groups, want 2: %v", len(out), out)
	}
	for _, p := range out {
		if len(p.Value) != 2 {
			t.Fatalf("group has %d values, want 2: %v", len(p.Value), out)
		}
		if p.Value[1] != p.Value[0]+2 {
			t.Fatalf("value order broken within tie group: %v", p.Value)
		}
	}
}

func TestMemoryBackendGroupsCollidingFmtKeys(t *testing.T) {
	out, _, err := Run(context.Background(), Config{Mappers: 1, Reducers: 1}, collideInput(),
		collideMap, collideReduce)
	if err != nil {
		t.Fatal(err)
	}
	checkCollideOutput(t, out)
}

// TestChunkedIngestionPreservesValueOrder is the property test for the
// AddBucket contract: a split's pairs delivered across many bucket
// handoffs (the spilling backend's chunked feeding) must reach reducers
// in global emission order — split index ascending, then emission order
// within the split — for both backends, at several bucket sizes.
func TestChunkedIngestionPreservesValueOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const splits, parts, perSplit = 3, 2, 500
	// Emission log: emissions[s] lists (key, value) in emission order;
	// values encode (split, emission index) so order is checkable.
	type emission struct {
		key int32
		val int64
	}
	emissions := make([][]emission, splits)
	for s := range emissions {
		for i := 0; i < perSplit; i++ {
			emissions[s] = append(emissions[s], emission{
				key: int32(rng.Intn(37)),
				val: int64(s)<<32 | int64(i),
			})
		}
	}
	feed := func(backend ShuffleBackend[int32, int64], bucketCap int) {
		t.Helper()
		for s := range emissions {
			buckets := make([][]Pair[int32, int64], parts)
			flush := func(p int) {
				if len(buckets[p]) > 0 {
					if err := backend.AddBucket(s, p, buckets[p]); err != nil {
						t.Fatal(err)
					}
					buckets[p] = nil
				}
			}
			for _, e := range emissions[s] {
				p := partitionIndex(e.key, parts)
				buckets[p] = append(buckets[p], P(e.key, e.val))
				if len(buckets[p]) >= bucketCap {
					flush(p)
				}
			}
			for p := range buckets {
				flush(p)
			}
		}
	}
	collect := func(backend ShuffleBackend[int32, int64]) map[int32][]int64 {
		t.Helper()
		streams, err := backend.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		got := map[int32][]int64{}
		var prevKeys []int32
		for _, st := range streams {
			prevKeys = prevKeys[:0]
			for {
				k, vs, ok, err := st.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				for _, pk := range prevKeys {
					if !lessKey(pk, k) {
						t.Fatalf("keys out of order within partition: %d before %d", pk, k)
					}
				}
				prevKeys = append(prevKeys, k)
				got[k] = append([]int64(nil), vs...)
			}
			st.Close()
		}
		return got
	}
	want := map[int32][]int64{}
	for s := range emissions {
		for _, e := range emissions[s] {
			want[e.key] = append(want[e.key], e.val)
		}
	}
	for _, bucketCap := range []int{1, 3, 64, perSplit * splits} {
		mem := newMemoryShuffle[int32, int64](parts, splits, nil)
		feed(mem, bucketCap)
		if got := collect(mem); !reflect.DeepEqual(got, want) {
			t.Fatalf("memory backend broke value order at bucket cap %d", bucketCap)
		}
		mem.Close()

		sp, err := newSpillShuffle[int32, int64](parts, splits, ShuffleConfig{MemoryBudget: 128}, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		feed(sp, bucketCap)
		if got := collect(sp); !reflect.DeepEqual(got, want) {
			t.Fatalf("spill backend broke value order at bucket cap %d", bucketCap)
		}
		sp.Close()
	}
}

// TestSortKeyValsStability pins the radix sort permutation itself:
// random keys from a small domain, values recording original positions,
// sorted output must be key-ascending and position-ascending within
// equal keys — for every key-kind code path.
func TestSortKeyValsStability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 4096
	check := func(name string, sortedKeys []int64, positions []int) {
		t.Helper()
		for i := 1; i < n; i++ {
			if sortedKeys[i] < sortedKeys[i-1] {
				t.Fatalf("%s: keys out of order at %d", name, i)
			}
			if sortedKeys[i] == sortedKeys[i-1] && positions[i] < positions[i-1] {
				t.Fatalf("%s: stability broken at %d", name, i)
			}
		}
	}
	t.Run("int32-packed", func(t *testing.T) {
		keys := make([]int32, n)
		vals := make([]int, n)
		for i := range keys {
			keys[i] = int32(rng.Intn(97)) - 48
			vals[i] = i
		}
		sk, sv, run := sortKeyVals(keys, vals, keyOrderKind[int32](), nil, 0, nil)
		if !run.exact || run.ord == nil {
			t.Fatal("int32 keys should produce an exact sorted run")
		}
		asInt64 := make([]int64, n)
		for i, k := range sk {
			asInt64[i] = int64(k)
		}
		check("int32", asInt64, sv)
	})
	t.Run("int64-wide", func(t *testing.T) {
		keys := make([]int64, n)
		vals := make([]int, n)
		for i := range keys {
			keys[i] = (int64(rng.Intn(31)) - 15) << 40 // spread beyond 32 bits
			vals[i] = i
		}
		sk, sv, _ := sortKeyVals(keys, vals, keyOrderKind[int64](), nil, 0, nil)
		check("int64", sk, sv)
	})
	t.Run("string-prefix-and-long", func(t *testing.T) {
		words := []string{"a", "ab", "abc", "abcdefgh", "abcdefghi", "abcdefghz", "zz", ""}
		keys := make([]string, n)
		vals := make([]int, n)
		for i := range keys {
			keys[i] = words[rng.Intn(len(words))]
			vals[i] = i
		}
		sk, sv, _ := sortKeyVals(keys, vals, keyOrderKind[string](), nil, 0, nil)
		for i := 1; i < n; i++ {
			if sk[i] < sk[i-1] {
				t.Fatalf("strings out of order at %d: %q < %q", i, sk[i], sk[i-1])
			}
			if sk[i] == sk[i-1] && sv[i] < sv[i-1] {
				t.Fatalf("string stability broken at %d", i)
			}
		}
	})
	t.Run("named-int32", func(t *testing.T) {
		keys := make([]nodeKey, n)
		vals := make([]int, n)
		for i := range keys {
			keys[i] = nodeKey(rng.Intn(61) - 30)
			vals[i] = i
		}
		sk, sv, run := sortKeyVals(keys, vals, keyOrderKind[nodeKey](), nil, 0, nil)
		if !run.exact {
			t.Fatal("named int32 keys should produce an exact run")
		}
		asInt64 := make([]int64, n)
		for i, k := range sk {
			asInt64[i] = int64(k)
		}
		check("named-int32", asInt64, sv)
	})
	t.Run("float64", func(t *testing.T) {
		keys := make([]float64, n)
		vals := make([]int, n)
		for i := range keys {
			keys[i] = float64(rng.Intn(21)-10) / 4
		}
		for i := range vals {
			vals[i] = i
		}
		sk, sv, run := sortKeyVals(keys, vals, keyOrderKind[float64](), nil, 0, nil)
		if run.ord != nil {
			t.Fatal("float keys must not claim an image-equality run")
		}
		for i := 1; i < n; i++ {
			if sk[i] < sk[i-1] {
				t.Fatalf("floats out of order at %d", i)
			}
			if sk[i] == sk[i-1] && sv[i] < sv[i-1] {
				t.Fatalf("float stability broken at %d", i)
			}
		}
	})
}

// TestFloatSignedZeroKeysGroupInEmissionOrder pins the f64Ord zero
// normalization: -0.0 and +0.0 are one Go map key, so they must form a
// single group whose values stay in global emission order — distinct
// images would let the stable sort segregate the two spellings.
func TestFloatSignedZeroKeysGroupInEmissionOrder(t *testing.T) {
	negZero := math.Copysign(0, -1)
	input := []Pair[int, float64]{P(0, 0.0), P(1, negZero), P(2, 0.0), P(3, 1.5), P(4, negZero)}
	out, _, err := Run(context.Background(), Config{Mappers: 1, Reducers: 1}, input,
		func(k int, f float64, out Emitter[float64, int]) error {
			out.Emit(f, k)
			return nil
		},
		func(f float64, vs []int, out Emitter[float64, []int]) error {
			out.Emit(f, append([]int(nil), vs...))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("want 2 groups (zero merged, 1.5), got %v", out)
	}
	if !reflect.DeepEqual(out[0].Value, []int{0, 1, 2, 4}) {
		t.Fatalf("zero group values %v, want emission order [0 1 2 4]", out[0].Value)
	}
}

// TestStringKeysWithNULBytesStayDistinct pins the prefix-ambiguity
// repair: "a" and "a\x00" share an 8-byte zero-padded prefix image but
// are distinct keys, and must stay distinct groups in lexicographic
// order on both backends.
func TestStringKeysWithNULBytesStayDistinct(t *testing.T) {
	keys := []string{"a", "a\x00", "a", "a\x00\x00", "b\x00", "b", "a\x00"}
	input := make([]Pair[int, int], len(keys))
	for i := range input {
		input[i] = P(i, i)
	}
	run := func(cfg Config) []Pair[string, []int] {
		out, _, err := Run(context.Background(), cfg, input,
			func(k, v int, out Emitter[string, int]) error {
				out.Emit(keys[k], v)
				return nil
			},
			CollectValues[string, int]())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	mem := run(Config{Mappers: 2, Reducers: 1})
	want := []Pair[string, []int]{
		P("a", []int{0, 2}),
		P("a\x00", []int{1, 6}),
		P("a\x00\x00", []int{3}),
		P("b", []int{5}),
		P("b\x00", []int{4}),
	}
	if !reflect.DeepEqual(mem, want) {
		t.Fatalf("NUL-byte keys misgrouped:\ngot  %q\nwant %q", mem, want)
	}
	if spill := run(spillCfg(2)); !reflect.DeepEqual(mem, spill) {
		t.Fatal("NUL-byte keys diverge across backends")
	}
}

// TestDatasetChainedMatchesReference pins the partition-resident
// dataflow to the seed engine's semantics: a chained RunDS job over an
// aligned Dataset must reproduce the naive reference shuffle's output
// for a value-order-insensitive job (the contract the iterative
// algorithms follow — arrival order differs between dataflows by
// design, so order-sensitive folds are pinned by the flat tests above).
func TestDatasetChainedMatchesReference(t *testing.T) {
	const n = 211
	input := make([]Pair[int32, int64], n)
	for i := range input {
		input[i] = P(int32(i), int64(i)+7)
	}
	mapFn := func(v int32, s int64, out Emitter[int32, int64]) error {
		out.Emit(v, s*100) // self message: identity-routed when chained
		out.Emit((v+3)%n, s)
		return nil
	}
	redFn := func(v int32, vs []int64, out Emitter[int32, int64]) error {
		var sum int64
		for _, s := range vs {
			sum += s
		}
		out.Emit(v, sum*31+int64(len(vs)))
		return nil
	}
	cfg := Config{Mappers: 4, Reducers: 4}
	ds, stats, err := RunDS(context.Background(), cfg,
		PartitionDataset(input, cfg.reducers()), mapFn, redFn)
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceRun(t, cfg.mappers(), cfg.reducers(), input, mapFn, redFn)
	if !reflect.DeepEqual(ds.Collect(), ref) {
		t.Fatal("chained Dataset job diverges from the reference shuffle")
	}
	if stats.LocalRouted != n {
		t.Fatalf("LocalRouted = %d, want %d", stats.LocalRouted, n)
	}
	// And on the spilling backend (radix-sorted per-partition runs).
	sp, _, err := RunDS(context.Background(), spillCfg(32),
		PartitionDataset(input, spillCfg(32).reducers()), mapFn, redFn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp.Collect(), ref) {
		t.Fatal("chained spill Dataset job diverges from the reference shuffle")
	}
}

// TestDistMatchesMemoryAndSpill pins the distributed backend to the
// same semantics: two in-test workers over loopback TCP must reproduce
// the memory and spill backends' output bit-for-bit on the three
// equivalence corpora (string-keyed wordcount, order-sensitive int32
// fold, fmt-colliding composite keys). The reduces run inside the
// worker goroutines via the registry (registerDistTestJobs), exactly as
// they would in a worker process.
func TestDistMatchesMemoryAndSpill(t *testing.T) {
	cl := startTestCluster(t, 2)

	t.Run("wordcount", func(t *testing.T) {
		mem := wordCountJob(t, Config{Mappers: 4, Reducers: 3, Name: "eq-wordcount"})
		spill := wordCountJob(t, spillCfg(64))
		dist := wordCountJob(t, distCfg(cl, "eq-wordcount"))
		if !reflect.DeepEqual(mem, dist) {
			t.Fatal("dist diverges from memory on word count")
		}
		if !reflect.DeepEqual(spill, dist) {
			t.Fatal("dist diverges from spill on word count")
		}
	})
	t.Run("int32", func(t *testing.T) {
		input := int32Input()
		run := func(cfg Config) []Pair[int32, int64] {
			out, _, err := Run(context.Background(), cfg, input, int32Map, int32Reduce)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		mem := run(Config{Mappers: 4, Reducers: 4, Name: "eq-int32"})
		dist := run(distCfg4(cl, "eq-int32"))
		if !reflect.DeepEqual(mem, dist) {
			t.Fatal("dist diverges from memory on int32 keys")
		}
		spillCfg := spillCfg(128)
		spillCfg.Reducers = 4
		if spill := run(spillCfg); !reflect.DeepEqual(spill, dist) {
			t.Fatal("dist diverges from spill on int32 keys")
		}
	})
	t.Run("fmt-collision", func(t *testing.T) {
		mem, _, err := Run(context.Background(), Config{Mappers: 1, Reducers: 1, Name: "eq-collide"},
			collideInput(), collideMap, collideReduce)
		if err != nil {
			t.Fatal(err)
		}
		cfg := distCfg(cl, "eq-collide")
		cfg.Mappers, cfg.Reducers = 1, 1
		dist, _, err := Run(context.Background(), cfg, collideInput(), collideMap, collideReduce)
		if err != nil {
			t.Fatal(err)
		}
		checkCollideOutput(t, dist)
		if !reflect.DeepEqual(mem, dist) {
			t.Fatal("dist diverges from memory on fmt-colliding keys")
		}
	})
}
