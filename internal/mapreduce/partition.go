package mapreduce

import (
	"cmp"
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
	"reflect"
	"slices"
	"strings"
)

// partitionIndex assigns a key to one of r partitions. It special-cases
// the key types used throughout this repository (integer node and term
// identifiers, strings, and small integer tuples) and falls back to
// hashing the fmt representation for anything else. The mapping is pure:
// the same key always lands in the same partition, which is the only
// property the algorithms rely on.
func partitionIndex[K comparable](key K, r int) int {
	if r <= 1 {
		return 0
	}
	return int(hashKey(key) % uint64(r))
}

// FNV-1a constants (matching hash/fnv's 64-bit variant).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashKey produces a stable 64-bit hash for a key. The string case is an
// inlined FNV-1a loop over the string bytes — identical output to
// fnv.New64a, without the hasher and []byte-conversion allocations that
// would otherwise cost one heap object per emitted string-keyed pair.
func hashKey[K comparable](key K) uint64 {
	switch k := any(key).(type) {
	case int:
		return mix64(uint64(k))
	case int32:
		return mix64(uint64(uint32(k)))
	case int64:
		return mix64(uint64(k))
	case uint32:
		return mix64(uint64(k))
	case uint64:
		return mix64(k)
	case string:
		h := uint64(fnvOffset64)
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= fnvPrime64
		}
		return h
	case float64:
		if k == 0 {
			// -0.0 == +0.0 as a Go map key, so both spellings must land
			// in one partition (and, chained, take the same identity
			// route): hash the canonical +0.0 bits for either. Mirrors
			// f64Ord's shared zero image in the group sort.
			return mix64(0)
		}
		return mix64(math.Float64bits(k))
	case [2]int32:
		return mix64(uint64(uint32(k[0]))<<32 | uint64(uint32(k[1])))
	default:
		h := fnv.New64a()
		fmt.Fprintf(h, "%v", key)
		return h.Sum64()
	}
}

// mix64 is the SplitMix64 finalizer; it spreads consecutive integer ids
// uniformly across partitions.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// lessKey imposes a deterministic total order on keys of a comparable
// type. Like hashKey it special-cases the common key types and falls back
// to the fmt representation. For bulk sorting use sortPairsByKey, which
// avoids formatting per comparison; lessKey suits one-off comparisons.
func lessKey[K comparable](a, b K) bool {
	switch x := any(a).(type) {
	case int:
		return x < any(b).(int)
	case int32:
		return x < any(b).(int32)
	case int64:
		return x < any(b).(int64)
	case uint32:
		return x < any(b).(uint32)
	case uint64:
		return x < any(b).(uint64)
	case string:
		return x < any(b).(string)
	case float64:
		return x < any(b).(float64)
	case [2]int32:
		y := any(b).([2]int32)
		if x[0] != y[0] {
			return x[0] < y[0]
		}
		return x[1] < y[1]
	default:
		return fmt.Sprint(a) < fmt.Sprint(b)
	}
}

// orderKind classifies how keys of type K are ordered, resolved once per
// job (not per comparison) so the shuffle's group sort can pick the
// cheapest strategy: typed comparisons for the exact builtin key types,
// a decorate-sort-undecorate pass for named scalar kinds (one reflect
// call per element instead of two per comparison), and a string
// decoration for the fmt fallback (one formatting per element instead of
// two per comparison).
type orderKind int

const (
	// orderFast: lessKey has a typed fast path for K.
	orderFast orderKind = iota
	// orderInt, orderUint, orderFloat, orderString: K is a named type
	// of a scalar kind, compared through reflection.
	orderInt
	orderUint
	orderFloat
	orderString
	// orderFmt: no intrinsic order; keys order by fmt representation.
	orderFmt
)

// keyOrderKind resolves the ordering strategy for K.
func keyOrderKind[K comparable]() orderKind {
	var zero K
	switch any(zero).(type) {
	case int, int32, int64, uint32, uint64, string, float64, [2]int32:
		return orderFast
	}
	t := reflect.TypeOf(zero)
	if t == nil {
		return orderFmt
	}
	switch t.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return orderInt
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return orderUint
	case reflect.Float32, reflect.Float64:
		return orderFloat
	case reflect.String:
		return orderString
	}
	return orderFmt
}

// keyCmpFor returns the three-way comparator realizing the resolved key
// order, consistent with the sort permutation sortedPermByKey produces
// (both order floats by their total-order bit transform, and fmt
// fallback keys by their formatted representation). All kinds agree
// with lessKey on the exact builtin types for every key the repository
// uses; the only refinements are named scalar kinds (reflection instead
// of formatting) and NaN floats (a definite total position instead of
// comparing unordered).
func keyCmpFor[K comparable](kind orderKind) func(a, b K) int {
	switch kind {
	case orderFast:
		return cmpKeyFast[K]
	case orderInt:
		return func(a, b K) int {
			return cmp.Compare(reflect.ValueOf(a).Int(), reflect.ValueOf(b).Int())
		}
	case orderUint:
		return func(a, b K) int {
			return cmp.Compare(reflect.ValueOf(a).Uint(), reflect.ValueOf(b).Uint())
		}
	case orderFloat:
		return func(a, b K) int {
			return cmp.Compare(f64Ord(reflect.ValueOf(a).Float()), f64Ord(reflect.ValueOf(b).Float()))
		}
	case orderString:
		return func(a, b K) int {
			return strings.Compare(reflect.ValueOf(a).String(), reflect.ValueOf(b).String())
		}
	default:
		return func(a, b K) int { return strings.Compare(fmt.Sprint(a), fmt.Sprint(b)) }
	}
}

// cmpKeyFast is the typed three-way comparator for the exact builtin
// key types (one type switch per call, no reflection or formatting).
func cmpKeyFast[K comparable](a, b K) int {
	switch x := any(a).(type) {
	case int:
		return cmp.Compare(x, any(b).(int))
	case int32:
		return cmp.Compare(x, any(b).(int32))
	case int64:
		return cmp.Compare(x, any(b).(int64))
	case uint32:
		return cmp.Compare(x, any(b).(uint32))
	case uint64:
		return cmp.Compare(x, any(b).(uint64))
	case string:
		return strings.Compare(x, any(b).(string))
	case float64:
		return cmp.Compare(f64Ord(x), f64Ord(any(b).(float64)))
	case [2]int32:
		y := any(b).([2]int32)
		if c := cmp.Compare(x[0], y[0]); c != 0 {
			return c
		}
		return cmp.Compare(x[1], y[1])
	default:
		return strings.Compare(fmt.Sprint(a), fmt.Sprint(b))
	}
}

// --- order-preserving uint64 key transforms ---------------------------
//
// The group sort never calls a comparator: each key is projected once to
// a uint64 whose unsigned order equals the key order, and the projected
// keys are radix-sorted. This is the decorate-sort-undecorate idea taken
// to its cheapest form — O(n) passes over machine words instead of
// O(n log n) comparator calls.

// i64Ord maps a signed integer to its order-preserving unsigned image.
func i64Ord(v int64) uint64 { return uint64(v) ^ (1 << 63) }

// f64Ord maps a float64 to an unsigned image whose order is the IEEE
// total order: negatives (bits flipped) below positives (sign bit set).
// NaNs land above +Inf or below -Inf by their sign bit — a definite,
// deterministic position, unlike the unordered < they'd otherwise get.
// The two zeros share one image: -0.0 == +0.0 as Go map keys, so they
// form a single group whose values must stay in emission order — giving
// them distinct images would let the stable sort segregate them.
func f64Ord(f float64) uint64 {
	if f == 0 {
		return 1 << 63 // canonical +0.0 image (f == 0 is false for NaN)
	}
	b := math.Float64bits(f)
	if b>>63 != 0 {
		return ^b
	}
	return b | (1 << 63)
}

// i32Ord32 is the 32-bit signed-integer transform used by the packed
// (key, index) sort path; unsigned 32-bit keys are their own image.
func i32Ord32(v int32) uint32 { return uint32(v) ^ (1 << 31) }

// numericKeyFn returns the uint64 projection for K, or nil when K
// orders as a string (string kinds and the fmt fallback). width32
// reports that the projection fits 32 bits, enabling the packed path.
func numericKeyFn[K comparable](kind orderKind) (fn func(K) uint64, width32 bool) {
	var zero K
	switch any(zero).(type) {
	case int:
		return func(k K) uint64 { return i64Ord(int64(any(k).(int))) }, false
	case int32:
		return func(k K) uint64 { return uint64(i32Ord32(any(k).(int32))) }, true
	case int64:
		return func(k K) uint64 { return i64Ord(any(k).(int64)) }, false
	case uint32:
		return func(k K) uint64 { return uint64(any(k).(uint32)) }, true
	case uint64:
		return func(k K) uint64 { return any(k).(uint64) }, false
	case float64:
		return func(k K) uint64 { return f64Ord(any(k).(float64)) }, false
	case [2]int32:
		return func(k K) uint64 {
			x := any(k).([2]int32)
			return uint64(i32Ord32(x[0]))<<32 | uint64(i32Ord32(x[1]))
		}, false
	}
	switch kind {
	case orderInt:
		if w32 := reflect.TypeFor[K]().Bits() <= 32; w32 {
			return func(k K) uint64 { return uint64(i32Ord32(int32(reflect.ValueOf(k).Int()))) }, true
		}
		return func(k K) uint64 { return i64Ord(reflect.ValueOf(k).Int()) }, false
	case orderUint:
		if w32 := reflect.TypeFor[K]().Bits() <= 32; w32 {
			return func(k K) uint64 { return uint64(uint32(reflect.ValueOf(k).Uint())) }, true
		}
		return func(k K) uint64 { return reflect.ValueOf(k).Uint() }, false
	case orderFloat:
		return func(k K) uint64 { return f64Ord(reflect.ValueOf(k).Float()) }, false
	}
	return nil, false
}

// stringKeyFn returns the string projection for K (identity for plain
// strings, reflection for named string kinds, fmt for the fallback) and
// whether the projection is the identity — an identity projection needs
// no materialized side array, the keys themselves serve.
func stringKeyFn[K comparable](kind orderKind) (fn func(K) string, identity bool) {
	var zero K
	if _, ok := any(zero).(string); ok {
		return func(k K) string { return any(k).(string) }, true
	}
	if kind == orderString {
		return func(k K) string { return reflect.ValueOf(k).String() }, false
	}
	return func(k K) string { return fmt.Sprint(k) }, false
}

// keyImageFn returns the uint64 projection used to accelerate ordered
// comparisons of K: the order-preserving numeric image when K has one,
// otherwise the 8-byte big-endian prefix of the key's string form. The
// projection is order-consistent — img(a) < img(b) implies a < b under
// the resolved key order, and only equal images require a real key
// comparison — which is exactly what the spill merge needs to compare
// machine words instead of boxing keys.
func keyImageFn[K comparable](kind orderKind) func(K) uint64 {
	if numFn, _ := numericKeyFn[K](kind); numFn != nil {
		return numFn
	}
	strFn, _ := stringKeyFn[K](kind)
	return func(k K) uint64 {
		p, _ := strPrefix64(strFn(k))
		return p
	}
}

// radixScratch holds the reusable temporaries of the radix sorts: the
// caller-level image/permutation arrays and radixSortU64's scatter
// buffers and counting histograms. A zero value is ready to use;
// buffers grow to the largest sort seen and are reused across calls, so
// a steady-state round loop performs no sort-scratch allocation.
type radixScratch struct {
	keys   []uint64 // images / packed keys / prefixes
	keys2  []uint64 // second image array (the (seq, image) double pass)
	perm   []int32  // permutation payload
	tmpK   []uint64 // radix scatter buffer
	tmpP   []int32  // radix scatter buffer for the payload
	counts []int32  // histograms (cleared per pass)
}

// growU64 returns a slice of length n, reusing buf's storage when it is
// large enough.
func growU64(buf []uint64, n int) []uint64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]uint64, n)
}

// growI32 is growU64 for int32 slices.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int32, n)
}

// histogram returns a zeroed histogram of length n carved from the
// scratch counts buffer (allocating only on growth).
func (s *radixScratch) histogram(n int) []int32 {
	s.counts = growI32(s.counts, n)
	clear(s.counts)
	return s.counts
}

// sortedRun describes the sorted key-image array that rides along with
// the sorted keys of one partition, letting the group stream find group
// boundaries by comparing machine words instead of keys.
type sortedRun struct {
	// ord holds one uint64 per element, ascending in key order; the
	// image of element i is ord[i] >> shift.
	ord   []uint64
	shift uint
	// exact reports that image equality coincides with key equality
	// (injective projections: integer kinds, [2]int32, and string
	// prefixes when no key exceeds 8 bytes), so boundary detection
	// needs no key comparison at all. When false, equal images still
	// narrow the boundary test to a key-equality check.
	exact bool
}

// sortKeyVals stable-sorts the parallel keys and vals slices by key and
// returns the sorted slices (freshly gathered; the inputs are consumed
// as scratch) plus the sorted key images for boundary scanning: keys
// ascending under the resolved key order, ties (equal keys) in original
// slice order. Stability is load-bearing — within equal keys the
// original order is (split index, emission index), which is the
// engine's value-order contract.
//
// No comparator ever runs: each key is projected once to an
// order-preserving uint64 image (numeric kinds) or an 8-byte string
// prefix, the images are radix-sorted carrying the original index, and
// the outputs are gathered through the resulting permutation
// (sequential writes, prefetchable reads). Indexes are int32: one
// partition's in-memory pairs can't meaningfully exceed 2^31 records
// (that's already >16 GiB of Pair headers).
//
// ar/part/rs supply recycled buffers (all may be nil/zero): the
// returned slices and run.ord are checked out of ar when one is set —
// the caller owns returning them — while the permutation array and any
// float-path image array are checked back in here. Inputs of length
// >= 2 are pure scratch after the call and the caller returns those
// too; length < 2 inputs are returned unchanged as the outputs.
//
// Float keys return no run (run.ord == nil): their images are injective
// on bit patterns but not on key equality in either direction (-0.0 and
// +0.0 are equal keys with distinct images), so the stream falls back
// to key comparisons.
func sortKeyVals[K comparable, V any](
	keys []K, vals []V, kind orderKind,
	ar *roundArena[K, V], part int, rs *radixScratch,
) ([]K, []V, sortedRun) {
	n := len(keys)
	isFloat := kind == orderFloat
	if !isFloat {
		var zero K
		_, isFloat = any(zero).(float64)
	}
	if n < 2 {
		return keys, vals, sortedRun{}
	}
	if numFn, width32 := numericKeyFn[K](kind); numFn != nil {
		if width32 {
			// Packed path: key image in the high 32 bits, index in the
			// low 32. Radix passes touch only the key bytes; the LSD
			// scatter is stable, so equal keys keep ascending index
			// order without the index ever being sorted on.
			packed := ar.getU64(part, n)
			for i, k := range keys {
				packed[i] = numFn(k)<<32 | uint64(uint32(i))
			}
			radixSortU64(packed, nil, 4, rs)
			outK := ar.getKeys(part, n)
			outV := ar.getVals(part, n)
			for i, p := range packed {
				j := uint32(p)
				outK[i] = keys[j]
				outV[i] = vals[j]
			}
			return outK, outV, sortedRun{ord: packed, shift: 32, exact: true}
		}
		images := ar.getU64(part, n)
		perm := ar.getI32(part, n)
		for i, k := range keys {
			images[i] = numFn(k)
			perm[i] = int32(i)
		}
		radixSortU64(images, perm, 0, rs)
		outK, outV := gatherPerm(perm, keys, vals, ar, part)
		ar.putI32(part, perm)
		if isFloat {
			ar.putU64(part, images)
			return outK, outV, sortedRun{}
		}
		return outK, outV, sortedRun{ord: images, exact: true}
	}
	// String-ordered keys: radix-sort by an 8-byte big-endian prefix
	// (order-preserving for lexicographic comparison), then repair the
	// rare runs whose prefixes collide with a comparison sort. Plain
	// string keys are projected straight off the key slice; only
	// non-identity projections (named string kinds, fmt fallback)
	// materialize a side array, so each key formats exactly once.
	strFn, identity := stringKeyFn[K](kind)
	prefixes := ar.getU64(part, n)
	perm := ar.getI32(part, n)
	var strs []string
	str := func(i int32) string { return strFn(keys[i]) }
	if !identity {
		strs = make([]string, n)
		for i, k := range keys {
			strs[i] = strFn(k)
		}
		str = func(i int32) string { return strs[i] }
	}
	anyAmbiguous := false
	for i := range keys {
		p, ambiguous := strPrefix64(str(int32(i)))
		anyAmbiguous = anyAmbiguous || ambiguous
		prefixes[i] = p
		perm[i] = int32(i)
	}
	radixSortU64(prefixes, perm, 0, rs)
	if anyAmbiguous {
		// Only ambiguous keys (longer than the prefix, or containing
		// NUL bytes indistinguishable from the zero padding) can make
		// two distinct keys collide; otherwise the prefix order is
		// exact and no repair pass is needed.
		fixupPrefixRuns(prefixes, perm, str)
	}
	outK, outV := gatherPerm(perm, keys, vals, ar, part)
	ar.putI32(part, perm)
	// A prefix run is exact only when the projection itself is
	// injective on key equality — true for unambiguous real strings
	// (identity or named kinds), never for the fmt fallback, where
	// distinct keys can format identically.
	exact := !anyAmbiguous && kind != orderFmt
	return outK, outV, sortedRun{ord: prefixes, exact: exact}
}

// gatherPerm gathers keys and vals into output slices (checked out of
// ar when one is set) so that position i holds the elements originally
// at perm[i].
func gatherPerm[K comparable, V any](
	perm []int32, keys []K, vals []V, ar *roundArena[K, V], part int,
) ([]K, []V) {
	outK := ar.getKeys(part, len(perm))
	outV := ar.getVals(part, len(perm))
	for i, p := range perm {
		outK[i] = keys[p]
		outV[i] = vals[p]
	}
	return outK, outV
}

// strPrefix64 packs the first 8 bytes of s big-endian (zero-padded), so
// uint64 order equals lexicographic order up to the prefix length.
// ambiguous reports that the image may collide with a different key's:
// the string extends past the prefix, or its prefix bytes contain a NUL
// that the zero padding of a shorter key could mimic ("a" vs "a\x00").
func strPrefix64(s string) (p uint64, ambiguous bool) {
	if len(s) >= 8 {
		// The compiler combines this into a single 8-byte load.
		p = uint64(s[7]) | uint64(s[6])<<8 | uint64(s[5])<<16 | uint64(s[4])<<24 |
			uint64(s[3])<<32 | uint64(s[2])<<40 | uint64(s[1])<<48 | uint64(s[0])<<56
		// SWAR zero-byte test over the eight prefix bytes.
		hasNul := (p-0x0101010101010101)&^p&0x8080808080808080 != 0
		return p, len(s) > 8 || hasNul
	}
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b == 0 {
			ambiguous = true
		}
		p |= uint64(b) << (56 - 8*i)
	}
	return p, ambiguous
}

// fixupPrefixRuns finishes the string sort: within every run of equal
// prefixes that could still be misordered (any member with an ambiguous
// image), re-sort the run by (full string, original index). The index
// tiebreak makes the unstable slices.SortFunc deterministic and
// restores stability, because equal strings resolve by original
// position.
func fixupPrefixRuns(prefixes []uint64, perm []int32, str func(int32) string) {
	n := len(prefixes)
	ambig := func(i int32) bool {
		_, a := strPrefix64(str(i))
		return a
	}
	for i := 0; i < n; {
		j := i + 1
		needs := ambig(perm[i])
		for j < n && prefixes[j] == prefixes[i] {
			needs = needs || ambig(perm[j])
			j++
		}
		if needs && j-i > 1 {
			run := perm[i:j]
			slices.SortFunc(run, func(a, b int32) int {
				if c := strings.Compare(str(a), str(b)); c != 0 {
					return c
				}
				return cmp.Compare(a, b)
			})
		}
		i = j
	}
}

// radixSortU64 stable-sorts keys ascending by their bytes from loByte
// up, optionally carrying perm as payload (nil when the payload is
// packed into the keys themselves). LSD radix with a counting scatter:
// O(passes·n), no comparator calls. Only bytes that actually vary are
// histogrammed and scattered — one or/and sweep finds them — so small
// key spaces cost one or two passes over the data. scr supplies the
// scatter buffers and histograms (nil allocates fresh ones).
func radixSortU64(keys []uint64, perm []int32, loByte int, scr *radixScratch) {
	n := len(keys)
	if n < 2 {
		return
	}
	if scr == nil {
		scr = &radixScratch{}
	}
	or, and := uint64(0), ^uint64(0)
	for _, k := range keys {
		or |= k
		and &= k
	}
	diff := (or ^ and) &^ (1<<(8*loByte) - 1)
	if diff == 0 {
		return
	}
	// When every varying bit fits one digit, counting-sort in a single
	// pass (histogram sized to the span, capped so it stays small
	// relative to n). This is the common case for the repository's jobs:
	// int32 node and term ids occupy well under 16 bits of spread.
	lo := bits.TrailingZeros64(diff)
	hi := 63 - bits.LeadingZeros64(diff)
	if span := hi - lo + 1; span <= 16 && 1<<span <= 4*n {
		mask := uint64(1)<<span - 1
		counts := scr.histogram(1 << span)
		for _, k := range keys {
			counts[(k>>lo)&mask]++
		}
		var sum int32
		for v := range counts {
			c := counts[v]
			counts[v] = sum
			sum += c
		}
		scr.tmpK = growU64(scr.tmpK, n)
		tmpK := scr.tmpK
		if perm == nil {
			for _, k := range keys {
				d := (k >> lo) & mask
				tmpK[counts[d]] = k
				counts[d]++
			}
			copy(keys, tmpK)
			return
		}
		scr.tmpP = growI32(scr.tmpP, n)
		tmpP := scr.tmpP
		for i, k := range keys {
			d := (k >> lo) & mask
			o := counts[d]
			tmpK[o] = k
			tmpP[o] = perm[i]
			counts[d] = o + 1
		}
		copy(keys, tmpK)
		copy(perm, tmpP)
		return
	}
	var active [8]int
	nb := 0
	for b := loByte; b < 8; b++ {
		if diff>>(8*b)&0xff != 0 {
			active[nb] = b
			nb++
		}
	}
	// One flat histogram block per active byte, filled in a single
	// sweep over the data.
	counts := scr.histogram(nb * 256)
	for _, k := range keys {
		for bi := 0; bi < nb; bi++ {
			counts[bi*256+int((k>>(8*active[bi]))&0xff)]++
		}
	}
	scr.tmpK = growU64(scr.tmpK, n)
	tmpK := scr.tmpK
	var tmpP []int32
	if perm != nil {
		scr.tmpP = growI32(scr.tmpP, n)
		tmpP = scr.tmpP
	}
	srcK, dstK := keys, tmpK
	srcP, dstP := perm, tmpP
	for bi := 0; bi < nb; bi++ {
		var offs [256]int32
		var sum int32
		for v := 0; v < 256; v++ {
			offs[v] = sum
			sum += counts[bi*256+v]
		}
		shift := uint(8 * active[bi])
		if perm == nil {
			for _, k := range srcK {
				d := (k >> shift) & 0xff
				dstK[offs[d]] = k
				offs[d]++
			}
		} else {
			for i, k := range srcK {
				d := (k >> shift) & 0xff
				o := offs[d]
				dstK[o] = k
				dstP[o] = srcP[i]
				offs[d] = o + 1
			}
		}
		srcK, dstK = dstK, srcK
		srcP, dstP = dstP, srcP
	}
	if nb%2 != 0 {
		copy(keys, srcK)
		if perm != nil {
			copy(perm, srcP)
		}
	}
}

// sortPairsByKey stable-sorts pairs in place by key under the resolved
// key order (see sortKeyVals).
func sortPairsByKey[K comparable, V any](pairs []Pair[K, V], kind orderKind) {
	if len(pairs) < 2 {
		return
	}
	keys := make([]K, len(pairs))
	vals := make([]V, len(pairs))
	for i, p := range pairs {
		keys[i] = p.Key
		vals[i] = p.Value
	}
	keys, vals, _ = sortKeyVals(keys, vals, kind, nil, 0, nil)
	for i := range pairs {
		pairs[i] = Pair[K, V]{Key: keys[i], Value: vals[i]}
	}
}

// sortPairs orders output pairs by key for reproducible results.
func sortPairs[K comparable, V any](pairs []Pair[K, V]) {
	sortPairsByKey(pairs, keyOrderKind[K]())
}

// partitionPairs buckets already-materialized pairs by partitionIndex,
// preserving their order within every bucket. It serves paths that
// cannot partition at emission time (the combiner, which must see a
// split's complete output before it runs).
func partitionPairs[K comparable, V any](pairs []Pair[K, V], parts int) [][]Pair[K, V] {
	buckets := make([][]Pair[K, V], parts)
	for _, p := range pairs {
		idx := partitionIndex(p.Key, parts)
		buckets[idx] = append(buckets[idx], p)
	}
	return buckets
}
