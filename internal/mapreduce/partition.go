package mapreduce

import (
	"fmt"
	"hash/fnv"
	"math"
)

// partitionIndex assigns a key to one of r partitions. It special-cases
// the key types used throughout this repository (integer node and term
// identifiers, strings, and small integer tuples) and falls back to
// hashing the fmt representation for anything else. The mapping is pure:
// the same key always lands in the same partition, which is the only
// property the algorithms rely on.
func partitionIndex[K comparable](key K, r int) int {
	if r <= 1 {
		return 0
	}
	return int(hashKey(key) % uint64(r))
}

// hashKey produces a stable 64-bit hash for a key.
func hashKey[K comparable](key K) uint64 {
	switch k := any(key).(type) {
	case int:
		return mix64(uint64(k))
	case int32:
		return mix64(uint64(uint32(k)))
	case int64:
		return mix64(uint64(k))
	case uint32:
		return mix64(uint64(k))
	case uint64:
		return mix64(k)
	case string:
		h := fnv.New64a()
		_, _ = h.Write([]byte(k))
		return h.Sum64()
	case float64:
		return mix64(math.Float64bits(k))
	case [2]int32:
		return mix64(uint64(uint32(k[0]))<<32 | uint64(uint32(k[1])))
	default:
		h := fnv.New64a()
		fmt.Fprintf(h, "%v", key)
		return h.Sum64()
	}
}

// mix64 is the SplitMix64 finalizer; it spreads consecutive integer ids
// uniformly across partitions.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// lessKey imposes a deterministic total order on keys of a comparable
// type. Like hashKey it special-cases the common key types and falls back
// to the fmt representation.
func lessKey[K comparable](a, b K) bool {
	switch x := any(a).(type) {
	case int:
		return x < any(b).(int)
	case int32:
		return x < any(b).(int32)
	case int64:
		return x < any(b).(int64)
	case uint32:
		return x < any(b).(uint32)
	case uint64:
		return x < any(b).(uint64)
	case string:
		return x < any(b).(string)
	case float64:
		return x < any(b).(float64)
	case [2]int32:
		y := any(b).([2]int32)
		if x[0] != y[0] {
			return x[0] < y[0]
		}
		return x[1] < y[1]
	default:
		return fmt.Sprint(a) < fmt.Sprint(b)
	}
}
