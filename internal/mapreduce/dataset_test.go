package mapreduce

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
)

// The Dataset tests pin the partition-resident dataflow to the flat
// engine's semantics: a chained job must produce the same output as the
// same job over the same records re-partitioned flat, the identity
// route must fire exactly for self-addressed pairs, and Loop must
// detect fixed points, honor MaxRounds, and mix failure seeds per
// round.

// nodeJobInput builds an iterative-algorithm-shaped input: int32 node
// keys with int64 state values.
func nodeJobInput(n int) []Pair[int32, int64] {
	input := make([]Pair[int32, int64], n)
	for i := range input {
		input[i] = P(int32(i), int64(i)*3+1)
	}
	return input
}

// nodeJobMap mimics the paper's node jobs: forward the node's own state
// to itself (identity-routable) and send a message to two neighbors
// (cross-partition).
func nodeJobMap(n int32) MapFunc[int32, int64, int32, int64] {
	return func(v int32, state int64, out Emitter[int32, int64]) error {
		out.Emit(v, state<<8) // self message
		out.Emit((v+1)%n, state)
		out.Emit((v+7)%n, -state)
		return nil
	}
}

// nodeJobReduce folds a group order-insensitively but deterministically
// (the contract the ported algorithms follow: reduce output must not
// depend on value arrival order, which differs between the chained and
// the flat dataflow).
func nodeJobReduce() ReduceFunc[int32, int64, int32, int64] {
	return func(v int32, states []int64, out Emitter[int32, int64]) error {
		var sum int64
		for _, s := range states {
			sum += s
		}
		out.Emit(v, sum*31+int64(len(states)))
		return nil
	}
}

// TestRunDSChainedMatchesFlat pins the tentpole equivalence: the same
// job over the same records produces bit-identical normalized output
// whether the input chains partition-resident, is forced flat with
// Config.FlatChaining, or runs through plain Run — and only the chained
// job identity-routes.
func TestRunDSChainedMatchesFlat(t *testing.T) {
	const n = 257
	input := nodeJobInput(n)
	ctx := context.Background()

	cfg := Config{Mappers: 4, Reducers: 4}
	ds := PartitionDataset(input, cfg.reducers())

	chained, chainedStats, err := RunDS(ctx, cfg, ds, nodeJobMap(n), nodeJobReduce())
	if err != nil {
		t.Fatal(err)
	}
	flatCfg := cfg
	flatCfg.FlatChaining = true
	flat, flatStats, err := RunDS(ctx, flatCfg, ds, nodeJobMap(n), nodeJobReduce())
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := Run(ctx, cfg, ds.Collect(), nodeJobMap(n), nodeJobReduce())
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(chained.Collect(), flat.Collect()) {
		t.Fatal("chained and flat dataflow outputs differ")
	}
	if !reflect.DeepEqual(chained.Collect(), plain) {
		t.Fatal("chained dataflow diverges from plain Run")
	}
	if chainedStats.LocalRouted != int64(n) {
		t.Fatalf("chained LocalRouted = %d, want %d (one self message per node)",
			chainedStats.LocalRouted, n)
	}
	if chainedStats.CrossRouted != int64(2*n) {
		t.Fatalf("chained CrossRouted = %d, want %d", chainedStats.CrossRouted, 2*n)
	}
	if flatStats.LocalRouted != 0 {
		t.Fatalf("flat LocalRouted = %d, want 0", flatStats.LocalRouted)
	}
	if flatStats.CrossRouted != int64(3*n) {
		t.Fatalf("flat CrossRouted = %d, want %d", flatStats.CrossRouted, 3*n)
	}

	// The chained output must itself be consumable partition-resident:
	// its records' keys hash to their resident partitions.
	for p := 0; p < chained.Partitions(); p++ {
		for _, pair := range chained.Part(p) {
			if partitionIndex(pair.Key, chained.Partitions()) != p {
				t.Fatalf("key %d resident in partition %d, hashes to %d",
					pair.Key, p, partitionIndex(pair.Key, chained.Partitions()))
			}
		}
	}
}

// TestRunDSSpillMatchesMemory runs the chained dataflow over the
// spilling backend (covering the radix run-buffer sort) and requires
// bit-identical output against the in-memory backend.
func TestRunDSSpillMatchesMemory(t *testing.T) {
	const n = 300
	input := nodeJobInput(n)
	ctx := context.Background()
	run := func(cfg Config) []Pair[int32, int64] {
		out, _, err := RunDS(ctx, cfg, PartitionDataset(input, cfg.reducers()),
			nodeJobMap(n), nodeJobReduce())
		if err != nil {
			t.Fatal(err)
		}
		return out.Collect()
	}
	mem := run(Config{Mappers: 3, Reducers: 3})
	spill := run(spillCfg(64))
	if !reflect.DeepEqual(mem, spill) {
		t.Fatal("chained spill output diverges from chained memory output")
	}
}

// TestRunDSMisalignedRepartitions feeds RunDS a dataset whose partition
// count does not match the job's reducers: the engine must fall back to
// the flat path (hash everything) and still produce the right output.
func TestRunDSMisalignedRepartitions(t *testing.T) {
	const n = 100
	input := nodeJobInput(n)
	ctx := context.Background()
	cfg := Config{Mappers: 2, Reducers: 5}
	ds := PartitionDataset(input, 3) // aligned for 3, job wants 5
	out, stats, err := RunDS(ctx, cfg, ds, nodeJobMap(n), nodeJobReduce())
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := Run(ctx, cfg, ds.Collect(), nodeJobMap(n), nodeJobReduce())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Collect(), plain) {
		t.Fatal("misaligned RunDS diverges from Run")
	}
	if stats.LocalRouted != 0 {
		t.Fatalf("misaligned input identity-routed %d pairs", stats.LocalRouted)
	}
	if out.Partitions() != cfg.reducers() {
		t.Fatalf("output has %d partitions, want %d", out.Partitions(), cfg.reducers())
	}
}

// TestRunDSKeyTypeChangeDisablesIdentityRoute re-keys intermediate
// pairs to a different type: the job must still chain per-partition but
// hash every pair.
func TestRunDSKeyTypeChangeDisablesIdentityRoute(t *testing.T) {
	input := nodeJobInput(64)
	cfg := Config{Reducers: 4}
	out, stats, err := RunDS(context.Background(), cfg, PartitionDataset(input, 4),
		func(v int32, s int64, out Emitter[string, int64]) error {
			out.Emit("even", s)
			return nil
		},
		func(k string, vs []int64, out Emitter[string, int]) error {
			out.Emit(k, len(vs))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LocalRouted != 0 || stats.CrossRouted != 64 {
		t.Fatalf("routing = local %d cross %d, want 0/64", stats.LocalRouted, stats.CrossRouted)
	}
	if got := out.Collect(); len(got) != 1 || got[0].Value != 64 {
		t.Fatalf("unexpected output %v", got)
	}
	// The reduce emitted its (string) group key, so the output chains.
	if !out.Aligned() {
		t.Fatal("group-key-emitting reduce output should be aligned")
	}
}

// TestTypeChangingReduceOutputIsUnaligned: a reduce whose output key
// type differs from the group key type cannot satisfy the alignment
// contract, so its Dataset must come back unaligned (forcing the next
// chained job to re-partition).
func TestTypeChangingReduceOutputIsUnaligned(t *testing.T) {
	input := nodeJobInput(32)
	cfg := Config{Reducers: 4}
	out, _, err := RunDS(context.Background(), cfg, PartitionDataset(input, 4),
		Identity[int32, int64](),
		func(k int32, vs []int64, out Emitter[string, int]) error {
			out.Emit("n", len(vs)) // re-keys to a different type
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if out.Aligned() {
		t.Fatal("type-changing reduce output claims alignment")
	}
}

// TestRunCombinedDSMatchesRunCombined pins the combiner variant to the
// flat combiner path.
func TestRunCombinedDSMatchesRunCombined(t *testing.T) {
	input := nodeJobInput(200)
	ctx := context.Background()
	cfg := Config{Mappers: 4, Reducers: 3}
	mapFn := func(v int32, s int64, out Emitter[int32, int64]) error {
		out.Emit(v%17, s)
		out.Emit(v%5, 1)
		return nil
	}
	combine := func(k int32, vs []int64) []int64 {
		var sum int64
		for _, v := range vs {
			sum += v
		}
		return []int64{sum}
	}
	reduce := func(k int32, vs []int64, out Emitter[int32, int64]) error {
		var sum int64
		for _, v := range vs {
			sum += v
		}
		out.Emit(k, sum)
		return nil
	}
	ds, dsStats, err := RunCombinedDS(ctx, cfg, PartitionDataset(input, cfg.reducers()),
		mapFn, combine, reduce)
	if err != nil {
		t.Fatal(err)
	}
	flat, flatStats, err := RunCombined(ctx, cfg, ds2flat(input), mapFn, combine, reduce)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Collect(), flat) {
		t.Fatal("RunCombinedDS diverges from RunCombined")
	}
	// Combine granularity differs (per partition vs per mapper split),
	// so the shuffle volumes need not match — but both must have shrunk
	// the map output.
	if dsStats.ShuffleRecords >= dsStats.MapOutputRecords {
		t.Fatalf("combiner saved nothing: shuffle %d of %d map outputs",
			dsStats.ShuffleRecords, dsStats.MapOutputRecords)
	}
	if flatStats.ShuffleRecords >= flatStats.MapOutputRecords {
		t.Fatal("flat combiner saved nothing")
	}
	if dsStats.LocalRouted != 0 {
		t.Fatal("combiner path must not identity-route")
	}
}

// ds2flat returns input sorted the way Collect would, so flat runs see
// the same record order.
func ds2flat[K comparable, V any](pairs []Pair[K, V]) []Pair[K, V] {
	cp := append([]Pair[K, V](nil), pairs...)
	sortPairs(cp)
	return cp
}

// TestMapValuesPreservesAlignment checks the key-preserving transform:
// records stay in their partitions, filtered records disappear, and the
// result still chains (aligned).
func TestMapValuesPreservesAlignment(t *testing.T) {
	ds := PartitionDataset(nodeJobInput(50), 4)
	out := MapValues(ds, func(k int32, v int64) (int64, bool) {
		if k%2 == 0 {
			return v * 10, true
		}
		return 0, false
	})
	if !out.Aligned() || out.Partitions() != 4 {
		t.Fatal("MapValues lost alignment or partitioning")
	}
	if out.Len() != 25 {
		t.Fatalf("Len = %d, want 25", out.Len())
	}
	for p := 0; p < 4; p++ {
		for _, pair := range out.Part(p) {
			if partitionIndex(pair.Key, 4) != p {
				t.Fatal("MapValues moved a record across partitions")
			}
			if pair.Key%2 != 0 || pair.Value != (int64(pair.Key)*3+1)*10 {
				t.Fatalf("unexpected record %v", pair)
			}
		}
	}
}

// TestRepartition re-hashes into a new partition count.
func TestRepartition(t *testing.T) {
	ds := PartitionDataset(nodeJobInput(40), 3)
	re := ds.Repartition(7)
	if re.Partitions() != 7 || !re.Aligned() || re.Len() != 40 {
		t.Fatalf("repartition wrong shape: parts=%d len=%d", re.Partitions(), re.Len())
	}
	if !reflect.DeepEqual(ds.Collect(), re.Collect()) {
		t.Fatal("repartition changed the content")
	}
}

// TestLoopFixedPointOnConvergedInput: an already-empty state is a fixed
// point — the body must never run and no rounds may be counted.
func TestLoopFixedPointOnConvergedInput(t *testing.T) {
	d := NewDriver(Config{Reducers: 2})
	state := PartitionDataset([]Pair[int32, int64](nil), 2)
	calls := 0
	final, err := Loop(context.Background(), d, state,
		func(ctx context.Context, round int, st *Dataset[int32, int64]) (*Dataset[int32, int64], error) {
			calls++
			return st, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("body ran %d times on a converged input", calls)
	}
	if d.Rounds() != 0 {
		t.Fatalf("driver counted %d rounds", d.Rounds())
	}
	if final.Len() != 0 {
		t.Fatal("final state not empty")
	}
}

// TestLoopDrivesToFixedPoint runs a shrink-by-one dataflow and checks
// the loop stops exactly when the state empties.
func TestLoopDrivesToFixedPoint(t *testing.T) {
	d := NewDriver(Config{Reducers: 3})
	state := PartitionDataset(nodeJobInput(5), 3)
	rounds := 0
	_, err := Loop(context.Background(), d, state,
		func(ctx context.Context, round int, st *Dataset[int32, int64]) (*Dataset[int32, int64], error) {
			if round != rounds {
				t.Fatalf("round index %d, want %d", round, rounds)
			}
			rounds++
			dropped := false
			return MapValues(st, func(k int32, v int64) (int64, bool) {
				if !dropped {
					dropped = true
					return 0, false
				}
				return v, true
			}), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 5 {
		t.Fatalf("loop ran %d rounds, want 5", rounds)
	}
}

// TestLoopEarlyStop: a body returning (nil, nil) stops the loop with
// the current state (the any-time stopping GreedyMR uses).
func TestLoopEarlyStop(t *testing.T) {
	d := NewDriver(Config{Reducers: 2})
	state := PartitionDataset(nodeJobInput(10), 2)
	final, err := Loop(context.Background(), d, state,
		func(ctx context.Context, round int, st *Dataset[int32, int64]) (*Dataset[int32, int64], error) {
			if round >= 2 {
				return nil, nil
			}
			return st, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if final.Len() != 10 {
		t.Fatal("early stop lost the state")
	}
}

// TestLoopMaxRounds: jobs run inside the body count against the
// driver's round budget, surfacing ErrRoundLimit on runaway loops. Two
// jobs per loop round make the driver's job budget trip before Loop's
// own round backstop.
func TestLoopMaxRounds(t *testing.T) {
	d := NewDriver(Config{Reducers: 2})
	d.MaxRounds = 3
	state := PartitionDataset(nodeJobInput(8), 2)
	spin := func(ctx context.Context, st *Dataset[int32, int64]) (*Dataset[int32, int64], error) {
		return RunJobDS(ctx, d, "spin", st,
			Identity[int32, int64](),
			func(k int32, vs []int64, out Emitter[int32, int64]) error {
				out.Emit(k, vs[0])
				return nil
			})
	}
	_, err := Loop(context.Background(), d, state,
		func(ctx context.Context, round int, st *Dataset[int32, int64]) (*Dataset[int32, int64], error) {
			st, err := spin(ctx, st)
			if err != nil {
				return nil, err
			}
			return spin(ctx, st)
		})
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
	if d.Rounds() != 4 {
		t.Fatalf("driver ran %d jobs before tripping, want 4", d.Rounds())
	}
}

// TestLoopMaxRoundsBackstop: a body that runs no driver-observed job
// still cannot loop forever — Loop caps its own round count at the
// driver's MaxRounds.
func TestLoopMaxRoundsBackstop(t *testing.T) {
	d := NewDriver(Config{Reducers: 2})
	d.MaxRounds = 5
	state := PartitionDataset(nodeJobInput(8), 2)
	rounds := 0
	_, err := Loop(context.Background(), d, state,
		func(ctx context.Context, round int, st *Dataset[int32, int64]) (*Dataset[int32, int64], error) {
			rounds++
			return st, nil // never shrinks, never runs a job
		})
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
	if rounds != 5 {
		t.Fatalf("body ran %d rounds before the backstop, want 5", rounds)
	}
}

// TestLoopFailureSeedMixing: under failure injection every round must
// draw fresh (but reproducible) failure coins — otherwise a task doomed
// in round one would be doomed in every round.
func TestLoopFailureSeedMixing(t *testing.T) {
	base := Config{Reducers: 2, FailureRate: 0.4, FailureSeed: 11, MaxAttempts: 10}
	d := NewDriver(base)
	seeds := map[int64]bool{}
	for i := 0; i < 5; i++ {
		seeds[d.Config("job").FailureSeed] = true
		if err := d.Observe(&Stats{}); err != nil {
			t.Fatal(err)
		}
	}
	if len(seeds) != 5 {
		t.Fatalf("5 rounds drew only %d distinct failure seeds", len(seeds))
	}

	// And the whole loop is reproducible: identical runs produce
	// identical per-round retry traces.
	trace := func() []int64 {
		d := NewDriver(base)
		d.MaxRounds = 100
		state := PartitionDataset(nodeJobInput(32), 2)
		rounds := 0
		_, err := Loop(context.Background(), d, state,
			func(ctx context.Context, round int, st *Dataset[int32, int64]) (*Dataset[int32, int64], error) {
				rounds++
				if rounds > 4 {
					return nil, nil
				}
				out, err := RunJobDS(ctx, d, "job", st,
					Identity[int32, int64](),
					func(k int32, vs []int64, out Emitter[int32, int64]) error {
						out.Emit(k, vs[0])
						return nil
					})
				if err != nil {
					return nil, err
				}
				return out, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		var retries []int64
		for _, s := range d.Trace() {
			retries = append(retries, s.MapTaskRetries+s.ReduceTaskRetries)
		}
		return retries
	}
	a, b := trace(), trace()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("failure injection not reproducible: %v vs %v", a, b)
	}
	var total int64
	for _, r := range a {
		total += r
	}
	if total == 0 {
		t.Fatal("failure rate 0.4 injected no retries across 4 rounds")
	}
}

// TestFloatZeroKeysRouteToOnePartition pins hashKey's canonical zero:
// -0.0 and +0.0 are one Go map key, so they must hash to one partition
// (multi-reducer flat jobs) and the identity route (which compares with
// ==) must agree with the hash route on them — chained and flat output
// must match even when a job re-keys between the two zero spellings.
func TestFloatZeroKeysRouteToOnePartition(t *testing.T) {
	negZero := math.Copysign(0, -1)
	if partitionIndex(0.0, 7) != partitionIndex(negZero, 7) {
		t.Fatal("+0.0 and -0.0 hash to different partitions")
	}
	input := make([]Pair[float64, int64], 40)
	for i := range input {
		k := float64(i % 5)
		if i%2 == 1 && k == 0 {
			k = negZero
		}
		input[i] = P(k, int64(i))
	}
	mapFn := func(k float64, v int64, out Emitter[float64, int64]) error {
		out.Emit(-k, v) // flips the zero spelling on the self emission
		return nil
	}
	redFn := func(k float64, vs []int64, out Emitter[float64, int64]) error {
		var sum int64
		for _, v := range vs {
			sum += v
		}
		out.Emit(k, sum*31+int64(len(vs)))
		return nil
	}
	cfg := Config{Mappers: 3, Reducers: 4}
	chained, _, err := RunDS(context.Background(), cfg,
		PartitionDataset(input, cfg.reducers()), mapFn, redFn)
	if err != nil {
		t.Fatal(err)
	}
	flatCfg := cfg
	flatCfg.FlatChaining = true
	flat, _, err := RunDS(context.Background(), flatCfg,
		PartitionDataset(input, cfg.reducers()), mapFn, redFn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(chained.Collect(), flat.Collect()) {
		t.Fatalf("float-zero keys diverge across dataflows:\nchained %v\nflat    %v",
			chained.Collect(), flat.Collect())
	}
}
