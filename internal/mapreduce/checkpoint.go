package mapreduce

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Checkpoint run files are the durable half of the dist runtime's fault
// tolerance. At each round's flush barrier a worker persists the job
// output it retains (its resident Dataset partitions) to a local run
// file, one length-prefixed frame per partition in the same style as
// the extsort spill runs (spillcodec.go): uvarint frame length, then a
// payload of uvarint seq, uvarint partition, uvarint pair count, the
// encoded pair blob, and a trailing CRC-32 of everything before it.
// The pair blob is the canonical encodePairs image — the same bytes
// that travel in MsgCkpt mirror frames and MsgBucket traffic — so a
// restored partition is bit-identical to the lost one by construction.
//
// A MANIFEST file names the run files that were written completely
// (tmp + rename, manifest updated only after the run file is renamed
// into place), newest last. Loading walks the manifest backwards: a
// truncated or corrupted trailing frame — the signature of a crash
// mid-write — fails that file's validation and falls back to the
// previous round's checkpoint instead of surfacing garbage.
//
// Live recovery restores partitions from the coordinator's in-memory
// mirror of the MsgCkpt stream (dist.go); the local files are the
// operator-facing durable copy, bounded to the last two rounds.

// ckptPart is one partition's checkpoint image.
type ckptPart struct {
	part  int
	count int
	blob  []byte // canonical encodePairs image
}

// ckptManifestName is the manifest file within a checkpoint directory.
const ckptManifestName = "MANIFEST"

// ckptKeepFiles bounds the retained run files: the current round and
// the previous one (the fallback when the trailing file is damaged).
const ckptKeepFiles = 2

type ckptManifestEntry struct {
	seq    uint64
	file   string
	frames int
	// v2 marks files whose frame blobs are versioned pair blobs (a
	// codec marker byte leads each blob). Files written before codec
	// v2 have three-field manifest lines and raw v1 row payloads; the
	// loader tags those blobs with the v1 marker so decodePairs can
	// dispatch uniformly.
	v2 bool
}

// checkpointWriter persists rounds into one directory. Not safe for
// concurrent use; the worker session writes from its job goroutine.
// Writes are best-effort: the first I/O failure disables the writer
// (the coordinator's mirror still has the frames) rather than failing
// the job.
type checkpointWriter struct {
	dir      string
	entries  []ckptManifestEntry
	disabled error
}

func newCheckpointWriter(dir string) *checkpointWriter {
	return &checkpointWriter{dir: dir}
}

// write persists one job's retained partitions as ckpt-<seq>.run and
// publishes it in the manifest, pruning files beyond ckptKeepFiles.
func (w *checkpointWriter) write(seq uint64, parts []ckptPart) error {
	if w.disabled != nil {
		return w.disabled
	}
	if err := w.writeFile(seq, parts); err != nil {
		w.disabled = err
		return err
	}
	return nil
}

func (w *checkpointWriter) writeFile(seq uint64, parts []ckptPart) error {
	if err := os.MkdirAll(w.dir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("ckpt-%016x.run", seq)
	tmp := filepath.Join(w.dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var frame []byte
	for _, p := range parts {
		frame = appendCkptFrame(frame[:0], seq, p)
		if _, err = f.Write(frame); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	// No fsync: an fsync per round would dominate small rounds (file
	// write ~50us, fsync ~1ms), and durability-on-crash is not what the
	// run files promise — the loader CRC-validates every frame and falls
	// back past a torn trailing file, and live recovery restores from
	// the coordinator's mirror anyway.
	if err = f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err = os.Rename(tmp, filepath.Join(w.dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	w.entries = append(w.entries, ckptManifestEntry{seq: seq, file: name, frames: len(parts), v2: true})
	for len(w.entries) > ckptKeepFiles {
		os.Remove(filepath.Join(w.dir, w.entries[0].file))
		w.entries = w.entries[1:]
	}
	return w.writeManifest()
}

func (w *checkpointWriter) writeManifest() error {
	var sb strings.Builder
	for _, e := range w.entries {
		// The fourth column is the codec generation; pre-v2 loaders
		// never see it (a new build writes new files), and the current
		// loader accepts three-field lines as v1.
		fmt.Fprintf(&sb, "%d %s %d v2\n", e.seq, e.file, e.frames)
	}
	tmp := filepath.Join(w.dir, ckptManifestName+".tmp")
	if err := os.WriteFile(tmp, []byte(sb.String()), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(w.dir, ckptManifestName))
}

// appendCkptFrame appends one partition frame: uvarint length, payload
// (seq, part, count, blob), CRC-32 (IEEE) of the payload.
func appendCkptFrame(buf []byte, seq uint64, p ckptPart) []byte {
	var body []byte
	body = binary.AppendUvarint(body, seq)
	body = binary.AppendUvarint(body, uint64(p.part))
	body = binary.AppendUvarint(body, uint64(p.count))
	body = append(body, p.blob...)
	buf = binary.AppendUvarint(buf, uint64(len(body)+4))
	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
}

// checkpointData is one fully validated round restored from disk.
type checkpointData struct {
	seq   uint64
	parts []ckptPart
}

// loadLatestCheckpoint returns the newest round in dir whose run file
// validates end to end, falling back through the manifest when the
// trailing file is truncated or corrupted. Returns (nil, nil) when the
// directory holds no usable checkpoint at all.
func loadLatestCheckpoint(dir string) (*checkpointData, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ckptManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var entries []ckptManifestEntry
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var e ckptManifestEntry
		fields := strings.Fields(line)
		switch {
		case len(fields) == 4 && fields[3] == "v2":
			e.v2 = true
		case len(fields) == 3:
			// Pre-v2 manifest line: the file's blobs are unversioned
			// v1 row payloads.
		default:
			return nil, fmt.Errorf("mapreduce: malformed checkpoint manifest line %q", line)
		}
		if _, err := fmt.Sscanf(fields[0], "%d", &e.seq); err != nil {
			return nil, fmt.Errorf("mapreduce: malformed checkpoint manifest line %q", line)
		}
		e.file = fields[1]
		if _, err := fmt.Sscanf(fields[2], "%d", &e.frames); err != nil {
			return nil, fmt.Errorf("mapreduce: malformed checkpoint manifest line %q", line)
		}
		entries = append(entries, e)
	}
	var firstErr error
	for i := len(entries) - 1; i >= 0; i-- {
		ck, err := loadCheckpointFile(filepath.Join(dir, entries[i].file), entries[i].seq, entries[i].frames, entries[i].v2)
		if err == nil {
			return ck, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if len(entries) == 0 {
		return nil, nil
	}
	return nil, fmt.Errorf("mapreduce: no usable checkpoint in %s: %w", dir, firstErr)
}

// loadCheckpointFile validates and decodes one run file. Any truncated
// frame, CRC mismatch, sequence mismatch, or frame-count shortfall
// fails the whole file — a checkpoint is restored completely or not at
// all. v2 reports whether the file's blobs are versioned pair blobs;
// legacy v1 blobs are tagged with the v1 codec marker on load so every
// downstream consumer sees a versioned blob.
func loadCheckpointFile(path string, seq uint64, frames int, v2 bool) (*checkpointData, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ck := &checkpointData{seq: seq}
	for len(data) > 0 {
		n, m := binary.Uvarint(data)
		if m <= 0 || n < 4 || n > uint64(len(data)-m) {
			return nil, fmt.Errorf("mapreduce: checkpoint %s: truncated frame %d", path, len(ck.parts))
		}
		frame := data[m : m+int(n)]
		data = data[m+int(n):]
		body, sum := frame[:len(frame)-4], frame[len(frame)-4:]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(sum) {
			return nil, fmt.Errorf("mapreduce: checkpoint %s: CRC mismatch in frame %d", path, len(ck.parts))
		}
		cur := body
		fseq, m1 := binary.Uvarint(cur)
		cur = cur[m1:]
		part, m2 := binary.Uvarint(cur)
		cur = cur[m2:]
		count, m3 := binary.Uvarint(cur)
		cur = cur[m3:]
		if m1 <= 0 || m2 <= 0 || m3 <= 0 {
			return nil, fmt.Errorf("mapreduce: checkpoint %s: malformed frame %d", path, len(ck.parts))
		}
		if fseq != seq {
			return nil, fmt.Errorf("mapreduce: checkpoint %s: frame for job %d in file for job %d", path, fseq, seq)
		}
		blob := cur
		if !v2 {
			blob = append([]byte{pairBlobV1}, cur...)
		}
		ck.parts = append(ck.parts, ckptPart{part: int(part), count: int(count), blob: blob})
	}
	if len(ck.parts) != frames {
		return nil, fmt.Errorf("mapreduce: checkpoint %s: %d frames, manifest expects %d", path, len(ck.parts), frames)
	}
	sort.Slice(ck.parts, func(i, j int) bool { return ck.parts[i].part < ck.parts[j].part })
	return ck, nil
}
