package mapreduce

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mapreduce/remote"
)

// This file is the worker half of the distributed execution mode: the
// job registry, the serve loop a worker process runs, and the per-job
// handler that ingests buckets, group-sorts each owned partition with
// the same radix path the in-memory backend uses, runs the registered
// reduce function, and either streams the output back or keeps it
// resident for the next chained job. Function values cannot travel, so
// a worker runs the map/reduce functions registered under the job's
// name — for jobs whose functions close over driver-side round state,
// the registered factory rebuilds them from the job's parameter blob
// (Config.DistParams).

// DistJob is one registered job's worker-side behavior.
type DistJob[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any] struct {
	// Map is required only for chained consumption of a worker-resident
	// input (the partition-resident fast path); flat jobs, whose map
	// phase runs on the coordinator, leave it nil.
	Map MapFunc[K1, V1, K2, V2]
	// Reduce runs over every owned partition's key groups. Required.
	Reduce ReduceFunc[K2, V2, K3, V3]
	// Counters, when non-nil, is snapshotted into the job-done report
	// and merged into the coordinator's Config.DistCounters — the
	// distributed form of shared job counters.
	Counters *Counters
}

// distJobRunner is the untyped face of a registered job.
type distJobRunner interface {
	run(s *workerSession, h *distJobHeader) error
}

var distJobs = struct {
	mu sync.RWMutex
	m  map[string]func(params []byte) (distJobRunner, error)
}{m: make(map[string]func(params []byte) (distJobRunner, error))}

// RegisterDistJob registers the worker-side functions for every dist
// job named `name` (Config.Name). The factory runs once per job
// execution with the job's parameter blob, so reduces that close over
// per-round driver state rebuild it here. Registration is process-wide
// and the last registration for a name wins — a worker process serves
// one computation at a time. Coordinators don't need registrations;
// only the processes that serve (ServeDistWorker) do, which for the
// self-exec CLIs is the re-executed binary.
func RegisterDistJob[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	name string,
	factory func(params []byte) (DistJob[K1, V1, K2, V2, K3, V3], error),
) {
	distJobs.mu.Lock()
	defer distJobs.mu.Unlock()
	distJobs.m[name] = func(params []byte) (distJobRunner, error) {
		job, err := factory(params)
		if err != nil {
			return nil, fmt.Errorf("building job %q: %w", name, err)
		}
		if job.Reduce == nil {
			return nil, fmt.Errorf("job %q registered without a reduce function", name)
		}
		return &distWorkerJob[K1, V1, K2, V2, K3, V3]{job: job}, nil
	}
}

// RegisterDistReduce registers a parameter-free, reduce-only job: the
// common case for reduces that capture nothing (or only immutable
// shared inputs). Such jobs cannot consume a worker-resident input
// chained (no map function); their map phase always runs on the
// coordinator.
func RegisterDistReduce[K2 comparable, V2 any, K3 comparable, V3 any](
	name string, reduce ReduceFunc[K2, V2, K3, V3],
) {
	RegisterDistJob(name, func([]byte) (DistJob[K3, V3, K2, V2, K3, V3], error) {
		return DistJob[K3, V3, K2, V2, K3, V3]{Reduce: reduce}, nil
	})
}

func lookupDistJob(name string, params []byte) (distJobRunner, error) {
	distJobs.mu.RLock()
	factory, ok := distJobs.m[name]
	distJobs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("no dist job registered as %q (workers run registered functions; see RegisterDistJob)", name)
	}
	return factory(params)
}

// residentSet is one retained job output, typed underneath.
type residentSet interface {
	fetch(conn *remote.Conn, seq uint64) error
	drop()
	// shed releases one partition whose ownership migrated elsewhere
	// (MsgShed): the copy here is superseded, keeping it would serve
	// stale data if this worker were ever asked for it.
	shed(part int)
}

// residentData retains one job's reduce output per owned partition
// between jobs.
type residentData[K comparable, V any] struct {
	parts [][]Pair[K, V]
	kc    spillCodec[K]
	vc    spillCodec[V]
	ar    *roundArena[K, V]
	// comp carries the producing job's wire-compression setting into a
	// later fetch (Materialize happens after the job is gone).
	comp bool
}

// fetch streams every retained partition and releases it (fetch moves;
// the coordinator's Materialize owns the records afterwards).
func (r *residentData[K, V]) fetch(conn *remote.Conn, seq uint64) error {
	fs := getFrameScratch()
	defer putFrameScratch(fs)
	for p, pairs := range r.parts {
		if pairs == nil {
			continue
		}
		frame := append(fs.b[:0], byte(remote.MsgPart))
		frame = remote.AppendUvarint(frame, seq)
		frame = remote.AppendUvarint(frame, uint64(p))
		frame = remote.AppendUvarint(frame, uint64(len(pairs)))
		frame, err := encodePairs(frame, pairs, r.kc, r.vc, r.comp, nil)
		if err != nil {
			return fmt.Errorf("encoding resident partition %d: %w", p, err)
		}
		fs.b = frame
		if err := conn.WriteFrame(frame); err != nil {
			return err
		}
	}
	r.drop()
	return conn.WriteFrame(remote.AppendUvarint([]byte{byte(remote.MsgFetchDone)}, seq))
}

// drop recycles the retained partition buffers.
func (r *residentData[K, V]) drop() {
	for p, pairs := range r.parts {
		if pairs != nil {
			r.ar.putPairs(p, pairs)
		}
	}
	r.parts = nil
}

// shed releases a single migrated-away partition.
func (r *residentData[K, V]) shed(part int) {
	if part >= 0 && part < len(r.parts) && r.parts[part] != nil {
		r.ar.putPairs(part, r.parts[part])
		r.parts[part] = nil
	}
}

// chainedInput resolves a chained job's worker-resident input,
// installing any re-seeded partitions (MsgSeed blobs held by the
// session) first. A worker that retained nothing for the sequence — a
// late joiner, or a survivor that only now inherited partitions —
// starts from an empty set and fills it from its seeds.
func chainedInput[K1 comparable, V1 any](s *workerSession, h *distJobHeader) (*residentData[K1, V1], error) {
	ent, ok := s.resident[h.inputSeq]
	var rd *residentData[K1, V1]
	if ok {
		rd, ok = ent.(*residentData[K1, V1])
		if !ok {
			return nil, fmt.Errorf("job %q: resident input %d has a different type", h.name, h.inputSeq)
		}
	} else {
		kc, err := resolveSpillCodec[K1]()
		if err != nil {
			return nil, err
		}
		vc, err := resolveSpillCodec[V1]()
		if err != nil {
			return nil, err
		}
		rd = &residentData[K1, V1]{
			parts: make([][]Pair[K1, V1], h.splits),
			kc:    kc, vc: vc,
			ar: arenaFor[K1, V1](s.pool, h.splits),
		}
		s.resident[h.inputSeq] = rd
	}
	for part, sb := range s.seeds[h.inputSeq] {
		if part >= len(rd.parts) {
			return nil, fmt.Errorf("job %q: seed for partition %d of %d", h.name, part, len(rd.parts))
		}
		if rd.parts[part] != nil {
			continue // the local copy is authoritative
		}
		pairs, err := decodePairs(remote.NewCursor(sb.blob), sb.count, rd.kc, rd.vc,
			rd.ar.getPairs(part, sb.count))
		if err != nil {
			return nil, fmt.Errorf("job %q: decoding seeded partition %d: %w", h.name, part, err)
		}
		rd.parts[part] = pairs
	}
	delete(s.seeds, h.inputSeq)
	return rd, nil
}

// seedBlob is one re-seeded partition awaiting its consuming job: the
// raw encodePairs image the coordinator mirrored from a checkpoint
// frame, decoded lazily when the chained job that reads it starts (the
// session doesn't know the partition's types until then).
type seedBlob struct {
	count int
	blob  []byte
}

// workerSession is one worker process's connection-lifetime state.
type workerSession struct {
	conn     *remote.Conn
	id       int
	workers  int
	pool     *BufferPool
	resident map[uint64]residentSet
	// seeds holds re-seeded partitions by producing-job sequence, then
	// partition (MsgSeed, sent ahead of the job that consumes them).
	seeds map[uint64]map[int]seedBlob
	// aborted records job sequences this session acknowledged an abort
	// for: bucket/flush frames already in flight for those sequences
	// keep arriving after the MsgAborted ack and must be ignored, not
	// treated as protocol errors. Bounded by the number of worker
	// deaths the cluster survives.
	aborted map[uint64]bool
	// Checkpoint run files (lazy, opt-in): ckptDir is where they go.
	// Empty disables them — the coordinator's MsgCkpt mirror alone
	// carries recovery, and the per-round file metadata traffic would
	// tax every small round for a copy nothing reads by default.
	ckpt    *checkpointWriter
	ckptDir string

	// Heartbeat state: the interval the welcome announced, and the live
	// progress counters the pong carries — written by the job
	// goroutines, read by the pong sender. progParts lists the
	// partitions the current job has finished reducing.
	hbEvery   time.Duration
	curSeq    atomic.Uint64
	phase     atomic.Uint32 // 0 idle, 1 shuffle, 2 reduce
	records   atomic.Int64
	progMu    sync.Mutex
	progParts []int32
}

// Worker phases as reported in pong frames.
const (
	phaseIdle uint32 = iota
	phaseShuffle
	phaseReduce
)

// pong sends one heartbeat frame: current job sequence, phase, the
// partitions reduced so far, and records emitted. It rides WritePulse
// so heartbeats never perturb seeded fault-injection frame counts.
func (s *workerSession) pong() error {
	frame := []byte{byte(remote.MsgPong)}
	frame = remote.AppendUvarint(frame, s.curSeq.Load())
	frame = append(frame, byte(s.phase.Load()))
	s.progMu.Lock()
	frame = remote.AppendUvarint(frame, uint64(len(s.progParts)))
	for _, p := range s.progParts {
		frame = remote.AppendUvarint(frame, uint64(p))
	}
	s.progMu.Unlock()
	frame = remote.AppendUvarint(frame, uint64(s.records.Load()))
	return s.conn.WritePulse(frame)
}

// noteProgress records one finished reduce partition for the heartbeat.
func (s *workerSession) noteProgress(part int, records int64) {
	s.progMu.Lock()
	s.progParts = append(s.progParts, int32(part))
	s.progMu.Unlock()
	s.records.Add(records)
}

// startJobProgress resets the heartbeat counters for a new job.
func (s *workerSession) startJobProgress(seq uint64) {
	s.progMu.Lock()
	s.progParts = s.progParts[:0]
	s.progMu.Unlock()
	s.records.Store(0)
	s.curSeq.Store(seq)
	s.phase.Store(phaseShuffle)
}

// endJobProgress marks the session idle again.
func (s *workerSession) endJobProgress() {
	s.phase.Store(phaseIdle)
	s.curSeq.Store(0)
}

// errJobAborted is the sentinel a job handler returns when the
// coordinator aborted the job mid-flight: the session acked the abort
// and is ready for the next announce — not an error.
var errJobAborted = fmt.Errorf("dist job aborted by coordinator")

// ackAbort records the aborted sequence and sends the MsgAborted ack —
// the last frame this session emits for that sequence.
func (s *workerSession) ackAbort(seq uint64) error {
	s.aborted[seq] = true
	return s.conn.WriteFrame(remote.AppendUvarint([]byte{byte(remote.MsgAborted)}, seq))
}

// checkpointTo returns the session's run-file writer, or nil when the
// session has no checkpoint directory (the default): local run files
// are the operator's opt-in durable copy, the coordinator's mirror is
// what recovery actually restores from.
func (s *workerSession) checkpointTo() *checkpointWriter {
	if s.ckpt == nil && s.ckptDir != "" {
		s.ckpt = newCheckpointWriter(s.ckptDir)
	}
	return s.ckpt
}

// ReconnectPolicy shapes a worker's redial behavior, both for the
// initial connect (a worker started before its coordinator retries
// until the listener appears) and for session resume after a transport
// loss mid-run.
type ReconnectPolicy struct {
	// Attempts is the redial budget per outage. Zero means the default
	// (8); negative disables reconnection entirely — the worker
	// advertises no resume capability and dies with its first transport
	// error, the pre-resume behavior.
	Attempts int
	// BaseDelay and MaxDelay bound the jittered exponential backoff
	// between attempts (defaults 50ms and 1s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (p ReconnectPolicy) attempts() int {
	if p.Attempts == 0 {
		return 8
	}
	return p.Attempts
}

// DistWorkerOptions tunes one worker session (ServeDistWorkerOpts).
type DistWorkerOptions struct {
	// CheckpointDir, when set, makes the session additionally persist
	// its checkpoint frames as local run files there (a durable,
	// operator-inspectable copy). Empty — the default — keeps
	// checkpoints mirror-only on the coordinator.
	CheckpointDir string
	// Fault, when non-nil, arms a deterministic fault on this worker's
	// endpoint once the handshake completes, so its frame indices count
	// job traffic only. Test instrumentation for in-process workers —
	// the gray-failure (stall) chaos tests hang a worker from the
	// inside, where the coordinator cannot see a transport error.
	Fault *remote.Fault
	// Reconnect shapes the worker's startup connect retries and its
	// session-resume redials. The zero value enables both with the
	// defaults; Attempts < 0 disables resume (the session dies with its
	// first transport error) and limits the startup dial to one try.
	Reconnect ReconnectPolicy
}

// ServeDistWorker connects to a coordinator and serves jobs until the
// coordinator says goodbye (clean nil return) or the session fails. It
// is the main loop of a worker process — the self-exec CLIs call it in
// worker mode — and is equally happy on a goroutine for in-process
// tests. Cancelling ctx closes the connection and ends the session.
func ServeDistWorker(ctx context.Context, addr string) error {
	return ServeDistWorkerOpts(ctx, addr, DistWorkerOptions{})
}

// ServeDistWorkerOpts is ServeDistWorker with session options.
func ServeDistWorkerOpts(ctx context.Context, addr string, opts DistWorkerOptions) error {
	resumeCapable := opts.Reconnect.Attempts >= 0
	seed := uint64(os.Getpid())
	nc, err := dialWithRetry(ctx, addr, opts.Reconnect, seed)
	if err != nil {
		return fmt.Errorf("mapreduce: dist worker dialing %s: %w", addr, err)
	}
	conn := remote.NewConn(nc)
	defer conn.Close()
	if err := remote.Hello(conn, resumeCapable); err != nil {
		return fmt.Errorf("mapreduce: dist worker handshake: %w", err)
	}
	info, err := remote.AwaitWelcome(conn)
	if err != nil {
		return fmt.Errorf("mapreduce: dist worker handshake: %w", err)
	}
	if info.Resume {
		// The coordinator granted a resumable session: from here on a
		// transport loss redials and re-attaches instead of ending the
		// session, transparently to the serve loop below.
		conn.EnableResume(remote.ResumeConfig{
			Token:     info.Token,
			WorkerID:  info.WorkerID,
			Dial:      func() (net.Conn, error) { return net.DialTimeout("tcp", addr, 5*time.Second) },
			Attempts:  opts.Reconnect.attempts(),
			BaseDelay: opts.Reconnect.BaseDelay,
			MaxDelay:  opts.Reconnect.MaxDelay,
			Seed:      seed,
		})
	}
	if opts.Fault != nil {
		conn.Arm(opts.Fault)
	}
	if ctx != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				conn.Close()
			case <-watchDone:
			}
		}()
	}
	s := &workerSession{
		conn:     conn,
		id:       info.WorkerID,
		workers:  info.NumWorkers,
		pool:     NewBufferPool(),
		resident: make(map[uint64]residentSet),
		seeds:    make(map[uint64]map[int]seedBlob),
		aborted:  make(map[uint64]bool),
		ckptDir:  opts.CheckpointDir,
		hbEvery:  info.HeartbeatEvery,
	}
	if s.hbEvery > 0 {
		// Unsolicited pongs on the announced interval, from a dedicated
		// goroutine: the read loops below are busy or blocked during a
		// job, but liveness must keep flowing coordinator-ward — a
		// worker deep in a long reduce is slow, not dead, and the
		// monitor can only know that if pongs keep arriving.
		hbStop := make(chan struct{})
		defer close(hbStop)
		go func() {
			t := time.NewTicker(s.hbEvery)
			defer t.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-t.C:
					if s.pong() != nil {
						return
					}
				}
			}
		}()
	}
	return s.serve()
}

// dialWithRetry dials the coordinator, retrying with the policy's
// jittered backoff while the listener isn't there yet — a worker
// process may legitimately start before its coordinator. Connection
// refusals and timeouts retry; a cancelled context or an exhausted
// budget returns the last dial error.
func dialWithRetry(ctx context.Context, addr string, pol ReconnectPolicy, seed uint64) (net.Conn, error) {
	attempts := pol.attempts()
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			time.Sleep(remote.Backoff(a-1, pol.BaseDelay, pol.MaxDelay, seed))
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err == nil {
			return nc, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// sendError best-effort reports a fatal job error before the session
// ends; the coordinator surfaces it verbatim.
func (s *workerSession) sendError(seq uint64, err error) {
	frame := remote.AppendUvarint([]byte{byte(remote.MsgError)}, seq)
	frame = remote.AppendString(frame, err.Error())
	s.conn.WriteFrame(frame)
}

func (s *workerSession) serve() error {
	for {
		payload, err := s.conn.ReadFrame()
		if err != nil {
			// The coordinator hanging up without a goodbye usually means
			// it failed; the worker just winds down.
			return nil
		}
		cur := remote.NewCursor(payload)
		switch t := remote.MsgType(cur.Byte()); t {
		case remote.MsgJobStart:
			h, err := parseJobHeader(cur)
			if err != nil {
				s.sendError(0, err)
				return err
			}
			runner, err := lookupDistJob(h.name, h.params)
			if err != nil {
				s.sendError(h.seq, err)
				return fmt.Errorf("mapreduce: dist worker: %w", err)
			}
			if err := runner.run(s, h); err != nil {
				if err == errJobAborted {
					continue // ack already sent; await the retry announce
				}
				s.sendError(h.seq, err)
				return fmt.Errorf("mapreduce: dist worker: job %q: %w", h.name, err)
			}
		case remote.MsgSeed:
			// A recovered partition, re-homed here ahead of the job that
			// consumes it. Kept as the raw blob: the types arrive with
			// that job's header.
			seq := cur.Uvarint()
			part := int(cur.Uvarint())
			count := int(cur.Uvarint())
			if err := cur.Err(); err != nil || part < 0 {
				err := fmt.Errorf("malformed seed frame")
				s.sendError(seq, err)
				return fmt.Errorf("mapreduce: dist worker: %w", err)
			}
			blob := cur.Rest()
			if blob == nil {
				blob = []byte{}
			}
			m := s.seeds[seq]
			if m == nil {
				m = make(map[int]seedBlob)
				s.seeds[seq] = m
			}
			m[part] = seedBlob{count: count, blob: blob}
		case remote.MsgAbort:
			// An abort can land between jobs when this worker finished
			// (or never started) the aborted attempt: ack it and forget
			// anything retained under that sequence.
			seq := cur.Uvarint()
			if ent, ok := s.resident[seq]; ok {
				ent.drop()
				delete(s.resident, seq)
			}
			if err := s.ackAbort(seq); err != nil {
				return fmt.Errorf("mapreduce: dist worker: acking abort: %w", err)
			}
		case remote.MsgBucket, remote.MsgFlush:
			// Stray shuffle frames for an aborted attempt, written
			// concurrently with the abort: drop them.
			seq := cur.Uvarint()
			if !s.aborted[seq] {
				err := fmt.Errorf("unexpected %v between jobs", t)
				s.sendError(seq, err)
				return fmt.Errorf("mapreduce: dist worker: %w", err)
			}
		case remote.MsgFetch:
			seq := cur.Uvarint()
			if ent, ok := s.resident[seq]; ok {
				delete(s.resident, seq)
				if err := ent.fetch(s.conn, seq); err != nil {
					return fmt.Errorf("mapreduce: dist worker: fetch: %w", err)
				}
				continue
			}
			// Not resident here — but re-seeded partitions this session
			// holds for the sequence still belong to the fetch. A worker
			// with neither (it never owned any partition of the job)
			// reports an empty set; the coordinator restores the rest
			// from its mirror.
			if err := s.fetchSeeds(seq); err != nil {
				return fmt.Errorf("mapreduce: dist worker: fetch: %w", err)
			}
		case remote.MsgDrop:
			seq := cur.Uvarint()
			if ent, ok := s.resident[seq]; ok {
				ent.drop()
				delete(s.resident, seq)
			}
			delete(s.seeds, seq)
		case remote.MsgPing:
			if err := s.pong(); err != nil {
				return nil
			}
		case remote.MsgShed:
			// A resident partition migrated to another worker; this copy
			// is superseded. Sheds arrive between jobs, ordered after
			// the migration's seeds on the new owner's connection.
			seq := cur.Uvarint()
			part := int(cur.Uvarint())
			if ent, ok := s.resident[seq]; ok {
				ent.shed(part)
			}
			if m := s.seeds[seq]; m != nil {
				delete(m, part)
			}
		case remote.MsgBye:
			return nil
		default:
			err := fmt.Errorf("unexpected %v between jobs", t)
			s.sendError(0, err)
			return fmt.Errorf("mapreduce: dist worker: %w", err)
		}
	}
}

// fetchSeeds answers a fetch for a sequence this session only holds
// seeds for (if any): each seed streams back as a MsgPart frame — the
// blob is already the canonical encodePairs image — then MsgFetchDone.
func (s *workerSession) fetchSeeds(seq uint64) error {
	for part, sb := range s.seeds[seq] {
		frame := []byte{byte(remote.MsgPart)}
		frame = remote.AppendUvarint(frame, seq)
		frame = remote.AppendUvarint(frame, uint64(part))
		frame = remote.AppendUvarint(frame, uint64(sb.count))
		frame = append(frame, sb.blob...)
		if err := s.conn.WriteFrame(frame); err != nil {
			return err
		}
	}
	delete(s.seeds, seq)
	return s.conn.WriteFrame(remote.AppendUvarint([]byte{byte(remote.MsgFetchDone)}, seq))
}

// distWorkerJob executes one job on a worker.
type distWorkerJob[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any] struct {
	job DistJob[K1, V1, K2, V2, K3, V3]
}

// workerSender is the ShuffleBackend a chained worker-side map phase
// emits into: buckets for owned partitions land in the local shuffle
// directly (this is the path self-addressed pairs take — they never
// touch the wire), buckets for foreign partitions stream to the
// coordinator, which relays them to their owner.
type workerSender[K2 comparable, V2 any] struct {
	s        *workerSession
	h        *distJobHeader
	seq      uint64
	local    *memoryShuffle[K2, V2]
	ar       *roundArena[K2, V2]
	kc       spillCodec[K2]
	vc       spillCodec[V2]
	sent     atomic.Int64
	saved    *atomic.Int64
	reducers int
}

func (ws *workerSender[K2, V2]) Partitions() int { return ws.reducers }
func (ws *workerSender[K2, V2]) BucketCap() int  { return 0 }

func (ws *workerSender[K2, V2]) AddBucket(split, part int, pairs []Pair[K2, V2]) error {
	if ws.h.owner(part) == ws.s.id {
		// Ownership transfer, exactly like the in-memory backend.
		return ws.local.AddBucket(split, part, pairs)
	}
	fs := getFrameScratch()
	frame, err := encodeBucketFrame(fs.b[:0], ws.seq, split, part, pairs, ws.kc, ws.vc, ws.h.wireComp, ws.saved)
	if err != nil {
		putFrameScratch(fs)
		return fmt.Errorf("encoding bucket: %w", err)
	}
	fs.b = frame
	err = ws.s.conn.WriteFrame(frame)
	putFrameScratch(fs)
	if err != nil {
		return err
	}
	ws.sent.Add(int64(len(pairs)))
	ws.ar.putBucket(part, pairs)
	return nil
}

func (ws *workerSender[K2, V2]) Finalize() ([]GroupStream[K2, V2], error) {
	return nil, fmt.Errorf("workerSender has no streams")
}
func (ws *workerSender[K2, V2]) Close() error { return nil }

func (r *distWorkerJob[K1, V1, K2, V2, K3, V3]) run(s *workerSession, h *distJobHeader) error {
	// The four type ids must match before any record is decoded: a
	// mismatch means the coordinator and this worker registered
	// different functions under the same name.
	if h.k2id != distTypeID[K2]() || h.v2id != distTypeID[V2]() ||
		h.k3id != distTypeID[K3]() || h.v3id != distTypeID[V3]() {
		return fmt.Errorf("job %q type mismatch: coordinator sends (%s,%s)->(%s,%s), worker registered (%s,%s)->(%s,%s)",
			h.name, h.k2id, h.v2id, h.k3id, h.v3id,
			distTypeID[K2](), distTypeID[V2](), distTypeID[K3](), distTypeID[V3]())
	}
	k2c, err := resolveSpillCodec[K2]()
	if err != nil {
		return err
	}
	v2c, err := resolveSpillCodec[V2]()
	if err != nil {
		return err
	}
	k3c, err := resolveSpillCodec[K3]()
	if err != nil {
		return err
	}
	v3c, err := resolveSpillCodec[V3]()
	if err != nil {
		return err
	}

	ar := arenaFor[K2, V2](s.pool, h.reducers)
	shuffle := newMemoryShuffle[K2, V2](h.reducers, h.splits, ar)

	// wireSaved tallies the bytes wire compression shaved off this
	// worker's encodes for the job; reported in MsgJobDone. Atomic: the
	// per-partition reduce goroutines all encode output frames.
	var wireSaved atomic.Int64

	s.startJobProgress(h.seq)
	defer s.endJobProgress()

	// Ingest: either the coordinator streams every bucket (flat), or
	// this worker maps its resident input partitions while the main
	// loop below keeps receiving the buckets other workers relay here.
	var mapErrOnce sync.Once
	var mapErr error
	mapDone := make(chan struct{})
	if h.mode == remote.ModeChained {
		input, err := chainedInput[K1, V1](s, h)
		if err != nil {
			return err
		}
		if r.job.Map == nil {
			return fmt.Errorf("job %q has no registered map function, cannot consume a worker-resident input", h.name)
		}
		sender := &workerSender[K2, V2]{
			s: s, h: h, seq: h.seq, local: shuffle, ar: ar, kc: k2c, vc: v2c,
			saved: &wireSaved, reducers: h.reducers,
		}
		go func() {
			defer close(mapDone)
			start := time.Now()
			emitted, local, cross, err := r.runResidentMap(s, input, sender)
			if err != nil {
				mapErrOnce.Do(func() { mapErr = err })
				// The coordinator's flush barrier waits for every
				// worker's map-done; a silent failure here would leave
				// the whole job waiting on a flush that can never come.
				// The error frame fails the job (and the cluster)
				// instead.
				s.sendError(h.seq, fmt.Errorf("map: %w", err))
				return
			}
			frame := remote.AppendUvarint([]byte{byte(remote.MsgMapDone)}, h.seq)
			frame = remote.AppendUvarint(frame, uint64(emitted))
			frame = remote.AppendUvarint(frame, uint64(local))
			frame = remote.AppendUvarint(frame, uint64(cross))
			frame = remote.AppendUvarint(frame, uint64(time.Since(start)))
			if err := s.conn.WriteFrame(frame); err != nil {
				mapErrOnce.Do(func() { mapErr = err })
			}
		}()
	} else {
		close(mapDone)
	}

	// Main ingest loop: buckets until the flush — or an abort, which
	// abandons the job after the resident map (if any) has wound down,
	// so the MsgAborted ack is truly this sequence's last frame.
	for {
		payload, err := s.conn.ReadFrame()
		if err != nil {
			// A resident-map failure reported above makes the
			// coordinator tear the cluster down, which surfaces here as
			// a read error: report the root cause, not the teardown.
			select {
			case <-mapDone:
				if mapErr != nil {
					return fmt.Errorf("job %q: map: %w", h.name, mapErr)
				}
			default:
			}
			return fmt.Errorf("job %q: transport error during shuffle: %w", h.name, err)
		}
		cur := remote.NewCursor(payload)
		t := remote.MsgType(cur.Byte())
		if t == remote.MsgFlush {
			cur.Uvarint()
			break
		}
		if t == remote.MsgPing {
			if err := s.pong(); err != nil {
				return fmt.Errorf("job %q: answering ping: %w", h.name, err)
			}
			continue
		}
		if t == remote.MsgAbort {
			seq := cur.Uvarint()
			if seq != h.seq {
				// A stale abort for an earlier attempt: ack and keep
				// ingesting the current job.
				if err := s.ackAbort(seq); err != nil {
					return fmt.Errorf("job %q: acking stale abort: %w", h.name, err)
				}
				continue
			}
			<-mapDone
			if err := s.ackAbort(seq); err != nil {
				return fmt.Errorf("job %q: acking abort: %w", h.name, err)
			}
			return errJobAborted
		}
		if t != remote.MsgBucket {
			return fmt.Errorf("job %q: unexpected %v during shuffle", h.name, t)
		}
		seq := cur.Uvarint()
		split := int(cur.Uvarint())
		part := int(cur.Uvarint())
		count := int(cur.Uvarint())
		if seq != h.seq && s.aborted[seq] {
			continue // stray frame from an aborted attempt
		}
		if err := cur.Err(); err != nil || seq != h.seq || split < 0 || split >= h.splits ||
			part < 0 || part >= h.reducers || h.owner(part) != s.id {
			return fmt.Errorf("job %q: malformed bucket (split %d, part %d)", h.name, split, part)
		}
		bucket, err := decodePairs(cur, count, k2c, v2c, ar.getBucket(part, pairCap(cur, count, k2c, v2c)))
		if err != nil {
			return fmt.Errorf("job %q: decoding bucket: %w", h.name, err)
		}
		if err := shuffle.AddBucket(split, part, bucket); err != nil {
			return err
		}
	}
	<-mapDone
	if mapErr != nil {
		return fmt.Errorf("job %q: map: %w", h.name, mapErr)
	}

	// Group-sort and reduce the owned partitions, in parallel — the
	// memory backend's radix group path runs inside each goroutine,
	// checked out of this worker's round-recycled pool.
	s.phase.Store(phaseReduce)
	reduceStart := time.Now()
	streams, err := shuffle.Finalize()
	if err != nil {
		return err
	}

	// While the reduce runs, this watcher owns the connection's read
	// side: it answers pings (a worker deep in a reduce is busy, not
	// hung) and observes aborts. On an abort for this job it raises
	// cancel, which the reduce goroutines check between key groups —
	// a speculated-around straggler releases the round within one
	// group's work instead of finishing output nobody wants. The ack
	// waits for every goroutine to drain so it stays the sequence's
	// final frame.
	var cancel, abortSeen atomic.Bool
	watchStop := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		for {
			select {
			case <-watchStop:
				return
			default:
			}
			payload, err := s.conn.PollFrame(20 * time.Millisecond)
			if err == remote.ErrPollTimeout {
				continue
			}
			if err != nil {
				return // transport gone; the job's own writes surface it
			}
			cur := remote.NewCursor(payload)
			switch t := remote.MsgType(cur.Byte()); t {
			case remote.MsgPing:
				s.pong()
			case remote.MsgAbort:
				seq := cur.Uvarint()
				if seq != h.seq {
					s.ackAbort(seq) // stale abort for an earlier attempt
					continue
				}
				abortSeen.Store(true)
				cancel.Store(true)
				return
			case remote.MsgBucket, remote.MsgFlush:
				if seq := cur.Uvarint(); s.aborted[seq] {
					continue // stray frames from an aborted attempt
				}
				return
			default:
				return
			}
		}
	}()

	arOut := arenaFor[K3, V3](s.pool, h.reducers)
	outs := make([][]Pair[K3, V3], h.reducers)
	outCounts := make([]int64, h.reducers)
	var groups atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, h.reducers)
	for p, st := range streams {
		if h.owner(p) != s.id {
			st.Close()
			continue
		}
		p, st := p, st
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer st.Close()
			buf := &emitBuf[K3, V3]{pairs: arOut.getPairs(p, 0)}
			for {
				if cancel.Load() {
					errs[p] = errJobAborted
					outs[p] = buf.pairs // recycled by the abort path below
					return
				}
				k, values, ok, err := st.Next()
				if err != nil {
					errs[p] = fmt.Errorf("partition %d: %w", p, err)
					return
				}
				if !ok {
					break
				}
				groups.Add(1)
				if err := r.job.Reduce(k, values, buf); err != nil {
					errs[p] = fmt.Errorf("reduce key %v: %w", k, err)
					return
				}
			}
			outs[p] = buf.pairs
			outCounts[p] = int64(len(buf.pairs)) // survives the streamed-output nil below
			if h.wantOutput {
				fs := getFrameScratch()
				frame := append(fs.b[:0], byte(remote.MsgReduced))
				frame = remote.AppendUvarint(frame, h.seq)
				frame = remote.AppendUvarint(frame, uint64(p))
				frame = remote.AppendUvarint(frame, uint64(len(buf.pairs)))
				frame, err := encodePairs(frame, buf.pairs, k3c, v3c, h.wireComp, &wireSaved)
				if err != nil {
					putFrameScratch(fs)
					errs[p] = fmt.Errorf("encoding partition %d output: %w", p, err)
					return
				}
				fs.b = frame
				err = s.conn.WriteFrame(frame)
				putFrameScratch(fs)
				if err != nil {
					errs[p] = err
					return
				}
				// Streamed back: the buffer returns to the pool.
				arOut.putPairs(p, buf.pairs)
				outs[p] = nil
			}
			s.noteProgress(p, int64(outCounts[p]))
		}()
	}
	wg.Wait()
	close(watchStop)
	s.conn.BreakPoll() // don't hold job completion for the poll interval
	watchWG.Wait()
	if abortSeen.Load() {
		for p, out := range outs {
			if out != nil {
				arOut.putPairs(p, out)
				outs[p] = nil
			}
		}
		if err := s.ackAbort(h.seq); err != nil {
			return fmt.Errorf("job %q: acking abort: %w", h.name, err)
		}
		return errJobAborted
	}
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("job %q: %w", h.name, err)
		}
	}

	// Checkpoint the retained output: one frame per owned partition
	// (empty partitions included — restoration must distinguish "empty"
	// from "missing") streamed to the coordinator's mirror, plus a local
	// run file. The mirror stream is mandatory (a transport failure here
	// fails the job like any other); the local file is best-effort.
	var ownedParts []int
	for p := 0; p < h.reducers; p++ {
		if h.owner(p) == s.id {
			ownedParts = append(ownedParts, p)
		}
	}
	if h.ckpt && !h.wantOutput {
		var fileParts []ckptPart
		for _, p := range ownedParts {
			frame := []byte{byte(remote.MsgCkpt)}
			frame = remote.AppendUvarint(frame, h.seq)
			frame = remote.AppendUvarint(frame, uint64(p))
			frame = remote.AppendUvarint(frame, uint64(len(outs[p])))
			blobStart := len(frame)
			frame, err := encodePairs(frame, outs[p], k3c, v3c, h.wireComp, &wireSaved)
			if err != nil {
				return fmt.Errorf("job %q: encoding checkpoint partition %d: %w", h.name, p, err)
			}
			// Buffered: the MsgJobDone write below flushes the whole
			// checkpoint stream in one syscall.
			if err := s.conn.WriteFrameBuffered(frame); err != nil {
				return fmt.Errorf("job %q: streaming checkpoint partition %d: %w", h.name, p, err)
			}
			fileParts = append(fileParts, ckptPart{part: p, count: len(outs[p]), blob: frame[blobStart:]})
		}
		if w := s.checkpointTo(); w != nil {
			//lint:allow errdrop — local checkpoint files are a best-effort fallback (the coordinator mirror is authoritative); the writer self-disables on I/O error and restore falls back to the mirror, pinned by checkpoint_test.go damage tests
			w.write(h.seq, fileParts)
		}
	}

	// Retain resident output and report.
	var outRecords int64
	frame := remote.AppendUvarint([]byte{byte(remote.MsgJobDone)}, h.seq)
	frame = remote.AppendUvarint(frame, uint64(groups.Load()))
	for _, p := range ownedParts {
		outRecords += outCounts[p]
	}
	frame = remote.AppendUvarint(frame, uint64(outRecords))
	frame = remote.AppendUvarint(frame, uint64(time.Since(reduceStart)))
	frame = remote.AppendUvarint(frame, uint64(len(ownedParts)))
	for _, p := range ownedParts {
		frame = remote.AppendUvarint(frame, uint64(p))
		frame = remote.AppendUvarint(frame, uint64(outCounts[p]))
	}
	if c := r.job.Counters; c != nil {
		snap := c.Snapshot()
		names := c.Names()
		frame = remote.AppendUvarint(frame, uint64(len(names)))
		for _, name := range names {
			frame = remote.AppendString(frame, name)
			frame = remote.AppendUvarint(frame, uint64(snap[name]))
		}
	} else {
		frame = remote.AppendUvarint(frame, 0)
	}
	frame = remote.AppendUvarint(frame, uint64(wireSaved.Load()))
	if !h.wantOutput {
		s.resident[h.seq] = &residentData[K3, V3]{parts: outs, kc: k3c, vc: v3c, ar: arOut, comp: h.wireComp}
	}
	return s.conn.WriteFrame(frame)
}

// runResidentMap maps this worker's resident input partitions,
// identity-routing self-addressed pairs into the local shuffle — the
// partition-resident fast path, now running where the partition lives.
func (r *distWorkerJob[K1, V1, K2, V2, K3, V3]) runResidentMap(
	s *workerSession, input *residentData[K1, V1], sender *workerSender[K2, V2],
) (emitted, local, cross int64, err error) {
	cast := keyCast[K1, K2]()
	var wg sync.WaitGroup
	errs := make([]error, len(input.parts))
	var em, lo, cr atomic.Int64
	for p, part := range input.parts {
		if sender.h.owner(p) != s.id || part == nil {
			continue
		}
		p, part := p, part
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := newShuffleEmitter(sender, p, sender.ar)
			e.selfOK = cast != nil
			for j := range part {
				if e.selfOK {
					e.self = cast(part[j].Key)
				}
				if err := r.job.Map(part[j].Key, part[j].Value, e); err != nil {
					errs[p] = fmt.Errorf("map partition %d record %d: %w", p, j, err)
					return
				}
				if e.err != nil {
					errs[p] = e.err
					return
				}
			}
			if err := e.finish(); err != nil {
				errs[p] = err
				return
			}
			em.Add(e.count)
			lo.Add(e.local)
			cr.Add(e.cross)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, 0, 0, err
		}
	}
	return em.Load(), lo.Load(), cr.Load(), nil
}
