package mapreduce

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mapreduce/remote"
)

// This file is the worker half of the distributed execution mode: the
// job registry, the serve loop a worker process runs, and the per-job
// handler that ingests buckets, group-sorts each owned partition with
// the same radix path the in-memory backend uses, runs the registered
// reduce function, and either streams the output back or keeps it
// resident for the next chained job. Function values cannot travel, so
// a worker runs the map/reduce functions registered under the job's
// name — for jobs whose functions close over driver-side round state,
// the registered factory rebuilds them from the job's parameter blob
// (Config.DistParams).

// DistJob is one registered job's worker-side behavior.
type DistJob[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any] struct {
	// Map is required only for chained consumption of a worker-resident
	// input (the partition-resident fast path); flat jobs, whose map
	// phase runs on the coordinator, leave it nil.
	Map MapFunc[K1, V1, K2, V2]
	// Reduce runs over every owned partition's key groups. Required.
	Reduce ReduceFunc[K2, V2, K3, V3]
	// Counters, when non-nil, is snapshotted into the job-done report
	// and merged into the coordinator's Config.DistCounters — the
	// distributed form of shared job counters.
	Counters *Counters
}

// distJobRunner is the untyped face of a registered job.
type distJobRunner interface {
	run(s *workerSession, h *distJobHeader) error
}

var distJobs = struct {
	mu sync.RWMutex
	m  map[string]func(params []byte) (distJobRunner, error)
}{m: make(map[string]func(params []byte) (distJobRunner, error))}

// RegisterDistJob registers the worker-side functions for every dist
// job named `name` (Config.Name). The factory runs once per job
// execution with the job's parameter blob, so reduces that close over
// per-round driver state rebuild it here. Registration is process-wide
// and the last registration for a name wins — a worker process serves
// one computation at a time. Coordinators don't need registrations;
// only the processes that serve (ServeDistWorker) do, which for the
// self-exec CLIs is the re-executed binary.
func RegisterDistJob[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any](
	name string,
	factory func(params []byte) (DistJob[K1, V1, K2, V2, K3, V3], error),
) {
	distJobs.mu.Lock()
	defer distJobs.mu.Unlock()
	distJobs.m[name] = func(params []byte) (distJobRunner, error) {
		job, err := factory(params)
		if err != nil {
			return nil, fmt.Errorf("building job %q: %w", name, err)
		}
		if job.Reduce == nil {
			return nil, fmt.Errorf("job %q registered without a reduce function", name)
		}
		return &distWorkerJob[K1, V1, K2, V2, K3, V3]{job: job}, nil
	}
}

// RegisterDistReduce registers a parameter-free, reduce-only job: the
// common case for reduces that capture nothing (or only immutable
// shared inputs). Such jobs cannot consume a worker-resident input
// chained (no map function); their map phase always runs on the
// coordinator.
func RegisterDistReduce[K2 comparable, V2 any, K3 comparable, V3 any](
	name string, reduce ReduceFunc[K2, V2, K3, V3],
) {
	RegisterDistJob(name, func([]byte) (DistJob[K3, V3, K2, V2, K3, V3], error) {
		return DistJob[K3, V3, K2, V2, K3, V3]{Reduce: reduce}, nil
	})
}

func lookupDistJob(name string, params []byte) (distJobRunner, error) {
	distJobs.mu.RLock()
	factory, ok := distJobs.m[name]
	distJobs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("no dist job registered as %q (workers run registered functions; see RegisterDistJob)", name)
	}
	return factory(params)
}

// residentSet is one retained job output, typed underneath.
type residentSet interface {
	fetch(conn *remote.Conn, seq uint64) error
	drop()
}

// residentData retains one job's reduce output per owned partition
// between jobs.
type residentData[K comparable, V any] struct {
	parts [][]Pair[K, V]
	kc    spillCodec[K]
	vc    spillCodec[V]
	ar    *roundArena[K, V]
}

// fetch streams every retained partition and releases it (fetch moves;
// the coordinator's Materialize owns the records afterwards).
func (r *residentData[K, V]) fetch(conn *remote.Conn, seq uint64) error {
	for p, pairs := range r.parts {
		if pairs == nil {
			continue
		}
		frame := []byte{byte(remote.MsgPart)}
		frame = remote.AppendUvarint(frame, seq)
		frame = remote.AppendUvarint(frame, uint64(p))
		frame = remote.AppendUvarint(frame, uint64(len(pairs)))
		frame, err := encodePairs(frame, pairs, r.kc, r.vc)
		if err != nil {
			return fmt.Errorf("encoding resident partition %d: %w", p, err)
		}
		if err := conn.WriteFrame(frame); err != nil {
			return err
		}
	}
	r.drop()
	return conn.WriteFrame(remote.AppendUvarint([]byte{byte(remote.MsgFetchDone)}, seq))
}

// drop recycles the retained partition buffers.
func (r *residentData[K, V]) drop() {
	for p, pairs := range r.parts {
		if pairs != nil {
			r.ar.putPairs(p, pairs)
		}
	}
	r.parts = nil
}

// workerSession is one worker process's connection-lifetime state.
type workerSession struct {
	conn     *remote.Conn
	id       int
	workers  int
	pool     *BufferPool
	resident map[uint64]residentSet
}

// owns reports whether this worker owns reduce partition p.
func (s *workerSession) owns(p int) bool { return remote.Owner(p, s.workers) == s.id }

// ServeDistWorker connects to a coordinator and serves jobs until the
// coordinator says goodbye (clean nil return) or the session fails. It
// is the main loop of a worker process — the self-exec CLIs call it in
// worker mode — and is equally happy on a goroutine for in-process
// tests. Cancelling ctx closes the connection and ends the session.
func ServeDistWorker(ctx context.Context, addr string) error {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("mapreduce: dist worker dialing %s: %w", addr, err)
	}
	conn := remote.NewConn(nc)
	defer conn.Close()
	if err := remote.Hello(conn); err != nil {
		return fmt.Errorf("mapreduce: dist worker handshake: %w", err)
	}
	id, workers, err := remote.AwaitWelcome(conn)
	if err != nil {
		return fmt.Errorf("mapreduce: dist worker handshake: %w", err)
	}
	if ctx != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				conn.Close()
			case <-watchDone:
			}
		}()
	}
	s := &workerSession{
		conn:     conn,
		id:       id,
		workers:  workers,
		pool:     NewBufferPool(),
		resident: make(map[uint64]residentSet),
	}
	return s.serve()
}

// sendError best-effort reports a fatal job error before the session
// ends; the coordinator surfaces it verbatim.
func (s *workerSession) sendError(seq uint64, err error) {
	frame := remote.AppendUvarint([]byte{byte(remote.MsgError)}, seq)
	frame = remote.AppendString(frame, err.Error())
	s.conn.WriteFrame(frame)
}

func (s *workerSession) serve() error {
	for {
		payload, err := s.conn.ReadFrame()
		if err != nil {
			// The coordinator hanging up without a goodbye usually means
			// it failed; the worker just winds down.
			return nil
		}
		cur := remote.NewCursor(payload)
		switch t := remote.MsgType(cur.Byte()); t {
		case remote.MsgJobStart:
			h, err := parseJobHeader(cur)
			if err != nil {
				s.sendError(0, err)
				return err
			}
			runner, err := lookupDistJob(h.name, h.params)
			if err != nil {
				s.sendError(h.seq, err)
				return fmt.Errorf("mapreduce: dist worker: %w", err)
			}
			if err := runner.run(s, h); err != nil {
				s.sendError(h.seq, err)
				return fmt.Errorf("mapreduce: dist worker: job %q: %w", h.name, err)
			}
		case remote.MsgFetch:
			seq := cur.Uvarint()
			ent, ok := s.resident[seq]
			if !ok {
				err := fmt.Errorf("fetch of unknown resident job %d", seq)
				s.sendError(seq, err)
				return fmt.Errorf("mapreduce: dist worker: %w", err)
			}
			delete(s.resident, seq)
			if err := ent.fetch(s.conn, seq); err != nil {
				return fmt.Errorf("mapreduce: dist worker: fetch: %w", err)
			}
		case remote.MsgDrop:
			seq := cur.Uvarint()
			if ent, ok := s.resident[seq]; ok {
				ent.drop()
				delete(s.resident, seq)
			}
		case remote.MsgBye:
			return nil
		default:
			err := fmt.Errorf("unexpected %v between jobs", t)
			s.sendError(0, err)
			return fmt.Errorf("mapreduce: dist worker: %w", err)
		}
	}
}

// distWorkerJob executes one job on a worker.
type distWorkerJob[K1 comparable, V1 any, K2 comparable, V2 any, K3 comparable, V3 any] struct {
	job DistJob[K1, V1, K2, V2, K3, V3]
}

// workerSender is the ShuffleBackend a chained worker-side map phase
// emits into: buckets for owned partitions land in the local shuffle
// directly (this is the path self-addressed pairs take — they never
// touch the wire), buckets for foreign partitions stream to the
// coordinator, which relays them to their owner.
type workerSender[K2 comparable, V2 any] struct {
	s       *workerSession
	seq     uint64
	local   *memoryShuffle[K2, V2]
	ar      *roundArena[K2, V2]
	kc      spillCodec[K2]
	vc      spillCodec[V2]
	sent    atomic.Int64
	reducers int
}

func (ws *workerSender[K2, V2]) Partitions() int { return ws.reducers }
func (ws *workerSender[K2, V2]) BucketCap() int  { return 0 }

func (ws *workerSender[K2, V2]) AddBucket(split, part int, pairs []Pair[K2, V2]) error {
	if ws.s.owns(part) {
		// Ownership transfer, exactly like the in-memory backend.
		return ws.local.AddBucket(split, part, pairs)
	}
	frame, err := encodeBucketFrame(ws.seq, split, part, pairs, ws.kc, ws.vc)
	if err != nil {
		return fmt.Errorf("encoding bucket: %w", err)
	}
	if err := ws.s.conn.WriteFrame(frame); err != nil {
		return err
	}
	ws.sent.Add(int64(len(pairs)))
	ws.ar.putBucket(part, pairs)
	return nil
}

func (ws *workerSender[K2, V2]) Finalize() ([]GroupStream[K2, V2], error) {
	return nil, fmt.Errorf("workerSender has no streams")
}
func (ws *workerSender[K2, V2]) Close() error { return nil }

func (r *distWorkerJob[K1, V1, K2, V2, K3, V3]) run(s *workerSession, h *distJobHeader) error {
	// The four type ids must match before any record is decoded: a
	// mismatch means the coordinator and this worker registered
	// different functions under the same name.
	if h.k2id != distTypeID[K2]() || h.v2id != distTypeID[V2]() ||
		h.k3id != distTypeID[K3]() || h.v3id != distTypeID[V3]() {
		return fmt.Errorf("job %q type mismatch: coordinator sends (%s,%s)->(%s,%s), worker registered (%s,%s)->(%s,%s)",
			h.name, h.k2id, h.v2id, h.k3id, h.v3id,
			distTypeID[K2](), distTypeID[V2](), distTypeID[K3](), distTypeID[V3]())
	}
	k2c, err := resolveSpillCodec[K2]()
	if err != nil {
		return err
	}
	v2c, err := resolveSpillCodec[V2]()
	if err != nil {
		return err
	}
	k3c, err := resolveSpillCodec[K3]()
	if err != nil {
		return err
	}
	v3c, err := resolveSpillCodec[V3]()
	if err != nil {
		return err
	}

	ar := arenaFor[K2, V2](s.pool, h.reducers)
	shuffle := newMemoryShuffle[K2, V2](h.reducers, h.splits, ar)

	// Ingest: either the coordinator streams every bucket (flat), or
	// this worker maps its resident input partitions while the main
	// loop below keeps receiving the buckets other workers relay here.
	var mapErrOnce sync.Once
	var mapErr error
	mapDone := make(chan struct{})
	if h.mode == remote.ModeChained {
		input, ok := s.resident[h.inputSeq].(*residentData[K1, V1])
		if !ok {
			return fmt.Errorf("job %q: resident input %d is missing or has a different type", h.name, h.inputSeq)
		}
		if r.job.Map == nil {
			return fmt.Errorf("job %q has no registered map function, cannot consume a worker-resident input", h.name)
		}
		sender := &workerSender[K2, V2]{
			s: s, seq: h.seq, local: shuffle, ar: ar, kc: k2c, vc: v2c, reducers: h.reducers,
		}
		go func() {
			defer close(mapDone)
			start := time.Now()
			emitted, local, cross, err := r.runResidentMap(s, input, sender)
			if err != nil {
				mapErrOnce.Do(func() { mapErr = err })
				// The coordinator's flush barrier waits for every
				// worker's map-done; a silent failure here would leave
				// the whole job waiting on a flush that can never come.
				// The error frame fails the job (and the cluster)
				// instead.
				s.sendError(h.seq, fmt.Errorf("map: %w", err))
				return
			}
			frame := remote.AppendUvarint([]byte{byte(remote.MsgMapDone)}, h.seq)
			frame = remote.AppendUvarint(frame, uint64(emitted))
			frame = remote.AppendUvarint(frame, uint64(local))
			frame = remote.AppendUvarint(frame, uint64(cross))
			frame = remote.AppendUvarint(frame, uint64(time.Since(start)))
			if err := s.conn.WriteFrame(frame); err != nil {
				mapErrOnce.Do(func() { mapErr = err })
			}
		}()
	} else {
		close(mapDone)
	}

	// Main ingest loop: buckets until the flush.
	for {
		payload, err := s.conn.ReadFrame()
		if err != nil {
			// A resident-map failure reported above makes the
			// coordinator tear the cluster down, which surfaces here as
			// a read error: report the root cause, not the teardown.
			select {
			case <-mapDone:
				if mapErr != nil {
					return fmt.Errorf("job %q: map: %w", h.name, mapErr)
				}
			default:
			}
			return fmt.Errorf("job %q: transport error during shuffle: %w", h.name, err)
		}
		cur := remote.NewCursor(payload)
		t := remote.MsgType(cur.Byte())
		if t == remote.MsgFlush {
			cur.Uvarint()
			break
		}
		if t != remote.MsgBucket {
			return fmt.Errorf("job %q: unexpected %v during shuffle", h.name, t)
		}
		cur.Uvarint() // seq
		split := int(cur.Uvarint())
		part := int(cur.Uvarint())
		count := int(cur.Uvarint())
		if err := cur.Err(); err != nil || split < 0 || split >= h.splits ||
			part < 0 || part >= h.reducers || !s.owns(part) {
			return fmt.Errorf("job %q: malformed bucket (split %d, part %d)", h.name, split, part)
		}
		bucket, err := decodePairs(cur, count, k2c, v2c, ar.getBucket(part, pairCap(cur, count)))
		if err != nil {
			return fmt.Errorf("job %q: decoding bucket: %w", h.name, err)
		}
		if err := shuffle.AddBucket(split, part, bucket); err != nil {
			return err
		}
	}
	<-mapDone
	if mapErr != nil {
		return fmt.Errorf("job %q: map: %w", h.name, mapErr)
	}

	// Group-sort and reduce the owned partitions, in parallel — the
	// memory backend's radix group path runs inside each goroutine,
	// checked out of this worker's round-recycled pool.
	reduceStart := time.Now()
	streams, err := shuffle.Finalize()
	if err != nil {
		return err
	}
	arOut := arenaFor[K3, V3](s.pool, h.reducers)
	outs := make([][]Pair[K3, V3], h.reducers)
	outCounts := make([]int64, h.reducers)
	var groups atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, h.reducers)
	for p, st := range streams {
		if !s.owns(p) {
			st.Close()
			continue
		}
		p, st := p, st
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer st.Close()
			buf := &emitBuf[K3, V3]{pairs: arOut.getPairs(p, 0)}
			for {
				k, values, ok, err := st.Next()
				if err != nil {
					errs[p] = fmt.Errorf("partition %d: %w", p, err)
					return
				}
				if !ok {
					break
				}
				groups.Add(1)
				if err := r.job.Reduce(k, values, buf); err != nil {
					errs[p] = fmt.Errorf("reduce key %v: %w", k, err)
					return
				}
			}
			outs[p] = buf.pairs
			outCounts[p] = int64(len(buf.pairs)) // survives the streamed-output nil below
			if h.wantOutput {
				frame := []byte{byte(remote.MsgReduced)}
				frame = remote.AppendUvarint(frame, h.seq)
				frame = remote.AppendUvarint(frame, uint64(p))
				frame = remote.AppendUvarint(frame, uint64(len(buf.pairs)))
				frame, err := encodePairs(frame, buf.pairs, k3c, v3c)
				if err != nil {
					errs[p] = fmt.Errorf("encoding partition %d output: %w", p, err)
					return
				}
				if err := s.conn.WriteFrame(frame); err != nil {
					errs[p] = err
					return
				}
				// Streamed back: the buffer returns to the pool.
				arOut.putPairs(p, buf.pairs)
				outs[p] = nil
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("job %q: %w", h.name, err)
		}
	}

	// Retain resident output and report.
	var outRecords int64
	frame := remote.AppendUvarint([]byte{byte(remote.MsgJobDone)}, h.seq)
	frame = remote.AppendUvarint(frame, uint64(groups.Load()))
	var ownedParts []int
	for p := 0; p < h.reducers; p++ {
		if s.owns(p) {
			ownedParts = append(ownedParts, p)
			outRecords += outCounts[p]
		}
	}
	frame = remote.AppendUvarint(frame, uint64(outRecords))
	frame = remote.AppendUvarint(frame, uint64(time.Since(reduceStart)))
	frame = remote.AppendUvarint(frame, uint64(len(ownedParts)))
	for _, p := range ownedParts {
		frame = remote.AppendUvarint(frame, uint64(p))
		frame = remote.AppendUvarint(frame, uint64(outCounts[p]))
	}
	if c := r.job.Counters; c != nil {
		snap := c.Snapshot()
		names := c.Names()
		frame = remote.AppendUvarint(frame, uint64(len(names)))
		for _, name := range names {
			frame = remote.AppendString(frame, name)
			frame = remote.AppendUvarint(frame, uint64(snap[name]))
		}
	} else {
		frame = remote.AppendUvarint(frame, 0)
	}
	if !h.wantOutput {
		s.resident[h.seq] = &residentData[K3, V3]{parts: outs, kc: k3c, vc: v3c, ar: arOut}
	}
	return s.conn.WriteFrame(frame)
}

// runResidentMap maps this worker's resident input partitions,
// identity-routing self-addressed pairs into the local shuffle — the
// partition-resident fast path, now running where the partition lives.
func (r *distWorkerJob[K1, V1, K2, V2, K3, V3]) runResidentMap(
	s *workerSession, input *residentData[K1, V1], sender *workerSender[K2, V2],
) (emitted, local, cross int64, err error) {
	cast := keyCast[K1, K2]()
	var wg sync.WaitGroup
	errs := make([]error, len(input.parts))
	var em, lo, cr atomic.Int64
	for p, part := range input.parts {
		if !s.owns(p) || part == nil {
			continue
		}
		p, part := p, part
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := newShuffleEmitter(sender, p, sender.ar)
			e.selfOK = cast != nil
			for j := range part {
				if e.selfOK {
					e.self = cast(part[j].Key)
				}
				if err := r.job.Map(part[j].Key, part[j].Value, e); err != nil {
					errs[p] = fmt.Errorf("map partition %d record %d: %w", p, j, err)
					return
				}
				if e.err != nil {
					errs[p] = e.err
					return
				}
			}
			if err := e.finish(); err != nil {
				errs[p] = err
				return
			}
			em.Add(e.count)
			lo.Add(e.local)
			cr.Add(e.cross)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, 0, 0, err
		}
	}
	return em.Load(), lo.Load(), cr.Load(), nil
}
