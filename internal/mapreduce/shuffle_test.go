package mapreduce

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// nodeKey mimics graph.NodeID: a named scalar that must take the
// reflection path of the spill codec, not the exact-type fast path.
type nodeKey int32

// gobVal has exported fields and no BinaryMarshaler, forcing the gob
// fallback of the spill codec.
type gobVal struct {
	N int
	S string
}

func spillCfg(budget int) Config {
	return Config{
		Mappers: 4, Reducers: 3,
		Shuffle: ShuffleConfig{Backend: ShuffleSpill, MemoryBudget: budget},
	}
}

// concatJob is deliberately order-sensitive: the reduce output depends
// on the exact order values arrive in, so any backend that breaks the
// deterministic (split, emission) value order fails the comparison.
func concatJob(t *testing.T, cfg Config, n int) []Pair[string, string] {
	t.Helper()
	input := make([]Pair[int, int], n)
	for i := range input {
		input[i] = P(i, i)
	}
	out, _, err := Run(context.Background(), cfg, input,
		func(k, v int, out Emitter[string, string]) error {
			out.Emit(fmt.Sprintf("k%03d", k%17), fmt.Sprintf("v%d", v))
			out.Emit("all", fmt.Sprintf("a%d", v))
			return nil
		},
		func(k string, vs []string, out Emitter[string, string]) error {
			out.Emit(k, strings.Join(vs, ","))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestShuffleBackendsEquivalent(t *testing.T) {
	mem := concatJob(t, Config{Mappers: 4, Reducers: 3}, 500)
	spill := concatJob(t, spillCfg(64), 500)
	if !reflect.DeepEqual(mem, spill) {
		t.Fatalf("backends disagree:\nmemory: %v\nspill:  %v", mem[:3], spill[:3])
	}
}

func TestSpillBackendActuallySpills(t *testing.T) {
	input := make([]Pair[int32, int32], 2000)
	for i := range input {
		input[i] = P(int32(i), int32(i))
	}
	cfg := spillCfg(100)
	_, stats, err := Run(context.Background(), cfg, input,
		Identity[int32, int32](), CollectValues[int32, int32]())
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpilledRecords == 0 || stats.SpillRuns == 0 {
		t.Fatalf("no spill recorded for 2000 records under a budget of 100: %+v", stats)
	}
	if stats.ShuffleRecords != 2000 {
		t.Fatalf("ShuffleRecords = %d, want 2000", stats.ShuffleRecords)
	}
	if stats.ReduceGroups != 2000 {
		t.Fatalf("ReduceGroups = %d, want 2000", stats.ReduceGroups)
	}
}

func TestSpillNamedKeyAndGobValue(t *testing.T) {
	input := make([]Pair[int, int], 300)
	for i := range input {
		input[i] = P(i, i)
	}
	run := func(cfg Config) []Pair[nodeKey, int] {
		out, _, err := Run(context.Background(), cfg, input,
			func(k, v int, out Emitter[nodeKey, gobVal]) error {
				out.Emit(nodeKey(k%23), gobVal{N: v, S: fmt.Sprintf("s%d", v)})
				return nil
			},
			func(k nodeKey, vs []gobVal, out Emitter[nodeKey, int]) error {
				sum := 0
				for _, v := range vs {
					sum += v.N + len(v.S)
				}
				out.Emit(k, sum)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	mem := run(Config{Mappers: 4, Reducers: 3})
	spill := run(spillCfg(32))
	if !reflect.DeepEqual(mem, spill) {
		t.Fatalf("named-key/gob-value job disagrees across backends")
	}
}

func TestSpillEmptyStructValues(t *testing.T) {
	// The simjoin probe job shuffles [2]int32 keys with struct{} values.
	input := make([]Pair[int, int], 200)
	for i := range input {
		input[i] = P(i, i)
	}
	run := func(cfg Config) []Pair[[2]int32, int] {
		out, _, err := Run(context.Background(), cfg, input,
			func(k, v int, out Emitter[[2]int32, struct{}]) error {
				out.Emit([2]int32{int32(k % 7), int32(k % 3)}, struct{}{})
				return nil
			},
			func(k [2]int32, vs []struct{}, out Emitter[[2]int32, int]) error {
				out.Emit(k, len(vs))
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !reflect.DeepEqual(run(Config{Mappers: 3, Reducers: 2}), run(spillCfg(16))) {
		t.Fatal("empty-struct job disagrees across backends")
	}
}

func TestSpillWithFailureInjection(t *testing.T) {
	cfg := spillCfg(64)
	cfg.FailureRate = 0.4
	cfg.FailureSeed = 7
	cfg.MaxAttempts = 16
	faulty := concatJob(t, cfg, 400)
	clean := concatJob(t, Config{Mappers: 4, Reducers: 3}, 400)
	if !reflect.DeepEqual(clean, faulty) {
		t.Fatal("spill output changed under failure injection")
	}
}

func TestSpillCombinedJob(t *testing.T) {
	input := make([]Pair[int, int], 1000)
	for i := range input {
		input[i] = P(i, 1)
	}
	mapFn := func(k, v int, out Emitter[int32, int]) error {
		out.Emit(int32(k%13), v)
		return nil
	}
	combine := func(k int32, vs []int) []int {
		s := 0
		for _, v := range vs {
			s += v
		}
		return []int{s}
	}
	reduce := func(k int32, vs []int, out Emitter[int32, int]) error {
		s := 0
		for _, v := range vs {
			s += v
		}
		out.Emit(k, s)
		return nil
	}
	mem, _, err := RunCombined(context.Background(), Config{Mappers: 4, Reducers: 3},
		input, mapFn, combine, reduce)
	if err != nil {
		t.Fatal(err)
	}
	spill, _, err := RunCombined(context.Background(), spillCfg(8), input, mapFn, combine, reduce)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mem, spill) {
		t.Fatal("combined job disagrees across backends")
	}
}

func TestUnknownShuffleBackend(t *testing.T) {
	cfg := Config{Shuffle: ShuffleConfig{Backend: "carrier-pigeon"}}
	_, _, err := Run(context.Background(), cfg, []Pair[int, int]{P(1, 1)},
		Identity[int, int](), CollectValues[int, int]())
	if err == nil || !strings.Contains(err.Error(), "carrier-pigeon") {
		t.Fatalf("unknown backend not rejected: %v", err)
	}
}

// TestSpillStress10x completes a job whose shuffle volume exceeds the
// memory budget by well over 10x and checks the output against the
// in-memory backend record for record.
func TestSpillStress10x(t *testing.T) {
	const n, fanout, budget = 5000, 8, 2000 // 40k shuffled records, 20x budget
	input := make([]Pair[int32, int32], n)
	for i := range input {
		input[i] = P(int32(i), int32(i))
	}
	mapFn := func(k, v int32, out Emitter[int32, int32]) error {
		for f := int32(0); f < fanout; f++ {
			out.Emit((k*31+f)%997, v+f)
		}
		return nil
	}
	redFn := func(k int32, vs []int32, out Emitter[int32, int64]) error {
		var s int64
		for _, v := range vs {
			s += int64(v)
		}
		out.Emit(k, s*int64(len(vs)))
		return nil
	}
	mem, _, err := Run(context.Background(), Config{Mappers: 4, Reducers: 4}, input, mapFn, redFn)
	if err != nil {
		t.Fatal(err)
	}
	spill, stats, err := Run(context.Background(), spillCfg(budget), input, mapFn, redFn)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShuffleRecords < 10*budget {
		t.Fatalf("stress job shuffled %d records, want >= %d", stats.ShuffleRecords, 10*budget)
	}
	if stats.SpilledRecords == 0 {
		t.Fatal("stress job never spilled")
	}
	if !reflect.DeepEqual(mem, spill) {
		t.Fatal("stress job output disagrees across backends")
	}
	t.Logf("stress: shuffled=%d spilled=%d runs=%d (budget %d)",
		stats.ShuffleRecords, stats.SpilledRecords, stats.SpillRuns, budget)
}

// badKey is a composite key whose fmt representation (the lessKey
// fallback used by the spill sorter) collides for distinct values:
// {"a ", "b"} and {"a", " b"} both print as "{a  b}".
type badKey struct {
	A, B string
}

func TestSpillRejectsIndistinguishableKeys(t *testing.T) {
	input := []Pair[int, int]{P(1, 1), P(2, 2)}
	_, _, err := Run(context.Background(), spillCfg(1), input,
		func(k, v int, out Emitter[badKey, int]) error {
			if k == 1 {
				out.Emit(badKey{"a ", "b"}, v)
			} else {
				out.Emit(badKey{"a", " b"}, v)
			}
			return nil
		},
		CollectValues[badKey, int]())
	if err == nil || !strings.Contains(err.Error(), "cannot distinguish") {
		t.Fatalf("colliding composite keys not rejected: %v", err)
	}
}
