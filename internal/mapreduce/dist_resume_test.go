package mapreduce

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/mapreduce/remote"
)

// graceHB is the reconnect-test tempo: the elastic-scheduling heartbeat
// cadence plus a reconnect grace window, which flips every worker
// session into resume mode (sequence-numbered frames, retransmit rings,
// redial-and-reattach on transport error).
func graceHB() DistClusterOptions {
	opts := fastHB()
	opts.ReconnectGrace = 5 * time.Second
	return opts
}

// TestDistReconnectSeverRedial is the tentpole chaos matrix for session
// resume: a transport fault severs one worker session at a seed-derived
// frame index — alternating directions, as in TestDistFaultMatrix — but
// with ReconnectGrace set the sever must be absorbed invisibly. The
// worker redials, re-attaches by token, both sides replay un-acked
// frames, and the run finishes bit-identical with ZERO reseeded
// partitions and no worker ever declared lost.
func TestDistReconnectSeverRedial(t *testing.T) {
	const rounds = 3
	want := memoryRingReference(t, rounds)
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cl := startSchedCluster(t, 2, graceHB(), nil)
			f := &remote.Fault{Op: remote.FaultSever}
			if seed%2 == 0 {
				f.AfterWrites = remote.FaultPoint(seed, 1, 12)
			} else {
				f.AfterReads = remote.FaultPoint(seed, 1, 8)
			}
			if err := cl.InjectFault(int(seed)%2, f); err != nil {
				t.Fatal(err)
			}
			got := ringRounds(t, distCfg4(cl, "ring-step"), rounds)
			if !reflect.DeepEqual(got, want) {
				t.Fatal("severed-then-redialed run diverges from memory backend")
			}
			rs := cl.RecoveryStats()
			if rs.WorkerReconnects < 1 {
				t.Fatalf("sever absorbed without a reconnect: %+v", rs)
			}
			if rs.Reseeded != 0 || rs.WorkersLost != 0 {
				t.Fatalf("resume escalated to loss recovery: lost=%d reseeded=%d",
					rs.WorkersLost, rs.Reseeded)
			}
			t.Logf("seed %d: reconnects=%d frames replayed=%d",
				seed, rs.WorkerReconnects, rs.FramesReplayed)
		})
	}
}

// TestDistReconnectRacingSpeculation pins the interaction between
// session resume and the straggler detector: a recovering worker is
// mid-redial exactly when the tail-latency monitor would love to
// speculate on it. The health monitor must skip recovering sessions, so
// the run still completes bit-identical via reattach, not via a backup
// attempt racing a ghost.
func TestDistReconnectRacingSpeculation(t *testing.T) {
	const rounds = 3
	want := memoryRingReference(t, rounds)
	cl := startSchedCluster(t, 2, graceHB(), nil)
	if err := cl.InjectFault(1, &remote.Fault{
		Op: remote.FaultSever, AfterWrites: remote.FaultPoint(11, 1, 12),
	}); err != nil {
		t.Fatal(err)
	}
	cfg := distCfg4(cl, "ring-step")
	cfg.SpeculationFactor = 4
	got := ringRounds(t, cfg, rounds)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("reconnect under speculation diverges from memory backend")
	}
	rs := cl.RecoveryStats()
	if rs.WorkerReconnects < 1 {
		t.Fatalf("sever absorbed without a reconnect: %+v", rs)
	}
	if rs.Reseeded != 0 || rs.WorkersLost != 0 {
		t.Fatalf("resume escalated to loss recovery: lost=%d reseeded=%d",
			rs.WorkersLost, rs.Reseeded)
	}
}

// TestDistClusterCloseIdempotent pins the Close contract: the second
// Close — the deferred one after an explicit shutdown — re-reports the
// first close's verdict instead of re-running teardown.
func TestDistClusterCloseIdempotent(t *testing.T) {
	cl := startTestCluster(t, 2)
	if _, _, err := RunDS(context.Background(), distCfg4(cl, "ring-step"),
		PartitionDataset(ringInput(), 4), ringMap, ringReduce); err != nil {
		t.Fatal(err)
	}
	err1 := cl.Close()
	err2 := cl.Close()
	if err1 != nil {
		t.Fatalf("first close: %v", err1)
	}
	if err2 != err1 {
		t.Fatalf("second close changed the verdict: %v, want %v", err2, err1)
	}
	if err3 := cl.Close(); err3 != err1 {
		t.Fatalf("third close changed the verdict: %v", err3)
	}
}

// TestDistFaultCutCompressedSeed severs a session in the middle of a
// frame — a real length prefix followed by a truncated payload — while
// WireCompression is on, so the surviving side must fail cleanly out of
// the flate path on a torn compressed blob, and recovery must reseed
// the dead worker's partitions by inflating the checkpoint mirror's
// compressed blobs. No grace window here: a cut is fatal by design.
func TestDistFaultCutCompressedSeed(t *testing.T) {
	const rounds = 3
	want := memoryRingReference(t, rounds)
	cl := startTestCluster(t, 2)
	// Frame 14 lands in a chained round, after the first round's output
	// went worker-resident: recovery must restore the dead worker's
	// partitions from the checkpoint mirror's compressed blobs, not
	// re-ship coordinator-local input.
	if err := cl.InjectFault(0, &remote.Fault{
		Op:          remote.FaultCut,
		AfterWrites: 14,
		CutBytes:    7,
	}); err != nil {
		t.Fatal(err)
	}
	cfg := distCfg4(cl, "ring-step")
	cfg.WireCompression = true
	got := ringRounds(t, cfg, rounds)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("mid-frame cut run diverges from memory backend")
	}
	rs := cl.RecoveryStats()
	if rs.WorkersLost < 1 || rs.Recoveries < 1 {
		t.Fatalf("cut did not trigger recovery: %+v", rs)
	}
	if rs.Reseeded < 1 {
		t.Fatalf("recovery never reseeded from the compressed mirror: %+v", rs)
	}
	t.Logf("cut recovery: lost=%d retried=%d reseeded=%d",
		rs.WorkersLost, rs.Recoveries, rs.Reseeded)
}

// TestDistWorkerStartsBeforeCoordinator pins the startup retry: a
// worker launched before the coordinator is listening keeps redialing
// with backoff instead of failing its first connect.
func TestDistWorkerStartsBeforeCoordinator(t *testing.T) {
	leakCheck(t)
	// Reserve an address, then free it for the coordinator to claim.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := ServeDistWorkerOpts(ctx, addr, DistWorkerOptions{
			Reconnect: ReconnectPolicy{Attempts: 40, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond},
		})
		if err != nil {
			t.Logf("early worker: %v", err)
		}
	}()
	// Let the worker burn a few failed dials against the dead address
	// before the coordinator shows up.
	time.Sleep(150 * time.Millisecond)
	cl, err := StartDistCluster(1, DistClusterOptions{Listen: addr, Timeout: 30 * time.Second})
	if err != nil {
		cancel()
		wg.Wait()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		cancel()
		wg.Wait()
	})
	want := memoryRingReference(t, 1)
	got := ringRounds(t, distCfg4(cl, "ring-step"), 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("early-worker run diverges from memory backend")
	}
}

// TestDistJournalResume is the in-process crash-resume pipeline: a
// journaling run commits two rounds and stops dead before the third —
// the moral equivalent of a coordinator crash at a round boundary. A
// fresh cluster over fresh workers resumes from the same journal
// directory: the committed rounds replay from journal records (no
// re-execution), the journaled mirror reseeds residency onto the new
// workers, and the final round runs live — bit-identical end to end.
func TestDistJournalResume(t *testing.T) {
	const rounds = 3
	want := memoryRingReference(t, rounds)
	dir := t.TempDir()

	opts := DistClusterOptions{Timeout: 30 * time.Second, JournalDir: dir}
	cl1 := startSchedCluster(t, 2, opts, nil)
	cfg1 := distCfg4(cl1, "ring-step")
	d1 := NewDriver(cfg1)
	_, err := Loop(context.Background(), d1, PartitionDataset(ringInput(), cfg1.reducers()),
		func(ctx context.Context, round int, st *Dataset[int32, int64]) (*Dataset[int32, int64], error) {
			if round == rounds-1 {
				return nil, nil // crash point: the final round never runs
			}
			next, _, err := RunDS(ctx, cfg1, st, ringMap, ringReduce)
			return next, err
		})
	if err != nil {
		t.Fatalf("journaling run: %v", err)
	}
	rs1 := cl1.RecoveryStats()
	if rs1.JournalBytes <= 0 {
		t.Fatal("journaling run recorded no journal bytes")
	}
	if err := cl1.Close(); err != nil {
		t.Fatalf("closing crashed-run cluster: %v", err)
	}

	opts2 := DistClusterOptions{Timeout: 30 * time.Second, JournalDir: dir, Resume: true}
	cl2 := startSchedCluster(t, 2, opts2, nil)
	cfg2 := distCfg4(cl2, "ring-step")
	d2 := NewDriver(cfg2)
	final, err := Loop(context.Background(), d2, PartitionDataset(ringInput(), cfg2.reducers()),
		func(ctx context.Context, round int, st *Dataset[int32, int64]) (*Dataset[int32, int64], error) {
			if round == rounds {
				return nil, nil
			}
			next, _, err := RunDS(ctx, cfg2, st, ringMap, ringReduce)
			return next, err
		})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if err := final.Materialize(); err != nil {
		t.Fatal(err)
	}
	if got := final.Collect(); !reflect.DeepEqual(got, want) {
		t.Fatal("resumed run diverges from memory backend")
	}
	rs2 := cl2.RecoveryStats()
	if rs2.JobsReplayed != rounds-1 {
		t.Fatalf("resumed run replayed %d jobs from the journal, want %d", rs2.JobsReplayed, rounds-1)
	}
	t.Logf("resume: %d jobs replayed, %dB journal", rs2.JobsReplayed, rs2.JournalBytes)
}

// TestDistJournalResumeFlat covers the other record kind: a flat
// (coordinator-returned) job result replayed from its single journaled
// blob on resume.
func TestDistJournalResumeFlat(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	run := func(cl *DistCluster) []Pair[int32, int64] {
		t.Helper()
		d := NewDriver(distCfg4(cl, "ring-step"))
		// RunJob observes the job, and an observed job on a journaling
		// cluster is a commit point.
		out, err := RunJob(ctx, d, "ring-step", ringInput(), ringMap, ringReduce)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	opts := DistClusterOptions{Timeout: 30 * time.Second, JournalDir: dir}
	cl1 := startSchedCluster(t, 2, opts, nil)
	want := run(cl1)
	if err := cl1.Close(); err != nil {
		t.Fatal(err)
	}

	opts2 := DistClusterOptions{Timeout: 30 * time.Second, JournalDir: dir, Resume: true}
	cl2 := startSchedCluster(t, 2, opts2, nil)
	got := run(cl2)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("journal-replayed flat job diverges from the original")
	}
	if rs := cl2.RecoveryStats(); rs.JobsReplayed != 1 {
		t.Fatalf("flat resume replayed %d jobs, want 1", rs.JobsReplayed)
	}
}

// TestDecodePairsTruncatedCompressed pins the torn-blob contract the
// cut fault relies on: a flate-compressed pair blob truncated at any
// point must either decode to an error or — when only trailing flate
// padding was cut — reproduce the pairs exactly. Never a panic, never
// wrong data reported as success.
func TestDecodePairsTruncatedCompressed(t *testing.T) {
	kc, err := resolveSpillCodec[int32]()
	if err != nil {
		t.Fatal(err)
	}
	vc, err := resolveSpillCodec[int64]()
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]Pair[int32, int64], 400)
	for i := range pairs {
		pairs[i] = Pair[int32, int64]{Key: int32(i % 7), Value: 42}
	}
	blob, err := encodePairs(nil, pairs, kc, vc, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	errored := 0
	for cut := 1; cut < len(blob); cut++ {
		cur := remote.NewCursor(blob[:cut])
		out, derr := decodePairs(cur, len(pairs), kc, vc,
			make([]Pair[int32, int64], 0, pairCap(cur, len(pairs), kc, vc)))
		if derr != nil || cur.Err() != nil {
			errored++
			continue
		}
		if !reflect.DeepEqual(out, pairs) {
			t.Fatalf("blob truncated at %d/%d decoded silently to wrong data", cut, len(blob))
		}
	}
	if errored == 0 {
		t.Fatal("no truncation point ever surfaced a decode error")
	}
}
