package mapreduce

import (
	"bufio"
	"bytes"
	"encoding"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"reflect"
)

// The spilling shuffle must serialize intermediate keys and values to
// run files. Serialization is resolved once per job from the concrete
// key and value types, in order of preference:
//
//  1. the exact builtin types the repository's jobs use most get
//     reflection-free fast paths (fastCodec) — these are unnamed
//     types, so they can never carry marshaling methods;
//  2. types implementing encoding.BinaryMarshaler (values) and
//     encoding.BinaryUnmarshaler (pointers) use their own methods — the
//     algorithm packages implement these on their message types;
//  3. remaining scalar kinds (all integer widths, floats, bools,
//     strings — named types included), empty structs, and fixed arrays
//     of scalars are encoded reflectively in a compact binary form;
//  4. anything else falls back to encoding/gob, which requires exported
//     fields but handles arbitrary composite types.
//
// The resolved codec is wrapped per record with varint length framing,
// so decode never needs type knowledge to find record boundaries.

// spillCodec encodes one type for the spill files: enc appends the
// encoding of v to buf, dec decodes exactly data.
type spillCodec[T any] struct {
	enc func(buf []byte, v T) ([]byte, error)
	dec func(data []byte) (T, error)
}

// resolveSpillCodec builds the codec for type T following the
// resolution order above.
func resolveSpillCodec[T any]() (spillCodec[T], error) {
	var zero T
	if c, ok := fastCodec[T](); ok {
		return c, nil
	}
	if _, ok := any(zero).(encoding.BinaryMarshaler); ok {
		if _, ok := any(&zero).(encoding.BinaryUnmarshaler); !ok {
			return spillCodec[T]{}, fmt.Errorf("%T implements BinaryMarshaler but *%T lacks BinaryUnmarshaler", zero, zero)
		}
		return spillCodec[T]{
			enc: func(buf []byte, v T) ([]byte, error) {
				b, err := any(v).(encoding.BinaryMarshaler).MarshalBinary()
				if err != nil {
					return nil, err
				}
				return append(buf, b...), nil
			},
			dec: func(data []byte) (T, error) {
				var v T
				err := any(&v).(encoding.BinaryUnmarshaler).UnmarshalBinary(data)
				return v, err
			},
		}, nil
	}
	t := reflect.TypeOf(zero)
	if t != nil {
		if c, ok := reflectCodec[T](t); ok {
			return c, nil
		}
		if t.Kind() == reflect.Slice {
			if c, ok := sliceCodec[T](t); ok {
				return c, nil
			}
		}
	}
	return gobCodec[T](), nil
}

// fastCodec returns a reflection-free codec for the exact intermediate
// types the repository's jobs use most. The typed-closure assertion
// costs nothing per record: when T is the asserted type the closures
// are used directly, with no boxing of keys or values.
func fastCodec[T any]() (spillCodec[T], bool) {
	c := spillCodec[T]{}
	switch any(c.enc).(type) {
	case func([]byte, int32) ([]byte, error):
		c.enc = any(func(buf []byte, v int32) ([]byte, error) {
			return binary.AppendVarint(buf, int64(v)), nil
		}).(func([]byte, T) ([]byte, error))
		c.dec = any(func(data []byte) (int32, error) {
			x, n := binary.Varint(data)
			if n <= 0 || n != len(data) {
				return 0, errSpillShort
			}
			return int32(x), nil
		}).(func([]byte) (T, error))
	case func([]byte, int) ([]byte, error):
		c.enc = any(func(buf []byte, v int) ([]byte, error) {
			return binary.AppendVarint(buf, int64(v)), nil
		}).(func([]byte, T) ([]byte, error))
		c.dec = any(func(data []byte) (int, error) {
			x, n := binary.Varint(data)
			if n <= 0 || n != len(data) {
				return 0, errSpillShort
			}
			return int(x), nil
		}).(func([]byte) (T, error))
	case func([]byte, int64) ([]byte, error):
		c.enc = any(func(buf []byte, v int64) ([]byte, error) {
			return binary.AppendVarint(buf, v), nil
		}).(func([]byte, T) ([]byte, error))
		c.dec = any(func(data []byte) (int64, error) {
			x, n := binary.Varint(data)
			if n <= 0 || n != len(data) {
				return 0, errSpillShort
			}
			return x, nil
		}).(func([]byte) (T, error))
	case func([]byte, float64) ([]byte, error):
		c.enc = any(func(buf []byte, v float64) ([]byte, error) {
			return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v)), nil
		}).(func([]byte, T) ([]byte, error))
		c.dec = any(func(data []byte) (float64, error) {
			if len(data) != 8 {
				return 0, errSpillShort
			}
			return math.Float64frombits(binary.LittleEndian.Uint64(data)), nil
		}).(func([]byte) (T, error))
	case func([]byte, bool) ([]byte, error):
		c.enc = any(func(buf []byte, v bool) ([]byte, error) {
			if v {
				return append(buf, 1), nil
			}
			return append(buf, 0), nil
		}).(func([]byte, T) ([]byte, error))
		c.dec = any(func(data []byte) (bool, error) {
			if len(data) != 1 {
				return false, errSpillShort
			}
			return data[0] != 0, nil
		}).(func([]byte) (T, error))
	case func([]byte, string) ([]byte, error):
		c.enc = any(func(buf []byte, v string) ([]byte, error) {
			return append(buf, v...), nil
		}).(func([]byte, T) ([]byte, error))
		c.dec = any(func(data []byte) (string, error) {
			return string(data), nil
		}).(func([]byte) (T, error))
	case func([]byte, [2]int32) ([]byte, error):
		c.enc = any(func(buf []byte, v [2]int32) ([]byte, error) {
			buf = binary.AppendVarint(buf, int64(v[0]))
			return binary.AppendVarint(buf, int64(v[1])), nil
		}).(func([]byte, T) ([]byte, error))
		c.dec = any(func(data []byte) ([2]int32, error) {
			a, n := binary.Varint(data)
			if n <= 0 {
				return [2]int32{}, errSpillShort
			}
			b, m := binary.Varint(data[n:])
			if m <= 0 || n+m != len(data) {
				return [2]int32{}, errSpillShort
			}
			return [2]int32{int32(a), int32(b)}, nil
		}).(func([]byte) (T, error))
	case func([]byte, struct{}) ([]byte, error):
		c.enc = any(func(buf []byte, v struct{}) ([]byte, error) {
			return buf, nil
		}).(func([]byte, T) ([]byte, error))
		c.dec = any(func(data []byte) (struct{}, error) {
			return struct{}{}, nil
		}).(func([]byte) (T, error))
	default:
		return c, false
	}
	return c, true
}

// reflectCodec covers scalar kinds, empty structs, and fixed arrays of
// scalars, including named types such as graph.NodeID or vector.TermID.
func reflectCodec[T any](t reflect.Type) (spillCodec[T], bool) {
	encElem, decElem, ok := reflectElemCodec(t)
	if !ok {
		return spillCodec[T]{}, false
	}
	return spillCodec[T]{
		enc: func(buf []byte, v T) ([]byte, error) {
			return encElem(buf, reflect.ValueOf(v)), nil
		},
		dec: func(data []byte) (T, error) {
			var v T
			rv := reflect.ValueOf(&v).Elem()
			rest, err := decElem(data, rv)
			if err == nil && len(rest) != 0 {
				err = fmt.Errorf("mapreduce: spill decode: %d trailing bytes", len(rest))
			}
			return v, err
		},
	}, true
}

type elemEnc func(buf []byte, v reflect.Value) []byte
type elemDec func(data []byte, into reflect.Value) (rest []byte, err error)

var errSpillShort = fmt.Errorf("mapreduce: spill decode: truncated record")

// reflectElemCodec returns append/decode functions for one supported
// reflect kind, or ok=false for unsupported kinds.
func reflectElemCodec(t reflect.Type) (elemEnc, elemDec, bool) {
	switch t.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return func(buf []byte, v reflect.Value) []byte {
				return binary.AppendVarint(buf, v.Int())
			}, func(data []byte, into reflect.Value) ([]byte, error) {
				x, n := binary.Varint(data)
				if n <= 0 {
					return nil, errSpillShort
				}
				into.SetInt(x)
				return data[n:], nil
			}, true
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return func(buf []byte, v reflect.Value) []byte {
				return binary.AppendUvarint(buf, v.Uint())
			}, func(data []byte, into reflect.Value) ([]byte, error) {
				x, n := binary.Uvarint(data)
				if n <= 0 {
					return nil, errSpillShort
				}
				into.SetUint(x)
				return data[n:], nil
			}, true
	case reflect.Float32, reflect.Float64:
		return func(buf []byte, v reflect.Value) []byte {
				return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
			}, func(data []byte, into reflect.Value) ([]byte, error) {
				if len(data) < 8 {
					return nil, errSpillShort
				}
				into.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(data)))
				return data[8:], nil
			}, true
	case reflect.Bool:
		return func(buf []byte, v reflect.Value) []byte {
				if v.Bool() {
					return append(buf, 1)
				}
				return append(buf, 0)
			}, func(data []byte, into reflect.Value) ([]byte, error) {
				if len(data) < 1 {
					return nil, errSpillShort
				}
				into.SetBool(data[0] != 0)
				return data[1:], nil
			}, true
	case reflect.String:
		return func(buf []byte, v reflect.Value) []byte {
				s := v.String()
				buf = binary.AppendUvarint(buf, uint64(len(s)))
				return append(buf, s...)
			}, func(data []byte, into reflect.Value) ([]byte, error) {
				l, n := binary.Uvarint(data)
				if n <= 0 || uint64(len(data)-n) < l {
					return nil, errSpillShort
				}
				into.SetString(string(data[n : n+int(l)]))
				return data[n+int(l):], nil
			}, true
	case reflect.Struct:
		if t.NumField() == 0 {
			return func(buf []byte, v reflect.Value) []byte { return buf },
				func(data []byte, into reflect.Value) ([]byte, error) { return data, nil },
				true
		}
		return nil, nil, false
	case reflect.Array:
		encE, decE, ok := reflectElemCodec(t.Elem())
		if !ok {
			return nil, nil, false
		}
		n := t.Len()
		return func(buf []byte, v reflect.Value) []byte {
				for i := 0; i < n; i++ {
					buf = encE(buf, v.Index(i))
				}
				return buf
			}, func(data []byte, into reflect.Value) ([]byte, error) {
				var err error
				for i := 0; i < n; i++ {
					if data, err = decE(data, into.Index(i)); err != nil {
						return nil, err
					}
				}
				return data, nil
			}, true
	default:
		return nil, nil, false
	}
}

// sliceCodec serializes a slice type as a uvarint element count followed
// by length-prefixed elements. Element encoding is resolved reflectively
// in the same preference order as the top level: the element's own
// BinaryMarshaler/BinaryUnmarshaler methods when it has them (this is
// what makes values like the []posting groups of the similarity join
// wire-able — the element type carries the codec, the unnamed slice
// type cannot), then the reflective scalar codec. The per-element length
// prefix makes decode independent of whether the element encoding is
// self-delimiting.
func sliceCodec[T any](t reflect.Type) (spillCodec[T], bool) {
	elem := t.Elem()
	encE, decE, ok := sliceElemCodec(elem)
	if !ok {
		return spillCodec[T]{}, false
	}
	return spillCodec[T]{
		enc: func(buf []byte, v T) ([]byte, error) {
			rv := reflect.ValueOf(v)
			n := rv.Len()
			buf = binary.AppendUvarint(buf, uint64(n))
			var scratch []byte
			for i := 0; i < n; i++ {
				eb, err := encE(scratch[:0], rv.Index(i))
				if err != nil {
					return nil, err
				}
				scratch = eb
				buf = binary.AppendUvarint(buf, uint64(len(eb)))
				buf = append(buf, eb...)
			}
			return buf, nil
		},
		dec: func(data []byte) (T, error) {
			var v T
			n, m := binary.Uvarint(data)
			if m <= 0 {
				return v, errSpillShort
			}
			data = data[m:]
			// Every element carries at least a 1-byte length prefix, so
			// the count is bounded by the remaining payload — a
			// corrupted count fails here instead of sizing an
			// arbitrarily large allocation (or overflowing int).
			if n > uint64(len(data)) {
				return v, errSpillShort
			}
			rv := reflect.MakeSlice(t, int(n), int(n))
			for i := 0; i < int(n); i++ {
				l, m := binary.Uvarint(data)
				if m <= 0 || uint64(len(data)-m) < l {
					return v, errSpillShort
				}
				if err := decE(data[m:m+int(l)], rv.Index(i)); err != nil {
					return v, err
				}
				data = data[m+int(l):]
			}
			if len(data) != 0 {
				return v, fmt.Errorf("mapreduce: slice decode: %d trailing bytes", len(data))
			}
			reflect.ValueOf(&v).Elem().Set(rv)
			return v, nil
		},
	}, true
}

// sliceElemCodec resolves one slice element's encode/decode, preferring
// the element's marshaling methods over the reflective scalar codec.
func sliceElemCodec(elem reflect.Type) (func([]byte, reflect.Value) ([]byte, error), func([]byte, reflect.Value) error, bool) {
	marshaler := reflect.TypeFor[encoding.BinaryMarshaler]()
	unmarshaler := reflect.TypeFor[encoding.BinaryUnmarshaler]()
	if elem.Implements(marshaler) && reflect.PointerTo(elem).Implements(unmarshaler) {
		return func(buf []byte, v reflect.Value) ([]byte, error) {
				b, err := v.Interface().(encoding.BinaryMarshaler).MarshalBinary()
				if err != nil {
					return nil, err
				}
				return append(buf, b...), nil
			}, func(data []byte, into reflect.Value) error {
				return into.Addr().Interface().(encoding.BinaryUnmarshaler).UnmarshalBinary(data)
			}, true
	}
	encE, decE, ok := reflectElemCodec(elem)
	if !ok {
		return nil, nil, false
	}
	return func(buf []byte, v reflect.Value) ([]byte, error) {
			return encE(buf, v), nil
		}, func(data []byte, into reflect.Value) error {
			rest, err := decE(data, into)
			if err == nil && len(rest) != 0 {
				err = fmt.Errorf("mapreduce: slice element decode: %d trailing bytes", len(rest))
			}
			return err
		}, true
}

// gobCodec is the slow-path fallback: one self-describing gob stream per
// record. Correct for any gob-encodable type, at the cost of repeating
// the type descriptor; performance-sensitive message types should
// implement encoding.BinaryMarshaler instead.
func gobCodec[T any]() spillCodec[T] {
	return spillCodec[T]{
		enc: func(buf []byte, v T) ([]byte, error) {
			var b bytes.Buffer
			if err := gob.NewEncoder(&b).Encode(&v); err != nil {
				return nil, fmt.Errorf("mapreduce: spill gob encode %T: %w", v, err)
			}
			return append(buf, b.Bytes()...), nil
		},
		dec: func(data []byte) (T, error) {
			var v T
			err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v)
			return v, err
		},
	}
}

// spillRecCodec frames (seq, key, value) records for extsort run files
// as a single length-prefixed frame: uvarint frame length, then a
// payload of uvarint seq, uvarint key length, key bytes, value bytes
// (the value's length is whatever remains). One frame means the merge
// decodes a record with a single buffered-reader window — the payload
// is peeked and parsed in place with no per-field read calls and, in
// the common case, no copy at all. The cached key image (spillRec.img)
// is never serialized; Decode recomputes it through img so merged
// records compare on machine words. One codec instance serves one
// sorter — Encode runs only on the sorter's writer goroutine and
// Decode only on the merge reader — so the scratch buffers are safe.
//
// The element dec functions must not retain their input slice: it
// aliases either the reader's internal buffer or a reused scratch.
type spillRecCodec[K comparable, V any] struct {
	key     spillCodec[K]
	val     spillCodec[V]
	img     func(K) uint64
	scratch []byte // payload under construction (Encode)
	frame   []byte // frame length + payload (Encode)
	rbuf    []byte // frame readback when peeking fails (Decode)
	kbuf    []byte
	vbuf    []byte
}

func (c *spillRecCodec[K, V]) Encode(w io.Writer, rec spillRec[K, V]) error {
	var err error
	if c.kbuf, err = c.key.enc(c.kbuf[:0], rec.key); err != nil {
		return err
	}
	if c.vbuf, err = c.val.enc(c.vbuf[:0], rec.val); err != nil {
		return err
	}
	payload := c.scratch[:0]
	payload = binary.AppendUvarint(payload, rec.seq)
	payload = binary.AppendUvarint(payload, uint64(len(c.kbuf)))
	payload = append(payload, c.kbuf...)
	payload = append(payload, c.vbuf...)
	c.scratch = payload
	frame := binary.AppendUvarint(c.frame[:0], uint64(len(payload)))
	frame = append(frame, payload...)
	c.frame = frame
	_, err = w.Write(frame)
	return err
}

func (c *spillRecCodec[K, V]) Decode(r io.Reader) (spillRec[K, V], error) {
	var rec spillRec[K, V]
	br, ok := r.(io.ByteReader)
	if !ok {
		return rec, fmt.Errorf("mapreduce: spill decode: reader lacks io.ByteReader")
	}
	// Fast path: peek the frame-length varint and the whole payload out
	// of the reader's buffer in one window and consume both with a
	// single Discard — frames are small and the run readers buffer
	// 64 KiB, so per record this is two bounds checks and no copy.
	var data []byte
	if bufr, isBuf := r.(*bufio.Reader); isBuf {
		window, _ := bufr.Peek(binary.MaxVarintLen64)
		if len(window) == 0 {
			// Distinguish the clean end of a run from a read error.
			if _, perr := bufr.Peek(1); perr != nil {
				return rec, perr
			}
		}
		n, m := binary.Uvarint(window)
		if m > 0 && m+int(n) <= bufr.Size() {
			full, perr := bufr.Peek(m + int(n))
			if perr != nil {
				return rec, frameErr(perr)
			}
			data = full[m:]
			rec, derr := c.decodeFrame(data)
			bufr.Discard(m + int(n))
			return rec, derr
		}
		// Varint truncated near EOF or oversized frame: fall through.
	}
	n, err := readUvarint(r, br)
	if err != nil {
		// io.EOF before the first byte is the clean end of a run.
		return rec, err
	}
	if uint64(cap(c.rbuf)) < n {
		c.rbuf = make([]byte, n)
	}
	c.rbuf = c.rbuf[:n]
	if _, err = io.ReadFull(r, c.rbuf); err != nil {
		return rec, frameErr(err)
	}
	data = c.rbuf
	return c.decodeFrame(data)
}

// decodeFrame parses one record payload (seq, klen, key, val). The
// input aliases reader-owned or scratch storage; element decoders copy
// anything they keep.
func (c *spillRecCodec[K, V]) decodeFrame(data []byte) (spillRec[K, V], error) {
	var rec spillRec[K, V]
	var err error
	seq, m := binary.Uvarint(data)
	if m <= 0 {
		return rec, errSpillShort
	}
	rec.seq = seq
	data = data[m:]
	klen, m := binary.Uvarint(data)
	if m <= 0 || klen > uint64(len(data)-m) {
		return rec, errSpillShort
	}
	data = data[m:]
	if rec.key, err = c.key.dec(data[:klen]); err != nil {
		return rec, err
	}
	if c.img != nil {
		rec.img = c.img(rec.key)
	}
	rec.val, err = c.val.dec(data[klen:])
	return rec, err
}

// readUvarint reads one unsigned varint. When the reader is a
// *bufio.Reader (the merge's run readers always are) the varint is
// parsed from the reader's peeked window in one shot instead of through
// per-byte ReadByte calls — the per-record decode overhead of the merge
// is mostly varint parsing, so this is worth the type test.
func readUvarint(r io.Reader, br io.ByteReader) (uint64, error) {
	bufr, ok := r.(*bufio.Reader)
	if !ok {
		return binary.ReadUvarint(br)
	}
	window, _ := bufr.Peek(binary.MaxVarintLen64)
	if len(window) == 0 {
		// Distinguish a clean EOF from a read error.
		if _, err := bufr.Peek(1); err != nil {
			return 0, err
		}
		return binary.ReadUvarint(br)
	}
	x, n := binary.Uvarint(window)
	if n <= 0 {
		if len(window) < binary.MaxVarintLen64 {
			// The varint may straddle the window end near EOF; fall
			// back to the byte-wise reader, which reports truncation.
			return binary.ReadUvarint(br)
		}
		return 0, fmt.Errorf("mapreduce: spill decode: varint overflow")
	}
	bufr.Discard(n)
	return x, nil
}

// frameErr normalizes a mid-record EOF to a real error: only a clean
// boundary before a record may report io.EOF upward.
func frameErr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("mapreduce: spill decode: truncated run file")
	}
	return err
}
