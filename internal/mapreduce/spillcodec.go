package mapreduce

import (
	"bufio"
	"bytes"
	"encoding"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"reflect"
	"sync/atomic"

	"repro/internal/extsort"
)

// The spilling shuffle must serialize intermediate keys and values to
// run files. Serialization is resolved once per job from the concrete
// key and value types, in order of preference:
//
//  1. the exact builtin types the repository's jobs use most get
//     reflection-free fast paths (fastCodec) — these are unnamed
//     types, so they can never carry marshaling methods;
//  2. types implementing encoding.BinaryMarshaler (values) and
//     encoding.BinaryUnmarshaler (pointers) use their own methods — the
//     algorithm packages implement these on their message types;
//  3. remaining scalar kinds (all integer widths, floats, bools,
//     strings — named types included), empty structs, and fixed arrays
//     of scalars are encoded reflectively in a compact binary form;
//  4. anything else falls back to encoding/gob, which requires exported
//     fields but handles arbitrary composite types.
//
// The resolved codec is wrapped per record with varint length framing,
// so decode never needs type knowledge to find record boundaries.

// spillCodec encodes one type for the spill files: enc appends the
// encoding of v to buf, dec decodes exactly data.
//
// min8 is the type's minimum encoded width in eighths of a byte (see
// minEnc8 in codecv2.go); the batch decoders use it to bound
// wire-declared counts. stream, when set, returns a fresh paired
// en/decoder holding per-stream state — the gob fallback uses it so a
// column encodes through one persistent gob stream instead of one
// en/decoder (and one type descriptor) per record. A stream codec's
// enc and dec must be paired over one self-contained byte sequence and
// used single-threaded; stateless codecs return themselves.
type spillCodec[T any] struct {
	enc    func(buf []byte, v T) ([]byte, error)
	dec    func(data []byte) (T, error)
	stream func() spillCodec[T]
	min8   int
}

// forStream returns the codec instance to use for one encode or decode
// stream (a v2 column, a spill block).
func (c spillCodec[T]) forStream() spillCodec[T] {
	if c.stream != nil {
		return c.stream()
	}
	return c
}

// resolveSpillCodec builds the codec for type T following the
// resolution order above, and stamps the type's minimum encoded width.
func resolveSpillCodec[T any]() (spillCodec[T], error) {
	c, err := resolveSpillCodecFor[T]()
	if err == nil {
		var zero T
		c.min8 = minEnc8(reflect.TypeOf(zero))
	}
	return c, err
}

func resolveSpillCodecFor[T any]() (spillCodec[T], error) {
	var zero T
	if c, ok := fastCodec[T](); ok {
		return c, nil
	}
	if _, ok := any(zero).(encoding.BinaryMarshaler); ok {
		if _, ok := any(&zero).(encoding.BinaryUnmarshaler); !ok {
			return spillCodec[T]{}, fmt.Errorf("%T implements BinaryMarshaler but *%T lacks BinaryUnmarshaler", zero, zero)
		}
		return spillCodec[T]{
			enc: func(buf []byte, v T) ([]byte, error) {
				b, err := any(v).(encoding.BinaryMarshaler).MarshalBinary()
				if err != nil {
					return nil, err
				}
				return append(buf, b...), nil
			},
			dec: func(data []byte) (T, error) {
				var v T
				err := any(&v).(encoding.BinaryUnmarshaler).UnmarshalBinary(data)
				return v, err
			},
		}, nil
	}
	t := reflect.TypeOf(zero)
	if t != nil {
		if c, ok := reflectCodec[T](t); ok {
			return c, nil
		}
		if t.Kind() == reflect.Slice {
			if c, ok := sliceCodec[T](t); ok {
				return c, nil
			}
		}
	}
	return gobCodec[T](), nil
}

// fastCodec returns a reflection-free codec for the exact intermediate
// types the repository's jobs use most. The typed-closure assertion
// costs nothing per record: when T is the asserted type the closures
// are used directly, with no boxing of keys or values.
func fastCodec[T any]() (spillCodec[T], bool) {
	c := spillCodec[T]{}
	switch any(c.enc).(type) {
	case func([]byte, int32) ([]byte, error):
		c.enc = any(func(buf []byte, v int32) ([]byte, error) {
			return binary.AppendVarint(buf, int64(v)), nil
		}).(func([]byte, T) ([]byte, error))
		c.dec = any(func(data []byte) (int32, error) {
			x, n := binary.Varint(data)
			if n <= 0 || n != len(data) {
				return 0, errSpillShort
			}
			return int32(x), nil
		}).(func([]byte) (T, error))
	case func([]byte, int) ([]byte, error):
		c.enc = any(func(buf []byte, v int) ([]byte, error) {
			return binary.AppendVarint(buf, int64(v)), nil
		}).(func([]byte, T) ([]byte, error))
		c.dec = any(func(data []byte) (int, error) {
			x, n := binary.Varint(data)
			if n <= 0 || n != len(data) {
				return 0, errSpillShort
			}
			return int(x), nil
		}).(func([]byte) (T, error))
	case func([]byte, int64) ([]byte, error):
		c.enc = any(func(buf []byte, v int64) ([]byte, error) {
			return binary.AppendVarint(buf, v), nil
		}).(func([]byte, T) ([]byte, error))
		c.dec = any(func(data []byte) (int64, error) {
			x, n := binary.Varint(data)
			if n <= 0 || n != len(data) {
				return 0, errSpillShort
			}
			return x, nil
		}).(func([]byte) (T, error))
	case func([]byte, float64) ([]byte, error):
		c.enc = any(func(buf []byte, v float64) ([]byte, error) {
			return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v)), nil
		}).(func([]byte, T) ([]byte, error))
		c.dec = any(func(data []byte) (float64, error) {
			if len(data) != 8 {
				return 0, errSpillShort
			}
			return math.Float64frombits(binary.LittleEndian.Uint64(data)), nil
		}).(func([]byte) (T, error))
	case func([]byte, bool) ([]byte, error):
		c.enc = any(func(buf []byte, v bool) ([]byte, error) {
			if v {
				return append(buf, 1), nil
			}
			return append(buf, 0), nil
		}).(func([]byte, T) ([]byte, error))
		c.dec = any(func(data []byte) (bool, error) {
			if len(data) != 1 {
				return false, errSpillShort
			}
			return data[0] != 0, nil
		}).(func([]byte) (T, error))
	case func([]byte, string) ([]byte, error):
		c.enc = any(func(buf []byte, v string) ([]byte, error) {
			return append(buf, v...), nil
		}).(func([]byte, T) ([]byte, error))
		c.dec = any(func(data []byte) (string, error) {
			return string(data), nil
		}).(func([]byte) (T, error))
	case func([]byte, [2]int32) ([]byte, error):
		c.enc = any(func(buf []byte, v [2]int32) ([]byte, error) {
			buf = binary.AppendVarint(buf, int64(v[0]))
			return binary.AppendVarint(buf, int64(v[1])), nil
		}).(func([]byte, T) ([]byte, error))
		c.dec = any(func(data []byte) ([2]int32, error) {
			a, n := binary.Varint(data)
			if n <= 0 {
				return [2]int32{}, errSpillShort
			}
			b, m := binary.Varint(data[n:])
			if m <= 0 || n+m != len(data) {
				return [2]int32{}, errSpillShort
			}
			return [2]int32{int32(a), int32(b)}, nil
		}).(func([]byte) (T, error))
	case func([]byte, struct{}) ([]byte, error):
		c.enc = any(func(buf []byte, v struct{}) ([]byte, error) {
			return buf, nil
		}).(func([]byte, T) ([]byte, error))
		c.dec = any(func(data []byte) (struct{}, error) {
			return struct{}{}, nil
		}).(func([]byte) (T, error))
	default:
		return c, false
	}
	return c, true
}

// reflectCodec covers scalar kinds, empty structs, and fixed arrays of
// scalars, including named types such as graph.NodeID or vector.TermID.
func reflectCodec[T any](t reflect.Type) (spillCodec[T], bool) {
	encElem, decElem, ok := reflectElemCodec(t)
	if !ok {
		return spillCodec[T]{}, false
	}
	return spillCodec[T]{
		enc: func(buf []byte, v T) ([]byte, error) {
			return encElem(buf, reflect.ValueOf(v)), nil
		},
		dec: func(data []byte) (T, error) {
			var v T
			rv := reflect.ValueOf(&v).Elem()
			rest, err := decElem(data, rv)
			if err == nil && len(rest) != 0 {
				err = fmt.Errorf("mapreduce: spill decode: %d trailing bytes", len(rest))
			}
			return v, err
		},
	}, true
}

type elemEnc func(buf []byte, v reflect.Value) []byte
type elemDec func(data []byte, into reflect.Value) (rest []byte, err error)

var errSpillShort = fmt.Errorf("mapreduce: spill decode: truncated record")

// reflectElemCodec returns append/decode functions for one supported
// reflect kind, or ok=false for unsupported kinds.
func reflectElemCodec(t reflect.Type) (elemEnc, elemDec, bool) {
	switch t.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return func(buf []byte, v reflect.Value) []byte {
				return binary.AppendVarint(buf, v.Int())
			}, func(data []byte, into reflect.Value) ([]byte, error) {
				x, n := binary.Varint(data)
				if n <= 0 {
					return nil, errSpillShort
				}
				into.SetInt(x)
				return data[n:], nil
			}, true
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return func(buf []byte, v reflect.Value) []byte {
				return binary.AppendUvarint(buf, v.Uint())
			}, func(data []byte, into reflect.Value) ([]byte, error) {
				x, n := binary.Uvarint(data)
				if n <= 0 {
					return nil, errSpillShort
				}
				into.SetUint(x)
				return data[n:], nil
			}, true
	case reflect.Float32, reflect.Float64:
		return func(buf []byte, v reflect.Value) []byte {
				return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
			}, func(data []byte, into reflect.Value) ([]byte, error) {
				if len(data) < 8 {
					return nil, errSpillShort
				}
				into.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(data)))
				return data[8:], nil
			}, true
	case reflect.Bool:
		return func(buf []byte, v reflect.Value) []byte {
				if v.Bool() {
					return append(buf, 1)
				}
				return append(buf, 0)
			}, func(data []byte, into reflect.Value) ([]byte, error) {
				if len(data) < 1 {
					return nil, errSpillShort
				}
				into.SetBool(data[0] != 0)
				return data[1:], nil
			}, true
	case reflect.String:
		return func(buf []byte, v reflect.Value) []byte {
				s := v.String()
				buf = binary.AppendUvarint(buf, uint64(len(s)))
				return append(buf, s...)
			}, func(data []byte, into reflect.Value) ([]byte, error) {
				l, n := binary.Uvarint(data)
				if n <= 0 || uint64(len(data)-n) < l {
					return nil, errSpillShort
				}
				into.SetString(string(data[n : n+int(l)]))
				return data[n+int(l):], nil
			}, true
	case reflect.Struct:
		if t.NumField() == 0 {
			return func(buf []byte, v reflect.Value) []byte { return buf },
				func(data []byte, into reflect.Value) ([]byte, error) { return data, nil },
				true
		}
		return nil, nil, false
	case reflect.Array:
		encE, decE, ok := reflectElemCodec(t.Elem())
		if !ok {
			return nil, nil, false
		}
		n := t.Len()
		return func(buf []byte, v reflect.Value) []byte {
				for i := 0; i < n; i++ {
					buf = encE(buf, v.Index(i))
				}
				return buf
			}, func(data []byte, into reflect.Value) ([]byte, error) {
				var err error
				for i := 0; i < n; i++ {
					if data, err = decE(data, into.Index(i)); err != nil {
						return nil, err
					}
				}
				return data, nil
			}, true
	default:
		return nil, nil, false
	}
}

// sliceCodec serializes a slice type as a uvarint element count followed
// by length-prefixed elements. Element encoding is resolved reflectively
// in the same preference order as the top level: the element's own
// BinaryMarshaler/BinaryUnmarshaler methods when it has them (this is
// what makes values like the []posting groups of the similarity join
// wire-able — the element type carries the codec, the unnamed slice
// type cannot), then the reflective scalar codec. The per-element length
// prefix makes decode independent of whether the element encoding is
// self-delimiting.
func sliceCodec[T any](t reflect.Type) (spillCodec[T], bool) {
	elem := t.Elem()
	encE, decE, ok := sliceElemCodec(elem)
	if !ok {
		return spillCodec[T]{}, false
	}
	return spillCodec[T]{
		enc: func(buf []byte, v T) ([]byte, error) {
			rv := reflect.ValueOf(v)
			n := rv.Len()
			buf = binary.AppendUvarint(buf, uint64(n))
			var scratch []byte
			for i := 0; i < n; i++ {
				eb, err := encE(scratch[:0], rv.Index(i))
				if err != nil {
					return nil, err
				}
				scratch = eb
				buf = binary.AppendUvarint(buf, uint64(len(eb)))
				buf = append(buf, eb...)
			}
			return buf, nil
		},
		dec: func(data []byte) (T, error) {
			var v T
			n, m := binary.Uvarint(data)
			if m <= 0 {
				return v, errSpillShort
			}
			data = data[m:]
			// Every element carries at least a 1-byte length prefix, so
			// the count is bounded by the remaining payload — a
			// corrupted count fails here instead of sizing an
			// arbitrarily large allocation (or overflowing int).
			if n > uint64(len(data)) {
				return v, errSpillShort
			}
			rv := reflect.MakeSlice(t, int(n), int(n))
			for i := 0; i < int(n); i++ {
				l, m := binary.Uvarint(data)
				if m <= 0 || uint64(len(data)-m) < l {
					return v, errSpillShort
				}
				if err := decE(data[m:m+int(l)], rv.Index(i)); err != nil {
					return v, err
				}
				data = data[m+int(l):]
			}
			if len(data) != 0 {
				return v, fmt.Errorf("mapreduce: slice decode: %d trailing bytes", len(data))
			}
			reflect.ValueOf(&v).Elem().Set(rv)
			return v, nil
		},
	}, true
}

// sliceElemCodec resolves one slice element's encode/decode, preferring
// the element's marshaling methods over the reflective scalar codec.
func sliceElemCodec(elem reflect.Type) (func([]byte, reflect.Value) ([]byte, error), func([]byte, reflect.Value) error, bool) {
	marshaler := reflect.TypeFor[encoding.BinaryMarshaler]()
	unmarshaler := reflect.TypeFor[encoding.BinaryUnmarshaler]()
	if elem.Implements(marshaler) && reflect.PointerTo(elem).Implements(unmarshaler) {
		return func(buf []byte, v reflect.Value) ([]byte, error) {
				b, err := v.Interface().(encoding.BinaryMarshaler).MarshalBinary()
				if err != nil {
					return nil, err
				}
				return append(buf, b...), nil
			}, func(data []byte, into reflect.Value) error {
				return into.Addr().Interface().(encoding.BinaryUnmarshaler).UnmarshalBinary(data)
			}, true
	}
	encE, decE, ok := reflectElemCodec(elem)
	if !ok {
		return nil, nil, false
	}
	return func(buf []byte, v reflect.Value) ([]byte, error) {
			return encE(buf, v), nil
		}, func(data []byte, into reflect.Value) error {
			rest, err := decE(data, into)
			if err == nil && len(rest) != 0 {
				err = fmt.Errorf("mapreduce: slice element decode: %d trailing bytes", len(rest))
			}
			return err
		}, true
}

// gobCodec is the slow-path fallback. The record-at-a-time enc/dec pair
// builds a self-describing gob stream per record — correct for any
// gob-encodable type, but it re-sends the type descriptor (and
// allocates an en/decoder) every record, so it exists only for the v1
// row format, whose records must decode independently. The stream
// factory is what the batch paths use: one persistent gob en/decoder
// pair per column, sending the type descriptor once.
func gobCodec[T any]() spillCodec[T] {
	c := spillCodec[T]{
		enc: func(buf []byte, v T) ([]byte, error) {
			var b bytes.Buffer
			if err := gob.NewEncoder(&b).Encode(&v); err != nil {
				return nil, fmt.Errorf("mapreduce: spill gob encode %T: %w", v, err)
			}
			return append(buf, b.Bytes()...), nil
		},
		dec: func(data []byte) (T, error) {
			var v T
			err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v)
			return v, err
		},
	}
	c.stream = func() spillCodec[T] {
		var b bytes.Buffer
		genc := gob.NewEncoder(&b)
		feed := &gobFeed{}
		gdec := gob.NewDecoder(feed)
		return spillCodec[T]{
			enc: func(buf []byte, v T) ([]byte, error) {
				b.Reset()
				if err := genc.Encode(&v); err != nil {
					return nil, fmt.Errorf("mapreduce: spill gob encode %T: %w", v, err)
				}
				return append(buf, b.Bytes()...), nil
			},
			dec: func(data []byte) (T, error) {
				var v T
				feed.data = data
				err := gdec.Decode(&v)
				return v, err
			},
		}
	}
	return c
}

// gobFeed lets one persistent gob.Decoder consume a sequence of
// length-delimited chunks: each dec call points data at the next
// chunk. It implements io.ByteReader so gob does not wrap it in bufio
// (which would read ahead past the chunk).
type gobFeed struct{ data []byte }

func (g *gobFeed) Read(p []byte) (int, error) {
	if len(g.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, g.data)
	g.data = g.data[n:]
	return n, nil
}

func (g *gobFeed) ReadByte() (byte, error) {
	if len(g.data) == 0 {
		return 0, io.EOF
	}
	b := g.data[0]
	g.data = g.data[1:]
	return b, nil
}

// spillRecCodec frames (seq, key, value) records for extsort run files
// as a single length-prefixed frame: uvarint frame length, then a
// payload of uvarint seq, uvarint key length, key bytes, value bytes
// (the value's length is whatever remains). One frame means the merge
// decodes a record with a single buffered-reader window — the payload
// is peeked and parsed in place with no per-field read calls and, in
// the common case, no copy at all. The cached key image (spillRec.img)
// is never serialized; Decode recomputes it through img so merged
// records compare on machine words. One codec instance serves one
// sorter — Encode runs only on the sorter's writer goroutine and
// Decode only on the merge reader — so the scratch buffers are safe.
//
// The element dec functions must not retain their input slice: it
// aliases either the reader's internal buffer or a reused scratch.
type spillRecCodec[K comparable, V any] struct {
	key     spillCodec[K]
	val     spillCodec[V]
	img     func(K) uint64
	scratch []byte // payload under construction (Encode)
	frame   []byte // frame length + payload (Encode)
	rbuf    []byte // frame readback when peeking fails (Decode)
	kbuf    []byte
	vbuf    []byte
}

func (c *spillRecCodec[K, V]) Encode(w io.Writer, rec spillRec[K, V]) error {
	var err error
	if c.kbuf, err = c.key.enc(c.kbuf[:0], rec.key); err != nil {
		return err
	}
	if c.vbuf, err = c.val.enc(c.vbuf[:0], rec.val); err != nil {
		return err
	}
	payload := c.scratch[:0]
	payload = binary.AppendUvarint(payload, rec.seq)
	payload = binary.AppendUvarint(payload, uint64(len(c.kbuf)))
	payload = append(payload, c.kbuf...)
	payload = append(payload, c.vbuf...)
	c.scratch = payload
	frame := binary.AppendUvarint(c.frame[:0], uint64(len(payload)))
	frame = append(frame, payload...)
	c.frame = frame
	_, err = w.Write(frame)
	return err
}

func (c *spillRecCodec[K, V]) Decode(r io.Reader) (spillRec[K, V], error) {
	var rec spillRec[K, V]
	br, ok := r.(io.ByteReader)
	if !ok {
		return rec, fmt.Errorf("mapreduce: spill decode: reader lacks io.ByteReader")
	}
	// Fast path: peek the frame-length varint and the whole payload out
	// of the reader's buffer in one window and consume both with a
	// single Discard — frames are small and the run readers buffer
	// 64 KiB, so per record this is two bounds checks and no copy.
	var data []byte
	if bufr, isBuf := r.(*bufio.Reader); isBuf {
		window, _ := bufr.Peek(binary.MaxVarintLen64)
		if len(window) == 0 {
			// Distinguish the clean end of a run from a read error.
			if _, perr := bufr.Peek(1); perr != nil {
				return rec, perr
			}
		}
		n, m := binary.Uvarint(window)
		if m > 0 && m+int(n) <= bufr.Size() {
			full, perr := bufr.Peek(m + int(n))
			if perr != nil {
				return rec, frameErr(perr)
			}
			data = full[m:]
			rec, derr := c.decodeFrame(data)
			bufr.Discard(m + int(n))
			return rec, derr
		}
		// Varint truncated near EOF or oversized frame: fall through.
	}
	n, err := readUvarint(r, br)
	if err != nil {
		// io.EOF before the first byte is the clean end of a run.
		return rec, err
	}
	if uint64(cap(c.rbuf)) < n {
		c.rbuf = make([]byte, n)
	}
	c.rbuf = c.rbuf[:n]
	if _, err = io.ReadFull(r, c.rbuf); err != nil {
		return rec, frameErr(err)
	}
	data = c.rbuf
	return c.decodeFrame(data)
}

// decodeFrame parses one record payload (seq, klen, key, val). The
// input aliases reader-owned or scratch storage; element decoders copy
// anything they keep.
func (c *spillRecCodec[K, V]) decodeFrame(data []byte) (spillRec[K, V], error) {
	var rec spillRec[K, V]
	var err error
	seq, m := binary.Uvarint(data)
	if m <= 0 {
		return rec, errSpillShort
	}
	rec.seq = seq
	data = data[m:]
	klen, m := binary.Uvarint(data)
	if m <= 0 || klen > uint64(len(data)-m) {
		return rec, errSpillShort
	}
	data = data[m:]
	if rec.key, err = c.key.dec(data[:klen]); err != nil {
		return rec, err
	}
	if c.img != nil {
		rec.img = c.img(rec.key)
	}
	rec.val, err = c.val.dec(data[klen:])
	return rec, err
}

// readUvarint reads one unsigned varint. When the reader is a
// *bufio.Reader (the merge's run readers always are) the varint is
// parsed from the reader's peeked window in one shot instead of through
// per-byte ReadByte calls — the per-record decode overhead of the merge
// is mostly varint parsing, so this is worth the type test.
func readUvarint(r io.Reader, br io.ByteReader) (uint64, error) {
	bufr, ok := r.(*bufio.Reader)
	if !ok {
		return binary.ReadUvarint(br)
	}
	window, _ := bufr.Peek(binary.MaxVarintLen64)
	if len(window) == 0 {
		// Distinguish a clean EOF from a read error.
		if _, err := bufr.Peek(1); err != nil {
			return 0, err
		}
		return binary.ReadUvarint(br)
	}
	x, n := binary.Uvarint(window)
	if n <= 0 {
		if len(window) < binary.MaxVarintLen64 {
			// The varint may straddle the window end near EOF; fall
			// back to the byte-wise reader, which reports truncation.
			return binary.ReadUvarint(br)
		}
		return 0, fmt.Errorf("mapreduce: spill decode: varint overflow")
	}
	bufr.Discard(n)
	return x, nil
}

// frameErr normalizes a mid-record EOF to a real error: only a clean
// boundary before a record may report io.EOF upward.
func frameErr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("mapreduce: spill decode: truncated run file")
	}
	return err
}

// spillBlockRecs is the records-per-block granularity of the v2 spill
// run format: large enough that column and compression overheads
// amortize, small enough that a block stays well inside the run
// readers' 64 KiB buffers for typical records.
const spillBlockRecs = 512

// spillBlockCodec is the codec-v2 run format for extsort: records are
// gathered into blocks of up to spillBlockRecs and written as
//
//	frame   := uvarint payloadLen, payload
//	payload := marker byte, uvarint n, body
//	body    := seq column, key column, value column     (marker 0x02)
//	        |  uvarint rawLen, flate(columns)           (marker 0x03)
//
// The seq column delta-encodes the (split<<40 | arrival) sequence
// numbers — records reach a run sorted by key, so within a key group
// the seqs ascend and the deltas collapse. Key and value columns use
// the same pairColCodec lanes as the wire blobs, but with per-run
// dictionaries: one process writes and reads a run strictly in order,
// so unlike wire frames the dictionary may span blocks, interning each
// distinct string once per run. The cached key image is never
// serialized; decode recomputes it through img.
//
// One codec instance serves a whole job (all sorters share it): the
// instance itself is stateless, per-run state lives in the run
// en/decoders, and saved accrues the bytes block compression avoided
// across every run.
type spillBlockCodec[K comparable, V any] struct {
	key      spillCodec[K]
	val      spillCodec[V]
	img      func(K) uint64
	compress bool
	saved    *atomic.Int64
}

// Encode and Decode satisfy extsort.Codec, but the sorter always takes
// the StreamCodec path for this type; the record-at-a-time interface
// cannot express block framing.
func (c *spillBlockCodec[K, V]) Encode(io.Writer, spillRec[K, V]) error {
	return fmt.Errorf("mapreduce: spillBlockCodec requires the stream run interface")
}

func (c *spillBlockCodec[K, V]) Decode(io.Reader) (spillRec[K, V], error) {
	var rec spillRec[K, V]
	return rec, fmt.Errorf("mapreduce: spillBlockCodec requires the stream run interface")
}

// NewRunEncoder and NewRunDecoder recycle en/decoders through pools on
// the process-cached column codec. Their byte buffers and pair/seq
// staging grow to steady-state during the first runs; without
// recycling every spill re-pays that growth (a sorter under a 10x
// memory deficit writes dozens of runs per job). Encoders re-enter the
// pool at Flush, decoders at the io.EOF that ends their run — the
// points where extsort provably drops its reference (a merge source is
// marked done at EOF and never decoded again). The per-job codec
// handle c is re-stamped on every Get and cleared on release, so a
// pooled en/decoder never pins a finished job's state.
func (c *spillBlockCodec[K, V]) NewRunEncoder() extsort.RunEncoder[spillRec[K, V]] {
	pc := pairColsFor[K, V](c.key, c.val)
	if e := pc.getEnc(); e != nil {
		e.c = c
		return e
	}
	e := &spillRunEnc[K, V]{
		c:     c,
		pc:    pc,
		pairs: make([]Pair[K, V], 0, spillBlockRecs),
		seqs:  make([]uint64, 0, spillBlockRecs),
	}
	if pc.kDict {
		e.kd = newPairDict()
	}
	if pc.vDict {
		e.vd = newPairDict()
	}
	return e
}

func (c *spillBlockCodec[K, V]) NewRunDecoder() extsort.RunDecoder[spillRec[K, V]] {
	pc := pairColsFor[K, V](c.key, c.val)
	if d := pc.getDec(); d != nil {
		d.c = c
		return d
	}
	d := &spillRunDec[K, V]{
		c:     c,
		pc:    pc,
		pairs: make([]Pair[K, V], spillBlockRecs),
		seqs:  make([]uint64, spillBlockRecs),
	}
	if pc.kDict {
		d.kd = newPairDict()
	}
	if pc.vDict {
		d.vd = newPairDict()
	}
	return d
}

// spillRunEnc buffers one run's records into blocks. It runs only on
// the sorter's writer goroutine.
type spillRunEnc[K comparable, V any] struct {
	c      *spillBlockCodec[K, V]
	pc     *pairColCodec[K, V]
	kd, vd *pairDict
	pairs  []Pair[K, V]
	seqs   []uint64
	raw    []byte // uncompressed block image
	cbuf   []byte // flate image scratch
	frame  []byte // length-prefixed frame under construction
}

func (e *spillRunEnc[K, V]) Encode(w io.Writer, rec spillRec[K, V]) error {
	e.pairs = append(e.pairs, Pair[K, V]{Key: rec.key, Value: rec.val})
	e.seqs = append(e.seqs, rec.seq)
	if len(e.pairs) < spillBlockRecs {
		return nil
	}
	return e.flushBlock(w)
}

func (e *spillRunEnc[K, V]) Flush(w io.Writer) error {
	if len(e.pairs) > 0 {
		if err := e.flushBlock(w); err != nil {
			return err
		}
	}
	// The run is sealed and the sorter drops its reference after Flush:
	// recycle the encoder. Dictionaries are per-run state and must
	// forget their entries; the staging slices are cleared so a pooled
	// encoder cannot pin the previous run's keys and values; the byte
	// buffers keep their grown capacity — that is the point.
	if e.kd != nil {
		e.kd.reset()
	}
	if e.vd != nil {
		e.vd.reset()
	}
	clear(e.pairs[:cap(e.pairs)])
	e.pairs = e.pairs[:0]
	e.seqs = e.seqs[:0]
	e.c = nil
	e.pc.putEnc(e)
	return nil
}

func (e *spillRunEnc[K, V]) flushBlock(w io.Writer) error {
	raw := e.raw[:0]
	var prev uint64
	for _, s := range e.seqs {
		raw = binary.AppendVarint(raw, int64(s-prev))
		prev = s
	}
	raw, err := e.pc.encK(raw, e.pairs, e.kd)
	if err != nil {
		return err
	}
	raw, err = e.pc.encV(raw, e.pairs, e.vd)
	if err != nil {
		return err
	}
	e.raw = raw

	marker := pairBlobV2
	body := raw
	if e.c.compress && len(raw) >= compressMinLen {
		cbuf := binary.AppendUvarint(e.cbuf[:0], uint64(len(raw)))
		if cbuf, err = deflateBlock(cbuf, raw); err != nil {
			return err
		}
		e.cbuf = cbuf
		if len(cbuf) < len(raw) {
			marker = pairBlobV2Flate
			body = cbuf
			if e.c.saved != nil {
				e.c.saved.Add(int64(len(raw) - len(cbuf)))
			}
		}
	}

	var hdr [2 + binary.MaxVarintLen64]byte
	hdr[0] = marker
	hn := 1 + binary.PutUvarint(hdr[1:], uint64(len(e.pairs)))
	frame := binary.AppendUvarint(e.frame[:0], uint64(hn+len(body)))
	frame = append(frame, hdr[:hn]...)
	frame = append(frame, body...)
	e.frame = frame
	e.pairs = e.pairs[:0]
	e.seqs = e.seqs[:0]
	_, err = w.Write(frame)
	return err
}

// spillRunDec decodes one run's blocks, serving records by index. It
// runs only on the goroutine merging that run.
type spillRunDec[K comparable, V any] struct {
	c       *spillBlockCodec[K, V]
	pc      *pairColCodec[K, V]
	kd, vd  *pairDict
	pairs   []Pair[K, V]
	seqs    []uint64
	rbuf    []byte // frame readback
	scratch []byte // inflated block image
	pos, n  int
}

func (d *spillRunDec[K, V]) Decode(r io.Reader) (spillRec[K, V], error) {
	var rec spillRec[K, V]
	if d.pos >= d.n {
		if err := d.readBlock(r); err != nil {
			if err == io.EOF {
				// Clean end of the run: the merge marks this source
				// done and never decodes it again, so the decoder can
				// be recycled for the next run.
				d.release()
			}
			return rec, err
		}
	}
	p := d.pairs[d.pos]
	rec.seq = d.seqs[d.pos]
	rec.key = p.Key
	rec.val = p.Value
	if d.c.img != nil {
		rec.img = d.c.img(rec.key)
	}
	d.pos++
	return rec, nil
}

// release resets the per-run state and returns the decoder to its
// codec's pool; the block slices are cleared so a pooled decoder cannot
// pin the previous run's keys and values, while rbuf and scratch keep
// their grown capacity.
func (d *spillRunDec[K, V]) release() {
	if d.kd != nil {
		d.kd.reset()
	}
	if d.vd != nil {
		d.vd.reset()
	}
	clear(d.pairs[:cap(d.pairs)])
	d.pos, d.n = 0, 0
	d.c = nil
	d.pc.putDec(d)
}

func (d *spillRunDec[K, V]) readBlock(r io.Reader) error {
	br, ok := r.(io.ByteReader)
	if !ok {
		return fmt.Errorf("mapreduce: spill decode: reader lacks io.ByteReader")
	}
	frameLen, err := readUvarint(r, br)
	if err != nil {
		// io.EOF at a block boundary is the clean end of the run.
		return err
	}
	if frameLen < 2 || frameLen > maxPairCount {
		return fmt.Errorf("mapreduce: spill decode: %d-byte block frame", frameLen)
	}
	if uint64(cap(d.rbuf)) < frameLen {
		// Headroom: block frames drift a few bytes in size, and an
		// exact-fit buffer would realloc on every slightly-larger one.
		d.rbuf = make([]byte, frameLen+frameLen/4)
	}
	d.rbuf = d.rbuf[:frameLen]
	if _, err = io.ReadFull(r, d.rbuf); err != nil {
		return frameErr(err)
	}
	data := d.rbuf
	marker := data[0]
	n, m := binary.Uvarint(data[1:])
	if m <= 0 || n == 0 || n > spillBlockRecs {
		return fmt.Errorf("mapreduce: spill decode: block of %d records", n)
	}
	data = data[1+m:]
	if marker == pairBlobV2Flate {
		rawLen, m := binary.Uvarint(data)
		if m <= 0 || rawLen > maxPairCount {
			return errSpillShort
		}
		if uint64(cap(d.scratch)) < rawLen {
			d.scratch = make([]byte, rawLen+rawLen/4)
		}
		d.scratch = d.scratch[:rawLen]
		if err := inflateBlock(d.scratch, data[m:]); err != nil {
			return err
		}
		data = d.scratch
	} else if marker != pairBlobV2 {
		return fmt.Errorf("mapreduce: spill decode: unknown block marker 0x%02x", marker)
	}

	if cap(d.pairs) < int(n) {
		d.pairs = make([]Pair[K, V], spillBlockRecs)
		d.seqs = make([]uint64, spillBlockRecs)
	}
	d.pairs = d.pairs[:n]
	d.seqs = d.seqs[:n]
	var prev uint64
	for i := range d.seqs {
		delta, m := binary.Varint(data)
		if m <= 0 {
			return errSpillShort
		}
		data = data[m:]
		prev += uint64(delta)
		d.seqs[i] = prev
	}
	if data, err = d.pc.decK(data, d.pairs, d.kd); err != nil {
		return err
	}
	if _, err = d.pc.decV(data, d.pairs, d.vd); err != nil {
		return err
	}
	d.pos, d.n = 0, int(n)
	return nil
}
