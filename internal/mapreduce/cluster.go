package mapreduce

import (
	"fmt"
	"strings"
)

// ClusterModel estimates the wall-clock time a real MapReduce cluster
// would spend on a job, from the job's record counts. The engine in this
// package runs in memory, so its own wall-clock says nothing about a
// Hadoop deployment; the model restores the quantity the paper's
// efficiency discussion is really about. Its shape follows the standard
// cost model for Hadoop-era clusters:
//
//	time(job) = RoundOverhead                              (scheduling)
//	          + mapRecords    / (Workers · MapThroughput)
//	          + shuffleRecords / ShuffleThroughput          (network)
//	          + reduceRecords / (Workers · ReduceThroughput)
//
// The per-job constant RoundOverhead dominates iterative algorithms with
// many small rounds — exactly why the paper counts MapReduce iterations
// and why StackMR's poly-logarithmic round bound matters. The defaults
// approximate a small 2010-era cluster; they are knobs, not truths.
type ClusterModel struct {
	// Workers is the number of parallel task slots.
	Workers int
	// RoundOverhead is the fixed per-job cost in seconds (job setup,
	// scheduling, barrier).
	RoundOverhead float64
	// MapThroughput and ReduceThroughput are records per second per
	// worker.
	MapThroughput    float64
	ReduceThroughput float64
	// ShuffleThroughput is records per second across the network
	// fabric (shared, not per worker).
	ShuffleThroughput float64
}

// DefaultCluster models a modest cluster: 50 workers, 15 s of per-job
// overhead (Hadoop 0.20-era JobTracker scheduling), 200k records/s per
// worker for map and reduce, 2M records/s of shuffle fabric.
func DefaultCluster() ClusterModel {
	return ClusterModel{
		Workers:           50,
		RoundOverhead:     15,
		MapThroughput:     200_000,
		ReduceThroughput:  200_000,
		ShuffleThroughput: 2_000_000,
	}
}

// Validate reports the first nonsensical parameter.
func (m ClusterModel) Validate() error {
	switch {
	case m.Workers < 1:
		return fmt.Errorf("mapreduce: cluster model needs >= 1 worker")
	case m.RoundOverhead < 0:
		return fmt.Errorf("mapreduce: negative round overhead")
	case m.MapThroughput <= 0 || m.ReduceThroughput <= 0 || m.ShuffleThroughput <= 0:
		return fmt.Errorf("mapreduce: throughputs must be positive")
	}
	return nil
}

// EstimateJob returns the simulated seconds for one job.
func (m ClusterModel) EstimateJob(s *Stats) float64 {
	if s == nil {
		return m.RoundOverhead
	}
	t := m.RoundOverhead
	t += float64(s.MapInputRecords) / (float64(m.Workers) * m.MapThroughput)
	t += float64(s.ShuffleRecords) / m.ShuffleThroughput
	t += float64(s.ShuffleRecords) / (float64(m.Workers) * m.ReduceThroughput)
	return t
}

// EstimateTrace returns the simulated seconds for an iterative
// computation from its per-round statistics (Driver.Trace).
func (m ClusterModel) EstimateTrace(trace []Stats) float64 {
	var total float64
	for i := range trace {
		total += m.EstimateJob(&trace[i])
	}
	return total
}

// Describe renders the model parameters on one line.
func (m ClusterModel) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d workers, %.0fs/job overhead, %.0fk rec/s/worker map, %.1fM rec/s shuffle",
		m.Workers, m.RoundOverhead, m.MapThroughput/1000, m.ShuffleThroughput/1e6)
	return b.String()
}
