package mapreduce

import (
	"context"
	"testing"
)

// benchShuffleJob is a shuffle-dominated job (the communication pattern
// of the matching algorithms): every input record fans out to 16 keys.
func benchShuffleJob(b *testing.B, cfg Config, n int) {
	b.Helper()
	input := make([]Pair[int32, int32], n)
	for i := range input {
		input[i] = P(int32(i), int32(i))
	}
	mapFn := func(k, v int32, out Emitter[int32, int32]) error {
		for f := int32(0); f < 16; f++ {
			out.Emit((k*31+f)%4096, v)
		}
		return nil
	}
	redFn := func(k int32, vs []int32, out Emitter[int32, int]) error {
		out.Emit(k, len(vs))
		return nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(context.Background(), cfg, input, mapFn, redFn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShuffleBackendMemory is the in-memory baseline for the
// backend comparison (same workload as BenchmarkShuffleBackendSpill*).
func BenchmarkShuffleBackendMemory(b *testing.B) {
	benchShuffleJob(b, Config{Mappers: 4, Reducers: 4}, 20000)
}

// BenchmarkShuffleBackendSpillFits runs the spilling backend with a
// budget large enough that nothing reaches disk: the cost over the
// memory backend is the (key, seq) sort and the per-record bookkeeping.
func BenchmarkShuffleBackendSpillFits(b *testing.B) {
	benchShuffleJob(b, Config{
		Mappers: 4, Reducers: 4,
		Shuffle: ShuffleConfig{Backend: ShuffleSpill, MemoryBudget: 1 << 20},
	}, 20000)
}

// BenchmarkShuffleBackendSpill10x forces the external-memory path: the
// budget is a tenth of the shuffle volume, so most records are encoded,
// spilled to sorted runs, and merge-streamed back.
func BenchmarkShuffleBackendSpill10x(b *testing.B) {
	benchShuffleJob(b, Config{
		Mappers: 4, Reducers: 4,
		Shuffle: ShuffleConfig{Backend: ShuffleSpill, MemoryBudget: 32000},
	}, 20000)
}

// BenchmarkShuffleBackendSpill10xCompressed is the same external-memory
// workload with flate block compression on the spill runs: it prices
// the compression CPU against the disk bytes it removes.
func BenchmarkShuffleBackendSpill10xCompressed(b *testing.B) {
	benchShuffleJob(b, Config{
		Mappers: 4, Reducers: 4,
		Shuffle:          ShuffleConfig{Backend: ShuffleSpill, MemoryBudget: 32000},
		SpillCompression: true,
	}, 20000)
}
