package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// wordCount runs the canonical MapReduce example over the given text with
// the given configuration.
func wordCount(t *testing.T, cfg Config, text string) map[string]int {
	t.Helper()
	input := []Pair[int, string]{}
	for i, line := range strings.Split(text, "\n") {
		input = append(input, P(i, line))
	}
	out, stats, err := Run(context.Background(), cfg, input,
		func(_ int, line string, out Emitter[string, int]) error {
			for _, w := range strings.Fields(line) {
				out.Emit(w, 1)
			}
			return nil
		},
		func(word string, counts []int, out Emitter[string, int]) error {
			total := 0
			for _, c := range counts {
				total += c
			}
			out.Emit(word, total)
			return nil
		})
	if err != nil {
		t.Fatalf("wordcount failed: %v", err)
	}
	if stats.MapInputRecords != int64(len(input)) {
		t.Errorf("MapInputRecords = %d, want %d", stats.MapInputRecords, len(input))
	}
	res := make(map[string]int)
	for _, p := range out {
		res[p.Key] = p.Value
	}
	return res
}

func TestWordCount(t *testing.T) {
	text := "the quick brown fox\njumps over the lazy dog\nthe fox"
	got := wordCount(t, Config{Mappers: 3, Reducers: 4}, text)
	want := map[string]int{
		"the": 3, "quick": 1, "brown": 1, "fox": 2, "jumps": 1,
		"over": 1, "lazy": 1, "dog": 1,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("wordcount = %v, want %v", got, want)
	}
}

func TestWordCountSingleWorker(t *testing.T) {
	text := "a b a\nc a b"
	got := wordCount(t, Config{Mappers: 1, Reducers: 1}, text)
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("wordcount = %v, want %v", got, want)
	}
}

func TestOutputDeterministicAcrossWorkerCounts(t *testing.T) {
	input := make([]Pair[int, int], 500)
	for i := range input {
		input[i] = P(i, i*i)
	}
	mapFn := func(k, v int, out Emitter[int, int]) error {
		out.Emit(k%37, v)
		out.Emit(k%11, v+1)
		return nil
	}
	redFn := func(k int, vs []int, out Emitter[int, int]) error {
		s := 0
		for _, v := range vs {
			s += v
		}
		out.Emit(k, s)
		return nil
	}
	var first []Pair[int, int]
	for _, workers := range []int{1, 2, 3, 8, 16} {
		out, _, err := Run(context.Background(),
			Config{Mappers: workers, Reducers: workers}, input, mapFn, redFn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if first == nil {
			first = out
			continue
		}
		if !reflect.DeepEqual(out, first) {
			t.Errorf("workers=%d: output differs from workers=1", workers)
		}
	}
}

func TestValuesOrderPreservedWithinSplit(t *testing.T) {
	// A single mapper split must deliver values to the reducer in
	// emission order.
	input := []Pair[int, int]{P(0, 0)}
	out, _, err := Run(context.Background(), Config{Mappers: 1, Reducers: 1}, input,
		func(_ int, _ int, out Emitter[string, int]) error {
			for i := 0; i < 10; i++ {
				out.Emit("k", i)
			}
			return nil
		},
		func(_ string, vs []int, out Emitter[string, []int]) error {
			out.Emit("k", vs)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !reflect.DeepEqual(out[0].Value, want) {
		t.Errorf("values = %v, want %v", out[0].Value, want)
	}
}

func TestAllValuesForKeyMeetInOneReduceCall(t *testing.T) {
	// Every key must be reduced exactly once regardless of how many
	// mappers emitted it.
	input := make([]Pair[int, int], 200)
	for i := range input {
		input[i] = P(i, 1)
	}
	out, stats, err := Run(context.Background(), Config{Mappers: 7, Reducers: 5}, input,
		func(k, v int, out Emitter[int, int]) error {
			out.Emit(k%13, v)
			return nil
		},
		func(k int, vs []int, out Emitter[int, int]) error {
			out.Emit(k, len(vs))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 13 {
		t.Fatalf("got %d reduce outputs, want 13", len(out))
	}
	total := 0
	for _, p := range out {
		total += p.Value
	}
	if total != 200 {
		t.Errorf("total values seen by reducers = %d, want 200", total)
	}
	if stats.ReduceGroups != 13 {
		t.Errorf("ReduceGroups = %d, want 13", stats.ReduceGroups)
	}
}

func TestMapErrorPropagates(t *testing.T) {
	sentinel := errors.New("boom")
	_, _, err := Run(context.Background(), Config{Mappers: 4, Reducers: 2},
		[]Pair[int, int]{P(1, 1), P(2, 2), P(3, 3)},
		func(k, v int, out Emitter[int, int]) error {
			if k == 2 {
				return sentinel
			}
			out.Emit(k, v)
			return nil
		},
		func(k int, vs []int, out Emitter[int, int]) error {
			out.Emit(k, 0)
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want wrapped sentinel", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	sentinel := errors.New("reduce boom")
	_, _, err := Run(context.Background(), Config{},
		[]Pair[int, int]{P(1, 1)},
		Identity[int, int](),
		func(k int, vs []int, out Emitter[int, int]) error {
			return sentinel
		})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want wrapped sentinel", err)
	}
}

func TestNilFunctionsRejected(t *testing.T) {
	_, _, err := Run[int, int, int, int, int, int](context.Background(), Config{}, nil, nil, nil)
	if err == nil {
		t.Error("expected error for nil functions")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	input := make([]Pair[int, int], 1000)
	for i := range input {
		input[i] = P(i, i)
	}
	_, _, err := Run(ctx, Config{Mappers: 2, Reducers: 2}, input,
		Identity[int, int](), CollectValues[int, int]())
	if err == nil {
		t.Error("expected context cancellation error")
	}
}

func TestEmptyInput(t *testing.T) {
	out, stats, err := Run(context.Background(), Config{},
		nil, Identity[int, int](), CollectValues[int, int]())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("got %d outputs, want 0", len(out))
	}
	if stats.MapInputRecords != 0 || stats.ReduceGroups != 0 {
		t.Errorf("nonzero stats for empty input: %+v", stats)
	}
}

func TestStatsAccounting(t *testing.T) {
	input := []Pair[int, int]{P(1, 1), P(2, 2), P(3, 3)}
	_, stats, err := Run(context.Background(), Config{Name: "acct"}, input,
		func(k, v int, out Emitter[int, int]) error {
			out.Emit(k, v)
			out.Emit(k, v)
			return nil
		},
		func(k int, vs []int, out Emitter[int, int]) error {
			out.Emit(k, len(vs))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MapInputRecords != 3 || stats.MapOutputRecords != 6 ||
		stats.ShuffleRecords != 6 || stats.ReduceGroups != 3 ||
		stats.ReduceOutputRecords != 3 {
		t.Errorf("stats = %+v", stats)
	}
	if got := stats.String(); !strings.Contains(got, "acct") {
		t.Errorf("String() = %q, want job name included", got)
	}
}

func TestSplitRangeProperties(t *testing.T) {
	prop := func(n uint16, w uint8) bool {
		spans := splitRange(int(n), int(w))
		// Spans must tile [0, n) exactly.
		covered := 0
		prev := 0
		for _, sp := range spans {
			if sp.lo != prev || sp.hi < sp.lo {
				return false
			}
			covered += sp.hi - sp.lo
			prev = sp.hi
		}
		if covered != int(n) {
			return false
		}
		// Balance: sizes differ by at most 1.
		if len(spans) > 1 {
			min, max := spans[0].hi-spans[0].lo, spans[0].hi-spans[0].lo
			for _, sp := range spans {
				sz := sp.hi - sp.lo
				if sz < min {
					min = sz
				}
				if sz > max {
					max = sz
				}
			}
			if max-min > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPartitionIndexInRange(t *testing.T) {
	prop := func(key int64, r uint8) bool {
		n := int(r)%16 + 1
		idx := partitionIndex(key, n)
		return idx >= 0 && idx < n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPartitionIndexStable(t *testing.T) {
	for _, key := range []string{"a", "b", "node-42", ""} {
		if partitionIndex(key, 7) != partitionIndex(key, 7) {
			t.Errorf("partitionIndex(%q) not stable", key)
		}
	}
}

func TestPartitionSpread(t *testing.T) {
	// Consecutive integer ids must not all collapse into one partition.
	const r = 8
	seen := make(map[int]int)
	for i := 0; i < 1000; i++ {
		seen[partitionIndex(int32(i), r)]++
	}
	if len(seen) < r {
		t.Errorf("only %d of %d partitions used for consecutive ids", len(seen), r)
	}
	for part, count := range seen {
		if count > 400 {
			t.Errorf("partition %d received %d of 1000 keys: badly skewed", part, count)
		}
	}
}

func TestLessKeyOrdersTupleKeys(t *testing.T) {
	a := [2]int32{1, 5}
	b := [2]int32{1, 7}
	c := [2]int32{2, 0}
	if !lessKey(a, b) || !lessKey(b, c) || lessKey(c, a) {
		t.Error("lessKey tuple ordering broken")
	}
}

func TestStructKeysSupported(t *testing.T) {
	type edgeKey struct{ U, V int32 }
	input := []Pair[int, int]{P(0, 0), P(1, 1)}
	out, _, err := Run(context.Background(), Config{Mappers: 2, Reducers: 2}, input,
		func(k, v int, out Emitter[edgeKey, int]) error {
			out.Emit(edgeKey{int32(k), int32(v)}, 1)
			out.Emit(edgeKey{0, 0}, 1)
			return nil
		},
		func(k edgeKey, vs []int, out Emitter[string, int]) error {
			out.Emit(fmt.Sprintf("%d-%d", k.U, k.V), len(vs))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]int)
	for _, p := range out {
		got[p.Key] = p.Value
	}
	if got["0-0"] != 3 || got["1-1"] != 1 {
		t.Errorf("struct key grouping wrong: %v", got)
	}
}
