package mapreduce

import (
	"reflect"
	"sync"
	"sync/atomic"
	"unsafe"
)

// This file implements the engine's round-lifetime memory recycler. The
// paper's algorithms run tens to hundreds of MapReduce rounds over the
// same node-keyed records with the same partitioning every round, so
// the shuffle's working memory — per-reducer bucket slices, the group
// sort's key/value gather arrays, the radix scratch — has the same
// shape in round N+1 as in round N. Without recycling, every round
// re-allocates all of it and the steady-state loop churns the heap;
// with it, round N+1 checks round N's buffers back out and the loop's
// engine-side allocation rate drops to (nearly) zero.
//
// Ownership discipline, which is what makes recycling safe:
//
//   - Buffers whose lifetime the engine fully controls are recycled
//     automatically: emit buckets (returned when a group stream has
//     copied them out, or when the spill backend has ingested them),
//     the group sort's gather/scratch/permutation arrays, the sorted
//     key and key-image arrays, and the sorted values array (returned
//     when the partition's group stream closes — reduce functions must
//     not retain the values slice beyond the call, see ReduceFunc).
//   - Buffers that escape to the caller — reduce-output pair slices,
//     Dataset partitions, MapValues outputs — are NEVER reclaimed
//     automatically. They return to the pool only through an explicit
//     Dataset.Recycle (the caller asserting the data is dead) or
//     through Loop, which recycles each superseded state Dataset under
//     Loop's documented ownership contract.
//
// A BufferPool is keyed by concrete (K, V) pair type underneath (an
// iterative computation's jobs repeat the same types every round), and
// each per-type arena keys its free lists by partition index: partition
// p's buffers have stable sizes across rounds, so checking out p's own
// previous buffer almost always fits without over-allocation.

// BufferPool is an engine-owned recycler for round-lifetime buffers.
// NewDriver attaches one to every driver, so all iterative computations
// recycle automatically; a caller invoking Run/RunDS directly can share
// one across jobs via Config.Pool. A nil pool disables recycling (every
// checkout allocates fresh, exactly the pre-pool behavior).
//
// The pool is safe for concurrent use by the tasks of one job. Its
// PooledBytes/PoolMisses counters are cumulative; per-job Stats record
// the delta accrued during that job.
type BufferPool struct {
	mu     sync.Mutex
	arenas map[reflect.Type]any // *roundArena[K, V] keyed by Pair[K, V] type
	bytes  atomic.Int64         // bytes served from free lists (hits)
	misses atomic.Int64         // checkouts that had to allocate
}

// NewBufferPool returns an empty recycler.
func NewBufferPool() *BufferPool {
	return &BufferPool{arenas: make(map[reflect.Type]any)}
}

// counters snapshots the cumulative pool statistics.
func (p *BufferPool) counters() (bytes, misses int64) {
	if p == nil {
		return 0, 0
	}
	return p.bytes.Load(), p.misses.Load()
}

// arenaFor returns the pool's arena for the concrete (K, V) pair type,
// sized for at least `parts` partitions. Resolved once per job (one map
// lookup, not one per record). Returns nil for a nil pool — every arena
// method tolerates a nil receiver by allocating fresh.
func arenaFor[K comparable, V any](p *BufferPool, parts int) *roundArena[K, V] {
	if p == nil {
		return nil
	}
	key := reflect.TypeOf((*Pair[K, V])(nil))
	p.mu.Lock()
	defer p.mu.Unlock()
	if a, ok := p.arenas[key]; ok {
		ar := a.(*roundArena[K, V])
		ar.ensure(parts)
		return ar
	}
	ar := &roundArena[K, V]{pool: p}
	ar.ensure(parts)
	p.arenas[key] = ar
	return ar
}

// arenaDepth caps each per-partition free list; deeper check-ins are
// dropped to the garbage collector so the pool cannot grow without
// bound.
const arenaDepth = 4

// roundArena holds one (K, V) type's free lists, keyed by partition.
type roundArena[K comparable, V any] struct {
	pool  *BufferPool
	mu    sync.Mutex
	parts []arenaPart[K, V]
}

// arenaPart is one partition's free lists, one per buffer class.
type arenaPart[K comparable, V any] struct {
	buckets [][]Pair[K, V] // emit-side partition buckets
	pairs   [][]Pair[K, V] // reduce-output / Dataset partition slices
	keys    [][]K          // group-sort key arrays (gather + sorted)
	vals    [][]V          // group-sort value arrays (gather + sorted)
	u64s    [][]uint64     // key images / packed keys / prefixes
	i32s    [][]int32      // permutation arrays
	radix   []*radixScratch
}

// ensure grows the partition table to cover at least n partitions.
func (a *roundArena[K, V]) ensure(n int) {
	a.mu.Lock()
	if len(a.parts) < n {
		a.parts = append(a.parts, make([]arenaPart[K, V], n-len(a.parts))...)
	}
	a.mu.Unlock()
}

// takeFit pops a free slice with cap >= n, or reports a miss.
func takeFit[T any](list *[][]T, n int) ([]T, bool) {
	l := *list
	for i := len(l) - 1; i >= 0; i-- {
		if cap(l[i]) >= n {
			s := l[i]
			l[i] = l[len(l)-1]
			l[len(l)-1] = nil
			*list = l[:len(l)-1]
			return s, true
		}
	}
	return nil, false
}

// putFree checks a slice into a free list, clearing its storage when
// clearIt is set (so stale pointers in recycled buffers cannot pin dead
// objects against the garbage collector). Full lists drop the slice.
func putFree[T any](list *[][]T, s []T, clearIt bool) {
	if cap(s) == 0 || len(*list) >= arenaDepth {
		return
	}
	if clearIt {
		clear(s[:cap(s)])
	}
	*list = append(*list, s[:0])
}

// hit and miss record one checkout's outcome in the pool counters.
func (a *roundArena[K, V]) hit(bytes uintptr) { a.pool.bytes.Add(int64(bytes)) }
func (a *roundArena[K, V]) miss()             { a.pool.misses.Add(1) }

// --- per-class accessors ----------------------------------------------
//
// get* methods return a buffer for partition p (allocating on miss, or
// always for a nil arena); put* methods check one back in. Slices with
// pointer-bearing element types are cleared on check-in.

// getBucket returns an empty bucket with capacity >= n.
func (a *roundArena[K, V]) getBucket(p, n int) []Pair[K, V] {
	if a == nil {
		return make([]Pair[K, V], 0, n)
	}
	a.mu.Lock()
	s, ok := takeFit(&a.parts[p].buckets, n)
	a.mu.Unlock()
	if !ok {
		a.miss()
		return make([]Pair[K, V], 0, n)
	}
	a.hit(uintptr(cap(s)) * unsafe.Sizeof(Pair[K, V]{}))
	return s[:0]
}

// putBucket checks a bucket back in. Undersized buckets (partial final
// buckets of a split) are dropped so the free lists hold only buckets a
// future emitter can fill without growing.
func (a *roundArena[K, V]) putBucket(p int, s []Pair[K, V]) {
	if a == nil || cap(s) < emitBucketCap {
		return
	}
	a.mu.Lock()
	putFree(&a.parts[p].buckets, s, true)
	a.mu.Unlock()
}

// getPairs returns an empty pair slice with capacity >= n (best effort:
// a partition's reduce-output size is stable across rounds, so the
// previous round's buffer almost always fits).
func (a *roundArena[K, V]) getPairs(p, n int) []Pair[K, V] {
	if a == nil {
		return make([]Pair[K, V], 0, n)
	}
	a.mu.Lock()
	s, ok := takeFit(&a.parts[p].pairs, n)
	a.mu.Unlock()
	if !ok {
		a.miss()
		return make([]Pair[K, V], 0, n)
	}
	a.hit(uintptr(cap(s)) * unsafe.Sizeof(Pair[K, V]{}))
	return s[:0]
}

// putPairs checks a reduce-output/Dataset pair slice back in.
func (a *roundArena[K, V]) putPairs(p int, s []Pair[K, V]) {
	if a == nil {
		return
	}
	a.mu.Lock()
	putFree(&a.parts[p].pairs, s, true)
	a.mu.Unlock()
}

// getKeys returns a key array of length n.
func (a *roundArena[K, V]) getKeys(p, n int) []K {
	if a == nil {
		return make([]K, n)
	}
	a.mu.Lock()
	s, ok := takeFit(&a.parts[p].keys, n)
	a.mu.Unlock()
	if !ok {
		a.miss()
		return make([]K, n)
	}
	var zk K
	a.hit(uintptr(cap(s)) * unsafe.Sizeof(zk))
	return s[:n]
}

func (a *roundArena[K, V]) putKeys(p int, s []K) {
	if a == nil {
		return
	}
	a.mu.Lock()
	putFree(&a.parts[p].keys, s, true)
	a.mu.Unlock()
}

// getVals returns a value array of length n.
func (a *roundArena[K, V]) getVals(p, n int) []V {
	if a == nil {
		return make([]V, n)
	}
	a.mu.Lock()
	s, ok := takeFit(&a.parts[p].vals, n)
	a.mu.Unlock()
	if !ok {
		a.miss()
		return make([]V, n)
	}
	var zv V
	a.hit(uintptr(cap(s)) * unsafe.Sizeof(zv))
	return s[:n]
}

func (a *roundArena[K, V]) putVals(p int, s []V) {
	if a == nil {
		return
	}
	a.mu.Lock()
	putFree(&a.parts[p].vals, s, true)
	a.mu.Unlock()
}

// getU64 returns a uint64 array of length n (key images, packed keys,
// string prefixes).
func (a *roundArena[K, V]) getU64(p, n int) []uint64 {
	if a == nil {
		return make([]uint64, n)
	}
	a.mu.Lock()
	s, ok := takeFit(&a.parts[p].u64s, n)
	a.mu.Unlock()
	if !ok {
		a.miss()
		return make([]uint64, n)
	}
	a.hit(uintptr(cap(s)) * 8)
	return s[:n]
}

func (a *roundArena[K, V]) putU64(p int, s []uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	putFree(&a.parts[p].u64s, s, false)
	a.mu.Unlock()
}

// getI32 returns an int32 array of length n (sort permutations).
func (a *roundArena[K, V]) getI32(p, n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	a.mu.Lock()
	s, ok := takeFit(&a.parts[p].i32s, n)
	a.mu.Unlock()
	if !ok {
		a.miss()
		return make([]int32, n)
	}
	a.hit(uintptr(cap(s)) * 4)
	return s[:n]
}

func (a *roundArena[K, V]) putI32(p int, s []int32) {
	if a == nil {
		return
	}
	a.mu.Lock()
	putFree(&a.parts[p].i32s, s, false)
	a.mu.Unlock()
}

// getRadix returns a radix scratch for partition p's group sort.
func (a *roundArena[K, V]) getRadix(p int) *radixScratch {
	if a == nil {
		return &radixScratch{}
	}
	a.mu.Lock()
	part := &a.parts[p]
	var rs *radixScratch
	if n := len(part.radix); n > 0 {
		rs = part.radix[n-1]
		part.radix[n-1] = nil
		part.radix = part.radix[:n-1]
	}
	a.mu.Unlock()
	if rs == nil {
		a.miss()
		return &radixScratch{}
	}
	a.hit(uintptr(cap(rs.tmpK))*8 + uintptr(cap(rs.tmpP)+cap(rs.counts))*4)
	return rs
}

func (a *roundArena[K, V]) putRadix(p int, rs *radixScratch) {
	if a == nil || rs == nil {
		return
	}
	a.mu.Lock()
	if len(a.parts[p].radix) < arenaDepth {
		a.parts[p].radix = append(a.parts[p].radix, rs)
	}
	a.mu.Unlock()
}
