package capacity

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func newG(t *testing.T, items, consumers int) *graph.Bipartite {
	t.Helper()
	return graph.NewBipartite(items, consumers)
}

func TestConsumerActivity(t *testing.T) {
	g := newG(t, 2, 3)
	total, err := ConsumerActivity(g, []float64{10, 0, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// b = max(1, alpha*n): 20, 1, 8 -> total 29.
	if total != 29 {
		t.Errorf("total = %v, want 29", total)
	}
	if g.Capacity(g.ConsumerID(0)) != 20 || g.Capacity(g.ConsumerID(1)) != 1 || g.Capacity(g.ConsumerID(2)) != 8 {
		t.Error("capacities wrong")
	}
}

func TestConsumerActivityErrors(t *testing.T) {
	g := newG(t, 1, 2)
	if _, err := ConsumerActivity(g, []float64{1}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ConsumerActivity(g, []float64{1, 2}, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := ConsumerActivity(g, []float64{1, -2}, 1); err == nil {
		t.Error("negative activity accepted")
	}
}

func TestUniformItems(t *testing.T) {
	g := newG(t, 4, 1)
	if err := UniformItems(g, 20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if g.Capacity(g.ItemID(i)) != 5 {
			t.Errorf("item %d capacity %v, want 5", i, g.Capacity(g.ItemID(i)))
		}
	}
	// Floor at 1 when bandwidth is tiny.
	if err := UniformItems(g, 0.5); err != nil {
		t.Fatal(err)
	}
	if g.Capacity(g.ItemID(0)) != 1 {
		t.Error("floor at 1 not applied")
	}
	if err := UniformItems(g, -1); err == nil {
		t.Error("negative bandwidth accepted")
	}
	empty := newG(t, 0, 1)
	if err := UniformItems(empty, 10); err != nil {
		t.Errorf("empty item side: %v", err)
	}
}

func TestQualityProportional(t *testing.T) {
	g := newG(t, 3, 1)
	// Unnormalized scores normalize internally: 2:1:1.
	if err := QualityProportional(g, []float64{2, 1, 1}, 40); err != nil {
		t.Fatal(err)
	}
	if g.Capacity(g.ItemID(0)) != 20 || g.Capacity(g.ItemID(1)) != 10 {
		t.Errorf("capacities %v %v, want 20 10",
			g.Capacity(g.ItemID(0)), g.Capacity(g.ItemID(1)))
	}
	// max{1, ...} floor.
	if err := QualityProportional(g, []float64{1, 0, 0}, 2); err != nil {
		t.Fatal(err)
	}
	if g.Capacity(g.ItemID(1)) != 1 {
		t.Error("zero-quality item must keep capacity 1")
	}
	if err := QualityProportional(g, []float64{1}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := QualityProportional(g, []float64{1, -1, 0}, 1); err == nil {
		t.Error("negative quality accepted")
	}
	// All-zero quality degrades to uniform.
	if err := QualityProportional(g, []float64{0, 0, 0}, 30); err != nil {
		t.Fatal(err)
	}
	if g.Capacity(g.ItemID(2)) != 10 {
		t.Error("all-zero quality should fall back to uniform")
	}
}

func TestFavoritesProportionalMatchesPaperFormula(t *testing.T) {
	// b(p) = f(p) * (sum alpha*n(u)) / (sum f(q)).
	g := newG(t, 2, 2)
	bandwidth, err := ConsumerActivity(g, []float64{3, 5}, 2) // B = 16
	if err != nil {
		t.Fatal(err)
	}
	if err := FavoritesProportional(g, []float64{1, 3}, bandwidth); err != nil {
		t.Fatal(err)
	}
	if got := g.Capacity(g.ItemID(0)); math.Abs(got-4) > 1e-12 {
		t.Errorf("b(p0) = %v, want 16*1/4 = 4", got)
	}
	if got := g.Capacity(g.ItemID(1)); math.Abs(got-12) > 1e-12 {
		t.Errorf("b(p1) = %v, want 12", got)
	}
}

func TestConstantPerItem(t *testing.T) {
	g := newG(t, 5, 1)
	if err := ConstantPerItem(g, 25); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if g.Capacity(g.ItemID(i)) != 5 {
			t.Error("constant capacity wrong")
		}
	}
}

func TestBandwidthConservation(t *testing.T) {
	// The paper requires sum b(t) ≈ B = sum b(c); with favorites
	// proportional and no flooring, totals agree exactly.
	g := newG(t, 3, 4)
	bandwidth, err := ConsumerActivity(g, []float64{2, 3, 4, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := FavoritesProportional(g, []float64{5, 10, 15}, bandwidth); err != nil {
		t.Fatal(err)
	}
	itemTotal := g.TotalCapacity(graph.ItemSide)
	if math.Abs(itemTotal-bandwidth) > 1e-9 {
		t.Errorf("item total %v != bandwidth %v", itemTotal, bandwidth)
	}
}

func TestSummarize(t *testing.T) {
	g := newG(t, 2, 3)
	g.SetCapacity(g.ItemID(0), 2)
	g.SetCapacity(g.ItemID(1), 6)
	g.SetCapacity(g.ConsumerID(0), 1)
	g.SetCapacity(g.ConsumerID(1), 3)
	g.SetCapacity(g.ConsumerID(2), 5)
	s := Summarize(g, graph.ItemSide)
	if s.Count != 2 || s.Min != 2 || s.Max != 6 || s.Mean != 4 || s.Total != 8 {
		t.Errorf("item summary %+v", s)
	}
	s = Summarize(g, graph.ConsumerSide)
	if s.Count != 3 || s.Min != 1 || s.Max != 5 || s.Total != 9 {
		t.Errorf("consumer summary %+v", s)
	}
	empty := Summarize(newG(t, 0, 0), graph.ItemSide)
	if empty.Count != 0 || empty.Mean != 0 {
		t.Error("empty summary not neutral")
	}
}
