// Package capacity implements the capacity-assignment policies of the
// paper's Section 4 ("Capacity constraints") and Section 6 (the concrete
// choices made for the flickr and yahoo-answers datasets).
//
// Consumer capacities derive from user activity: b(u) = α·n(u), with
// n(u) an activity proxy (photos posted, answers written) and α a
// simulation knob for the overall activity level. The consumer-side
// total B = Σ_u b(u) is the distribution bandwidth, which item-side
// policies then split:
//
//   - Uniform: no quality assessment, b(t) = max{1, B/|T|};
//   - QualityProportional: b(t) = max{1, q(t)·B} for normalized quality
//     scores q;
//   - FavoritesProportional: the flickr choice, b(p) = f(p)·B/Σf(q);
//   - ConstantPerItem: the yahoo-answers choice, b(q) = B/|Q| for every
//     question.
package capacity

import (
	"fmt"

	"repro/internal/graph"
)

// ConsumerActivity assigns consumer capacities b(u) = α·n(u) from the
// activity counts n (indexed by consumer). Capacities below 1 are
// clamped to 1 so that every consumer can receive at least one item. It
// returns B, the total consumer capacity (the distribution bandwidth).
func ConsumerActivity(g *graph.Bipartite, n []float64, alpha float64) (float64, error) {
	if len(n) != g.NumConsumers() {
		return 0, fmt.Errorf("capacity: %d activity counts for %d consumers", len(n), g.NumConsumers())
	}
	if alpha <= 0 {
		return 0, fmt.Errorf("capacity: non-positive alpha %v", alpha)
	}
	var total float64
	for j, nu := range n {
		if nu < 0 {
			return 0, fmt.Errorf("capacity: negative activity %v for consumer %d", nu, j)
		}
		b := alpha * nu
		if b < 1 {
			b = 1
		}
		g.SetCapacity(g.ConsumerID(j), b)
		total += b
	}
	return total, nil
}

// UniformItems divides the bandwidth equally: b(t) = max{1, B/|T|}.
func UniformItems(g *graph.Bipartite, bandwidth float64) error {
	if bandwidth < 0 {
		return fmt.Errorf("capacity: negative bandwidth %v", bandwidth)
	}
	nT := g.NumItems()
	if nT == 0 {
		return nil
	}
	b := bandwidth / float64(nT)
	if b < 1 {
		b = 1
	}
	for i := 0; i < nT; i++ {
		g.SetCapacity(g.ItemID(i), b)
	}
	return nil
}

// QualityProportional divides the bandwidth in proportion to normalized
// quality scores: b(t) = max{1, q(t)·B}. The scores are normalized
// internally (Σq = 1), matching the paper's assumption.
func QualityProportional(g *graph.Bipartite, quality []float64, bandwidth float64) error {
	if len(quality) != g.NumItems() {
		return fmt.Errorf("capacity: %d quality scores for %d items", len(quality), g.NumItems())
	}
	var sum float64
	for i, q := range quality {
		if q < 0 {
			return fmt.Errorf("capacity: negative quality %v for item %d", q, i)
		}
		sum += q
	}
	if sum == 0 {
		return UniformItems(g, bandwidth)
	}
	for i, q := range quality {
		b := q / sum * bandwidth
		if b < 1 {
			b = 1
		}
		g.SetCapacity(g.ItemID(i), b)
	}
	return nil
}

// FavoritesProportional is the flickr policy of Section 6:
// b(p) = f(p)·B/Σf(q), with f the favorite counts. Items with zero
// favorites get capacity 1 so they keep a chance to be distributed.
func FavoritesProportional(g *graph.Bipartite, favorites []float64, bandwidth float64) error {
	return QualityProportional(g, favorites, bandwidth)
}

// ConstantPerItem is the yahoo-answers policy of Section 6: every
// question gets the same capacity b(q) = max{1, B/|Q|}.
func ConstantPerItem(g *graph.Bipartite, bandwidth float64) error {
	return UniformItems(g, bandwidth)
}

// Summary describes the capacity distribution of one side of the graph
// (Figure 7 plots these distributions).
type Summary struct {
	Side  graph.Side
	Count int
	Min   float64
	Max   float64
	Mean  float64
	Total float64
}

// Summarize computes the capacity summary of one side.
func Summarize(g *graph.Bipartite, side graph.Side) Summary {
	s := Summary{Side: side}
	first := true
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		if g.SideOf(id) != side {
			continue
		}
		b := g.Capacity(id)
		s.Count++
		s.Total += b
		if first || b < s.Min {
			s.Min = b
		}
		if first || b > s.Max {
			s.Max = b
		}
		first = false
	}
	if s.Count > 0 {
		s.Mean = s.Total / float64(s.Count)
	}
	return s
}
