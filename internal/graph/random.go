package graph

import (
	"math/rand"
)

// RandomConfig parameterizes RandomBipartite.
type RandomConfig struct {
	// NumItems and NumConsumers are the part sizes.
	NumItems     int
	NumConsumers int
	// EdgeProb is the independent probability of each item-consumer
	// pair being an edge.
	EdgeProb float64
	// MaxWeight bounds the uniform edge weights in (0, MaxWeight].
	MaxWeight float64
	// MaxCapacity bounds the uniform integer node capacities in
	// [1, MaxCapacity].
	MaxCapacity int
	// Seed makes the graph reproducible.
	Seed int64
}

// RandomBipartite generates a G(n,m,p)-style random weighted bipartite
// graph with random integer capacities. It is the workhorse of the
// property-based tests: small random instances are cheap to solve exactly
// with the flow oracle and to check invariants against.
func RandomBipartite(cfg RandomConfig) *Bipartite {
	if cfg.MaxWeight <= 0 {
		cfg.MaxWeight = 1
	}
	if cfg.MaxCapacity < 1 {
		cfg.MaxCapacity = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := NewBipartite(cfg.NumItems, cfg.NumConsumers)
	for v := 0; v < g.NumNodes(); v++ {
		g.SetCapacity(NodeID(v), float64(1+rng.Intn(cfg.MaxCapacity)))
	}
	for i := 0; i < cfg.NumItems; i++ {
		for j := 0; j < cfg.NumConsumers; j++ {
			if rng.Float64() < cfg.EdgeProb {
				// Strictly positive weight: nextafter(0,1) is
				// effectively impossible from Float64, but guard
				// anyway.
				w := rng.Float64() * cfg.MaxWeight
				for w == 0 {
					w = rng.Float64() * cfg.MaxWeight
				}
				g.AddEdge(g.ItemID(i), g.ConsumerID(j), w)
			}
		}
	}
	return g
}

// PathGraph builds the GreedyMR worst case from Section 5.4: a path
// u1-u2-...-uk embedded in a bipartite graph (odd positions are items,
// even positions consumers) with strictly increasing weights along the
// path and unit capacities everywhere. GreedyMR needs a linear number of
// rounds on it because each round only the currently heaviest pending
// edge's endpoints agree.
func PathGraph(k int) *Bipartite {
	if k < 2 {
		panic("graph: path needs at least 2 nodes")
	}
	nItems := (k + 1) / 2
	nCons := k / 2
	g := NewBipartite(nItems, nCons)
	for v := 0; v < g.NumNodes(); v++ {
		g.SetCapacity(NodeID(v), 1)
	}
	for i := 0; i+1 < k; i++ {
		w := 1.0 + float64(i)
		if i%2 == 0 {
			// node i is item i/2, node i+1 is consumer i/2
			g.AddEdge(g.ItemID(i/2), g.ConsumerID(i/2), w)
		} else {
			// node i is consumer (i-1)/2, node i+1 is item (i+1)/2
			g.AddEdge(g.ItemID((i+1)/2), g.ConsumerID((i-1)/2), w)
		}
	}
	return g
}

// GreedyTightCase builds the bipartite analogue of the greedy tightness
// example from the paper's appendix (Theorem 2, which uses an odd cycle):
// a 3-edge path t0-c0-t1-c1 with unit capacities where the middle edge
// weighs 1+eps and the outer edges weigh 1 each. Greedy takes the middle
// edge (value 1+eps), blocking both outer edges; the optimum takes the
// two outer edges (value 2), so the ratio tends to 1/2 as eps tends to 0.
func GreedyTightCase(eps float64) *Bipartite {
	g := NewBipartite(2, 2)
	g.SetCapacity(g.ItemID(0), 1)
	g.SetCapacity(g.ItemID(1), 1)
	g.SetCapacity(g.ConsumerID(0), 1)
	g.SetCapacity(g.ConsumerID(1), 1)
	g.AddEdge(g.ItemID(0), g.ConsumerID(0), 1)
	g.AddEdge(g.ItemID(1), g.ConsumerID(0), 1+eps)
	g.AddEdge(g.ItemID(1), g.ConsumerID(1), 1)
	return g
}
