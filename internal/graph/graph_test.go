package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func small(t *testing.T) *Bipartite {
	t.Helper()
	g := NewBipartite(3, 2)
	g.SetCapacity(g.ItemID(0), 1)
	g.SetCapacity(g.ItemID(1), 2)
	g.SetCapacity(g.ItemID(2), 1)
	g.SetCapacity(g.ConsumerID(0), 2)
	g.SetCapacity(g.ConsumerID(1), 1)
	g.AddEdge(g.ItemID(0), g.ConsumerID(0), 0.5)
	g.AddEdge(g.ItemID(1), g.ConsumerID(0), 0.9)
	g.AddEdge(g.ItemID(1), g.ConsumerID(1), 0.3)
	g.AddEdge(g.ItemID(2), g.ConsumerID(1), 0.7)
	return g
}

func TestSizes(t *testing.T) {
	g := small(t)
	if g.NumItems() != 3 || g.NumConsumers() != 2 || g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Errorf("sizes: items=%d consumers=%d nodes=%d edges=%d",
			g.NumItems(), g.NumConsumers(), g.NumNodes(), g.NumEdges())
	}
}

func TestIDConversions(t *testing.T) {
	g := small(t)
	if g.ItemID(2) != 2 {
		t.Errorf("ItemID(2) = %d", g.ItemID(2))
	}
	if g.ConsumerID(0) != 3 {
		t.Errorf("ConsumerID(0) = %d", g.ConsumerID(0))
	}
	if g.SideOf(2) != ItemSide || g.SideOf(3) != ConsumerSide {
		t.Error("SideOf wrong")
	}
	if ItemSide.String() != "item" || ConsumerSide.String() != "consumer" {
		t.Error("Side.String wrong")
	}
}

func TestIDPanics(t *testing.T) {
	g := small(t)
	for name, fn := range map[string]func(){
		"item out of range":     func() { g.ItemID(3) },
		"negative item":         func() { g.ItemID(-1) },
		"consumer out of range": func() { g.ConsumerID(2) },
		"edge wrong side":       func() { g.AddEdge(g.ConsumerID(0), g.ConsumerID(1), 1) },
		"zero weight":           func() { g.AddEdge(g.ItemID(0), g.ConsumerID(0), 0) },
		"nan weight":            func() { g.AddEdge(g.ItemID(0), g.ConsumerID(0), math.NaN()) },
		"negative capacity":     func() { g.SetCapacity(0, -1) },
		"capacity bad node":     func() { g.SetCapacity(99, 1) },
		"negative part":         func() { NewBipartite(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCapacities(t *testing.T) {
	g := small(t)
	if g.Capacity(g.ItemID(1)) != 2 {
		t.Errorf("Capacity = %v", g.Capacity(g.ItemID(1)))
	}
	if got := g.TotalCapacity(ItemSide); got != 4 {
		t.Errorf("TotalCapacity(items) = %v, want 4", got)
	}
	if got := g.TotalCapacity(ConsumerSide); got != 3 {
		t.Errorf("TotalCapacity(consumers) = %v, want 3", got)
	}
	g.SetAllCapacities(ItemSide, 5)
	if g.TotalCapacity(ItemSide) != 15 {
		t.Error("SetAllCapacities did not apply")
	}
	if g.TotalCapacity(ConsumerSide) != 3 {
		t.Error("SetAllCapacities leaked to other side")
	}
	g.SetCapacity(0, 1.3)
	if g.IntCapacity(0) != 2 {
		t.Errorf("IntCapacity(1.3) = %d, want 2", g.IntCapacity(0))
	}
}

func TestAdjacency(t *testing.T) {
	g := small(t)
	if g.Degree(g.ConsumerID(0)) != 2 {
		t.Errorf("Degree(c0) = %d, want 2", g.Degree(g.ConsumerID(0)))
	}
	inc := g.IncidentEdges(g.ItemID(1))
	if len(inc) != 2 {
		t.Fatalf("item 1 incident = %v", inc)
	}
	for _, ei := range inc {
		e := g.Edge(int(ei))
		if e.Item != g.ItemID(1) {
			t.Errorf("incident edge %v does not touch item 1", e)
		}
	}
	// Adding an edge invalidates and rebuilds adjacency.
	g.AddEdge(g.ItemID(0), g.ConsumerID(1), 0.1)
	if g.Degree(g.ItemID(0)) != 2 {
		t.Errorf("Degree after AddEdge = %d, want 2", g.Degree(g.ItemID(0)))
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{Item: 1, Consumer: 4, Weight: 1}
	if e.Other(1) != 4 || e.Other(4) != 1 {
		t.Error("Other wrong")
	}
}

func TestWeightHelpers(t *testing.T) {
	g := small(t)
	if got := g.TotalWeight(); math.Abs(got-2.4) > 1e-12 {
		t.Errorf("TotalWeight = %v, want 2.4", got)
	}
	wmin, wmax := g.WeightRange()
	if wmin != 0.3 || wmax != 0.9 {
		t.Errorf("WeightRange = (%v, %v)", wmin, wmax)
	}
	empty := NewBipartite(1, 1)
	wmin, wmax = empty.WeightRange()
	if wmin != 0 || wmax != 0 {
		t.Errorf("empty WeightRange = (%v, %v)", wmin, wmax)
	}
}

func TestFilterEdges(t *testing.T) {
	g := small(t)
	f := g.FilterEdges(0.5)
	if f.NumEdges() != 3 {
		t.Errorf("FilterEdges(0.5) kept %d edges, want 3", f.NumEdges())
	}
	if f.Capacity(g.ItemID(1)) != g.Capacity(g.ItemID(1)) {
		t.Error("FilterEdges dropped capacities")
	}
	// Original untouched.
	if g.NumEdges() != 4 {
		t.Error("FilterEdges mutated receiver")
	}
	for _, e := range f.Edges() {
		if e.Weight < 0.5 {
			t.Errorf("edge below threshold survived: %v", e)
		}
	}
}

func TestSortEdgesByWeightDesc(t *testing.T) {
	g := small(t)
	order := g.SortEdgesByWeightDesc()
	prev := math.Inf(1)
	for _, ei := range order {
		w := g.Edge(int(ei)).Weight
		if w > prev {
			t.Errorf("order not descending: %v after %v", w, prev)
		}
		prev = w
	}
	if len(order) != g.NumEdges() {
		t.Errorf("order length %d != %d edges", len(order), g.NumEdges())
	}
}

func TestCloneIndependence(t *testing.T) {
	g := small(t)
	c := g.Clone()
	c.AddEdge(c.ItemID(0), c.ConsumerID(1), 0.2)
	c.SetCapacity(0, 9)
	if g.NumEdges() != 4 || g.Capacity(0) != 1 {
		t.Error("Clone shares state with original")
	}
}

func TestValidate(t *testing.T) {
	g := small(t)
	if err := g.Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
	// Corrupt an edge weight directly.
	bad := g.Clone()
	bad.edges[0].Weight = -1
	if bad.Validate() == nil {
		t.Error("negative weight not caught")
	}
	bad2 := g.Clone()
	bad2.edges[0].Item = 99
	if bad2.Validate() == nil {
		t.Error("bad endpoint not caught")
	}
	bad3 := g.Clone()
	bad3.caps[0] = math.NaN()
	if bad3.Validate() == nil {
		t.Error("NaN capacity not caught")
	}
}

func TestRandomBipartiteProperties(t *testing.T) {
	prop := func(seed int64, nItems, nCons uint8, probNum uint8) bool {
		cfg := RandomConfig{
			NumItems:     int(nItems)%12 + 1,
			NumConsumers: int(nCons)%12 + 1,
			EdgeProb:     float64(probNum%100) / 100,
			MaxWeight:    2,
			MaxCapacity:  3,
			Seed:         seed,
		}
		g := RandomBipartite(cfg)
		if g.Validate() != nil {
			return false
		}
		if g.NumItems() != cfg.NumItems || g.NumConsumers() != cfg.NumConsumers {
			return false
		}
		for v := 0; v < g.NumNodes(); v++ {
			b := g.Capacity(NodeID(v))
			if b < 1 || b > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomBipartiteDeterministic(t *testing.T) {
	cfg := RandomConfig{NumItems: 10, NumConsumers: 10, EdgeProb: 0.5,
		MaxWeight: 1, MaxCapacity: 4, Seed: 42}
	a := RandomBipartite(cfg)
	b := RandomBipartite(cfg)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different edge counts")
	}
	for i := range a.Edges() {
		if a.Edge(i) != b.Edge(i) {
			t.Fatal("same seed, different edges")
		}
	}
}

func TestPathGraph(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5, 10, 11} {
		g := PathGraph(k)
		if g.NumEdges() != k-1 {
			t.Errorf("PathGraph(%d) has %d edges, want %d", k, g.NumEdges(), k-1)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("PathGraph(%d): %v", k, err)
		}
		// Weights strictly increase along the path.
		for i := 0; i+1 < g.NumEdges(); i++ {
			if g.Edge(i).Weight >= g.Edge(i+1).Weight {
				t.Errorf("PathGraph(%d): weights not increasing", k)
			}
		}
		// Every node capacity is 1 and degree ≤ 2.
		for v := 0; v < g.NumNodes(); v++ {
			if g.Capacity(NodeID(v)) != 1 {
				t.Errorf("PathGraph(%d): capacity != 1", k)
			}
			if g.Degree(NodeID(v)) > 2 {
				t.Errorf("PathGraph(%d): degree > 2", k)
			}
		}
	}
}

func TestGreedyTightCase(t *testing.T) {
	g := GreedyTightCase(0.1)
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	_, wmax := g.WeightRange()
	if math.Abs(wmax-1.1) > 1e-12 {
		t.Errorf("wmax = %v, want 1.1", wmax)
	}
}
