package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g := RandomBipartite(RandomConfig{
		NumItems: 7, NumConsumers: 5, EdgeProb: 0.4,
		MaxWeight: 2, MaxCapacity: 3, Seed: 7,
	})
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumItems() != g.NumItems() || back.NumConsumers() != g.NumConsumers() {
		t.Fatal("part sizes changed in round trip")
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d -> %d", g.NumEdges(), back.NumEdges())
	}
	for i := range g.Edges() {
		a, b := g.Edge(i), back.Edge(i)
		if a.Item != b.Item || a.Consumer != b.Consumer {
			t.Fatalf("edge %d endpoints changed: %v -> %v", i, a, b)
		}
		if diff := a.Weight - b.Weight; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("edge %d weight changed: %v -> %v", i, a.Weight, b.Weight)
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		if g.Capacity(NodeID(v)) != back.Capacity(NodeID(v)) {
			t.Fatalf("capacity of %d changed", v)
		}
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
p 2 1

c 0 3
# another
e 0 0 0.5
e 1 0 1.5
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.Capacity(0) != 3 {
		t.Errorf("parsed wrong: edges=%d cap0=%v", g.NumEdges(), g.Capacity(0))
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"missing p":        "e 0 0 1\n",
		"duplicate p":      "p 1 1\np 1 1\n",
		"bad p arity":      "p 1\n",
		"bad p values":     "p x y\n",
		"negative p":       "p -1 2\n",
		"c before p":       "c 0 1\n",
		"bad c arity":      "p 1 1\nc 0\n",
		"bad c values":     "p 1 1\nc a b\n",
		"c node range":     "p 1 1\nc 5 1\n",
		"c negative":       "p 1 1\nc 0 -2\n",
		"bad e arity":      "p 1 1\ne 0 0\n",
		"bad e values":     "p 1 1\ne a b c\n",
		"e item range":     "p 1 1\ne 3 0 1\n",
		"e consumer range": "p 1 1\ne 0 3 1\n",
		"e zero weight":    "p 1 1\ne 0 0 0\n",
		"unknown record":   "p 1 1\nq 1 2 3\n",
		"empty input":      "",
		"only comments":    "# nothing\n",
		"e before p":       "e 0 0 1\np 1 1\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestWriteFormatStable(t *testing.T) {
	g := NewBipartite(1, 1)
	g.SetCapacity(0, 2)
	g.SetCapacity(1, 1)
	g.AddEdge(0, 1, 0.25)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	want := "p 1 1\nc 0 2\nc 1 1\ne 0 0 0.25\n"
	if buf.String() != want {
		t.Errorf("Write output:\n%q\nwant:\n%q", buf.String(), want)
	}
}
