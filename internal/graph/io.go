package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The edge-list text format is a small, line-oriented interchange format
// used by the cmd tools:
//
//	# comments and blank lines are ignored
//	p <numItems> <numConsumers>         (exactly once, first)
//	c <nodeID> <capacity>               (zero or more)
//	e <itemIndex> <consumerIndex> <weight>
//
// Item and consumer indexes are per-side (0-based); node ids in capacity
// lines are global NodeIDs.

// Write serializes g in the edge-list text format.
func Write(w io.Writer, g *Bipartite) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p %d %d\n", g.NumItems(), g.NumConsumers())
	for v := 0; v < g.NumNodes(); v++ {
		if b := g.Capacity(NodeID(v)); b != 0 {
			fmt.Fprintf(bw, "c %d %g\n", v, b)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "e %d %d %g\n", int(e.Item), int(e.Consumer)-g.NumItems(), e.Weight)
	}
	return bw.Flush()
}

// Read parses a graph in the edge-list text format.
func Read(r io.Reader) (*Bipartite, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *Bipartite
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "p":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate p line", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'p <items> <consumers>'", lineNo)
			}
			nT, err1 := strconv.Atoi(fields[1])
			nC, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || nT < 0 || nC < 0 {
				return nil, fmt.Errorf("graph: line %d: bad part sizes", lineNo)
			}
			g = NewBipartite(nT, nC)
		case "c":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: c before p", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'c <node> <cap>'", lineNo)
			}
			v, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad capacity line", lineNo)
			}
			if v < 0 || v >= g.NumNodes() {
				return nil, fmt.Errorf("graph: line %d: node %d out of range", lineNo, v)
			}
			if b < 0 {
				return nil, fmt.Errorf("graph: line %d: negative capacity", lineNo)
			}
			g.SetCapacity(NodeID(v), b)
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: e before p", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: want 'e <item> <consumer> <weight>'", lineNo)
			}
			ti, err1 := strconv.Atoi(fields[1])
			cj, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge line", lineNo)
			}
			if ti < 0 || ti >= g.NumItems() {
				return nil, fmt.Errorf("graph: line %d: item %d out of range", lineNo, ti)
			}
			if cj < 0 || cj >= g.NumConsumers() {
				return nil, fmt.Errorf("graph: line %d: consumer %d out of range", lineNo, cj)
			}
			if w <= 0 {
				return nil, fmt.Errorf("graph: line %d: non-positive weight", lineNo)
			}
			g.AddEdge(g.ItemID(ti), g.ConsumerID(cj), w)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input (missing p line)")
	}
	return g, nil
}
