// Package graph provides the weighted bipartite graph model used by the
// social-content-matching algorithms: items T on one side, consumers C on
// the other, weighted edges between them, and integer node capacities
// b(v) (Problem 1 of the paper).
//
// Node identifiers are dense int32 indexes. Items occupy [0, NumItems)
// and consumers occupy [NumItems, NumItems+NumConsumers); the Side and
// index helpers convert between the global id space and per-side indexes.
// The algorithms themselves work on any undirected graph, but the
// bipartite structure is what the application scenarios produce and what
// the dataset generators emit.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node in the bipartite graph. Item nodes come first,
// consumer nodes after them.
type NodeID int32

// Side distinguishes the two parts of the bipartite graph.
type Side int8

const (
	// ItemSide marks item (content) nodes.
	ItemSide Side = iota
	// ConsumerSide marks consumer (user) nodes.
	ConsumerSide
)

// String returns "item" or "consumer".
func (s Side) String() string {
	if s == ItemSide {
		return "item"
	}
	return "consumer"
}

// Edge is a weighted undirected edge between an item and a consumer.
// Item is always the item-side endpoint and Consumer the consumer-side
// endpoint in a bipartite graph.
type Edge struct {
	Item     NodeID
	Consumer NodeID
	Weight   float64
}

// Bipartite is a weighted bipartite graph with node capacities. The zero
// value is unusable; construct with NewBipartite.
type Bipartite struct {
	numItems     int
	numConsumers int
	edges        []Edge
	caps         []float64 // indexed by NodeID, length numItems+numConsumers
	adjBuilt     bool
	adj          [][]int32 // node -> indexes into edges
}

// NewBipartite creates an empty bipartite graph with the given part
// sizes. All capacities start at zero; set them with SetCapacity or
// SetAllCapacities before matching.
func NewBipartite(numItems, numConsumers int) *Bipartite {
	if numItems < 0 || numConsumers < 0 {
		panic(fmt.Sprintf("graph: negative part size (%d, %d)", numItems, numConsumers))
	}
	return &Bipartite{
		numItems:     numItems,
		numConsumers: numConsumers,
		caps:         make([]float64, numItems+numConsumers),
	}
}

// NumItems returns |T|.
func (g *Bipartite) NumItems() int { return g.numItems }

// NumConsumers returns |C|.
func (g *Bipartite) NumConsumers() int { return g.numConsumers }

// NumNodes returns |T| + |C|.
func (g *Bipartite) NumNodes() int { return g.numItems + g.numConsumers }

// NumEdges returns |E|.
func (g *Bipartite) NumEdges() int { return len(g.edges) }

// ItemID converts an item index in [0, NumItems) to its NodeID.
func (g *Bipartite) ItemID(i int) NodeID {
	if i < 0 || i >= g.numItems {
		panic(fmt.Sprintf("graph: item index %d out of range [0,%d)", i, g.numItems))
	}
	return NodeID(i)
}

// ConsumerID converts a consumer index in [0, NumConsumers) to its NodeID.
func (g *Bipartite) ConsumerID(j int) NodeID {
	if j < 0 || j >= g.numConsumers {
		panic(fmt.Sprintf("graph: consumer index %d out of range [0,%d)", j, g.numConsumers))
	}
	return NodeID(g.numItems + j)
}

// SideOf reports which part a node belongs to.
func (g *Bipartite) SideOf(v NodeID) Side {
	if int(v) < g.numItems {
		return ItemSide
	}
	return ConsumerSide
}

// ValidNode reports whether v is a node of this graph.
func (g *Bipartite) ValidNode(v NodeID) bool {
	return v >= 0 && int(v) < g.NumNodes()
}

// AddEdge appends the edge (item, consumer, weight). It panics on ids
// from the wrong side, out-of-range ids, or non-positive weights, all of
// which indicate programming errors in callers (the paper assumes
// strictly positive weights).
func (g *Bipartite) AddEdge(item, consumer NodeID, weight float64) {
	if !g.ValidNode(item) || g.SideOf(item) != ItemSide {
		panic(fmt.Sprintf("graph: %d is not an item node", item))
	}
	if !g.ValidNode(consumer) || g.SideOf(consumer) != ConsumerSide {
		panic(fmt.Sprintf("graph: %d is not a consumer node", consumer))
	}
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		panic(fmt.Sprintf("graph: invalid edge weight %v", weight))
	}
	g.edges = append(g.edges, Edge{Item: item, Consumer: consumer, Weight: weight})
	g.adjBuilt = false
}

// Edge returns the i-th edge.
func (g *Bipartite) Edge(i int) Edge { return g.edges[i] }

// Edges returns the backing edge slice. Callers must not modify it.
func (g *Bipartite) Edges() []Edge { return g.edges }

// SetCapacity sets b(v).
func (g *Bipartite) SetCapacity(v NodeID, b float64) {
	if !g.ValidNode(v) {
		panic(fmt.Sprintf("graph: node %d out of range", v))
	}
	if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
		panic(fmt.Sprintf("graph: invalid capacity %v", b))
	}
	g.caps[v] = b
}

// Capacity returns b(v).
func (g *Bipartite) Capacity(v NodeID) float64 { return g.caps[v] }

// IntCapacity returns ⌈b(v)⌉ as an int, the integral capacity used when a
// matching requires whole edges.
func (g *Bipartite) IntCapacity(v NodeID) int {
	return int(math.Ceil(g.caps[v]))
}

// SetAllCapacities assigns the same capacity to every node of the given
// side.
func (g *Bipartite) SetAllCapacities(side Side, b float64) {
	for v := 0; v < g.NumNodes(); v++ {
		if g.SideOf(NodeID(v)) == side {
			g.SetCapacity(NodeID(v), b)
		}
	}
}

// TotalCapacity returns the sum of b(v) over the given side. The paper
// calls the consumer-side total B, the distribution bandwidth.
func (g *Bipartite) TotalCapacity(side Side) float64 {
	var sum float64
	for v := 0; v < g.NumNodes(); v++ {
		if g.SideOf(NodeID(v)) == side {
			sum += g.caps[v]
		}
	}
	return sum
}

// buildAdj constructs the node -> incident edge index lists.
func (g *Bipartite) buildAdj() {
	if g.adjBuilt {
		return
	}
	g.adj = make([][]int32, g.NumNodes())
	deg := make([]int32, g.NumNodes())
	for _, e := range g.edges {
		deg[e.Item]++
		deg[e.Consumer]++
	}
	for v := range g.adj {
		g.adj[v] = make([]int32, 0, deg[v])
	}
	for i, e := range g.edges {
		g.adj[e.Item] = append(g.adj[e.Item], int32(i))
		g.adj[e.Consumer] = append(g.adj[e.Consumer], int32(i))
	}
	g.adjBuilt = true
}

// IncidentEdges returns the indexes (into Edges) of the edges incident to
// v. The returned slice is shared; callers must not modify it.
func (g *Bipartite) IncidentEdges(v NodeID) []int32 {
	g.buildAdj()
	return g.adj[v]
}

// Degree returns the number of edges incident to v.
func (g *Bipartite) Degree(v NodeID) int {
	g.buildAdj()
	return len(g.adj[v])
}

// Other returns the endpoint of edge e opposite to v.
func (e Edge) Other(v NodeID) NodeID {
	if e.Item == v {
		return e.Consumer
	}
	return e.Item
}

// TotalWeight returns the sum of all edge weights.
func (g *Bipartite) TotalWeight() float64 {
	var sum float64
	for _, e := range g.edges {
		sum += e.Weight
	}
	return sum
}

// WeightRange returns the minimum and maximum edge weight. It returns
// (0, 0) for an edgeless graph. StackMR's round bound depends on the
// ratio wmax/wmin.
func (g *Bipartite) WeightRange() (wmin, wmax float64) {
	if len(g.edges) == 0 {
		return 0, 0
	}
	wmin, wmax = g.edges[0].Weight, g.edges[0].Weight
	for _, e := range g.edges[1:] {
		if e.Weight < wmin {
			wmin = e.Weight
		}
		if e.Weight > wmax {
			wmax = e.Weight
		}
	}
	return wmin, wmax
}

// FilterEdges returns a new graph with the same nodes and capacities but
// only the edges with weight ≥ sigma. This is how the experiments sweep
// the similarity threshold.
func (g *Bipartite) FilterEdges(sigma float64) *Bipartite {
	out := NewBipartite(g.numItems, g.numConsumers)
	copy(out.caps, g.caps)
	for _, e := range g.edges {
		if e.Weight >= sigma {
			out.edges = append(out.edges, e)
		}
	}
	return out
}

// SortEdgesByWeightDesc returns the edge indexes sorted by decreasing
// weight, with deterministic tie-breaking on (item, consumer). The
// centralized greedy algorithm processes edges in this order.
func (g *Bipartite) SortEdgesByWeightDesc() []int32 {
	idx := make([]int32, len(g.edges))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ea, eb := g.edges[idx[a]], g.edges[idx[b]]
		if ea.Weight != eb.Weight {
			return ea.Weight > eb.Weight
		}
		if ea.Item != eb.Item {
			return ea.Item < eb.Item
		}
		return ea.Consumer < eb.Consumer
	})
	return idx
}

// Clone returns a deep copy of the graph.
func (g *Bipartite) Clone() *Bipartite {
	out := NewBipartite(g.numItems, g.numConsumers)
	out.edges = append([]Edge(nil), g.edges...)
	copy(out.caps, g.caps)
	return out
}

// Validate checks structural invariants: endpoints on the correct sides,
// positive finite weights, non-negative capacities. It returns the first
// violation found.
func (g *Bipartite) Validate() error {
	for i, e := range g.edges {
		if !g.ValidNode(e.Item) || g.SideOf(e.Item) != ItemSide {
			return fmt.Errorf("graph: edge %d has bad item endpoint %d", i, e.Item)
		}
		if !g.ValidNode(e.Consumer) || g.SideOf(e.Consumer) != ConsumerSide {
			return fmt.Errorf("graph: edge %d has bad consumer endpoint %d", i, e.Consumer)
		}
		if e.Weight <= 0 || math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) {
			return fmt.Errorf("graph: edge %d has invalid weight %v", i, e.Weight)
		}
	}
	for v, b := range g.caps {
		if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("graph: node %d has invalid capacity %v", v, b)
		}
	}
	return nil
}
