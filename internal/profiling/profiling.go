// Package profiling wires the CLIs' -cpuprofile/-memprofile flags to
// runtime/pprof, so perf work on the real workloads is reproducible
// (see README's benchmarking section). One implementation shared by
// every cmd keeps the capture semantics identical across tools.
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/cliio"
)

// Start begins a CPU profile (when cpu is non-empty) and returns a stop
// function that ends it and writes a heap profile (when mem is
// non-empty). The stop function must run before a normal exit — the
// CLIs call it through their run() error path — and returns the first
// profile-write failure, so a truncated or unwritable profile exits
// nonzero instead of silently producing a corrupt file (profiles route
// through cliio's checked close like every other CLI output).
func Start(cpu, mem string) (func() error, error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() error {
		var err error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			// StartCPUProfile wrote to the raw file; wrap it only for
			// the checked close (the buffer holds nothing).
			err = cliio.Wrap(cpuFile).Close()
		}
		if mem != "" {
			out, cerr := cliio.Create(mem)
			if cerr != nil {
				if err == nil {
					err = cerr
				}
				return err
			}
			runtime.GC() // materialize the final live set
			werr := pprof.WriteHeapProfile(out)
			cliio.CloseInto(out, &werr)
			if err == nil {
				err = werr
			}
		}
		return err
	}, nil
}
