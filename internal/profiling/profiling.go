// Package profiling wires the CLIs' -cpuprofile/-memprofile flags to
// runtime/pprof, so perf work on the real workloads is reproducible
// (see README's benchmarking section). One implementation shared by
// every cmd keeps the capture semantics identical across tools.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile (when cpu is non-empty) and returns a stop
// function that ends it and writes a heap profile (when mem is
// non-empty). The stop function must run before a normal exit — call it
// via defer in main; profiles are skipped on error exits through
// os.Exit. prefix labels any profile-writing errors on stderr.
func Start(cpu, mem, prefix string) (func(), error) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", prefix, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: memprofile: %v\n", prefix, err)
			}
		}
	}, nil
}
