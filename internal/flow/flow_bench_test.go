package flow

import (
	"testing"

	"repro/internal/graph"
)

func BenchmarkExactSolver(b *testing.B) {
	for _, size := range []struct {
		name           string
		items, cons    int
		prob           float64
		maxW, capacity int
	}{
		{"tiny-8x6", 8, 6, 0.5, 5, 2},
		{"small-40x20", 40, 20, 0.2, 5, 3},
		{"medium-150x50", 150, 50, 0.08, 5, 4},
	} {
		size := size
		b.Run(size.name, func(b *testing.B) {
			g := graph.RandomBipartite(graph.RandomConfig{
				NumItems: size.items, NumConsumers: size.cons,
				EdgeProb: size.prob, MaxWeight: float64(size.maxW),
				MaxCapacity: size.capacity, Seed: 9,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := MaxWeightBMatching(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
