package flow

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestSingleEdge(t *testing.T) {
	g := graph.NewBipartite(1, 1)
	g.SetCapacity(0, 1)
	g.SetCapacity(1, 1)
	g.AddEdge(0, 1, 2.5)
	picked, value, err := MaxWeightBMatching(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 1 || value != 2.5 {
		t.Errorf("picked=%v value=%v", picked, value)
	}
}

func TestPrefersHeavierEdge(t *testing.T) {
	// One item with capacity 1, two consumers: must take the heavier.
	g := graph.NewBipartite(1, 2)
	g.SetCapacity(g.ItemID(0), 1)
	g.SetCapacity(g.ConsumerID(0), 1)
	g.SetCapacity(g.ConsumerID(1), 1)
	g.AddEdge(g.ItemID(0), g.ConsumerID(0), 1)
	g.AddEdge(g.ItemID(0), g.ConsumerID(1), 3)
	picked, value, err := MaxWeightBMatching(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 1 || value != 3 {
		t.Errorf("picked=%v value=%v, want the weight-3 edge", picked, value)
	}
}

func TestBeatsGreedyOnTightCase(t *testing.T) {
	// Greedy takes the middle edge (1+eps); the optimum takes the two
	// outer edges (2).
	g := graph.GreedyTightCase(0.25)
	_, value, err := MaxWeightBMatching(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(value-2) > 1e-9 {
		t.Errorf("OPT = %v, want 2", value)
	}
}

func TestRespectsCapacities(t *testing.T) {
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 8, NumConsumers: 6, EdgeProb: 0.6,
		MaxWeight: 5, MaxCapacity: 3, Seed: 11,
	})
	picked, _, err := MaxWeightBMatching(g)
	if err != nil {
		t.Fatal(err)
	}
	deg := make(map[graph.NodeID]int)
	for _, ei := range picked {
		e := g.Edge(int(ei))
		deg[e.Item]++
		deg[e.Consumer]++
	}
	for v, d := range deg {
		if d > g.IntCapacity(v) {
			t.Errorf("node %d: degree %d > capacity %d", v, d, g.IntCapacity(v))
		}
	}
}

func TestZeroCapacityNodesExcluded(t *testing.T) {
	g := graph.NewBipartite(1, 1)
	g.SetCapacity(0, 0)
	g.SetCapacity(1, 5)
	g.AddEdge(0, 1, 10)
	picked, value, err := MaxWeightBMatching(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 0 || value != 0 {
		t.Errorf("zero-capacity node matched: %v %v", picked, value)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBipartite(3, 3)
	g.SetAllCapacities(graph.ItemSide, 1)
	g.SetAllCapacities(graph.ConsumerSide, 1)
	picked, value, err := MaxWeightBMatching(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 0 || value != 0 {
		t.Errorf("empty graph matched: %v %v", picked, value)
	}
}

// bruteForce enumerates all edge subsets and returns the best feasible
// value. Only viable for tiny graphs.
func bruteForce(g *graph.Bipartite) float64 {
	nE := g.NumEdges()
	best := 0.0
	for mask := 0; mask < 1<<nE; mask++ {
		deg := make(map[graph.NodeID]int)
		value := 0.0
		ok := true
		for i := 0; i < nE && ok; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			e := g.Edge(i)
			deg[e.Item]++
			deg[e.Consumer]++
			if deg[e.Item] > g.IntCapacity(e.Item) || deg[e.Consumer] > g.IntCapacity(e.Consumer) {
				ok = false
			}
			value += e.Weight
		}
		if ok && value > best {
			best = value
		}
	}
	return best
}

func TestMatchesBruteForceOnRandomInstances(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g := graph.RandomBipartite(graph.RandomConfig{
			NumItems: 4, NumConsumers: 3, EdgeProb: 0.7,
			MaxWeight: 3, MaxCapacity: 2, Seed: seed,
		})
		if g.NumEdges() > 14 {
			continue // keep brute force tractable
		}
		_, value, err := MaxWeightBMatching(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := bruteForce(g)
		if math.Abs(value-want) > 1e-9 {
			t.Errorf("seed %d: flow=%v brute=%v", seed, value, want)
		}
	}
}

func TestIntegralityWithFractionalCapacities(t *testing.T) {
	// Fractional capacities round up, like in internal/core.
	g := graph.NewBipartite(1, 2)
	g.SetCapacity(g.ItemID(0), 1.2) // behaves as 2
	g.SetCapacity(g.ConsumerID(0), 1)
	g.SetCapacity(g.ConsumerID(1), 1)
	g.AddEdge(g.ItemID(0), g.ConsumerID(0), 1)
	g.AddEdge(g.ItemID(0), g.ConsumerID(1), 1)
	picked, value, err := MaxWeightBMatching(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || math.Abs(value-2) > 1e-9 {
		t.Errorf("picked=%v value=%v, want both edges", picked, value)
	}
}
