// Package flow solves maximum-weight b-matching on bipartite graphs
// exactly, via min-cost flow with successive shortest paths.
//
// The paper notes (Section 1) that b-matching "can be solved in
// polynomial time by max-flow techniques" but that exact algorithms do
// not scale; this package is that exact comparator, usable on small
// instances. Tests use it as the optimum oracle against which the
// approximation guarantees of Greedy (1/2) and the stack algorithms
// (1/(6+ε)) are checked, and the quality experiments report
// value/OPT on the small dataset.
//
// Construction: source → item t with capacity b(t) and cost 0; item →
// consumer with capacity 1 and cost −w(t,c); consumer → sink with
// capacity b(c) and cost 0. Augmenting along most-negative-cost shortest
// paths while the path cost stays negative yields the maximum-weight
// (not maximum-cardinality) b-matching; integral capacities make the
// optimal flow integral.
package flow

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// arc is one directed arc of the residual network. Arcs are stored in
// pairs: arc i and arc i^1 are reverses of each other.
type arc struct {
	to   int32
	cap  int32
	cost float64
}

// network is a residual flow network.
type network struct {
	arcs []arc
	head [][]int32 // node -> indexes into arcs
}

func newNetwork(n int) *network {
	return &network{head: make([][]int32, n)}
}

// addArc inserts a forward arc and its zero-capacity reverse.
func (nw *network) addArc(from, to int32, capacity int32, cost float64) int32 {
	id := int32(len(nw.arcs))
	nw.arcs = append(nw.arcs, arc{to: to, cap: capacity, cost: cost})
	nw.arcs = append(nw.arcs, arc{to: from, cap: 0, cost: -cost})
	nw.head[from] = append(nw.head[from], id)
	nw.head[to] = append(nw.head[to], id+1)
	return id
}

// MaxWeightBMatching returns the edge indexes of a maximum-weight
// b-matching of g and its total weight. Fractional capacities are
// rounded up to integers, matching the behaviour of the approximation
// algorithms in internal/core.
//
// The running time is O(F · V · E) with F the total flow, so keep
// instances small (tests use graphs with tens of nodes, the quality
// experiments a few thousand edges).
func MaxWeightBMatching(g *graph.Bipartite) ([]int32, float64, error) {
	nT, nC, nE := g.NumItems(), g.NumConsumers(), g.NumEdges()
	// Node layout: 0..nT-1 items, nT..nT+nC-1 consumers, then source, sink.
	src := int32(nT + nC)
	snk := src + 1
	nw := newNetwork(nT + nC + 2)

	for i := 0; i < nT; i++ {
		b := g.IntCapacity(g.ItemID(i))
		if b > 0 {
			nw.addArc(src, int32(i), int32(b), 0)
		}
	}
	for j := 0; j < nC; j++ {
		b := g.IntCapacity(g.ConsumerID(j))
		if b > 0 {
			nw.addArc(int32(nT+j), snk, int32(b), 0)
		}
	}
	edgeArc := make([]int32, nE)
	for i := 0; i < nE; i++ {
		e := g.Edge(i)
		edgeArc[i] = nw.addArc(int32(e.Item), int32(e.Consumer), 1, -e.Weight)
	}

	if err := nw.minCostFlow(src, snk); err != nil {
		return nil, 0, err
	}

	var picked []int32
	var value float64
	for i := 0; i < nE; i++ {
		if nw.arcs[edgeArc[i]].cap == 0 { // saturated forward arc: in the matching
			picked = append(picked, int32(i))
			value += g.Edge(i).Weight
		}
	}
	return picked, value, nil
}

// minCostFlow augments along shortest (most negative total cost) paths
// from src to snk using Bellman-Ford on the residual network, stopping
// when the shortest path cost is non-negative (pushing more flow would
// only decrease the total matched weight).
func (nw *network) minCostFlow(src, snk int32) error {
	n := len(nw.head)
	dist := make([]float64, n)
	prevArc := make([]int32, n)
	inQueue := make([]bool, n)
	for iter := 0; ; iter++ {
		if iter > 16*len(nw.arcs)+64 {
			return fmt.Errorf("flow: augmentation did not converge after %d paths", iter)
		}
		for i := range dist {
			dist[i] = math.Inf(1)
			prevArc[i] = -1
			inQueue[i] = false
		}
		dist[src] = 0
		// SPFA (queue-based Bellman-Ford); costs can be negative but the
		// residual network of a min-cost flow has no negative cycles.
		queue := []int32{src}
		inQueue[src] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			for _, ai := range nw.head[u] {
				a := nw.arcs[ai]
				if a.cap <= 0 {
					continue
				}
				if nd := dist[u] + a.cost; nd < dist[a.to]-1e-12 {
					dist[a.to] = nd
					prevArc[a.to] = ai
					if !inQueue[a.to] {
						queue = append(queue, a.to)
						inQueue[a.to] = true
					}
				}
			}
		}
		if math.IsInf(dist[snk], 1) || dist[snk] >= -1e-12 {
			return nil // no augmenting path with negative cost remains
		}
		// Find bottleneck.
		bottleneck := int32(math.MaxInt32)
		for v := snk; v != src; {
			ai := prevArc[v]
			if nw.arcs[ai].cap < bottleneck {
				bottleneck = nw.arcs[ai].cap
			}
			v = nw.arcs[ai^1].to
		}
		// Augment.
		for v := snk; v != src; {
			ai := prevArc[v]
			nw.arcs[ai].cap -= bottleneck
			nw.arcs[ai^1].cap += bottleneck
			v = nw.arcs[ai^1].to
		}
	}
}
