// ReduceFunc retention fixtures for the noretain rule. A function is a
// reducer when it matches func(K, []V, mapreduce.Emitter[K2, V2]) —
// inside one, the values slice and its sub-slices must not outlive the
// call.
package reduce

import "fix/internal/mapreduce"

type sink struct {
	kept []int
}

var (
	leaked     []int
	globalRows [][]int
	later      func() int
)

func (s *sink) reduceStoresField(key string, values []int, out mapreduce.Emitter[string, int]) error {
	s.kept = values // want `\[noretain\] values slice stored into field kept`
	return nil
}

func reduceAssignsGlobal(key string, values []int, out mapreduce.Emitter[string, int]) error {
	leaked = values // want `\[noretain\] values slice assigned to leaked`
	return nil
}

func reduceAppendsHeader(key string, values []int, out mapreduce.Emitter[string, int]) error {
	globalRows = append(globalRows, values) // want `\[noretain\] append stores the values slice header as an element`
	return nil
}

func reduceSubsliceEscapes(key string, values []int, out mapreduce.Emitter[string, int]) error {
	head := values[:1]
	leaked = head // want `\[noretain\] values slice assigned to leaked`
	return nil
}

func reduceEmitsSlice(key string, values []int, out mapreduce.Emitter[string, []int]) error {
	out.Emit(key, values) // want `\[noretain\] Emit retains its value in the shuffle bucket`
	return nil
}

func reduceCaptures(key string, values []int, out mapreduce.Emitter[string, int]) error {
	later = func() int { // want `\[noretain\] function literal captures the values slice`
		return len(values)
	}
	return nil
}

// reduceClones is the sanctioned idiom: clone before storing, spread
// into append, emit scalars.
func reduceClones(key string, values []int, out mapreduce.Emitter[string, int]) error {
	cp := append([]int(nil), values...)
	leaked = cp
	sum := 0
	for _, v := range values {
		sum += v
	}
	out.Emit(key, sum)
	return nil
}

// notAReducer has no Emitter parameter, so the rule ignores it even
// though it stores its slice argument.
func notAReducer(s *sink, values []int) {
	s.kept = values
}
