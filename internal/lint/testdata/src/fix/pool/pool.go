// sync.Pool check-out/check-in fixtures for the poolpair rule. getBuf
// and putBuf are discovered as wrappers (a function returning its Get
// is a check-out wrapper; one that only Puts is a check-in wrapper).
package pool

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { bufPool.Put(b) }

func leakNoPut() int {
	b := getBuf() // want `\[poolpair\] checked out of bufPool but never checked back in`
	return len(*b)
}

func leakOnEarlyReturn(fail bool) int {
	b := getBuf()
	if fail {
		return -1 // want `\[poolpair\] return leaks the buffer checked out of bufPool`
	}
	n := len(*b)
	putBuf(b)
	return n
}

func balancedDefer() int {
	b := getBuf()
	defer putBuf(b)
	return len(*b)
}

func balancedEveryPath(fail bool) int {
	b := getBuf()
	if fail {
		putBuf(b)
		return -1
	}
	n := len(*b)
	putBuf(b)
	return n
}

// transfersOwnership hands the buffer to the caller: the caller now
// owes the check-in, so no finding here.
func transfersOwnership() *[]byte {
	return getBuf()
}

type holder struct{ buf *[]byte }

// storesIntoField hands the buffer to the holder.
func storesIntoField(h *holder) {
	h.buf = getBuf()
}

func fill(b *[]byte) { *b = append((*b)[:0], 'x') }

// handsToCallee passes the fresh buffer straight to a callee: argument
// position is an ownership transfer.
func handsToCallee() {
	fill(getBuf())
}
