// The file name contains "journal", which marks the receiver types
// declared here as durability writers: the errdrop rule guards every
// error-returning method on them.
package drop

type miniJournal struct{ frames int }

func (j *miniJournal) commit() error { j.frames++; return nil }

// rotate returns no error, so discarding its (absent) result is fine.
func (j *miniJournal) rotate() { j.frames = 0 }
