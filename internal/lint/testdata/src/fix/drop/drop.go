// Dropped-error fixtures for the errdrop rule: cliio calls and
// journal/checkpoint writer methods must not have their errors
// discarded.
package drop

import "fix/internal/cliio"

func dropsCliioClose(out *cliio.Output) {
	out.Close() // want `\[errdrop\] call discards the error from cliio\.Output\.Close`
}

func defersCliioClose(out *cliio.Output) {
	defer out.Close() // want `\[errdrop\] defer discards the error from cliio\.Output\.Close`
}

func goesJournalCommit(j *miniJournal) {
	go j.commit() // want `\[errdrop\] go statement discards the error from miniJournal\.commit`
}

func blanksJournalCommit(j *miniJournal) {
	_ = j.commit() // want `\[errdrop\] blank assignment discards the error from miniJournal\.commit`
}

func propagates(out *cliio.Output, j *miniJournal) error {
	if err := j.commit(); err != nil {
		return err
	}
	return out.Close()
}

// unguardedDrop calls a method with no error result; nothing to guard.
func unguardedDrop(j *miniJournal) {
	j.rotate()
}
