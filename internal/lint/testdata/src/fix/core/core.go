// Package core re-creates the import-path suffix "/core", where the
// determinism rule bans wall-clock reads outright: the algorithms must
// be pure functions of their seeds.
package core

import "time"

func stamp() int64 {
	return time.Now().UnixNano() // want `\[determinism\] time\.Now on a deterministic replay path`
}

func elapsed(start, end time.Time) time.Duration {
	// Fine: arithmetic on caller-supplied times reads no clock.
	return end.Sub(start)
}
