// Package cliio stubs the real checked-output package for the errdrop
// golden tests: everything exported here returns an error the rule
// insists callers must not discard.
package cliio

// Output mirrors the real checked writer.
type Output struct{}

// Write implements io.Writer.
func (*Output) Write(p []byte) (int, error) { return len(p), nil }

// Close is the call whose error proves the bytes landed.
func (*Output) Close() error { return nil }
