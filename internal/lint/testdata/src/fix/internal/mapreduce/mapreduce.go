// Package mapreduce is a minimal stub of the engine's surface for the
// analyzer golden tests: isNamedType matches packages by path suffix,
// so "fix/internal/mapreduce" stands in for the real module path.
package mapreduce

// Pair mirrors the engine's key/value pair.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// Emitter mirrors the engine's emit interface; its name and package
// suffix are what the determinism and noretain rules key on.
type Emitter[K comparable, V any] interface {
	Emit(key K, value V)
}
