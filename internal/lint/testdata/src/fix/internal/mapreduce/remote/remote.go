// Package remote stubs the dist protocol's message-type enum for the
// msgexhaustive golden tests.
package remote

// MsgType mirrors the real protocol enum by name and package suffix.
type MsgType byte

const (
	// MsgHello opens a connection.
	MsgHello MsgType = 1 + iota
	// MsgJob carries work to a worker.
	MsgJob
	// MsgResult carries results back.
	MsgResult
)
