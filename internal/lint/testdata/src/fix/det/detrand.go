// Global-randomness fixtures: the package-level math/rand functions
// draw from the process-wide source and are banned module-wide;
// explicitly seeded generators are fine.
package det

import "math/rand"

func globalRand() int {
	return rand.Intn(10) // want `\[determinism\] rand\.Intn draws from the global process-wide source`
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
