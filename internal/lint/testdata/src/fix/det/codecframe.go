// The file name contains "codec", which puts every function here on a
// deterministic replay path where wall-clock reads are banned.
package det

import "time"

func frameStamp() int64 {
	return time.Now().UnixNano() // want `\[determinism\] time.Now on a deterministic replay path`
}

func frameBudget(d time.Duration) time.Duration {
	// Fine: only Now is banned; duration arithmetic is deterministic.
	return d * 2
}
