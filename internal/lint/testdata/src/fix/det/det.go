// Map-iteration-order fixtures for the determinism rule. Each firing
// line carries a trailing `// want` expectation checked by
// golden_test.go; functions without one must stay finding-free.
package det

import (
	"sort"
	"time"

	"fix/internal/mapreduce"
)

func emitInMapRange(m map[string]int, out mapreduce.Emitter[string, int]) {
	for k, v := range m {
		out.Emit(k, v) // want `\[determinism\] Emit inside a range over a map`
	}
}

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `\[determinism\] append to keys inside a range over a map`
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func loopLocalAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v*2)
		}
		total += len(local)
	}
	return total
}

func clockInSchedulingCode() int64 {
	// Fine: this package is neither internal/core nor a
	// codec/journal/checkpoint/spill file, so wall-clock reads are
	// allowed (heartbeats, deadlines, stats).
	return time.Now().UnixNano()
}
