// Suppression-directive fixtures: a justified //lint:allow silences a
// finding on its line or the line below; missing reasons, unknown
// rules, and stale directives are findings of their own.
package allow

import "fix/internal/cliio"

func suppressedTrailing(out *cliio.Output) {
	out.Close() //lint:allow errdrop — golden fixture: this drop is the suppression test's subject
}

func suppressedAbove(out *cliio.Output) {
	//lint:allow errdrop — golden fixture: the directive on the line above must cover this call
	out.Close()
}

func missingReason(out *cliio.Output) {
	// want+1 `\[directive\] suppression needs a reason`
	//lint:allow errdrop —
	out.Close() // want `\[errdrop\] call discards the error from cliio\.Output\.Close`
}

func unknownRule(out *cliio.Output) error {
	// want+1 `\[directive\] suppression names unknown rule flubber`
	//lint:allow flubber — no analyzer has this name
	return out.Close()
}

func staleSuppression(out *cliio.Output) error {
	// want+1 `\[directive\] stale suppression: no errdrop finding here`
	//lint:allow errdrop — the error below is propagated, so this directive matches nothing
	return out.Close()
}
