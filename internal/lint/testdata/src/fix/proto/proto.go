// MsgType switch-coverage fixtures for the msgexhaustive rule.
package proto

import "fix/internal/mapreduce/remote"

func missingArm(t remote.MsgType) int {
	switch t { // want `\[msgexhaustive\] switch over remote\.MsgType has no default and misses MsgResult`
	case remote.MsgHello:
		return 1
	case remote.MsgJob:
		return 2
	}
	return 0
}

func allArms(t remote.MsgType) int {
	switch t {
	case remote.MsgHello:
		return 1
	case remote.MsgJob:
		return 2
	case remote.MsgResult:
		return 3
	}
	return 0
}

func defaultDecides(t remote.MsgType) int {
	switch t {
	case remote.MsgHello:
		return 1
	default:
		return -1
	}
}

// notMsgType: switches over other types are none of this rule's
// business.
func notMsgType(b byte) int {
	switch b {
	case 1:
		return 1
	}
	return 0
}
