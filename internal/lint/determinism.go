package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// Determinism enforces the repository's central correctness claim: a
// run's output is bit-identical across the memory, spill, and dist
// backends, and across crash/resume replays. Two things break that
// mechanically:
//
//  1. Go map iteration order reaching the output. A `range` over a map
//     whose body calls Emit ships pairs in random order; a body that
//     appends to a slice is only safe if the slice is sorted before it
//     is used, so an append target with no later sort call in the same
//     function is flagged.
//
//  2. Wall-clock or global-randomness reads on replayed paths. time.Now
//     is banned in internal/core (the algorithms must be pure functions
//     of their seeds) and in codec/spill-sort/journal/checkpoint files
//     (bytes that are hashed, CRC'd, replayed, and diffed must not
//     embed clocks). The global math/rand source (rand.Intn etc.) is
//     banned module-wide — deterministic code draws from an explicitly
//     seeded rand.New(rand.NewSource(...)).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: `map iteration order must not reach Emit or unsorted appends; no wall clock or global randomness on replayed paths
Backend equivalence (memory == spill == dist, bit-identical; pinned by
the equivalence and chaos suites since PR 1/5) only holds when nothing
order- or clock-dependent flows into emitted pairs, encoded frames, or
journal records. Sort map-derived slices before use, take time only in
scheduling code, and seed every rand.Rand explicitly.`,
	Run: runDeterminism,
}

// timeBannedFile reports whether base (a file name) is on a replay
// path where wall-clock reads are banned outright.
func timeBannedFile(base string) bool {
	if strings.Contains(base, "codec") || strings.Contains(base, "journal") ||
		strings.Contains(base, "checkpoint") || strings.Contains(base, "spill") {
		return true
	}
	return false
}

// globalRandAllowed lists the math/rand functions that do NOT draw from
// the global source: constructors for explicitly seeded generators.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	corePkg := strings.HasSuffix(pass.Pkg.Path, "/core")
	for _, f := range pass.Pkg.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		banTime := corePkg || timeBannedFile(base)
		ast.Inspect(f, func(n ast.Node) bool {
			nn, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(pass.Pkg.Info, nn)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if banTime && obj.Name() == "Now" {
					pass.Reportf(nn.Pos(), "time.Now on a deterministic replay path (%s); timestamps in encoded or replayed state break bit-identical resume", base)
				}
			case "math/rand", "math/rand/v2":
				fn, isFunc := obj.(*types.Func)
				if !isFunc || globalRandAllowed[fn.Name()] {
					return true
				}
				// Methods on an explicitly constructed rand.Rand are
				// fine; only package-level functions hit the global
				// process-wide source.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					pass.Reportf(nn.Pos(), "rand.%s draws from the global process-wide source; use an explicitly seeded rand.New(rand.NewSource(seed)) so replays reproduce", fn.Name())
				}
			}
			return true
		})
		funcScopes(f, func(_ *ast.FuncType, body *ast.BlockStmt) {
			checkMapRanges(pass, body)
		})
	}
}

// checkMapRanges scans one function scope for `range` statements over
// maps whose iteration order can reach the output. Nested function
// literals are skipped — funcScopes visits them as their own scopes, so
// sort lookups stay within the scope that owns the loop.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		// Look inside the loop body for order-sensitive sinks.
		var emitPos ast.Node
		appended := map[types.Object]ast.Node{}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fn := ast.Unparen(call.Fun).(type) {
			case *ast.SelectorExpr:
				if fn.Sel.Name == "Emit" && emitPos == nil {
					emitPos = call
				}
			case *ast.Ident:
				if fn.Name == "append" && len(call.Args) > 0 {
					if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						obj := info.Uses[id]
						// A target declared inside the loop is fresh
						// each iteration — its element order cannot
						// leak the map's iteration order.
						if obj != nil && !(obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()) {
							if _, have := appended[obj]; !have {
								appended[obj] = call
							}
						}
					}
				}
			}
			return true
		})
		if emitPos != nil {
			pass.Reportf(emitPos.Pos(), "Emit inside a range over a map: pair order follows Go's randomized map iteration and diverges across backends and replays; iterate a sorted key slice instead")
		}
		for obj, at := range appended {
			if !sortedAfter(info, body, rs, obj) {
				pass.Reportf(at.Pos(), "append to %s inside a range over a map with no later sort of %s in this function: element order follows randomized map iteration; sort before use or iterate sorted keys", obj.Name(), obj.Name())
			}
		}
		return true
	})
}

// sortedAfter reports whether obj is passed to a sort-like call after
// the range statement, anywhere later in the enclosing body.
func sortedAfter(info *types.Info, body *ast.BlockStmt, after *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= after.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// isSortCall recognizes the ordering calls used across the repository:
// the sort and slices packages plus the engine's radix helpers
// (sortPairs, radixSortByImage, ...).
func isSortCall(call *ast.CallExpr) bool {
	var name string
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fn.Sel.Name
		// sort.Strings / sort.Ints / slices.Reverse-after-Sort etc.:
		// the package qualifier alone marks an ordering call.
		if id, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			if q := strings.ToLower(id.Name); q == "sort" || q == "slices" {
				return true
			}
		}
	case *ast.Ident:
		name = fn.Name
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			name = id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			name = id.Name
		}
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "sort") || strings.Contains(lower, "radix")
}
