package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A Package is one loaded, type-checked package of a module under
// analysis.
type Package struct {
	// Path is the import path ("repro/internal/mapreduce").
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks module-local packages with no help
// from golang.org/x/tools: module import paths are resolved against
// registered root directories, everything else (the standard library)
// is type-checked from $GOROOT/src by the stdlib "source" importer.
type Loader struct {
	Fset *token.FileSet

	mu    sync.Mutex
	roots map[string]string // module path prefix -> directory
	pkgs  map[string]*Package
	std   types.Importer
}

// stdlib source importing must not try to run cgo; the pure-Go
// fallbacks of net etc. type-check fine. build.Default is package
// state, so flip it once for the process.
var disableCgo = sync.OnceFunc(func() { build.Default.CgoEnabled = false })

// NewLoader returns an empty loader. Register at least one module root
// with AddRoot before loading.
func NewLoader() *Loader {
	disableCgo()
	fset := token.NewFileSet()
	return &Loader{
		Fset:  fset,
		roots: map[string]string{},
		pkgs:  map[string]*Package{},
		std:   importer.ForCompiler(fset, "source", nil),
	}
}

// AddRoot maps import paths beginning with modPath to the directory
// tree rooted at dir. Longest registered prefix wins, so a test can
// re-root a single package ("repro/internal/core" -> a fixture
// directory) on top of a whole-module root.
func (l *Loader) AddRoot(modPath, dir string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.roots[modPath] = dir
}

// ModulePath reads the module path out of dir's go.mod.
func ModulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if p := strings.TrimSpace(rest); p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", dir)
}

// dirFor resolves an import path against the registered roots, or
// returns false when no root covers it (a stdlib path).
func (l *Loader) dirFor(path string) (string, bool) {
	best, bestDir := "", ""
	for mod, dir := range l.roots {
		if path != mod && !strings.HasPrefix(path, mod+"/") {
			continue
		}
		if len(mod) > len(best) {
			best, bestDir = mod, dir
		}
	}
	if best == "" {
		return "", false
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, best), "/")
	return filepath.Join(bestDir, filepath.FromSlash(rel)), true
}

// Load parses and type-checks the package at the given import path
// (memoized), loading module-local dependencies recursively.
func (l *Loader) Load(path string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.load(path)
}

func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("no registered root covers %q", path)
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: importerFunc(l.importPath)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

func (l *Loader) importPath(path string) (*types.Package, error) {
	if _, ok := l.dirFor(path); ok {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// parseDir parses the non-test Go files of one directory.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadModule walks the tree under the root registered for modPath and
// loads every package in it, skipping testdata, hidden, and vendor
// directories. Packages are returned sorted by import path.
func (l *Loader) LoadModule(modPath string) ([]*Package, error) {
	l.mu.Lock()
	root, ok := l.roots[modPath]
	l.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("module %q not registered", modPath)
	}
	seen := map[string]bool{}
	var paths []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		if !seen[ip] {
			seen[ip] = true
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var pkgs []*Package
	for _, ip := range paths {
		p, err := l.Load(ip)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
