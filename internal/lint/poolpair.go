package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolPair enforces the check-out/check-in discipline around the
// sync.Pool instances the hot paths lean on (frameScratchPool and the
// flate reader/writer pools from PR 8, greedyScratchPool from PR 4): a
// function that checks a buffer out of a package-level sync.Pool must
// check it back in on every return path, or hand ownership away
// explicitly (return the value, store it into a struct, pass it to a
// callee). A leaked check-out silently degrades the pool to plain
// allocation — the regression the TestAllocGuard* pins catch, but
// flagged at the call site without running a benchmark.
//
// Wrappers are discovered, not configured: a function that returns the
// value it checks out is a check-out wrapper for that pool
// (getFrameScratch), and a function that only Puts is a check-in
// wrapper (putFrameScratch). Call sites of either count the same as
// direct Get/Put.
var PoolPair = &Analyzer{
	Name: "poolpair",
	Doc: `every sync.Pool check-out needs a check-in on every return path (or explicit ownership transfer)
A missed Put turns the pool into plain allocation under exactly the
load the pool exists for. Prefer a deferred put; when the check-in must
be conditional, transfer ownership by returning or storing the value,
which the rule treats as a hand-off.`,
	Run: runPoolPair,
}

// poolFacts is what one package teaches us about its pools.
type poolFacts struct {
	// pools holds the package-level sync.Pool variables.
	pools map[types.Object]bool
	// getWrappers maps a function object to the pool it checks out of
	// and returns; callers of the wrapper own the value.
	getWrappers map[types.Object]types.Object
	// putWrappers maps a function object to the pool it checks into.
	putWrappers map[types.Object]types.Object
}

func runPoolPair(pass *Pass) {
	facts := gatherPoolFacts(pass)
	if len(facts.pools) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		funcScopes(f, func(_ *ast.FuncType, body *ast.BlockStmt) {
			checkPoolUse(pass, facts, body)
		})
	}
}

// directPoolCall resolves call as a direct <poolvar>.<method>() on a
// known package-level pool.
func directPoolCall(info *types.Info, facts *poolFacts, call *ast.CallExpr, method string) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil && facts.pools[obj] {
		return obj
	}
	return nil
}

// gatherPoolFacts finds the package's sync.Pool variables and their
// get/put wrapper functions.
func gatherPoolFacts(pass *Pass) *poolFacts {
	info := pass.Pkg.Info
	facts := &poolFacts{
		pools:       map[types.Object]bool{},
		getWrappers: map[types.Object]types.Object{},
		putWrappers: map[types.Object]types.Object{},
	}
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.Var)
		if !ok {
			continue
		}
		if isNamedType(obj.Type(), "sync", "Pool") {
			facts.pools[obj] = true
		}
	}
	if len(facts.pools) == 0 {
		return facts
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fobj := info.Defs[fd.Name]
			if fobj == nil {
				continue
			}
			var gets, puts, returnedGets []types.Object
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch nn := n.(type) {
				case *ast.ReturnStmt:
					for _, res := range nn.Results {
						ast.Inspect(res, func(m ast.Node) bool {
							if call, ok := m.(*ast.CallExpr); ok {
								if p := directPoolCall(info, facts, call, "Get"); p != nil {
									returnedGets = append(returnedGets, p)
								}
							}
							return true
						})
					}
				case *ast.CallExpr:
					if p := directPoolCall(info, facts, nn, "Get"); p != nil {
						gets = append(gets, p)
					}
					if p := directPoolCall(info, facts, nn, "Put"); p != nil {
						puts = append(puts, p)
					}
				}
				return true
			})
			if len(gets) == 1 && len(puts) == 0 && len(returnedGets) == 1 {
				facts.getWrappers[fobj] = gets[0]
			}
			if len(puts) == 1 && len(gets) == 0 {
				facts.putWrappers[fobj] = puts[0]
			}
		}
	}
	return facts
}

// checkPoolUse flags unbalanced pool use in one function scope.
func checkPoolUse(pass *Pass, facts *poolFacts, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// poolFor resolves a call to the pool it checks out of / into,
	// through direct method calls or the package's wrappers.
	poolFor := func(call *ast.CallExpr, method string, wrappers map[types.Object]types.Object) types.Object {
		if p := directPoolCall(info, facts, call, method); p != nil {
			return p
		}
		if obj := calleeObj(info, call); obj != nil {
			return wrappers[obj]
		}
		return nil
	}

	// One walk, excluding nested function literals (their own scopes),
	// building a parent map plus the node lists we classify below.
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	var getCalls, putCalls []*ast.CallExpr
	var returns []*ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		switch nn := n.(type) {
		case *ast.CallExpr:
			if poolFor(nn, "Get", facts.getWrappers) != nil {
				getCalls = append(getCalls, nn)
			}
			if poolFor(nn, "Put", facts.putWrappers) != nil {
				putCalls = append(putCalls, nn)
			}
		case *ast.ReturnStmt:
			returns = append(returns, nn)
		}
		return true
	})
	if len(getCalls) == 0 {
		return
	}

	type usage struct {
		firstGet token.Pos
		puts     []*ast.CallExpr
		deferPut bool
	}
	use := map[types.Object]*usage{}

	// Classify each check-out by walking up the parent chain: reaching
	// a return hands the value to the caller; assignment into a field/
	// index/deref hands it to the containing object; argument position
	// in another call hands it to the callee. Anything else is a local
	// check-out this function must balance.
	for _, g := range getCalls {
		pool := poolFor(g, "Get", facts.getWrappers)
		escapes := false
		var n ast.Node = g
	walkUp:
		for {
			p := parents[n]
			if p == nil {
				break
			}
			switch pp := p.(type) {
			case *ast.ReturnStmt:
				escapes = true
				break walkUp
			case *ast.AssignStmt:
				if len(pp.Lhs) == len(pp.Rhs) {
					for i, rhs := range pp.Rhs {
						if rhs != n {
							continue
						}
						switch ast.Unparen(pp.Lhs[i]).(type) {
						case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
							escapes = true
						}
					}
				}
				break walkUp
			case *ast.CallExpr:
				// g is an argument of another call (not a put — puts
				// are counted, not escapes): ownership handed to the
				// callee.
				if poolFor(pp, "Put", facts.putWrappers) == nil {
					escapes = true
				}
				break walkUp
			case *ast.ExprStmt, *ast.BlockStmt:
				break walkUp
			default:
				n = p // parens, type asserts, value specs, ...
			}
		}
		if escapes {
			continue
		}
		u := use[pool]
		if u == nil {
			u = &usage{firstGet: g.Pos()}
			use[pool] = u
		} else if g.Pos() < u.firstGet {
			u.firstGet = g.Pos()
		}
	}
	if len(use) == 0 {
		return
	}
	for _, p := range putCalls {
		pool := poolFor(p, "Put", facts.putWrappers)
		u := use[pool]
		if u == nil {
			continue
		}
		u.puts = append(u.puts, p)
		if _, ok := parents[p].(*ast.DeferStmt); ok {
			u.deferPut = true
		}
	}

	// enclosingBlock finds the nearest BlockStmt ancestor of n.
	enclosingBlock := func(n ast.Node) ast.Node {
		for p := parents[n]; p != nil; p = parents[p] {
			if _, ok := p.(*ast.BlockStmt); ok {
				return p
			}
		}
		return body
	}

	for pool, u := range use {
		name := pool.Name()
		if len(u.puts) == 0 {
			pass.Reportf(u.firstGet, "checked out of %s but never checked back in (no Put on any path): the pool degrades to plain allocation — add a check-in, prefer defer", name)
			continue
		}
		if u.deferPut {
			continue // a deferred put covers every return path
		}
		// No defer: every return after the check-out must be preceded
		// by a check-in that lexically dominates it — a put earlier in
		// the same block or in an enclosing block. This accepts the
		// early-return idiom (put inside the `if` that returns, final
		// put at the outer level) and flags the `if err { return }`
		// with no put inside.
		for _, r := range returns {
			if r.Pos() <= u.firstGet {
				continue
			}
			ancestors := map[ast.Node]bool{}
			for p := ast.Node(r); p != nil; p = parents[p] {
				ancestors[p] = true
			}
			covered := false
			for _, p := range u.puts {
				if p.End() <= r.Pos() && ancestors[enclosingBlock(p)] {
					covered = true
					break
				}
			}
			if !covered {
				pass.Reportf(r.Pos(), "return leaks the buffer checked out of %s at line %d: no check-in on this path — put before returning, or move the check-in to a defer", name, pass.Fset.Position(u.firstGet).Line)
			}
		}
	}
}
