package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// MsgExhaustive keeps the two ends of the dist protocol honest: every
// `switch` over remote.MsgType must either handle every declared
// message type or carry a default clause that decides what an
// unhandled frame means. PRs 6–9 each added message types (MsgAbort/
// MsgAborted, MsgPing/MsgPong, MsgCkpt/MsgSeed/MsgShed, resume acks),
// and each addition had to be hand-audited against every dispatch
// switch on the coordinator and the worker; a missed arm shows up at
// runtime as a frame silently dropped or a hung round, not a compile
// error.
var MsgExhaustive = &Analyzer{
	Name: "msgexhaustive",
	Doc: `a switch over remote.MsgType must handle every declared message type or carry a default
New protocol messages are added on one endpoint first; this rule turns
"the other endpoint forgot" from a hung round into a lint finding. A
default clause that rejects or logs unknown frames also satisfies the
rule — the point is that unhandled is a decision, not an accident.`,
	Run: runMsgExhaustive,
}

func runMsgExhaustive(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := info.Types[sw.Tag]
			if !ok {
				return true
			}
			named := namedFrom(tv.Type)
			if named == nil || !isNamedType(tv.Type, "internal/mapreduce/remote", "MsgType") {
				return true
			}
			declared := declaredMsgTypes(named.Obj().Pkg())
			if len(declared) == 0 {
				return true
			}
			covered := map[string]bool{}
			hasDefault := false
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					etv, ok := info.Types[e]
					if !ok || etv.Value == nil {
						continue
					}
					covered[constant.ToInt(etv.Value).ExactString()] = true
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for val, name := range declared {
				if !covered[val] {
					missing = append(missing, name)
				}
			}
			if len(missing) > 0 {
				sort.Strings(missing)
				pass.Reportf(sw.Pos(), "switch over remote.MsgType has no default and misses %s: an unhandled frame is dropped silently at runtime — add the arm(s) or a default that decides", strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// declaredMsgTypes collects the package-level constants of the MsgType
// type from its defining package, keyed by exact constant value so
// aliases of one value count once (the first name in scope order wins).
func declaredMsgTypes(pkg *types.Package) map[string]string {
	out := map[string]string{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named := namedFrom(c.Type())
		if named == nil || named.Obj().Name() != "MsgType" {
			continue
		}
		key := constant.ToInt(c.Val()).ExactString()
		if _, have := out[key]; !have {
			out[key] = name
		}
	}
	return out
}
