package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

// The golden fixtures under testdata/src/fix form a fake module root
// ("fix") whose packages re-create the shapes each analyzer keys on:
// path suffixes (internal/mapreduce, internal/cliio, /core), file-name
// conventions (codec*, journal*), and type names (Emitter, MsgType,
// sync.Pool). Expectations are written in the fixtures themselves:
//
//	out.Emit(k, v) // want `\[determinism\] Emit inside a range`
//
// A want comment holds one or more backquoted regexes, each of which
// must match a diagnostic (rendered "[rule] message") on the comment's
// line; `// want+N` shifts the expected line down by N (used where the
// diagnostic lands on a //lint:allow comment line, which cannot carry
// a second comment). Every diagnostic must be claimed by some want and
// every want must match some diagnostic, so the fixtures pin firing
// and non-firing behavior at once.
var (
	wantComment = regexp.MustCompile(`^//[ \t]*want([+-][0-9]+)?[ \t]+(.*)$`)
	wantPattern = regexp.MustCompile("`([^`]+)`")
)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	src     string // where the want comment lives, for error messages
	matched bool
}

func loadFixtures(t *testing.T) (*Loader, []*Package) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", "fix"))
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader()
	l.AddRoot("fix", root)
	pkgs, err := l.LoadModule("fix")
	if err != nil {
		t.Fatal(err)
	}
	return l, pkgs
}

func collectWants(t *testing.T, l *Loader, pkgs []*Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantComment.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := l.Fset.Position(c.Pos())
					offset := 0
					if m[1] != "" {
						offset, _ = strconv.Atoi(m[1])
					}
					pats := wantPattern.FindAllStringSubmatch(m[2], -1)
					if len(pats) == 0 {
						t.Errorf("%s: want comment with no backquoted pattern: %s", pos, c.Text)
						continue
					}
					for _, p := range pats {
						re, err := regexp.Compile(p[1])
						if err != nil {
							t.Errorf("%s: bad want pattern %q: %v", pos, p[1], err)
							continue
						}
						wants = append(wants, &expectation{
							file: pos.Filename,
							line: pos.Line + offset,
							re:   re,
							src:  fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
						})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("no want expectations found in fixtures")
	}
	return wants
}

func TestGolden(t *testing.T) {
	l, pkgs := loadFixtures(t)
	wants := collectWants(t, l, pkgs)
	diags := Run(l.Fset, pkgs, All())

	for _, d := range diags {
		rendered := fmt.Sprintf("[%s] %s", d.Rule, d.Message)
		claimed := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(rendered) {
				w.matched = true
				claimed = true
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic on line %d matched %q", w.src, w.line, w.re)
		}
	}
}

// TestGoldenDiagnosticsSorted pins the driver-facing contract that Run
// returns findings in file/line order, so repolint output is stable
// across runs.
func TestGoldenDiagnosticsSorted(t *testing.T) {
	l, pkgs := loadFixtures(t)
	diags := Run(l.Fset, pkgs, All())
	if len(diags) < 2 {
		t.Fatalf("expected several findings, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("diagnostics out of order: %s then %s", a, b)
		}
	}
}
