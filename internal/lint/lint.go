// Package lint is a stdlib-only static-analysis framework that
// machine-checks the engine's determinism, pooling, and protocol
// invariants. Nine PRs of growth stacked up rules that existed only as
// prose in ARCHITECTURE.md — outputs must be bit-identical across
// memory/spill/dist backends, ReduceFunc values slices must not be
// retained, pooled buffers must be checked back in, every MsgType must
// be handled on both protocol endpoints, journal/checkpoint/cliio
// errors must not be dropped — and each of PRs 6–9 shipped a real bug a
// mechanical check would have caught. This package encodes those rules
// as analyzers over go/ast + go/parser + go/types (no golang.org/x/
// tools: the repository is zero-dependency), and cmd/repolint runs them
// over the whole module in CI.
//
// A finding is suppressed by an annotation on the offending line (or
// the line directly above):
//
//	//lint:allow <rule> — <reason>
//
// The reason is mandatory, and a directive that no longer matches a
// finding is itself reported as stale, so suppressions cannot rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check. Run inspects a single
// type-checked package and reports findings through the Pass.
type Analyzer struct {
	// Name is the rule identifier printed in brackets and named by
	// //lint:allow directives. Lowercase, no spaces.
	Name string
	// Doc is a short description shown by `repolint -list`. The first
	// line is the summary; later lines elaborate.
	Doc string
	// Run analyzes one package.
	Run func(*Pass)
}

// A Pass carries one analyzer's view of one package under analysis.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: where, which rule, and what.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the driver's canonical `file:line: [rule] message`
// form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Run applies every analyzer to every package and resolves //lint:allow
// directives: suppressed findings are dropped, malformed or stale
// directives become findings of their own. The result is sorted by
// position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, diags: &raw}
			a.Run(pass)
		}
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var dirs []directive
	for _, pkg := range pkgs {
		dirs = append(dirs, collectDirectives(fset, pkg.Files)...)
	}
	out := applyDirectives(raw, dirs, known)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// ---- shared type/AST helpers used by the analyzers ----

// namedFrom unwraps aliases and generic instantiation down to the
// *types.Named behind t, or nil.
func namedFrom(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Pointer:
			t = tt.Elem()
		default:
			return nil
		}
	}
}

// isNamedType reports whether t (possibly behind a pointer or an
// instantiation) is the named type pkgPathSuffix.name. The package is
// matched by path suffix so the check holds both for the real module
// path and for test fixtures that re-root a package.
func isNamedType(t types.Type, pkgPathSuffix, name string) bool {
	n := namedFrom(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgPathSuffix || strings.HasSuffix(p, pkgPathSuffix)
}

// calleeObj resolves the object a call expression invokes, through
// parens and selectors. Returns nil for indirect calls and conversions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			return info.Uses[id]
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			return info.Uses[id]
		}
	}
	return nil
}

// funcScopes walks every function body in the file — declarations and
// literals — calling fn with the func type and body.
func funcScopes(f *ast.File, fn func(ft *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Type, d.Body)
			}
		case *ast.FuncLit:
			fn(d.Type, d.Body)
		}
		return true
	})
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// returnsError reports whether the signature's last result is error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.Implements(res.At(res.Len()-1).Type(), errorType)
}
