package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// A directive is one parsed //lint:allow comment. It suppresses
// findings of the named rules on its own line (a trailing comment) or
// on the line directly below (a standalone comment line).
type directive struct {
	pos    token.Position
	rules  []string
	reason string
	// usedRules marks the rules that suppressed at least one finding; a
	// listed rule that suppresses nothing is stale and becomes a
	// finding itself.
	usedRules map[string]bool
	// malformed carries a parse problem (missing reason, empty rule
	// list) reported instead of honoring the directive.
	malformed string
}

const allowPrefix = "//lint:allow"

// parseAllow parses one comment's text. Returns false when the comment
// is not a lint directive at all.
//
// Grammar: //lint:allow rule[,rule...] — reason
// The em dash may also be written "--" or a single "-" surrounded by
// spaces. The reason is mandatory: a suppression with no recorded
// justification is how invariants rot.
func parseAllow(text string) (rules []string, reason string, malformed string, ok bool) {
	if !strings.HasPrefix(text, allowPrefix) {
		return nil, "", "", false
	}
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", "", false // e.g. //lint:allowed — not ours
	}
	rest = strings.TrimSpace(rest)
	var rulePart string
	for _, sep := range []string{"—", " -- ", " - "} {
		if i := strings.Index(rest, sep); i >= 0 {
			rulePart, reason = strings.TrimSpace(rest[:i]), strings.TrimSpace(rest[i+len(sep):])
			break
		}
	}
	if rulePart == "" {
		return nil, "", "suppression needs a reason: //lint:allow <rule> — <reason>", true
	}
	for _, r := range strings.Split(rulePart, ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules = append(rules, r)
		}
	}
	if len(rules) == 0 {
		return nil, "", "suppression names no rule: //lint:allow <rule> — <reason>", true
	}
	if reason == "" {
		return nil, "", "suppression needs a reason: //lint:allow <rule> — <reason>", true
	}
	return rules, reason, "", true
}

// collectDirectives extracts every //lint:allow directive in the files.
func collectDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, reason, malformed, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				out = append(out, directive{
					pos:       fset.Position(c.Pos()),
					rules:     rules,
					reason:    reason,
					malformed: malformed,
				})
			}
		}
	}
	return out
}

// applyDirectives drops suppressed findings and appends directive
// findings: malformed directives, directives naming unknown rules, and
// stale directives that matched nothing.
func applyDirectives(diags []Diagnostic, dirs []directive, knownRules map[string]bool) []Diagnostic {
	// Index directives by (file, line they cover). A directive on line
	// L covers L (trailing comment); a directive alone on its line
	// covers L+1 as well — cheaper to always cover both than to decide
	// whether the comment trails code, and a directive that ends up
	// covering two findings of the rule suppresses both, which is what
	// the author wrote.
	type key struct {
		file string
		line int
		rule string
	}
	idx := map[key][]*directive{}
	for i := range dirs {
		d := &dirs[i]
		if d.malformed != "" {
			continue
		}
		d.usedRules = map[string]bool{}
		for _, r := range d.rules {
			idx[key{d.pos.Filename, d.pos.Line, r}] = append(idx[key{d.pos.Filename, d.pos.Line, r}], d)
			idx[key{d.pos.Filename, d.pos.Line + 1, r}] = append(idx[key{d.pos.Filename, d.pos.Line + 1, r}], d)
		}
	}
	var out []Diagnostic
	for _, dg := range diags {
		if ds := idx[key{dg.Pos.Filename, dg.Pos.Line, dg.Rule}]; len(ds) > 0 {
			for _, d := range ds {
				d.usedRules[dg.Rule] = true
			}
			continue
		}
		out = append(out, dg)
	}
	for i := range dirs {
		d := &dirs[i]
		if d.malformed != "" {
			out = append(out, Diagnostic{Pos: d.pos, Rule: "directive", Message: d.malformed})
			continue
		}
		for _, r := range d.rules {
			switch {
			case d.usedRules[r]:
			case !knownRules[r]:
				out = append(out, Diagnostic{Pos: d.pos, Rule: "directive",
					Message: "suppression names unknown rule " + r + " (see repolint -list)"})
			default:
				out = append(out, Diagnostic{Pos: d.pos, Rule: "directive",
					Message: "stale suppression: no " + r + " finding here — remove the //lint:allow"})
			}
		}
	}
	return out
}
