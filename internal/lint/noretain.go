package lint

import (
	"go/ast"
	"go/types"
)

// NoRetain enforces the ReduceFunc values-slice contract established in
// PR 4: the engine round-recycles the backing arrays of the values
// slice it hands a reducer (BufferPool/roundArena), so a reducer that
// stores the slice — or a sub-slice sharing the backing array — into
// anything that outlives the call reads recycled memory next round.
// Retainers must clone (append([]V(nil), values...) / slices.Clone /
// CollectValues, which clones since PR 4).
//
// A function is a reducer when its signature matches the ReduceFunc
// shape: func(K, []V, mapreduce.Emitter[K2, V2]) error. Inside one, the
// analyzer tracks the values parameter and every local alias of it
// (x := values, x := values[i:j]) and flags:
//   - assignment of the slice (or a sub-slice) to a field, index
//     expression, dereference, or any variable declared outside the
//     reducer;
//   - append(dst, values) — storing the slice header as an element
//     (append(dst, values...) copies elements and is fine);
//   - Emit(k, values) — buckets retain emitted values across the call;
//   - capture by a nested function literal, which may outlive the call.
var NoRetain = &Analyzer{
	Name: "noretain",
	Doc: `a ReduceFunc must not retain its values slice (or a sub-slice) beyond the call
The engine recycles the slice's backing array into the next round's
buffers (PR 4's BufferPool/roundArena), so retained headers silently
alias recycled memory. Clone before storing: append([]V(nil), vals...),
slices.Clone, or CollectValues.`,
	Run: runNoRetain,
}

func runNoRetain(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		funcScopes(f, func(ft *ast.FuncType, body *ast.BlockStmt) {
			valuesObj := reduceValuesParam(info, ft)
			if valuesObj == nil {
				return
			}
			checkRetention(pass, body, valuesObj)
		})
	}
}

// reduceValuesParam returns the object of the values parameter when ft
// has the ReduceFunc shape, else nil.
func reduceValuesParam(info *types.Info, ft *ast.FuncType) types.Object {
	if ft.Params == nil || ft.Params.NumFields() != 3 || len(ft.Params.List) != 3 {
		return nil
	}
	// Third parameter must be the engine's Emitter.
	emitField := ft.Params.List[2]
	tv, ok := info.Types[emitField.Type]
	if !ok || !isNamedType(tv.Type, "internal/mapreduce", "Emitter") {
		return nil
	}
	// Second parameter must be a slice, and named so it can be tracked.
	valField := ft.Params.List[1]
	vtv, ok := info.Types[valField.Type]
	if !ok {
		return nil
	}
	if _, isSlice := vtv.Type.Underlying().(*types.Slice); !isSlice {
		return nil
	}
	if len(valField.Names) != 1 || valField.Names[0].Name == "_" {
		return nil
	}
	return info.Defs[valField.Names[0]]
}

// checkRetention walks a reducer body in source order, growing the
// alias set as locals bind to the values slice and reporting escapes.
func checkRetention(pass *Pass, body *ast.BlockStmt, values types.Object) {
	info := pass.Pkg.Info
	aliases := map[types.Object]bool{values: true}

	// isAliasExpr reports whether e denotes the values slice or a
	// sub-slice of it: an alias identifier, a slice expression over an
	// alias, or parens around either. values[i] (one element) is a
	// value copy and is fine.
	var isAliasExpr func(e ast.Expr) bool
	isAliasExpr = func(e ast.Expr) bool {
		switch ee := ast.Unparen(e).(type) {
		case *ast.Ident:
			return aliases[info.Uses[ee]]
		case *ast.SliceExpr:
			return isAliasExpr(ee.X)
		}
		return false
	}

	// localObj resolves an assignment LHS identifier to its object when
	// the identifier is declared inside this reducer body.
	localObj := func(e ast.Expr) (types.Object, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return nil, false
		}
		local := obj.Pos() >= body.Pos() && obj.Pos() < body.End()
		return obj, local
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range nn.Rhs {
				if len(nn.Lhs) != len(nn.Rhs) {
					break // multi-value call on the RHS: no alias flows
				}
				if !isAliasExpr(rhs) {
					continue
				}
				lhs := ast.Unparen(nn.Lhs[i])
				switch lt := lhs.(type) {
				case *ast.Ident:
					if lt.Name == "_" {
						continue
					}
					if obj, local := localObj(lt); local {
						aliases[obj] = true // x := values — track the alias
						continue
					}
					pass.Reportf(rhs.Pos(), "values slice assigned to %s, which outlives the reduce call: the engine recycles its backing array next round — clone first", lt.Name)
				case *ast.SelectorExpr:
					pass.Reportf(rhs.Pos(), "values slice stored into field %s: fields outlive the reduce call and the engine recycles the backing array — clone first", lt.Sel.Name)
				default: // index expr, star expr, ...
					pass.Reportf(rhs.Pos(), "values slice stored through %T, which outlives the reduce call: clone before storing", lhs)
				}
			}
		case *ast.CallExpr:
			switch fn := ast.Unparen(nn.Fun).(type) {
			case *ast.Ident:
				if fn.Name == "append" && len(nn.Args) > 1 {
					for i, arg := range nn.Args[1:] {
						if nn.Ellipsis.IsValid() && i+1 == len(nn.Args)-1 {
							continue // append(dst, values...) copies elements: fine
						}
						if isAliasExpr(arg) {
							pass.Reportf(arg.Pos(), "append stores the values slice header as an element; the backing array is recycled next round — append a clone, or copy elements with values...")
						}
					}
				}
			case *ast.SelectorExpr:
				if fn.Sel.Name == "Emit" {
					for _, arg := range nn.Args {
						if isAliasExpr(arg) {
							pass.Reportf(arg.Pos(), "Emit retains its value in the shuffle bucket past this call; emitting the values slice aliases recycled memory — emit a clone")
						}
					}
				}
			}
		case *ast.FuncLit:
			// A nested literal capturing the slice may run after the
			// reduce call returns (goroutine, stored callback).
			captured := false
			ast.Inspect(nn.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && aliases[info.Uses[id]] {
					captured = true
				}
				return !captured
			})
			if captured {
				pass.Reportf(nn.Pos(), "function literal captures the values slice; if it outlives the reduce call it reads recycled memory — clone into the closure")
			}
			return false // literal's own assignments judged by the capture rule
		}
		return true
	})
}
