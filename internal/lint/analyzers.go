package lint

// All returns every analyzer, in the order repolint runs and lists
// them. Each rule encodes an invariant a previous PR established (and
// in several cases debugged the hard way); ARCHITECTURE.md's
// "Invariants & static analysis" section maps rules to PRs.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		NoRetain,
		PoolPair,
		MsgExhaustive,
		ErrDrop,
	}
}
