package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// ErrDrop bans discarding the error results that the repository's
// durability story depends on. PR 5's bugfix round found every CLI
// silently swallowing output-write errors (a full disk produced a
// truncated graph and exit 0) and funneled them through internal/cliio,
// whose Close is the only proof the bytes landed; PRs 6 and 9 added
// checkpoint and journal writers whose dropped errors turn into
// unresumable runs discovered only at recovery time. This rule flags a
// call whose error is discarded — an expression statement, a `defer`,
// a `go`, or an explicit blank assignment — when the callee is:
//
//   - anything exported by internal/cliio (Output.Close/Write/CloseInto
//     are how CLI bytes get checked), or
//   - an error-returning method on a journal or checkpoint writer,
//     identified by the receiver type being declared in a file whose
//     name contains "journal" or "checkpoint" (distJournal,
//     checkpointWriter today; future writers inherit the rule by
//     following the file-naming convention).
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: `do not discard errors from cliio, journal, or checkpoint writers
A dropped Close/commit error is a run that claims success with bytes
missing: truncated CLI output (exit 0 on ENOSPC), a checkpoint that
cannot reseed, a journal that cannot resume. Propagate it, or suppress
with an explicit reason.`,
	Run: runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(nn.X).(*ast.CallExpr); ok {
					checkDroppedCall(pass, call, "call discards")
				}
			case *ast.DeferStmt:
				checkDroppedCall(pass, nn.Call, "defer discards")
			case *ast.GoStmt:
				checkDroppedCall(pass, nn.Call, "go statement discards")
			case *ast.AssignStmt:
				// x, _ = f() / _ = f(): flag when a blank identifier
				// lines up with the error result of a guarded callee.
				checkBlankAssign(pass, nn)
			}
			return true
		})
	}
}

// guardedCallee reports whether the call's target is one whose error
// the repository has decided must never be dropped, and a short label
// for the finding.
func guardedCallee(pass *Pass, call *ast.CallExpr) (string, bool) {
	obj := calleeObj(pass.Pkg.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return "", false
	}
	if pkg := fn.Pkg(); pkg != nil && strings.HasSuffix(pkg.Path(), "internal/cliio") {
		return "cliio." + callLabel(fn), true
	}
	if recv := sig.Recv(); recv != nil {
		named := namedFrom(recv.Type())
		if named != nil && named.Obj().Pos().IsValid() {
			base := filepath.Base(pass.Fset.Position(named.Obj().Pos()).Filename)
			if strings.Contains(base, "journal") || strings.Contains(base, "checkpoint") {
				return callLabel(fn), true
			}
		}
	}
	return "", false
}

// callLabel renders Recv.Name or Name for the finding text.
func callLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedFrom(sig.Recv().Type()); named != nil {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

func checkDroppedCall(pass *Pass, call *ast.CallExpr, how string) {
	if label, ok := guardedCallee(pass, call); ok {
		pass.Reportf(call.Pos(), "%s the error from %s: this error is the only proof the bytes landed (see internal/cliio) — propagate it", how, label)
	}
}

func checkBlankAssign(pass *Pass, as *ast.AssignStmt) {
	// Single call on the RHS feeding all LHS slots, or 1:1 assignment.
	if len(as.Rhs) == 1 && len(as.Lhs) >= 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		label, ok := guardedCallee(pass, call)
		if !ok {
			return
		}
		// The error is the last result; it lines up with the last LHS.
		last, ok := ast.Unparen(as.Lhs[len(as.Lhs)-1]).(*ast.Ident)
		if ok && last.Name == "_" {
			pass.Reportf(as.Pos(), "blank assignment discards the error from %s: this error is the only proof the bytes landed — propagate it (or //lint:allow errdrop with the reason it cannot matter here)", label)
		}
		return
	}
	for i, rhs := range as.Rhs {
		if len(as.Lhs) != len(as.Rhs) {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		label, ok := guardedCallee(pass, call)
		if !ok {
			continue
		}
		if id, isID := ast.Unparen(as.Lhs[i]).(*ast.Ident); isID && id.Name == "_" {
			pass.Reportf(as.Pos(), "blank assignment discards the error from %s: this error is the only proof the bytes landed — propagate it", label)
		}
	}
}
