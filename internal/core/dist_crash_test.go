package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/mapreduce"
)

// The coordinator-crash chaos suite re-executes this test binary as a
// coordinator child process: the child runs one matching algorithm over
// an in-process dist cluster with a run journal, and — on the first
// execution — SIGKILLs itself mid-run via the journal's deterministic
// crash hook. The parent then re-executes it with Resume set and diffs
// the completed result against a fault-free memory run.
const (
	crashChildEnv  = "CORE_DIST_CRASH_CHILD" // algorithm name; presence selects child mode
	crashDirEnv    = "CORE_DIST_CRASH_DIR"
	crashAfterEnv  = "CORE_DIST_CRASH_AFTER"
	crashResumeEnv = "CORE_DIST_CRASH_RESUME"
	crashOutEnv    = "CORE_DIST_CRASH_OUT"
)

func TestMain(m *testing.M) {
	if os.Getenv(crashChildEnv) != "" {
		os.Exit(runCrashChild())
	}
	os.Exit(m.Run())
}

// crashGraph is the fixed workload of the coordinator-crash suite; the
// child and the parent's memory reference must build the exact same
// graph.
func crashGraph() *graph.Bipartite {
	return graph.RandomBipartite(graph.RandomConfig{
		NumItems: 16, NumConsumers: 12, EdgeProb: 0.4,
		MaxWeight: 3, MaxCapacity: 3, Seed: 17,
	})
}

// crashRunners enumerates all four MapReduce matching algorithms with
// fixed seeds, shared between the child and the parent's reference run.
func crashRunners(ctx context.Context, g *graph.Bipartite) []struct {
	name string
	run  func(mr mapreduce.Config) (*Result, error)
} {
	return []struct {
		name string
		run  func(mr mapreduce.Config) (*Result, error)
	}{
		{"greedymr", func(mr mapreduce.Config) (*Result, error) {
			return GreedyMR(ctx, g.Clone(), GreedyMROptions{MR: mr})
		}},
		{"stackmr", func(mr mapreduce.Config) (*Result, error) {
			return StackMR(ctx, g.Clone(), StackOptions{MR: mr, Eps: 1, Seed: 5})
		}},
		{"stackgreedymr", func(mr mapreduce.Config) (*Result, error) {
			return StackGreedyMR(ctx, g.Clone(), StackOptions{MR: mr, Eps: 0.5, Seed: 5})
		}},
		{"stackmrstrict", func(mr mapreduce.Config) (*Result, error) {
			return StackMRStrict(ctx, g.Clone(), StackOptions{MR: mr, Eps: 1, Seed: 5})
		}},
	}
}

// formatCrashResult renders the bit-identity fingerprint the suite
// compares: matching value, round count, and every matched edge.
func formatCrashResult(res *Result) string {
	return fmt.Sprintf("value=%v rounds=%d edges=%v\n",
		res.Matching.Value(), res.Rounds, res.Matching.Edges())
}

// runCrashChild is the coordinator child: in-process workers over
// loopback, a journaling cluster, one algorithm. With a crash budget it
// never returns — the journal hook SIGKILLs the process mid-run.
func runCrashChild() int {
	algo := os.Getenv(crashChildEnv)
	after, _ := strconv.Atoi(os.Getenv(crashAfterEnv))
	g := crashGraph()
	RegisterDistJobs(g)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	cl, err := mapreduce.StartDistCluster(2, mapreduce.DistClusterOptions{
		Timeout:           30 * time.Second,
		JournalDir:        os.Getenv(crashDirEnv),
		Resume:            os.Getenv(crashResumeEnv) == "1",
		JournalCrashAfter: after,
		OnListen: func(addr string) {
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					mapreduce.ServeDistWorkerOpts(ctx, addr, mapreduce.DistWorkerOptions{})
				}()
			}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child: start cluster:", err)
		return 1
	}
	mr := mapreduce.Config{
		Mappers: 2, Reducers: 2,
		Shuffle: mapreduce.ShuffleConfig{Backend: mapreduce.ShuffleDist},
		Dist:    cl,
	}
	var res *Result
	for _, r := range crashRunners(ctx, g) {
		if r.name == algo {
			res, err = r.run(mr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash child: %s: %v\n", algo, err)
		return 1
	}
	if res == nil {
		fmt.Fprintf(os.Stderr, "crash child: unknown algorithm %q\n", algo)
		return 1
	}
	if err := os.WriteFile(os.Getenv(crashOutEnv), []byte(formatCrashResult(res)), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		return 1
	}
	// The parent asserts on this line: a resumed child must have
	// satisfied at least one job from the journal, or the bit-identical
	// result proves nothing about resume.
	fmt.Printf("jobs-replayed=%d\n", cl.RecoveryStats().JobsReplayed)
	if err := cl.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "crash child: close:", err)
		return 1
	}
	cancel()
	wg.Wait()
	return 0
}

// TestDistMatchingSurvivesCoordinatorCrash is the journal's acceptance
// gate at the algorithm level: for every MapReduce matching algorithm, a
// coordinator process is SIGKILLed mid-run — mid-journal-append, by the
// deterministic crash hook — and a restarted coordinator over fresh
// workers resumes from the journal and completes with a matching
// bit-identical to the fault-free memory run.
func TestDistMatchingSurvivesCoordinatorCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns coordinator processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	g := crashGraph()
	memMR := mapreduce.Config{Mappers: 2, Reducers: 2}
	for _, r := range crashRunners(ctx, g) {
		t.Run(r.name, func(t *testing.T) {
			mem, err := r.run(memMR)
			if err != nil {
				t.Fatalf("memory: %v", err)
			}
			want := formatCrashResult(mem)

			dir := t.TempDir()
			jdir := filepath.Join(dir, "journal")
			out := filepath.Join(dir, "result")
			child := func(after int, resume bool) (string, error) {
				cmd := exec.Command(exe, "-test.run=none")
				cmd.Env = append(os.Environ(),
					crashChildEnv+"="+r.name,
					crashDirEnv+"="+jdir,
					crashAfterEnv+"="+strconv.Itoa(after),
					crashResumeEnv+"="+map[bool]string{false: "0", true: "1"}[resume],
					crashOutEnv+"="+out,
				)
				var buf bytes.Buffer
				cmd.Stdout = &buf
				cmd.Stderr = &buf
				err := cmd.Run()
				return buf.String(), err
			}

			// First execution: the journal hook SIGKILLs the coordinator
			// after its 3rd record — mid-run for every algorithm here.
			logs, err := child(3, false)
			if err == nil {
				t.Fatalf("crash run exited cleanly — the SIGKILL hook never fired\n%s", logs)
			}
			var exitErr *exec.ExitError
			if !errors.As(err, &exitErr) || exitErr.ProcessState.ExitCode() != -1 {
				t.Fatalf("crash run died of %v, want a signal death\n%s", err, logs)
			}

			// Second execution: resume from the journal and complete.
			logs, err = child(0, true)
			if err != nil {
				t.Fatalf("resumed run: %v\n%s", err, logs)
			}
			var replayed int
			if _, serr := fmt.Sscanf(logs, "jobs-replayed=%d", &replayed); serr != nil || replayed < 1 {
				t.Fatalf("resumed run replayed %d jobs from the journal (parse err %v)\n%s", replayed, serr, logs)
			}
			got, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != want {
				t.Fatalf("resumed matching diverges from memory run:\nresumed %s\nmemory  %s", got, want)
			}
		})
	}
}
