package core

import (
	"cmp"
	"slices"
	"sort"

	"repro/internal/graph"
	"repro/internal/mapreduce"
)

// The MapReduce matching algorithms use a "node-based" representation of
// the graph (paper Section 5.3): the input and output of every job is a
// consistent view of the graph as adjacency lists, one record per live
// node. Mappers make decisions locally to a node and emit the decisions
// along the node's incident edges; reducers unify the diverging views of
// each edge at its two endpoints.

// half is one endpoint's view of an incident edge.
type half struct {
	// ID is the edge index in the underlying graph.
	ID int32
	// Other is the opposite endpoint.
	Other graph.NodeID
	// W is the edge weight.
	W float64
}

// nodeState is the per-node record carried between rounds.
type nodeState struct {
	// B is the node's residual capacity.
	B int
	// Adj lists the live incident edges.
	Adj []half
}

// nodeRecords builds the initial node-based view of a graph: one record
// per node with positive capacity and at least one incident edge whose
// other endpoint also has positive capacity.
func nodeRecords(g *graph.Bipartite) []mapreduce.Pair[graph.NodeID, nodeState] {
	n := g.NumNodes()
	var recs []mapreduce.Pair[graph.NodeID, nodeState]
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		b := intCap(g, id)
		if b == 0 {
			continue
		}
		inc := g.IncidentEdges(id)
		adj := make([]half, 0, len(inc))
		for _, ei := range inc {
			e := g.Edge(int(ei))
			other := e.Other(id)
			if intCap(g, other) == 0 {
				continue
			}
			adj = append(adj, half{ID: ei, Other: other, W: e.Weight})
		}
		if len(adj) == 0 {
			continue
		}
		recs = append(recs, mapreduce.P(id, nodeState{B: b, Adj: adj}))
	}
	return recs
}

// topByWeight returns the indexes (into adj) of the k heaviest edges,
// with deterministic tie-breaking on edge id. It is the cLv selection of
// GreedyMR (Algorithm 3) and the greedy marking strategy of
// StackGreedyMR.
func topByWeight(adj []half, k int) []int {
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(adj))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := adj[idx[a]], adj[idx[b]]
		if ea.W != eb.W {
			return ea.W > eb.W
		}
		return ea.ID < eb.ID
	})
	if k < len(idx) {
		idx = idx[:k]
	}
	return idx
}

// sortedContains reports membership in an ascending-sorted slice; with
// slices.Sort at the build site it replaces the per-node sets the
// matching hot loops would otherwise allocate.
func sortedContains[T cmp.Ordered](sorted []T, x T) bool {
	_, ok := slices.BinarySearch(sorted, x)
	return ok
}

// countLiveEdges sums adjacency lengths over a node-view Dataset; every
// live edge is counted once per endpoint, so the result is twice the
// edge count for a consistent view. It scans every record, so the round
// loops use Dataset.Len as their fixed-point test instead (sound
// because every record of a node view carries at least one live edge)
// and reach for this only on error paths.
func countLiveEdges(recs *mapreduce.Dataset[graph.NodeID, nodeState]) int {
	total := 0
	recs.Each(func(_ graph.NodeID, s nodeState) { total += len(s.Adj) })
	return total
}
