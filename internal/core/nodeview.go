package core

import (
	"cmp"
	"slices"

	"repro/internal/graph"
	"repro/internal/mapreduce"
)

// The MapReduce matching algorithms use a "node-based" representation of
// the graph (paper Section 5.3): the input and output of every job is a
// consistent view of the graph as adjacency lists, one record per live
// node. Mappers make decisions locally to a node and emit the decisions
// along the node's incident edges; reducers unify the diverging views of
// each edge at its two endpoints.

// half is one endpoint's view of an incident edge.
type half struct {
	// ID is the edge index in the underlying graph.
	ID int32
	// Other is the opposite endpoint.
	Other graph.NodeID
	// W is the edge weight.
	W float64
}

// nodeState is the per-node record carried between rounds.
type nodeState struct {
	// B is the node's residual capacity.
	B int
	// Adj lists the live incident edges.
	Adj []half
}

// nodeRecords builds the initial node-based view of a graph: one record
// per node with positive capacity and at least one incident edge whose
// other endpoint also has positive capacity. All adjacency lists are
// carved out of one exactly-sized backing array (a counting pass first,
// then a fill pass) instead of one allocation per node; each node's
// region is capacity-limited, so the in-place compaction the round
// loops perform on their own lists can never bleed into a neighbor's.
func nodeRecords(g *graph.Bipartite) []mapreduce.Pair[graph.NodeID, nodeState] {
	n := g.NumNodes()
	keep := func(id graph.NodeID, ei int32) bool {
		return intCap(g, g.Edge(int(ei)).Other(id)) > 0
	}
	total, live := 0, 0
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if intCap(g, id) == 0 {
			continue
		}
		deg := 0
		for _, ei := range g.IncidentEdges(id) {
			if keep(id, ei) {
				deg++
			}
		}
		if deg > 0 {
			total += deg
			live++
		}
	}
	backing := make([]half, 0, total) // exact: never reallocates below
	recs := make([]mapreduce.Pair[graph.NodeID, nodeState], 0, live)
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		b := intCap(g, id)
		if b == 0 {
			continue
		}
		start := len(backing)
		for _, ei := range g.IncidentEdges(id) {
			if keep(id, ei) {
				e := g.Edge(int(ei))
				backing = append(backing, half{ID: ei, Other: e.Other(id), W: e.Weight})
			}
		}
		if len(backing) == start {
			continue
		}
		adj := backing[start:len(backing):len(backing)]
		recs = append(recs, mapreduce.P(id, nodeState{B: b, Adj: adj}))
	}
	return recs
}

// topByWeight returns the indexes (into adj) of the k heaviest edges,
// with deterministic tie-breaking on edge id, appended to buf (pass a
// recycled scratch slice to make the call allocation-free — this runs
// twice per node per round in GreedyMR's hot loop). It is the cLv
// selection of GreedyMR (Algorithm 3) and the greedy marking strategy
// of StackGreedyMR. The comparator is a total order (edge ids are
// unique), so the unstable sort is deterministic.
func topByWeight(adj []half, k int, buf []int32) []int32 {
	if k <= 0 {
		return nil
	}
	idx := buf[:0]
	for i := range adj {
		idx = append(idx, int32(i))
	}
	slices.SortFunc(idx, func(a, b int32) int {
		ea, eb := adj[a], adj[b]
		if ea.W != eb.W {
			if ea.W > eb.W {
				return -1
			}
			return 1
		}
		return int(ea.ID - eb.ID)
	})
	if k < len(idx) {
		idx = idx[:k]
	}
	return idx
}

// sortedContains reports membership in an ascending-sorted slice; with
// slices.Sort at the build site it replaces the per-node sets the
// matching hot loops would otherwise allocate.
func sortedContains[T cmp.Ordered](sorted []T, x T) bool {
	_, ok := slices.BinarySearch(sorted, x)
	return ok
}

// countLiveEdges sums adjacency lengths over a node-view Dataset; every
// live edge is counted once per endpoint, so the result is twice the
// edge count for a consistent view. It scans every record, so the round
// loops use Dataset.Len as their fixed-point test instead (sound
// because every record of a node view carries at least one live edge)
// and reach for this only on error paths.
func countLiveEdges(recs *mapreduce.Dataset[graph.NodeID, nodeState]) int {
	total := 0
	recs.Each(func(_ graph.NodeID, s nodeState) { total += len(s.Adj) })
	return total
}
