package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/mapreduce"
)

// RegisterDistJobs registers the worker-side functions of every
// MapReduce job the matching algorithms run, for the graph the worker
// loaded. A dist worker process (a CLI re-executed in worker mode, or a
// separately launched `bmatch -dist-connect`) calls this once after
// loading the same graph the coordinator uses — node ids, edge ids, and
// weights are deterministic given the input file, so both sides hold
// identical graphs and the registered reduces reproduce the in-process
// closures exactly.
//
// Jobs whose reduces close over per-round driver state (the stack
// algorithms' dual variables and layer sets) are registered as
// parameterized factories: the coordinator ships the state in
// Config.DistParams and the factory rebuilds the closure through the
// same constructor the local path uses (dualUpdateReduce,
// stackFilterReduce), so there is exactly one implementation of each
// reduce.
func RegisterDistJobs(g *graph.Bipartite) {
	mapreduce.RegisterDistJob("greedymr-round",
		func([]byte) (mapreduce.DistJob[graph.NodeID, nodeState, graph.NodeID, greedyMsg, graph.NodeID, greedyOut], error) {
			return mapreduce.DistJob[graph.NodeID, nodeState, graph.NodeID, greedyMsg, graph.NodeID, greedyOut]{
				Map:    greedyMap,
				Reduce: greedyReduce(g),
			}, nil
		})
	mapreduce.RegisterDistJob("stack-update",
		func(params []byte) (mapreduce.DistJob[graph.NodeID, nodeState, graph.NodeID, dualMsg, graph.NodeID, float64], error) {
			var job mapreduce.DistJob[graph.NodeID, nodeState, graph.NodeID, dualMsg, graph.NodeID, float64]
			y, _, _, err := decodeStackParams(params)
			if err != nil {
				return job, err
			}
			job.Reduce = dualUpdateReduce(y)
			return job, nil
		})
	mapreduce.RegisterDistJob("stack-filter",
		func(params []byte) (mapreduce.DistJob[graph.NodeID, nodeState, graph.NodeID, filterMsg, graph.NodeID, nodeState], error) {
			var job mapreduce.DistJob[graph.NodeID, nodeState, graph.NodeID, filterMsg, graph.NodeID, nodeState]
			y, layer, threshold, err := decodeStackParams(params)
			if err != nil {
				return job, err
			}
			inLayer := make(map[int32]bool, len(layer))
			for _, ei := range layer {
				inLayer[ei] = true
			}
			job.Reduce = stackFilterReduce(y, inLayer, threshold)
			return job, nil
		})
	mapreduce.RegisterDistReduce("stack-pop", stackPopReduce)
	mapreduce.RegisterDistReduce("strict-pop", strictPopReduce)
	mapreduce.RegisterDistReduce("strict-sublayer-filter", sublayerMaxReduce)
	for _, stage := range []string{"mm-marking", "mm-selection", "mm-matching"} {
		mapreduce.RegisterDistReduce(stage, unifyReduce(stage))
	}
	mapreduce.RegisterDistReduce("mm-cleanup", cleanupReduce)
}

// encodeStackParams packs the per-round state the stack reduces close
// over: the dual variables, the stacked layer, and the weakly-covered
// threshold. Floats travel as raw bits — the workers must fold the
// exact values the coordinator holds, or bit-identity dies.
func encodeStackParams(y []float64, layer []int32, threshold float64) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(y)))
	for _, v := range y {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.AppendUvarint(buf, uint64(len(layer)))
	for _, ei := range layer {
		buf = binary.AppendVarint(buf, int64(ei))
	}
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(threshold))
}

// decodeStackParams is the worker-side inverse of encodeStackParams.
func decodeStackParams(data []byte) (y []float64, layer []int32, threshold float64, err error) {
	bad := func() ([]float64, []int32, float64, error) {
		return nil, nil, 0, fmt.Errorf("core: malformed stack job parameters")
	}
	n, m := binary.Uvarint(data)
	if m <= 0 || n > uint64(len(data))/8 {
		return bad()
	}
	data = data[m:]
	y = make([]float64, n)
	for i := range y {
		if len(data) < 8 {
			return bad()
		}
		y[i] = math.Float64frombits(binary.LittleEndian.Uint64(data))
		data = data[8:]
	}
	n, m = binary.Uvarint(data)
	if m <= 0 || n > uint64(len(data)) {
		return bad()
	}
	data = data[m:]
	layer = make([]int32, 0, n)
	for i := uint64(0); i < n; i++ {
		x, m := binary.Varint(data)
		if m <= 0 {
			return bad()
		}
		layer = append(layer, int32(x))
		data = data[m:]
	}
	if len(data) != 8 {
		return bad()
	}
	return y, layer, math.Float64frombits(binary.LittleEndian.Uint64(data)), nil
}
