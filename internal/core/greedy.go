package core

import (
	"repro/internal/graph"
)

// Greedy computes a b-matching with the classical centralized greedy
// algorithm (paper Section 5.4 and Appendix A): process edges in order of
// decreasing weight and include an edge when both endpoints still have
// residual capacity. The result is feasible and a 1/2-approximation of
// the maximum-weight b-matching (Theorem 2).
//
// Ties are broken deterministically on (item, consumer) ids, so Greedy is
// a pure function of the graph.
func Greedy(g *graph.Bipartite) *Result {
	residual := make([]int, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		residual[v] = intCap(g, graph.NodeID(v))
	}
	var picked []int32
	for _, ei := range g.SortEdgesByWeightDesc() {
		e := g.Edge(int(ei))
		if residual[e.Item] > 0 && residual[e.Consumer] > 0 {
			picked = append(picked, ei)
			residual[e.Item]--
			residual[e.Consumer]--
		}
	}
	return &Result{Matching: NewMatching(g, picked)}
}
