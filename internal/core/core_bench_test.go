package core

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/mapreduce"
)

func benchInstance(seed int64) *graph.Bipartite {
	return graph.RandomBipartite(graph.RandomConfig{
		NumItems: 1500, NumConsumers: 300, EdgeProb: 0.02,
		MaxWeight: 4, MaxCapacity: 8, Seed: seed,
	})
}

func BenchmarkGreedyCentralizedKernel(b *testing.B) {
	g := benchInstance(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(g)
	}
}

func BenchmarkStackSequentialKernel(b *testing.B) {
	g := benchInstance(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StackSequential(g, 1)
	}
}

func BenchmarkGreedyMRSingleRound(b *testing.B) {
	// Cost of one GreedyMR round on a fixed instance (the per-iteration
	// cost behind Figures 1-3's round counts).
	g := benchInstance(3)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedyMR(ctx, g, GreedyMROptions{StopAfterRounds: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaximalBMatching(b *testing.B) {
	g := benchInstance(4)
	ctx := context.Background()
	recs := nodeRecords(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		driver := mapreduce.NewDriver(mapreduce.Config{})
		driver.MaxRounds = 64*g.NumEdges() + 256
		ds := mapreduce.PartitionDataset(recs, driver.Partitions())
		if _, err := maximalBMatching(ctx, driver, ds, maximalConfig{seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyMRFullRun measures a complete multi-round GreedyMR
// computation — the workload the Dataset refactor targets. The chained
// sub-benchmark runs the default partition-resident dataflow (state
// hashed once, identity-routed self messages, no per-round flat
// rebuild); flat forces a re-partition from a globally sorted slice
// every round, the pre-Dataset engine behavior. Both produce
// bit-identical matchings (see dataflow_test.go).
func BenchmarkGreedyMRFullRun(b *testing.B) {
	g := benchInstance(6)
	ctx := context.Background()
	for _, mode := range []struct {
		name string
		flat bool
	}{{"chained", false}, {"flat", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := GreedyMR(ctx, g, GreedyMROptions{
					MR: mapreduce.Config{FlatChaining: mode.flat},
				})
				if err != nil {
					b.Fatal(err)
				}
				if !mode.flat && res.Shuffle.LocalRouted == 0 {
					b.Fatal("chained run identity-routed nothing")
				}
			}
		})
	}
}

// BenchmarkStackMRFullRun measures a complete StackMR computation
// (push and pop phases, tens of jobs), chained vs flat.
func BenchmarkStackMRFullRun(b *testing.B) {
	g := benchInstance(7)
	ctx := context.Background()
	for _, mode := range []struct {
		name string
		flat bool
	}{{"chained", false}, {"flat", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := StackMR(ctx, g, StackOptions{
					MR:   mapreduce.Config{FlatChaining: mode.flat},
					Seed: 1,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMatchingValidate(b *testing.B) {
	g := benchInstance(5)
	m := Greedy(g).Matching
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Validate(1); err != nil {
			b.Fatal(err)
		}
	}
}
