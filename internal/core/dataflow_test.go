package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/mapreduce"
)

// These tests pin the tentpole guarantee of the Dataset refactor: the
// partition-resident dataflow (the default) and the flat re-partition
// dataflow (Config.FlatChaining, the pre-Dataset behavior) produce
// bit-identical results for every iterative algorithm — same matched
// edge sets, same floating-point values, same traces, same duals, same
// round counts.

func dataflowInstance(seed int64) *graph.Bipartite {
	return graph.RandomBipartite(graph.RandomConfig{
		NumItems: 60, NumConsumers: 25, EdgeProb: 0.15,
		MaxWeight: 5, MaxCapacity: 4, Seed: seed,
	})
}

func chainedAndFlat(base mapreduce.Config) (chained, flat mapreduce.Config) {
	chained = base
	flat = base
	flat.FlatChaining = true
	return chained, flat
}

// requireSameResult asserts bit-identical matchings (edge sets and
// floating-point values) and round counts.
func requireSameResult(t *testing.T, name string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Matching.EdgeIndexes(), b.Matching.EdgeIndexes()) {
		t.Fatalf("%s: chained and flat dataflow matched different edge sets", name)
	}
	if a.Matching.Value() != b.Matching.Value() {
		t.Fatalf("%s: matching values differ bitwise: %v vs %v",
			name, a.Matching.Value(), b.Matching.Value())
	}
	if a.Rounds != b.Rounds {
		t.Fatalf("%s: round counts differ: %d vs %d", name, a.Rounds, b.Rounds)
	}
}

func TestGreedyMRChainedMatchesFlat(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 4; seed++ {
		g := dataflowInstance(seed)
		chained, flat := chainedAndFlat(mapreduce.Config{Mappers: 3, Reducers: 3})
		rc, err := GreedyMR(ctx, g, GreedyMROptions{MR: chained})
		if err != nil {
			t.Fatal(err)
		}
		rf, err := GreedyMR(ctx, g, GreedyMROptions{MR: flat})
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "greedymr", rc, rf)
		if !reflect.DeepEqual(rc.ValueTrace, rf.ValueTrace) {
			t.Fatal("greedymr: value traces differ bitwise")
		}
		if rc.Shuffle.LocalRouted == 0 {
			t.Fatal("chained greedymr identity-routed nothing")
		}
		if rf.Shuffle.LocalRouted != 0 {
			t.Fatal("flat greedymr identity-routed records")
		}
	}
}

func TestStackMRChainedMatchesFlat(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 3; seed++ {
		g := dataflowInstance(100 + seed)
		chained, flat := chainedAndFlat(mapreduce.Config{Mappers: 3, Reducers: 3})
		rc, err := StackMR(ctx, g, StackOptions{MR: chained, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rf, err := StackMR(ctx, g, StackOptions{MR: flat, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "stackmr", rc, rf)
		yc := rc.Certificate.Y
		yf := rf.Certificate.Y
		if !reflect.DeepEqual(yc, yf) {
			t.Fatal("stackmr: dual certificates differ bitwise")
		}
		if rc.Shuffle.LocalRouted == 0 {
			t.Fatal("chained stackmr identity-routed nothing")
		}
	}
}

func TestStackGreedyMRChainedMatchesFlat(t *testing.T) {
	ctx := context.Background()
	g := dataflowInstance(200)
	chained, flat := chainedAndFlat(mapreduce.Config{Mappers: 2, Reducers: 4})
	rc, err := StackGreedyMR(ctx, g, StackOptions{MR: chained, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := StackGreedyMR(ctx, g, StackOptions{MR: flat, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "stackgreedymr", rc, rf)
}

func TestStackMRStrictChainedMatchesFlat(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 3; seed++ {
		g := dataflowInstance(300 + seed)
		chained, flat := chainedAndFlat(mapreduce.Config{Mappers: 3, Reducers: 3})
		rc, err := StackMRStrict(ctx, g, StackOptions{MR: chained, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rf, err := StackMRStrict(ctx, g, StackOptions{MR: flat, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "stackmrstrict", rc, rf)
		if err := rc.Matching.Validate(1); err != nil {
			t.Fatalf("strict chained result infeasible: %v", err)
		}
	}
}

// TestGreedyMRChainedSpillMatchesMemory crosses the two axes: the
// chained dataflow over the spilling backend (radix-sorted per-partition
// runs) must reproduce the chained in-memory result bit for bit.
func TestGreedyMRChainedSpillMatchesMemory(t *testing.T) {
	ctx := context.Background()
	g := dataflowInstance(400)
	mem := mapreduce.Config{Mappers: 3, Reducers: 3}
	spill := mem
	spill.Shuffle = mapreduce.ShuffleConfig{Backend: mapreduce.ShuffleSpill, MemoryBudget: 256}
	rm, err := GreedyMR(ctx, g, GreedyMROptions{MR: mem})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := GreedyMR(ctx, g, GreedyMROptions{MR: spill})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "greedymr-spill", rm, rs)
	if !reflect.DeepEqual(rm.ValueTrace, rs.ValueTrace) {
		t.Fatal("spill value trace differs from memory")
	}
	if rs.Shuffle.SpilledRecords == 0 {
		t.Fatal("spill budget 256 never spilled — the test lost its bite")
	}
}

// TestGreedyMRRoundStatsExposeRouting: the per-round Stats must carry
// the LocalRouted/CrossRouted split for every chained round.
func TestGreedyMRRoundStatsExposeRouting(t *testing.T) {
	ctx := context.Background()
	g := dataflowInstance(500)
	res, err := GreedyMR(ctx, g, GreedyMROptions{MR: mapreduce.Config{Reducers: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.RoundStats {
		if s.LocalRouted == 0 {
			t.Fatalf("round %d reported no identity-routed records", i)
		}
		if s.LocalRouted+s.CrossRouted != s.MapOutputRecords {
			t.Fatalf("round %d: routed %d+%d != map output %d",
				i, s.LocalRouted, s.CrossRouted, s.MapOutputRecords)
		}
	}
}
