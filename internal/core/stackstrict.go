package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/mapreduce"
)

// StackMRStrict implements Algorithm 1 of the paper: the stack algorithm
// that satisfies ALL capacity constraints. The push phase is identical
// to StackMR's; the pop phase differs:
//
//   - popping a layer tentatively includes its edges; if a vertex v's
//     capacity would be exceeded, all layer edges incident to v are
//     marked overflow (removed from the solution) and v's remaining
//     stacked edges are removed from the stack (Algorithm 1, line 15);
//   - a final phase turns overflow edges into a feasible completion:
//     repeatedly take the overflow edges that are locally δ-maximal up
//     to a (1+ε) factor (no incompatible overflow edge has δ more than
//     (1+ε) times larger), compute a maximal b-matching over them — a
//     sublayer — and include it (lines 19-25).
//
// The paper describes this variant but does not evaluate it, noting that
// the overflow machinery "does not seem to be efficient" in MapReduce;
// the BenchmarkAblationStrictVsRelaxed benchmark quantifies exactly that
// round-count gap against StackMR. The result is strictly feasible
// (Validate(1) passes).
func StackMRStrict(ctx context.Context, g *graph.Bipartite, opts StackOptions) (*Result, error) {
	opts.setDefaults(g)
	if opts.Eps < 0 {
		return nil, fmt.Errorf("core: negative eps %v", opts.Eps)
	}
	driver := mapreduce.NewDriver(opts.MR)
	driver.MaxRounds = opts.MaxRounds

	st := &stackState{g: g, opts: opts, y: make([]float64, g.NumNodes()),
		delta: make(map[int32]float64)}
	if err := st.push(ctx, driver); err != nil {
		return nil, err
	}
	included, err := st.popStrict(ctx, driver)
	if err != nil {
		return nil, err
	}
	return &Result{
		Matching:    NewMatching(g, included),
		Rounds:      driver.Rounds(),
		Phases:      len(st.layers),
		Shuffle:     driver.Total(),
		RoundStats:  driver.Trace(),
		Certificate: &DualCertificate{Y: st.y, Eps: opts.Eps, g: g},
	}, nil
}

// popStrict runs the strict pop phase and the overflow-resolution phase.
func (st *stackState) popStrict(ctx context.Context, driver *mapreduce.Driver) ([]int32, error) {
	g := st.g
	residual := make([]int, g.NumNodes())
	for v := range residual {
		residual[v] = intCap(g, graph.NodeID(v))
	}
	removedEdge := make(map[int32]bool) // stacked edges dropped by line 15/16
	var included []int32
	var overflow []int32

	// removeNodeEdges drops every still-stacked edge of v from future
	// layers (they are identified lazily through removedEdge).
	removeNodeEdges := func(v graph.NodeID, layerSet map[int32]bool) {
		for _, ei := range g.IncidentEdges(v) {
			if !layerSet[ei] {
				removedEdge[ei] = true
			}
		}
	}

	for l := len(st.layers) - 1; l >= 0; l-- {
		layer := st.layers[l]
		layerSet := make(map[int32]bool, len(layer))
		var live []int32
		for _, ei := range layer {
			if removedEdge[ei] {
				continue
			}
			e := g.Edge(int(ei))
			if residual[e.Item] <= 0 || residual[e.Consumer] <= 0 {
				continue
			}
			layerSet[ei] = true
			live = append(live, ei)
		}

		// One MapReduce job per layer: mappers carry each node's
		// residual capacity to its layer edges; reducers (keyed by
		// edge) decide tentative inclusion; overflow detection needs
		// the per-node tentative degree, computed below from the job
		// output, mirroring the two-view unification of Section 5.3.
		perNode := make(map[graph.NodeID][]int32)
		for _, ei := range live {
			e := g.Edge(int(ei))
			perNode[e.Item] = append(perNode[e.Item], ei)
			perNode[e.Consumer] = append(perNode[e.Consumer], ei)
		}
		input := nodePairsSorted(perNode)
		outDS, err := mapreduce.RunJobDS(ctx, driver, "strict-pop",
			mapreduce.PartitionDataset(input, driver.Partitions()),
			func(v graph.NodeID, edges []int32, out mapreduce.Emitter[int32, bool]) error {
				// A node whose tentative layer degree exceeds its
				// residual capacity overflows: none of its layer edges
				// may be included (Algorithm 1, line 15).
				ok := len(edges) <= residual[v]
				for _, ei := range edges {
					out.Emit(ei, ok)
				}
				return nil
			},
			strictPopReduce)
		if err != nil {
			return nil, fmt.Errorf("core: strict-pop layer %d: %w", l, err)
		}
		if err := outDS.Materialize(); err != nil {
			return nil, fmt.Errorf("core: strict-pop layer %d: %w", l, err)
		}
		// Collected flat (ascending edge order) because the capacity and
		// overflow bookkeeping below runs driver-side between layers.
		out := outDS.Collect()

		overflowNodes := make(map[graph.NodeID]bool)
		for _, p := range out {
			ei := p.Key
			e := g.Edge(int(ei))
			if p.Value {
				included = append(included, ei)
				residual[e.Item]--
				residual[e.Consumer]--
				continue
			}
			overflow = append(overflow, ei)
			if len(perNode[e.Item]) > residual[e.Item] {
				overflowNodes[e.Item] = true
			}
			if len(perNode[e.Consumer]) > residual[e.Consumer] {
				overflowNodes[e.Consumer] = true
			}
		}
		// Line 15: overflowed vertices lose their not-yet-popped edges.
		for v := range overflowNodes {
			removeNodeEdges(v, layerSet)
		}
		// Line 16: saturated vertices leave with all their edges.
		for v := range perNode {
			if residual[v] <= 0 {
				removeNodeEdges(v, layerSet)
			}
		}
	}

	comp, err := st.resolveOverflow(ctx, driver, overflow, residual)
	if err != nil {
		return nil, err
	}
	return append(included, comp...), nil
}

// resolveOverflow implements lines 19-25 of Algorithm 1: sublayers of
// locally δ-maximal overflow edges are matched maximally and included
// while feasibility allows.
func (st *stackState) resolveOverflow(
	ctx context.Context,
	driver *mapreduce.Driver,
	overflow []int32,
	residual []int,
) ([]int32, error) {
	g := st.g
	eps := st.opts.Eps
	var included []int32
	pending := append([]int32(nil), overflow...)
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	pending = dedupe(pending)

	for round := 0; len(pending) > 0; round++ {
		// Drop overflow edges that lost an endpoint.
		alive := pending[:0]
		for _, ei := range pending {
			e := g.Edge(int(ei))
			if residual[e.Item] > 0 && residual[e.Consumer] > 0 {
				alive = append(alive, ei)
			}
		}
		pending = alive
		if len(pending) == 0 {
			break
		}

		// One job: per-node maxima of δ over overflow edges; an edge is
		// in the sublayer candidate set L̄ when no incompatible overflow
		// edge has δ more than (1+ε) times larger.
		perNode := make(map[graph.NodeID][]int32)
		for _, ei := range pending {
			e := g.Edge(int(ei))
			perNode[e.Item] = append(perNode[e.Item], ei)
			perNode[e.Consumer] = append(perNode[e.Consumer], ei)
		}
		input := nodePairsSorted(perNode)
		delta := st.delta
		maxOut, err := mapreduce.RunJobDS(ctx, driver, "strict-sublayer-filter",
			mapreduce.PartitionDataset(input, driver.Partitions()),
			func(v graph.NodeID, edges []int32, out mapreduce.Emitter[graph.NodeID, float64]) error {
				m := 0.0
				for _, ei := range edges {
					if d := delta[ei]; d > m {
						m = d
					}
				}
				out.Emit(v, m)
				return nil
			},
			sublayerMaxReduce)
		if err != nil {
			return nil, fmt.Errorf("core: strict-sublayer-filter: %w", err)
		}
		if err := maxOut.Materialize(); err != nil {
			return nil, fmt.Errorf("core: strict-sublayer-filter: %w", err)
		}
		maxDelta := make(map[graph.NodeID]float64, maxOut.Len())
		maxOut.Each(func(v graph.NodeID, m float64) { maxDelta[v] = m })
		var lbar []int32
		for _, ei := range pending {
			e := g.Edge(int(ei))
			d := delta[ei]
			if (1+eps)*d >= maxDelta[e.Item]-1e-15 && (1+eps)*d >= maxDelta[e.Consumer]-1e-15 {
				lbar = append(lbar, ei)
			}
		}
		if len(lbar) == 0 {
			// Cannot happen: the globally δ-maximal pending edge always
			// qualifies. Guard against float pathologies anyway.
			return nil, fmt.Errorf("core: empty sublayer with %d overflow edges pending", len(pending))
		}

		// Maximal b-matching over the sublayer with the residual
		// capacities (line 21).
		recs := mapreduce.PartitionDataset(overflowRecords(g, lbar, residual), driver.Partitions())
		sublayer, err := maximalBMatching(ctx, driver, recs, maximalConfig{
			strategy: st.opts.Strategy,
			seed:     st.opts.Seed ^ (int64(round)+1)*104729,
		})
		if err != nil {
			return nil, fmt.Errorf("core: strict sublayer %d: %w", round, err)
		}
		// Include the sublayer (feasible by construction of the
		// maximal matching against residual capacities), update
		// capacities, retire the sublayer edges from the overflow set.
		inSub := make(map[int32]bool, len(sublayer))
		for _, ei := range sublayer {
			inSub[ei] = true
			e := g.Edge(int(ei))
			residual[e.Item]--
			residual[e.Consumer]--
			included = append(included, ei)
		}
		// Line 24 removes the whole candidate sublayer L̄ from the
		// overflow set (matched or not: unmatched L̄ edges lost to a
		// saturated endpoint, or they would contradict maximality —
		// except both-alive ones, which maximality forbids).
		inLbar := make(map[int32]bool, len(lbar))
		for _, ei := range lbar {
			inLbar[ei] = true
		}
		next := pending[:0]
		for _, ei := range pending {
			if !inLbar[ei] && !inSub[ei] {
				next = append(next, ei)
			}
		}
		pending = next
	}
	return included, nil
}

// strictPopReduce decides tentative inclusion: both endpoints must have
// reported capacity headroom. Stateless, registered as-is for dist.
func strictPopReduce(ei int32, oks []bool, out mapreduce.Emitter[int32, bool]) error {
	out.Emit(ei, len(oks) == 2 && oks[0] && oks[1])
	return nil
}

// sublayerMaxReduce forwards the per-node δ maximum computed map-side
// (one message per node). Stateless, registered as-is for dist.
func sublayerMaxReduce(v graph.NodeID, ms []float64, out mapreduce.Emitter[graph.NodeID, float64]) error {
	out.Emit(v, ms[0])
	return nil
}

// overflowRecords builds the node-view records of an overflow subgraph
// restricted to the given edges with the given residual capacities.
func overflowRecords(g *graph.Bipartite, edges []int32, residual []int) []mapreduce.Pair[graph.NodeID, nodeState] {
	adj := make(map[graph.NodeID][]half)
	for _, ei := range edges {
		e := g.Edge(int(ei))
		adj[e.Item] = append(adj[e.Item], half{ID: ei, Other: e.Consumer, W: e.Weight})
		adj[e.Consumer] = append(adj[e.Consumer], half{ID: ei, Other: e.Item, W: e.Weight})
	}
	recs := make([]mapreduce.Pair[graph.NodeID, nodeState], 0, len(adj))
	for v, a := range adj {
		if residual[v] <= 0 {
			continue
		}
		recs = append(recs, mapreduce.P(v, nodeState{B: residual[v], Adj: a}))
	}
	// Deterministic record order.
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	return recs
}

// dedupe removes consecutive duplicates from a sorted slice.
func dedupe(xs []int32) []int32 {
	out := xs[:0]
	for i, x := range xs {
		if i > 0 && xs[i-1] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}
