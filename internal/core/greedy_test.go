package core

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/mapreduce"
)

func TestGreedyPicksHeaviestFirst(t *testing.T) {
	g := smallGraph(t)
	res := Greedy(g)
	// Sorted desc: 0.9 (e1), 0.7 (e3), 0.5 (e0), 0.3 (e2).
	// e1: item1(b2), c0(b2) ok. e3: item2(b1), c1(b1) ok.
	// e0: item0(b1), c0(b1 left) ok. e2: item1(b1 left), c1 exhausted -> no.
	if !res.Matching.Contains(1) || !res.Matching.Contains(3) || !res.Matching.Contains(0) {
		t.Errorf("greedy picked %v", res.Matching.EdgeIndexes())
	}
	if res.Matching.Contains(2) {
		t.Error("greedy violated consumer capacity")
	}
	if math.Abs(res.Matching.Value()-2.1) > 1e-12 {
		t.Errorf("value = %v, want 2.1", res.Matching.Value())
	}
}

func TestGreedyFeasible(t *testing.T) {
	prop := func(seed int64) bool {
		g := graph.RandomBipartite(graph.RandomConfig{
			NumItems: 10, NumConsumers: 8, EdgeProb: 0.5,
			MaxWeight: 4, MaxCapacity: 3, Seed: seed,
		})
		res := Greedy(g)
		return res.Matching.Validate(1) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGreedyHalfApproximation(t *testing.T) {
	// Theorem 2: greedy ≥ OPT/2, verified against the exact flow oracle.
	for seed := int64(0); seed < 60; seed++ {
		g := graph.RandomBipartite(graph.RandomConfig{
			NumItems: 7, NumConsumers: 6, EdgeProb: 0.5,
			MaxWeight: 5, MaxCapacity: 2, Seed: seed,
		})
		res := Greedy(g)
		_, opt, err := flow.MaxWeightBMatching(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Matching.Value() < opt/2-1e-9 {
			t.Errorf("seed %d: greedy %v < OPT/2 = %v", seed, res.Matching.Value(), opt/2)
		}
		if res.Matching.Value() > opt+1e-9 {
			t.Errorf("seed %d: greedy %v exceeds OPT %v", seed, res.Matching.Value(), opt)
		}
	}
}

func TestGreedyTightCaseIsTight(t *testing.T) {
	// The paper's tightness example: greedy gets 1+eps, OPT gets 2.
	g := graph.GreedyTightCase(0.1)
	res := Greedy(g)
	if math.Abs(res.Matching.Value()-1.1) > 1e-12 {
		t.Errorf("greedy = %v, want 1.1", res.Matching.Value())
	}
	_, opt, err := flow.MaxWeightBMatching(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-2) > 1e-9 {
		t.Errorf("OPT = %v, want 2", opt)
	}
}

func TestGreedyMaximality(t *testing.T) {
	// No remaining edge can be added: for every unpicked edge some
	// endpoint is saturated.
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 12, NumConsumers: 9, EdgeProb: 0.4,
		MaxWeight: 2, MaxCapacity: 2, Seed: 3,
	})
	res := Greedy(g)
	deg := res.Matching.Degrees()
	for i := 0; i < g.NumEdges(); i++ {
		if res.Matching.Contains(int32(i)) {
			continue
		}
		e := g.Edge(i)
		itemFull := deg[e.Item] >= g.IntCapacity(e.Item)
		consFull := deg[e.Consumer] >= g.IntCapacity(e.Consumer)
		if !itemFull && !consFull {
			t.Errorf("edge %d could be added: greedy not maximal", i)
		}
	}
}

func TestGreedyDeterministic(t *testing.T) {
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 15, NumConsumers: 15, EdgeProb: 0.3,
		MaxWeight: 3, MaxCapacity: 2, Seed: 5,
	})
	a := Greedy(g).Matching.EdgeIndexes()
	b := Greedy(g).Matching.EdgeIndexes()
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic selection")
		}
	}
}

// greedyVsGreedyMR: the MapReduce adaptation must compute a maximal
// feasible matching of comparable value (not necessarily identical: the
// parallel intersection rule can deviate from strict weight order).
func TestGreedyMRMatchesGreedyOnSmallGraphs(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 30; seed++ {
		g := graph.RandomBipartite(graph.RandomConfig{
			NumItems: 6, NumConsumers: 5, EdgeProb: 0.5,
			MaxWeight: 4, MaxCapacity: 2, Seed: seed,
		})
		res, err := GreedyMR(ctx, g, GreedyMROptions{MR: mapreduce.Config{Mappers: 2, Reducers: 2}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Matching.Validate(1); err != nil {
			t.Fatalf("seed %d: infeasible: %v", seed, err)
		}
		want := Greedy(g).Matching.Value()
		if got := res.Matching.Value(); math.Abs(got-want) > 1e-9 {
			// GreedyMR matches exactly the greedy solution when edge
			// weights are distinct, which holds almost surely for
			// random float weights.
			t.Errorf("seed %d: greedymr %v != greedy %v", seed, got, want)
		}
	}
}
