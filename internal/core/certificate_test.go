package core

import (
	"context"
	"testing"

	"repro/internal/flow"
	"repro/internal/graph"
)

func TestStackMRCertificateValid(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 15; seed++ {
		g := graph.RandomBipartite(graph.RandomConfig{
			NumItems: 10, NumConsumers: 8, EdgeProb: 0.5,
			MaxWeight: 5, MaxCapacity: 3, Seed: seed,
		})
		res, err := StackMR(ctx, g, stackOpts(1, seed))
		if err != nil {
			t.Fatal(err)
		}
		if res.Certificate == nil {
			t.Fatal("no certificate produced")
		}
		if err := res.Certificate.Verify(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestCertificateBoundsOptimum(t *testing.T) {
	// The certificate's whole purpose: Bound() ≥ OPT, verified against
	// the exact oracle.
	ctx := context.Background()
	for seed := int64(0); seed < 20; seed++ {
		g := graph.RandomBipartite(graph.RandomConfig{
			NumItems: 7, NumConsumers: 6, EdgeProb: 0.5,
			MaxWeight: 5, MaxCapacity: 2, Seed: seed + 700,
		})
		res, err := StackMR(ctx, g, stackOpts(1, seed))
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := flow.MaxWeightBMatching(g)
		if err != nil {
			t.Fatal(err)
		}
		bound := res.Certificate.Bound()
		if bound < opt-1e-9 {
			t.Errorf("seed %d: certified bound %v < OPT %v", seed, bound, opt)
		}
		// The certified ratio is a valid lower bound on the true ratio.
		if opt > 0 {
			certified := res.Certificate.CertifiedRatio(res.Matching.Value())
			actual := res.Matching.Value() / opt
			if certified > actual+1e-9 {
				t.Errorf("seed %d: certified ratio %v above actual %v", seed, certified, actual)
			}
		}
	}
}

func TestCertificateStrictVariant(t *testing.T) {
	ctx := context.Background()
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 10, NumConsumers: 8, EdgeProb: 0.4,
		MaxWeight: 3, MaxCapacity: 2, Seed: 44,
	})
	res, err := StackMRStrict(ctx, g, stackOpts(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Certificate == nil {
		t.Fatal("strict variant lost the certificate")
	}
	if err := res.Certificate.Verify(); err != nil {
		t.Error(err)
	}
}

func TestCertificateDetectsBogusDuals(t *testing.T) {
	g := graph.NewBipartite(1, 1)
	g.SetCapacity(0, 1)
	g.SetCapacity(1, 1)
	g.AddEdge(0, 1, 10)
	c := &DualCertificate{Y: []float64{0, 0}, Eps: 1, g: g}
	if err := c.Verify(); err == nil {
		t.Error("zero duals accepted for a weighted edge")
	}
	empty := &DualCertificate{Y: nil, Eps: 1}
	if err := empty.Verify(); err == nil {
		t.Error("graphless certificate accepted")
	}
	if c.CertifiedRatio(5) != 0 {
		t.Error("zero bound should give ratio 0")
	}
}

func TestGreedyMRHasNoCertificate(t *testing.T) {
	ctx := context.Background()
	g := graph.NewBipartite(1, 1)
	g.SetCapacity(0, 1)
	g.SetCapacity(1, 1)
	g.AddEdge(0, 1, 1)
	res, err := GreedyMR(ctx, g, GreedyMROptions{MR: testMR})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certificate != nil {
		t.Error("greedy algorithms do not produce dual certificates")
	}
}
