package core

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// smallGraph builds the 3×2 fixture shared by the type tests.
func smallGraph(t testing.TB) *graph.Bipartite {
	t.Helper()
	g := graph.NewBipartite(3, 2)
	g.SetCapacity(g.ItemID(0), 1)
	g.SetCapacity(g.ItemID(1), 2)
	g.SetCapacity(g.ItemID(2), 1)
	g.SetCapacity(g.ConsumerID(0), 2)
	g.SetCapacity(g.ConsumerID(1), 1)
	g.AddEdge(g.ItemID(0), g.ConsumerID(0), 0.5) // edge 0
	g.AddEdge(g.ItemID(1), g.ConsumerID(0), 0.9) // edge 1
	g.AddEdge(g.ItemID(1), g.ConsumerID(1), 0.3) // edge 2
	g.AddEdge(g.ItemID(2), g.ConsumerID(1), 0.7) // edge 3
	return g
}

func TestNewMatchingDedupSortValue(t *testing.T) {
	g := smallGraph(t)
	m := NewMatching(g, []int32{3, 0, 3, 1})
	if m.Size() != 3 {
		t.Fatalf("Size = %d, want 3 (dedup)", m.Size())
	}
	idx := m.EdgeIndexes()
	if idx[0] != 0 || idx[1] != 1 || idx[2] != 3 {
		t.Errorf("EdgeIndexes = %v, want sorted [0 1 3]", idx)
	}
	if math.Abs(m.Value()-2.1) > 1e-12 {
		t.Errorf("Value = %v, want 2.1", m.Value())
	}
	if !m.Contains(1) || m.Contains(2) {
		t.Error("Contains wrong")
	}
	if len(m.Edges()) != 3 {
		t.Error("Edges length wrong")
	}
	if m.Graph() != g {
		t.Error("Graph accessor wrong")
	}
}

func TestMatchingDegrees(t *testing.T) {
	g := smallGraph(t)
	m := NewMatching(g, []int32{0, 1, 2})
	deg := m.Degrees()
	if deg[g.ItemID(1)] != 2 {
		t.Errorf("deg(item1) = %d, want 2", deg[g.ItemID(1)])
	}
	if deg[g.ConsumerID(0)] != 2 {
		t.Errorf("deg(c0) = %d, want 2", deg[g.ConsumerID(0)])
	}
	if deg[g.ItemID(2)] != 0 {
		t.Errorf("deg(item2) = %d, want 0", deg[g.ItemID(2)])
	}
}

func TestMatchingValidate(t *testing.T) {
	g := smallGraph(t)
	// Feasible matching.
	if err := NewMatching(g, []int32{0, 1, 3}).Validate(1); err != nil {
		t.Errorf("feasible matching rejected: %v", err)
	}
	// Item 0 has capacity 1: edges 0 alone ok, but force a violation
	// through consumer 1 (capacity 1, edges 2 and 3).
	m := NewMatching(g, []int32{2, 3})
	if err := m.Validate(1); err == nil {
		t.Error("violating matching accepted at slack 1")
	}
	if err := m.Validate(2); err != nil {
		t.Errorf("matching rejected at slack 2: %v", err)
	}
	if err := m.Validate(0.5); err == nil {
		t.Error("slack < 1 accepted")
	}
	if err := (&Matching{g: g, edges: []int32{99}}).Validate(1); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestMatchingViolation(t *testing.T) {
	g := smallGraph(t)
	// Feasible: violation 0.
	if v := NewMatching(g, []int32{0, 1}).Violation(); v != 0 {
		t.Errorf("violation of feasible matching = %v", v)
	}
	// Consumer 1 (capacity 1) matched twice: over by 1, relative 1/1,
	// averaged over 5 nodes = 0.2.
	m := NewMatching(g, []int32{2, 3})
	if v := m.Violation(); math.Abs(v-0.2) > 1e-12 {
		t.Errorf("violation = %v, want 0.2", v)
	}
	if f := m.MaxViolationFactor(); math.Abs(f-2) > 1e-12 {
		t.Errorf("MaxViolationFactor = %v, want 2", f)
	}
}

func TestEmptyMatching(t *testing.T) {
	g := smallGraph(t)
	m := NewMatching(g, nil)
	if m.Size() != 0 || m.Value() != 0 || m.Violation() != 0 {
		t.Error("empty matching not neutral")
	}
	if m.MaxViolationFactor() != 0 {
		t.Error("empty MaxViolationFactor != 0")
	}
	if err := m.Validate(1); err != nil {
		t.Errorf("empty matching invalid: %v", err)
	}
}

func TestResultTraceHelpers(t *testing.T) {
	r := &Result{ValueTrace: []float64{1, 5, 9, 9.5, 10}}
	fr := r.FractionOfFinal()
	if math.Abs(fr[0]-0.1) > 1e-12 || fr[4] != 1 {
		t.Errorf("FractionOfFinal = %v", fr)
	}
	if it := r.IterationsToFraction(0.95); it != 4 {
		t.Errorf("IterationsToFraction(0.95) = %d, want 4", it)
	}
	if it := r.IterationsToFraction(0.1); it != 1 {
		t.Errorf("IterationsToFraction(0.1) = %d, want 1", it)
	}
	empty := &Result{}
	if empty.FractionOfFinal() != nil || empty.IterationsToFraction(0.5) != 0 {
		t.Error("empty trace helpers wrong")
	}
	zero := &Result{ValueTrace: []float64{0, 0}}
	if zero.FractionOfFinal() != nil {
		t.Error("zero-final trace should return nil")
	}
}
