// Package core implements the paper's primary contribution: approximate
// maximum-weight b-matching algorithms for the MapReduce model.
//
//   - Greedy: the classical centralized greedy, a 1/2-approximation
//     (paper Appendix A, Theorem 2). Used as the quality reference.
//   - GreedyMR: the MapReduce adaptation of greedy (paper Section 5.4,
//     Algorithm 3). Feasible at every iteration (any-time stopping),
//     but may need a linear number of rounds.
//   - MaximalBMatching: the randomized distributed maximal b-matching
//     procedure of Garrido, Jarominek, Lingas, Rytter (IPL 1996), the
//     subroutine of the stack algorithms (paper Section 5.3).
//   - StackMR / StackGreedyMR: the primal-dual stack algorithm (paper
//     Section 5.2, Algorithm 2), approximation 1/(6+ε) with capacity
//     violations bounded by a factor (1+ε), and its greedy-marking
//     variant.
//   - StackSequential: the centralized stack algorithm, used as a
//     reference implementation.
//
// All algorithms consume a graph.Bipartite whose capacities have been
// set (fractional capacities are rounded up to integers, matching the
// paper's b: V → N) and produce a Result holding the matching, the
// MapReduce round count, and per-round traces.
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/mapreduce"
)

// Matching is a subset of the edges of a bipartite graph, stored as
// sorted edge indexes.
type Matching struct {
	g     *graph.Bipartite
	edges []int32
	value float64
}

// NewMatching builds a Matching over g from a set of edge indexes. The
// indexes are copied, sorted, and deduplicated.
func NewMatching(g *graph.Bipartite, edgeIdx []int32) *Matching {
	cp := append([]int32(nil), edgeIdx...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	out := cp[:0]
	for i, e := range cp {
		if i > 0 && cp[i-1] == e {
			continue
		}
		out = append(out, e)
	}
	m := &Matching{g: g, edges: out}
	for _, ei := range out {
		m.value += g.Edge(int(ei)).Weight
	}
	return m
}

// Graph returns the underlying graph.
func (m *Matching) Graph() *graph.Bipartite { return m.g }

// Size returns the number of matched edges.
func (m *Matching) Size() int { return len(m.edges) }

// Value returns the total weight of the matching, the objective the
// paper maximizes.
func (m *Matching) Value() float64 { return m.value }

// EdgeIndexes returns the sorted matched edge indexes. Callers must not
// modify the slice.
func (m *Matching) EdgeIndexes() []int32 { return m.edges }

// Edges returns the matched edges.
func (m *Matching) Edges() []graph.Edge {
	out := make([]graph.Edge, len(m.edges))
	for i, ei := range m.edges {
		out[i] = m.g.Edge(int(ei))
	}
	return out
}

// Contains reports whether edge index ei is in the matching.
func (m *Matching) Contains(ei int32) bool {
	i := sort.Search(len(m.edges), func(i int) bool { return m.edges[i] >= ei })
	return i < len(m.edges) && m.edges[i] == ei
}

// Degrees returns |M(v)| for every node: the number of matched edges
// incident to each node.
func (m *Matching) Degrees() []int {
	deg := make([]int, m.g.NumNodes())
	for _, ei := range m.edges {
		e := m.g.Edge(int(ei))
		deg[e.Item]++
		deg[e.Consumer]++
	}
	return deg
}

// Validate checks that the matching is a subset of distinct edges and
// that every node's matched degree is at most slack × ⌈b(v)⌉ (use slack=1
// for strict feasibility; the stack algorithms allow slack 1+ε). It
// returns the first violation found.
func (m *Matching) Validate(slack float64) error {
	if slack < 1 {
		return fmt.Errorf("core: slack %v < 1", slack)
	}
	for _, ei := range m.edges {
		if ei < 0 || int(ei) >= m.g.NumEdges() {
			return fmt.Errorf("core: matched edge index %d out of range", ei)
		}
	}
	for v, d := range m.Degrees() {
		limit := slack * float64(intCap(m.g, graph.NodeID(v)))
		if float64(d) > limit+1e-9 {
			return fmt.Errorf("core: node %d has matched degree %d > %.3f (b=%d, slack=%.3f)",
				v, d, limit, intCap(m.g, graph.NodeID(v)), slack)
		}
	}
	return nil
}

// Violation returns the average relative capacity violation
//
//	ε′ = (1/|V|) Σ_v max{|M(v)| − b(v), 0} / b(v)
//
// exactly as defined in the paper's Section 6 (nodes with b(v)=0 cannot
// hold matched edges and contribute zero). This is the quantity plotted
// in Figure 4.
func (m *Matching) Violation() float64 {
	deg := m.Degrees()
	var sum float64
	n := m.g.NumNodes()
	if n == 0 {
		return 0
	}
	for v := 0; v < n; v++ {
		b := intCap(m.g, graph.NodeID(v))
		if b == 0 {
			continue
		}
		if over := deg[v] - b; over > 0 {
			sum += float64(over) / float64(b)
		}
	}
	return sum / float64(n)
}

// MaxViolationFactor returns max_v |M(v)| / b(v) over nodes with matched
// edges, i.e. the worst-case capacity stretch (1 means feasible).
func (m *Matching) MaxViolationFactor() float64 {
	deg := m.Degrees()
	worst := 0.0
	for v := 0; v < m.g.NumNodes(); v++ {
		if deg[v] == 0 {
			continue
		}
		b := intCap(m.g, graph.NodeID(v))
		if b == 0 {
			return math.Inf(1)
		}
		if f := float64(deg[v]) / float64(b); f > worst {
			worst = f
		}
	}
	return worst
}

// intCap returns ⌈b(v)⌉, the integral capacity every algorithm in this
// package enforces.
func intCap(g *graph.Bipartite, v graph.NodeID) int {
	return g.IntCapacity(v)
}

// Result bundles a matching with the cost of computing it.
type Result struct {
	// Matching is the solution.
	Matching *Matching
	// Rounds is the number of MapReduce jobs executed (0 for the
	// centralized algorithms). This is the paper's efficiency metric.
	Rounds int
	// Phases counts algorithm-level iterations: greedy rounds for
	// GreedyMR, stack layers for the stack algorithms.
	Phases int
	// Shuffle aggregates the MapReduce record statistics over all
	// rounds.
	Shuffle mapreduce.Stats
	// RoundStats holds the per-job statistics in execution order;
	// mapreduce.ClusterModel.EstimateTrace turns it into simulated
	// cluster wall-clock.
	RoundStats []mapreduce.Stats
	// ValueTrace, when non-nil, holds the matching value at the end of
	// each phase; GreedyMR fills it because its any-time property
	// (paper Figure 5) is measured from this trace.
	ValueTrace []float64
	// Certificate, filled by the primal-dual stack algorithms, carries
	// the final dual variables and certifies a per-run upper bound on
	// the optimum (see DualCertificate).
	Certificate *DualCertificate
}

// FractionOfFinal rescales the value trace to fractions of the final
// value (the y-axis of the paper's Figure 5). Returns nil when there is
// no trace or the final value is zero.
func (r *Result) FractionOfFinal() []float64 {
	if len(r.ValueTrace) == 0 {
		return nil
	}
	final := r.ValueTrace[len(r.ValueTrace)-1]
	if final == 0 {
		return nil
	}
	out := make([]float64, len(r.ValueTrace))
	for i, v := range r.ValueTrace {
		out[i] = v / final
	}
	return out
}

// IterationsToFraction returns the smallest 1-based phase index at which
// the trace reaches the given fraction of the final value, or 0 when
// there is no trace. The paper reports the iteration at which GreedyMR
// reaches 95% of its final value.
func (r *Result) IterationsToFraction(frac float64) int {
	fr := r.FractionOfFinal()
	for i, f := range fr {
		if f >= frac-1e-12 {
			return i + 1
		}
	}
	return 0
}
