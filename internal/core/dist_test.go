package core

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/remote"
)

// startWorkers runs n in-process dist workers over loopback TCP; the
// worker goroutines share this process's registry, so RegisterDistJobs
// below arms them with the same graph the coordinator side uses —
// exactly what a re-executed CLI worker does after loading the graph.
func startWorkers(t *testing.T, n int) *mapreduce.DistCluster {
	t.Helper()
	var wg sync.WaitGroup
	cl, err := mapreduce.StartDistCluster(n, mapreduce.DistClusterOptions{
		Timeout: 30 * time.Second,
		OnListen: func(addr string) {
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					mapreduce.ServeDistWorker(context.Background(), addr)
				}()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		wg.Wait()
	})
	return cl
}

// TestDistMatchingBitIdenticalToMemory is the tentpole's acceptance
// gate at the algorithm level: every MapReduce matching algorithm must
// produce a byte-identical matching on the dist backend (2 workers over
// loopback) and the memory backend, for the same seed and partition
// count — value bit for bit, edges id for id, round for round.
func TestDistMatchingBitIdenticalToMemory(t *testing.T) {
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 16, NumConsumers: 12, EdgeProb: 0.4,
		MaxWeight: 3, MaxCapacity: 3, Seed: 7,
	})
	RegisterDistJobs(g)
	cl := startWorkers(t, 2)
	ctx := context.Background()

	distMR := mapreduce.Config{
		Mappers: 2, Reducers: 2,
		Shuffle: mapreduce.ShuffleConfig{Backend: mapreduce.ShuffleDist},
		Dist:    cl,
	}
	memMR := mapreduce.Config{Mappers: 2, Reducers: 2}

	type runner struct {
		name string
		run  func(mr mapreduce.Config) (*Result, error)
	}
	runners := []runner{
		{"greedymr", func(mr mapreduce.Config) (*Result, error) {
			return GreedyMR(ctx, g.Clone(), GreedyMROptions{MR: mr})
		}},
		{"stackmr", func(mr mapreduce.Config) (*Result, error) {
			return StackMR(ctx, g.Clone(), StackOptions{MR: mr, Eps: 1, Seed: 5})
		}},
		{"stackgreedymr", func(mr mapreduce.Config) (*Result, error) {
			return StackGreedyMR(ctx, g.Clone(), StackOptions{MR: mr, Eps: 0.5, Seed: 5})
		}},
		{"stackmrstrict", func(mr mapreduce.Config) (*Result, error) {
			return StackMRStrict(ctx, g.Clone(), StackOptions{MR: mr, Eps: 1, Seed: 5})
		}},
	}
	for _, r := range runners {
		t.Run(r.name, func(t *testing.T) {
			mem, err := r.run(memMR)
			if err != nil {
				t.Fatalf("memory: %v", err)
			}
			dist, err := r.run(distMR)
			if err != nil {
				t.Fatalf("dist: %v", err)
			}
			if mem.Matching.Value() != dist.Matching.Value() {
				t.Fatalf("value diverges: memory %v, dist %v", mem.Matching.Value(), dist.Matching.Value())
			}
			if !reflect.DeepEqual(mem.Matching.Edges(), dist.Matching.Edges()) {
				t.Fatalf("matched edges diverge:\nmemory %v\ndist   %v", mem.Matching.Edges(), dist.Matching.Edges())
			}
			if mem.Rounds != dist.Rounds {
				t.Fatalf("rounds diverge: memory %d, dist %d", mem.Rounds, dist.Rounds)
			}
			if dist.Shuffle.RemoteBytesOut == 0 {
				t.Fatal("dist run reports no remote traffic — did the jobs really shard?")
			}
		})
	}
}

// TestDistMatchingSurvivesWorkerLoss extends the acceptance gate to the
// recovery path: every MapReduce matching algorithm runs on a cluster
// whose connection to one worker is severed mid-shuffle at a
// seed-derived frame (indistinguishable from that worker being
// SIGKILLed), and the recovered matching must still be bit-identical to
// the fault-free memory run — value, edges, and round count.
func TestDistMatchingSurvivesWorkerLoss(t *testing.T) {
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 16, NumConsumers: 12, EdgeProb: 0.4,
		MaxWeight: 3, MaxCapacity: 3, Seed: 11,
	})
	RegisterDistJobs(g)
	ctx := context.Background()
	memMR := mapreduce.Config{Mappers: 2, Reducers: 2}

	type runner struct {
		name string
		run  func(mr mapreduce.Config) (*Result, error)
	}
	runners := []runner{
		{"greedymr", func(mr mapreduce.Config) (*Result, error) {
			return GreedyMR(ctx, g.Clone(), GreedyMROptions{MR: mr})
		}},
		{"stackmr", func(mr mapreduce.Config) (*Result, error) {
			return StackMR(ctx, g.Clone(), StackOptions{MR: mr, Eps: 1, Seed: 5})
		}},
		{"stackgreedymr", func(mr mapreduce.Config) (*Result, error) {
			return StackGreedyMR(ctx, g.Clone(), StackOptions{MR: mr, Eps: 0.5, Seed: 5})
		}},
		{"stackmrstrict", func(mr mapreduce.Config) (*Result, error) {
			return StackMRStrict(ctx, g.Clone(), StackOptions{MR: mr, Eps: 1, Seed: 5})
		}},
	}
	for i, r := range runners {
		t.Run(r.name, func(t *testing.T) {
			mem, err := r.run(memMR)
			if err != nil {
				t.Fatalf("memory: %v", err)
			}

			// A fresh cluster per algorithm: a severed worker stays dead
			// for the cluster's lifetime.
			cl := startWorkers(t, 2)
			seed := int64(31 + i)
			f := &remote.Fault{Op: remote.FaultSever}
			if i%2 == 0 {
				f.AfterWrites = remote.FaultPoint(seed, 2, 20)
			} else {
				f.AfterReads = remote.FaultPoint(seed, 2, 12)
			}
			if err := cl.InjectFault(i%2, f); err != nil {
				t.Fatal(err)
			}
			distMR := mapreduce.Config{
				Mappers: 2, Reducers: 2,
				Shuffle: mapreduce.ShuffleConfig{Backend: mapreduce.ShuffleDist},
				Dist:    cl,
			}
			dist, err := r.run(distMR)
			if err != nil {
				t.Fatalf("dist with injected worker loss: %v", err)
			}
			if mem.Matching.Value() != dist.Matching.Value() {
				t.Fatalf("value diverges: memory %v, dist %v", mem.Matching.Value(), dist.Matching.Value())
			}
			if !reflect.DeepEqual(mem.Matching.Edges(), dist.Matching.Edges()) {
				t.Fatalf("matched edges diverge:\nmemory %v\ndist   %v", mem.Matching.Edges(), dist.Matching.Edges())
			}
			if mem.Rounds != dist.Rounds {
				t.Fatalf("rounds diverge: memory %d, dist %d", mem.Rounds, dist.Rounds)
			}
			lost, retried, reseeded := cl.RecoveryStats()
			if lost < 1 || retried < 1 {
				t.Fatalf("recovery stats report lost=%d retried=%d, want >= 1 each", lost, retried)
			}
			t.Logf("%s: lost=%d retried=%d reseeded=%d", r.name, lost, retried, reseeded)
		})
	}
}
