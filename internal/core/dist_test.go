package core

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/mapreduce/remote"
)

// startWorkers runs n in-process dist workers over loopback TCP; the
// worker goroutines share this process's registry, so RegisterDistJobs
// below arms them with the same graph the coordinator side uses —
// exactly what a re-executed CLI worker does after loading the graph.
func startWorkers(t *testing.T, n int) *mapreduce.DistCluster {
	return startWorkersOpts(t, n, mapreduce.DistClusterOptions{Timeout: 30 * time.Second}, nil)
}

// startWorkersOpts is startWorkers with cluster options and per-session
// worker options (wopts(i) configures the i-th worker goroutine; worker
// IDs are assigned in accept order, so i only distinguishes sessions).
func startWorkersOpts(t *testing.T, n int, opts mapreduce.DistClusterOptions, wopts func(i int) mapreduce.DistWorkerOptions) *mapreduce.DistCluster {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	opts.OnListen = func(addr string) {
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				var o mapreduce.DistWorkerOptions
				if wopts != nil {
					o = wopts(i)
				}
				mapreduce.ServeDistWorkerOpts(ctx, addr, o)
			}()
		}
	}
	cl, err := mapreduce.StartDistCluster(n, opts)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		cancel()
		wg.Wait()
	})
	return cl
}

// TestDistMatchingBitIdenticalToMemory is the tentpole's acceptance
// gate at the algorithm level: every MapReduce matching algorithm must
// produce a byte-identical matching on the dist backend (2 workers over
// loopback) and the memory backend, for the same seed and partition
// count — value bit for bit, edges id for id, round for round.
func TestDistMatchingBitIdenticalToMemory(t *testing.T) {
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 16, NumConsumers: 12, EdgeProb: 0.4,
		MaxWeight: 3, MaxCapacity: 3, Seed: 7,
	})
	RegisterDistJobs(g)
	cl := startWorkers(t, 2)
	ctx := context.Background()

	distMR := mapreduce.Config{
		Mappers: 2, Reducers: 2,
		Shuffle: mapreduce.ShuffleConfig{Backend: mapreduce.ShuffleDist},
		Dist:    cl,
	}
	memMR := mapreduce.Config{Mappers: 2, Reducers: 2}

	type runner struct {
		name string
		run  func(mr mapreduce.Config) (*Result, error)
	}
	runners := []runner{
		{"greedymr", func(mr mapreduce.Config) (*Result, error) {
			return GreedyMR(ctx, g.Clone(), GreedyMROptions{MR: mr})
		}},
		{"stackmr", func(mr mapreduce.Config) (*Result, error) {
			return StackMR(ctx, g.Clone(), StackOptions{MR: mr, Eps: 1, Seed: 5})
		}},
		{"stackgreedymr", func(mr mapreduce.Config) (*Result, error) {
			return StackGreedyMR(ctx, g.Clone(), StackOptions{MR: mr, Eps: 0.5, Seed: 5})
		}},
		{"stackmrstrict", func(mr mapreduce.Config) (*Result, error) {
			return StackMRStrict(ctx, g.Clone(), StackOptions{MR: mr, Eps: 1, Seed: 5})
		}},
	}
	for _, r := range runners {
		t.Run(r.name, func(t *testing.T) {
			mem, err := r.run(memMR)
			if err != nil {
				t.Fatalf("memory: %v", err)
			}
			dist, err := r.run(distMR)
			if err != nil {
				t.Fatalf("dist: %v", err)
			}
			if mem.Matching.Value() != dist.Matching.Value() {
				t.Fatalf("value diverges: memory %v, dist %v", mem.Matching.Value(), dist.Matching.Value())
			}
			if !reflect.DeepEqual(mem.Matching.Edges(), dist.Matching.Edges()) {
				t.Fatalf("matched edges diverge:\nmemory %v\ndist   %v", mem.Matching.Edges(), dist.Matching.Edges())
			}
			if mem.Rounds != dist.Rounds {
				t.Fatalf("rounds diverge: memory %d, dist %d", mem.Rounds, dist.Rounds)
			}
			if dist.Shuffle.RemoteBytesOut == 0 {
				t.Fatal("dist run reports no remote traffic — did the jobs really shard?")
			}
		})
	}
}

// TestDistMatchingSurvivesWorkerLoss extends the acceptance gate to the
// recovery path: every MapReduce matching algorithm runs on a cluster
// whose connection to one worker is severed mid-shuffle at a
// seed-derived frame (indistinguishable from that worker being
// SIGKILLed), and the recovered matching must still be bit-identical to
// the fault-free memory run — value, edges, and round count.
func TestDistMatchingSurvivesWorkerLoss(t *testing.T) {
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 16, NumConsumers: 12, EdgeProb: 0.4,
		MaxWeight: 3, MaxCapacity: 3, Seed: 11,
	})
	RegisterDistJobs(g)
	ctx := context.Background()
	memMR := mapreduce.Config{Mappers: 2, Reducers: 2}

	type runner struct {
		name string
		run  func(mr mapreduce.Config) (*Result, error)
	}
	runners := []runner{
		{"greedymr", func(mr mapreduce.Config) (*Result, error) {
			return GreedyMR(ctx, g.Clone(), GreedyMROptions{MR: mr})
		}},
		{"stackmr", func(mr mapreduce.Config) (*Result, error) {
			return StackMR(ctx, g.Clone(), StackOptions{MR: mr, Eps: 1, Seed: 5})
		}},
		{"stackgreedymr", func(mr mapreduce.Config) (*Result, error) {
			return StackGreedyMR(ctx, g.Clone(), StackOptions{MR: mr, Eps: 0.5, Seed: 5})
		}},
		{"stackmrstrict", func(mr mapreduce.Config) (*Result, error) {
			return StackMRStrict(ctx, g.Clone(), StackOptions{MR: mr, Eps: 1, Seed: 5})
		}},
	}
	for i, r := range runners {
		t.Run(r.name, func(t *testing.T) {
			mem, err := r.run(memMR)
			if err != nil {
				t.Fatalf("memory: %v", err)
			}

			// A fresh cluster per algorithm: a severed worker stays dead
			// for the cluster's lifetime.
			cl := startWorkers(t, 2)
			seed := int64(31 + i)
			f := &remote.Fault{Op: remote.FaultSever}
			if i%2 == 0 {
				f.AfterWrites = remote.FaultPoint(seed, 2, 20)
			} else {
				f.AfterReads = remote.FaultPoint(seed, 2, 12)
			}
			if err := cl.InjectFault(i%2, f); err != nil {
				t.Fatal(err)
			}
			distMR := mapreduce.Config{
				Mappers: 2, Reducers: 2,
				Shuffle: mapreduce.ShuffleConfig{Backend: mapreduce.ShuffleDist},
				Dist:    cl,
			}
			dist, err := r.run(distMR)
			if err != nil {
				t.Fatalf("dist with injected worker loss: %v", err)
			}
			if mem.Matching.Value() != dist.Matching.Value() {
				t.Fatalf("value diverges: memory %v, dist %v", mem.Matching.Value(), dist.Matching.Value())
			}
			if !reflect.DeepEqual(mem.Matching.Edges(), dist.Matching.Edges()) {
				t.Fatalf("matched edges diverge:\nmemory %v\ndist   %v", mem.Matching.Edges(), dist.Matching.Edges())
			}
			if mem.Rounds != dist.Rounds {
				t.Fatalf("rounds diverge: memory %d, dist %d", mem.Rounds, dist.Rounds)
			}
			// The loss must be observed, but how the cluster recovers
			// depends on where the sever lands: a death mid-job aborts and
			// retries the attempt (Recoveries), while a death caught at
			// materialize time is repaired from the checkpoint mirror and
			// the next job simply schedules around the dead worker — no
			// attempt is wasted, so Recoveries legitimately stays zero.
			rs := cl.RecoveryStats()
			if rs.WorkersLost < 1 {
				t.Fatalf("recovery stats report lost=%d, want >= 1", rs.WorkersLost)
			}
			t.Logf("%s: lost=%d retried=%d reseeded=%d", r.name, rs.WorkersLost, rs.Recoveries, rs.Reseeded)
		})
	}
}

// TestDistMatchingSurvivesStraggler extends the acceptance gate to
// elastic scheduling: every MapReduce matching algorithm runs on a
// cluster where one worker misbehaves without dying, in two modes. In
// "slow" mode the worker delays every job frame it writes — a
// responsive straggler, not a corpse — and tail-lag speculation must
// bench it without it ever being declared dead. In "stall" mode the
// worker freezes at a seed-derived frame with its socket open (the gray
// failure no transport error reports) and suspect-silence speculation
// must complete the job on the healthy worker. Both modes must finish
// inside a wall-clock budget and stay bit-identical to the fault-free
// memory run.
func TestDistMatchingSurvivesStraggler(t *testing.T) {
	g := graph.RandomBipartite(graph.RandomConfig{
		NumItems: 16, NumConsumers: 12, EdgeProb: 0.4,
		MaxWeight: 3, MaxCapacity: 3, Seed: 13,
	})
	RegisterDistJobs(g)
	ctx := context.Background()
	memMR := mapreduce.Config{Mappers: 2, Reducers: 2}

	schedOpts := mapreduce.DistClusterOptions{
		Timeout:         30 * time.Second,
		HeartbeatEvery:  20 * time.Millisecond,
		HeartbeatMisses: 2,
		AbortTimeout:    2 * time.Second,
	}
	faulty := func(f *remote.Fault) func(i int) mapreduce.DistWorkerOptions {
		return func(i int) mapreduce.DistWorkerOptions {
			if i != 0 {
				return mapreduce.DistWorkerOptions{}
			}
			return mapreduce.DistWorkerOptions{Fault: f}
		}
	}

	type runner struct {
		name string
		// stallSeed picks the FaultPoint frame the stall mode freezes
		// at. Each algorithm has its own frame sequence, and the frame
		// must land mid-job: a stall during an inter-job fetch is
		// detected by the fetch deadline and recovered without
		// speculation — a different path, pinned by the worker-loss
		// test above.
		stallSeed int64
		run       func(mr mapreduce.Config) (*Result, error)
	}
	runners := []runner{
		{"greedymr", 2, func(mr mapreduce.Config) (*Result, error) {
			return GreedyMR(ctx, g.Clone(), GreedyMROptions{MR: mr})
		}},
		{"stackmr", 3, func(mr mapreduce.Config) (*Result, error) {
			return StackMR(ctx, g.Clone(), StackOptions{MR: mr, Eps: 1, Seed: 5})
		}},
		{"stackgreedymr", 4, func(mr mapreduce.Config) (*Result, error) {
			return StackGreedyMR(ctx, g.Clone(), StackOptions{MR: mr, Eps: 0.5, Seed: 5})
		}},
		{"stackmrstrict", 4, func(mr mapreduce.Config) (*Result, error) {
			return StackMRStrict(ctx, g.Clone(), StackOptions{MR: mr, Eps: 1, Seed: 5})
		}},
	}
	modes := []struct {
		name  string
		fault func(seed int64) *remote.Fault
		// alive: a responsive straggler must never be declared dead. A
		// stalled worker legitimately may be (if the death escalation
		// wins the race against the speculative completion), so the
		// stall mode asserts only detection + completion.
		alive bool
	}{
		{"slow", func(int64) *remote.Fault {
			return &remote.Fault{Op: remote.FaultDelay, AfterWrites: 1, Delay: 50 * time.Millisecond, Repeat: true}
		}, true},
		{"stall", func(seed int64) *remote.Fault {
			return &remote.Fault{Op: remote.FaultStall, AfterWrites: remote.FaultPoint(seed, 2, 8)}
		}, false},
	}

	// The budget prices detection + speculation, not luck: a stalled
	// worker costs one suspect window (~40ms here) before its share
	// re-executes, so a full matching run staying under the budget
	// means no round ever waited out a silent worker.
	const budget = 15 * time.Second
	for _, m := range modes {
		for _, r := range runners {
			t.Run(m.name+"/"+r.name, func(t *testing.T) {
				mem, err := r.run(memMR)
				if err != nil {
					t.Fatalf("memory: %v", err)
				}
				// A fresh cluster per algorithm: a benched straggler
				// stays benched for the cluster's lifetime.
				cl := startWorkersOpts(t, 2, schedOpts, faulty(m.fault(r.stallSeed)))
				distMR := mapreduce.Config{
					Mappers: 2, Reducers: 2,
					Shuffle:           mapreduce.ShuffleConfig{Backend: mapreduce.ShuffleDist},
					Dist:              cl,
					SpeculationFactor: 2,
				}
				start := time.Now()
				dist, err := r.run(distMR)
				elapsed := time.Since(start)
				if err != nil {
					t.Fatalf("dist with straggling worker: %v", err)
				}
				if elapsed > budget {
					t.Fatalf("run took %v, budget %v", elapsed, budget)
				}
				if mem.Matching.Value() != dist.Matching.Value() {
					t.Fatalf("value diverges: memory %v, dist %v", mem.Matching.Value(), dist.Matching.Value())
				}
				if !reflect.DeepEqual(mem.Matching.Edges(), dist.Matching.Edges()) {
					t.Fatalf("matched edges diverge:\nmemory %v\ndist   %v", mem.Matching.Edges(), dist.Matching.Edges())
				}
				if mem.Rounds != dist.Rounds {
					t.Fatalf("rounds diverge: memory %d, dist %d", mem.Rounds, dist.Rounds)
				}
				rs := cl.RecoveryStats()
				if m.alive && rs.WorkersLost != 0 {
					t.Fatalf("a responsive straggler was declared dead (lost=%d)", rs.WorkersLost)
				}
				if rs.SpeculativeLaunches < 1 {
					t.Fatalf("speculation never launched (launches=%d)", rs.SpeculativeLaunches)
				}
				t.Logf("%s/%s: %v, launches=%d wins=%d lost=%d migrated=%d", m.name, r.name, elapsed,
					rs.SpeculativeLaunches, rs.SpeculativeWins, rs.WorkersLost, rs.PartitionsMigrated)
			})
		}
	}
}
