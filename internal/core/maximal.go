package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/mapreduce"
)

// This file implements the randomized distributed maximal b-matching
// procedure of Garrido, Jarominek, Lingas and Rytter (IPL 57(2), 1996)
// in MapReduce, following the adaptation in Section 5.3 of the paper.
// Each iteration consists of four stages, each one MapReduce job over the
// node-based view of the graph:
//
//	marking   — every node v marks ⌈b(v)/2⌉ of its incident edges
//	            (uniformly at random, or the heaviest ones under the
//	            greedy strategy of StackGreedyMR);
//	selection — every node selects max{⌊b(v)/2⌋, 1} edges among those
//	            marked by its neighbors, uniformly at random;
//	matching  — a node with capacity 1 and two incident selected edges
//	            deletes one of them at random, making the selected set F
//	            a valid b-matching;
//	cleanup   — F joins the matching, capacities decrease, saturated
//	            nodes leave the graph together with their edges.
//
// Iterations repeat until no edge is left; the expected number of
// iterations is O(log^3 n). An edge disappears only by being matched or
// by losing an endpoint to saturation, which is exactly the maximality
// guarantee the stack algorithm requires.

// mmEdge is one endpoint's view of an edge during the maximal-matching
// procedure, with the paper's per-edge state (E/K/F/D/M) tracked as
// flags from the perspective of this endpoint.
type mmEdge struct {
	half
	markedBySelf  bool
	markedByOther bool
	selBySelf     bool
	selByOther    bool
	inF           bool
}

// inSelected reports whether the edge is in the selected set F: it was
// marked by one endpoint and selected by the other. Both endpoints
// compute this from the same four flags, so their views agree.
func (e *mmEdge) inSelected() bool {
	return (e.markedBySelf && e.selByOther) || (e.markedByOther && e.selBySelf)
}

// mmNode is the per-node record of the maximal-matching procedure.
type mmNode struct {
	B   int
	Adj []mmEdge
}

// mmMsg is the intermediate value exchanged in every stage: either the
// node's own record, or a per-edge flag for the other endpoint.
type mmMsg struct {
	self *mmNode
	edge int32
	flag bool
}

// mmOut is the cleanup-stage output: the node's next-iteration record
// (nil when saturated or isolated) plus matched edges reported by their
// item-side endpoint.
type mmOut struct {
	state   *mmNode
	matched []int32
}

// MarkingStrategy selects which edges a node marks in the marking stage.
type MarkingStrategy int

const (
	// MarkRandom marks edges uniformly at random (StackMR).
	MarkRandom MarkingStrategy = iota
	// MarkHeaviest marks the heaviest edges (StackGreedyMR).
	MarkHeaviest
)

// String returns the strategy name.
func (s MarkingStrategy) String() string {
	if s == MarkHeaviest {
		return "heaviest"
	}
	return "random"
}

// maximalConfig parameterizes one maximal b-matching computation.
type maximalConfig struct {
	strategy MarkingStrategy
	seed     int64
}

// nodeRand returns a deterministic per-node, per-iteration random source:
// local random decisions in mappers must be reproducible and independent
// of scheduling.
func nodeRand(seed int64, v graph.NodeID, iter int) *rand.Rand {
	h := int64(mix64(uint64(seed) ^ uint64(uint32(v))<<20 ^ uint64(iter)*0x9e37))
	return rand.New(rand.NewSource(h))
}

// maximalBMatching computes a maximal b-matching over the node-view
// Dataset recs (whose B fields hold the per-layer capacities), running
// its jobs under the given driver. All four stages of every iteration
// chain partition-resident: the flagged node records stay in their
// partitions across jobs, each node's self-message takes the identity
// route, and only the per-edge flag messages cross partitions. It
// returns the matched edge ids.
func maximalBMatching(
	ctx context.Context,
	driver *mapreduce.Driver,
	recs *mapreduce.Dataset[graph.NodeID, nodeState],
	cfg maximalConfig,
) ([]int32, error) {
	// Convert to the flagged representation (key-preserving, in place).
	start := mapreduce.MapValues(recs, func(_ graph.NodeID, s nodeState) (mmNode, bool) {
		adj := make([]mmEdge, len(s.Adj))
		for i, h := range s.Adj {
			adj[i] = mmEdge{half: h}
		}
		return mmNode{B: s.B, Adj: adj}, true
	})

	var matched []int32
	_, err := mapreduce.Loop(ctx, driver, start, func(
		ctx context.Context, iter int, cur *mapreduce.Dataset[graph.NodeID, mmNode],
	) (*mapreduce.Dataset[graph.NodeID, mmNode], error) {
		// Each stage's output is consumed by the next stage; recycling
		// the intermediates hands their partition buffers straight to
		// the following job in this same iteration. The iteration's
		// input (the Loop state) is recycled by Loop itself.
		marking, err := mmStage(ctx, driver, "mm-marking", cur, markingMap(cfg, iter))
		if err != nil {
			return nil, err
		}
		selection, err := mmStage(ctx, driver, "mm-selection", marking, selectionMap(cfg, iter))
		marking.Recycle()
		if err != nil {
			return nil, err
		}
		matching, err := mmStage(ctx, driver, "mm-matching", selection, matchingMap(cfg, iter))
		selection.Recycle()
		if err != nil {
			return nil, err
		}
		next, found, err := mmCleanup(ctx, driver, matching)
		matching.Recycle()
		if err != nil {
			return nil, err
		}
		matched = append(matched, found...)
		return next, nil
	})
	return matched, err
}

// mmStage runs one flag-propagation stage: the map function makes local
// decisions and emits per-edge flags; the shared reducer unifies the two
// views of each edge.
func mmStage(
	ctx context.Context,
	driver *mapreduce.Driver,
	name string,
	cur *mapreduce.Dataset[graph.NodeID, mmNode],
	mapFn mapreduce.MapFunc[graph.NodeID, mmNode, graph.NodeID, mmMsg],
) (*mapreduce.Dataset[graph.NodeID, mmNode], error) {
	out, err := mapreduce.RunJobDS(ctx, driver, name, cur, mapFn, unifyReduce(name))
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", name, err)
	}
	// The stage maps close over the per-iteration seed, which dist
	// workers do not receive, so the next stage's map must run
	// coordinator-side: move a worker-resident output here.
	if err := out.Materialize(); err != nil {
		return nil, fmt.Errorf("core: %s: %w", name, err)
	}
	return out, nil
}

// markingMap marks ⌈B/2⌉ edges per node. The flag sent to the other
// endpoint means "I marked this edge".
func markingMap(cfg maximalConfig, iter int) mapreduce.MapFunc[graph.NodeID, mmNode, graph.NodeID, mmMsg] {
	return func(v graph.NodeID, st mmNode, out mapreduce.Emitter[graph.NodeID, mmMsg]) error {
		k := (st.B + 1) / 2
		var chosen []int
		if cfg.strategy == MarkHeaviest {
			for _, i := range topByWeight(halves(st.Adj), k, nil) {
				chosen = append(chosen, int(i))
			}
		} else {
			chosen = pickRandom(len(st.Adj), k, nodeRand(cfg.seed, v, iter*4))
		}
		isChosen := make(map[int]bool, len(chosen))
		for _, i := range chosen {
			isChosen[i] = true
		}
		next := st
		next.Adj = append([]mmEdge(nil), st.Adj...)
		for i := range next.Adj {
			next.Adj[i].markedBySelf = isChosen[i]
			next.Adj[i].markedByOther = false
		}
		out.Emit(v, mmMsg{self: &next})
		for i, e := range next.Adj {
			out.Emit(e.Other, mmMsg{edge: e.ID, flag: isChosen[i]})
		}
		return nil
	}
}

// selectionMap selects max{⌊B/2⌋, 1} edges among those marked by
// neighbors. The flag sent means "I selected your mark".
func selectionMap(cfg maximalConfig, iter int) mapreduce.MapFunc[graph.NodeID, mmNode, graph.NodeID, mmMsg] {
	return func(v graph.NodeID, st mmNode, out mapreduce.Emitter[graph.NodeID, mmMsg]) error {
		var candidates []int
		for i, e := range st.Adj {
			if e.markedByOther {
				candidates = append(candidates, i)
			}
		}
		k := st.B / 2
		if k < 1 {
			k = 1
		}
		rng := nodeRand(cfg.seed, v, iter*4+1)
		sel := pickFrom(candidates, k, rng)
		isSel := make(map[int]bool, len(sel))
		for _, i := range sel {
			isSel[i] = true
		}
		next := st
		next.Adj = append([]mmEdge(nil), st.Adj...)
		for i := range next.Adj {
			next.Adj[i].selBySelf = isSel[i]
			next.Adj[i].selByOther = false
		}
		out.Emit(v, mmMsg{self: &next})
		for i, e := range next.Adj {
			out.Emit(e.Other, mmMsg{edge: e.ID, flag: isSel[i]})
		}
		return nil
	}
}

// matchingMap enforces validity at capacity-1 nodes: keep one incident
// selected edge at random, drop the rest. The flag sent means "I dropped
// this edge from F".
func matchingMap(cfg maximalConfig, iter int) mapreduce.MapFunc[graph.NodeID, mmNode, graph.NodeID, mmMsg] {
	return func(v graph.NodeID, st mmNode, out mapreduce.Emitter[graph.NodeID, mmMsg]) error {
		var fIdx []int
		for i := range st.Adj {
			if st.Adj[i].inSelected() {
				fIdx = append(fIdx, i)
			}
		}
		drop := make(map[int]bool)
		if st.B == 1 && len(fIdx) > 1 {
			rng := nodeRand(cfg.seed, v, iter*4+2)
			keep := fIdx[rng.Intn(len(fIdx))]
			for _, i := range fIdx {
				if i != keep {
					drop[i] = true
				}
			}
		}
		next := st
		next.Adj = append([]mmEdge(nil), st.Adj...)
		for i := range next.Adj {
			next.Adj[i].inF = next.Adj[i].inSelected() && !drop[i]
		}
		out.Emit(v, mmMsg{self: &next})
		for i, e := range next.Adj {
			out.Emit(e.Other, mmMsg{edge: e.ID, flag: drop[i]})
		}
		return nil
	}
}

// unifyReduce merges the two endpoint views of every edge after a stage:
// the self record carries this endpoint's fresh local flags and the
// per-edge messages deliver the other endpoint's decision for the flag
// relevant to the completed stage.
func unifyReduce(stage string) mapreduce.ReduceFunc[graph.NodeID, mmMsg, graph.NodeID, mmNode] {
	return func(v graph.NodeID, msgs []mmMsg, out mapreduce.Emitter[graph.NodeID, mmNode]) error {
		var self *mmNode
		flags := make(map[int32]bool)
		seen := make(map[int32]bool)
		for _, m := range msgs {
			if m.self != nil {
				self = m.self
				continue
			}
			seen[m.edge] = true
			if m.flag {
				flags[m.edge] = true
			}
		}
		if self == nil {
			return nil
		}
		kept := self.Adj[:0]
		for _, e := range self.Adj {
			if !seen[e.ID] {
				// Dead neighbor: edge disappears.
				continue
			}
			switch stage {
			case "mm-marking":
				e.markedByOther = flags[e.ID]
			case "mm-selection":
				e.selByOther = flags[e.ID]
			case "mm-matching":
				// The other endpoint may have dropped the edge from F.
				if flags[e.ID] {
					e.inF = false
				}
			}
			kept = append(kept, e)
		}
		self.Adj = kept
		out.Emit(v, *self)
		return nil
	}
}

// mmCleanup runs the cleanup stage: matched edges leave the graph and are
// reported, capacities decrease, saturated nodes die and their remaining
// edges are removed from the neighbors' views.
func mmCleanup(
	ctx context.Context,
	driver *mapreduce.Driver,
	cur *mapreduce.Dataset[graph.NodeID, mmNode],
) (next *mapreduce.Dataset[graph.NodeID, mmNode], matched []int32, err error) {
	out, err := mapreduce.RunJobDS(ctx, driver, "mm-cleanup", cur, cleanupMap, cleanupReduce)
	if err != nil {
		return nil, nil, fmt.Errorf("core: mm-cleanup: %w", err)
	}
	if err := out.Materialize(); err != nil {
		return nil, nil, fmt.Errorf("core: mm-cleanup: %w", err)
	}
	next = mapreduce.MapValues(out, func(_ graph.NodeID, o mmOut) (mmNode, bool) {
		matched = append(matched, o.matched...)
		if o.state == nil {
			return mmNode{}, false
		}
		return *o.state, true
	})
	out.Recycle()
	return next, matched, nil
}

// cleanupMsg carries the cleanup-stage information: the node's own
// record, or an "I am still alive" beacon along a surviving edge.
type cleanupMsg struct {
	self  *mmNode
	edge  int32
	alive bool
}

// cleanupMap removes F edges locally, updates the capacity, reports
// matched edges (from the item side, to count each edge once), and tells
// every surviving neighbor whether this node is still alive.
func cleanupMap(v graph.NodeID, st mmNode, out mapreduce.Emitter[graph.NodeID, cleanupMsg]) error {
	next := mmNode{B: st.B}
	var matchedHere []mmEdge
	for _, e := range st.Adj {
		if e.inF {
			matchedHere = append(matchedHere, e)
			next.B--
		} else {
			next.Adj = append(next.Adj, mmEdge{half: e.half})
		}
	}
	alive := next.B > 0
	out.Emit(v, cleanupMsg{self: &next})
	for _, e := range next.Adj {
		out.Emit(e.Other, cleanupMsg{edge: e.ID, alive: alive})
	}
	// Matched edges are final; report them on the item side. The item
	// side of a bipartite edge is the endpoint with the smaller id, but
	// rather than assuming that, both ends could report and the caller
	// dedupe; reporting from the endpoint with smaller id is simpler
	// and side-agnostic.
	for _, e := range matchedHere {
		if v < e.Other {
			out.Emit(v, cleanupMsg{edge: e.ID, alive: true})
		}
	}
	return nil
}

// cleanupReduce assembles the next-iteration record: it keeps only edges
// whose other endpoint is still alive, and forwards matched-edge reports.
// A message for an edge still present in the node's own adjacency is an
// alive-beacon from the neighbor; a message for an edge the mapper
// already removed is this node's own matched-edge report (matched edges
// vanish from both endpoints' lists, so the neighbor never beacons them).
func cleanupReduce(v graph.NodeID, msgs []cleanupMsg, out mapreduce.Emitter[graph.NodeID, mmOut]) error {
	var self *mmNode
	for _, m := range msgs {
		if m.self != nil {
			self = m.self
			break
		}
	}
	if self == nil {
		return nil
	}
	res := mmOut{}
	aliveOther := make(map[int32]bool)
	for _, m := range msgs {
		switch {
		case m.self != nil:
		case adjContains(self.Adj, m.edge):
			if m.alive {
				aliveOther[m.edge] = true
			}
		case m.alive:
			res.matched = append(res.matched, m.edge)
		}
	}
	kept := self.Adj[:0]
	for _, e := range self.Adj {
		if aliveOther[e.ID] {
			kept = append(kept, e)
		}
	}
	self.Adj = kept
	if self.B > 0 && len(self.Adj) > 0 {
		res.state = self
	}
	if res.state != nil || len(res.matched) > 0 {
		out.Emit(v, res)
	}
	return nil
}

// adjContains reports whether the adjacency list holds the given edge id.
func adjContains(adj []mmEdge, id int32) bool {
	for _, e := range adj {
		if e.ID == id {
			return true
		}
	}
	return false
}

// halves projects flagged adjacency entries back to plain halves for the
// shared topByWeight helper.
func halves(adj []mmEdge) []half {
	out := make([]half, len(adj))
	for i, e := range adj {
		out[i] = e.half
	}
	return out
}

// pickRandom picks k distinct indexes from [0, n) uniformly at random
// (all of them when k ≥ n), in deterministic order given the source.
func pickRandom(n, k int, rng *rand.Rand) []int {
	if k >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	perm := rng.Perm(n)
	return perm[:k]
}

// pickFrom picks min(k, len(candidates)) elements from candidates
// uniformly at random.
func pickFrom(candidates []int, k int, rng *rand.Rand) []int {
	if k >= len(candidates) {
		return candidates
	}
	perm := rng.Perm(len(candidates))
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = candidates[perm[i]]
	}
	return out
}

// mix64 is the SplitMix64 finalizer (duplicated from the mapreduce
// package to keep the packages decoupled).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
