package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/mapreduce"
)

func spillMR(budget int) mapreduce.Config {
	return mapreduce.Config{
		Mappers: 4, Reducers: 4,
		Shuffle: mapreduce.ShuffleConfig{
			Backend:      mapreduce.ShuffleSpill,
			MemoryBudget: budget,
		},
	}
}

func randomTestGraph(t *testing.T, items, consumers int, edgeProb float64) *graph.Bipartite {
	t.Helper()
	return graph.RandomBipartite(graph.RandomConfig{
		NumItems:     items,
		NumConsumers: consumers,
		EdgeProb:     edgeProb,
		MaxWeight:    2,
		MaxCapacity:  4,
		Seed:         99,
	})
}

// TestAlgorithmsIdenticalAcrossShuffleBackends runs every MapReduce
// algorithm on both shuffle backends with a spill budget far below the
// shuffle volume and requires bit-identical matchings: the spill path
// must reproduce the memory path's grouping and value order exactly,
// including the round-trip of every message type in spill.go.
func TestAlgorithmsIdenticalAcrossShuffleBackends(t *testing.T) {
	g := randomTestGraph(t, 60, 40, 0.15)
	ctx := context.Background()
	memMR := mapreduce.Config{Mappers: 4, Reducers: 4}

	runs := []struct {
		name string
		run  func(mr mapreduce.Config) (*Result, error)
	}{
		{"greedymr", func(mr mapreduce.Config) (*Result, error) {
			return GreedyMR(ctx, g.Clone(), GreedyMROptions{MR: mr})
		}},
		{"stackmr", func(mr mapreduce.Config) (*Result, error) {
			return StackMR(ctx, g.Clone(), StackOptions{MR: mr, Seed: 5})
		}},
		{"stackgreedymr", func(mr mapreduce.Config) (*Result, error) {
			return StackGreedyMR(ctx, g.Clone(), StackOptions{MR: mr, Seed: 5})
		}},
		{"stackmrstrict", func(mr mapreduce.Config) (*Result, error) {
			return StackMRStrict(ctx, g.Clone(), StackOptions{MR: mr, Seed: 5})
		}},
	}
	for _, tc := range runs {
		t.Run(tc.name, func(t *testing.T) {
			mem, err := tc.run(memMR)
			if err != nil {
				t.Fatalf("memory backend: %v", err)
			}
			spill, err := tc.run(spillMR(200))
			if err != nil {
				t.Fatalf("spill backend: %v", err)
			}
			if !reflect.DeepEqual(mem.Matching.Edges(), spill.Matching.Edges()) {
				t.Fatalf("matchings differ: memory value=%v spill value=%v",
					mem.Matching.Value(), spill.Matching.Value())
			}
			if mem.Rounds != spill.Rounds {
				t.Fatalf("round counts differ: %d vs %d", mem.Rounds, spill.Rounds)
			}
			if spill.Shuffle.SpilledRecords == 0 {
				t.Fatalf("spill backend never spilled (shuffle=%d records)",
					spill.Shuffle.ShuffleRecords)
			}
		})
	}
}

// TestMessageCodecsRoundTrip exercises the MarshalBinary/UnmarshalBinary
// pairs directly, including the nil-state variants whose presence bit
// the reducers branch on.
func TestMessageCodecsRoundTrip(t *testing.T) {
	st := &nodeState{B: 3, Adj: []half{
		{ID: 7, Other: 12, W: 1.25},
		{ID: 9, Other: 0, W: -0.5},
	}}
	mm := &mmNode{B: 2, Adj: []mmEdge{
		{half: half{ID: 1, Other: 4, W: 2.5}, markedBySelf: true, selByOther: true},
		{half: half{ID: 2, Other: 5, W: 0}, inF: true, markedByOther: true, selBySelf: true},
	}}
	cases := []struct {
		name string
		in   interface {
			MarshalBinary() ([]byte, error)
		}
		out interface {
			UnmarshalBinary([]byte) error
		}
	}{
		{"greedyMsg-self", greedyMsg{self: true, state: *st}, &greedyMsg{}},
		{"greedyMsg-edge", greedyMsg{edge: 41, proposed: true}, &greedyMsg{}},
		{"greedyMsg-zero", greedyMsg{}, &greedyMsg{}},
		{"mmMsg-self", mmMsg{self: mm}, &mmMsg{}},
		{"mmMsg-edge", mmMsg{edge: 3, flag: true}, &mmMsg{}},
		{"cleanupMsg-self", cleanupMsg{self: mm, alive: true}, &cleanupMsg{}},
		{"cleanupMsg-edge", cleanupMsg{edge: 8, alive: true}, &cleanupMsg{}},
		{"dualMsg-self", dualMsg{self: st}, &dualMsg{}},
		{"dualMsg-edge", dualMsg{edge: 6, yOverB: 0.75}, &dualMsg{}},
		{"filterMsg-self", filterMsg{self: st}, &filterMsg{}},
		{"filterMsg-edge", filterMsg{edge: 2, yOverB: -1.5}, &filterMsg{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := tc.in.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.out.UnmarshalBinary(data); err != nil {
				t.Fatal(err)
			}
			got := reflect.ValueOf(tc.out).Elem().Interface()
			if !reflect.DeepEqual(tc.in, got) {
				t.Fatalf("round trip changed message:\n in: %#v\nout: %#v", tc.in, got)
			}
		})
	}
}

// TestMessageCodecsRejectCorruptData checks that truncated spill data
// surfaces as an error instead of a silently wrong message.
func TestMessageCodecsRejectCorruptData(t *testing.T) {
	data, err := greedyMsg{self: true, state: nodeState{B: 2, Adj: []half{{ID: 1, Other: 2, W: 3}}}}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var m greedyMsg
	if err := m.UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Error("truncated greedyMsg decoded without error")
	}
	var d dualMsg
	if err := d.UnmarshalBinary(append(data, 0xAA)); err == nil {
		t.Error("oversized dualMsg decoded without error")
	}
}
